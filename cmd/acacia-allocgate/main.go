// Command acacia-allocgate enforces the allocation budgets of DESIGN.md §3f:
// it compares a benchmark run recorded by `make bench-alloc`
// (BENCH_alloc.json) against the committed per-benchmark ceilings
// (ALLOC_BUDGET.json) and fails when any hot-path benchmark allocates more
// per operation than its budget allows.
//
// The budget file is a JSON object mapping benchmark names (without the
// -GOMAXPROCS suffix) to the maximum tolerated allocs/op. Every budgeted
// benchmark must appear in the measurement file — a renamed or deleted
// benchmark fails the gate rather than silently escaping it.
//
//	acacia-allocgate [-bench BENCH_alloc.json] [-budget ALLOC_BUDGET.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// measurement is one entry of the bench_to_json output.
type measurement struct {
	Name        string   `json:"name"`
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op"`
}

func main() {
	benchPath := flag.String("bench", "BENCH_alloc.json", "benchmark results (make bench-alloc output)")
	budgetPath := flag.String("budget", "ALLOC_BUDGET.json", "allocation budgets (name -> max allocs/op)")
	flag.Parse()

	budgets, err := readBudgets(*budgetPath)
	if err != nil {
		fatal(err)
	}
	measured, err := readMeasurements(*benchPath)
	if err != nil {
		fatal(err)
	}

	names := make([]string, 0, len(budgets))
	for name := range budgets {
		names = append(names, name)
	}
	sort.Strings(names)

	failures := 0
	for _, name := range names {
		m, ok := measured[name]
		switch {
		case !ok:
			fmt.Fprintf(os.Stderr, "allocgate: FAIL %s: budgeted benchmark missing from %s (renamed or deleted?)\n", name, *benchPath)
			failures++
		case m.AllocsPerOp == nil:
			fmt.Fprintf(os.Stderr, "allocgate: FAIL %s: no allocs/op recorded (benchmark must call b.ReportAllocs or run under -benchmem)\n", name)
			failures++
		case *m.AllocsPerOp > budgets[name]:
			fmt.Fprintf(os.Stderr, "allocgate: FAIL %s: %.0f allocs/op exceeds budget %.0f\n", name, *m.AllocsPerOp, budgets[name])
			failures++
		default:
			fmt.Printf("allocgate: ok   %s: %.0f allocs/op (budget %.0f)\n", name, *m.AllocsPerOp, budgets[name])
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "allocgate: %d budget violation(s); see DESIGN.md §3f for the memory discipline, ALLOC_BUDGET.json for the ceilings\n", failures)
		os.Exit(1)
	}
	fmt.Printf("allocgate: all %d budgets hold\n", len(names))
}

func readBudgets(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("allocgate: %w", err)
	}
	var budgets map[string]float64
	if err := json.Unmarshal(data, &budgets); err != nil {
		return nil, fmt.Errorf("allocgate: parse %s: %w", path, err)
	}
	if len(budgets) == 0 {
		return nil, fmt.Errorf("allocgate: %s holds no budgets", path)
	}
	for name, max := range budgets {
		if max < 0 {
			return nil, fmt.Errorf("allocgate: %s: negative budget %g for %s", path, max, name)
		}
	}
	return budgets, nil
}

func readMeasurements(path string) (map[string]measurement, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("allocgate: %w (run `make bench-alloc` first)", err)
	}
	var list []measurement
	if err := json.Unmarshal(data, &list); err != nil {
		return nil, fmt.Errorf("allocgate: parse %s: %w", path, err)
	}
	out := make(map[string]measurement, len(list))
	for _, m := range list {
		// Benchmark lines carry a -GOMAXPROCS suffix (BenchmarkX-8);
		// budgets are keyed by the bare name.
		name := m.Name
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			name = name[:i]
		}
		out[name] = m
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
