// Command acacia-vet statically enforces the repo's determinism,
// telemetry and transport contracts (DESIGN.md §3d, §3i).
//
// Per-file rules: virtual time only in sim code (wallclock), trial-seeded
// randomness (globalrand), sorted keys before map iteration feeds output
// (maprange), the layer[/sub]/name metric grammar (metricname),
// worker-pool-only concurrency (goroutine), and allocation syntax inside
// //acacia:hotpath functions (hotalloc).
//
// Interprocedural rules, run over a static call graph of every loaded
// package: wall-clock/env/global-rand sinks reachable from sim event
// handlers (dettaint), compiler-verified escape-freedom of hotpath ranges
// via `go build -gcflags='-m -m'` (hotpath-escape), and cross-partition
// engine access from handler context outside SendTo/CrossSchedule
// (partition-confine).
//
// Usage:
//
//	acacia-vet [-json] [-rules wallclock,maprange,...] [packages]
//
// Packages default to ./... resolved against the enclosing module. The
// exit status is 0 when the tree is clean, 1 when findings exist, and 2
// when packages fail to load or type-check. Findings are suppressed at
// the site with `//acacia:allow <rule> <reason>`; a directive that
// suppresses nothing is itself reported as stale. Output is sorted by
// (file, line, column, rule) in both text and -json modes, so runs are
// byte-stable and diffable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"acacia/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	ruleList := flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: acacia-vet [-json] [-rules r1,r2] [packages]\n\nrules:\n")
		for _, r := range analysis.AllRules() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-11s %s\n", r.Name, r.Doc)
		}
	}
	flag.Parse()

	rules, err := analysis.SelectRules(*ruleList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "acacia-vet:", err)
		os.Exit(2)
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "acacia-vet:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "acacia-vet:", err)
		os.Exit(2)
	}
	loadFailed := false
	for _, pkg := range pkgs {
		for _, e := range pkg.Errs {
			loadFailed = true
			fmt.Fprintf(os.Stderr, "acacia-vet: %s: %v\n", pkg.Path, e)
		}
	}
	if loadFailed {
		os.Exit(2)
	}

	diags := analysis.Run(pkgs, rules)
	for i := range diags {
		diags[i].File = relPath(diags[i].File)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "acacia-vet:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "acacia-vet: %d finding(s) across %d package(s), rules: %s\n",
			len(diags), len(pkgs), strings.Join(analysis.RuleNames(rules), ","))
		os.Exit(1)
	}
}

// relPath shortens an absolute filename to be relative to the working
// directory when possible, keeping diagnostics readable and stable.
func relPath(path string) string {
	wd, err := os.Getwd()
	if err != nil {
		return path
	}
	rel, err := filepath.Rel(wd, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return rel
}
