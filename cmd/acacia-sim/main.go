// Command acacia-sim regenerates the paper's evaluation: every figure and
// table, or a chosen subset, printed as aligned text tables.
//
// Usage:
//
//	acacia-sim -list
//	acacia-sim -fig 13
//	acacia-sim -fig 3a,3b,overhead
//	acacia-sim -all [-full] [-seed N] [-parallel N] [-progress]
//	acacia-sim -fig overhead -metrics -timeline overhead.json
//	acacia-sim -fig 13 -intra-parallel 2 -cpuprofile cpu.pprof
//	acacia-sim -scale -scale-ues 5000 -scale-sites 8 -intra-parallel 8
//
// Trials run concurrently on up to -parallel workers; -intra-parallel
// additionally partitions the event loop inside each testbed-backed trial
// (DESIGN.md §3g). Output on stdout is byte-identical for every -parallel
// and -intra-parallel setting (and to the sequential defaults).
//
// -scale runs the generated metro scenario standalone (the "scale"
// experiment's scenario, one execution mode): -scale-ues, -scale-sites,
// -scale-enbs, -scale-capacity and -scale-arrival override the preset shape
// (-full selects the 10,000-UE preset), -seed picks the seed and
// -intra-parallel the execution mode. Unset knobs keep their preset values.
// The generated scenario draws no randomness (its determinism scheme is
// tie-free by construction), so -scale output depends only on the shape,
// not the seed.
// -metrics appends each experiment's merged telemetry snapshot to its
// tables; -timeline writes the combined event log, ordered by virtual
// time, as JSON to the named file. -cpuprofile/-memprofile write pprof
// profiles of the run for performance work on the engine itself.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"acacia"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		list       = flag.Bool("list", false, "list experiment ids and exit")
		fig        = flag.String("fig", "", "comma-separated experiment ids to run (e.g. 3a,8,13)")
		all        = flag.Bool("all", false, "run every experiment")
		full       = flag.Bool("full", false, "publication-length runs (slower, tighter statistics)")
		seed       = flag.Uint64("seed", 2016, "simulation seed")
		parallel   = flag.Int("parallel", 0, "max concurrent trials (0 = GOMAXPROCS)")
		intraPar   = flag.Int("intra-parallel", 0, "partition the event loop inside each trial: 0 = single queue, 1 = windowed, N>1 = N gang workers")
		progress   = flag.Bool("progress", false, "report per-trial completion on stderr")
		csv        = flag.Bool("csv", false, "emit tables as CSV instead of aligned text")
		metrics    = flag.Bool("metrics", false, "print each experiment's merged telemetry snapshot")
		timeline   = flag.String("timeline", "", "write the combined event timeline as JSON to this file")
		scale      = flag.Bool("scale", false, "run the generated metro-scale scenario standalone")
		scaleUEs   = flag.Int("scale-ues", 0, "scale: UE population (0 = preset)")
		scaleSites = flag.Int("scale-sites", 0, "scale: number of edge sites in the grid (0 = preset)")
		scaleENBs  = flag.Int("scale-enbs", 0, "scale: eNodeBs per site (0 = preset)")
		scaleCap   = flag.Int("scale-capacity", 0, "scale: admission capacity units per site (0 = preset, -1 = unbounded)")
		scaleArr   = flag.String("scale-arrival", "", "scale: arrival profile: uniform, diurnal or flash (\"\" = preset)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write an end-of-run heap profile to this file")
	)
	flag.Parse()

	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "acacia-sim:", err)
		return 1
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "acacia-sim:", err)
				return
			}
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "acacia-sim:", err)
			}
			f.Close()
		}()
	}

	opts := acacia.ExperimentOptions{
		Full: *full, Seed: *seed, SeedSet: true,
		Parallel: *parallel, IntraParallel: *intraPar,
	}
	if *progress {
		opts.Progress = func(done, total int, trial string, err error) {
			if err != nil {
				fmt.Fprintf(os.Stderr, "acacia-sim: [%d/%d] %s: %v\n", done, total, trial, err)
				return
			}
			fmt.Fprintf(os.Stderr, "acacia-sim: [%d/%d] %s\n", done, total, trial)
		}
	}
	var snaps []*acacia.MetricsSnapshot
	print := func(r *acacia.ExperimentResult) {
		if r.Metrics != nil {
			snaps = append(snaps, r.Metrics)
		}
		if *csv {
			fmt.Printf("## %s: %s\n", r.ID, r.Title)
			for _, t := range r.Tables {
				fmt.Println(t.CSV())
			}
		} else {
			fmt.Println(r)
		}
		if *metrics && r.Metrics != nil {
			fmt.Print(r.Metrics)
		}
	}
	writeTimeline := func() error {
		if *timeline == "" {
			return nil
		}
		merged := acacia.MergeMetrics(snaps...)
		if merged == nil {
			merged = &acacia.MetricsSnapshot{}
		}
		f, err := os.Create(*timeline)
		if err != nil {
			return err
		}
		if err := merged.WriteTimelineJSON(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}

	switch {
	case *scale:
		cfg := acacia.DefaultScaleConfig(*full)
		if *scaleUEs > 0 {
			cfg.UEs = *scaleUEs
		}
		if *scaleSites > 0 {
			cfg.Sites = *scaleSites
		}
		if *scaleENBs > 0 {
			cfg.ENBsPerSite = *scaleENBs
		}
		switch {
		case *scaleCap > 0:
			cfg.SiteCapacity = *scaleCap
		case *scaleCap < 0:
			cfg.SiteCapacity = 0 // unbounded admission
		}
		if *scaleArr != "" {
			cfg.Arrival = *scaleArr
		}
		cfg.Workers = *intraPar
		print(acacia.RunScaleScenario(*seed, cfg))
		if err := writeTimeline(); err != nil {
			return fail(err)
		}
	case *list:
		for _, id := range acacia.ExperimentIDs() {
			fmt.Printf("%-18s %s\n", id, acacia.ExperimentTitle(id))
		}
	case *all:
		results, err := acacia.RunAllExperiments(opts)
		for _, r := range results {
			print(r)
		}
		if werr := writeTimeline(); werr != nil {
			return fail(werr)
		}
		if err != nil {
			return fail(err)
		}
	case *fig != "":
		for _, id := range strings.Split(*fig, ",") {
			r, err := acacia.RunExperiment(strings.TrimSpace(id), opts)
			if err != nil {
				return fail(err)
			}
			print(r)
		}
		if err := writeTimeline(); err != nil {
			return fail(err)
		}
	default:
		flag.Usage()
		return 2
	}
	return 0
}
