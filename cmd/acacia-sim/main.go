// Command acacia-sim regenerates the paper's evaluation: every figure and
// table, or a chosen subset, printed as aligned text tables.
//
// Usage:
//
//	acacia-sim -list
//	acacia-sim -fig 13
//	acacia-sim -fig 3a,3b,overhead
//	acacia-sim -all [-full] [-seed N] [-parallel N] [-progress]
//	acacia-sim -fig overhead -metrics -timeline overhead.json
//
// Trials run concurrently on up to -parallel workers; output on stdout is
// byte-identical for every -parallel setting (and to -parallel 1).
// -metrics appends each experiment's merged telemetry snapshot to its
// tables; -timeline writes the combined event log, ordered by virtual
// time, as JSON to the named file.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"acacia"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list experiment ids and exit")
		fig      = flag.String("fig", "", "comma-separated experiment ids to run (e.g. 3a,8,13)")
		all      = flag.Bool("all", false, "run every experiment")
		full     = flag.Bool("full", false, "publication-length runs (slower, tighter statistics)")
		seed     = flag.Uint64("seed", 2016, "simulation seed")
		parallel = flag.Int("parallel", 0, "max concurrent trials (0 = GOMAXPROCS)")
		progress = flag.Bool("progress", false, "report per-trial completion on stderr")
		csv      = flag.Bool("csv", false, "emit tables as CSV instead of aligned text")
		metrics  = flag.Bool("metrics", false, "print each experiment's merged telemetry snapshot")
		timeline = flag.String("timeline", "", "write the combined event timeline as JSON to this file")
	)
	flag.Parse()

	opts := acacia.ExperimentOptions{Full: *full, Seed: *seed, SeedSet: true, Parallel: *parallel}
	if *progress {
		opts.Progress = func(done, total int, trial string, err error) {
			if err != nil {
				fmt.Fprintf(os.Stderr, "acacia-sim: [%d/%d] %s: %v\n", done, total, trial, err)
				return
			}
			fmt.Fprintf(os.Stderr, "acacia-sim: [%d/%d] %s\n", done, total, trial)
		}
	}
	var snaps []*acacia.MetricsSnapshot
	print := func(r *acacia.ExperimentResult) {
		if r.Metrics != nil {
			snaps = append(snaps, r.Metrics)
		}
		if *csv {
			fmt.Printf("## %s: %s\n", r.ID, r.Title)
			for _, t := range r.Tables {
				fmt.Println(t.CSV())
			}
		} else {
			fmt.Println(r)
		}
		if *metrics && r.Metrics != nil {
			fmt.Print(r.Metrics)
		}
	}
	writeTimeline := func() {
		if *timeline == "" {
			return
		}
		merged := acacia.MergeMetrics(snaps...)
		if merged == nil {
			merged = &acacia.MetricsSnapshot{}
		}
		f, err := os.Create(*timeline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "acacia-sim:", err)
			os.Exit(1)
		}
		if err := merged.WriteTimelineJSON(f); err == nil {
			err = f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "acacia-sim:", err)
			os.Exit(1)
		}
	}

	switch {
	case *list:
		for _, id := range acacia.ExperimentIDs() {
			fmt.Printf("%-18s %s\n", id, acacia.ExperimentTitle(id))
		}
	case *all:
		results, err := acacia.RunAllExperiments(opts)
		for _, r := range results {
			print(r)
		}
		writeTimeline()
		if err != nil {
			fmt.Fprintln(os.Stderr, "acacia-sim:", err)
			os.Exit(1)
		}
	case *fig != "":
		for _, id := range strings.Split(*fig, ",") {
			r, err := acacia.RunExperiment(strings.TrimSpace(id), opts)
			if err != nil {
				fmt.Fprintln(os.Stderr, "acacia-sim:", err)
				os.Exit(1)
			}
			print(r)
		}
		writeTimeline()
	default:
		flag.Usage()
		os.Exit(2)
	}
}
