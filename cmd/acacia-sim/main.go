// Command acacia-sim regenerates the paper's evaluation: every figure and
// table, or a chosen subset, printed as aligned text tables.
//
// Usage:
//
//	acacia-sim -list
//	acacia-sim -fig 13
//	acacia-sim -fig 3a,3b,overhead
//	acacia-sim -all [-full] [-seed N] [-parallel N] [-progress]
//
// Trials run concurrently on up to -parallel workers; output on stdout is
// byte-identical for every -parallel setting (and to -parallel 1).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"acacia"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list experiment ids and exit")
		fig      = flag.String("fig", "", "comma-separated experiment ids to run (e.g. 3a,8,13)")
		all      = flag.Bool("all", false, "run every experiment")
		full     = flag.Bool("full", false, "publication-length runs (slower, tighter statistics)")
		seed     = flag.Uint64("seed", 2016, "simulation seed")
		parallel = flag.Int("parallel", 0, "max concurrent trials (0 = GOMAXPROCS)")
		progress = flag.Bool("progress", false, "report per-trial completion on stderr")
		csv      = flag.Bool("csv", false, "emit tables as CSV instead of aligned text")
	)
	flag.Parse()

	opts := acacia.ExperimentOptions{Full: *full, Seed: *seed, SeedSet: true, Parallel: *parallel}
	if *progress {
		opts.Progress = func(done, total int, trial string, err error) {
			if err != nil {
				fmt.Fprintf(os.Stderr, "acacia-sim: [%d/%d] %s: %v\n", done, total, trial, err)
				return
			}
			fmt.Fprintf(os.Stderr, "acacia-sim: [%d/%d] %s\n", done, total, trial)
		}
	}
	print := func(r *acacia.ExperimentResult) {
		if !*csv {
			fmt.Println(r)
			return
		}
		fmt.Printf("## %s: %s\n", r.ID, r.Title)
		for _, t := range r.Tables {
			fmt.Println(t.CSV())
		}
	}

	switch {
	case *list:
		for _, id := range acacia.ExperimentIDs() {
			fmt.Printf("%-18s %s\n", id, acacia.ExperimentTitle(id))
		}
	case *all:
		results, err := acacia.RunAllExperiments(opts)
		for _, r := range results {
			print(r)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "acacia-sim:", err)
			os.Exit(1)
		}
	case *fig != "":
		for _, id := range strings.Split(*fig, ",") {
			r, err := acacia.RunExperiment(strings.TrimSpace(id), opts)
			if err != nil {
				fmt.Fprintln(os.Stderr, "acacia-sim:", err)
				os.Exit(1)
			}
			print(r)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
