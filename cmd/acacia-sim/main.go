// Command acacia-sim regenerates the paper's evaluation: every figure and
// table, or a chosen subset, printed as aligned text tables.
//
// Usage:
//
//	acacia-sim -list
//	acacia-sim -fig 13
//	acacia-sim -fig 3a,3b,overhead
//	acacia-sim -all [-full] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"acacia"
)

func main() {
	var (
		list = flag.Bool("list", false, "list experiment ids and exit")
		fig  = flag.String("fig", "", "comma-separated experiment ids to run (e.g. 3a,8,13)")
		all  = flag.Bool("all", false, "run every experiment")
		full = flag.Bool("full", false, "publication-length runs (slower, tighter statistics)")
		seed = flag.Uint64("seed", 2016, "simulation seed")
		csv  = flag.Bool("csv", false, "emit tables as CSV instead of aligned text")
	)
	flag.Parse()

	opts := acacia.ExperimentOptions{Full: *full, Seed: *seed}
	print := func(r *acacia.ExperimentResult) {
		if !*csv {
			fmt.Println(r)
			return
		}
		fmt.Printf("## %s: %s\n", r.ID, r.Title)
		for _, t := range r.Tables {
			fmt.Println(t.CSV())
		}
	}

	switch {
	case *list:
		for _, id := range acacia.ExperimentIDs() {
			fmt.Printf("%-18s %s\n", id, acacia.ExperimentTitle(id))
		}
	case *all:
		for _, r := range acacia.RunAllExperiments(opts) {
			print(r)
		}
	case *fig != "":
		for _, id := range strings.Split(*fig, ",") {
			r, err := acacia.RunExperiment(strings.TrimSpace(id), opts)
			if err != nil {
				fmt.Fprintln(os.Stderr, "acacia-sim:", err)
				os.Exit(1)
			}
			print(r)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
