// Command acacia-bearers traces the EPC control plane through a full
// bearer lifecycle: attach, dedicated MEC bearer activation, idle release
// and service-request promotion, printing every serialized control message
// with its protocol, name and wire size — the data behind the paper's §4
// control-overhead analysis.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"acacia"
	"acacia/internal/geo"
	"acacia/internal/netsim"
)

func main() {
	idle := flag.Duration("idle", 3*time.Second, "LTE inactivity timeout (paper: 11.576s)")
	csv := flag.Bool("csv", false, "emit the per-message trace as CSV on stdout (banners and summary go to stderr)")
	flag.Parse()

	tb := acacia.NewTestbed(acacia.TestbedConfig{Seed: 7, IdleTimeout: *idle})
	tb.EPC.Acct.Trace = true
	b := tb.UEs[0]
	tb.MoveUE(b, geo.Point{X: 21, Y: 15})

	// Snapshot the accounting before any traffic: DiffLog against it yields
	// exactly the records this run appended.
	start := tb.EPC.Acct.Snapshot()

	// In CSV mode only the trace rows go to stdout; narration moves to
	// stderr so the output stays machine-readable.
	text := os.Stdout
	if *csv {
		text = os.Stderr
	}

	fmt.Fprintln(text, "== attach ==")
	if err := tb.Attach(b); err != nil {
		panic(err)
	}
	if err := tb.StartRetailApp(b, "electronics"); err != nil {
		panic(err)
	}
	tb.Run(3 * time.Second)

	fmt.Fprintln(text, "== quiesce; waiting for the inactivity timer ==")
	b.Frontend.Stop()
	b.D2D.SetPos(geo.Point{X: 5000, Y: 5000})
	tb.Run(*idle + 3*time.Second)

	fmt.Fprintln(text, "== uplink data: promotion ==")
	pg := netsim.NewPinger(b.UE.Host, tb.CloudHosts["california"].Node.Addr(), 64, 7400)
	pg.SendOne()
	tb.Run(3 * time.Second)

	fmt.Fprintln(text, "== S1 handover to a neighbour cell ==")
	east := tb.AddNeighborENB("enb-east")
	if err := tb.Handover(b, east); err != nil {
		panic(err)
	}
	tb.Run(time.Second)

	fmt.Fprintln(text, "== UE-initiated detach ==")
	if err := b.UE.Detach(nil); err != nil {
		panic(err)
	}
	tb.Run(time.Second)

	// Transport columns: seq is the per-peer transaction sequence number,
	// path/link the endpoints and wire the message crossed, queue_us the
	// transmit-queue wait of the delivered attempt, retrans how many
	// retransmissions the exchange needed (0 on healthy links). OpenFlow
	// rows leave them blank: the SDN controller accounts its channel
	// separately.
	if *csv {
		fmt.Println("t_s,protocol,message,bytes,seq,path,link,queue_us,retrans")
	} else {
		fmt.Println("\ntime        protocol    message                          bytes  seq  path              queue_us  retrans")
	}
	for _, rec := range tb.EPC.Acct.DiffLog(start) {
		if *csv {
			fmt.Printf("%.3f,%s,%s,%d,%d,%s,%s,%d,%d\n",
				rec.At.Seconds(), rec.Proto, rec.Name, rec.Bytes,
				rec.Seq, rec.Path, rec.Link, rec.QueueWait.Microseconds(), rec.Retrans)
		} else {
			fmt.Printf("%9.3fs  %-10s  %-32s %5d %4d  %-16s %9d %8d\n",
				rec.At.Seconds(), rec.Proto, rec.Name, rec.Bytes,
				rec.Seq, rec.Path, rec.QueueWait.Microseconds(), rec.Retrans)
		}
	}

	// The summary comes from the telemetry registry — the same counters
	// the overhead experiment reads — not from re-tallying the trace.
	snap := tb.Eng.Metrics().Snapshot()
	fmt.Fprintf(text, "\nsummary: S1AP %d msgs / %d B; GTPv2 %d msgs / %d B; OpenFlow %d msgs / %d B\n",
		snap.CounterValue("epc/s1ap/msgs"), snap.CounterValue("epc/s1ap/bytes"),
		snap.CounterValue("epc/gtpv2/msgs"), snap.CounterValue("epc/gtpv2/bytes"),
		snap.CounterValue("sdn/controller/sent"), snap.CounterValue("sdn/controller/sent-bytes"))
	fmt.Fprintf(text, "paper §4 per release/re-establish cycle: SCTP 7 (1138 B), GTPv2 4 (352 B), OpenFlow 4 (1424 B)\n")
}
