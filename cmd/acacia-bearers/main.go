// Command acacia-bearers traces the EPC control plane through a full
// bearer lifecycle: attach, dedicated MEC bearer activation, idle release
// and service-request promotion, printing every serialized control message
// with its protocol, name and wire size — the data behind the paper's §4
// control-overhead analysis.
package main

import (
	"flag"
	"fmt"
	"time"

	"acacia"
	"acacia/internal/geo"
	"acacia/internal/netsim"
)

func main() {
	idle := flag.Duration("idle", 3*time.Second, "LTE inactivity timeout (paper: 11.576s)")
	flag.Parse()

	tb := acacia.NewTestbed(acacia.TestbedConfig{Seed: 7, IdleTimeout: *idle})
	tb.EPC.Acct.Trace = true
	b := tb.UEs[0]
	tb.MoveUE(b, geo.Point{X: 21, Y: 15})

	fmt.Println("== attach ==")
	if err := tb.Attach(b); err != nil {
		panic(err)
	}
	if err := tb.StartRetailApp(b, "electronics"); err != nil {
		panic(err)
	}
	tb.Run(3 * time.Second)

	fmt.Println("== quiesce; waiting for the inactivity timer ==")
	b.Frontend.Stop()
	b.D2D.SetPos(geo.Point{X: 5000, Y: 5000})
	tb.Run(*idle + 3*time.Second)

	fmt.Println("== uplink data: promotion ==")
	pg := netsim.NewPinger(b.UE.Host, tb.CloudHosts["california"].Node.Addr(), 64, 7400)
	pg.SendOne()
	tb.Run(3 * time.Second)

	fmt.Println("== S1 handover to a neighbour cell ==")
	east := tb.AddNeighborENB("enb-east")
	if err := tb.Handover(b, east); err != nil {
		panic(err)
	}
	tb.Run(time.Second)

	fmt.Println("== UE-initiated detach ==")
	if err := b.UE.Detach(nil); err != nil {
		panic(err)
	}
	tb.Run(time.Second)

	fmt.Println("\ntime        protocol    message                          bytes")
	var total, s1apB, gtpB uint64
	var s1apN, gtpN uint64
	for _, rec := range tb.EPC.Acct.Log {
		fmt.Printf("%9.3fs  %-10s  %-32s %5d\n", rec.At.Seconds(), rec.Proto, rec.Name, rec.Bytes)
		total += uint64(rec.Bytes)
		switch rec.Proto.String() {
		case "SCTP/S1AP":
			s1apN++
			s1apB += uint64(rec.Bytes)
		case "GTPv2":
			gtpN++
			gtpB += uint64(rec.Bytes)
		}
	}
	of := tb.Ctl.Stats()
	fmt.Printf("\nsummary: S1AP %d msgs / %d B; GTPv2 %d msgs / %d B; OpenFlow %d msgs / %d B\n",
		s1apN, s1apB, gtpN, gtpB, of.Sent, of.SentBytes)
	fmt.Printf("paper §4 per release/re-establish cycle: SCTP 7 (1138 B), GTPv2 4 (352 B), OpenFlow 4 (1424 B)\n")
}
