// Package exec schedules independent units of work across a bounded worker
// pool with deterministic reassembly.
//
// The contract that makes parallelism safe for the experiment harness is
// strict: outcomes are returned index-aligned with the input tasks, never in
// completion order, so a run with N workers produces byte-identical output
// to a sequential run as long as every task is a pure function of its
// inputs. A panicking task is recovered into an error outcome instead of
// crashing the process, so one bad parameter point cannot take down its
// sibling trials.
package exec

import (
	"fmt"
	"runtime"
	"sync"
)

// Task is one independent unit of work producing a T.
type Task[T any] struct {
	// Key names the task in progress reports and error messages. It has no
	// scheduling significance.
	Key string
	// Run executes the task. It must not share mutable state with other
	// tasks in the same Run call.
	Run func() (T, error)
}

// Outcome is one task's terminal state: its value, or the error (possibly a
// *PanicError) that ended it.
type Outcome[T any] struct {
	Key   string
	Value T
	Err   error
}

// PanicError is the error recorded for a task whose Run panicked.
type PanicError struct {
	Key   string
	Value any    // the recovered panic value
	Stack []byte // stack of the panicking goroutine
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("task %q panicked: %v", e.Key, e.Value)
}

// Workers resolves a requested worker count: values <= 0 select GOMAXPROCS.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Run executes tasks on at most Workers(workers) goroutines and returns one
// outcome per task, index-aligned with tasks regardless of completion order.
func Run[T any](workers int, tasks []Task[T]) []Outcome[T] {
	return RunProgress(workers, tasks, nil)
}

// RunProgress is Run with a completion callback: progress, when non-nil, is
// invoked serially (never concurrently) after each task finishes, in
// completion order. done counts finished tasks including the reported one.
func RunProgress[T any](workers int, tasks []Task[T], progress func(done, total int, o Outcome[T])) []Outcome[T] {
	outs := make([]Outcome[T], len(tasks))
	if len(tasks) == 0 {
		return outs
	}
	workers = Workers(workers)
	if workers > len(tasks) {
		workers = len(tasks)
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		done int
	)
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				outs[i] = runOne(tasks[i])
				if progress != nil {
					mu.Lock()
					done++
					progress(done, len(tasks), outs[i])
					mu.Unlock()
				}
			}
		}()
	}
	for i := range tasks {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return outs
}

// runOne executes a single task, converting a panic into a *PanicError.
func runOne[T any](t Task[T]) (o Outcome[T]) {
	o.Key = t.Key
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 64<<10)
			o.Err = &PanicError{Key: t.Key, Value: r, Stack: buf[:runtime.Stack(buf, false)]}
		}
	}()
	o.Value, o.Err = t.Run()
	return o
}
