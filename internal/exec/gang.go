package exec

// Gang is a persistent worker group that repeatedly executes batches of
// closures with a completion barrier — the partition scheduler behind
// sim.Cluster's parallel window mode. Unlike Run, which spins up goroutines
// per call, a Gang keeps its workers alive between batches: a windowed
// simulation calls Do thousands of times per run and must not pay goroutine
// startup (or allocate) per window.
//
// Batch n's closures all complete before Do returns, and every write they
// made happens-before batch n+1 starts (the channel handshake orders them),
// so the cluster's barrier-synchronized outbox protocol needs no additional
// locking. Closure i of a batch always runs on worker i%N: the assignment is
// static, so a partition's state is touched by one goroutine per batch.
type Gang struct {
	n    int
	work []chan []func()
	done chan struct{}
}

// NewGang starts a gang of Workers(n) persistent workers. Call Stop when
// done with it, or the workers leak.
func NewGang(n int) *Gang {
	n = Workers(n)
	g := &Gang{n: n, done: make(chan struct{}, n)}
	g.work = make([]chan []func(), n)
	for w := 0; w < n; w++ {
		g.work[w] = make(chan []func())
		go g.worker(w)
	}
	return g
}

// Workers reports the gang's worker count.
func (g *Gang) Workers() int { return g.n }

func (g *Gang) worker(w int) {
	for fns := range g.work[w] {
		for i := w; i < len(fns); i += g.n {
			fns[i]()
		}
		g.done <- struct{}{}
	}
}

// Do runs every closure in fns and returns when all have completed. A panic
// in a closure is not recovered: a partition panicking mid-window means the
// simulation state is unrecoverable, so it should crash loudly (matching the
// sequential engine, where the panic unwinds through Run).
func (g *Gang) Do(fns []func()) {
	if g.n == 1 {
		// Single worker: run inline, skipping the channel round-trip.
		for _, fn := range fns {
			fn()
		}
		return
	}
	for w := 0; w < g.n; w++ {
		g.work[w] <- fns
	}
	for w := 0; w < g.n; w++ {
		<-g.done
	}
}

// Stop terminates the workers. The gang must not be used after Stop.
func (g *Gang) Stop() {
	for w := 0; w < g.n; w++ {
		close(g.work[w])
	}
}
