package exec

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestOrderPreserved runs tasks whose completion order is the reverse of
// their declaration order and checks outcomes still align with input order.
func TestOrderPreserved(t *testing.T) {
	const n = 8
	tasks := make([]Task[int], n)
	for i := 0; i < n; i++ {
		i := i
		tasks[i] = Task[int]{Key: fmt.Sprint(i), Run: func() (int, error) {
			time.Sleep(time.Duration(n-i) * 2 * time.Millisecond)
			return i * 10, nil
		}}
	}
	outs := Run(n, tasks)
	if len(outs) != n {
		t.Fatalf("got %d outcomes, want %d", len(outs), n)
	}
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("task %d: %v", i, o.Err)
		}
		if o.Value != i*10 || o.Key != fmt.Sprint(i) {
			t.Errorf("outs[%d] = {%q, %d}, want {%q, %d}", i, o.Key, o.Value, fmt.Sprint(i), i*10)
		}
	}
}

func TestPanicRecoveredSiblingsSurvive(t *testing.T) {
	var ran atomic.Int32
	tasks := []Task[string]{
		{Key: "ok-1", Run: func() (string, error) { ran.Add(1); return "a", nil }},
		{Key: "boom", Run: func() (string, error) { panic("kaput") }},
		{Key: "ok-2", Run: func() (string, error) { ran.Add(1); return "b", nil }},
	}
	outs := Run(2, tasks)
	if ran.Load() != 2 {
		t.Errorf("sibling tasks ran = %d, want 2", ran.Load())
	}
	if outs[0].Err != nil || outs[0].Value != "a" || outs[2].Err != nil || outs[2].Value != "b" {
		t.Errorf("sibling outcomes corrupted: %+v", outs)
	}
	var pe *PanicError
	if !errors.As(outs[1].Err, &pe) {
		t.Fatalf("outs[1].Err = %v, want *PanicError", outs[1].Err)
	}
	if pe.Key != "boom" || pe.Value != "kaput" {
		t.Errorf("panic error = %+v", pe)
	}
	if len(pe.Stack) == 0 {
		t.Error("panic error carries no stack")
	}
	if !strings.Contains(pe.Error(), "boom") || !strings.Contains(pe.Error(), "kaput") {
		t.Errorf("Error() = %q", pe.Error())
	}
}

// TestBoundedConcurrency checks the pool never runs more tasks at once than
// the requested worker count.
func TestBoundedConcurrency(t *testing.T) {
	const workers, n = 3, 24
	var cur, peak atomic.Int32
	tasks := make([]Task[struct{}], n)
	for i := range tasks {
		tasks[i] = Task[struct{}]{Key: fmt.Sprint(i), Run: func() (struct{}, error) {
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			return struct{}{}, nil
		}}
	}
	Run(workers, tasks)
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency = %d, want <= %d", p, workers)
	}
}

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS (%d)", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-5); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-5) = %d", got)
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d", got)
	}
}

// TestProgressSerialized checks the callback sees every completion exactly
// once with a strictly increasing done count.
func TestProgressSerialized(t *testing.T) {
	const n = 16
	tasks := make([]Task[int], n)
	for i := range tasks {
		i := i
		tasks[i] = Task[int]{Key: fmt.Sprint(i), Run: func() (int, error) { return i, nil }}
	}
	var calls []int
	outs := RunProgress(4, tasks, func(done, total int, o Outcome[int]) {
		if total != n {
			t.Errorf("total = %d, want %d", total, n)
		}
		calls = append(calls, done) // serialized by the pool: no lock needed
	})
	if len(outs) != n || len(calls) != n {
		t.Fatalf("outcomes = %d, progress calls = %d, want %d", len(outs), len(calls), n)
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress done sequence = %v", calls)
		}
	}
}

func TestTaskErrorPropagates(t *testing.T) {
	sentinel := errors.New("nope")
	outs := Run(1, []Task[int]{{Key: "e", Run: func() (int, error) { return 0, sentinel }}})
	if !errors.Is(outs[0].Err, sentinel) {
		t.Errorf("err = %v, want sentinel", outs[0].Err)
	}
}

func TestEmptyAndSingle(t *testing.T) {
	if outs := Run[int](4, nil); len(outs) != 0 {
		t.Errorf("empty run returned %d outcomes", len(outs))
	}
	outs := Run(8, []Task[int]{{Key: "only", Run: func() (int, error) { return 42, nil }}})
	if outs[0].Value != 42 {
		t.Errorf("single-task run = %+v", outs[0])
	}
}
