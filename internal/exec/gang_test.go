package exec

import (
	"runtime"
	"testing"
)

// TestGangBarrier checks Do runs every closure and acts as a full barrier:
// all writes from batch n are visible when Do returns, across many batches,
// with more closures than workers (exercising the strided assignment).
func TestGangBarrier(t *testing.T) {
	g := NewGang(4)
	defer g.Stop()

	const slots = 13 // not a multiple of the worker count
	counts := make([]int, slots)
	fns := make([]func(), slots)
	for i := range fns {
		i := i
		fns[i] = func() { counts[i]++ }
	}
	const batches = 100
	for b := 0; b < batches; b++ {
		g.Do(fns)
		// Reading counts here is the barrier guarantee under test: Do must
		// have ordered every worker write before returning.
		for i, c := range counts {
			if c != b+1 {
				t.Fatalf("batch %d: counts[%d] = %d, want %d", b, i, c, b+1)
			}
		}
	}
}

// TestGangStaticAssignment checks closure i always runs on worker i%N: the
// same slot is touched by the same goroutine batch after batch, so
// partition state needs no cross-worker synchronization.
func TestGangStaticAssignment(t *testing.T) {
	const workers, slots = 3, 9
	g := NewGang(workers)
	defer g.Stop()

	// goid is unexported everywhere, so fingerprint the worker through a
	// per-slot guard: if two goroutines ever ran the same slot in the same
	// batch the unsynchronized counter below would trip the race detector,
	// and the modular schedule is checked structurally instead.
	ran := make([][]int, slots)
	fns := make([]func(), slots)
	for i := range fns {
		i := i
		fns[i] = func() { ran[i] = append(ran[i], i%workers) }
	}
	g.Do(fns)
	g.Do(fns)
	for i := range ran {
		if len(ran[i]) != 2 {
			t.Fatalf("slot %d ran %d times, want 2", i, len(ran[i]))
		}
	}
}

// TestGangSingleWorkerInline checks the n==1 fast path runs closures on the
// calling goroutine (no channel round-trip), which the cluster relies on
// for its windowed-but-serial mode.
func TestGangSingleWorkerInline(t *testing.T) {
	g := NewGang(1)
	defer g.Stop()
	if g.Workers() != 1 {
		t.Fatalf("Workers() = %d, want 1", g.Workers())
	}
	var stack [64]byte
	callerStack := string(stack[:runtime.Stack(stack[:], false)])
	var inner string
	g.Do([]func(){func() {
		var s [64]byte
		inner = string(s[:runtime.Stack(s[:], false)])
	}})
	// Both stacks start "goroutine N [running]" — same N means same goroutine.
	if got, want := inner[:20], callerStack[:20]; got != want {
		t.Errorf("closure ran on %q, want caller goroutine %q", got, want)
	}
}

// TestGangWorkerClamp checks NewGang(0) adopts the Workers default rather
// than starting a zero-worker gang that would deadlock Do.
func TestGangWorkerClamp(t *testing.T) {
	g := NewGang(0)
	defer g.Stop()
	if g.Workers() != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers() = %d, want GOMAXPROCS %d", g.Workers(), runtime.GOMAXPROCS(0))
	}
	done := false
	g.Do([]func(){func() { done = true }})
	if !done {
		t.Error("closure did not run")
	}
}
