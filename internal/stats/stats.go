// Package stats provides the summary statistics and series formatting used by
// the ACACIA experiment harness: means, percentiles, CDFs, and aligned table
// output mirroring the rows and series the paper reports.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample accumulates float64 observations and answers summary queries.
// The zero value is an empty sample ready for use.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add appends an observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// AddAll appends all observations in xs.
func (s *Sample) AddAll(xs ...float64) {
	s.xs = append(s.xs, xs...)
	s.sorted = false
}

// N reports the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Merge appends all of other's observations to s, leaving other unchanged.
// It lets concurrent trials accumulate partial samples that are combined
// deterministically afterwards.
func (s *Sample) Merge(other *Sample) {
	if other == nil || len(other.xs) == 0 {
		return
	}
	s.xs = append(s.xs, other.xs...)
	s.sorted = false
}

// Values returns a copy of the observations. The copy is in insertion order
// until the first order-dependent query (Min, Max, Median, Percentile, CDF,
// FractionBelow) sorts the sample in place, after which it is ascending;
// callers should treat the result as an unordered multiset.
func (s *Sample) Values() []float64 {
	out := make([]float64, len(s.xs))
	copy(out, s.xs)
	return out
}

// Mean reports the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// StdDev reports the population standard deviation, or 0 for fewer than two
// observations.
func (s *Sample) StdDev() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, x := range s.xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Min reports the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	return s.xs[0]
}

// Max reports the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	return s.xs[len(s.xs)-1]
}

// Percentile reports the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks. Empty samples report 0.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if p <= 0 {
		return s.Min()
	}
	if p >= 100 {
		return s.Max()
	}
	s.sort()
	rank := p / 100 * float64(len(s.xs)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.xs[lo]
	}
	frac := rank - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Median reports the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// CDF returns (value, cumulative fraction) pairs over the sample, one point
// per distinct value, suitable for plotting the paper's CDF figures.
func (s *Sample) CDF() []CDFPoint {
	if len(s.xs) == 0 {
		return nil
	}
	s.sort()
	var pts []CDFPoint
	n := float64(len(s.xs))
	for i := 0; i < len(s.xs); i++ {
		// Collapse runs of equal values to the highest cumulative fraction.
		if i+1 < len(s.xs) && s.xs[i+1] == s.xs[i] {
			continue
		}
		pts = append(pts, CDFPoint{Value: s.xs[i], Fraction: float64(i+1) / n})
	}
	return pts
}

// FractionBelow reports the fraction of observations <= x.
func (s *Sample) FractionBelow(x float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	i := sort.SearchFloat64s(s.xs, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(s.xs))
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value    float64
	Fraction float64
}

// Summary is a compact five-number-plus-mean description of a sample.
type Summary struct {
	N                int
	Mean, StdDev     float64
	Min, Median, Max float64
	P90, P95, P99    float64
}

// Summarize computes a Summary for s.
func (s *Sample) Summarize() Summary {
	return Summary{
		N:      s.N(),
		Mean:   s.Mean(),
		StdDev: s.StdDev(),
		Min:    s.Min(),
		Median: s.Median(),
		Max:    s.Max(),
		P90:    s.Percentile(90),
		P95:    s.Percentile(95),
		P99:    s.Percentile(99),
	}
}

// String formats the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.3g min=%.4g p50=%.4g p95=%.4g max=%.4g",
		s.N, s.Mean, s.StdDev, s.Min, s.Median, s.P95, s.Max)
}

// Table renders aligned experiment output: a header row plus data rows, with
// columns padded to the widest cell. It is how every experiment prints its
// figure/table series.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row of cells, formatting each with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders f with precision appropriate to its magnitude, so both
// millisecond latencies and multi-hundred-Mbps rates read naturally.
func FormatFloat(f float64) string {
	switch {
	case f == 0:
		return "0"
	case math.Abs(f) >= 1000:
		return fmt.Sprintf("%.0f", f)
	case math.Abs(f) >= 10:
		return fmt.Sprintf("%.1f", f)
	case math.Abs(f) >= 1:
		return fmt.Sprintf("%.2f", f)
	case math.Abs(f) >= 0.001:
		return fmt.Sprintf("%.4f", f)
	default:
		return fmt.Sprintf("%.3g", f)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString("# ")
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header + rows), with
// cells containing commas or quotes escaped per RFC 4180. The title is
// emitted as a comment line.
func (t *Table) CSV() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString("# ")
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Ratio reports a/b, or 0 when b is 0; a convenience for speedup columns.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
