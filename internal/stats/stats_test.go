package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Error("empty sample should report zeros")
	}
	s.AddAll(3, 1, 2)
	if s.N() != 3 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 2 {
		t.Errorf("Mean = %v", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 3 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if s.Median() != 2 {
		t.Errorf("Median = %v", s.Median())
	}
}

func TestMerge(t *testing.T) {
	var a, b Sample
	a.AddAll(5, 1)
	b.AddAll(3, 9)
	a.Merge(&b)
	if a.N() != 4 || a.Mean() != 4.5 || a.Min() != 1 || a.Max() != 9 {
		t.Errorf("merged sample: N=%d mean=%v min=%v max=%v", a.N(), a.Mean(), a.Min(), a.Max())
	}
	// The source is untouched, even after the destination sorts.
	if b.N() != 2 || b.Values()[0] != 3 || b.Values()[1] != 9 {
		t.Errorf("source mutated by Merge: %v", b.Values())
	}
	a.Merge(nil)
	a.Merge(&Sample{})
	if a.N() != 4 {
		t.Errorf("nil/empty merge changed N to %d", a.N())
	}
	// Merging after a sort invalidates the cached order.
	var c Sample
	c.AddAll(10, 20)
	_ = c.Max()
	var d Sample
	d.Add(1)
	c.Merge(&d)
	if c.Min() != 1 {
		t.Errorf("Min after post-sort merge = %v, want 1", c.Min())
	}
}

// TestMergeMatchesSequential checks that splitting a stream into partial
// samples and merging reproduces the single-sample statistics — the
// property per-trial partial results rely on.
func TestMergeMatchesSequential(t *testing.T) {
	xs := []float64{7, 3, 3, 11, 0.5, 2, 9, 4}
	var whole Sample
	whole.AddAll(xs...)
	var merged Sample
	for i := 0; i < len(xs); i += 3 {
		part := &Sample{}
		part.AddAll(xs[i:min(i+3, len(xs))]...)
		merged.Merge(part)
	}
	if merged.N() != whole.N() || merged.Mean() != whole.Mean() ||
		merged.Median() != whole.Median() || merged.Percentile(95) != whole.Percentile(95) {
		t.Errorf("merged stats diverge: %s vs %s", merged.Summarize(), whole.Summarize())
	}
}

func TestStdDev(t *testing.T) {
	var s Sample
	s.AddAll(2, 4, 4, 4, 5, 5, 7, 9)
	if got := s.StdDev(); math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", got)
	}
	var one Sample
	one.Add(5)
	if one.StdDev() != 0 {
		t.Error("single-element stddev should be 0")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Percentile(50); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("P50 = %v, want 50.5", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("P0 = %v, want 1", got)
	}
	if got := s.Percentile(100); got != 100 {
		t.Errorf("P100 = %v, want 100", got)
	}
	if got := s.Percentile(95); math.Abs(got-95.05) > 1e-9 {
		t.Errorf("P95 = %v, want 95.05", got)
	}
}

func TestPercentileMonotonic(t *testing.T) {
	f := func(vals []float64, a, b float64) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		pa := math.Mod(math.Abs(a), 100)
		pb := math.Mod(math.Abs(b), 100)
		if pa > pb {
			pa, pb = pb, pa
		}
		var s Sample
		s.AddAll(vals...)
		return s.Percentile(pa) <= s.Percentile(pb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCDF(t *testing.T) {
	var s Sample
	s.AddAll(1, 1, 2, 3)
	pts := s.CDF()
	want := []CDFPoint{{1, 0.5}, {2, 0.75}, {3, 1.0}}
	if len(pts) != len(want) {
		t.Fatalf("CDF = %v", pts)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Errorf("CDF[%d] = %v, want %v", i, pts[i], want[i])
		}
	}
	// CDF is nondecreasing and ends at 1.
	if !sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i].Value < pts[j].Value }) {
		t.Error("CDF values not sorted")
	}
	if pts[len(pts)-1].Fraction != 1 {
		t.Error("CDF does not end at 1")
	}
}

func TestFractionBelow(t *testing.T) {
	var s Sample
	s.AddAll(10, 20, 30, 40)
	cases := []struct {
		x    float64
		want float64
	}{{5, 0}, {10, 0.25}, {25, 0.5}, {40, 1}, {100, 1}}
	for _, c := range cases {
		if got := s.FractionBelow(c.x); got != c.want {
			t.Errorf("FractionBelow(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestSummarize(t *testing.T) {
	var s Sample
	for i := 1; i <= 10; i++ {
		s.Add(float64(i))
	}
	sum := s.Summarize()
	if sum.N != 10 || sum.Mean != 5.5 || sum.Min != 1 || sum.Max != 10 {
		t.Errorf("Summary = %+v", sum)
	}
	if !strings.Contains(sum.String(), "n=10") {
		t.Errorf("String = %q", sum.String())
	}
}

func TestTableFormatting(t *testing.T) {
	tbl := NewTable("Fig X", "scheme", "latency_ms")
	tbl.AddRow("ACACIA", 13.5)
	tbl.AddRow("CLOUD", 70.0)
	out := tbl.String()
	if !strings.Contains(out, "# Fig X") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title, header, two rows
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[2], "ACACIA") || !strings.Contains(lines[3], "70") {
		t.Errorf("rows: %q", out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{12345, "12345"},
		{70.25, "70.2"},
		{3.14159, "3.14"},
		{0.0123, "0.0123"},
		{0.0001234, "0.000123"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.in); got != c.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestRatio(t *testing.T) {
	if Ratio(10, 2) != 5 {
		t.Error("Ratio(10,2)")
	}
	if Ratio(10, 0) != 0 {
		t.Error("Ratio by zero should be 0")
	}
}

func TestMeanMatchesManualComputation(t *testing.T) {
	f := func(vals []float64) bool {
		var s Sample
		var sum float64
		ok := true
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e15 {
				ok = false
				break
			}
			s.Add(v)
			sum += v
		}
		if !ok || s.N() == 0 {
			return true
		}
		want := sum / float64(s.N())
		return math.Abs(s.Mean()-want) <= 1e-9*math.Max(1, math.Abs(want))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("Fig X", "scheme", "latency,ms", "note")
	tbl.AddRow("ACACIA", 13.5, `says "fast"`)
	out := tbl.CSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines: %q", out)
	}
	if lines[1] != `scheme,"latency,ms",note` {
		t.Errorf("header: %q", lines[1])
	}
	if lines[2] != `ACACIA,13.5,"says ""fast"""` {
		t.Errorf("row: %q", lines[2])
	}
}
