// Package netsim simulates a packet network in virtual time on top of the
// sim engine: nodes connected by links with propagation delay, serialization
// at a configured bandwidth, bounded drop-tail queues and optional
// QCI-priority scheduling, plus per-node CPU processing costs.
//
// The EPC gateways, SDN switches, hosts and traffic generators of the ACACIA
// testbed are all netsim nodes. Latency and throughput numbers in the
// experiments are measured by instrumenting packets as they traverse this
// substrate.
package netsim

import (
	"time"

	"acacia/internal/pkt"
	"acacia/internal/sim"
)

// Packet is one simulated datagram. Packets are passed by pointer and owned
// by whichever queue or handler currently holds them; handlers that fan a
// packet out must Clone it.
type Packet struct {
	// ID is unique per network for tracing.
	ID uint64
	// Flow is the inner five-tuple (endpoint view).
	Flow pkt.FiveTuple
	// TOS is the inner IP TOS byte; bearers mark it from their QCI.
	TOS uint8
	// Size is the current on-the-wire size in bytes, including any tunnel
	// encapsulation currently applied.
	Size int
	// Payload carries an application-defined value (request/response
	// structs); it does not contribute to Size, which callers set
	// explicitly.
	Payload any

	// Tunnel state: when TEID is non-zero the packet is GTP-U encapsulated
	// between TunnelSrc and TunnelDst and Size includes pkt.GTPUOverhead.
	TEID                 uint32
	TunnelSrc, TunnelDst pkt.Addr

	// Priority is the scheduling priority derived from the bearer QCI
	// (lower = served first). Zero means default best effort.
	Priority int

	// CreatedAt is when the packet entered the network.
	CreatedAt sim.Time
	// QueueWait accumulates the time spent waiting in link transmit queues
	// across every hop so far.
	QueueWait time.Duration
	// Hops counts forwarding operations, a loop guard.
	Hops int

	// pooled marks packets drawn from a domain free-list
	// (Network.NewPacket/Node.NewPacket/ClonePacket); only those are
	// recycled by Release. freed marks a pooled packet currently resting in
	// the free-list, the double-release canary. retained marks a packet an
	// application decided to keep past the delivery callback: Release then
	// becomes a no-op and the packet leaves pool management for good.
	pooled, freed, retained bool
	// dom is the partition domain that currently owns the packet: the
	// domain it was allocated in, updated each time it crosses a partition
	// link (linkDir.arrive). Release recycles into this domain's pool. Nil
	// for non-pooled packets (treated as the root domain).
	dom *Domain
}

// Retain opts the packet out of pool recycling. Applications that keep a
// delivered packet beyond their callback (downlink buffering, reinjection
// queues) call this so a later Release at a drop site cannot recycle state
// they still hold.
func (p *Packet) Retain() { p.retained = true }

// MaxHops aborts forwarding loops: no testbed path is longer than this.
const MaxHops = 64

// Clone returns a copy of p sharing the Payload value. The copy is not pool
// managed; use Network.ClonePacket on hot paths.
func (p *Packet) Clone() *Packet {
	c := *p
	c.pooled, c.freed, c.retained = false, false, false
	return &c
}

// Encapsulate applies GTP-U tunnel state between two gateway addresses and
// grows the wire size by the encapsulation overhead.
func (p *Packet) Encapsulate(src, dst pkt.Addr, teid uint32) {
	if p.TEID != 0 {
		panicDoubleGTP()
	}
	p.TEID = teid
	p.TunnelSrc, p.TunnelDst = src, dst
	p.Size += pkt.GTPUOverhead
}

// panicDoubleGTP is noinline so the boxed panic message stays out of
// hotpath callers' escape profiles.
//
//go:noinline
func panicDoubleGTP() {
	panic("netsim: double GTP encapsulation")
}

// Decapsulate removes GTP-U tunnel state and returns the TEID it carried.
func (p *Packet) Decapsulate() uint32 {
	if p.TEID == 0 {
		panic("netsim: decapsulating an untunneled packet")
	}
	teid := p.TEID
	p.TEID = 0
	p.TunnelSrc, p.TunnelDst = pkt.Addr{}, pkt.Addr{}
	p.Size -= pkt.GTPUOverhead
	return teid
}

// Tunneled reports whether the packet currently carries GTP-U encapsulation.
func (p *Packet) Tunneled() bool { return p.TEID != 0 }
