package netsim

import (
	"time"

	"acacia/internal/sim"
	"acacia/internal/telemetry"
)

// LinkConfig describes one direction of a link.
type LinkConfig struct {
	// BitsPerSecond is the serialization rate. Zero means infinite
	// bandwidth (pure delay line).
	BitsPerSecond float64
	// Propagation is the one-way propagation delay.
	Propagation time.Duration
	// Jitter adds an exponentially distributed extra delay with this mean
	// to each delivery — the right-skewed scheduling jitter of an LTE
	// radio link. Zero disables it.
	Jitter time.Duration
	// QueueBytes bounds the transmit queue (drop-tail). Zero means a
	// generous default of 256 KiB.
	QueueBytes int
	// Prioritized selects QCI-priority scheduling instead of FIFO. The
	// eNodeB radio scheduler uses this; wired links are FIFO.
	Prioritized bool
	// LossProb drops each offered packet independently with this
	// probability, before queueing. Zero (the default) draws no random
	// numbers, so loss-free runs stay byte-identical with or without the
	// field. Loss-injection for robustness experiments.
	LossProb float64
}

// DefaultQueueBytes is the transmit queue bound applied when a LinkConfig
// leaves QueueBytes zero.
const DefaultQueueBytes = 256 << 10

// LinkStats counts per-direction link activity. It is a point-in-time view
// assembled from the link's telemetry counters (the authoritative store in
// the engine's metrics registry).
//
// Counter semantics: Sent counts packets accepted for transmission (queued
// behind the transmitter or put on the delay line); Dropped counts packets
// refused at the transmitter (down direction, injected loss, full queue).
// Every drop happens at offer time, so Sent + Dropped is the offered load
// (see Offered) and Sent − Delivered is the number of packets currently
// queued or in flight.
type LinkStats struct {
	Sent      uint64
	Delivered uint64
	Dropped   uint64
	Bytes     uint64
}

// Offered reports the total load offered to the transmitter: packets
// accepted (Sent) plus packets dropped at offer time (Dropped).
func (s LinkStats) Offered() uint64 { return s.Sent + s.Dropped }

// linkDir is one direction of a link: a single transmitter serving a bounded
// queue, followed by a propagation delay line. Its activity counters live in
// the engine's telemetry registry under netsim/link/<n>/<src>-><dst>/.
type linkDir struct {
	net *Network
	// eng drives the transmit side (queueing, serialization, loss/jitter
	// draws): the source node's domain engine. dstEng/dstDom are the
	// receiving end; cross marks directions whose ends live in different
	// partition domains, making the propagation leg a cross-partition send.
	eng    *sim.Engine
	dstEng *sim.Engine
	dstDom *Domain
	cross  bool
	cfg    LinkConfig
	dst    *Port
	queue  pktHeap
	qBytes int
	busy   bool
	down   bool
	seq    uint64 // FIFO tie-break within a priority level

	// txDoneF/arriveF are method values bound once at construction and
	// passed to Engine.AfterArg, so per-packet scheduling allocates no
	// closures.
	txDoneF func(any)
	arriveF func(any)

	sent      *telemetry.Counter
	delivered *telemetry.Counter
	dropped   *telemetry.Counter
	bytes     *telemetry.Counter
	queueLen  *telemetry.Gauge // queued bytes awaiting transmission
}

func newLinkDir(net *Network, srcDom, dstDom *Domain, cfg LinkConfig, dst *Port, srcScope, dstScope telemetry.Scope) *linkDir {
	if cfg.QueueBytes == 0 {
		cfg.QueueBytes = DefaultQueueBytes
	}
	d := &linkDir{
		net: net, eng: srcDom.eng, dstEng: dstDom.eng, dstDom: dstDom,
		cross: srcDom != dstDom,
		cfg:   cfg, dst: dst,
		// Source-side events touch sent/dropped/bytes/queue-bytes; the
		// arrival event — which runs in the destination partition — touches
		// delivered, so it registers in the destination registry.
		sent:      srcScope.Counter("sent"),
		delivered: dstScope.Counter("delivered"),
		dropped:   srcScope.Counter("dropped"),
		bytes:     srcScope.Counter("bytes"),
		queueLen:  srcScope.Gauge("queue-bytes"),
	}
	d.txDoneF = d.txDone
	d.arriveF = d.arrive
	return d
}

// stats assembles the compatibility counter view from the registry counters.
func (d *linkDir) statsView() LinkStats {
	return LinkStats{
		Sent:      d.sent.Value(),
		Delivered: d.delivered.Value(),
		Dropped:   d.dropped.Value(),
		Bytes:     d.bytes.Value(),
	}
}

// send offers p to the transmitter. All drops (down direction, injected
// loss, full queue) happen here, before a packet counts as sent, keeping
// the LinkStats identities Sent + Dropped = offered and Sent − Delivered =
// queued + in flight.
//
//acacia:hotpath
func (d *linkDir) send(p *Packet) {
	if d.down {
		d.dropped.Inc()
		d.net.Release(p)
		return
	}
	if d.cfg.LossProb > 0 && d.eng.RNG().Float64() < d.cfg.LossProb {
		d.dropped.Inc()
		d.net.Release(p)
		return
	}
	if d.cfg.BitsPerSecond == 0 && !d.busy {
		// Pure delay line: no serialization, no queueing. The busy check
		// keeps delivery in arrival order while packets queued under a
		// previous finite-rate config are still draining (SetConfigAB
		// mid-run); until the drain completes, new arrivals queue behind.
		d.sent.Inc()
		d.bytes.Add(uint64(p.Size))
		d.deliverAfter(p, d.cfg.Propagation)
		return
	}
	if d.qBytes+p.Size > d.cfg.QueueBytes {
		d.dropped.Inc()
		d.net.Release(p)
		return
	}
	d.sent.Inc()
	d.qBytes += p.Size
	d.queueLen.Set(float64(d.qBytes))
	prio := 0
	if d.cfg.Prioritized {
		prio = p.Priority
	}
	d.queue.push(queuedPacket{p: p, prio: prio, seq: d.seq, enq: d.eng.Now()})
	d.seq++
	if !d.busy {
		d.transmitNext()
	}
}

//acacia:hotpath
func (d *linkDir) transmitNext() {
	if d.queue.Len() == 0 {
		d.busy = false
		return
	}
	d.busy = true
	item := d.queue.pop()
	p := item.p
	p.QueueWait += d.eng.Now().Sub(item.enq)
	d.qBytes -= p.Size
	d.queueLen.Set(float64(d.qBytes))
	// Zero BitsPerSecond means infinite bandwidth. A direction can be
	// reconfigured to it mid-run while packets queued under the previous
	// finite rate still wait: those drain here in queue order with zero
	// serialization time, instead of the +Inf division (and the garbage
	// schedule time.Duration(+Inf) produces) the old code hit.
	var txTime time.Duration
	if d.cfg.BitsPerSecond > 0 {
		txTime = time.Duration(float64(p.Size*8) / d.cfg.BitsPerSecond * float64(time.Second))
	}
	d.eng.AfterArg(txTime, d.txDoneF, p)
}

// txDone finishes one serialization: account the bytes, put the packet on
// the delay line and start the next transmission.
//
//acacia:hotpath
func (d *linkDir) txDone(v any) {
	p := v.(*Packet)
	d.bytes.Add(uint64(p.Size))
	d.deliverAfter(p, d.cfg.Propagation)
	d.transmitNext()
}

//acacia:hotpath
func (d *linkDir) deliverAfter(p *Packet, delay time.Duration) {
	if d.cfg.Jitter > 0 {
		delay += time.Duration(d.eng.RNG().ExpFloat64() * float64(d.cfg.Jitter))
	}
	// SendTo degenerates to AfterArg when both ends share an engine; on a
	// cross-partition direction it routes the arrival through the cluster
	// outbox. The propagation delay must then be at least the cluster
	// lookahead — guaranteed when the lookahead is extracted from
	// MinCrossLatency — or SendTo panics.
	d.eng.SendTo(d.dstEng, delay, d.arriveF, p)
}

// arrive completes the propagation delay and hands the packet to the
// destination node. It executes in the destination partition; on a
// cross-partition direction the packet is re-homed first, so releases and
// clones downstream use the pool of the partition that now owns it.
//
//acacia:hotpath
func (d *linkDir) arrive(v any) {
	p := v.(*Packet)
	if d.cross {
		p.dom = d.dstDom
	}
	d.delivered.Inc()
	d.dst.deliver(p)
}

// Backlog reports the bytes currently waiting in the transmit queue.
func (d *linkDir) Backlog() int { return d.qBytes }

type queuedPacket struct {
	p    *Packet
	prio int
	seq  uint64
	enq  sim.Time
}

// pktHeap is a hand-rolled binary min-heap of queuedPacket values ordered by
// (prio, seq). container/heap would box every value through its any-typed
// Push/Pop, allocating per enqueue on the busiest path in the simulator;
// storing values in a plain slice makes enqueue allocation-free (amortized).
type pktHeap []queuedPacket

func (h pktHeap) Len() int { return len(h) }

func (h pktHeap) less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio < h[j].prio
	}
	return h[i].seq < h[j].seq
}

//acacia:hotpath
func (h *pktHeap) push(it queuedPacket) {
	q := append(*h, it)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
	*h = q
}

//acacia:hotpath
func (h *pktHeap) pop() queuedPacket {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = queuedPacket{}
	q = q[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && q.less(l, small) {
			small = l
		}
		if r < n && q.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		q[i], q[small] = q[small], q[i]
		i = small
	}
	*h = q
	return top
}

// Link is a bidirectional connection between two ports. Each direction has
// independent bandwidth, delay and queueing.
type Link struct {
	A, B   *Port
	ab, ba *linkDir
}

// StatsAB reports counters for the A->B direction, read from the telemetry
// registry the direction registers into.
func (l *Link) StatsAB() LinkStats { return l.ab.statsView() }

// StatsBA reports counters for the B->A direction.
func (l *Link) StatsBA() LinkStats { return l.ba.statsView() }

// BacklogAB reports queued bytes in the A->B direction.
func (l *Link) BacklogAB() int { return l.ab.Backlog() }

// SetConfigAB replaces the A->B direction configuration. Used by
// experiments that vary emulated rate or RTT mid-run. Packets already
// queued keep their place and serialize under the new rate as they reach
// the transmitter; when the new rate is zero ("infinite"), they drain in
// queue order with zero serialization time, and fresh arrivals bypass the
// queue only once the drain has finished (arrival order is preserved).
func (l *Link) SetConfigAB(cfg LinkConfig) {
	if cfg.QueueBytes == 0 {
		cfg.QueueBytes = DefaultQueueBytes
	}
	l.ab.cfg = cfg
}

// SetConfigBA replaces the B->A direction configuration.
func (l *Link) SetConfigBA(cfg LinkConfig) {
	if cfg.QueueBytes == 0 {
		cfg.QueueBytes = DefaultQueueBytes
	}
	l.ba.cfg = cfg
}

// SetDown fails (true) or repairs (false) the link: while down, every
// packet offered in either direction is dropped at the transmitter.
// Packets already in flight are delivered. Failure-injection for tests and
// experiments.
func (l *Link) SetDown(down bool) {
	l.ab.down = down
	l.ba.down = down
}

// Down reports whether the link is currently failed.
func (l *Link) Down() bool { return l.ab.down }

// SetLoss injects independent per-packet loss with probability p in both
// directions. Zero restores lossless operation.
func (l *Link) SetLoss(p float64) {
	l.ab.cfg.LossProb = p
	l.ba.cfg.LossProb = p
}

// Port is one attachment point of a link on a node.
type Port struct {
	Node *Node
	// ID is the node-local port number (OpenFlow in_port).
	ID   int
	link *Link
	out  *linkDir // transmit direction away from this port
}

// Send transmits p out of this port.
func (pt *Port) Send(p *Packet) {
	if pt.out == nil {
		panicUnconnected(pt.Node.Name())
	}
	pt.out.send(p)
}

// panicUnconnected is noinline so the message concatenation stays out of
// hotpath callers' escape profiles.
//
//go:noinline
func panicUnconnected(node string) {
	panic("netsim: send on unconnected port " + node)
}

// Peer returns the port at the other end of the attached link.
func (pt *Port) Peer() *Port {
	if pt.link == nil {
		return nil
	}
	if pt.link.A == pt {
		return pt.link.B
	}
	return pt.link.A
}

// Link returns the attached link.
func (pt *Port) Link() *Link { return pt.link }

func (pt *Port) deliver(p *Packet) {
	pt.Node.receive(pt, p)
}
