package netsim

import (
	"time"

	"acacia/internal/sim"
)

// Domain is the partition-affinity unit of a network: a group of nodes driven
// by one sim engine. A plain network has a single root domain on the engine
// it was created with — exactly the historical behavior. Under intra-run
// parallelism (sim.Cluster) each edge site gets its own domain on its
// partition engine; links whose endpoints sit in different domains become the
// cross-partition boundary, delivering through Engine.SendTo instead of a
// local timer.
//
// Each domain owns a packet free-list and packet-ID sequence, so partitions
// recycle packet memory without sharing: a packet crossing a domain link is
// re-homed to the receiving domain on arrival (see linkDir.arrive), and
// Release returns it to the pool of the domain that currently owns it.
type Domain struct {
	net *Network
	eng *sim.Engine
	// id tags packet IDs (high byte) so per-domain sequences stay globally
	// unique. The root domain is id 0, keeping legacy packet IDs unchanged.
	id      int
	pktSeq  uint64
	pktFree []*Packet
}

// Engine returns the domain's driving engine.
func (d *Domain) Engine() *sim.Engine { return d.eng }

// nextPacketID allocates a domain-unique packet ID whose high byte carries
// the domain id, keeping IDs globally unique across partitions without a
// shared counter. Root-domain IDs (id 0) are identical to the historical
// network-wide sequence.
func (d *Domain) nextPacketID() uint64 {
	d.pktSeq++
	return d.pktSeq | uint64(d.id)<<56
}

// AddDomain registers eng as a new partition domain of the network. Nodes
// are placed into it with SetDomain before any links are connected.
func (nw *Network) AddDomain(eng *sim.Engine) *Domain {
	if len(nw.domains) >= 256 {
		panic("netsim: too many domains (packet IDs carry the domain in one byte)")
	}
	d := &Domain{net: nw, eng: eng, id: len(nw.domains)}
	nw.domains = append(nw.domains, d)
	return d
}

// RootDomain returns the domain of the network's own engine, which every
// node belongs to until SetDomain moves it.
func (nw *Network) RootDomain() *Domain { return nw.domains[0] }

// Domains returns all domains in creation order (root first).
func (nw *Network) Domains() []*Domain { return nw.domains }

// SetDomain moves n into domain d. It must be called before the node is
// connected to anything: link directions bind their endpoint engines at
// Connect time (and switches, hosts and backends capture Node.Engine() at
// construction), so moving a wired node would split its state across
// partitions.
func (nw *Network) SetDomain(n *Node, d *Domain) {
	if d.net != nw {
		panic("netsim: domain belongs to a different network")
	}
	if len(n.ports) > 0 {
		panic("netsim: SetDomain after Connect on node " + n.name)
	}
	n.dom = d
}

// MinCrossLatency reports the smallest propagation delay of any link
// direction that crosses domains, and whether any such direction exists.
// This is the conservative lookahead bound for sim.Cluster: no event can
// affect another partition sooner than this (jitter only adds delay).
func (nw *Network) MinCrossLatency() (time.Duration, bool) {
	best, ok := time.Duration(0), false
	for _, l := range nw.links {
		for _, d := range []*linkDir{l.ab, l.ba} {
			if d.cross && (!ok || d.cfg.Propagation < best) {
				best, ok = d.cfg.Propagation, true
			}
		}
	}
	return best, ok
}
