package netsim

import (
	"fmt"
	"sort"

	"acacia/internal/pkt"
)

// Route is one static routing entry: destinations matching Prefix/Mask
// egress via Port.
type Route struct {
	Prefix pkt.Addr
	Mask   pkt.Addr
	Port   *Port
}

func (r Route) matches(a pkt.Addr) bool {
	for i := 0; i < 4; i++ {
		if a[i]&r.Mask[i] != r.Prefix[i]&r.Mask[i] {
			return false
		}
	}
	return true
}

func (r Route) maskLen() int {
	n := 0
	for _, b := range r.Mask {
		for ; b != 0; b <<= 1 {
			if b&0x80 != 0 {
				n++
			}
		}
	}
	return n
}

// Router forwards by longest-prefix match over static routes. It routes on
// the *outer* header when a packet is tunneled (TunnelDst) and the inner
// destination otherwise, exactly as an IP router under GTP-U does.
type Router struct {
	Node   *Node
	routes []Route
	// Dropped counts packets with no matching route.
	Dropped uint64
}

// NewRouter wraps node with routing behaviour and installs its handler.
func NewRouter(node *Node) *Router {
	r := &Router{Node: node}
	node.SetHandler(r.forward)
	return r
}

// AddRoute installs a route. Routes may be added in any order; lookup is
// longest-prefix, ties broken by insertion order.
func (r *Router) AddRoute(prefix, mask pkt.Addr, port *Port) {
	r.routes = append(r.routes, Route{Prefix: prefix, Mask: mask, Port: port})
	sort.SliceStable(r.routes, func(i, j int) bool {
		return r.routes[i].maskLen() > r.routes[j].maskLen()
	})
}

// AddHostRoute installs a /32 route to a single address.
func (r *Router) AddHostRoute(addr pkt.Addr, port *Port) {
	r.AddRoute(addr, pkt.Addr{255, 255, 255, 255}, port)
}

// AddDefaultRoute installs the catch-all route.
func (r *Router) AddDefaultRoute(port *Port) {
	r.AddRoute(pkt.Addr{}, pkt.Addr{}, port)
}

// Lookup returns the egress port for dst, or nil.
func (r *Router) Lookup(dst pkt.Addr) *Port {
	for _, rt := range r.routes {
		if rt.matches(dst) {
			return rt.Port
		}
	}
	return nil
}

//acacia:hotpath
func (r *Router) forward(ingress *Port, p *Packet) {
	dst := p.Flow.Dst
	if p.Tunneled() {
		dst = p.TunnelDst
	}
	port := r.Lookup(dst)
	if port == nil {
		r.Dropped++
		r.Node.Network().Release(p)
		return
	}
	port.Send(p)
}

// String describes the routing table, for debugging topologies.
func (r *Router) String() string {
	s := fmt.Sprintf("router %s:\n", r.Node.Name())
	for _, rt := range r.routes {
		s += fmt.Sprintf("  %v/%d -> port %d (%s)\n", rt.Prefix, rt.maskLen(), rt.Port.ID, rt.Port.Peer().Node.Name())
	}
	return s
}
