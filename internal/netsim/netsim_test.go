package netsim

import (
	"math"
	"testing"
	"time"

	"acacia/internal/pkt"
	"acacia/internal/sim"
)

// twoHosts builds A <-> B with the given symmetric link config and returns
// hosts plus the link.
func twoHosts(t *testing.T, cfg LinkConfig) (*sim.Engine, *Host, *Host, *Link) {
	t.Helper()
	eng := sim.NewEngine(1)
	nw := New(eng)
	na := nw.AddNode("a", pkt.AddrFrom(10, 0, 0, 1))
	nb := nw.AddNode("b", pkt.AddrFrom(10, 0, 0, 2))
	l := nw.ConnectSymmetric(na, nb, cfg)
	return eng, NewHost(na), NewHost(nb), l
}

func TestPointToPointDelivery(t *testing.T) {
	eng, ha, hb, _ := twoHosts(t, LinkConfig{Propagation: 5 * time.Millisecond})
	var gotAt sim.Time
	hb.Listen(80, AppFunc(func(_ *Host, p *Packet) { gotAt = eng.Now() }))
	ha.Send(hb.Node.Addr(), 1234, 80, pkt.ProtoUDP, 100, nil)
	eng.Run()
	if gotAt != sim.Time(5*time.Millisecond) {
		t.Errorf("delivered at %v, want 5ms", gotAt)
	}
}

func TestSerializationDelay(t *testing.T) {
	// 1 Mbps link, 1250-byte packet => 10 ms serialization + 2 ms prop.
	eng, ha, hb, _ := twoHosts(t, LinkConfig{BitsPerSecond: 1e6, Propagation: 2 * time.Millisecond})
	var gotAt sim.Time
	hb.Listen(80, AppFunc(func(_ *Host, p *Packet) { gotAt = eng.Now() }))
	ha.Send(hb.Node.Addr(), 1, 80, pkt.ProtoUDP, 1250, nil)
	eng.Run()
	want := sim.Time(12 * time.Millisecond)
	if gotAt != want {
		t.Errorf("delivered at %v, want %v", gotAt, want)
	}
}

func TestQueueingDelayAccumulates(t *testing.T) {
	// Two back-to-back packets: second waits for the first's serialization.
	eng, ha, hb, _ := twoHosts(t, LinkConfig{BitsPerSecond: 1e6, Propagation: 0})
	var arrivals []sim.Time
	hb.Listen(80, AppFunc(func(_ *Host, p *Packet) { arrivals = append(arrivals, eng.Now()) }))
	ha.Send(hb.Node.Addr(), 1, 80, pkt.ProtoUDP, 1250, nil)
	ha.Send(hb.Node.Addr(), 1, 80, pkt.ProtoUDP, 1250, nil)
	eng.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	if arrivals[0] != sim.Time(10*time.Millisecond) || arrivals[1] != sim.Time(20*time.Millisecond) {
		t.Errorf("arrivals = %v, want 10ms/20ms", arrivals)
	}
}

func TestDropTailQueue(t *testing.T) {
	eng, ha, hb, l := twoHosts(t, LinkConfig{BitsPerSecond: 1e6, QueueBytes: 2500})
	var got int
	hb.Listen(80, AppFunc(func(_ *Host, p *Packet) { got++ }))
	// Burst of 10 x 1250B; queue holds 2 beyond the one in service.
	for i := 0; i < 10; i++ {
		ha.Send(hb.Node.Addr(), 1, 80, pkt.ProtoUDP, 1250, nil)
	}
	eng.Run()
	if got != 3 {
		t.Errorf("delivered %d, want 3 (1 in service + 2 queued)", got)
	}
	if drops := l.StatsAB().Dropped; drops != 7 {
		t.Errorf("drops = %d, want 7", drops)
	}
}

// TestDropTailBoundary pins the drop-tail comparison at the exact queue
// boundary: a packet that fills QueueBytes to the byte is accepted, one
// more byte is dropped, and the telemetry counter agrees with LinkStats.
func TestDropTailBoundary(t *testing.T) {
	eng, ha, hb, l := twoHosts(t, LinkConfig{BitsPerSecond: 1e6, QueueBytes: 1000})
	var got int
	hb.Listen(80, AppFunc(func(_ *Host, p *Packet) { got++ }))
	// First packet goes straight into service (it never occupies the
	// queue); the second fills the queue exactly; the third is one byte
	// over and must be the only drop.
	ha.Send(hb.Node.Addr(), 1, 80, pkt.ProtoUDP, 100, nil)
	ha.Send(hb.Node.Addr(), 1, 80, pkt.ProtoUDP, 1000, nil)
	ha.Send(hb.Node.Addr(), 1, 80, pkt.ProtoUDP, 1, nil)
	eng.Run()
	if got != 2 {
		t.Errorf("delivered %d, want 2 (exact fill accepted)", got)
	}
	st := l.StatsAB()
	if st.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1 (one byte over the bound)", st.Dropped)
	}
	snap := eng.Metrics().Snapshot()
	if v := snap.CounterValue("netsim/link/0/a->b/dropped"); v != st.Dropped {
		t.Errorf("telemetry dropped = %d, LinkStats.Dropped = %d; must agree", v, st.Dropped)
	}
	if v := snap.CounterValue("netsim/link/0/a->b/sent"); v != st.Sent {
		t.Errorf("telemetry sent = %d, LinkStats.Sent = %d; must agree", v, st.Sent)
	}
}

func TestPriorityScheduling(t *testing.T) {
	// A low-priority burst followed by one high-priority packet on a
	// prioritized link: the high-priority packet overtakes the queue.
	eng := sim.NewEngine(1)
	nw := New(eng)
	na := nw.AddNode("a", pkt.AddrFrom(10, 0, 0, 1))
	nb := nw.AddNode("b", pkt.AddrFrom(10, 0, 0, 2))
	nw.ConnectSymmetric(na, nb, LinkConfig{BitsPerSecond: 1e6, Prioritized: true})
	ha, hb := NewHost(na), NewHost(nb)

	var order []int
	hb.Listen(80, AppFunc(func(_ *Host, p *Packet) { order = append(order, p.Priority) }))

	for i := 0; i < 5; i++ {
		p := &Packet{Flow: pkt.FiveTuple{Src: na.Addr(), Dst: nb.Addr(), DstPort: 80, Proto: pkt.ProtoUDP}, Size: 1250, Priority: 9}
		na.Inject(p)
	}
	hp := &Packet{Flow: pkt.FiveTuple{Src: na.Addr(), Dst: nb.Addr(), DstPort: 80, Proto: pkt.ProtoUDP}, Size: 1250, Priority: 1}
	na.Inject(hp)
	eng.Run()

	if len(order) != 6 {
		t.Fatalf("order = %v", order)
	}
	// First delivery is the packet already in service (priority 9); the
	// high-priority packet must come second, ahead of the remaining 9s.
	if order[0] != 9 || order[1] != 1 {
		t.Errorf("order = %v, want high-priority overtaking at position 1", order)
	}
	_ = ha
}

func TestFIFOIgnoresPriority(t *testing.T) {
	eng, _, hb, _ := twoHosts(t, LinkConfig{BitsPerSecond: 1e6})
	nw := hb.Node.Network()
	na := nw.Node("a")
	var order []int
	hb.Listen(80, AppFunc(func(_ *Host, p *Packet) { order = append(order, p.Priority) }))
	for i := 0; i < 3; i++ {
		na.Inject(&Packet{Flow: pkt.FiveTuple{Src: na.Addr(), Dst: hb.Node.Addr(), DstPort: 80}, Size: 100, Priority: 9})
	}
	na.Inject(&Packet{Flow: pkt.FiveTuple{Src: na.Addr(), Dst: hb.Node.Addr(), DstPort: 80}, Size: 100, Priority: 1})
	eng.Run()
	want := []int{9, 9, 9, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v (FIFO)", order, want)
		}
	}
}

func TestRouterLongestPrefixMatch(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := New(eng)
	r := nw.AddNode("r", pkt.AddrFrom(10, 0, 0, 254))
	h1 := nw.AddNode("h1", pkt.AddrFrom(10, 1, 0, 1))
	h2 := nw.AddNode("h2", pkt.AddrFrom(10, 1, 2, 1))
	h3 := nw.AddNode("h3", pkt.AddrFrom(8, 8, 8, 8))
	cfg := LinkConfig{Propagation: time.Millisecond}
	nw.ConnectSymmetric(h1, r, cfg)
	nw.ConnectSymmetric(h2, r, cfg)
	nw.ConnectSymmetric(h3, r, cfg)

	router := NewRouter(r)
	router.AddRoute(pkt.AddrFrom(10, 1, 0, 0), pkt.Addr{255, 255, 0, 0}, r.Port(0))
	router.AddRoute(pkt.AddrFrom(10, 1, 2, 0), pkt.Addr{255, 255, 255, 0}, r.Port(1))
	router.AddDefaultRoute(r.Port(2))

	if got := router.Lookup(pkt.AddrFrom(10, 1, 9, 9)); got != r.Port(0) {
		t.Error("expected /16 route")
	}
	if got := router.Lookup(pkt.AddrFrom(10, 1, 2, 7)); got != r.Port(1) {
		t.Error("expected more-specific /24 route")
	}
	if got := router.Lookup(pkt.AddrFrom(99, 9, 9, 9)); got != r.Port(2) {
		t.Error("expected default route")
	}

	// End to end: h1 -> h2 via router.
	host1, host2 := NewHost(h1), NewHost(h2)
	_ = host1
	var got int
	host2.Listen(80, AppFunc(func(_ *Host, p *Packet) { got++ }))
	host1.Send(h2.Addr(), 1, 80, pkt.ProtoUDP, 100, nil)
	eng.Run()
	if got != 1 {
		t.Error("routed packet not delivered")
	}
}

func TestRouterDropsUnroutable(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := New(eng)
	r := nw.AddNode("r", pkt.Addr{})
	h := nw.AddNode("h", pkt.AddrFrom(10, 0, 0, 1))
	nw.ConnectSymmetric(h, r, LinkConfig{})
	router := NewRouter(r)
	host := NewHost(h)
	host.Send(pkt.AddrFrom(99, 0, 0, 1), 1, 2, pkt.ProtoUDP, 10, nil)
	eng.Run()
	if router.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", router.Dropped)
	}
}

func TestRouterUsesTunnelDst(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := New(eng)
	r := nw.AddNode("r", pkt.Addr{})
	gwA := nw.AddNode("gwA", pkt.AddrFrom(10, 0, 0, 1))
	gwB := nw.AddNode("gwB", pkt.AddrFrom(10, 0, 0, 2))
	nw.ConnectSymmetric(gwA, r, LinkConfig{})
	nw.ConnectSymmetric(gwB, r, LinkConfig{})
	router := NewRouter(r)
	router.AddHostRoute(gwA.Addr(), r.Port(0))
	router.AddHostRoute(gwB.Addr(), r.Port(1))

	var arrived bool
	NewHost(gwA)
	hb := NewHost(gwB)
	hb.Node.SetHandler(func(ingress *Port, p *Packet) {
		if p.Tunneled() {
			arrived = true
		}
	})
	// Inner dst is an address the router has no route for; the tunnel dst
	// must carry it to gwB anyway.
	p := &Packet{Flow: pkt.FiveTuple{Src: pkt.AddrFrom(172, 16, 0, 1), Dst: pkt.AddrFrom(172, 16, 0, 2), DstPort: 9}, Size: 100}
	p.Encapsulate(gwA.Addr(), gwB.Addr(), 42)
	gwA.Port(0).Send(p)
	eng.Run()
	if !arrived {
		t.Error("tunneled packet not routed by outer destination")
	}
}

func TestEncapsulateDecapsulateSizeAccounting(t *testing.T) {
	p := &Packet{Size: 1000}
	p.Encapsulate(pkt.AddrFrom(1, 0, 0, 1), pkt.AddrFrom(1, 0, 0, 2), 7)
	if p.Size != 1000+pkt.GTPUOverhead {
		t.Errorf("size = %d", p.Size)
	}
	if !p.Tunneled() {
		t.Error("not tunneled after Encapsulate")
	}
	if teid := p.Decapsulate(); teid != 7 {
		t.Errorf("teid = %d", teid)
	}
	if p.Size != 1000 || p.Tunneled() {
		t.Errorf("after decap: size=%d tunneled=%v", p.Size, p.Tunneled())
	}
}

func TestDoubleEncapsulatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("double encapsulation did not panic")
		}
	}()
	p := &Packet{Size: 10}
	p.Encapsulate(pkt.AddrFrom(1, 0, 0, 1), pkt.AddrFrom(1, 0, 0, 2), 1)
	p.Encapsulate(pkt.AddrFrom(1, 0, 0, 1), pkt.AddrFrom(1, 0, 0, 2), 2)
}

func TestPingRTT(t *testing.T) {
	eng, ha, hb, _ := twoHosts(t, LinkConfig{Propagation: 7 * time.Millisecond})
	hb.Listen(PingPort, PingResponder{})
	pg := NewPinger(ha, hb.Node.Addr(), 64, 5555)
	pg.Start(100 * time.Millisecond)
	eng.RunUntil(sim.Time(time.Second))
	pg.Stop()
	eng.Run()
	if pg.Received == 0 {
		t.Fatal("no ping replies")
	}
	if rtt := pg.RTTs.Mean(); math.Abs(rtt-14) > 1e-9 {
		t.Errorf("mean RTT = %v ms, want 14", rtt)
	}
	if pg.Lost() != 0 {
		t.Errorf("lost = %d", pg.Lost())
	}
}

func TestCBRRateAccuracy(t *testing.T) {
	eng, ha, hb, _ := twoHosts(t, LinkConfig{BitsPerSecond: 100e6})
	sink := NewSink(hb, 9000)
	cbr := NewCBRSource(ha, hb.Node.Addr(), 9000, 1250)
	cbr.Start(10e6) // 10 Mbps
	eng.RunUntil(sim.Time(2 * time.Second))
	cbr.Stop()
	eng.Run()
	got := sink.ThroughputBps()
	if math.Abs(got-10e6)/10e6 > 0.02 {
		t.Errorf("throughput = %.2f Mbps, want ~10", got/1e6)
	}
}

func TestGreedyFlowFillsBottleneck(t *testing.T) {
	eng, ha, hb, _ := twoHosts(t, LinkConfig{BitsPerSecond: 50e6, Propagation: 2 * time.Millisecond, QueueBytes: 128 << 10})
	sink := NewGreedyReceiver(hb, 5001)
	g := NewGreedyFlow(ha, hb.Node.Addr(), 5001, 40000, 1400)
	g.Start()
	eng.RunUntil(sim.Time(5 * time.Second))
	g.Stop()
	eng.Run()
	got := sink.ThroughputBps()
	if got < 40e6 || got > 51e6 {
		t.Errorf("greedy throughput = %.1f Mbps, want ~50", got/1e6)
	}
	if g.AckedSegments == 0 {
		t.Error("no segments acked")
	}
}

func TestGreedyFlowSharesWithLoss(t *testing.T) {
	// Tight queue forces drops; the flow must recover and still make
	// forward progress.
	eng, ha, hb, _ := twoHosts(t, LinkConfig{BitsPerSecond: 10e6, Propagation: 10 * time.Millisecond, QueueBytes: 8 << 10})
	sink := NewGreedyReceiver(hb, 5001)
	g := NewGreedyFlow(ha, hb.Node.Addr(), 5001, 40000, 1400)
	g.Start()
	eng.RunUntil(sim.Time(10 * time.Second))
	g.Stop()
	eng.Run()
	if g.Retransmits == 0 {
		t.Error("expected losses with an 8KiB queue")
	}
	got := sink.ThroughputBps()
	if got < 5e6 {
		t.Errorf("throughput = %.1f Mbps, want > 5 despite losses", got/1e6)
	}
}

func TestCPUModelAddsLatency(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := New(eng)
	na := nw.AddNode("a", pkt.AddrFrom(10, 0, 0, 1))
	mid := nw.AddNode("gw", pkt.AddrFrom(10, 0, 0, 254))
	nb := nw.AddNode("b", pkt.AddrFrom(10, 0, 0, 2))
	nw.ConnectSymmetric(na, mid, LinkConfig{})
	nw.ConnectSymmetric(mid, nb, LinkConfig{})
	router := NewRouter(mid)
	router.AddHostRoute(na.Addr(), mid.Port(0))
	router.AddHostRoute(nb.Addr(), mid.Port(1))
	mid.SetCPU(&CPUModel{PerPacket: 3 * time.Millisecond})
	ha, hb := NewHost(na), NewHost(nb)
	var gotAt sim.Time
	hb.Listen(80, AppFunc(func(_ *Host, p *Packet) { gotAt = eng.Now() }))
	ha.Send(nb.Addr(), 1, 80, pkt.ProtoUDP, 100, nil)
	eng.Run()
	if gotAt != sim.Time(3*time.Millisecond) {
		t.Errorf("delivered at %v, want 3ms of CPU delay", gotAt)
	}
}

func TestCPUQueueSaturation(t *testing.T) {
	// CPU slower than arrival rate: queue drains at CPU rate, so the k-th
	// packet sees k * service time.
	eng := sim.NewEngine(1)
	nw := New(eng)
	na := nw.AddNode("a", pkt.AddrFrom(10, 0, 0, 1))
	mid := nw.AddNode("gw", pkt.AddrFrom(10, 0, 0, 254))
	nb := nw.AddNode("b", pkt.AddrFrom(10, 0, 0, 2))
	nw.ConnectSymmetric(na, mid, LinkConfig{})
	nw.ConnectSymmetric(mid, nb, LinkConfig{})
	router := NewRouter(mid)
	router.AddHostRoute(nb.Addr(), mid.Port(1))
	router.AddHostRoute(na.Addr(), mid.Port(0))
	mid.SetCPU(&CPUModel{PerPacket: time.Millisecond})
	ha, hb := NewHost(na), NewHost(nb)
	var last sim.Time
	hb.Listen(80, AppFunc(func(_ *Host, p *Packet) { last = eng.Now() }))
	for i := 0; i < 5; i++ {
		ha.Send(nb.Addr(), 1, 80, pkt.ProtoUDP, 100, nil)
	}
	eng.Run()
	if last != sim.Time(5*time.Millisecond) {
		t.Errorf("last delivery at %v, want 5ms", last)
	}
}

func TestHopLimitStopsLoops(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := New(eng)
	a := nw.AddNode("a", pkt.AddrFrom(10, 0, 0, 1))
	b := nw.AddNode("b", pkt.AddrFrom(10, 0, 0, 2))
	nw.ConnectSymmetric(a, b, LinkConfig{})
	// Both nodes blindly forward everything back, forming a loop.
	a.SetHandler(func(ingress *Port, p *Packet) { a.Port(0).Send(p) })
	b.SetHandler(func(ingress *Port, p *Packet) { b.Port(0).Send(p) })
	a.Inject(&Packet{Flow: pkt.FiveTuple{Dst: pkt.AddrFrom(9, 9, 9, 9)}, Size: 10})
	eng.Run() // must terminate
	if a.Stats().HopDrops+b.Stats().HopDrops == 0 {
		t.Error("loop not terminated by hop limit")
	}
}

func TestDuplicateNodeNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate name did not panic")
		}
	}()
	nw := New(sim.NewEngine(1))
	nw.AddNode("x", pkt.AddrFrom(1, 0, 0, 1))
	nw.AddNode("x", pkt.AddrFrom(1, 0, 0, 2))
}

func TestDuplicateAddressPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate address did not panic")
		}
	}()
	nw := New(sim.NewEngine(1))
	nw.AddNode("x", pkt.AddrFrom(1, 0, 0, 1))
	nw.AddNode("y", pkt.AddrFrom(1, 0, 0, 1))
}

func TestLinkStatsCounters(t *testing.T) {
	eng, ha, hb, l := twoHosts(t, LinkConfig{BitsPerSecond: 1e6})
	hb.Listen(80, AppFunc(func(_ *Host, p *Packet) {}))
	ha.Send(hb.Node.Addr(), 1, 80, pkt.ProtoUDP, 500, nil)
	eng.Run()
	st := l.StatsAB()
	if st.Sent != 1 || st.Delivered != 1 || st.Bytes != 500 || st.Dropped != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLinkFailureInjection(t *testing.T) {
	eng, ha, hb, l := twoHosts(t, LinkConfig{Propagation: 2 * time.Millisecond})
	hb.Listen(PingPort, PingResponder{})
	pg := NewPinger(ha, hb.Node.Addr(), 64, 5555)
	pg.Start(50 * time.Millisecond)
	eng.RunFor(time.Second)
	healthyRecv := pg.Received

	l.SetDown(true)
	if !l.Down() {
		t.Fatal("link not marked down")
	}
	eng.RunFor(time.Second)
	duringRecv := pg.Received
	if duringRecv > healthyRecv+1 { // one in-flight reply may land
		t.Errorf("replies during outage: %d -> %d", healthyRecv, duringRecv)
	}
	if l.StatsAB().Dropped == 0 {
		t.Error("no drops counted during outage")
	}

	l.SetDown(false)
	eng.RunFor(time.Second)
	pg.Stop()
	eng.RunFor(200 * time.Millisecond)
	if pg.Received <= duringRecv+10 {
		t.Errorf("traffic did not resume after repair: %d -> %d", duringRecv, pg.Received)
	}
}

func TestLinkJitterSpreadsDelivery(t *testing.T) {
	eng, ha, hb, _ := twoHosts(t, LinkConfig{Propagation: 5 * time.Millisecond, Jitter: 3 * time.Millisecond})
	hb.Listen(PingPort, PingResponder{})
	pg := NewPinger(ha, hb.Node.Addr(), 64, 5556)
	pg.Start(20 * time.Millisecond)
	eng.RunFor(5 * time.Second)
	pg.Stop()
	eng.RunFor(time.Second)
	if pg.Received < 100 {
		t.Fatalf("replies = %d", pg.Received)
	}
	// Base RTT is 10 ms; exponential jitter (mean 3 ms per delivery, two
	// deliveries) should push the mean to ≈16 ms with real spread.
	mean := pg.RTTs.Mean()
	if mean < 12 || mean > 20 {
		t.Errorf("jittered mean RTT = %.2f ms, want ≈16", mean)
	}
	if pg.RTTs.StdDev() < 1 {
		t.Errorf("jitter produced stddev %.2f ms, want visible spread", pg.RTTs.StdDev())
	}
	if pg.RTTs.Min() < 10 {
		t.Errorf("RTT below the propagation floor: %.2f ms", pg.RTTs.Min())
	}
}

func TestTwoGreedyFlowsShareFairly(t *testing.T) {
	// Two AIMD flows over one 40 Mbps bottleneck converge to a roughly
	// fair split.
	eng := sim.NewEngine(5)
	nw := New(eng)
	a1 := nw.AddNode("a1", pkt.AddrFrom(10, 0, 0, 1))
	a2 := nw.AddNode("a2", pkt.AddrFrom(10, 0, 0, 2))
	r := nw.AddNode("r", pkt.AddrFrom(10, 0, 0, 254))
	b := nw.AddNode("b", pkt.AddrFrom(10, 0, 0, 3))
	access := LinkConfig{BitsPerSecond: 1e9, Propagation: time.Millisecond}
	nw.ConnectSymmetric(a1, r, access)
	nw.ConnectSymmetric(a2, r, access)
	nw.ConnectSymmetric(r, b, LinkConfig{BitsPerSecond: 40e6, Propagation: 5 * time.Millisecond, QueueBytes: 128 << 10})
	router := NewRouter(r)
	router.AddHostRoute(a1.Addr(), r.Port(0))
	router.AddHostRoute(a2.Addr(), r.Port(1))
	router.AddHostRoute(b.Addr(), r.Port(2))
	h1, h2, hb := NewHost(a1), NewHost(a2), NewHost(b)

	s1 := NewGreedyReceiver(hb, 6001)
	s2 := NewGreedyReceiver(hb, 6002)
	g1 := NewGreedyFlow(h1, b.Addr(), 6001, 40001, 1400)
	g2 := NewGreedyFlow(h2, b.Addr(), 6002, 40002, 1400)
	g1.Start()
	g2.Start()
	eng.RunFor(30 * time.Second)
	g1.Stop()
	g2.Stop()
	eng.RunFor(time.Second)

	t1 := s1.ThroughputBps() / 1e6
	t2 := s2.ThroughputBps() / 1e6
	total := t1 + t2
	if total < 30 || total > 42 {
		t.Errorf("aggregate = %.1f Mbps, want near the 40 Mbps bottleneck", total)
	}
	ratio := t1 / t2
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("fairness ratio = %.2f (%.1f vs %.1f Mbps)", ratio, t1, t2)
	}
}

// TestZeroBandwidthReconfigDrains covers mid-run reconfiguration of a busy
// direction to zero ("infinite") bandwidth: packets queued under the old
// finite rate drain in queue order with zero serialization time — not the
// garbage schedule the old +Inf division produced — and fresh arrivals do
// not overtake the drain.
func TestZeroBandwidthReconfigDrains(t *testing.T) {
	eng, ha, hb, l := twoHosts(t, LinkConfig{BitsPerSecond: 1e6, Propagation: time.Millisecond})
	var got []int
	var arrivals []sim.Time
	hb.Listen(80, AppFunc(func(_ *Host, p *Packet) {
		got = append(got, p.Payload.(int))
		arrivals = append(arrivals, eng.Now())
	}))
	// Three 1250-byte packets: 10 ms serialization each at 1 Mbps. The
	// first enters service; the others queue.
	for i := 0; i < 3; i++ {
		ha.Send(hb.Node.Addr(), 1, 80, pkt.ProtoUDP, 1250, i)
	}
	// Mid-service, switch to infinite bandwidth and offer two more packets:
	// they must queue behind the draining backlog, not jump ahead.
	eng.Schedule(5*time.Millisecond, func() {
		l.SetConfigAB(LinkConfig{Propagation: time.Millisecond})
		ha.Send(hb.Node.Addr(), 1, 80, pkt.ProtoUDP, 1250, 3)
		ha.Send(hb.Node.Addr(), 1, 80, pkt.ProtoUDP, 1250, 4)
	})
	// Once the drain has finished, the direction is a pure delay line.
	eng.Schedule(30*time.Millisecond, func() {
		ha.Send(hb.Node.Addr(), 1, 80, pkt.ProtoUDP, 1250, 5)
	})
	eng.Run()
	if len(got) != 6 {
		t.Fatalf("delivered %d packets (%v), want 6", len(got), got)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("delivery order %v, want 0..5", got)
		}
	}
	// Packet 0 finishes its 10 ms serialization; 1-4 drain instantly behind
	// it, so all five arrive together after the 1 ms propagation.
	for i := 0; i < 5; i++ {
		if arrivals[i] != sim.Time(11*time.Millisecond) {
			t.Errorf("arrival[%d] = %v, want 11ms", i, arrivals[i])
		}
	}
	if arrivals[5] != sim.Time(31*time.Millisecond) {
		t.Errorf("post-drain arrival = %v, want 31ms (pure delay line)", arrivals[5])
	}
}

// TestSetDownDropAccounting pins the LinkStats counter semantics under
// failure injection: drops at the transmitter never count as sent, so
// Sent+Dropped is the offered load and Sent−Delivered is in flight.
func TestSetDownDropAccounting(t *testing.T) {
	eng, ha, hb, l := twoHosts(t, LinkConfig{BitsPerSecond: 1e6, Propagation: time.Millisecond})
	var got int
	hb.Listen(80, AppFunc(func(_ *Host, p *Packet) { got++ }))
	// One packet accepted into service, then the link fails and two more
	// are offered: the in-service packet is still delivered, the offered
	// ones are dropped at the transmitter.
	ha.Send(hb.Node.Addr(), 1, 80, pkt.ProtoUDP, 1250, nil)
	l.SetDown(true)
	ha.Send(hb.Node.Addr(), 1, 80, pkt.ProtoUDP, 1250, nil)
	ha.Send(hb.Node.Addr(), 1, 80, pkt.ProtoUDP, 1250, nil)
	eng.Run()
	st := l.StatsAB()
	if got != 1 || st.Sent != 1 || st.Delivered != 1 || st.Dropped != 2 {
		t.Errorf("after down: got=%d stats=%+v, want 1 delivered / Sent=1 / Dropped=2", got, st)
	}
	if st.Offered() != 3 {
		t.Errorf("Offered() = %d, want 3", st.Offered())
	}
	if st.Sent-st.Delivered != 0 {
		t.Errorf("Sent-Delivered = %d after quiescence, want 0 in flight", st.Sent-st.Delivered)
	}
	// Repair and verify the link carries traffic again with counters intact.
	l.SetDown(false)
	ha.Send(hb.Node.Addr(), 1, 80, pkt.ProtoUDP, 1250, nil)
	eng.Run()
	st = l.StatsAB()
	if got != 2 || st.Sent != 2 || st.Delivered != 2 || st.Dropped != 2 {
		t.Errorf("after repair: got=%d stats=%+v, want Sent=2 Delivered=2 Dropped=2", got, st)
	}
}
