package netsim

import (
	"testing"

	"acacia/internal/pkt"
	"acacia/internal/sim"
)

func poolNet() *Network {
	return New(sim.NewEngine(1))
}

// TestPoolReleaseZeroes checks the mutate-after-release defence: a stale
// owner that kept a pointer past Release observes zeroed garbage, never
// live data belonging to the packet's next life.
func TestPoolReleaseZeroes(t *testing.T) {
	nw := poolNet()
	p := nw.NewPacket()
	p.Size = 1200
	p.TEID = 0xbeef
	p.Payload = "canary"
	p.Flow = pkt.FiveTuple{SrcPort: 7}
	nw.Release(p)
	if p.Size != 0 || p.TEID != 0 || p.Payload != nil || p.Flow.SrcPort != 0 {
		t.Errorf("released packet not zeroed: %+v", p)
	}
}

// TestPoolDoubleReleasePanics checks the canary itself: releasing through
// a stale pointer a second time is a loud bug, not silent corruption.
func TestPoolDoubleReleasePanics(t *testing.T) {
	nw := poolNet()
	p := nw.NewPacket()
	nw.Release(p)
	defer func() {
		if recover() == nil {
			t.Error("double release did not panic")
		}
	}()
	nw.Release(p)
}

// TestPoolNonPooledReleaseNoOp checks &Packet{} literals (tests, one-shot
// setup traffic) pass through Release untouched.
func TestPoolNonPooledReleaseNoOp(t *testing.T) {
	nw := poolNet()
	p := &Packet{Size: 99}
	nw.Release(p)
	nw.Release(p) // and never trips the double-release canary
	if p.Size != 99 {
		t.Errorf("non-pooled packet mutated by Release: Size = %d", p.Size)
	}
}

// TestPoolRetainedNotRecycled checks Retain: an application that keeps a
// packet past its callback opts it out of recycling entirely.
func TestPoolRetainedNotRecycled(t *testing.T) {
	nw := poolNet()
	p := nw.NewPacket()
	p.Size = 777
	p.Retain()
	nw.Release(p)
	if p.Size != 777 {
		t.Error("retained packet was zeroed by Release")
	}
	if q := nw.NewPacket(); q == p {
		t.Error("retained packet re-issued by the pool")
	}
}

// TestPoolLIFOReuse checks the recycle order is deterministic: NewPacket
// returns the most recently released packet. Seeded runs depend on this —
// a randomized free-list would still be correct but would make allocation
// addresses (and any accidental address-dependent behaviour) run-varying.
func TestPoolLIFOReuse(t *testing.T) {
	nw := poolNet()
	a, b := nw.NewPacket(), nw.NewPacket()
	nw.Release(a)
	nw.Release(b)
	if got := nw.NewPacket(); got != b {
		t.Error("pool is not LIFO: expected most recently released packet first")
	}
	if got := nw.NewPacket(); got != a {
		t.Error("pool is not LIFO: expected earlier release second")
	}
}

// TestPoolReuseStartsZeroed checks a recycled packet carries nothing over
// from its previous life.
func TestPoolReuseStartsZeroed(t *testing.T) {
	nw := poolNet()
	p := nw.NewPacket()
	p.Size, p.TEID, p.Hops = 1400, 42, 9
	nw.Release(p)
	q := nw.NewPacket()
	if q != p {
		t.Fatal("expected LIFO reuse of the released packet")
	}
	if q.Size != 0 || q.TEID != 0 || q.Hops != 0 {
		t.Errorf("recycled packet carries stale state: %+v", q)
	}
}

// TestClonePacketIndependent checks a clone is pool-managed but distinct:
// releasing the clone leaves the original untouched.
func TestClonePacketIndependent(t *testing.T) {
	nw := poolNet()
	p := nw.NewPacket()
	p.Size, p.TEID = 1200, 7
	c := nw.ClonePacket(p)
	if c == p {
		t.Fatal("clone aliases the original")
	}
	if c.Size != 1200 || c.TEID != 7 {
		t.Errorf("clone did not copy fields: %+v", c)
	}
	nw.Release(c)
	if p.Size != 1200 {
		t.Error("releasing the clone corrupted the original")
	}
}
