package netsim

import (
	"fmt"
	"time"

	"acacia/internal/pkt"
	"acacia/internal/sim"
	"acacia/internal/telemetry"
)

// Handler processes a packet arriving at a node. ingress is nil for packets
// the node originates locally (injected via Node.Inject).
type Handler func(ingress *Port, p *Packet)

// CPUModel gives a node a per-packet processing cost served by a single
// FIFO processor, modeling the difference between a user-space gateway
// (OpenEPC, microseconds per packet) and a kernel fast path (OVS megaflow
// cache, sub-microsecond). A nil model means zero-cost processing.
type CPUModel struct {
	// PerPacket is the fixed service time per packet.
	PerPacket time.Duration
	// PerByte is the additional service time per payload byte.
	PerByte time.Duration
	// QueuePackets bounds the processor input queue; 0 means 4096.
	QueuePackets int
}

// DefaultCPUQueuePackets is the processor queue bound used when a CPUModel
// leaves QueuePackets zero.
const DefaultCPUQueuePackets = 4096

// NodeStats counts node-level packet activity.
type NodeStats struct {
	Received  uint64
	Forwarded uint64
	CPUDrops  uint64
	HopDrops  uint64
}

// Node is a network element: a host, gateway, switch or base station. Its
// behaviour lives in the Handler installed by the owning layer (epc, sdn,
// core). The node itself provides ports, addressing, optional CPU cost and
// counters.
type Node struct {
	net     *Network
	dom     *Domain
	name    string
	addr    pkt.Addr
	ports   []*Port
	handler Handler

	cpu      *CPUModel
	cpuQueue []cpuItem
	cpuBusy  bool
	// cpuCur stages the item being served; cpuDoneF is the method value
	// bound once in SetCPU so per-packet service scheduling allocates no
	// closure.
	cpuCur   cpuItem
	cpuDoneF func()

	stats NodeStats
}

type cpuItem struct {
	ingress *Port
	p       *Packet
}

// Name reports the node's unique name within its network.
func (n *Node) Name() string { return n.name }

// Addr reports the node's primary address.
func (n *Node) Addr() pkt.Addr { return n.addr }

// Network returns the owning network.
func (n *Node) Network() *Network { return n.net }

// Engine returns the simulation engine driving this node — its domain's
// engine, which is the network engine unless the node was moved into a
// partition domain. Handlers must schedule all node-local work on it.
func (n *Node) Engine() *sim.Engine { return n.dom.eng }

// Domain returns the partition domain the node belongs to.
func (n *Node) Domain() *Domain { return n.dom }

// NewPacket returns a pool-managed packet from the node's domain pool. Hosts
// and traffic sources originate packets through this so each partition
// recycles only its own packet memory.
//
//acacia:hotpath
func (n *Node) NewPacket() *Packet { return n.dom.newPacket() }

// Stats reports the node's packet counters.
func (n *Node) Stats() NodeStats { return n.stats }

// SetHandler installs the packet handler. It must be set before traffic
// reaches the node.
func (n *Node) SetHandler(h Handler) { n.handler = h }

// SetCPU installs a processing-cost model; packets queue for a single
// processor before the handler runs.
func (n *Node) SetCPU(m *CPUModel) {
	n.cpu = m
	if n.cpuDoneF == nil {
		n.cpuDoneF = n.cpuDone
	}
}

// Ports returns the node's ports in creation order.
func (n *Node) Ports() []*Port { return n.ports }

// Port returns the port with the given node-local id.
func (n *Node) Port(id int) *Port {
	if id < 0 || id >= len(n.ports) {
		panic(fmt.Sprintf("netsim: node %s has no port %d", n.name, id))
	}
	return n.ports[id]
}

// Inject hands a locally originated packet to the node's handler, stamping
// its creation time. Use this to start traffic at a host.
func (n *Node) Inject(p *Packet) {
	p.ID = n.dom.nextPacketID()
	p.CreatedAt = n.dom.eng.Now()
	n.dispatch(nil, p)
}

// receive is called by a link when a packet arrives on one of the node's
// ports.
//
//acacia:hotpath
func (n *Node) receive(ingress *Port, p *Packet) {
	n.stats.Received++
	p.Hops++
	if p.Hops > MaxHops {
		n.stats.HopDrops++
		n.net.Release(p)
		return
	}
	n.dispatch(ingress, p)
}

//acacia:hotpath
func (n *Node) dispatch(ingress *Port, p *Packet) {
	if n.cpu == nil {
		n.handle(ingress, p)
		return
	}
	limit := n.cpu.QueuePackets
	if limit == 0 {
		limit = DefaultCPUQueuePackets
	}
	if len(n.cpuQueue) >= limit {
		n.stats.CPUDrops++
		n.net.Release(p)
		return
	}
	n.cpuQueue = append(n.cpuQueue, cpuItem{ingress, p})
	if !n.cpuBusy {
		n.serveCPU()
	}
}

//acacia:hotpath
func (n *Node) serveCPU() {
	if len(n.cpuQueue) == 0 {
		n.cpuBusy = false
		return
	}
	n.cpuBusy = true
	n.cpuCur = n.cpuQueue[0]
	n.cpuQueue = n.cpuQueue[1:]
	cost := n.cpu.PerPacket + time.Duration(n.cpuCur.p.Size)*n.cpu.PerByte
	n.dom.eng.After(cost, n.cpuDoneF)
}

// cpuDone finishes one CPU service period: run the handler on the staged
// item and start serving the next.
//
//acacia:hotpath
func (n *Node) cpuDone() {
	item := n.cpuCur
	n.cpuCur = cpuItem{}
	n.handle(item.ingress, item.p)
	n.serveCPU()
}

//acacia:hotpath
func (n *Node) handle(ingress *Port, p *Packet) {
	if n.handler == nil {
		noHandler(n.name)
	}
	n.stats.Forwarded++
	n.handler(ingress, p)
}

//go:noinline
func noHandler(name string) {
	panic(fmt.Sprintf("netsim: node %s has no handler", name))
}

// Network is a collection of nodes and links. A plain network is driven by
// one sim engine; under intra-run parallelism its nodes are spread across
// partition domains, each driven by its own engine (see domain.go).
type Network struct {
	eng    *sim.Engine
	nodes  map[string]*Node
	byAddr map[pkt.Addr]*Node
	links  []*Link
	// domains holds the partition domains; domains[0] is the root domain on
	// eng, which owns every node not explicitly moved by SetDomain. Packet
	// free-lists and ID sequences live per domain (see pool.go).
	domains []*Domain
}

// New creates an empty network on eng.
func New(eng *sim.Engine) *Network {
	nw := &Network{
		eng:    eng,
		nodes:  make(map[string]*Node),
		byAddr: make(map[pkt.Addr]*Node),
	}
	nw.domains = []*Domain{{net: nw, eng: eng, id: 0}}
	return nw
}

// Engine returns the driving simulation engine.
func (nw *Network) Engine() *sim.Engine { return nw.eng }

// AddNode creates a node with a unique name and primary address.
func (nw *Network) AddNode(name string, addr pkt.Addr) *Node {
	if _, dup := nw.nodes[name]; dup {
		panic("netsim: duplicate node name " + name)
	}
	if !addr.IsZero() {
		if other, dup := nw.byAddr[addr]; dup {
			panic(fmt.Sprintf("netsim: address %v already assigned to %s", addr, other.name))
		}
	}
	n := &Node{net: nw, dom: nw.domains[0], name: name, addr: addr}
	nw.nodes[name] = n
	if !addr.IsZero() {
		nw.byAddr[addr] = n
	}
	return n
}

// Node returns the node with the given name, or nil.
func (nw *Network) Node(name string) *Node { return nw.nodes[name] }

// NodeByAddr returns the node owning addr, or nil.
func (nw *Network) NodeByAddr(a pkt.Addr) *Node { return nw.byAddr[a] }

// Connect joins two nodes with a link configured independently per
// direction (ab: a->b, ba: b->a) and returns it. New ports are appended to
// each node. Each direction registers its counters in the engine's
// telemetry registry under netsim/link/<index>/<src>-><dst>/ (the creation
// index disambiguates parallel links between the same node pair).
//
// When the endpoints sit in different partition domains the link becomes a
// cross-partition boundary: transmission and queueing are simulated on the
// source domain's engine, and the propagation leg is delivered through
// sim.Engine.SendTo at the destination engine. Per direction, the source
// side's counters (sent/dropped/bytes/queue-bytes) register in the source
// engine's registry and the delivered counter in the destination's, so every
// counter is only ever touched by the partition that owns the touching event.
func (nw *Network) Connect(a, b *Node, ab, ba LinkConfig) *Link {
	pa := &Port{Node: a, ID: len(a.ports)}
	pb := &Port{Node: b, ID: len(b.ports)}
	a.ports = append(a.ports, pa)
	b.ports = append(b.ports, pb)
	l := &Link{A: pa, B: pb}
	idx := telemetry.Itoa(len(nw.links))
	l.ab = newLinkDir(nw, a.dom, b.dom, ab, pb, linkScope(a.dom, idx, a, b), linkScope(b.dom, idx, a, b))
	l.ba = newLinkDir(nw, b.dom, a.dom, ba, pa, linkScope(b.dom, idx, b, a), linkScope(a.dom, idx, b, a))
	pa.link, pb.link = l, l
	pa.out, pb.out = l.ab, l.ba
	nw.links = append(nw.links, l)
	return l
}

// linkScope builds the telemetry scope for one link direction src->dst in
// the registry of domain d. Cross-domain directions build the same scope
// name in two registries (source side and destination side); merged
// snapshots add them back into one set of counters.
func linkScope(d *Domain, idx string, src, dst *Node) telemetry.Scope {
	return d.eng.Metrics().Scope("netsim").Scope("link").Scope(idx).Scope(src.name + "->" + dst.name)
}

// ConnectSymmetric joins two nodes with identical per-direction configs.
func (nw *Network) ConnectSymmetric(a, b *Node, cfg LinkConfig) *Link {
	return nw.Connect(a, b, cfg, cfg)
}

// Links returns all links in creation order.
func (nw *Network) Links() []*Link { return nw.links }
