package netsim

import (
	"time"

	"acacia/internal/pkt"
	"acacia/internal/sim"
	"acacia/internal/stats"
)

// App consumes packets delivered to a host port number.
type App interface {
	Deliver(h *Host, p *Packet)
}

// AppFunc adapts a function to the App interface.
type AppFunc func(h *Host, p *Packet)

// Deliver implements App.
func (f AppFunc) Deliver(h *Host, p *Packet) { f(h, p) }

// Host is an endpoint: it originates traffic and delivers received packets
// to registered applications by destination port. A single-homed host sends
// everything out its only link; multi-homed hosts (like the UE, which has
// one radio link but multiple bearers) install a ClassifyEgress function.
type Host struct {
	Node *Node
	apps map[uint16]App
	// ClassifyEgress, when set, picks the egress port and may mutate the
	// packet (e.g. set Priority from the matching bearer's QCI). When nil,
	// port 0 is used. This is where the UE modem's UL-TFT classification
	// plugs in.
	ClassifyEgress func(p *Packet) *Port
	// Unclaimed counts packets for ports with no registered app.
	Unclaimed uint64
}

// NewHost wraps node with host behaviour and installs its handler.
func NewHost(node *Node) *Host {
	h := &Host{Node: node, apps: make(map[uint16]App)}
	node.SetHandler(h.handle)
	return h
}

// Listen registers app for packets whose destination port is port.
func (h *Host) Listen(port uint16, app App) { h.apps[port] = app }

// Send originates a packet from this host to dst with the given ports,
// protocol, wire size and payload. The packet comes from the host's domain
// pool and is recycled wherever its life ends (a drop, a terminal
// application).
//
//acacia:hotpath
func (h *Host) Send(dst pkt.Addr, srcPort, dstPort uint16, proto uint8, size int, payload any) {
	p := h.Node.NewPacket()
	p.Flow = pkt.FiveTuple{
		Src: h.Node.Addr(), Dst: dst,
		SrcPort: srcPort, DstPort: dstPort, Proto: proto,
	}
	p.Size = size
	p.Payload = payload
	h.Node.Inject(p)
}

//acacia:hotpath
func (h *Host) handle(ingress *Port, p *Packet) {
	if ingress == nil || p.Flow.Dst != h.Node.Addr() {
		// Locally originated, or transit traffic we must forward.
		h.egress(p)
		return
	}
	if app, ok := h.apps[p.Flow.DstPort]; ok {
		app.Deliver(h, p)
		return
	}
	h.Unclaimed++
	h.Node.Network().Release(p)
}

func (h *Host) egress(p *Packet) {
	var port *Port
	if h.ClassifyEgress != nil {
		port = h.ClassifyEgress(p)
	} else if len(h.Node.Ports()) > 0 {
		port = h.Node.Port(0)
	}
	if port == nil {
		h.Unclaimed++
		return
	}
	port.Send(p)
}

// Engine returns the simulation engine.
func (h *Host) Engine() *sim.Engine { return h.Node.Engine() }

// --- Ping ---

// pingReq is the payload of an echo request.
type pingReq struct {
	seq    int
	sentAt sim.Time
}

// PingPort is the well-known port echo responders listen on.
const PingPort = 7

// PingResponder echoes any packet back to its sender, preserving size.
type PingResponder struct{}

// Deliver implements App. The request packet itself is turned around and
// reinjected as the reply — the hot echo path allocates nothing.
//
//acacia:hotpath
func (PingResponder) Deliver(h *Host, p *Packet) {
	p.Flow = p.Flow.Reverse()
	p.Hops = 0
	p.QueueWait = 0
	h.Node.Inject(p)
}

// Pinger sends periodic echo requests and records RTTs.
type Pinger struct {
	host     *Host
	dst      pkt.Addr
	size     int
	srcPort  uint16
	seq      int
	inFlight map[int]sim.Time
	// free recycles request payloads: boxing a *pingReq into Packet.Payload
	// is allocation-free, and the reply handler returns the struct here.
	free []*pingReq
	// RTTs collects observed round-trip times in milliseconds.
	RTTs stats.Sample
	// Lost counts requests that were never answered by the time Stop or
	// final accounting runs (computed as sent - received).
	Sent, Received int
	ticker         *sim.Ticker
}

// NewPinger creates a pinger on h towards dst with the given probe size.
// Register its receiving side before starting: the pinger listens on its
// source port for replies.
func NewPinger(h *Host, dst pkt.Addr, size int, srcPort uint16) *Pinger {
	pg := &Pinger{host: h, dst: dst, size: size, srcPort: srcPort, inFlight: make(map[int]sim.Time)}
	h.Listen(srcPort, AppFunc(func(_ *Host, p *Packet) {
		req, ok := p.Payload.(*pingReq)
		h.Node.Network().Release(p)
		if !ok {
			return
		}
		seq, sentAt := req.seq, req.sentAt
		*req = pingReq{}
		pg.free = append(pg.free, req)
		if _, pending := pg.inFlight[seq]; !pending {
			return
		}
		delete(pg.inFlight, seq)
		pg.Received++
		rtt := h.Engine().Now().Sub(sentAt)
		pg.RTTs.Add(float64(rtt) / float64(time.Millisecond))
	}))
	return pg
}

// Start begins probing every interval.
func (pg *Pinger) Start(interval time.Duration) {
	pg.SendOne()
	pg.ticker = sim.NewTicker(pg.host.Engine(), interval, pg.SendOne)
}

// SendOne sends a single probe immediately.
//
//acacia:hotpath
func (pg *Pinger) SendOne() {
	pg.seq++
	pg.Sent++
	pg.inFlight[pg.seq] = pg.host.Engine().Now()
	var req *pingReq
	if n := len(pg.free); n > 0 {
		req = pg.free[n-1]
		pg.free[n-1] = nil
		pg.free = pg.free[:n-1]
	} else {
		req = newPingReq()
	}
	req.seq, req.sentAt = pg.seq, pg.host.Engine().Now()
	pg.host.Send(pg.dst, pg.srcPort, PingPort, pkt.ProtoICMP, pg.size, req)
}

// newPingReq is the pool-miss refill path, noinline to keep the allocation
// out of SendOne's escape profile.
//
//go:noinline
func newPingReq() *pingReq {
	return &pingReq{}
}

// Stop halts probing.
func (pg *Pinger) Stop() {
	if pg.ticker != nil {
		pg.ticker.Stop()
	}
}

// Lost reports probes sent but not (yet) answered.
func (pg *Pinger) Lost() int { return pg.Sent - pg.Received }

// --- Constant bit rate source ---

// CBRSource emits fixed-size packets at a constant bit rate, the background
// traffic generator for the congestion experiments.
type CBRSource struct {
	host     *Host
	dst      pkt.Addr
	dstPort  uint16
	size     int
	ticker   *sim.Ticker
	SentPkts uint64
}

// NewCBRSource creates a source on h sending size-byte UDP packets to
// dst:dstPort.
func NewCBRSource(h *Host, dst pkt.Addr, dstPort uint16, size int) *CBRSource {
	return &CBRSource{host: h, dst: dst, dstPort: dstPort, size: size}
}

// Start begins emitting at bitsPerSecond. A zero rate is a no-op.
func (c *CBRSource) Start(bitsPerSecond float64) {
	if bitsPerSecond <= 0 {
		return
	}
	interval := time.Duration(float64(c.size*8) / bitsPerSecond * float64(time.Second))
	if interval <= 0 {
		interval = time.Nanosecond
	}
	c.ticker = sim.NewTicker(c.host.Engine(), interval, func() {
		c.SentPkts++
		c.host.Send(c.dst, 30000, c.dstPort, pkt.ProtoUDP, c.size, nil)
	})
}

// Stop halts emission.
func (c *CBRSource) Stop() {
	if c.ticker != nil {
		c.ticker.Stop()
	}
}

// --- Sink with throughput measurement ---

// Sink absorbs packets and measures goodput.
type Sink struct {
	Bytes   uint64
	Packets uint64
	first   sim.Time
	last    sim.Time
	eng     *sim.Engine
	// OnPacket, when set, observes each arrival.
	OnPacket func(p *Packet)
}

// NewSink registers a sink app on h at port and returns it.
func NewSink(h *Host, port uint16) *Sink {
	s := &Sink{eng: h.Engine()}
	h.Listen(port, s)
	return s
}

// Deliver implements App. The packet is recycled after the OnPacket hook
// returns; hooks that keep the packet must call p.Retain.
//
//acacia:hotpath
func (s *Sink) Deliver(h *Host, p *Packet) {
	s.account(p)
	h.Node.Network().Release(p)
}

//acacia:hotpath
func (s *Sink) account(p *Packet) {
	if s.Packets == 0 {
		s.first = s.eng.Now()
	}
	s.last = s.eng.Now()
	s.Packets++
	s.Bytes += uint64(p.Size)
	if s.OnPacket != nil {
		s.OnPacket(p)
	}
}

// ThroughputBps reports the average received rate between the first and
// last packet.
func (s *Sink) ThroughputBps() float64 {
	dur := s.last.Sub(s.first).Seconds()
	if dur <= 0 {
		return 0
	}
	return float64(s.Bytes*8) / dur
}
