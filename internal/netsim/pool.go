package netsim

// Packet free-list. The pool hangs off the packet's domain — one per
// partition, with the root domain playing the historical network-wide role —
// so parallel trials never share packet memory, partitions of one run never
// share packet memory either, and a seeded run recycles in exactly the same
// order every time. Only packets created by NewPacket/ClonePacket are
// recycled; packets built with &Packet{} (tests, one-shot setup traffic)
// pass through Release untouched and fall to the garbage collector as
// before.
//
// Ownership rule: a packet is owned by whichever queue, link or handler
// currently holds it. The owner at the point where a packet's life ends — a
// drop site, a terminal application callback — is responsible for calling
// Release. Applications that keep a packet past their callback must call
// Retain first. Crossing a partition link transfers ownership to the
// receiving domain (linkDir.arrive re-homes the packet), so Release always
// recycles into the pool of the partition whose event is releasing.

// NewPacket returns a zeroed pool-managed packet owned by the caller, from
// the root domain's pool. Partition-aware callers allocate through
// Node.NewPacket instead, which draws from the node's own domain.
//
//acacia:hotpath
func (nw *Network) NewPacket() *Packet { return nw.domains[0].newPacket() }

//acacia:hotpath
func (d *Domain) newPacket() *Packet {
	if n := len(d.pktFree); n > 0 {
		p := d.pktFree[n-1]
		d.pktFree[n-1] = nil
		d.pktFree = d.pktFree[:n-1]
		p.freed = false
		return p
	}
	return d.newPacketSlow()
}

// newPacketSlow is the pool-miss refill path. Noinline keeps the
// unavoidable allocation out of hotpath callers' escape profiles: inlined,
// the &Packet{} would be attributed to every caller's line range and trip
// the hotpath-escape gate.
//
//go:noinline
func (d *Domain) newPacketSlow() *Packet {
	return &Packet{pooled: true, dom: d}
}

// panicDoubleRelease reports the mutate-after-release canary. Noinline so
// the boxed panic message never lands in a hotpath caller.
//
//go:noinline
func panicDoubleRelease() {
	panic("netsim: double release of pooled packet")
}

// ClonePacket returns a pool-managed copy of p sharing the Payload value.
// The clone comes from the pool of the domain that currently owns p.
//
//acacia:hotpath
func (nw *Network) ClonePacket(p *Packet) *Packet {
	dom := p.dom
	if dom == nil {
		dom = nw.domains[0]
	}
	c := dom.newPacket()
	c.ID, c.Flow, c.TOS, c.Size, c.Payload = p.ID, p.Flow, p.TOS, p.Size, p.Payload
	c.TEID, c.TunnelSrc, c.TunnelDst = p.TEID, p.TunnelSrc, p.TunnelDst
	c.Priority, c.CreatedAt, c.QueueWait, c.Hops = p.Priority, p.CreatedAt, p.QueueWait, p.Hops
	return c
}

// Release returns a pool-managed packet to its owning domain's free-list.
// Releasing a non-pooled or retained packet is a no-op; releasing the same
// pooled packet twice panics (the mutate-after-release canary). The packet
// is zeroed on release, so stale readers observe garbage immediately instead
// of silently corrupting a recycled packet.
//
//acacia:hotpath
func (nw *Network) Release(p *Packet) {
	if !p.pooled || p.retained {
		return
	}
	if p.freed {
		panicDoubleRelease()
	}
	dom := p.dom
	if dom == nil {
		dom = nw.domains[0]
	}
	*p = Packet{pooled: true, freed: true, dom: dom}
	dom.pktFree = append(dom.pktFree, p)
}
