package netsim

// Packet free-list. The pool hangs off the Network — one per trial, like the
// event free-list on the sim engine — so parallel trials never share packet
// memory and a seeded run recycles in exactly the same order every time.
// Only packets created by NewPacket/ClonePacket are recycled; packets built
// with &Packet{} (tests, one-shot setup traffic) pass through Release
// untouched and fall to the garbage collector as before.
//
// Ownership rule: a packet is owned by whichever queue, link or handler
// currently holds it. The owner at the point where a packet's life ends — a
// drop site, a terminal application callback — is responsible for calling
// Release. Applications that keep a packet past their callback must call
// Retain first.

// NewPacket returns a zeroed pool-managed packet owned by the caller.
//
//acacia:hotpath
func (nw *Network) NewPacket() *Packet {
	if n := len(nw.pktFree); n > 0 {
		p := nw.pktFree[n-1]
		nw.pktFree[n-1] = nil
		nw.pktFree = nw.pktFree[:n-1]
		p.freed = false
		return p
	}
	return &Packet{pooled: true}
}

// ClonePacket returns a pool-managed copy of p sharing the Payload value.
//
//acacia:hotpath
func (nw *Network) ClonePacket(p *Packet) *Packet {
	c := nw.NewPacket()
	c.ID, c.Flow, c.TOS, c.Size, c.Payload = p.ID, p.Flow, p.TOS, p.Size, p.Payload
	c.TEID, c.TunnelSrc, c.TunnelDst = p.TEID, p.TunnelSrc, p.TunnelDst
	c.Priority, c.CreatedAt, c.QueueWait, c.Hops = p.Priority, p.CreatedAt, p.QueueWait, p.Hops
	return c
}

// Release returns a pool-managed packet to the free-list. Releasing a
// non-pooled or retained packet is a no-op; releasing the same pooled packet
// twice panics (the mutate-after-release canary). The packet is zeroed on
// release, so stale readers observe garbage immediately instead of silently
// corrupting a recycled packet.
//
//acacia:hotpath
func (nw *Network) Release(p *Packet) {
	if !p.pooled || p.retained {
		return
	}
	if p.freed {
		panic("netsim: double release of pooled packet")
	}
	*p = Packet{pooled: true, freed: true}
	nw.pktFree = append(nw.pktFree, p)
}
