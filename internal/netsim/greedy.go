package netsim

import (
	"time"

	"acacia/internal/pkt"
	"acacia/internal/sim"
)

// GreedyFlow is an iperf-style elastic sender: a window-based transport with
// slow start, AIMD congestion avoidance and timeout-based loss recovery. It
// ramps up until it fills the bottleneck, which is all the throughput
// experiments (Fig. 8, Fig. 3(d)) need from a transport.
type GreedyFlow struct {
	host    *Host
	dst     pkt.Addr
	dstPort uint16
	srcPort uint16
	size    int // segment size in bytes

	cwnd     float64 // congestion window in segments
	ssthresh float64
	nextSeq  int
	inFlight map[int]*sim.Event // seq -> retransmit timer
	sentAt   map[int]sim.Time   // seq -> first-transmission time
	rto      time.Duration
	srtt     time.Duration // smoothed RTT (Jacobson/Karels)
	rttvar   time.Duration
	running  bool

	// AckedSegments counts cumulative successful deliveries.
	AckedSegments uint64
	// Retransmits counts loss events.
	Retransmits uint64

	// free recycles segment payloads: a *greedySeg boxes into Packet.Payload
	// without allocating, rides to the receiver, comes back on the ACK
	// turnaround and returns here. Payloads on dropped packets simply fall
	// to the garbage collector.
	free []*greedySeg
}

// greedySeg is the payload of both a data segment and (turned around by the
// receiver) its ACK.
type greedySeg struct {
	seq    int
	sentAt sim.Time
}

// NewGreedyFlow creates a greedy sender from h to dst:dstPort with the given
// segment size. The receiver side must be created with NewGreedyReceiver on
// the destination host at dstPort.
func NewGreedyFlow(h *Host, dst pkt.Addr, dstPort, srcPort uint16, segSize int) *GreedyFlow {
	g := &GreedyFlow{
		host: h, dst: dst, dstPort: dstPort, srcPort: srcPort, size: segSize,
		cwnd: 2, ssthresh: 64, rto: 200 * time.Millisecond,
		inFlight: make(map[int]*sim.Event),
		sentAt:   make(map[int]sim.Time),
	}
	h.Listen(srcPort, AppFunc(func(_ *Host, p *Packet) {
		seg, ok := p.Payload.(*greedySeg)
		h.Node.Network().Release(p)
		if !ok {
			return
		}
		seq := seg.seq
		*seg = greedySeg{}
		g.free = append(g.free, seg)
		g.onAck(seq)
	}))
	return g
}

// Start begins transmission; the flow runs until Stop.
func (g *GreedyFlow) Start() {
	g.running = true
	g.pump()
}

// Stop halts transmission and cancels retransmit timers.
func (g *GreedyFlow) Stop() {
	g.running = false
	for _, ev := range g.inFlight {
		ev.Cancel()
	}
	g.inFlight = make(map[int]*sim.Event)
}

func (g *GreedyFlow) pump() {
	for g.running && len(g.inFlight) < int(g.cwnd) {
		g.sendSeg(g.nextSeq)
		g.nextSeq++
	}
}

func (g *GreedyFlow) sendSeg(seq int) {
	var seg *greedySeg
	if n := len(g.free); n > 0 {
		seg = g.free[n-1]
		g.free[n-1] = nil
		g.free = g.free[:n-1]
	} else {
		seg = &greedySeg{}
	}
	seg.seq, seg.sentAt = seq, g.host.Engine().Now()
	g.host.Send(g.dst, g.srcPort, g.dstPort, pkt.ProtoTCP, g.size, seg)
	if old, ok := g.inFlight[seq]; ok {
		old.Cancel()
	} else {
		g.sentAt[seq] = g.host.Engine().Now()
	}
	g.inFlight[seq] = g.host.Engine().Schedule(g.rto, func() { g.onTimeout(seq) })
}

// updateRTO folds a fresh RTT measurement into the Jacobson/Karels
// estimator, keeping the retransmit timeout well above queue-inflated RTTs.
func (g *GreedyFlow) updateRTO(rtt time.Duration) {
	if g.srtt == 0 {
		g.srtt = rtt
		g.rttvar = rtt / 2
	} else {
		diff := g.srtt - rtt
		if diff < 0 {
			diff = -diff
		}
		g.rttvar = (3*g.rttvar + diff) / 4
		g.srtt = (7*g.srtt + rtt) / 8
	}
	// Factor-of-two headroom on srtt absorbs self-induced queueing during
	// window ramp-up, which a pure Jacobson estimator chases too slowly.
	g.rto = 2*g.srtt + 4*g.rttvar
	if g.rto < 200*time.Millisecond {
		g.rto = 200 * time.Millisecond
	}
}

func (g *GreedyFlow) onAck(seq int) {
	ev, ok := g.inFlight[seq]
	if !ok {
		return // duplicate or post-timeout ack
	}
	ev.Cancel()
	delete(g.inFlight, seq)
	if t0, ok := g.sentAt[seq]; ok {
		g.updateRTO(g.host.Engine().Now().Sub(t0))
		delete(g.sentAt, seq)
	}
	g.AckedSegments++
	if g.cwnd < g.ssthresh {
		g.cwnd++ // slow start
	} else {
		g.cwnd += 1 / g.cwnd // congestion avoidance
	}
	if g.running {
		g.pump()
	}
}

func (g *GreedyFlow) onTimeout(seq int) {
	if !g.running {
		return
	}
	if _, ok := g.inFlight[seq]; !ok {
		return
	}
	g.Retransmits++
	// Karn's algorithm: never sample RTT from a retransmitted segment.
	delete(g.sentAt, seq)
	g.ssthresh = g.cwnd / 2
	if g.ssthresh < 2 {
		g.ssthresh = 2
	}
	g.cwnd = g.ssthresh // fast-recovery-style halving, not full reset
	g.sendSeg(seq)
}

// Cwnd reports the current congestion window in segments.
func (g *GreedyFlow) Cwnd() float64 { return g.cwnd }

// NewGreedyReceiver registers the receiving side of a greedy flow on h at
// port: it acknowledges every segment and exposes goodput via the returned
// sink (which counts segment bytes).
func NewGreedyReceiver(h *Host, port uint16) *Sink {
	s := &Sink{eng: h.Engine()}
	h.Listen(port, AppFunc(func(hh *Host, p *Packet) {
		if _, ok := p.Payload.(*greedySeg); !ok {
			hh.Node.Network().Release(p)
			return
		}
		s.account(p)
		// Turn the segment packet around as its own ACK, payload included.
		p.Flow = p.Flow.Reverse()
		p.Size = 40 // ACK-sized
		p.Hops = 0
		p.QueueWait = 0
		hh.Node.Inject(p)
	}))
	return s
}
