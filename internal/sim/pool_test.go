package sim

import (
	"testing"
	"time"
)

// TestMixedSchedulingAPIsFIFO checks the determinism contract behind event
// pooling: Schedule, ScheduleArg, After and AfterArg share one sequence
// counter, so interleaving pooled and handle-bearing scheduling at equal
// timestamps fires in exact call order. Swapping one API for another in a
// hot path must never reorder a seeded run.
func TestMixedSchedulingAPIsFIFO(t *testing.T) {
	eng := NewEngine(1)
	var order []int
	note := func(v any) { order = append(order, v.(int)) }
	eng.Schedule(time.Millisecond, func() { order = append(order, 0) })
	eng.After(time.Millisecond, func() { order = append(order, 1) })
	eng.ScheduleArg(time.Millisecond, note, 2)
	eng.AfterArg(time.Millisecond, note, 3)
	eng.After(time.Millisecond, func() { order = append(order, 4) })
	eng.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("mixed-API firing order = %v, want 0..4 in call order", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("fired %d events, want 5", len(order))
	}
}

// TestScheduleArgCancel checks a pre-bound timer behaves like a closure
// timer under Cancel.
func TestScheduleArgCancel(t *testing.T) {
	eng := NewEngine(1)
	fired := false
	ev := eng.ScheduleArg(time.Millisecond, func(any) { fired = true }, nil)
	ev.Cancel()
	eng.Run()
	if fired {
		t.Error("cancelled ScheduleArg event fired")
	}
}

// TestPooledEventArgIntegrity checks recycled events never leak a stale
// argument into a later firing: each AfterArg invocation sees exactly the
// argument it was scheduled with, across many recycle generations.
func TestPooledEventArgIntegrity(t *testing.T) {
	eng := NewEngine(1)
	next := 0
	var check func(any)
	check = func(v any) {
		if v.(int) != next {
			t.Fatalf("event fired with arg %v, want %d", v, next)
		}
		next++
		if next < 1000 {
			eng.AfterArg(time.Microsecond, check, next)
		}
	}
	eng.AfterArg(time.Microsecond, check, 0)
	eng.Run()
	if next != 1000 {
		t.Fatalf("fired %d chained events, want 1000", next)
	}
}

// TestNextEventAtSkipsCancelled checks the cancelled-event sweep in
// NextEventAt coexists with event pooling: cancelled events are swept
// without perturbing live pooled events behind them.
func TestNextEventAtSkipsCancelled(t *testing.T) {
	eng := NewEngine(1)
	// Warm one pooled event and let it fire.
	eng.After(time.Millisecond, func() {})
	eng.Run()
	// A cancelled handle-bearing event ahead of a pooled one: the sweep in
	// NextEventAt must skip it and still report the pooled event's time.
	ev := eng.Schedule(time.Millisecond, func() {})
	eng.After(2*time.Millisecond, func() {})
	ev.Cancel()
	at, ok := eng.NextEventAt()
	if !ok || at != Time(2*time.Millisecond).Add(eng.Now().Duration()) {
		t.Fatalf("NextEventAt = %v, %v; want the pooled event's time", at, ok)
	}
	eng.Run()
}
