package sim

import (
	"testing"
	"time"
)

// TestRunUntilTargetAtOrBeforeClock checks RunUntil degenerates safely when
// the target does not advance the clock: a target equal to the current clock
// runs nothing new, and a target in the past neither regresses the clock nor
// fires future events. Cluster.RunUntil leans on these semantics when a
// window barrier lands exactly on the caller's target.
func TestRunUntilTargetAtOrBeforeClock(t *testing.T) {
	eng := NewEngine(1)
	ran := 0
	eng.Schedule(5*time.Millisecond, func() { ran++ })
	eng.Schedule(10*time.Millisecond, func() { ran++ })

	eng.RunUntil(Time(5 * time.Millisecond))
	if ran != 1 || eng.Now() != Time(5*time.Millisecond) {
		t.Fatalf("setup: ran=%d clock=%v", ran, eng.Now())
	}

	// Target exactly at the clock: nothing fires, nothing moves.
	eng.RunUntil(Time(5 * time.Millisecond))
	if ran != 1 || eng.Now() != Time(5*time.Millisecond) || eng.Pending() != 1 {
		t.Errorf("target at clock: ran=%d clock=%v pending=%d, want 1, 5ms, 1", ran, eng.Now(), eng.Pending())
	}

	// Target before the clock: the clock must not run backwards and the
	// future event must stay pending.
	eng.RunUntil(Time(3 * time.Millisecond))
	if ran != 1 || eng.Now() != Time(5*time.Millisecond) || eng.Pending() != 1 {
		t.Errorf("target before clock: ran=%d clock=%v pending=%d, want 1, 5ms, 1", ran, eng.Now(), eng.Pending())
	}

	eng.Run()
	if ran != 2 {
		t.Errorf("ran = %d after drain, want 2", ran)
	}
}

// TestNextEventAtDrainsCancelledPooled checks the cancelled-event sweep in
// NextEventAt recycles pooled events back to the free-list instead of
// leaking them. No public API hands out a cancel handle for pooled events
// (that is the point of the pool), so the test marks them cancelled
// directly — the state a future API or an internal path could produce.
func TestNextEventAtDrainsCancelledPooled(t *testing.T) {
	eng := NewEngine(1)
	eng.After(time.Millisecond, func() {}) // pooled
	eng.After(time.Millisecond, func() {}) // pooled
	live := eng.Schedule(2*time.Millisecond, func() {})

	cancelled := 0
	for _, ev := range eng.queue {
		if ev.pooled {
			ev.cancel = true
			cancelled++
		}
	}
	if cancelled != 2 {
		t.Fatalf("marked %d pooled events cancelled, want 2", cancelled)
	}

	free0 := len(eng.free)
	at, ok := eng.NextEventAt()
	if !ok || at != Time(2*time.Millisecond) {
		t.Errorf("NextEventAt = %v, %v; want the live event at 2ms", at, ok)
	}
	if len(eng.free) != free0+2 {
		t.Errorf("free-list grew by %d, want 2 (cancelled pooled events recycled)", len(eng.free)-free0)
	}
	if eng.Pending() != 1 || eng.queue[0] != live {
		t.Errorf("queue after sweep: pending=%d head=%p, want only the live event", eng.Pending(), eng.queue[0])
	}

	// The recycled slots must be reusable: the next After must not allocate.
	eng.After(3*time.Millisecond, func() {})
	if len(eng.free) != free0+1 {
		t.Errorf("After did not reuse a recycled event (free=%d, want %d)", len(eng.free), free0+1)
	}
	eng.Run()
}

// TestTickerStopTwiceInsideTick checks Stop is idempotent even when invoked
// repeatedly from inside the tick it is cancelling, and that a stopped
// ticker never re-arms.
func TestTickerStopTwiceInsideTick(t *testing.T) {
	eng := NewEngine(1)
	var tk *Ticker
	count := 0
	tk = NewTicker(eng, time.Millisecond, func() {
		count++
		tk.Stop()
		tk.Stop() // second stop from the same tick must be harmless
	})
	other := 0
	eng.Schedule(5*time.Millisecond, func() { other++ })
	eng.Run()
	tk.Stop() // and a third, after the run
	if count != 1 {
		t.Errorf("ticks = %d, want 1 (stopped inside first tick)", count)
	}
	if other != 1 {
		t.Errorf("unrelated event ran %d times, want 1 (ticker stop must not disturb the queue)", other)
	}
	if eng.Pending() != 0 {
		t.Errorf("pending = %d after drain, want 0 (stopped ticker re-armed?)", eng.Pending())
	}
}
