// Conservative windowed partitioning of the event loop (Chandy–Misra–Bryant
// applied to the ACACIA topology).
//
// A Cluster groups several Engines — one per partition — and advances them in
// lock-stepped windows. Each window the cluster computes the earliest pending
// timestamp Tmin across all partitions and lets every partition run its local
// events with timestamp strictly below Tmin + lookahead. The lookahead is the
// minimum latency of any cross-partition link, so an event executing inside
// the window can only schedule cross-partition work at or beyond the window
// limit — never into a window a peer partition has already executed. That is
// the classic conservative-synchronization safety argument, and SendTo
// enforces it at runtime: a cross send below the current limit panics instead
// of silently reordering.
//
// Cross-partition sends are buffered in single-writer outboxes (partition i
// writes only row i) and delivered at the window barrier, sorted by
// (timestamp, source partition, send order) and sequenced into the receiver's
// queue in that order. Because the outbox order is a pure function of each
// partition's deterministic event order, the injected sequence — and hence
// the full simulation — is identical whether windows execute serially or on
// a parallel Runner. Partitions never share mutable state: each Engine owns
// its queue, clock, RNG, free-lists and telemetry registry.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"time"
)

// Runner executes one batch of window closures, one per partition, and
// returns only when all of them have completed. Implementations may run them
// concurrently (see exec.Gang); the zero-dependency default runs them
// serially in partition order. Either way the simulation output is
// byte-identical, because partitions only interact through outboxes that are
// drained between windows.
type Runner interface {
	Do(fns []func())
}

// serialRunner is the default Runner: windows execute in partition order on
// the calling goroutine.
type serialRunner struct{}

func (serialRunner) Do(fns []func()) {
	for _, fn := range fns {
		fn()
	}
}

// xev is one buffered cross-partition event: a timestamped callback waiting
// in an outbox for the next window barrier.
type xev struct {
	at  Time
	fn  func()
	afn func(any)
	arg any
}

// partition ties an Engine to its Cluster.
type partition struct {
	c  *Cluster
	id int
}

// Cluster coordinates a set of partition Engines under conservative windowed
// synchronization. Partition 0 is the master engine passed to NewCluster
// (the EPC core + controller in the testbed); further partitions are created
// with AddPartition. The zero value is not usable.
type Cluster struct {
	seed  uint64
	parts []*Engine
	// out[src][dst] buffers cross-partition events sent by partition src to
	// partition dst during the current window. Only partition src appends to
	// row src (single writer), and the barrier alone reads and clears it, so
	// outboxes need no locks even under a concurrent Runner.
	out [][][]xev
	// lookahead is the safe horizon: no cross-partition interaction can take
	// effect sooner than this after the event that caused it. It must be a
	// lower bound on the latency of every cross-partition link.
	lookahead Time
	// limit is the current window's exclusive upper bound, read by SendTo's
	// safety check. It is written only between windows (or before the run),
	// and the Runner barrier orders those writes against worker reads.
	limit  Time
	now    Time
	runner Runner
	winFns []func()
	inbox  []xev // delivery scratch, reused between barriers
}

// NewCluster makes master partition 0 of a new cluster. seed should be the
// same configuration seed the master engine was built from; partition engine
// RNG streams are derived from it by label so that creating partitions never
// draws from — and therefore never perturbs — the master stream.
func NewCluster(master *Engine, seed uint64) *Cluster {
	if master.part != nil {
		panic("sim: engine already belongs to a cluster")
	}
	c := &Cluster{seed: seed, runner: serialRunner{}}
	c.attach(master)
	return c
}

// AddPartition creates a new engine as the next partition. The label names
// the partition (an edge site, typically) and determinizes its RNG stream:
// the stream is a function of (seed, label) only, so adding partitions never
// perturbs the master engine's stream the way RNG.Fork — which advances its
// parent — would.
func (c *Cluster) AddPartition(label string) *Engine {
	e := NewEngine(labelSeed(c.seed, label))
	c.attach(e)
	return e
}

func (c *Cluster) attach(e *Engine) {
	e.part = &partition{c: c, id: len(c.parts)}
	c.parts = append(c.parts, e)
	for i := range c.out {
		c.out[i] = append(c.out[i], nil)
	}
	c.out = append(c.out, make([][]xev, len(c.parts)))
	c.winFns = append(c.winFns, nil) // rebuilt lazily; see ensureWinFns
}

// labelSeed derives a partition seed from the configuration seed and a label
// (FNV-1a), mirroring how experiments derive sub-seeds.
func labelSeed(seed uint64, label string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return seed ^ h
}

// Engines returns the partition engines in partition-id order (master first).
func (c *Cluster) Engines() []*Engine { return c.parts }

// SetLookahead declares the safe horizon: a lower bound on the delay of any
// cross-partition interaction. Extract it from the network's minimum
// cross-partition link latency (netsim.MinCrossLatency). A cluster with more
// than one partition must set a positive lookahead before running.
func (c *Cluster) SetLookahead(d time.Duration) { c.lookahead = Time(d) }

// Lookahead reports the configured safe horizon.
func (c *Cluster) Lookahead() time.Duration { return time.Duration(c.lookahead) }

// SetRunner installs the window executor. Passing nil restores the serial
// default. A concurrent Runner (exec.Gang) changes wall-clock time only;
// simulation output stays byte-identical.
func (c *Cluster) SetRunner(r Runner) {
	if r == nil {
		r = serialRunner{}
	}
	c.runner = r
}

// Now reports the cluster's virtual clock: the target of the last completed
// RunUntil/RunFor.
func (c *Cluster) Now() Time { return c.now }

// Processed sums executed events across all partitions.
func (c *Cluster) Processed() uint64 {
	var n uint64
	for _, e := range c.parts {
		n += e.processed
	}
	return n
}

// ensureWinFns (re)builds the per-partition window closures. Each closure
// runs its partition's local events strictly below the current window limit.
func (c *Cluster) ensureWinFns() {
	if c.winFns[len(c.winFns)-1] != nil {
		return
	}
	for i := range c.winFns {
		e := c.parts[i]
		c.winFns[i] = func() { e.runBefore(c.limit) }
	}
}

// deliver drains every outbox into its destination partition's queue. Per
// destination, buffered events are ordered by (timestamp, source partition,
// send order) — the deterministic cross-partition tie-break — and sequenced
// into the receiver in that order. Runs only between windows.
func (c *Cluster) deliver() {
	for dst := range c.parts {
		box := c.inbox[:0]
		for src := range c.parts {
			row := c.out[src][dst]
			if len(row) == 0 {
				continue
			}
			box = append(box, row...)
			for i := range row {
				row[i] = xev{}
			}
			c.out[src][dst] = row[:0]
		}
		if len(box) == 0 {
			continue
		}
		// Stable: equal timestamps keep (source partition, send order).
		sort.SliceStable(box, func(i, j int) bool { return box[i].at < box[j].at })
		e := c.parts[dst]
		for i := range box {
			e.inject(box[i].at, box[i].fn, box[i].afn, box[i].arg)
			box[i] = xev{}
		}
		c.inbox = box[:0]
	}
}

// minNext returns the earliest pending timestamp across all partitions.
func (c *Cluster) minNext() (Time, bool) {
	best, ok := Time(0), false
	for _, e := range c.parts {
		if t, has := e.NextEventAt(); has && (!ok || t < best) {
			best, ok = t, true
		}
	}
	return best, ok
}

// RunUntil executes events with timestamps <= target across all partitions,
// in conservative windows, then sets every partition clock (and the cluster
// clock) to target. It matches Engine.RunUntil semantics per partition.
//
// If any partition calls Stop mid-window the run ends at that window's
// barrier with clocks left where they are, like Engine.RunUntil under Stop.
func (c *Cluster) RunUntil(target Time) {
	if len(c.parts) > 1 && c.lookahead <= 0 {
		panic("sim: cluster with multiple partitions needs a positive lookahead")
	}
	c.ensureWinFns()
	for _, e := range c.parts {
		e.stopped = false
	}
	for {
		c.deliver()
		tmin, ok := c.minNext()
		if !ok || tmin > target {
			break
		}
		limit := tmin + c.lookahead
		// The +1 makes the exclusive window bound include events exactly at
		// target, matching Engine.RunUntil's inclusive <= target. A lone
		// partition has nothing to synchronize against, so it takes the whole
		// remaining range as one window regardless of lookahead.
		if len(c.parts) == 1 || limit < tmin || limit > target+1 {
			limit = target + 1
		}
		c.limit = limit
		c.runner.Do(c.winFns)
		for _, e := range c.parts {
			if e.stopped {
				return
			}
		}
	}
	for _, e := range c.parts {
		if e.now < target {
			e.now = target
		}
	}
	c.now = target
	c.limit = target + 1
}

// RunFor advances the cluster by d of virtual time from the cluster clock.
func (c *Cluster) RunFor(d time.Duration) { c.RunUntil(c.now.Add(d)) }

// Run executes windows until every partition's queue drains (or Stop is
// called). The final clock is the last executed event's time per partition.
func (c *Cluster) Run() {
	if len(c.parts) > 1 && c.lookahead <= 0 {
		panic("sim: cluster with multiple partitions needs a positive lookahead")
	}
	c.ensureWinFns()
	for _, e := range c.parts {
		e.stopped = false
	}
	for {
		c.deliver()
		tmin, ok := c.minNext()
		if !ok {
			break
		}
		limit := tmin + c.lookahead
		if len(c.parts) == 1 || limit < tmin {
			limit = Time(math.MaxInt64)
		}
		c.limit = limit
		c.runner.Do(c.winFns)
		for _, e := range c.parts {
			if e.stopped {
				return
			}
		}
	}
}

// --- Engine-side partition hooks ---

// runBefore executes local events with timestamps strictly below limit. It is
// the per-window work of one partition; only the partition's own goroutine
// (under the cluster Runner) calls it.
//
//acacia:hotpath
func (e *Engine) runBefore(limit Time) {
	for len(e.queue) > 0 && !e.stopped && e.queue[0].at < limit {
		e.step()
	}
}

// inject enqueues a barrier-delivered cross-partition event with a
// receiver-local sequence number. Injected events are pooled (they carry no
// outside handle, so they recycle like After events).
func (e *Engine) inject(at Time, fn func(), afn func(any), arg any) {
	if at < e.now {
		badTime(at, e.now)
	}
	ev := e.takeEvent()
	ev.at = at
	ev.seq = e.seq
	ev.fn = fn
	ev.afn = afn
	ev.arg = arg
	e.seq++
	heap.Push(&e.queue, ev)
}

// SendTo schedules fn(arg) on dst after delay d of virtual time. When dst is
// this engine it is exactly AfterArg. Otherwise both engines must belong to
// the same cluster and the event lands in the source partition's outbox for
// delivery at the next window barrier; the delivery time must be at or past
// the current window limit — i.e. d must be at least the cluster lookahead —
// or SendTo panics, because executing it would violate conservative
// synchronization.
//
//acacia:hotpath
func (e *Engine) SendTo(dst *Engine, d time.Duration, fn func(any), arg any) {
	if dst == e {
		e.AfterArg(d, fn, arg)
		return
	}
	if d < 0 {
		badDelay(d)
	}
	p := e.part
	if p == nil || dst.part == nil || p.c != dst.part.c {
		badCross()
	}
	at := e.now.Add(d)
	c := p.c
	if at < c.limit {
		badLookahead(at, c.limit)
	}
	c.out[p.id][dst.part.id] = append(c.out[p.id][dst.part.id], xev{at: at, afn: fn, arg: arg})
}

// CrossSchedule schedules fn on dst after delay d. When dst is this engine it
// behaves exactly like Schedule (sharing the sequence counter, so swapping a
// Schedule call for CrossSchedule never reorders a seeded run); cross-engine
// it buffers through the outbox like SendTo. Cross events cannot be
// cancelled, so no handle is returned.
func (e *Engine) CrossSchedule(dst *Engine, d time.Duration, fn func()) {
	if dst == e {
		e.Schedule(d, fn)
		return
	}
	if d < 0 {
		badDelay(d)
	}
	p := e.part
	if p == nil || dst.part == nil || p.c != dst.part.c {
		badCross()
	}
	at := e.now.Add(d)
	c := p.c
	if at < c.limit {
		badLookahead(at, c.limit)
	}
	c.out[p.id][dst.part.id] = append(c.out[p.id][dst.part.id], xev{at: at, fn: fn})
}

// Noinline for the same reason as badDelay: keep the panic-path boxing out
// of hotpath callers' escape profiles.
//
//go:noinline
func badCross() {
	panic("sim: cross-engine send between engines not in the same cluster")
}

//go:noinline
func badLookahead(at, limit Time) {
	panic(fmt.Sprintf("sim: cross-partition send at %v violates conservative window limit %v (delay shorter than cluster lookahead?)", at, limit))
}
