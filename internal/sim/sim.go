// Package sim provides a deterministic discrete-event simulation engine.
//
// All ACACIA experiments run in virtual time: entities schedule events on a
// shared Engine, and the engine advances a virtual clock from event to event.
// This makes latency measurements exact and runs reproducible — two runs with
// the same seed produce identical results, regardless of host load.
//
// The engine is intentionally single-threaded: handlers run one at a time in
// timestamp order (ties broken by scheduling order), so entity state needs no
// locking. Concurrency in the simulated system is expressed by scheduling,
// not by goroutines.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"

	"acacia/internal/telemetry"
)

// Time is a point in virtual time, measured as a duration since the start of
// the simulation. The zero Time is the simulation epoch.
type Time time.Duration

// Common virtual-time unit helpers.
const (
	Nanosecond  Time = Time(time.Nanosecond)
	Microsecond Time = Time(time.Microsecond)
	Millisecond Time = Time(time.Millisecond)
	Second      Time = Time(time.Second)
)

// Duration converts t to a time.Duration since the simulation epoch.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return time.Duration(t).Seconds() }

// Milliseconds reports t as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(time.Duration(t)) / float64(time.Millisecond) }

// Add returns t shifted forward by d.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// String formats t as a duration since the epoch.
func (t Time) String() string { return time.Duration(t).String() }

// Event is a scheduled callback. Events are one-shot; recurring behaviour is
// built by re-scheduling from within the handler.
type Event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among equal timestamps
	fn  func()
	// afn/arg are the pre-bound form used by the pooled hot-path APIs
	// (After/AfterArg): a method value captured once at construction plus a
	// per-call argument, so scheduling allocates no closure. When afn is
	// non-nil it takes precedence over fn.
	afn    func(any)
	arg    any
	index  int // heap index; -1 once popped or cancelled
	cancel bool
	// pooled marks events owned by the engine's free-list. They have no
	// outside handle (After returns nothing), so after firing they are
	// reset and recycled.
	pooled bool
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. Cancel must be called from simulation
// context (i.e. from within a handler or before Run).
func (e *Event) Cancel() {
	if e != nil {
		e.cancel = true
	}
}

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e != nil && e.cancel }

// At reports the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine is a discrete-event scheduler with a virtual clock.
// The zero value is not usable; call NewEngine.
type Engine struct {
	now     Time
	queue   eventQueue
	seq     uint64
	rng     *RNG
	stopped bool
	// free is the engine-owned event free-list backing After/AfterArg.
	// Hanging it off the engine (never a package global) keeps trials
	// isolated: concurrent trials each recycle only their own events, so
	// pooling cannot perturb the byte-identity of seeded runs.
	free []*Event
	// Processed counts events whose handlers have run.
	processed uint64
	// Limit, when non-zero, aborts Run after this many events as a runaway
	// guard. Runs that legitimately need more should raise it.
	Limit uint64
	// metrics is the engine-scoped telemetry registry every layer built on
	// this engine registers into.
	metrics *telemetry.Registry
	// part is non-nil when the engine belongs to a Cluster (see cluster.go):
	// it identifies the partition for cross-partition sends.
	part *partition
}

// NewEngine returns an engine with its clock at the epoch and a deterministic
// random source derived from seed.
func NewEngine(seed uint64) *Engine {
	e := &Engine{rng: NewRNG(seed), Limit: 500_000_000, metrics: telemetry.New()}
	e.metrics.SetClock(func() time.Duration { return time.Duration(e.now) })
	return e
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Metrics returns the engine's telemetry registry: the single namespace all
// layers (netsim, sdn, epc, d2d, core) register their counters, gauges,
// histograms and timeline events into. Snapshots of it are the "everything
// that happened this run" view the experiments export.
func (e *Engine) Metrics() *telemetry.Registry { return e.metrics }

// RNG returns the engine's deterministic random source.
func (e *Engine) RNG() *RNG { return e.rng }

// Processed reports how many events have been executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Schedule runs fn after delay d (>= 0) of virtual time and returns the
// event handle, which may be used to cancel it.
func (e *Engine) Schedule(d time.Duration, fn func()) *Event {
	if d < 0 {
		badDelay(d)
	}
	return e.ScheduleAt(e.now.Add(d), fn)
}

// ScheduleAt runs fn at absolute virtual time t, which must not be in the
// past.
func (e *Engine) ScheduleAt(t Time, fn func()) *Event {
	if t < e.now {
		badTime(t, e.now)
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// ScheduleArg runs fn(arg) after delay d of virtual time and returns the
// event handle, like Schedule. fn is typically a method value bound once at
// construction time and arg the per-call datum, so a cancellable timer can
// be armed without allocating a closure per call. The handle-bearing Event
// itself is still allocated (callers may retain it); fully pooled
// scheduling requires giving up the handle — see After/AfterArg.
//
// Firing order is identical to Schedule: all scheduling APIs share one
// sequence counter.
//
//acacia:hotpath
func (e *Engine) ScheduleArg(d time.Duration, fn func(any), arg any) *Event {
	if d < 0 {
		badDelay(d)
	}
	//acacia:allow hotpath-escape handle-bearing event: callers may retain the returned *Event to cancel it, so it cannot come from the free-list (see doc comment)
	ev := &Event{at: e.now.Add(d), seq: e.seq, afn: fn, arg: arg}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After runs fn after delay d of virtual time, like Schedule, but returns no
// handle: the event cannot be cancelled, which lets the engine recycle it
// through its free-list after it fires. Hot paths that never cancel (link
// transmit completions, CPU service, packet delivery) use this to schedule
// without allocating.
//
// Firing order is identical to Schedule: After and Schedule share one
// sequence counter, so interleaving the two APIs cannot reorder events.
//
//acacia:hotpath
func (e *Engine) After(d time.Duration, fn func()) {
	if d < 0 {
		badDelay(d)
	}
	ev := e.takeEvent()
	ev.at = e.now.Add(d)
	ev.seq = e.seq
	ev.fn = fn
	e.seq++
	heap.Push(&e.queue, ev)
}

// AfterArg runs fn(arg) after delay d of virtual time through the event
// free-list. fn is typically a method value bound once at construction time
// and arg the per-call datum (a packet, a frame), so the per-call cost is
// zero allocations: no Event (pooled), no closure (pre-bound fn), and no
// boxing when arg is pointer-shaped.
//
//acacia:hotpath
func (e *Engine) AfterArg(d time.Duration, fn func(any), arg any) {
	if d < 0 {
		badDelay(d)
	}
	ev := e.takeEvent()
	ev.at = e.now.Add(d)
	ev.seq = e.seq
	ev.afn = fn
	ev.arg = arg
	e.seq++
	heap.Push(&e.queue, ev)
}

// takeEvent pops a recycled event from the free-list, or allocates one.
//
//acacia:hotpath
func (e *Engine) takeEvent() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return newEvent()
}

// newEvent is takeEvent's pool-miss refill path. Noinline keeps the
// unavoidable allocation out of the hotpath callers' escape profiles.
//
//go:noinline
func newEvent() *Event {
	return &Event{pooled: true}
}

// recycle returns a pooled event to the free-list once it can no longer
// fire. Handle-bearing events (Schedule/ScheduleAt) are never recycled:
// their callers may still inspect them.
//
//acacia:hotpath
func (e *Engine) recycle(ev *Event) {
	if !ev.pooled {
		return
	}
	ev.at = 0
	ev.seq = 0
	ev.fn = nil
	ev.afn = nil
	ev.arg = nil
	ev.index = -1
	ev.cancel = false
	e.free = append(e.free, ev)
}

// The panic helpers are marked noinline: inlined into a hotpath caller,
// their Sprintf boxing would count as an allocation inside the caller's
// line range and trip the hotpath-escape gate.
//
//go:noinline
func badDelay(d time.Duration) {
	panic(fmt.Sprintf("sim: negative delay %v", d))
}

//go:noinline
func badTime(t, now Time) {
	panic(fmt.Sprintf("sim: schedule at %v before now %v", t, now))
}

// Stop makes Run return after the currently executing handler completes.
// Pending events remain queued and would run if Run were called again.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in timestamp order until the queue drains, Stop is
// called, or the event limit is hit (which panics, as it indicates a
// scheduling loop).
func (e *Engine) Run() {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		e.step()
	}
}

// RunUntil executes events with timestamps <= t and then sets the clock to t.
// Events scheduled beyond t remain pending.
func (e *Engine) RunUntil(t Time) {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped && e.queue[0].at <= t {
		e.step()
	}
	if !e.stopped && e.now < t {
		e.now = t
	}
}

// RunFor advances the simulation by d of virtual time from the current clock.
func (e *Engine) RunFor(d time.Duration) { e.RunUntil(e.now.Add(d)) }

//acacia:hotpath
func (e *Engine) step() {
	ev := heap.Pop(&e.queue).(*Event)
	if ev.cancel {
		e.recycle(ev)
		return
	}
	e.now = ev.at
	e.processed++
	if e.Limit != 0 && e.processed > e.Limit {
		e.limitExceeded()
	}
	// Copy the callback out before recycling so the handler may immediately
	// reuse the event slot for its own scheduling.
	fn, afn, arg := ev.fn, ev.afn, ev.arg
	e.recycle(ev)
	if afn != nil {
		afn(arg)
	} else {
		fn()
	}
}

//go:noinline
func (e *Engine) limitExceeded() {
	panic(fmt.Sprintf("sim: event limit %d exceeded at t=%v (scheduling loop?)", e.Limit, e.now))
}

// Pending reports the number of queued (possibly cancelled) events.
func (e *Engine) Pending() int { return len(e.queue) }

// NextEventAt returns the timestamp of the earliest pending event and whether
// one exists.
func (e *Engine) NextEventAt() (Time, bool) {
	for len(e.queue) > 0 && e.queue[0].cancel {
		e.recycle(heap.Pop(&e.queue).(*Event))
	}
	if len(e.queue) == 0 {
		return 0, false
	}
	return e.queue[0].at, true
}

// Ticker repeatedly invokes a handler at a fixed virtual-time period until
// stopped. It is the simulation analog of time.Ticker.
type Ticker struct {
	eng    *Engine
	period time.Duration
	fn     func()
	ev     *Event
	done   bool
	// tickF is the method value bound once at construction so re-arming
	// each period allocates no closure.
	tickF func()
}

// NewTicker schedules fn every period, with the first firing after one full
// period. Period must be positive.
func NewTicker(eng *Engine, period time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{eng: eng, period: period, fn: fn}
	t.tickF = t.tick
	t.arm()
	return t
}

//acacia:hotpath
func (t *Ticker) arm() {
	t.ev = t.eng.Schedule(t.period, t.tickF)
}

func (t *Ticker) tick() {
	if t.done {
		return
	}
	t.fn()
	if !t.done {
		t.arm()
	}
}

// Stop halts future firings. It may be called from within the handler.
func (t *Ticker) Stop() {
	t.done = true
	t.ev.Cancel()
}

// RNG is a small, fast, deterministic random source (xoshiro256**). It is
// independent of math/rand so simulation results cannot drift with Go
// releases.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via SplitMix64.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns a uniformly distributed 64-bit value.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal deviate (Box–Muller).
func (r *RNG) NormFloat64() float64 {
	for {
		u1 := r.Float64()
		if u1 == 0 {
			continue
		}
		u2 := r.Float64()
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

// ExpFloat64 returns an exponential deviate with mean 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		return -math.Log(u)
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Fork derives an independent generator whose stream is a deterministic
// function of the parent's current state and the label. Useful for giving
// each simulated entity its own stream so adding entities does not perturb
// others.
func (r *RNG) Fork(label string) *RNG {
	h := uint64(14695981039346656037)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return NewRNG(r.Uint64() ^ h)
}
