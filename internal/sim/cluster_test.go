package sim

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// trace collects "<time> <label>" lines so tests can compare full execution
// orders across runs and modes.
type trace struct {
	lines []string
}

func (tr *trace) add(e *Engine, label string) {
	tr.lines = append(tr.lines, fmt.Sprintf("%v %s", e.Now(), label))
}

func (tr *trace) String() string { return strings.Join(tr.lines, "\n") }

// pingPong builds a two-partition cluster where the partitions exchange
// cross-partition events every 2 ms (≥ the 1 ms lookahead) and returns the
// execution trace after running for dur.
func pingPong(dur time.Duration) string {
	master := NewEngine(7)
	c := NewCluster(master, 7)
	edge := c.AddPartition("site/edge-1")
	c.SetLookahead(time.Millisecond)

	var tr trace
	var volley func(e, peer *Engine, name string, n int)
	volley = func(e, peer *Engine, name string, n int) {
		tr.add(e, fmt.Sprintf("%s recv %d", name, n))
		if n < 8 {
			e.SendTo(peer, 2*time.Millisecond, func(arg any) {
				volley(peer, e, map[string]string{"core": "edge", "edge": "core"}[name], arg.(int))
			}, n+1)
		}
	}
	master.Schedule(time.Millisecond, func() { volley(master, edge, "core", 0) })
	c.RunFor(dur)
	return tr.String()
}

// TestClusterCrossDeliveryDeterministic checks cross-partition volleys
// execute, alternate between partitions at lookahead-respecting timestamps,
// and replay identically run-to-run.
func TestClusterCrossDeliveryDeterministic(t *testing.T) {
	got := pingPong(50 * time.Millisecond)
	if got != pingPong(50*time.Millisecond) {
		t.Error("same-seed cluster runs diverge")
	}
	if !strings.Contains(got, "core recv 0") || !strings.Contains(got, "edge recv 7") {
		t.Errorf("volley incomplete:\n%s", got)
	}
	if n := len(strings.Split(got, "\n")); n != 9 {
		t.Errorf("trace has %d events, want 9:\n%s", n, got)
	}
}

// TestClusterTieBreakBySourcePartition checks the documented cross-partition
// tie-break: events delivered to one destination at the same timestamp
// execute in (source partition, send order) order, regardless of which
// partition's window ran first.
func TestClusterTieBreakBySourcePartition(t *testing.T) {
	master := NewEngine(1)
	c := NewCluster(master, 1)
	b := c.AddPartition("site/b")
	d := c.AddPartition("site/d")
	c.SetLookahead(time.Millisecond)

	var tr trace
	send := func(src *Engine, name string) func() {
		return func() {
			// Both sources aim at the same destination timestamp (2 ms) and
			// each sends twice to exercise the send-order tie-break too.
			for i := 0; i < 2; i++ {
				i := i
				src.CrossSchedule(master, time.Millisecond, func() {
					tr.add(master, fmt.Sprintf("%s/%d", name, i))
				})
			}
		}
	}
	// Schedule d's window work before b's so heap order alone cannot
	// produce the expected source-partition order.
	d.Schedule(time.Millisecond, send(d, "d"))
	b.Schedule(time.Millisecond, send(b, "b"))
	c.RunFor(10 * time.Millisecond)

	want := "2ms b/0\n2ms b/1\n2ms d/0\n2ms d/1"
	if tr.String() != want {
		t.Errorf("tie-break order:\n%s\nwant:\n%s", tr.String(), want)
	}
}

// TestClusterLookaheadRequired checks a multi-partition cluster refuses to
// run without a declared safe horizon, while a single-partition cluster
// (nothing to synchronize against) runs fine without one.
func TestClusterLookaheadRequired(t *testing.T) {
	solo := NewCluster(NewEngine(1), 1)
	solo.Engines()[0].Schedule(time.Millisecond, func() {})
	solo.RunFor(10 * time.Millisecond) // must not panic

	c := NewCluster(NewEngine(1), 1)
	c.AddPartition("site/x")
	defer func() {
		if recover() == nil {
			t.Error("multi-partition cluster ran without lookahead")
		}
	}()
	c.RunFor(time.Millisecond)
}

// TestClusterSendBelowLookaheadPanics checks the runtime safety net: a
// cross-partition send that would land inside the current window (delay
// shorter than the lookahead) panics instead of silently reordering.
func TestClusterSendBelowLookaheadPanics(t *testing.T) {
	master := NewEngine(1)
	c := NewCluster(master, 1)
	edge := c.AddPartition("site/edge-1")
	c.SetLookahead(time.Millisecond)

	master.Schedule(time.Millisecond, func() {
		master.SendTo(edge, 500*time.Microsecond, func(any) {}, nil)
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("short cross send did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "conservative window limit") {
			t.Errorf("panic = %v, want the lookahead violation message", r)
		}
	}()
	c.RunFor(10 * time.Millisecond)
}

// TestClusterSendToSelfIsLocal checks the degenerate same-engine paths:
// SendTo and CrossSchedule on the destination == source engine behave as
// plain AfterArg/Schedule — no cluster membership needed, shared sequence
// counter, no lookahead constraint.
func TestClusterSendToSelfIsLocal(t *testing.T) {
	eng := NewEngine(1) // deliberately not in any cluster
	var order []int
	eng.SendTo(eng, time.Millisecond, func(any) { order = append(order, 0) }, nil)
	eng.CrossSchedule(eng, time.Millisecond, func() { order = append(order, 1) })
	eng.AfterArg(time.Millisecond, func(any) { order = append(order, 2) }, nil)
	eng.Run()
	if fmt.Sprint(order) != "[0 1 2]" {
		t.Errorf("order = %v, want FIFO [0 1 2] (shared sequence counter)", order)
	}
}

// TestClusterForeignEnginePanics checks cross sends between engines that do
// not share a cluster are rejected.
func TestClusterForeignEnginePanics(t *testing.T) {
	a := NewEngine(1)
	NewCluster(a, 1)
	b := NewEngine(2) // clusterless
	defer func() {
		if recover() == nil {
			t.Error("cross send to a clusterless engine did not panic")
		}
	}()
	a.SendTo(b, time.Second, func(any) {}, nil)
}

// TestClusterReattachPanics checks an engine cannot belong to two clusters.
func TestClusterReattachPanics(t *testing.T) {
	e := NewEngine(1)
	NewCluster(e, 1)
	defer func() {
		if recover() == nil {
			t.Error("second cluster adopted an owned engine")
		}
	}()
	NewCluster(e, 1)
}

// TestLabelSeedDerivation checks partition RNG streams are pure functions
// of (seed, label), distinct across labels, and that creating partitions
// never draws from — and therefore never perturbs — the master stream.
func TestLabelSeedDerivation(t *testing.T) {
	if labelSeed(7, "site/a") != labelSeed(7, "site/a") {
		t.Error("labelSeed not deterministic")
	}
	if labelSeed(7, "site/a") == labelSeed(7, "site/b") {
		t.Error("labels collide")
	}
	if labelSeed(7, "site/a") == labelSeed(8, "site/a") {
		t.Error("seed ignored")
	}

	// Master stream unperturbed by AddPartition.
	ref := NewEngine(42).RNG().Uint64()
	m := NewEngine(42)
	c := NewCluster(m, 42)
	c.AddPartition("site/a")
	c.AddPartition("site/b")
	if got := m.RNG().Uint64(); got != ref {
		t.Errorf("AddPartition perturbed the master RNG stream: %d != %d", got, ref)
	}

	// Partition streams reproduce across cluster constructions.
	p1 := NewCluster(NewEngine(42), 42).AddPartition("site/a").RNG().Uint64()
	p2 := c.Engines()[1].RNG().Uint64()
	if p1 != p2 {
		t.Error("partition RNG stream not reproducible from (seed, label)")
	}
}

// TestClusterStopEndsAtBarrier checks Engine.Stop inside a window ends the
// cluster run at that window's barrier without forcing clocks to target.
func TestClusterStopEndsAtBarrier(t *testing.T) {
	master := NewEngine(1)
	c := NewCluster(master, 1)
	edge := c.AddPartition("site/edge-1")
	c.SetLookahead(time.Millisecond)

	ran := 0
	master.Schedule(2*time.Millisecond, func() { ran++; master.Stop() })
	edge.Schedule(50*time.Millisecond, func() { ran++ })
	c.RunFor(100 * time.Millisecond)
	if ran != 1 {
		t.Errorf("ran = %d, want 1 (stop must end the run)", ran)
	}
	if c.Now() != 0 {
		t.Errorf("cluster clock = %v, want 0 (stopped run does not adopt the target)", c.Now())
	}
	if edge.Pending() != 1 {
		t.Errorf("edge pending = %d, want the 50ms event intact", edge.Pending())
	}

	// A subsequent run clears the stop flag and finishes the work.
	c.RunFor(100 * time.Millisecond)
	if ran != 2 {
		t.Errorf("ran = %d after resume, want 2", ran)
	}
}

// TestClusterRunDrains checks Run executes every pending event across all
// partitions, including cross sends buffered mid-run, and Processed sums
// partition counters.
func TestClusterRunDrains(t *testing.T) {
	master := NewEngine(1)
	c := NewCluster(master, 1)
	edge := c.AddPartition("site/edge-1")
	c.SetLookahead(time.Millisecond)

	ran := 0
	master.Schedule(time.Millisecond, func() {
		ran++
		master.SendTo(edge, 2*time.Millisecond, func(any) { ran++ }, nil)
	})
	edge.Schedule(5*time.Millisecond, func() { ran++ })
	c.Run()
	if ran != 3 {
		t.Errorf("ran = %d, want 3 (Run must drain cross sends too)", ran)
	}
	if got := c.Processed(); got != 3 {
		t.Errorf("Processed() = %d, want 3", got)
	}
	if master.Pending()+edge.Pending() != 0 {
		t.Error("queues not drained")
	}
}
