package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineRunsEventsInOrder(t *testing.T) {
	eng := NewEngine(1)
	var order []int
	eng.Schedule(3*time.Millisecond, func() { order = append(order, 3) })
	eng.Schedule(1*time.Millisecond, func() { order = append(order, 1) })
	eng.Schedule(2*time.Millisecond, func() { order = append(order, 2) })
	eng.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if eng.Now() != Time(3*time.Millisecond) {
		t.Errorf("clock = %v, want 3ms", eng.Now())
	}
}

func TestEngineFIFOAmongEqualTimestamps(t *testing.T) {
	eng := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		eng.Schedule(time.Millisecond, func() { order = append(order, i) })
	}
	eng.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want FIFO", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	eng := NewEngine(1)
	var fired []Time
	eng.Schedule(time.Millisecond, func() {
		fired = append(fired, eng.Now())
		eng.Schedule(time.Millisecond, func() {
			fired = append(fired, eng.Now())
		})
	})
	eng.Run()
	if len(fired) != 2 || fired[0] != Time(time.Millisecond) || fired[1] != Time(2*time.Millisecond) {
		t.Errorf("fired = %v", fired)
	}
}

func TestEngineCancel(t *testing.T) {
	eng := NewEngine(1)
	ran := false
	ev := eng.Schedule(time.Millisecond, func() { ran = true })
	ev.Cancel()
	eng.Run()
	if ran {
		t.Error("cancelled event ran")
	}
	if !ev.Cancelled() {
		t.Error("Cancelled() = false after Cancel")
	}
}

func TestEngineRunUntil(t *testing.T) {
	eng := NewEngine(1)
	var count int
	for i := 1; i <= 10; i++ {
		eng.Schedule(time.Duration(i)*time.Millisecond, func() { count++ })
	}
	eng.RunUntil(Time(5 * time.Millisecond))
	if count != 5 {
		t.Errorf("count = %d after RunUntil(5ms), want 5", count)
	}
	if eng.Now() != Time(5*time.Millisecond) {
		t.Errorf("clock = %v, want 5ms", eng.Now())
	}
	if eng.Pending() != 5 {
		t.Errorf("pending = %d, want 5", eng.Pending())
	}
	eng.Run()
	if count != 10 {
		t.Errorf("count = %d after Run, want 10", count)
	}
}

func TestEngineRunForAdvancesClockWithoutEvents(t *testing.T) {
	eng := NewEngine(1)
	eng.RunFor(time.Second)
	if eng.Now() != Time(time.Second) {
		t.Errorf("clock = %v, want 1s", eng.Now())
	}
}

func TestEngineStop(t *testing.T) {
	eng := NewEngine(1)
	var count int
	for i := 1; i <= 10; i++ {
		eng.Schedule(time.Duration(i)*time.Millisecond, func() {
			count++
			if count == 3 {
				eng.Stop()
			}
		})
	}
	eng.Run()
	if count != 3 {
		t.Errorf("count = %d, want 3 (stopped)", count)
	}
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	NewEngine(1).Schedule(-time.Millisecond, func() {})
}

func TestEngineScheduleInPastPanics(t *testing.T) {
	eng := NewEngine(1)
	eng.Schedule(time.Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		eng.ScheduleAt(0, func() {})
	})
	eng.Run()
}

func TestEngineNextEventAt(t *testing.T) {
	eng := NewEngine(1)
	if _, ok := eng.NextEventAt(); ok {
		t.Error("empty engine reported a next event")
	}
	ev := eng.Schedule(5*time.Millisecond, func() {})
	if at, ok := eng.NextEventAt(); !ok || at != Time(5*time.Millisecond) {
		t.Errorf("NextEventAt = %v, %v", at, ok)
	}
	ev.Cancel()
	if _, ok := eng.NextEventAt(); ok {
		t.Error("cancelled-only queue reported a next event")
	}
}

func TestTicker(t *testing.T) {
	eng := NewEngine(1)
	var ticks []Time
	tk := NewTicker(eng, 10*time.Millisecond, func() {
		ticks = append(ticks, eng.Now())
	})
	eng.RunUntil(Time(35 * time.Millisecond))
	tk.Stop()
	eng.Run()
	if len(ticks) != 3 {
		t.Fatalf("ticks = %v, want 3 firings", ticks)
	}
	for i, tt := range ticks {
		want := Time(time.Duration(i+1) * 10 * time.Millisecond)
		if tt != want {
			t.Errorf("tick %d at %v, want %v", i, tt, want)
		}
	}
}

func TestTickerStopFromHandler(t *testing.T) {
	eng := NewEngine(1)
	var tk *Ticker
	count := 0
	tk = NewTicker(eng, time.Millisecond, func() {
		count++
		if count == 2 {
			tk.Stop()
		}
	})
	eng.Run()
	if count != 2 {
		t.Errorf("count = %d, want 2", count)
	}
}

func TestTimeHelpers(t *testing.T) {
	tm := Time(1500 * time.Millisecond)
	if tm.Seconds() != 1.5 {
		t.Errorf("Seconds = %v", tm.Seconds())
	}
	if tm.Milliseconds() != 1500 {
		t.Errorf("Milliseconds = %v", tm.Milliseconds())
	}
	if tm.Add(500*time.Millisecond) != Time(2*time.Second) {
		t.Error("Add")
	}
	if tm.Sub(Time(time.Second)) != 500*time.Millisecond {
		t.Error("Sub")
	}
	if !Time(1).Before(Time(2)) || Time(2).Before(Time(1)) {
		t.Error("Before")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		nn := int(n%100) + 1
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(nn)
			if v < 0 || v >= nn {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %v, want ~1", mean)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(17)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestRNGForkIndependence(t *testing.T) {
	r := NewRNG(1)
	a := r.Fork("entity-a")
	// Same parent state + label yields the same child stream; different
	// labels diverge.
	r2 := NewRNG(1)
	b := r2.Fork("entity-b")
	diverged := false
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Error("forks with different labels produced identical streams")
	}
}

func TestEngineEventLimitGuard(t *testing.T) {
	eng := NewEngine(1)
	eng.Limit = 100
	var loop func()
	loop = func() { eng.Schedule(time.Nanosecond, loop) }
	eng.Schedule(time.Nanosecond, loop)
	defer func() {
		if recover() == nil {
			t.Error("runaway loop did not trip the event limit")
		}
	}()
	eng.Run()
}

func TestProcessedCount(t *testing.T) {
	eng := NewEngine(1)
	for i := 0; i < 5; i++ {
		eng.Schedule(time.Millisecond, func() {})
	}
	eng.Run()
	if eng.Processed() != 5 {
		t.Errorf("Processed = %d, want 5", eng.Processed())
	}
}
