// Package localization implements ACACIA's LTE-direct indoor localization:
// a per-environment linear regression that converts received power to
// distance, and trilateration solvers that turn landmark distances into a
// position estimate. The estimate feeds the AR back-end's geo-tagged
// database pruning; the paper measures ≈3 m mean error with 7 landmarks,
// which is plenty for subsection-granularity pruning.
package localization

import (
	"errors"
	"fmt"
	"math"

	"acacia/internal/geo"
)

// PathLossFit is the fitted rxPower->distance model:
//
//	rxPower(dBm) = Alpha + Beta * log10(distance)
//
// so distance = 10^((rx - Alpha) / Beta). Beta is negative (power falls
// with distance). The fit is the "one-time overhead" calibration the paper
// performs per environment.
type PathLossFit struct {
	Alpha float64
	Beta  float64
	// Residual is the RMS error of the fit in dB.
	Residual float64
}

// CalibrationSample is one (distance, rxPower) calibration observation.
type CalibrationSample struct {
	Distance   float64
	RxPowerDBm float64
}

// FitPathLoss least-squares fits the log-distance model to calibration
// samples. At least two samples at distinct distances are required.
func FitPathLoss(samples []CalibrationSample) (PathLossFit, error) {
	if len(samples) < 2 {
		return PathLossFit{}, errors.New("localization: need at least 2 calibration samples")
	}
	// Ordinary least squares of rx on x = log10(d).
	var sx, sy, sxx, sxy float64
	n := float64(len(samples))
	for _, s := range samples {
		if s.Distance <= 0 {
			return PathLossFit{}, fmt.Errorf("localization: non-positive calibration distance %v", s.Distance)
		}
		x := math.Log10(s.Distance)
		sx += x
		sy += s.RxPowerDBm
		sxx += x * x
		sxy += x * s.RxPowerDBm
	}
	den := n*sxx - sx*sx
	if math.Abs(den) < 1e-12 {
		return PathLossFit{}, errors.New("localization: calibration distances are degenerate")
	}
	beta := (n*sxy - sx*sy) / den
	alpha := (sy - beta*sx) / n
	var ss float64
	for _, s := range samples {
		pred := alpha + beta*math.Log10(s.Distance)
		d := s.RxPowerDBm - pred
		ss += d * d
	}
	return PathLossFit{Alpha: alpha, Beta: beta, Residual: math.Sqrt(ss / n)}, nil
}

// Distance converts a received power to a distance estimate in meters.
func (f PathLossFit) Distance(rxPowerDBm float64) float64 {
	if f.Beta == 0 {
		return 0
	}
	d := math.Pow(10, (rxPowerDBm-f.Alpha)/f.Beta)
	if d < 0.1 {
		d = 0.1
	}
	return d
}

// Measurement is one landmark observation used for position estimation.
type Measurement struct {
	Landmark geo.Point
	// Distance is the estimated range to the landmark in meters.
	Distance float64
}

// ErrInsufficient is returned when fewer than three usable measurements are
// available, or the landmark geometry is degenerate.
var ErrInsufficient = errors.New("localization: need >= 3 non-collinear landmarks")

// Trilaterate estimates a position from range measurements using
// Gauss-Newton nonlinear least squares on the range residuals, seeded with
// the linearized closed-form solution. This mirrors the nonlinear solver of
// the trilateration library the paper extends.
func Trilaterate(ms []Measurement) (geo.Point, error) {
	if len(ms) < 3 {
		return geo.Point{}, ErrInsufficient
	}
	p, err := TrilaterateLinear(ms)
	if err != nil {
		// Fall back to the measurement centroid as the seed.
		p = centroid(ms)
	}
	const (
		maxIter = 50
		tol     = 1e-6
	)
	for iter := 0; iter < maxIter; iter++ {
		// Jacobian J and residual r of f_i = |p - L_i| - d_i.
		var jtj00, jtj01, jtj11, jtr0, jtr1 float64
		for _, m := range ms {
			dx := p.X - m.Landmark.X
			dy := p.Y - m.Landmark.Y
			dist := math.Hypot(dx, dy)
			if dist < 1e-9 {
				dist = 1e-9
			}
			ji0, ji1 := dx/dist, dy/dist
			ri := dist - m.Distance
			jtj00 += ji0 * ji0
			jtj01 += ji0 * ji1
			jtj11 += ji1 * ji1
			jtr0 += ji0 * ri
			jtr1 += ji1 * ri
		}
		// Solve the 2x2 normal equations (with a tiny Levenberg damping for
		// near-singular geometry).
		const lambda = 1e-9
		jtj00 += lambda
		jtj11 += lambda
		det := jtj00*jtj11 - jtj01*jtj01
		if math.Abs(det) < 1e-12 {
			return geo.Point{}, ErrInsufficient
		}
		dxStep := (jtj11*jtr0 - jtj01*jtr1) / det
		dyStep := (jtj00*jtr1 - jtj01*jtr0) / det
		p.X -= dxStep
		p.Y -= dyStep
		if math.Hypot(dxStep, dyStep) < tol {
			break
		}
	}
	return p, nil
}

// TrilaterateWeighted is Gauss-Newton with inverse-distance weighting:
// under log-normal shadowing the range error is multiplicative (σ_d ∝ d),
// so near landmarks are more trustworthy than far ones. Each residual is
// weighted by 1/d_i.
func TrilaterateWeighted(ms []Measurement) (geo.Point, error) {
	if len(ms) < 3 {
		return geo.Point{}, ErrInsufficient
	}
	p, err := TrilaterateLinear(ms)
	if err != nil {
		p = centroid(ms)
	}
	const (
		maxIter = 50
		tol     = 1e-6
	)
	for iter := 0; iter < maxIter; iter++ {
		var jtj00, jtj01, jtj11, jtr0, jtr1 float64
		for _, m := range ms {
			dx := p.X - m.Landmark.X
			dy := p.Y - m.Landmark.Y
			dist := math.Hypot(dx, dy)
			if dist < 1e-9 {
				dist = 1e-9
			}
			w := 1.0
			if m.Distance > 0.1 {
				w = 1.0 / m.Distance
			}
			ji0, ji1 := dx/dist, dy/dist
			ri := dist - m.Distance
			jtj00 += w * ji0 * ji0
			jtj01 += w * ji0 * ji1
			jtj11 += w * ji1 * ji1
			jtr0 += w * ji0 * ri
			jtr1 += w * ji1 * ri
		}
		const lambda = 1e-9
		jtj00 += lambda
		jtj11 += lambda
		det := jtj00*jtj11 - jtj01*jtj01
		if math.Abs(det) < 1e-12 {
			return geo.Point{}, ErrInsufficient
		}
		dxStep := (jtj11*jtr0 - jtj01*jtr1) / det
		dyStep := (jtj00*jtr1 - jtj01*jtr0) / det
		p.X -= dxStep
		p.Y -= dyStep
		if math.Hypot(dxStep, dyStep) < tol {
			break
		}
	}
	return p, nil
}

// TrilaterateLinear solves the linearized system obtained by subtracting
// the first circle equation from the rest — the classic closed form. It is
// cheaper but less accurate under ranging noise; the ablation benchmark
// compares the two.
func TrilaterateLinear(ms []Measurement) (geo.Point, error) {
	if len(ms) < 3 {
		return geo.Point{}, ErrInsufficient
	}
	// Rows: 2(x_i - x_0) x + 2(y_i - y_0) y =
	//   d_0^2 - d_i^2 + x_i^2 - x_0^2 + y_i^2 - y_0^2
	l0 := ms[0]
	var a00, a01, a11, b0, b1 float64
	for _, m := range ms[1:] {
		ax := 2 * (m.Landmark.X - l0.Landmark.X)
		ay := 2 * (m.Landmark.Y - l0.Landmark.Y)
		bi := l0.Distance*l0.Distance - m.Distance*m.Distance +
			m.Landmark.X*m.Landmark.X - l0.Landmark.X*l0.Landmark.X +
			m.Landmark.Y*m.Landmark.Y - l0.Landmark.Y*l0.Landmark.Y
		// Accumulate normal equations A^T A x = A^T b.
		a00 += ax * ax
		a01 += ax * ay
		a11 += ay * ay
		b0 += ax * bi
		b1 += ay * bi
	}
	det := a00*a11 - a01*a01
	if math.Abs(det) < 1e-9 {
		return geo.Point{}, ErrInsufficient
	}
	return geo.Point{
		X: (a11*b0 - a01*b1) / det,
		Y: (a00*b1 - a01*b0) / det,
	}, nil
}

func centroid(ms []Measurement) geo.Point {
	var c geo.Point
	for _, m := range ms {
		c.X += m.Landmark.X
		c.Y += m.Landmark.Y
	}
	c.X /= float64(len(ms))
	c.Y /= float64(len(ms))
	return c
}

// Combinations returns all k-element index subsets of [0, n), used by the
// Fig. 9(b) evaluation of localization accuracy across landmark subsets.
func Combinations(n, k int) [][]int {
	if k < 0 || k > n {
		return nil
	}
	var out [][]int
	idx := make([]int, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			c := make([]int, k)
			copy(c, idx)
			out = append(out, c)
			return
		}
		for i := start; i < n; i++ {
			idx[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
	return out
}
