package localization

import (
	"math"
	"testing"
	"testing/quick"

	"acacia/internal/d2d"
	"acacia/internal/geo"
	"acacia/internal/sim"
)

func TestFitPathLossRecoversExactModel(t *testing.T) {
	// Samples generated from rx = -40 - 30*log10(d) must be recovered
	// exactly (alpha=-40, beta=-30).
	var samples []CalibrationSample
	for _, d := range []float64{1, 2, 5, 10, 20, 40} {
		samples = append(samples, CalibrationSample{Distance: d, RxPowerDBm: -40 - 30*math.Log10(d)})
	}
	fit, err := FitPathLoss(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha+40) > 1e-9 || math.Abs(fit.Beta+30) > 1e-9 {
		t.Errorf("fit = %+v, want alpha=-40 beta=-30", fit)
	}
	if fit.Residual > 1e-9 {
		t.Errorf("residual = %v on noiseless data", fit.Residual)
	}
	// Inverse model round-trips.
	for _, d := range []float64{1.5, 7, 33} {
		rx := -40 - 30*math.Log10(d)
		if got := fit.Distance(rx); math.Abs(got-d) > 1e-6 {
			t.Errorf("Distance(%v) = %v, want %v", rx, got, d)
		}
	}
}

func TestFitPathLossMatchesD2DModel(t *testing.T) {
	// Calibrating against the d2d channel recovers its parameters:
	// alpha = Tx - RefLoss, beta = -10*exponent.
	m := d2d.DefaultPathLoss
	var samples []CalibrationSample
	for d := 1.0; d <= 50; d += 2.5 {
		samples = append(samples, CalibrationSample{Distance: d, RxPowerDBm: m.MeanRxPower(d)})
	}
	fit, err := FitPathLoss(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-(m.TxPowerDBm-m.RefLossDB)) > 1e-6 {
		t.Errorf("alpha = %v, want %v", fit.Alpha, m.TxPowerDBm-m.RefLossDB)
	}
	if math.Abs(fit.Beta-(-10*m.Exponent)) > 1e-6 {
		t.Errorf("beta = %v, want %v", fit.Beta, -10*m.Exponent)
	}
}

func TestFitPathLossErrors(t *testing.T) {
	if _, err := FitPathLoss(nil); err == nil {
		t.Error("empty calibration accepted")
	}
	if _, err := FitPathLoss([]CalibrationSample{{Distance: 5, RxPowerDBm: -60}}); err == nil {
		t.Error("single sample accepted")
	}
	same := []CalibrationSample{{Distance: 5, RxPowerDBm: -60}, {Distance: 5, RxPowerDBm: -61}}
	if _, err := FitPathLoss(same); err == nil {
		t.Error("degenerate distances accepted")
	}
	bad := []CalibrationSample{{Distance: 0, RxPowerDBm: -60}, {Distance: 5, RxPowerDBm: -61}}
	if _, err := FitPathLoss(bad); err == nil {
		t.Error("non-positive distance accepted")
	}
}

func exactMeasurements(truth geo.Point, landmarks []geo.Point) []Measurement {
	ms := make([]Measurement, len(landmarks))
	for i, l := range landmarks {
		ms[i] = Measurement{Landmark: l, Distance: truth.Dist(l)}
	}
	return ms
}

var testLandmarks = []geo.Point{{X: 0, Y: 0}, {X: 40, Y: 0}, {X: 20, Y: 30}, {X: 5, Y: 25}}

func TestTrilaterateExact(t *testing.T) {
	truth := geo.Point{X: 13, Y: 11}
	for k := 3; k <= len(testLandmarks); k++ {
		got, err := Trilaterate(exactMeasurements(truth, testLandmarks[:k]))
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if got.Dist(truth) > 1e-6 {
			t.Errorf("k=%d: got %v, want %v", k, got, truth)
		}
	}
}

func TestTrilaterateLinearExact(t *testing.T) {
	truth := geo.Point{X: 28, Y: 7}
	got, err := TrilaterateLinear(exactMeasurements(truth, testLandmarks[:3]))
	if err != nil {
		t.Fatal(err)
	}
	if got.Dist(truth) > 1e-6 {
		t.Errorf("got %v, want %v", got, truth)
	}
}

func TestTrilateratePropertyExactRecovery(t *testing.T) {
	f := func(xr, yr uint16) bool {
		truth := geo.Point{X: float64(xr%400) / 10, Y: float64(yr%300) / 10}
		got, err := Trilaterate(exactMeasurements(truth, testLandmarks))
		if err != nil {
			return false
		}
		return got.Dist(truth) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTrilaterateNoisyBeatsLinear(t *testing.T) {
	// Under multiplicative ranging noise the Gauss-Newton solver should be
	// at least as accurate as the linearized solution on average — the
	// ablation the design doc calls out.
	rng := sim.NewRNG(99)
	truth := geo.Point{X: 17, Y: 13}
	var gnErr, linErr float64
	const trials = 300
	for i := 0; i < trials; i++ {
		ms := exactMeasurements(truth, testLandmarks)
		for j := range ms {
			ms[j].Distance *= 1 + 0.15*rng.NormFloat64()
			if ms[j].Distance < 0.1 {
				ms[j].Distance = 0.1
			}
		}
		gn, err := Trilaterate(ms)
		if err != nil {
			t.Fatal(err)
		}
		lin, err := TrilaterateLinear(ms)
		if err != nil {
			t.Fatal(err)
		}
		gnErr += gn.Dist(truth)
		linErr += lin.Dist(truth)
	}
	gnErr /= trials
	linErr /= trials
	if gnErr > linErr*1.05 {
		t.Errorf("Gauss-Newton mean error %.3f m worse than linear %.3f m", gnErr, linErr)
	}
	// With 15% ranging noise over ~20 m ranges, errors land in the
	// low-meters regime the paper reports.
	if gnErr > 5 {
		t.Errorf("Gauss-Newton error %.2f m implausibly large", gnErr)
	}
}

func TestTrilaterateErrors(t *testing.T) {
	if _, err := Trilaterate(nil); err == nil {
		t.Error("no measurements accepted")
	}
	two := exactMeasurements(geo.Point{X: 1, Y: 1}, testLandmarks[:2])
	if _, err := Trilaterate(two); err == nil {
		t.Error("two measurements accepted")
	}
}

func TestTrilaterateCollinearLandmarks(t *testing.T) {
	// Collinear landmarks: linear solver must reject; Gauss-Newton may
	// still converge to one of the two mirror solutions, so we only require
	// it not to blow up.
	col := []geo.Point{{X: 0, Y: 5}, {X: 20, Y: 5}, {X: 40, Y: 5}}
	truth := geo.Point{X: 10, Y: 5} // on the line: unambiguous
	if _, err := TrilaterateLinear(exactMeasurements(truth, col)); err == nil {
		t.Error("linear solver accepted collinear geometry")
	}
	got, err := Trilaterate(exactMeasurements(truth, col))
	if err != nil {
		t.Fatalf("Gauss-Newton failed on collinear landmarks: %v", err)
	}
	if got.Dist(truth) > 0.5 {
		t.Errorf("collinear on-line estimate %v, want %v", got, truth)
	}
}

func TestCombinations(t *testing.T) {
	cs := Combinations(5, 3)
	if len(cs) != 10 {
		t.Fatalf("C(5,3) = %d, want 10", len(cs))
	}
	seen := map[[3]int]bool{}
	for _, c := range cs {
		if len(c) != 3 {
			t.Fatalf("combination %v wrong size", c)
		}
		if !(c[0] < c[1] && c[1] < c[2]) {
			t.Fatalf("combination %v not ascending", c)
		}
		key := [3]int{c[0], c[1], c[2]}
		if seen[key] {
			t.Fatalf("duplicate combination %v", c)
		}
		seen[key] = true
	}
	if got := Combinations(7, 7); len(got) != 1 {
		t.Errorf("C(7,7) = %d", len(got))
	}
	if got := Combinations(3, 0); len(got) != 1 {
		t.Errorf("C(3,0) = %d, want 1 (empty set)", len(got))
	}
	if Combinations(3, 4) != nil {
		t.Error("C(3,4) should be nil")
	}
}

func TestEndToEndLocalizationWithChannelModel(t *testing.T) {
	// Full pipeline: d2d channel generates rxPower with shadowing at the
	// retail checkpoints; regression + trilateration localize; mean error
	// must land in the paper's ~3 m regime (allowing up to 5 m).
	floor := geo.RetailFloor()
	channel := d2d.DefaultPathLoss
	rng := sim.NewRNG(2016)

	// Calibration: samples at known distances (the one-time overhead).
	var cal []CalibrationSample
	for d := 1.0; d <= 40; d += 1.5 {
		cal = append(cal, CalibrationSample{Distance: d, RxPowerDBm: channel.RxPower(d, rng)})
	}
	fit, err := FitPathLoss(cal)
	if err != nil {
		t.Fatal(err)
	}

	var totalErr float64
	for _, cp := range floor.Checkpoints {
		var ms []Measurement
		for _, lm := range floor.Landmarks {
			rx := channel.RxPower(cp.Pos.Dist(lm.Pos), rng)
			if rx < d2d.SensitivityDBm {
				continue
			}
			ms = append(ms, Measurement{Landmark: lm.Pos, Distance: fit.Distance(rx)})
		}
		if len(ms) < 3 {
			t.Fatalf("checkpoint %s hears only %d landmarks", cp.Name, len(ms))
		}
		est, err := Trilaterate(ms)
		if err != nil {
			t.Fatalf("checkpoint %s: %v", cp.Name, err)
		}
		totalErr += est.Dist(cp.Pos)
	}
	mean := totalErr / float64(len(floor.Checkpoints))
	if mean > 5 {
		t.Errorf("mean localization error %.2f m, want ≲ 5 (paper: ~3)", mean)
	}
	if mean < 0.1 {
		t.Errorf("mean error %.2f m implausibly small for a shadowed channel", mean)
	}
}

func TestTrilaterateWeightedExact(t *testing.T) {
	truth := geo.Point{X: 13, Y: 11}
	got, err := TrilaterateWeighted(exactMeasurements(truth, testLandmarks))
	if err != nil {
		t.Fatal(err)
	}
	if got.Dist(truth) > 1e-5 {
		t.Errorf("got %v, want %v", got, truth)
	}
}

func TestTrilaterateWeightedBeatsUnweightedUnderMultiplicativeNoise(t *testing.T) {
	// With σ_d ∝ d (the shadowing regime), inverse-distance weighting
	// should be at least as accurate on average.
	rng := sim.NewRNG(123)
	truth := geo.Point{X: 17, Y: 13}
	var wErr, uErr float64
	const trials = 400
	for i := 0; i < trials; i++ {
		ms := exactMeasurements(truth, testLandmarks)
		for j := range ms {
			ms[j].Distance *= 1 + 0.2*rng.NormFloat64()
			if ms[j].Distance < 0.1 {
				ms[j].Distance = 0.1
			}
		}
		w, err := TrilaterateWeighted(ms)
		if err != nil {
			t.Fatal(err)
		}
		u, err := Trilaterate(ms)
		if err != nil {
			t.Fatal(err)
		}
		wErr += w.Dist(truth)
		uErr += u.Dist(truth)
	}
	if wErr > uErr*1.02 {
		t.Errorf("weighted mean error %.3f worse than unweighted %.3f", wErr/trials, uErr/trials)
	}
}

func TestTrilaterateWeightedErrors(t *testing.T) {
	if _, err := TrilaterateWeighted(nil); err == nil {
		t.Error("no measurements accepted")
	}
}
