package epc

import (
	"fmt"
	"sort"

	"acacia/internal/netsim"
	"acacia/internal/pkt"
)

// UE is a user device: a netsim host behind a radio link, with the modem's
// uplink TFT classifier. Applications use the embedded Host; every outgoing
// packet is classified against the installed uplink TFTs so it departs with
// the right bearer priority (the eNB performs the corresponding S1 mapping).
type UE struct {
	Host *netsim.Host
	node *netsim.Node
	IMSI string
	enb  *ENB

	// servingPort is the radio port toward the serving eNB. A UE may have
	// radio links to several eNBs (neighbour cells); handover switches
	// this.
	servingPort int

	attached bool
	sess     *Session

	// Modem UL TFT state: EBI -> (QCI, TFT).
	tfts map[uint8]modemTFT
}

type modemTFT struct {
	qci pkt.QCI
	tft *pkt.TFT
}

// NewUE wraps node as a UE with the given IMSI. The node's address is the
// UE's (statically bound) IP, confirmed by the PGW at attach.
func NewUE(node *netsim.Node, imsi string) *UE {
	ue := &UE{
		Host: netsim.NewHost(node),
		node: node,
		IMSI: imsi,
		tfts: make(map[uint8]modemTFT),
	}
	ue.Host.ClassifyEgress = ue.classify
	return ue
}

// Addr returns the UE's IP address.
func (u *UE) Addr() pkt.Addr { return u.node.Addr() }

// Attached reports whether the attach procedure has completed.
func (u *UE) Attached() bool { return u.attached }

// Session returns the UE's EPC session (nil before attach completes).
func (u *UE) Session() *Session { return u.sess }

// Attach runs the initial attach through the connected eNB, establishing
// the default bearer on the named user planes. done (may be nil) fires when
// the attach completes or fails.
func (u *UE) Attach(sgwPlane, pgwPlane string, done func(error)) {
	if u.enb == nil {
		if done != nil {
			done(fmt.Errorf("epc: UE %s has no radio connection", u.IMSI))
		}
		return
	}
	if u.attached {
		if done != nil {
			done(fmt.Errorf("epc: UE %s already attached", u.IMSI))
		}
		return
	}
	u.enb.sendInitialAttach(u, sgwPlane, pgwPlane, done)
}

// completeAttach is called by the MME when the default bearer is live.
func (u *UE) completeAttach(sess *Session) {
	u.attached = true
	u.sess = sess
}

// Detach runs the UE-initiated detach: the NAS detach request rides an
// uplink NAS transport, then the MME tears the session down. done (may be
// nil) fires when the UE is fully detached.
func (u *UE) Detach(done func()) error {
	if !u.attached || u.sess == nil {
		return fmt.Errorf("epc: UE %s not attached", u.IMSI)
	}
	sess := u.sess
	core := u.enb.core
	nas := core.encodeNAS(&pkt.NASMsg{Type: pkt.NASDetachRequest, IMSI: u.IMSI})
	msg := &pkt.S1APMsg{
		Procedure: pkt.S1APUplinkNASTransport,
		ENBUEID:   sess.ENBUEID, MMEUEID: sess.MMEUEID,
		NAS: nas,
	}
	pr := newProc(func(err error) {
		if err != nil {
			// The detach signalling failed mid-flight; force-release the
			// session locally so the UE does not stay half-attached.
			core.forceDetach(sess)
		}
		if done != nil {
			done()
		}
	})
	core.sendS1AP(pr, u.enb.ep, core.mmeEP, msg, func() { core.MME.onDetach(pr, sess) })
	return nil
}

// completeDetach clears the UE-side session state.
func (u *UE) completeDetach() {
	u.attached = false
	u.sess = nil
	u.tfts = make(map[uint8]modemTFT)
}

// installTFT is the modem-side effect of the RRC Connection Reconfiguration
// carrying a dedicated bearer's TFT.
func (u *UE) installTFT(ebi uint8, qci pkt.QCI, tft *pkt.TFT) {
	u.tfts[ebi] = modemTFT{qci: qci, tft: tft}
}

// removeTFT drops a dedicated bearer's classifier.
func (u *UE) removeTFT(ebi uint8) { delete(u.tfts, ebi) }

// installTFTFromNAS decodes an Activate Dedicated EPS Bearer Context
// Request from its wire form and installs the carried TFT and QoS — the
// modem consumes exactly the bytes the network sent.
func (u *UE) installTFTFromNAS(nas []byte) error {
	var m pkt.NASMsg
	if _, err := m.Decode(nas); err != nil {
		return err
	}
	if m.Type != pkt.NASActivateDedicatedBearerRequest {
		return fmt.Errorf("epc: NAS type 0x%02x is not a dedicated bearer activation", m.Type)
	}
	if m.TFT == nil || m.QoS == nil {
		return fmt.Errorf("epc: bearer activation without TFT/QoS")
	}
	u.installTFT(m.EBI, m.QoS.QCI, m.TFT)
	return nil
}

// classify is the Host egress hook: stamp the packet's priority from the
// matching bearer's QCI (UL TFT evaluation in the modem) and send it out
// the radio port.
func (u *UE) classify(p *netsim.Packet) *netsim.Port {
	qci := pkt.QCIDefault
	ebis := make([]int, 0, len(u.tfts))
	for ebi := range u.tfts {
		ebis = append(ebis, int(ebi))
	}
	sort.Ints(ebis)
	bestPrec := 256
	for _, ebi := range ebis {
		mt := u.tfts[uint8(ebi)]
		if mt.tft == nil {
			continue
		}
		if mt.tft.MatchUplink(p.Flow, p.TOS) {
			if prec := tftPrecedence(mt.tft); prec < bestPrec {
				bestPrec = prec
				qci = mt.qci
			}
		}
	}
	p.Priority = qci.Priority()
	if u.servingPort >= len(u.node.Ports()) {
		return nil
	}
	return u.node.Port(u.servingPort)
}

// ServingENB reports the eNB currently serving the UE.
func (u *UE) ServingENB() *ENB { return u.enb }

// switchRadio retunes the UE to the target eNB's radio link (the RRC
// reconfiguration with mobility control of an S1 handover).
func (u *UE) switchRadio(target *ENB, portID int) {
	u.enb = target
	u.servingPort = portID
}

// BearerFor reports which EBI an uplink five-tuple would ride, mirroring
// the modem's classification (for tests and observability).
func (u *UE) BearerFor(flow pkt.FiveTuple, tos uint8) uint8 {
	best := uint8(EBIDefault)
	bestPrec := 256
	for ebi, mt := range u.tfts {
		if mt.tft != nil && mt.tft.MatchUplink(flow, tos) {
			if prec := tftPrecedence(mt.tft); prec < bestPrec {
				bestPrec = prec
				best = ebi
			}
		}
	}
	return best
}
