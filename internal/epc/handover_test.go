package epc

import (
	"testing"
	"time"

	"acacia/internal/netsim"
	"acacia/internal/pkt"
)

// withSecondENB extends the testbed with a second eNodeB on the same
// backhaul and a radio link from the UE to it.
func withSecondENB(t *testing.T, tb *testbed) *ENB {
	t.Helper()
	enb2N := tb.nw.AddNode("enb2", pkt.AddrFrom(10, 1, 0, 2))
	rtrN := tb.nw.Node("backhaul")
	tb.nw.ConnectSymmetric(enb2N, rtrN, netsim.LinkConfig{BitsPerSecond: 1e9, Propagation: backhaulDelay})
	// The router learned its earlier ports in buildTestbed; add this one.
	rtr := routerOf(tb)
	rtr.AddHostRoute(enb2N.Addr(), rtrN.Port(len(rtrN.Ports())-1))
	enb2 := NewENB(tb.core, enb2N)
	enb2.ConnectUE(tb.ue, netsim.LinkConfig{BitsPerSecond: 100e6, Propagation: radioDelay})
	return enb2
}

// routerOf rebuilds a router view over the backhaul node. The node's
// handler is already the router's forward function; we only need AddRoute,
// so keep the router from buildTestbed by stashing it — simplest is to
// re-create it, which resets routes, so instead buildTestbed's router is
// reconstructed here with all known routes.
func routerOf(tb *testbed) *netsim.Router {
	rtrN := tb.nw.Node("backhaul")
	rtr := netsim.NewRouter(rtrN)
	rtr.AddHostRoute(tb.nw.Node("enb").Addr(), rtrN.Port(0))
	rtr.AddHostRoute(tb.nw.Node("core-sgw-u").Addr(), rtrN.Port(1))
	rtr.AddHostRoute(tb.nw.Node("edge-sgw-u").Addr(), rtrN.Port(2))
	return rtr
}

func TestHandoverMovesSession(t *testing.T) {
	tb := buildTestbed(t, time.Hour)
	enb2 := withSecondENB(t, tb)
	tb.attach(t)
	tb.dedicate(t)
	sess := tb.core.Session(tb.ue.IMSI)
	if sess.ENB != tb.enb {
		t.Fatalf("serving eNB = %s", sess.ENB.Name())
	}

	var hoErr error
	hoDone := false
	tb.core.MME.Handover(sess, enb2, func(err error) { hoErr, hoDone = err, true })
	tb.eng.RunFor(time.Second)
	if !hoDone {
		t.Fatal("handover did not complete")
	}
	if hoErr != nil {
		t.Fatalf("handover: %v", hoErr)
	}
	if sess.ENB != enb2 {
		t.Errorf("serving eNB after handover = %s", sess.ENB.Name())
	}
	if tb.core.MME.Handovers != 1 {
		t.Errorf("handover count = %d", tb.core.MME.Handovers)
	}
	if sess.UE.ServingENB() != enb2 {
		t.Error("UE radio not retuned")
	}
	// Bearers survive with fresh eNB-side TEIDs.
	if len(sess.DedicatedBearers()) != 1 {
		t.Errorf("dedicated bearers after handover = %d", len(sess.DedicatedBearers()))
	}
}

func TestHandoverDataContinuity(t *testing.T) {
	tb := buildTestbed(t, time.Hour)
	enb2 := withSecondENB(t, tb)
	tb.attach(t)
	tb.dedicate(t)
	sess := tb.core.Session(tb.ue.IMSI)

	// Continuous CI traffic across the handover.
	pg := netsim.NewPinger(tb.ue.Host, tb.ciHost.Node.Addr(), 64, 5100)
	pg.Start(20 * time.Millisecond)
	tb.eng.RunFor(time.Second)
	lostBefore := pg.Lost()

	tb.core.MME.Handover(sess, enb2, nil)
	tb.eng.RunFor(2 * time.Second)
	pg.Stop()
	tb.eng.RunFor(500 * time.Millisecond)

	if pg.Received < 100 {
		t.Fatalf("replies = %d", pg.Received)
	}
	// The radio interruption plus the pre-path-switch downlink window cost
	// a bounded handful of probes at 20 ms spacing.
	lostDuring := pg.Lost() - lostBefore
	if lostDuring > 10 {
		t.Errorf("lost %d probes across handover, want a small bounded gap", lostDuring)
	}
	// Traffic now flows via eNB2.
	before := enb2.ULPackets
	pg2 := netsim.NewPinger(tb.ue.Host, tb.ciHost.Node.Addr(), 64, 5101)
	pg2.SendOne()
	tb.eng.RunFor(200 * time.Millisecond)
	if pg2.Received != 1 {
		t.Error("post-handover ping lost")
	}
	if enb2.ULPackets == before {
		t.Error("post-handover uplink did not traverse the target eNB")
	}
}

func TestHandoverMessageAccounting(t *testing.T) {
	tb := buildTestbed(t, time.Hour)
	enb2 := withSecondENB(t, tb)
	tb.attach(t)
	sess := tb.core.Session(tb.ue.IMSI)
	before := tb.core.Acct.Snapshot()
	done := false
	tb.core.MME.Handover(sess, enb2, func(error) { done = true })
	tb.eng.RunFor(time.Second)
	if !done {
		t.Fatal("handover incomplete")
	}
	d := tb.core.Acct.Diff(before)
	// Required, Request, RequestAck, Command, Notify.
	if d.Msgs[ProtoS1AP] != 5 {
		t.Errorf("handover S1AP messages = %d, want 5", d.Msgs[ProtoS1AP])
	}
	// Modify Bearer Request/Response for the path switch.
	if d.Msgs[ProtoGTPv2] != 2 {
		t.Errorf("handover GTPv2 messages = %d, want 2", d.Msgs[ProtoGTPv2])
	}
}

func TestHandoverGuards(t *testing.T) {
	tb := buildTestbed(t, time.Hour)
	enb2 := withSecondENB(t, tb)
	tb.attach(t)
	sess := tb.core.Session(tb.ue.IMSI)

	// Same source and target.
	var err1 error
	tb.core.MME.Handover(sess, tb.enb, func(err error) { err1 = err })
	tb.eng.RunFor(100 * time.Millisecond)
	if err1 == nil {
		t.Error("handover to the serving eNB accepted")
	}

	// UE without a radio link to the target.
	ue2N := tb.nw.AddNode("ue-noradio", pkt.AddrFrom(172, 16, 0, 9))
	ue2 := NewUE(ue2N, "001010000000003")
	tb.core.HSS.Provision(Subscriber{IMSI: ue2.IMSI})
	tb.enb.ConnectUE(ue2, netsim.LinkConfig{Propagation: radioDelay})
	var aerr error
	ue2.Attach("core-sgw", "core-pgw", func(err error) { aerr = err })
	tb.eng.RunFor(2 * time.Second)
	if aerr != nil {
		t.Fatal(aerr)
	}
	var err2 error
	tb.core.MME.Handover(tb.core.Session(ue2.IMSI), enb2, func(err error) { err2 = err })
	tb.eng.RunFor(100 * time.Millisecond)
	if err2 == nil {
		t.Error("handover without target radio link accepted")
	}

	// Idle session.
	tb2 := buildTestbed(t, 3*time.Second)
	enb2b := withSecondENB(t, tb2)
	tb2.attach(t)
	tb2.eng.RunFor(6 * time.Second) // idle out
	sess2 := tb2.core.Session(tb2.ue.IMSI)
	if sess2.State != StateIdle {
		t.Fatalf("state = %v", sess2.State)
	}
	var err3 error
	fired := false
	tb2.core.MME.Handover(sess2, enb2b, func(err error) { err3, fired = err, true })
	tb2.eng.RunFor(100 * time.Millisecond)
	if !fired || err3 == nil {
		t.Error("handover of idle session accepted")
	}
}

func TestHandoverThenIdleAndPromotionOnTarget(t *testing.T) {
	// After a handover, the inactivity/promotion machinery must work at
	// the target eNB.
	tb := buildTestbed(t, 3*time.Second)
	enb2 := withSecondENB(t, tb)
	tb.attach(t)
	sess := tb.core.Session(tb.ue.IMSI)
	tb.core.MME.Handover(sess, enb2, nil)
	tb.eng.RunFor(time.Second)
	if sess.ENB != enb2 {
		t.Fatal("handover failed")
	}
	tb.eng.RunFor(6 * time.Second)
	if sess.State != StateIdle {
		t.Fatalf("state = %v, want idle at target", sess.State)
	}
	pg := netsim.NewPinger(tb.ue.Host, tb.inetHost.Node.Addr(), 64, 5102)
	pg.SendOne()
	tb.eng.RunFor(2 * time.Second)
	if sess.State != StateConnected {
		t.Fatalf("state = %v after uplink at target", sess.State)
	}
	if pg.Received != 1 {
		t.Error("promotion at target did not deliver the buffered ping")
	}
}
