package epc

import (
	"fmt"

	"acacia/internal/pkt"
)

// Flyweight intern tables. At metro scale the overwhelming majority of
// per-UE configuration is identical across UEs: every subscriber of a
// service shares one QoS profile, every dedicated bearer toward the same CI
// server shares one TFT, every session on an APN shares the same default
// user planes. Storing those once and handing sessions/bearers immutable
// handles shrinks per-UE state to its hot mutable fields and makes profile
// comparisons pointer comparisons.
//
// Interned values are immutable by contract: callers must never write
// through the returned pointers. Mutation would alias every session sharing
// the profile.

// PlanePair is the interned handle to a bearer's serving user planes: the
// resolved SGW-U/PGW-U pair, so the per-message string-keyed map lookups of
// the pre-flyweight layout happen once at intern time.
type PlanePair struct {
	SGWName, PGWName string
	SGW, PGW         *UserPlane
}

// APNProfile is the interned per-APN configuration a session attaches
// against: the access point name and the default-bearer plane pair.
type APNProfile struct {
	Name   string
	Planes *PlanePair
}

type tftKey struct {
	ciServer   pkt.Addr
	precedence uint8
}

type planeKey struct {
	sgw, pgw string
}

type apnKey struct {
	name     string
	sgw, pgw string
}

// internQoS returns the canonical instance of a QoS profile.
func (c *Core) internQoS(q pkt.BearerQoS) *pkt.BearerQoS {
	if p := c.qosIntern[q]; p != nil {
		return p
	}
	p := new(pkt.BearerQoS)
	*p = q
	c.qosIntern[q] = p
	return p
}

// internTFT returns the canonical dedicated-bearer TFT toward a CI server
// at the given filter precedence. All UEs bound to the same edge site share
// one template.
func (c *Core) internTFT(ciServer pkt.Addr, precedence uint8) *pkt.TFT {
	k := tftKey{ciServer: ciServer, precedence: precedence}
	if t := c.tftIntern[k]; t != nil {
		return t
	}
	t := new(pkt.TFT)
	*t = pkt.DedicatedBearerTFT(ciServer)
	t.Filters[0].Precedence = precedence
	c.tftIntern[k] = t
	return t
}

// internPlanes resolves and interns a (SGW-U, PGW-U) plane pair by name.
// It fails when either plane is unknown — the resolution error the
// pre-flyweight code surfaced per message now surfaces once, up front.
func (c *Core) internPlanes(sgwPlane, pgwPlane string) (*PlanePair, error) {
	k := planeKey{sgw: sgwPlane, pgw: pgwPlane}
	if p := c.planeIntern[k]; p != nil {
		return p, nil
	}
	sgw := c.SGWC.planes[sgwPlane]
	pgw := c.PGWC.planes[pgwPlane]
	if sgw == nil || pgw == nil {
		return nil, fmt.Errorf("epc: unknown user planes %q/%q", sgwPlane, pgwPlane)
	}
	p := &PlanePair{SGWName: sgwPlane, PGWName: pgwPlane, SGW: sgw, PGW: pgw}
	c.planeIntern[k] = p
	return p, nil
}

// internAPN returns the canonical APN profile for (name, plane pair).
func (c *Core) internAPN(name string, planes *PlanePair) *APNProfile {
	k := apnKey{name: name, sgw: planes.SGWName, pgw: planes.PGWName}
	if a := c.apnIntern[k]; a != nil {
		return a
	}
	a := &APNProfile{Name: name, Planes: planes}
	c.apnIntern[k] = a
	return a
}

// defaultAPN is the access point name of the always-on default bearer.
const defaultAPN = "internet"
