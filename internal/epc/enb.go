package epc

import (
	"time"

	"acacia/internal/ctl"
	"acacia/internal/netsim"
	"acacia/internal/pkt"
	"acacia/internal/sdn"
	"acacia/internal/sim"
)

// ENB is an eNodeB: the radio-side anchor. Its node's port 0 is the S1
// backhaul; each connected UE gets its own radio port. The eNB performs the
// S1 GTP-U encapsulation for uplink (choosing the bearer by re-evaluating
// the UE's TFTs, exactly as the radio-bearer mapping does), decapsulates
// downlink, tracks per-UE activity for the LTE inactivity timer, and
// buffers uplink packets across idle-to-connected promotions.
type ENB struct {
	core *Core
	node *netsim.Node

	// ep is the eNB's control endpoint; s1Link is its S1-MME link to the
	// MME. The eNB node carries both planes, so the packet handler diverts
	// control frames to the endpoint before data-plane dispatch.
	ep     *ctl.Endpoint
	s1Link *netsim.Link

	// RACHDelay models the radio-side latency of paging response and
	// service-request ramp-up (RACH + RRC connection establishment).
	RACHDelay time.Duration

	byUEIP   map[pkt.Addr]*ueCtx
	byRadio  map[int]*ueCtx // radio port id -> ctx
	byDLTEID map[uint32]dlKey
	teids    teidAllocator
	ticker   *sim.Ticker

	// Stats.
	ULPackets, DLPackets uint64
	BufferedUL           uint64
	DroppedUL            uint64
}

type dlKey struct {
	ctx *ueCtx
	ebi uint8
}

type ueCtx struct {
	ue        *UE
	sess      *Session
	radioPort int // eNB-side port of the radio link
	uePort    int // UE-side port of the radio link
	connected bool
	lastSeen  sim.Time
	ulBuffer  []*netsim.Packet
}

// maxULBuffer bounds uplink buffering during promotion.
const maxULBuffer = 64

// NewENB wraps node as an eNodeB. Port 0 must already be connected to the
// backhaul before traffic flows.
func NewENB(core *Core, node *netsim.Node) *ENB {
	e := &ENB{
		core:      core,
		node:      node,
		RACHDelay: 50 * time.Millisecond,
		byUEIP:    make(map[pkt.Addr]*ueCtx),
		byRadio:   make(map[int]*ueCtx),
		byDLTEID:  make(map[uint32]dlKey),
	}
	node.SetHandler(e.handle)
	e.ep = core.Txn.Endpoint(node, false)
	e.s1Link = ctl.Connect(e.ep, core.mmeEP,
		netsim.LinkConfig{BitsPerSecond: ctlLinkBps, Propagation: core.cfg.S1APDelay})
	e.ticker = sim.NewTicker(core.Eng, 500*time.Millisecond, e.checkIdle)
	return e
}

// S1Link returns the eNB's S1-MME control link (fault-injection handle).
func (e *ENB) S1Link() *netsim.Link { return e.s1Link }

// Addr returns the eNB's S1-U endpoint address.
func (e *ENB) Addr() pkt.Addr { return e.node.Addr() }

// Node returns the underlying network node.
func (e *ENB) Node() *netsim.Node { return e.node }

// ConnectUE attaches a UE's radio link to this eNB. The returned link is
// the radio bearer path; radioCfg applies in both directions with
// QCI-priority scheduling enabled downlink (the radio scheduler). A UE may
// be connected to several eNBs (neighbour cells); the first connection
// becomes its serving cell, later ones are handover candidates.
func (e *ENB) ConnectUE(ue *UE, radioCfg netsim.LinkConfig) *netsim.Link {
	radioCfg.Prioritized = true
	link := e.core.cfg.Net.ConnectSymmetric(ue.node, e.node, radioCfg)
	ctx := &ueCtx{ue: ue, radioPort: link.B.ID, uePort: link.A.ID}
	e.byUEIP[ue.Addr()] = ctx
	e.byRadio[link.B.ID] = ctx
	if ue.enb == nil {
		ue.enb = e
		ue.servingPort = link.A.ID
	}
	return link
}

// Name reports the eNB's node name (used by the MRS for edge-site
// selection).
func (e *ENB) Name() string { return e.node.Name() }

// handle is the netsim packet handler.
func (e *ENB) handle(ingress *netsim.Port, p *netsim.Packet) {
	if ingress == nil {
		return
	}
	// S1-MME control frames arrive on the eNB's control port; everything
	// else is data plane.
	if f := ctl.FrameOf(p); f != nil {
		e.ep.Receive(ingress, p, f)
		return
	}
	if ingress.ID == 0 {
		// The eNB is the SGW's GTP-U path-management peer on S1-U: answer
		// echo supervision before downlink decapsulation would drop it.
		if sdn.AnswerGTPEcho(e.node.Addr(), ingress, p) {
			return
		}
		e.handleDownlink(p)
		return
	}
	ctx := e.byRadio[ingress.ID]
	if ctx == nil {
		return
	}
	e.handleUplink(ctx, p)
}

func (e *ENB) handleUplink(ctx *ueCtx, p *netsim.Packet) {
	ctx.lastSeen = e.core.Eng.Now()
	if !ctx.connected {
		// Idle UE with data: buffer and promote.
		if len(ctx.ulBuffer) < maxULBuffer {
			ctx.ulBuffer = append(ctx.ulBuffer, p)
			e.BufferedUL++
		} else {
			e.DroppedUL++
		}
		if ctx.sess != nil && ctx.sess.State == StateIdle {
			e.sendServiceRequest(ctx.sess)
		}
		return
	}
	e.forwardUplink(ctx, p)
}

func (e *ENB) forwardUplink(ctx *ueCtx, p *netsim.Packet) {
	b := e.classifyUplink(ctx.sess, p)
	if b == nil {
		e.DroppedUL++
		return
	}
	sgw := b.Planes.SGW
	p.Priority = b.QoS.QCI.Priority()
	p.Encapsulate(e.Addr(), sgw.Addr(), b.S1UL)
	e.ULPackets++
	e.node.Port(0).Send(p)
}

// classifyUplink picks the bearer for an uplink packet: dedicated-bearer
// TFTs in precedence order, falling back to the default bearer.
func (e *ENB) classifyUplink(sess *Session, p *netsim.Packet) *Bearer {
	if sess == nil {
		return nil
	}
	dedicated := sess.DedicatedBearers()
	// Insertion sort by TFT precedence: the set is tiny (≤14 bearers) and
	// this runs per uplink packet, so sort.SliceStable's closure and
	// swapper allocations are not acceptable here. Shifting only on
	// strictly-greater precedence keeps the sort stable.
	for i := 1; i < len(dedicated); i++ {
		b := dedicated[i]
		j := i
		for j > 0 && tftPrecedence(dedicated[j-1].TFT) > tftPrecedence(b.TFT) {
			dedicated[j] = dedicated[j-1]
			j--
		}
		dedicated[j] = b
	}
	for _, b := range dedicated {
		if b.TFT != nil && b.TFT.MatchUplink(p.Flow, p.TOS) {
			return b
		}
	}
	return sess.Bearers[EBIDefault]
}

func tftPrecedence(t *pkt.TFT) int {
	if t == nil || len(t.Filters) == 0 {
		return 255
	}
	best := 255
	for _, f := range t.Filters {
		if int(f.Precedence) < best {
			best = int(f.Precedence)
		}
	}
	return best
}

func (e *ENB) handleDownlink(p *netsim.Packet) {
	if !p.Tunneled() || p.TunnelDst != e.Addr() {
		return // not for us
	}
	teid := p.Decapsulate()
	key, ok := e.byDLTEID[teid]
	if !ok || !key.ctx.connected {
		return
	}
	key.ctx.lastSeen = e.core.Eng.Now()
	if b := key.ctx.sess.Bearers[key.ebi]; b != nil {
		p.Priority = b.QoS.QCI.Priority()
	}
	e.DLPackets++
	e.node.Port(key.ctx.radioPort).Send(p)
}

// attachBearer installs the radio/S1 downlink mapping for a bearer and
// returns the freshly allocated eNB-side downlink TEID.
func (e *ENB) attachBearer(sess *Session, b *Bearer) uint32 {
	ctx := e.byUEIP[sess.UE.Addr()]
	ctx.sess = sess
	ctx.connected = true
	ctx.lastSeen = e.core.Eng.Now()
	// Drop any stale mapping for this bearer.
	for teid, key := range e.byDLTEID {
		if key.ctx == ctx && key.ebi == b.EBI {
			delete(e.byDLTEID, teid)
		}
	}
	teid := e.teids.alloc()
	e.byDLTEID[teid] = dlKey{ctx: ctx, ebi: b.EBI}
	return teid
}

// restoreBearerMapping reinstates a previously held downlink mapping for a
// bearer — the handover compensation path, where the source eNB must take a
// session back after its context was already released. Unlike attachBearer
// it reuses the caller-supplied TEID (the one the SGW-U rules still point
// at) instead of allocating a fresh one, and tolerates the UE context being
// gone entirely.
func (e *ENB) restoreBearerMapping(sess *Session, ebi uint8, teid uint32) {
	ctx := e.byUEIP[sess.UE.Addr()]
	if ctx == nil {
		return
	}
	ctx.sess = sess
	ctx.connected = true
	ctx.lastSeen = e.core.Eng.Now()
	for old, key := range e.byDLTEID {
		if key.ctx == ctx && key.ebi == ebi {
			delete(e.byDLTEID, old)
		}
	}
	e.byDLTEID[teid] = dlKey{ctx: ctx, ebi: ebi}
}

// detachBearer removes a dedicated bearer's radio mapping.
func (e *ENB) detachBearer(sess *Session, ebi uint8) {
	for teid, key := range e.byDLTEID {
		if key.ctx.sess == sess && key.ebi == ebi {
			delete(e.byDLTEID, teid)
		}
	}
}

// releaseContext tears down the UE's radio-side state on S1 release. The
// session and its bearers persist in the core; only eNB mappings go.
func (e *ENB) releaseContext(sess *Session) {
	ctx := e.byUEIP[sess.UE.Addr()]
	if ctx == nil {
		return
	}
	ctx.connected = false
	for teid, key := range e.byDLTEID {
		if key.ctx == ctx {
			delete(e.byDLTEID, teid)
		}
	}
}

// flushUplink replays packets buffered during promotion.
func (e *ENB) flushUplink(sess *Session) {
	ctx := e.byUEIP[sess.UE.Addr()]
	if ctx == nil {
		return
	}
	buf := ctx.ulBuffer
	ctx.ulBuffer = nil
	for _, p := range buf {
		e.forwardUplink(ctx, p)
	}
}

// sendServiceRequest starts promotion: RACH + RRC connection, then the
// S1AP InitialUEMessage carrying the NAS service request.
func (e *ENB) sendServiceRequest(sess *Session) {
	if sess.State != StateIdle {
		return
	}
	sess.setState(e.core.Eng, StatePromoting)
	e.core.Eng.Schedule(e.RACHDelay, func() {
		msg := &pkt.S1APMsg{
			Procedure: pkt.S1APInitialUEMessage,
			ENBUEID:   sess.ENBUEID,
			NAS:       e.core.encodeNAS(&pkt.NASMsg{Type: pkt.NASServiceRequest}),
		}
		// The MME sees the session as idle until it processes the request.
		sess.setState(e.core.Eng, StateIdle)
		pr := newProc(nil)
		pr.onError(func() {
			if sess.State == StatePromoting {
				sess.setState(e.core.Eng, StateIdle)
			}
		})
		e.core.sendS1AP(pr, e.ep, e.core.mmeEP, msg, func() {
			e.core.MME.onServiceRequest(pr, sess)
		})
	})
}

// pageUE delivers a page over the radio; the UE responds with a service
// request after the paging-cycle delay.
func (e *ENB) pageUE(sess *Session) {
	e.core.Eng.Schedule(e.RACHDelay, func() {
		if sess.State == StateIdle {
			e.sendServiceRequest(sess)
		}
	})
}

// sendInitialAttach carries the UE's attach request to the MME.
func (e *ENB) sendInitialAttach(ue *UE, sgwPlane, pgwPlane string, done func(error)) {
	nas := e.core.encodeNAS(&pkt.NASMsg{
		Type: pkt.NASAttachRequest,
		IMSI: ue.IMSI,
		ESM:  &pkt.NASMsg{Type: pkt.NASActivateDefaultBearerRequest, APN: "internet"},
	})
	msg := &pkt.S1APMsg{
		Procedure: pkt.S1APInitialUEMessage,
		ENBUEID:   1,
		NAS:       nas,
	}
	pr := newProc(done)
	e.core.sendS1AP(pr, e.ep, e.core.mmeEP, msg, func() {
		e.core.MME.onInitialAttach(pr, e, ue, sgwPlane, pgwPlane)
	})
}

// checkIdle fires the inactivity timer for connected UEs.
func (e *ENB) checkIdle() {
	now := e.core.Eng.Now()
	timeout := e.core.cfg.IdleTimeout
	for _, ctx := range e.byUEIP {
		if !ctx.connected || ctx.sess == nil || ctx.sess.State != StateConnected {
			continue
		}
		if now.Sub(ctx.lastSeen) >= timeout {
			e.requestRelease(ctx.sess)
		}
	}
}

// requestRelease sends the UE Context Release Request that starts the idle
// transition.
func (e *ENB) requestRelease(sess *Session) {
	msg := &pkt.S1APMsg{
		Procedure: pkt.S1APUEContextReleaseRequest,
		ENBUEID:   sess.ENBUEID, MMEUEID: sess.MMEUEID, Cause: 20,
	}
	pr := newProc(nil)
	e.core.sendS1AP(pr, e.ep, e.core.mmeEP, msg, func() {
		e.core.MME.onReleaseRequest(pr, sess)
	})
}
