package epc

import (
	"fmt"

	"acacia/internal/pkt"
)

// Batched session procedures. At metro scale the arrival process delivers
// whole cohorts of UEs inside one scheduling window, and running the full
// four-message S11/S5 Create Session chain once per UE makes the
// control-plane transaction count the bottleneck long before the data
// plane saturates. AttachBatch and DetachBatch amortize the GTPv2 legs:
// one Create/Modify/Delete Session exchange carries the bearer contexts of
// the whole cohort (the extra members ride the message's batch-IMSI IEs),
// while the radio-side S1AP exchanges — inherently per-UE, each against
// its own eNB context — stay individual. For a cohort of N the attach
// GTPv2 message count drops from 6N to 6 (and detach from 4N to 4), at
// unchanged per-UE S1AP cost.

// batchUE is the per-UE slot of an in-flight batched procedure.
type batchUE struct {
	ue   *UE
	sess *Session
	b    *Bearer
}

// AttachBatch runs the initial attach for a cohort of UEs arriving in the
// same window, all against the named default user planes. UEs that fail
// validation (no radio link, already attached, unknown IMSI) are reported
// through done immediately and do not hold up the rest of the cohort. done
// (may be nil) fires once per UE with the attach outcome.
//
// Signaling: one S1AP InitialUEMessage per UE (the radio arrivals), then a
// single batched Create Session chain on S11/S5, per-UE Initial Context
// Setup exchanges, a single batched Modify Bearer exchange, and per-UE
// attach-complete NAS transports. A transport timeout on a shared GTPv2
// leg fails the whole cohort — the cohort is one control-plane
// transaction.
func (c *Core) AttachBatch(ues []*UE, sgwPlane, pgwPlane string, done func(*UE, error)) {
	report := func(ue *UE, err error) {
		if done != nil {
			done(ue, err)
		}
	}
	planes, perr := c.internPlanes(sgwPlane, pgwPlane)
	if perr != nil {
		for _, ue := range ues {
			report(ue, perr)
		}
		return
	}
	apn := c.internAPN(defaultAPN, planes)

	// Validate and build the cohort. Validation failures are per-UE
	// outcomes; they never abort the batch.
	cohort := make([]*batchUE, 0, len(ues))
	for _, ue := range ues {
		switch {
		case ue.enb == nil:
			report(ue, fmt.Errorf("epc: UE %s has no radio connection", ue.IMSI))
		case ue.attached || c.sessions[ue.IMSI] != nil:
			report(ue, fmt.Errorf("epc: IMSI %s already attached", ue.IMSI))
		default:
			sub, ok := c.HSS.Lookup(ue.IMSI)
			if !ok {
				report(ue, fmt.Errorf("epc: IMSI %s unknown to HSS", ue.IMSI))
				continue
			}
			c.MME.Attaches++
			c.nextUEID++
			sess := &Session{
				IMSI:       ue.IMSI,
				ENB:        ue.enb,
				UE:         ue,
				APN:        apn,
				MMEUEID:    c.nextUEID,
				ENBUEID:    c.nextUEID | 0x1000000,
				AttachedAt: c.Eng.Now(),
			}
			sess.setState(c.Eng, StateConnecting)
			c.sessions[ue.IMSI] = sess
			cohort = append(cohort, &batchUE{
				ue:   ue,
				sess: sess,
				b:    &Bearer{EBI: EBIDefault, QoS: c.internQoS(sub.DefaultQoS), Planes: planes},
			})
		}
	}
	if len(cohort) == 0 {
		return
	}

	// One procedure spans the whole cohort: a terminal transport failure on
	// any shared leg unwinds every half-built session and reports the error
	// to every member.
	pr := newProc(func(err error) {
		if err != nil {
			for _, m := range cohort {
				report(m.ue, err)
			}
		}
	})
	pr.onError(func() {
		for _, m := range cohort {
			delete(c.sessions, m.sess.IMSI)
			if !m.sess.UEIP.IsZero() {
				delete(c.byIP, m.sess.UEIP)
			}
			m.sess.setState(c.Eng, StateDetached)
		}
	})

	// Radio arrivals: each UE's S1AP InitialUEMessage from its own eNB.
	// They fan in; the batched Create Session chain starts once the last
	// one lands at the MME.
	pending := len(cohort)
	for _, m := range cohort {
		nas := c.encodeNAS(&pkt.NASMsg{
			Type: pkt.NASAttachRequest,
			IMSI: m.ue.IMSI,
			ESM:  &pkt.NASMsg{Type: pkt.NASActivateDefaultBearerRequest, APN: apn.Name},
		})
		msg := &pkt.S1APMsg{Procedure: pkt.S1APInitialUEMessage, ENBUEID: m.sess.ENBUEID, NAS: nas}
		c.sendS1AP(pr, m.ue.enb.ep, c.mmeEP, msg, func() {
			pending--
			if pending == 0 {
				c.batchCreateSession(pr, cohort, planes, report)
			}
		})
	}
}

// cohortIMSIs splits a cohort's identities into the primary IMSI plus the
// batch extension list for the wire message.
func cohortIMSIs(cohort []*batchUE) (string, []string) {
	extra := make([]string, 0, len(cohort)-1)
	for _, m := range cohort[1:] {
		extra = append(extra, m.sess.IMSI)
	}
	return cohort[0].sess.IMSI, extra
}

// batchCreateSession runs the shared S11/S5 Create Session chain carrying
// every cohort member's default-bearer context, then hands off to the
// per-UE radio legs.
func (c *Core) batchCreateSession(pr *proc, cohort []*batchUE, planes *PlanePair, report func(*UE, error)) {
	first, extra := cohortIMSIs(cohort)
	contexts := make([]pkt.BearerContext, len(cohort))
	for i, m := range cohort {
		contexts[i] = pkt.BearerContext{EBI: m.b.EBI, QoS: m.b.QoS}
	}
	csReq := &pkt.GTPv2Msg{
		Type: pkt.GTPv2CreateSessionRequest,
		IMSI: first, IMSIs: extra,
		Bearers: contexts,
	}
	c.sendGTPv2(pr, c.mmeEP, c.sgwEP, csReq, func() {
		// SGW-C: allocate TEIDs for the whole cohort, forward on S5.
		for _, m := range cohort {
			m.b.S1UL = c.SGWC.teids.alloc()
			m.b.S5DL = c.SGWC.teids.alloc()
		}
		fwd := &pkt.GTPv2Msg{
			Type: pkt.GTPv2CreateSessionRequest,
			IMSI: first, IMSIs: extra,
			SenderFTEID: &pkt.FTEID{IfaceType: pkt.FTEIDIfaceS5SGW, TEID: cohort[0].b.S5DL, Addr: planes.SGW.Addr()},
			Bearers:     contexts,
		}
		c.sendGTPv2(pr, c.sgwEP, c.pgwEP, fwd, func() {
			// PGW-C: confirm addresses and allocate S5 TEIDs for everyone.
			respCtx := make([]pkt.BearerContext, len(cohort))
			for i, m := range cohort {
				m.sess.UEIP = m.ue.Addr()
				c.byIP[m.sess.UEIP] = m.sess
				m.b.S5UL = c.PGWC.teids.alloc()
				respCtx[i] = pkt.BearerContext{EBI: m.b.EBI, Cause: pkt.GTPv2CauseAccepted}
			}
			resp := &pkt.GTPv2Msg{
				Type:  pkt.GTPv2CreateSessionResponse,
				Cause: pkt.GTPv2CauseAccepted, PAA: cohort[0].sess.UEIP,
				SenderFTEID: &pkt.FTEID{IfaceType: pkt.FTEIDIfaceS5PGW, TEID: cohort[0].b.S5UL, Addr: planes.PGW.Addr()},
				Bearers:     respCtx,
			}
			c.sendGTPv2(pr, c.pgwEP, c.sgwEP, resp, func() {
				finalCtx := make([]pkt.BearerContext, len(cohort))
				for i, m := range cohort {
					finalCtx[i] = pkt.BearerContext{
						EBI: m.b.EBI, Cause: pkt.GTPv2CauseAccepted,
						FTEIDs: []pkt.FTEID{{IfaceType: pkt.FTEIDIfaceS1USGW, TEID: m.b.S1UL, Addr: planes.SGW.Addr()}},
					}
				}
				resp2 := &pkt.GTPv2Msg{
					Type:  pkt.GTPv2CreateSessionResponse,
					Cause: pkt.GTPv2CauseAccepted, PAA: cohort[0].sess.UEIP,
					Bearers: finalCtx,
				}
				c.sendGTPv2(pr, c.sgwEP, c.mmeEP, resp2, func() {
					c.batchContextSetup(pr, cohort, report)
				})
			})
		})
	})
}

// batchContextSetup runs the per-UE Initial Context Setup exchanges (each
// against the member's own eNB), then the shared Modify Bearer exchange
// and the per-UE completion legs.
func (c *Core) batchContextSetup(pr *proc, cohort []*batchUE, report func(*UE, error)) {
	pending := len(cohort)
	for _, m := range cohort {
		m := m
		sess, b := m.sess, m.b
		acceptNAS := c.encodeNAS(&pkt.NASMsg{
			Type: pkt.NASAttachAccept,
			ESM: &pkt.NASMsg{
				Type: pkt.NASActivateDefaultBearerRequest,
				EBI:  b.EBI, APN: sess.APN.Name, UEIP: sess.UEIP, QoS: b.QoS,
			},
		})
		icsReq := &pkt.S1APMsg{
			Procedure: pkt.S1APInitialContextSetupRequest,
			ENBUEID:   sess.ENBUEID, MMEUEID: sess.MMEUEID,
			NAS: acceptNAS,
			ERABs: []pkt.ERABItem{{
				ERABID: b.EBI, QoS: b.QoS,
				Transport: pkt.FTEID{IfaceType: pkt.FTEIDIfaceS1USGW, TEID: b.S1UL, Addr: b.Planes.SGW.Addr()},
			}},
		}
		c.sendS1AP(pr, c.mmeEP, sess.ENB.ep, icsReq, func() {
			b.S1DL = sess.ENB.attachBearer(sess, b)
			icsResp := &pkt.S1APMsg{
				Procedure: pkt.S1APInitialContextSetupResponse,
				ENBUEID:   sess.ENBUEID, MMEUEID: sess.MMEUEID,
				ERABs: []pkt.ERABItem{{
					ERABID:    b.EBI,
					Transport: pkt.FTEID{IfaceType: pkt.FTEIDIfaceS1UeNodeB, TEID: b.S1DL, Addr: sess.ENB.Addr()},
				}},
			}
			c.sendS1AP(pr, sess.ENB.ep, c.mmeEP, icsResp, func() {
				pending--
				if pending == 0 {
					c.batchModifyBearer(pr, cohort, report)
				}
			})
		})
	}
}

// batchModifyBearer sends the cohort's eNB F-TEIDs to the SGW-C in one
// Modify Bearer exchange, installs every member's flows, and concludes
// with the per-UE attach-complete NAS transports.
func (c *Core) batchModifyBearer(pr *proc, cohort []*batchUE, report func(*UE, error)) {
	first, extra := cohortIMSIs(cohort)
	items := make([]pkt.BearerContext, len(cohort))
	for i, m := range cohort {
		items[i] = pkt.BearerContext{
			EBI:    m.b.EBI,
			FTEIDs: []pkt.FTEID{{IfaceType: pkt.FTEIDIfaceS1UeNodeB, TEID: m.b.S1DL, Addr: m.sess.ENB.Addr()}},
		}
	}
	mbReq := &pkt.GTPv2Msg{Type: pkt.GTPv2ModifyBearerRequest, IMSI: first, IMSIs: extra, Bearers: items}
	c.sendGTPv2(pr, c.mmeEP, c.sgwEP, mbReq, func() {
		mbResp := &pkt.GTPv2Msg{Type: pkt.GTPv2ModifyBearerResponse, Cause: pkt.GTPv2CauseAccepted}
		c.sendGTPv2(pr, c.sgwEP, c.mmeEP, mbResp, func() {
			pending := len(cohort)
			for _, m := range cohort {
				m := m
				sess, b := m.sess, m.b
				sess.Bearers[b.EBI] = b
				c.installBearerFlows(sess, b)
				complete := &pkt.S1APMsg{
					Procedure: pkt.S1APUplinkNASTransport,
					ENBUEID:   sess.ENBUEID, MMEUEID: sess.MMEUEID,
					NAS: c.encodeNAS(&pkt.NASMsg{Type: pkt.NASAttachComplete}),
				}
				c.sendS1AP(pr, sess.ENB.ep, c.mmeEP, complete, func() {
					sess.UE.completeAttach(sess)
					sess.setState(c.Eng, StateConnected)
					report(m.ue, nil)
					pending--
					if pending == 0 {
						pr.finish(nil)
					}
				})
			}
		})
	})
}

// DetachBatch detaches a cohort of attached UEs with one shared Delete
// Session chain on S11/S5 and per-UE S1AP context releases. done (may be
// nil) fires once per UE.
func (c *Core) DetachBatch(ues []*UE, done func(*UE, error)) {
	report := func(ue *UE, err error) {
		if done != nil {
			done(ue, err)
		}
	}
	cohort := make([]*batchUE, 0, len(ues))
	for _, ue := range ues {
		if !ue.attached || ue.sess == nil {
			report(ue, fmt.Errorf("epc: UE %s not attached", ue.IMSI))
			continue
		}
		cohort = append(cohort, &batchUE{ue: ue, sess: ue.sess})
	}
	if len(cohort) == 0 {
		return
	}
	pr := newProc(func(err error) {
		if err != nil {
			// The detach signaling failed mid-flight; force-release every
			// cohort session locally so no UE stays half-attached.
			for _, m := range cohort {
				c.forceDetach(m.sess)
				report(m.ue, err)
			}
		}
	})
	first, extra := cohortIMSIs(cohort)
	req := &pkt.GTPv2Msg{Type: pkt.GTPv2DeleteSessionRequest, IMSI: first, IMSIs: extra}
	c.sendGTPv2(pr, c.mmeEP, c.sgwEP, req, func() {
		fwd := &pkt.GTPv2Msg{Type: pkt.GTPv2DeleteSessionRequest, IMSI: first, IMSIs: extra}
		c.sendGTPv2(pr, c.sgwEP, c.pgwEP, fwd, func() {
			for _, m := range cohort {
				c.releaseSessionResources(m.sess)
			}
			resp := &pkt.GTPv2Msg{Type: pkt.GTPv2DeleteSessionResponse, Cause: pkt.GTPv2CauseAccepted}
			c.sendGTPv2(pr, c.pgwEP, c.sgwEP, resp, func() {
				resp2 := &pkt.GTPv2Msg{Type: pkt.GTPv2DeleteSessionResponse, Cause: pkt.GTPv2CauseAccepted}
				c.sendGTPv2(pr, c.sgwEP, c.mmeEP, resp2, func() {
					pending := len(cohort)
					for _, m := range cohort {
						m := m
						sess := m.sess
						cmd := &pkt.S1APMsg{
							Procedure: pkt.S1APUEContextReleaseCommand,
							ENBUEID:   sess.ENBUEID, MMEUEID: sess.MMEUEID, Cause: 3, // detach
						}
						c.sendS1AP(pr, c.mmeEP, sess.ENB.ep, cmd, func() {
							sess.ENB.releaseContext(sess)
							complete := &pkt.S1APMsg{
								Procedure: pkt.S1APUEContextReleaseComplete,
								ENBUEID:   sess.ENBUEID, MMEUEID: sess.MMEUEID,
							}
							c.sendS1AP(pr, sess.ENB.ep, c.mmeEP, complete, func() {
								sess.setState(c.Eng, StateDetached)
								delete(c.sessions, sess.IMSI)
								delete(c.byIP, sess.UEIP)
								sess.UE.completeDetach()
								report(m.ue, nil)
								pending--
								if pending == 0 {
									pr.finish(nil)
								}
							})
						})
					}
				})
			})
		})
	})
}
