// Package epc implements the LTE/EPC control and user planes of the ACACIA
// testbed: UE and eNodeB with radio-bearer semantics, MME, HSS, PCRF/PCEF,
// and split gateways (SGW-C/PGW-C control planes programming SGW-U/PGW-U
// switches through the SDN controller).
//
// Control-plane exchanges (S1AP-over-SCTP between eNB and MME, GTPv2-C
// between MME and the gateway control planes) are serialized with the pkt
// encodings on every hop, so message and byte counts — the paper's §4
// control-overhead analysis — are measured from real encodings rather than
// assumed. Data-plane traffic flows through netsim links and sdn switches
// with GTP-U encapsulation.
//
// The package implements the full bearer lifecycle the paper exercises:
//
//   - initial attach with default-bearer establishment (always-on),
//   - network-initiated dedicated bearer activation toward local (edge)
//     gateways — ACACIA's traffic-redirection mechanism,
//   - S1 release after the LTE inactivity timeout (11.576 s) and
//     service-request promotion when traffic resumes, including paging for
//     downlink-triggered wakeups.
package epc

import (
	"fmt"
	"time"

	"acacia/internal/sim"
	"acacia/internal/telemetry"
)

// IdleTimeout is the LTE RRC inactivity timeout after which the network
// releases a UE's radio and S1 bearers (Huang et al. [35]: 11.576 s).
const IdleTimeout = 11576 * time.Millisecond

// Protocol identifies a control-plane protocol for accounting.
type Protocol uint8

// Accounted protocols.
const (
	ProtoS1AP     Protocol = iota // S1AP over SCTP (eNB <-> MME)
	ProtoGTPv2                    // GTPv2-C (MME <-> SGW-C <-> PGW-C)
	ProtoOpenFlow                 // controller <-> GW-U (accounted by sdn)
	protoCount
)

// String names the protocol.
func (p Protocol) String() string {
	switch p {
	case ProtoS1AP:
		return "SCTP/S1AP"
	case ProtoGTPv2:
		return "GTPv2"
	case ProtoOpenFlow:
		return "OpenFlow"
	default:
		return fmt.Sprintf("Protocol(%d)", uint8(p))
	}
}

// slug is the metric-name form of the protocol (epc/<slug>/msgs).
func (p Protocol) slug() string {
	switch p {
	case ProtoS1AP:
		return "s1ap"
	case ProtoGTPv2:
		return "gtpv2"
	case ProtoOpenFlow:
		return "openflow"
	default:
		return fmt.Sprintf("proto%d", uint8(p))
	}
}

// MsgRecord is one logged control message. The transport fields are filled
// in two phases: Seq and Path at send time, and the wire observations
// (Link, QueueWait, Retrans) when the transport ack reports how the
// exchange actually fared.
type MsgRecord struct {
	At    sim.Time
	Proto Protocol
	Name  string
	Bytes int

	// Seq is the per-peer transport sequence number (GTPv2 Seq/SCTP TSN).
	Seq uint32
	// Path names the sending and receiving endpoints ("mme->sgw-c").
	Path string
	// Link names the link the delivered attempt traversed.
	Link string
	// QueueWait is the transmit-queue delay of the delivered attempt.
	QueueWait time.Duration
	// Retrans counts retransmissions the exchange needed.
	Retrans int
}

// Accounting tallies control-plane messages by protocol. The §4 experiment
// snapshots it around a release/re-establish cycle.
//
// The arrays remain the canonical store (a zero-value Accounting works
// standalone); when constructed with NewAccounting, every Record also
// mirrors into per-protocol telemetry counters (epc/<proto>/msgs and
// epc/<proto>/bytes) so the engine-wide registry snapshot carries the same
// totals.
type Accounting struct {
	Msgs  [protoCount]uint64
	Bytes [protoCount]uint64
	// Log holds individual records when Trace is enabled.
	Trace bool
	Log   []MsgRecord

	// Registry mirrors, nil when the Accounting is unbound.
	msgCtr  [protoCount]*telemetry.Counter
	byteCtr [protoCount]*telemetry.Counter
	// logLen is the Log length at the time this value was produced by
	// Snapshot; DiffLog slices the live log from it.
	logLen int
}

// NewAccounting returns an Accounting whose counters mirror into reg under
// epc/<proto>/msgs and epc/<proto>/bytes (proto in s1ap, gtpv2, openflow).
func NewAccounting(reg *telemetry.Registry) *Accounting {
	a := &Accounting{}
	scope := reg.Scope("epc")
	for p := Protocol(0); p < protoCount; p++ {
		ps := scope.Scope(p.slug())
		a.msgCtr[p] = ps.Counter("msgs")
		a.byteCtr[p] = ps.Counter("bytes")
	}
	return a
}

// Record adds one message.
func (a *Accounting) Record(at sim.Time, proto Protocol, name string, bytes int) {
	a.RecordTx(at, proto, name, bytes, 0, "")
}

// RecordTx adds one message with its transport identity (sequence number
// and endpoint path). It returns the record's index in the trace log so the
// caller can attach wire observations later via NoteTransport, or -1 when
// tracing is off.
func (a *Accounting) RecordTx(at sim.Time, proto Protocol, name string, bytes int, seq uint32, path string) int {
	a.Msgs[proto]++
	a.Bytes[proto] += uint64(bytes)
	if a.msgCtr[proto] != nil {
		a.msgCtr[proto].Inc()
		a.byteCtr[proto].Add(uint64(bytes))
	}
	if a.Trace {
		a.Log = append(a.Log, MsgRecord{At: at, Proto: proto, Name: name, Bytes: bytes, Seq: seq, Path: path})
		return len(a.Log) - 1
	}
	return -1
}

// NoteTransport back-fills the wire observations of a traced message once
// its transport transaction concludes. idx is RecordTx's return value; -1
// is ignored.
func (a *Accounting) NoteTransport(idx int, link string, queueWait time.Duration, retrans int) {
	if idx < 0 || idx >= len(a.Log) {
		return
	}
	r := &a.Log[idx]
	r.Link = link
	r.QueueWait = queueWait
	r.Retrans = retrans
}

// Snapshot returns a copy of the current counters. The copy deliberately
// carries neither Trace nor Log: tracing stays with the live Accounting, and
// copying a growing log into every snapshot would be quadratic. Instead the
// snapshot remembers the log position, so DiffLog can later return exactly
// the records that arrived after it.
func (a *Accounting) Snapshot() Accounting {
	return Accounting{Msgs: a.Msgs, Bytes: a.Bytes, logLen: len(a.Log)}
}

// Diff reports counters accumulated since an earlier snapshot.
func (a *Accounting) Diff(since Accounting) Accounting {
	var d Accounting
	for i := range a.Msgs {
		d.Msgs[i] = a.Msgs[i] - since.Msgs[i]
		d.Bytes[i] = a.Bytes[i] - since.Bytes[i]
	}
	return d
}

// DiffLog returns the trace records appended to the live log since the given
// Snapshot was taken. It requires Trace to have been enabled over the
// interval; with tracing off it returns nil.
func (a *Accounting) DiffLog(since Accounting) []MsgRecord {
	if since.logLen >= len(a.Log) {
		return nil
	}
	return a.Log[since.logLen:]
}

// TotalMsgs sums message counts across protocols.
func (a *Accounting) TotalMsgs() uint64 {
	var t uint64
	for _, v := range a.Msgs {
		t += v
	}
	return t
}

// TotalBytes sums byte counts across protocols.
func (a *Accounting) TotalBytes() uint64 {
	var t uint64
	for _, v := range a.Bytes {
		t += v
	}
	return t
}

// teidAllocator hands out unique tunnel endpoint identifiers per gateway.
type teidAllocator struct{ next uint32 }

func (t *teidAllocator) alloc() uint32 {
	t.next++
	return t.next
}

// EBI values: the default bearer gets 5 (the first valid EPS bearer id),
// dedicated bearers count up from 6.
const (
	EBIDefault   = 5
	EBIDedicated = 6
)
