package epc

import (
	"sort"
	"testing"
	"time"

	"acacia/internal/netsim"
	"acacia/internal/pkt"
	"acacia/internal/sdn"
	"acacia/internal/sim"
)

// testbed is a compact version of the ACACIA topology:
//
//	UE --radio-- eNB --backhaul-- router --+-- core SGW-U -- core PGW-U -- inet server
//	                                       +-- edge SGW-U -- edge PGW-U -- CI server
type testbed struct {
	eng  *sim.Engine
	nw   *netsim.Network
	core *Core
	ue   *UE
	enb  *ENB

	inetHost *netsim.Host
	ciHost   *netsim.Host

	edgeSGW, edgePGW *sdn.Switch
	coreSGW, corePGW *sdn.Switch
}

const (
	radioDelay    = 5 * time.Millisecond
	backhaulDelay = 500 * time.Microsecond
	coreDelay     = 10 * time.Millisecond // eNB side -> centralized GWs
	inetDelay     = 20 * time.Millisecond // PGW -> internet server
	edgeDelay     = 100 * time.Microsecond
)

func buildTestbed(t *testing.T, idle time.Duration) *testbed {
	t.Helper()
	eng := sim.NewEngine(42)
	nw := netsim.New(eng)
	ctl := sdn.NewController(eng)
	ctl.RTT = 200 * time.Microsecond

	tb := &testbed{eng: eng, nw: nw}

	ueN := nw.AddNode("ue", pkt.AddrFrom(172, 16, 0, 2))
	enbN := nw.AddNode("enb", pkt.AddrFrom(10, 1, 0, 1))
	rtrN := nw.AddNode("backhaul", pkt.AddrFrom(10, 1, 0, 254))
	coreSGWN := nw.AddNode("core-sgw-u", pkt.AddrFrom(10, 2, 0, 1))
	corePGWN := nw.AddNode("core-pgw-u", pkt.AddrFrom(10, 2, 0, 2))
	edgeSGWN := nw.AddNode("edge-sgw-u", pkt.AddrFrom(10, 3, 0, 1))
	edgePGWN := nw.AddNode("edge-pgw-u", pkt.AddrFrom(10, 3, 0, 2))
	inetN := nw.AddNode("inet-server", pkt.AddrFrom(8, 8, 0, 10))
	ciN := nw.AddNode("ci-server", pkt.AddrFrom(10, 3, 0, 10))

	gbit := func(d time.Duration) netsim.LinkConfig {
		return netsim.LinkConfig{BitsPerSecond: 1e9, Propagation: d}
	}

	// eNB port 0 is the backhaul, so connect it before any UE.
	nw.ConnectSymmetric(enbN, rtrN, gbit(backhaulDelay)) // enb:0 - rtr:0
	nw.ConnectSymmetric(rtrN, coreSGWN, gbit(coreDelay)) // rtr:1 - coreSGW:0
	nw.ConnectSymmetric(coreSGWN, corePGWN, gbit(backhaulDelay))
	nw.ConnectSymmetric(corePGWN, inetN, gbit(inetDelay))
	nw.ConnectSymmetric(rtrN, edgeSGWN, gbit(edgeDelay)) // rtr:2 - edgeSGW:0
	nw.ConnectSymmetric(edgeSGWN, edgePGWN, gbit(edgeDelay))
	nw.ConnectSymmetric(edgePGWN, ciN, gbit(edgeDelay))

	rtr := netsim.NewRouter(rtrN)
	rtr.AddHostRoute(enbN.Addr(), rtrN.Port(0))
	rtr.AddHostRoute(coreSGWN.Addr(), rtrN.Port(1))
	rtr.AddHostRoute(edgeSGWN.Addr(), rtrN.Port(2))

	tb.coreSGW = sdn.NewSwitch(1, coreSGWN, sdn.ACACIAGWCosts)
	tb.corePGW = sdn.NewSwitch(2, corePGWN, sdn.ACACIAGWCosts)
	tb.edgeSGW = sdn.NewSwitch(3, edgeSGWN, sdn.ACACIAGWCosts)
	tb.edgePGW = sdn.NewSwitch(4, edgePGWN, sdn.ACACIAGWCosts)
	for _, sw := range []*sdn.Switch{tb.coreSGW, tb.corePGW, tb.edgeSGW, tb.edgePGW} {
		ctl.AddSwitch(sw)
	}

	core := NewCore(Config{
		Eng: eng, Net: nw, Ctl: ctl,
		S1APDelay:   2 * time.Millisecond,
		GTPv2Delay:  time.Millisecond,
		IdleTimeout: idle,
	})
	tb.core = core

	core.SGWC.AddUserPlane("core-sgw", tb.coreSGW, 0, 1)
	core.PGWC.AddUserPlane("core-pgw", tb.corePGW, 0, 1)
	core.SGWC.AddUserPlane("edge-sgw", tb.edgeSGW, 0, 1)
	core.PGWC.AddUserPlane("edge-pgw", tb.edgePGW, 0, 1)

	core.HSS.Provision(Subscriber{IMSI: "001010000000001"})
	core.PCRF.AddRule(PolicyRule{ServiceID: "retail-ar", QCI: pkt.QCIMEC, ARP: 2, Precedence: 10})

	tb.enb = NewENB(core, enbN)
	tb.ue = NewUE(ueN, "001010000000001")
	tb.enb.ConnectUE(tb.ue, netsim.LinkConfig{BitsPerSecond: 100e6, Propagation: radioDelay})

	tb.inetHost = netsim.NewHost(inetN)
	tb.inetHost.Listen(netsim.PingPort, netsim.PingResponder{})
	tb.ciHost = netsim.NewHost(ciN)
	tb.ciHost.Listen(netsim.PingPort, netsim.PingResponder{})

	return tb
}

// attach runs the attach procedure to completion.
func (tb *testbed) attach(t *testing.T) {
	t.Helper()
	var attachErr error
	done := false
	tb.ue.Attach("core-sgw", "core-pgw", func(err error) {
		attachErr = err
		done = true
	})
	tb.eng.RunFor(2 * time.Second)
	if !done {
		t.Fatal("attach did not complete")
	}
	if attachErr != nil {
		t.Fatalf("attach: %v", attachErr)
	}
}

// dedicate activates the MEC dedicated bearer toward the CI server.
func (tb *testbed) dedicate(t *testing.T) uint8 {
	t.Helper()
	var ebi uint8
	var derr error
	done := false
	tb.core.PCRF.RequestDedicatedBearer("retail-ar", tb.ue.Addr(), tb.ciHost.Node.Addr(),
		"edge-sgw", "edge-pgw", func(e uint8, err error) {
			ebi, derr, done = e, err, true
		})
	tb.eng.RunFor(2 * time.Second)
	if !done {
		t.Fatal("dedicated bearer activation did not complete")
	}
	if derr != nil {
		t.Fatalf("dedicated bearer: %v", derr)
	}
	return ebi
}

func TestAttachEstablishesDefaultBearer(t *testing.T) {
	tb := buildTestbed(t, time.Hour)
	tb.attach(t)
	if !tb.ue.Attached() {
		t.Fatal("UE not attached")
	}
	sess := tb.core.Session(tb.ue.IMSI)
	if sess == nil || sess.State != StateConnected {
		t.Fatalf("session = %+v", sess)
	}
	if sess.UEIP != tb.ue.Addr() {
		t.Errorf("UE IP = %v", sess.UEIP)
	}
	if sess.Bearer(EBIDefault) == nil {
		t.Fatal("no default bearer")
	}
	if tb.coreSGW.FlowCount() != 2 || tb.corePGW.FlowCount() != 2 {
		t.Errorf("core flows sgw=%d pgw=%d, want 2/2", tb.coreSGW.FlowCount(), tb.corePGW.FlowCount())
	}
	if tb.edgeSGW.FlowCount() != 0 {
		t.Errorf("edge flows before dedicated bearer = %d", tb.edgeSGW.FlowCount())
	}
	acct := tb.core.Acct
	if acct.Msgs[ProtoS1AP] == 0 || acct.Msgs[ProtoGTPv2] == 0 {
		t.Errorf("accounting: %+v", acct)
	}
}

func TestAttachUnknownIMSIFails(t *testing.T) {
	tb := buildTestbed(t, time.Hour)
	ueN := tb.nw.AddNode("ue2", pkt.AddrFrom(172, 16, 0, 3))
	rogue := NewUE(ueN, "999990000000009")
	tb.enb.ConnectUE(rogue, netsim.LinkConfig{Propagation: radioDelay})
	var gotErr error
	rogue.Attach("core-sgw", "core-pgw", func(err error) { gotErr = err })
	tb.eng.RunFor(time.Second)
	if gotErr == nil {
		t.Fatal("unknown IMSI attach succeeded")
	}
	if rogue.Attached() {
		t.Error("rogue UE attached")
	}
}

func TestDataPathThroughCore(t *testing.T) {
	tb := buildTestbed(t, time.Hour)
	tb.attach(t)
	pg := netsim.NewPinger(tb.ue.Host, tb.inetHost.Node.Addr(), 64, 5000)
	pg.Start(100 * time.Millisecond)
	tb.eng.RunFor(2 * time.Second)
	pg.Stop()
	tb.eng.RunFor(500 * time.Millisecond)
	if pg.Received < 10 {
		t.Fatalf("replies = %d of %d", pg.Received, pg.Sent)
	}
	// Expected RTT: 2*(radio + backhaul + core + sgw-pgw + inet) plus
	// small switching costs.
	want := 2 * (radioDelay + backhaulDelay + coreDelay + backhaulDelay + inetDelay).Seconds() * 1000
	got := pg.RTTs.Mean()
	if got < want || got > want*1.2 {
		t.Errorf("core RTT = %.2f ms, want ≈%.2f", got, want)
	}
	// Traffic must traverse the core GWs with GTP encapsulation.
	if tb.coreSGW.Stats().Encapsulated == 0 || tb.corePGW.Stats().Decapsulated == 0 {
		t.Error("no GTP activity on core GW-Us")
	}
}

func TestDedicatedBearerRedirectsToEdge(t *testing.T) {
	tb := buildTestbed(t, time.Hour)
	tb.attach(t)
	ebi := tb.dedicate(t)
	if ebi != EBIDedicated {
		t.Errorf("EBI = %d", ebi)
	}
	sess := tb.core.Session(tb.ue.IMSI)
	if len(sess.DedicatedBearers()) != 1 {
		t.Fatalf("dedicated bearers = %d", len(sess.DedicatedBearers()))
	}
	// The UE modem classifies CI traffic onto the dedicated bearer.
	ciFlow := pkt.FiveTuple{Src: tb.ue.Addr(), Dst: tb.ciHost.Node.Addr(), DstPort: 80, Proto: pkt.ProtoTCP}
	if got := tb.ue.BearerFor(ciFlow, 0); got != ebi {
		t.Errorf("CI flow bearer = %d, want %d", got, ebi)
	}
	inetFlow := pkt.FiveTuple{Src: tb.ue.Addr(), Dst: tb.inetHost.Node.Addr(), DstPort: 80, Proto: pkt.ProtoTCP}
	if got := tb.ue.BearerFor(inetFlow, 0); got != EBIDefault {
		t.Errorf("internet flow bearer = %d, want default", got)
	}

	// CI pings ride the edge path: far lower RTT, via edge switches only.
	edgeBefore := tb.edgeSGW.Stats().Encapsulated
	pgCI := netsim.NewPinger(tb.ue.Host, tb.ciHost.Node.Addr(), 64, 5001)
	pgCI.Start(50 * time.Millisecond)
	tb.eng.RunFor(time.Second)
	pgCI.Stop()
	tb.eng.RunFor(200 * time.Millisecond)
	if pgCI.Received < 10 {
		t.Fatalf("CI replies = %d", pgCI.Received)
	}
	edgeRTT := pgCI.RTTs.Mean()
	wantEdge := 2 * (radioDelay + backhaulDelay + edgeDelay*3).Seconds() * 1000
	if edgeRTT < wantEdge || edgeRTT > wantEdge*1.3 {
		t.Errorf("edge RTT = %.2f ms, want ≈%.2f", edgeRTT, wantEdge)
	}
	if tb.edgeSGW.Stats().Encapsulated == edgeBefore {
		t.Error("CI traffic did not traverse the edge SGW-U")
	}

	// Internet traffic still uses the core path.
	pgInet := netsim.NewPinger(tb.ue.Host, tb.inetHost.Node.Addr(), 64, 5002)
	pgInet.SendOne()
	tb.eng.RunFor(time.Second)
	if pgInet.Received != 1 {
		t.Fatal("internet ping lost after dedicated bearer setup")
	}
	if pgInet.RTTs.Mean() < 2*coreDelay.Seconds()*1000 {
		t.Errorf("internet RTT %.2f ms suspiciously low", pgInet.RTTs.Mean())
	}
}

func TestDedicatedBearerPriority(t *testing.T) {
	tb := buildTestbed(t, time.Hour)
	tb.attach(t)
	tb.dedicate(t)
	ciFlow := pkt.FiveTuple{Src: tb.ue.Addr(), Dst: tb.ciHost.Node.Addr(), DstPort: 80, Proto: pkt.ProtoUDP}
	p := &netsim.Packet{Flow: ciFlow, Size: 100}
	tb.ue.classify(p)
	if p.Priority != pkt.QCIMEC.Priority() {
		t.Errorf("CI packet priority = %d, want %d", p.Priority, pkt.QCIMEC.Priority())
	}
	inet := &netsim.Packet{Flow: pkt.FiveTuple{Src: tb.ue.Addr(), Dst: tb.inetHost.Node.Addr()}, Size: 100}
	tb.ue.classify(inet)
	if inet.Priority != pkt.QCIDefault.Priority() {
		t.Errorf("default packet priority = %d", inet.Priority)
	}
}

func TestBearerDeletion(t *testing.T) {
	tb := buildTestbed(t, time.Hour)
	tb.attach(t)
	tb.dedicate(t)
	if tb.edgeSGW.FlowCount() == 0 {
		t.Fatal("no edge flows after activation")
	}
	var delErr error
	done := false
	tb.core.PCRF.RequestBearerTermination(tb.ue.Addr(), tb.ciHost.Node.Addr(), func(err error) {
		delErr, done = err, true
	})
	tb.eng.RunFor(time.Second)
	if !done || delErr != nil {
		t.Fatalf("termination done=%v err=%v", done, delErr)
	}
	if n := len(tb.core.Session(tb.ue.IMSI).DedicatedBearers()); n != 0 {
		t.Errorf("dedicated bearers = %d", n)
	}
	if tb.edgeSGW.FlowCount() != 0 || tb.edgePGW.FlowCount() != 0 {
		t.Errorf("edge flows after delete: sgw=%d pgw=%d", tb.edgeSGW.FlowCount(), tb.edgePGW.FlowCount())
	}
	// CI traffic falls back to the default bearer.
	ciFlow := pkt.FiveTuple{Src: tb.ue.Addr(), Dst: tb.ciHost.Node.Addr(), DstPort: 80, Proto: pkt.ProtoTCP}
	if got := tb.ue.BearerFor(ciFlow, 0); got != EBIDefault {
		t.Errorf("CI flow bearer after deletion = %d", got)
	}
}

func TestIdleReleaseAndPromotion(t *testing.T) {
	tb := buildTestbed(t, 3*time.Second)
	tb.attach(t)
	tb.dedicate(t)
	sess := tb.core.Session(tb.ue.IMSI)

	// Go idle.
	tb.eng.RunFor(5 * time.Second)
	if sess.State != StateIdle {
		t.Fatalf("state = %v after inactivity, want idle", sess.State)
	}
	if tb.core.MME.Releases != 1 {
		t.Errorf("releases = %d", tb.core.MME.Releases)
	}

	// Uplink data wakes the session and is delivered after promotion.
	pg := netsim.NewPinger(tb.ue.Host, tb.inetHost.Node.Addr(), 64, 5003)
	pg.SendOne()
	tb.eng.RunFor(2 * time.Second)
	if sess.State != StateConnected {
		t.Fatalf("state = %v after uplink, want connected", sess.State)
	}
	if tb.core.MME.Promotions != 1 {
		t.Errorf("promotions = %d", tb.core.MME.Promotions)
	}
	if pg.Received != 1 {
		t.Errorf("buffered uplink ping not delivered: received=%d", pg.Received)
	}
}

func TestReleaseReestablishMessageBudget(t *testing.T) {
	// The §4 cycle: S1 release + service-request re-establishment must cost
	// 7 SCTP/S1AP messages, 4 GTPv2 messages and 4 OpenFlow messages with a
	// default + dedicated bearer pair, matching the paper's testbed count
	// of 15 messages.
	tb := buildTestbed(t, 3*time.Second)
	tb.attach(t)
	tb.dedicate(t)
	sess := tb.core.Session(tb.ue.IMSI)
	// The dedicate helper already ran 2 s of virtual time past activation;
	// snapshot now, before the 3 s inactivity timer fires.
	acctBefore := tb.core.Acct.Snapshot()
	ofBefore := tb.core.Ctl.Stats()

	// Idle out...
	tb.eng.RunFor(5 * time.Second)
	if sess.State != StateIdle {
		t.Fatalf("state = %v", sess.State)
	}
	// ...and promote via uplink data.
	pg := netsim.NewPinger(tb.ue.Host, tb.inetHost.Node.Addr(), 64, 5004)
	pg.SendOne()
	tb.eng.RunFor(2 * time.Second)
	if sess.State != StateConnected {
		t.Fatalf("state = %v", sess.State)
	}

	d := tb.core.Acct.Diff(acctBefore)
	if d.Msgs[ProtoS1AP] != 7 {
		t.Errorf("S1AP messages = %d, want 7 (paper)", d.Msgs[ProtoS1AP])
	}
	if d.Msgs[ProtoGTPv2] != 4 {
		t.Errorf("GTPv2 messages = %d, want 4 (paper)", d.Msgs[ProtoGTPv2])
	}
	ofAfter := tb.core.Ctl.Stats()
	ofMsgs := ofAfter.Sent - ofBefore.Sent
	if ofMsgs != 4 {
		t.Errorf("OpenFlow messages = %d, want 4 (paper)", ofMsgs)
	}
	// Byte totals land in the paper's regime (2914 bytes total). Our
	// encodings are leaner — no ASN.1 PER padding, minimal optional IEs and
	// no SCTP SACK chunks — so the measured cycle sits below the testbed
	// capture but within ~2.5x.
	total := d.TotalBytes() + (ofAfter.SentBytes - ofBefore.SentBytes)
	if total < 900 || total > 4500 {
		t.Errorf("cycle bytes = %d, want within [900, 4500] (paper: 2914)", total)
	}
}

func TestPagingOnDownlinkWhileIdle(t *testing.T) {
	tb := buildTestbed(t, 3*time.Second)
	tb.attach(t)
	sess := tb.core.Session(tb.ue.IMSI)
	tb.eng.RunFor(5 * time.Second)
	if sess.State != StateIdle {
		t.Fatalf("state = %v", sess.State)
	}

	// Downlink traffic to the idle UE triggers paging and promotion; the
	// SGW buffers the triggering packet and replays it once connected.
	var got int
	tb.ue.Host.Listen(8888, netsim.AppFunc(func(_ *netsim.Host, p *netsim.Packet) { got++ }))
	tb.inetHost.Send(tb.ue.Addr(), 9999, 8888, pkt.ProtoUDP, 200, nil)
	tb.eng.RunFor(3 * time.Second)
	if tb.core.MME.Pagings == 0 {
		t.Error("no paging occurred")
	}
	if sess.State != StateConnected {
		t.Errorf("state = %v after paging, want connected", sess.State)
	}
	if got != 1 {
		t.Errorf("paging-buffered downlink delivered = %d, want 1 (replayed)", got)
	}
	// Subsequent downlink is delivered directly.
	tb.inetHost.Send(tb.ue.Addr(), 9999, 8888, pkt.ProtoUDP, 200, nil)
	tb.eng.RunFor(time.Second)
	if got != 2 {
		t.Errorf("post-paging downlink total = %d, want 2", got)
	}
}

func TestControlMessagesRoundTripDecode(t *testing.T) {
	// Every control message the procedures emit must decode back; run a
	// full lifecycle with tracing and re-parse per protocol. (Encoding
	// already happens in sendS1AP/sendGTPv2; this guards that the specific
	// IE combinations used are well-formed.)
	tb := buildTestbed(t, 3*time.Second)
	tb.core.Acct.Trace = true
	tb.attach(t)
	tb.dedicate(t)
	tb.eng.RunFor(6 * time.Second) // idle out
	netsim.NewPinger(tb.ue.Host, tb.inetHost.Node.Addr(), 64, 5005).SendOne()
	tb.eng.RunFor(2 * time.Second)

	if len(tb.core.Acct.Log) < 15 {
		t.Fatalf("only %d messages logged", len(tb.core.Acct.Log))
	}
	for _, rec := range tb.core.Acct.Log {
		if rec.Bytes <= 0 {
			t.Errorf("%s %s encoded to %d bytes", rec.Proto, rec.Name, rec.Bytes)
		}
	}
}

func TestSessionStateString(t *testing.T) {
	states := []SessionState{StateDetached, StateConnecting, StateConnected, StateIdle, StatePromoting}
	seen := map[string]bool{}
	for _, s := range states {
		str := s.String()
		if str == "" || seen[str] {
			t.Errorf("state %d string %q", s, str)
		}
		seen[str] = true
	}
	if SessionState(99).String() == "" {
		t.Error("unknown state empty string")
	}
}

func TestAccountingDiff(t *testing.T) {
	var a Accounting
	a.Record(0, ProtoS1AP, "x", 100)
	snap := a.Snapshot()
	a.Record(0, ProtoS1AP, "y", 50)
	a.Record(0, ProtoGTPv2, "z", 30)
	d := a.Diff(snap)
	if d.Msgs[ProtoS1AP] != 1 || d.Bytes[ProtoS1AP] != 50 {
		t.Errorf("diff S1AP = %d/%d", d.Msgs[ProtoS1AP], d.Bytes[ProtoS1AP])
	}
	if d.TotalMsgs() != 2 || d.TotalBytes() != 80 {
		t.Errorf("totals = %d/%d", d.TotalMsgs(), d.TotalBytes())
	}
}

// TestAccountingDiffLog checks the trace counterpart of Diff: DiffLog
// returns exactly the records appended after the snapshot, and Snapshot
// itself stays a counters-only copy (no Trace/Log aliasing).
func TestAccountingDiffLog(t *testing.T) {
	var a Accounting
	a.Trace = true
	a.Record(0, ProtoS1AP, "before", 100)
	snap := a.Snapshot()
	if snap.Trace || snap.Log != nil {
		t.Errorf("Snapshot copied trace state: Trace=%v Log=%v", snap.Trace, snap.Log)
	}
	if got := a.DiffLog(snap); got != nil {
		t.Errorf("DiffLog with no new records = %v, want nil", got)
	}
	a.Record(sim.Time(time.Second), ProtoGTPv2, "after-1", 50)
	a.Record(sim.Time(2*time.Second), ProtoS1AP, "after-2", 30)
	got := a.DiffLog(snap)
	if len(got) != 2 || got[0].Name != "after-1" || got[1].Name != "after-2" {
		t.Fatalf("DiffLog = %+v, want the two post-snapshot records", got)
	}
	// A stale snapshot (taken before records the log no longer knows
	// about, e.g. from another Accounting) must not panic.
	if got := a.DiffLog(Accounting{logLen: 99}); got != nil {
		t.Errorf("DiffLog past the log end = %v, want nil", got)
	}
}

func TestGBRAdmissionControl(t *testing.T) {
	tb := buildTestbed(t, time.Hour)
	// Constrain the edge PGW-U to 10 Mbps of guaranteed rate and define a
	// GBR service needing 6 Mbps per bearer: the first UE is admitted, the
	// second rejected.
	tb.core.PGWC.Plane("edge-pgw").GBRCapacityBps = 10_000_000
	tb.core.PCRF.AddRule(PolicyRule{
		ServiceID: "gbr-video", QCI: 1, ARP: 2, Precedence: 5,
		GuaranteedUL: 2_000_000, GuaranteedDL: 4_000_000,
	})
	tb.attach(t)

	request := func() error {
		var reqErr error
		done := false
		tb.core.PCRF.RequestDedicatedBearer("gbr-video", tb.ue.Addr(), tb.ciHost.Node.Addr(),
			"edge-sgw", "edge-pgw", func(_ uint8, err error) { reqErr, done = err, true })
		tb.eng.RunFor(time.Second)
		if !done {
			t.Fatal("request did not complete")
		}
		return reqErr
	}
	if err := request(); err != nil {
		t.Fatalf("first GBR bearer rejected: %v", err)
	}
	if got := tb.core.PGWC.Plane("edge-pgw").GBRInUse(); got != 6_000_000 {
		t.Errorf("GBR in use = %d, want 6 Mbps", got)
	}

	// Second UE requesting the same service must be rejected.
	ue2N := tb.nw.AddNode("ue2", pkt.AddrFrom(172, 16, 0, 3))
	ue2 := NewUE(ue2N, "001010000000002")
	tb.core.HSS.Provision(Subscriber{IMSI: ue2.IMSI})
	tb.enb.ConnectUE(ue2, netsim.LinkConfig{Propagation: radioDelay})
	var attachErr error
	ue2.Attach("core-sgw", "core-pgw", func(err error) { attachErr = err })
	tb.eng.RunFor(2 * time.Second)
	if attachErr != nil {
		t.Fatal(attachErr)
	}
	var secondErr error
	secondDone := false
	tb.core.PCRF.RequestDedicatedBearer("gbr-video", ue2.Addr(), tb.ciHost.Node.Addr(),
		"edge-sgw", "edge-pgw", func(_ uint8, err error) { secondErr, secondDone = err, true })
	tb.eng.RunFor(time.Second)
	if !secondDone || secondErr == nil {
		t.Fatalf("second GBR bearer should be rejected (done=%v err=%v)", secondDone, secondErr)
	}

	// Releasing the first bearer frees the capacity.
	var delErr error
	tb.core.PCRF.RequestBearerTermination(tb.ue.Addr(), tb.ciHost.Node.Addr(), func(err error) { delErr = err })
	tb.eng.RunFor(time.Second)
	if delErr != nil {
		t.Fatal(delErr)
	}
	if got := tb.core.PGWC.Plane("edge-pgw").GBRInUse(); got != 0 {
		t.Errorf("GBR in use after release = %d", got)
	}
	if err := request(); err != nil {
		t.Errorf("re-admission after release failed: %v", err)
	}
}

func TestNonGBRBearersSkipAdmission(t *testing.T) {
	tb := buildTestbed(t, time.Hour)
	tb.core.PGWC.Plane("edge-pgw").GBRCapacityBps = 1 // essentially zero
	tb.attach(t)
	// The retail-ar rule is non-GBR (QCI 5): always admitted.
	ebi := tb.dedicate(t)
	if ebi != EBIDedicated {
		t.Errorf("non-GBR bearer not admitted: ebi=%d", ebi)
	}
}

func TestBearerMBREnforcedAtPGW(t *testing.T) {
	tb := buildTestbed(t, time.Hour)
	tb.core.PCRF.AddRule(PolicyRule{
		ServiceID: "capped-ar", QCI: pkt.QCIMEC, ARP: 2, Precedence: 6,
		MaxUL: 5_000_000,
	})
	tb.attach(t)
	var derr error
	done := false
	tb.core.PCRF.RequestDedicatedBearer("capped-ar", tb.ue.Addr(), tb.ciHost.Node.Addr(),
		"edge-sgw", "edge-pgw", func(_ uint8, err error) { derr, done = err, true })
	tb.eng.RunFor(2 * time.Second)
	if !done || derr != nil {
		t.Fatalf("bearer: done=%v err=%v", done, derr)
	}

	// Offer 30 Mbps of uplink CI traffic: the PGW-U meter polices to 5.
	sink := netsim.NewSink(tb.ciHost, 9100)
	src := netsim.NewCBRSource(tb.ue.Host, tb.ciHost.Node.Addr(), 9100, 1250)
	src.Start(30e6)
	tb.eng.RunFor(3 * time.Second)
	src.Stop()
	tb.eng.RunFor(200 * time.Millisecond)
	got := sink.ThroughputBps()
	if got < 4e6 || got > 6e6 {
		t.Errorf("policed uplink = %.2f Mbps, want ≈5 (MBR)", got/1e6)
	}
}

func TestDetachTearsDownEverything(t *testing.T) {
	tb := buildTestbed(t, time.Hour)
	tb.attach(t)
	tb.dedicate(t)
	if tb.coreSGW.FlowCount() == 0 || tb.edgeSGW.FlowCount() == 0 {
		t.Fatal("flows missing before detach")
	}
	done := false
	if err := tb.ue.Detach(func() { done = true }); err != nil {
		t.Fatal(err)
	}
	tb.eng.RunFor(time.Second)
	if !done {
		t.Fatal("detach did not complete")
	}
	if tb.ue.Attached() {
		t.Error("UE still attached")
	}
	if tb.core.Session(tb.ue.IMSI) != nil {
		t.Error("session survived detach")
	}
	if tb.core.SessionByIP(tb.ue.Addr()) != nil {
		t.Error("IP binding survived detach")
	}
	switches := map[string]*sdn.Switch{
		"core-sgw": tb.coreSGW, "core-pgw": tb.corePGW,
		"edge-sgw": tb.edgeSGW, "edge-pgw": tb.edgePGW,
	}
	names := make([]string, 0, len(switches))
	for name := range switches {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if sw := switches[name]; sw.FlowCount() != 0 {
			t.Errorf("%s still has %d flows", name, sw.FlowCount())
		}
	}
	// Traffic no longer flows.
	pg := netsim.NewPinger(tb.ue.Host, tb.inetHost.Node.Addr(), 64, 5200)
	pg.SendOne()
	tb.eng.RunFor(time.Second)
	if pg.Received != 0 {
		t.Error("ping delivered after detach")
	}
	// Re-attach works and restores connectivity.
	tb.attach(t)
	pg2 := netsim.NewPinger(tb.ue.Host, tb.inetHost.Node.Addr(), 64, 5201)
	pg2.SendOne()
	tb.eng.RunFor(time.Second)
	if pg2.Received != 1 {
		t.Error("ping lost after re-attach")
	}
}

func TestDetachWhileNotAttached(t *testing.T) {
	tb := buildTestbed(t, time.Hour)
	if err := tb.ue.Detach(nil); err == nil {
		t.Error("detach before attach accepted")
	}
}

func TestDedicatedBearerActivationWhileIdle(t *testing.T) {
	// An MRS/PCRF-triggered bearer activation for an idle UE must first
	// page it awake, then complete the E-RAB setup after promotion.
	tb := buildTestbed(t, 3*time.Second)
	tb.attach(t)
	sess := tb.core.Session(tb.ue.IMSI)
	tb.eng.RunFor(5 * time.Second)
	if sess.State != StateIdle {
		t.Fatalf("state = %v", sess.State)
	}

	var ebi uint8
	var derr error
	done := false
	tb.core.PCRF.RequestDedicatedBearer("retail-ar", tb.ue.Addr(), tb.ciHost.Node.Addr(),
		"edge-sgw", "edge-pgw", func(e uint8, err error) { ebi, derr, done = e, err, true })
	tb.eng.RunFor(3 * time.Second)
	if !done {
		t.Fatal("activation did not complete")
	}
	if derr != nil {
		t.Fatalf("activation: %v", derr)
	}
	if ebi != EBIDedicated {
		t.Errorf("ebi = %d", ebi)
	}
	if tb.core.MME.Pagings == 0 {
		t.Error("idle UE was not paged for bearer activation")
	}
	if sess.State != StateConnected {
		t.Errorf("state = %v after activation", sess.State)
	}
	// The new bearer carries traffic.
	pg := netsim.NewPinger(tb.ue.Host, tb.ciHost.Node.Addr(), 64, 5300)
	pg.SendOne()
	tb.eng.RunFor(time.Second)
	if pg.Received != 1 {
		t.Error("CI ping lost after idle-time activation")
	}
}
