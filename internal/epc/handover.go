package epc

import (
	"fmt"
	"time"

	"acacia/internal/pkt"
)

// S1-based handover (TS 23.401 §5.5.1): the serving eNB reports the UE
// moving out of its cell, the MME prepares every bearer at the target eNB,
// the UE retunes, and the SGW-C repoints the downlink tunnels. The SGW
// stays the anchor — exactly the role the paper's background section
// assigns it — so UE IP and bearers (including the dedicated MEC bearer)
// survive the move.

// handoverInterruption is the radio-layer outage while the UE detunes from
// the source cell and synchronizes to the target (detach + RACH).
const handoverInterruption = 30 * time.Millisecond

// Handovers counts completed handovers (on the MME).

// Handover moves sess from its serving eNB to target. done (may be nil)
// fires when the path switch completes or the preparation fails.
func (m *MME) Handover(sess *Session, target *ENB, done func(error)) {
	c := m.core
	if sess.State != StateConnected {
		if done != nil {
			done(fmt.Errorf("epc: cannot hand over session in state %v", sess.State))
		}
		return
	}
	source := sess.ENB
	if source == target {
		if done != nil {
			done(fmt.Errorf("epc: source and target eNB are both %s", target.Name()))
		}
		return
	}
	tctx := target.byUEIP[sess.UE.Addr()]
	if tctx == nil {
		if done != nil {
			done(fmt.Errorf("epc: UE %s has no radio link to %s", sess.IMSI, target.Name()))
		}
		return
	}

	pr := newProc(done)
	// 1. Source eNB -> MME: Handover Required.
	required := &pkt.S1APMsg{
		Procedure: pkt.S1APHandoverRequired,
		ENBUEID:   sess.ENBUEID, MMEUEID: sess.MMEUEID, Cause: 2, // radio reasons
	}
	c.sendS1AP(pr, source.ep, c.mmeEP, required, func() {
		// 2. MME -> target eNB: Handover Request carrying every E-RAB.
		var erabs []pkt.ERABItem
		for _, b := range sess.OrderedBearers() {
			erabs = append(erabs, pkt.ERABItem{
				ERABID: b.EBI, QoS: b.QoS,
				Transport: pkt.FTEID{IfaceType: pkt.FTEIDIfaceS1USGW, TEID: b.S1UL, Addr: b.Planes.SGW.Addr()},
			})
		}
		hoReq := &pkt.S1APMsg{
			Procedure: pkt.S1APHandoverRequest,
			ENBUEID:   sess.ENBUEID, MMEUEID: sess.MMEUEID,
			ERABs: erabs,
		}
		c.sendS1AP(pr, c.mmeEP, target.ep, hoReq, func() {
			// Target admits the bearers: new downlink TEIDs.
			var ackItems []pkt.ERABItem
			for _, b := range sess.OrderedBearers() {
				b.S1DL = target.attachBearer(sess, b)
				ackItems = append(ackItems, pkt.ERABItem{
					ERABID:    b.EBI,
					Transport: pkt.FTEID{IfaceType: pkt.FTEIDIfaceS1UeNodeB, TEID: b.S1DL, Addr: target.Addr()},
				})
			}
			// 3. Target -> MME: Handover Request Acknowledge.
			ack := &pkt.S1APMsg{
				Procedure: pkt.S1APHandoverRequestAck,
				ENBUEID:   sess.ENBUEID, MMEUEID: sess.MMEUEID,
				ERABs: ackItems,
			}
			c.sendS1AP(pr, target.ep, c.mmeEP, ack, func() {
				// 4. MME -> source eNB: Handover Command; the source tells
				// the UE to retune (RRC reconfiguration with mobility).
				// The Target-to-Source transparent container carries the
				// RRC reconfiguration (opaque to the MME).
				cmd := &pkt.S1APMsg{
					Procedure: pkt.S1APHandoverCommand,
					ENBUEID:   sess.ENBUEID, MMEUEID: sess.MMEUEID,
					NAS: make([]byte, 90),
				}
				c.sendS1AP(pr, c.mmeEP, source.ep, cmd, func() {
					source.releaseContext(sess)
					c.Eng.Schedule(handoverInterruption, pr.step(func() {
						sess.UE.switchRadio(target, tctx.uePort)
						sess.ENB = target
						// 5. Target -> MME: Handover Notify.
						notify := &pkt.S1APMsg{
							Procedure: pkt.S1APHandoverNotify,
							ENBUEID:   sess.ENBUEID, MMEUEID: sess.MMEUEID,
						}
						c.sendS1AP(pr, target.ep, c.mmeEP, notify, func() {
							m.pathSwitch(pr, sess)
						})
					}))
				})
			})
		})
	})
}

// pathSwitch repoints the SGW-U downlink rules at the new eNB (Modify
// Bearer Request/Response on S11).
func (m *MME) pathSwitch(pr *proc, sess *Session) {
	c := m.core
	var items []pkt.BearerContext
	for _, b := range sess.OrderedBearers() {
		items = append(items, pkt.BearerContext{
			EBI:    b.EBI,
			FTEIDs: []pkt.FTEID{{IfaceType: pkt.FTEIDIfaceS1UeNodeB, TEID: b.S1DL, Addr: sess.ENB.Addr()}},
		})
	}
	req := &pkt.GTPv2Msg{Type: pkt.GTPv2ModifyBearerRequest, IMSI: sess.IMSI, Bearers: items}
	c.sendGTPv2(pr, c.mmeEP, c.sgwEP, req, func() {
		for _, b := range sess.OrderedBearers() {
			c.installSGWDownlink(sess, b)
		}
		resp := &pkt.GTPv2Msg{Type: pkt.GTPv2ModifyBearerResponse, Cause: pkt.GTPv2CauseAccepted}
		c.sendGTPv2(pr, c.sgwEP, c.mmeEP, resp, func() {
			m.Handovers++
			pr.finish(nil)
		})
	})
}
