package epc

import (
	"fmt"
	"time"

	"acacia/internal/pkt"
	"acacia/internal/sim"
)

// S1-based handover (TS 23.401 §5.5.1): the serving eNB reports the UE
// moving out of its cell, the MME prepares every bearer at the target eNB,
// the UE retunes, and the SGW-C repoints the downlink tunnels. The SGW
// stays the anchor — exactly the role the paper's background section
// assigns it — so UE IP and bearers (including the dedicated MEC bearer)
// survive the move.
//
// Every leg runs over the lossy ctl transport, so each state mutation
// registers a pr.onError compensation; a terminal timeout on any leg
// unwinds them in reverse order, leaving the session fully anchored at the
// source (or cleanly failed) instead of half-switched with leaked
// target-eNB contexts.

// handoverInterruption is the radio-layer outage while the UE detunes from
// the source cell and synchronizes to the target (detach + RACH).
const handoverInterruption = 30 * time.Millisecond

// Handover moves sess from its serving eNB to target. done (may be nil)
// fires when the path switch completes or the preparation fails.
func (m *MME) Handover(sess *Session, target *ENB, done func(error)) {
	c := m.core
	if sess.State != StateConnected {
		if done != nil {
			done(fmt.Errorf("epc: cannot hand over session in state %v", sess.State))
		}
		return
	}
	source := sess.ENB
	if source == target {
		if done != nil {
			done(fmt.Errorf("epc: source and target eNB are both %s", target.Name()))
		}
		return
	}
	tctx := target.byUEIP[sess.UE.Addr()]
	if tctx == nil {
		if done != nil {
			done(fmt.Errorf("epc: UE %s has no radio link to %s", sess.IMSI, target.Name()))
		}
		return
	}
	srcCtx := source.byUEIP[sess.UE.Addr()]

	// The interruption gap runs from the source context release (UE detunes)
	// to procedure end; only successful handovers observe it.
	var gapStart sim.Time
	var gapStarted bool
	m.hoScope.Emit("start", sess.IMSI+" "+source.Name()+"->"+target.Name())
	pr := newProc(func(err error) {
		if err != nil {
			m.hoFailed.Inc()
			m.hoScope.Emit("failed", sess.IMSI+" "+err.Error())
		} else {
			m.Handovers++
			m.hoCompleted.Inc()
			if gapStarted {
				m.hoGap.Observe(float64(c.Eng.Now()-gapStart) / float64(time.Millisecond))
			}
			m.hoScope.Emit("complete", sess.IMSI+" "+source.Name()+"->"+target.Name())
			if m.OnHandoverComplete != nil {
				m.OnHandoverComplete(sess, source, target)
			}
		}
		if done != nil {
			done(err)
		}
	})

	// Bearer pointers and their pre-handover S1 downlink TEIDs, captured
	// once for the compensations (OrderedBearers scratch must not be
	// retained across legs).
	var hoBearers []*Bearer
	var oldTEIDs []uint32

	// 1. Source eNB -> MME: Handover Required.
	required := &pkt.S1APMsg{
		Procedure: pkt.S1APHandoverRequired,
		ENBUEID:   sess.ENBUEID, MMEUEID: sess.MMEUEID, Cause: 2, // radio reasons
	}
	c.sendS1AP(pr, source.ep, c.mmeEP, required, func() {
		// 2. MME -> target eNB: Handover Request carrying every E-RAB.
		var erabs []pkt.ERABItem
		for _, b := range sess.OrderedBearers() {
			erabs = append(erabs, pkt.ERABItem{
				ERABID: b.EBI, QoS: b.QoS,
				Transport: pkt.FTEID{IfaceType: pkt.FTEIDIfaceS1USGW, TEID: b.S1UL, Addr: b.Planes.SGW.Addr()},
			})
		}
		hoReq := &pkt.S1APMsg{
			Procedure: pkt.S1APHandoverRequest,
			ENBUEID:   sess.ENBUEID, MMEUEID: sess.MMEUEID,
			ERABs: erabs,
		}
		c.sendS1AP(pr, c.mmeEP, target.ep, hoReq, func() {
			// Target admits the bearers: new downlink TEIDs.
			var ackItems []pkt.ERABItem
			for _, b := range sess.OrderedBearers() {
				hoBearers = append(hoBearers, b)
				oldTEIDs = append(oldTEIDs, b.S1DL)
				b.S1DL = target.attachBearer(sess, b)
				ackItems = append(ackItems, pkt.ERABItem{
					ERABID:    b.EBI,
					Transport: pkt.FTEID{IfaceType: pkt.FTEIDIfaceS1UeNodeB, TEID: b.S1DL, Addr: target.Addr()},
				})
			}
			// Compensation: drop the admitted target contexts and put the
			// source TEIDs back on the bearers.
			pr.onError(func() {
				target.releaseContext(sess)
				for i, b := range hoBearers {
					b.S1DL = oldTEIDs[i]
				}
			})
			// 3. Target -> MME: Handover Request Acknowledge.
			ack := &pkt.S1APMsg{
				Procedure: pkt.S1APHandoverRequestAck,
				ENBUEID:   sess.ENBUEID, MMEUEID: sess.MMEUEID,
				ERABs: ackItems,
			}
			c.sendS1AP(pr, target.ep, c.mmeEP, ack, func() {
				// 4. MME -> source eNB: Handover Command; the source tells
				// the UE to retune (RRC reconfiguration with mobility).
				// The Target-to-Source transparent container carries the
				// RRC reconfiguration (opaque to the MME).
				cmd := &pkt.S1APMsg{
					Procedure: pkt.S1APHandoverCommand,
					ENBUEID:   sess.ENBUEID, MMEUEID: sess.MMEUEID,
					NAS: make([]byte, 90),
				}
				c.sendS1AP(pr, c.mmeEP, source.ep, cmd, func() {
					source.releaseContext(sess)
					gapStarted, gapStart = true, c.Eng.Now()
					// Compensation: re-adopt the session at the source with
					// the original TEIDs (tolerates the source context being
					// gone — restoreBearerMapping nil-checks it).
					pr.onError(func() {
						for i, b := range hoBearers {
							source.restoreBearerMapping(sess, b.EBI, oldTEIDs[i])
						}
					})
					c.Eng.Schedule(handoverInterruption, pr.step(func() {
						sess.UE.switchRadio(target, tctx.uePort)
						sess.ENB = target
						// Compensation: retune the UE back to the source.
						pr.onError(func() {
							sess.ENB = source
							if srcCtx != nil {
								sess.UE.switchRadio(source, srcCtx.uePort)
							}
						})
						// 5. Target -> MME: Handover Notify.
						notify := &pkt.S1APMsg{
							Procedure: pkt.S1APHandoverNotify,
							ENBUEID:   sess.ENBUEID, MMEUEID: sess.MMEUEID,
						}
						c.sendS1AP(pr, target.ep, c.mmeEP, notify, func() {
							m.pathSwitch(pr, sess, source, hoBearers, oldTEIDs)
						})
					}))
				})
			})
		})
	})
}

// pathSwitch repoints the SGW-U downlink rules at the new eNB (Modify
// Bearer Request/Response on S11). source and the captured TEIDs feed the
// compensation that repoints the rules back if the procedure dies after the
// switch.
func (m *MME) pathSwitch(pr *proc, sess *Session, source *ENB, hoBearers []*Bearer, oldTEIDs []uint32) {
	c := m.core
	var items []pkt.BearerContext
	for _, b := range sess.OrderedBearers() {
		items = append(items, pkt.BearerContext{
			EBI:    b.EBI,
			FTEIDs: []pkt.FTEID{{IfaceType: pkt.FTEIDIfaceS1UeNodeB, TEID: b.S1DL, Addr: sess.ENB.Addr()}},
		})
	}
	req := &pkt.GTPv2Msg{Type: pkt.GTPv2ModifyBearerRequest, IMSI: sess.IMSI, Bearers: items}
	c.sendGTPv2(pr, c.mmeEP, c.sgwEP, req, func() {
		for _, b := range sess.OrderedBearers() {
			c.installSGWDownlink(sess, b)
		}
		// Compensation: reinstall the downlink rules toward the source eNB
		// and its TEIDs (installFlow replaces on identical match+priority).
		pr.onError(func() {
			for i, b := range hoBearers {
				c.installSGWDownlinkTo(sess, b, oldTEIDs[i], source.Addr())
			}
		})
		resp := &pkt.GTPv2Msg{Type: pkt.GTPv2ModifyBearerResponse, Cause: pkt.GTPv2CauseAccepted}
		c.sendGTPv2(pr, c.sgwEP, c.mmeEP, resp, func() {
			pr.finish(nil)
		})
	})
}
