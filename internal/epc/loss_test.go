package epc

import (
	"testing"
	"time"

	"acacia/internal/netsim"
)

// Control-plane robustness: the transactional transport must carry EPC
// procedures to completion across a lossy control link, and fail loudly —
// exactly once, with cleaned-up state — when the link is unusable.

func TestAttachSurvivesLossyS11(t *testing.T) {
	tb := buildTestbed(t, IdleTimeout)
	tb.core.S11Link().SetLoss(0.1)
	tb.attach(t)
	tb.dedicate(t)

	tr := tb.core.Transport()
	if tr.Timeouts() != 0 {
		t.Fatalf("%d transactions timed out at 10%% S11 loss", tr.Timeouts())
	}
	if tr.Retransmissions() == 0 {
		t.Fatal("no retransmissions despite S11 loss — recovery path untested")
	}
	// Only S11 is lossy, so every retransmission is attributable to a drop
	// there: a lost request or a lost ack each cost exactly one retry.
	s11 := tb.core.S11Link()
	drops := s11.StatsAB().Dropped + s11.StatsBA().Dropped
	if tr.Retransmissions() != drops {
		t.Errorf("retransmissions=%d, S11 drops=%d: should match with zero timeouts",
			tr.Retransmissions(), drops)
	}
	// A lost ack means the retransmitted request arrives twice.
	if drops > 0 && tr.Duplicates() == 0 && tr.Retransmissions() > s11.StatsAB().Dropped+s11.StatsBA().Dropped {
		t.Error("ack losses occurred but no duplicates were suppressed")
	}
}

func TestAttachFailsCleanlyOnDeadS11(t *testing.T) {
	tb := buildTestbed(t, IdleTimeout)
	tb.core.S11Link().SetLoss(1.0)

	var attachErr error
	doneCalls := 0
	tb.ue.Attach("core-sgw", "core-pgw", func(err error) {
		attachErr = err
		doneCalls++
	})
	tb.eng.RunFor(5 * time.Second) // no hang: bounded retries terminate

	if doneCalls != 1 {
		t.Fatalf("attach callback fired %d times, want exactly once", doneCalls)
	}
	if attachErr == nil {
		t.Fatal("attach succeeded over a dead S11 link")
	}
	if tb.core.Transport().Timeouts() == 0 {
		t.Error("no timeout recorded for the failed transaction")
	}
	if tb.ue.Attached() {
		t.Error("UE reports attached after a failed attach")
	}
	if tb.core.Session(tb.ue.IMSI) != nil {
		t.Error("failed attach left a session behind")
	}
}

func TestDedicatedBearerFailureReleasesResources(t *testing.T) {
	tb := buildTestbed(t, IdleTimeout)
	tb.attach(t)

	// Kill S11: the Create Bearer Request from the SGW-C cannot reach the
	// MME, so the activation must fail terminally and release the admitted
	// GBR capacity.
	tb.core.S11Link().SetLoss(1.0)
	var derr error
	doneCalls := 0
	tb.core.PCRF.RequestDedicatedBearer("retail-ar", tb.ue.Addr(), tb.ciHost.Node.Addr(),
		"edge-sgw", "edge-pgw", func(e uint8, err error) {
			derr = err
			doneCalls++
		})
	tb.eng.RunFor(5 * time.Second)
	if doneCalls != 1 {
		t.Fatalf("bearer callback fired %d times, want exactly once", doneCalls)
	}
	if derr == nil {
		t.Fatal("dedicated bearer activation succeeded over a dead S11 link")
	}
	if got := len(tb.ue.Session().DedicatedBearers()); got != 0 {
		t.Fatalf("%d dedicated bearers exist after failed activation", got)
	}

	// Heal the link: a retry must succeed, proving the failed attempt
	// leaked neither GBR budget nor session state.
	tb.core.S11Link().SetLoss(0)
	tb.dedicate(t)
}

func TestTraceSeqsMonotonicPerPath(t *testing.T) {
	tb := buildTestbed(t, 500*time.Millisecond)
	tb.core.Acct.Trace = true
	tb.attach(t)
	tb.dedicate(t)
	// Idle release + promotion adds more signalling on the same paths.
	tb.eng.RunFor(2 * time.Second)
	netsim.NewPinger(tb.ue.Host, tb.inetHost.Node.Addr(), 64, 5300).SendOne()
	tb.eng.RunFor(2 * time.Second)

	last := map[string]uint32{} // "proto|path" -> last seq
	n := 0
	for _, r := range tb.core.Acct.Log {
		if r.Proto != ProtoS1AP && r.Proto != ProtoGTPv2 {
			continue
		}
		if r.Path == "" {
			t.Fatalf("traced %s %s has no transport path", r.Proto, r.Name)
		}
		if r.Seq == 0 {
			t.Fatalf("traced %s %s on %s has seq 0 — not allocator-issued", r.Proto, r.Name, r.Path)
		}
		key := r.Proto.String() + "|" + r.Path
		if r.Seq <= last[key] {
			t.Fatalf("%s on %s: seq %d after %d — per-peer sequences must be strictly monotonic",
				r.Name, r.Path, r.Seq, last[key])
		}
		last[key] = r.Seq
		n++
	}
	if n == 0 {
		t.Fatal("trace captured no control messages")
	}
	// Loss-free runs traverse their link on the first attempt.
	for _, r := range tb.core.Acct.Log {
		if r.Retrans != 0 {
			t.Errorf("%s on %s reports %d retransmissions on a loss-free run", r.Name, r.Path, r.Retrans)
		}
	}
}
