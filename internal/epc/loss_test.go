package epc

import (
	"testing"
	"time"

	"acacia/internal/netsim"
)

// Control-plane robustness: the transactional transport must carry EPC
// procedures to completion across a lossy control link, and fail loudly —
// exactly once, with cleaned-up state — when the link is unusable.

func TestAttachSurvivesLossyS11(t *testing.T) {
	tb := buildTestbed(t, IdleTimeout)
	tb.core.S11Link().SetLoss(0.1)
	tb.attach(t)
	tb.dedicate(t)

	tr := tb.core.Transport()
	if tr.Timeouts() != 0 {
		t.Fatalf("%d transactions timed out at 10%% S11 loss", tr.Timeouts())
	}
	if tr.Retransmissions() == 0 {
		t.Fatal("no retransmissions despite S11 loss — recovery path untested")
	}
	// Only S11 is lossy, so every retransmission is attributable to a drop
	// there: a lost request or a lost ack each cost exactly one retry.
	s11 := tb.core.S11Link()
	drops := s11.StatsAB().Dropped + s11.StatsBA().Dropped
	if tr.Retransmissions() != drops {
		t.Errorf("retransmissions=%d, S11 drops=%d: should match with zero timeouts",
			tr.Retransmissions(), drops)
	}
	// A lost ack means the retransmitted request arrives twice.
	if drops > 0 && tr.Duplicates() == 0 && tr.Retransmissions() > s11.StatsAB().Dropped+s11.StatsBA().Dropped {
		t.Error("ack losses occurred but no duplicates were suppressed")
	}
}

func TestAttachFailsCleanlyOnDeadS11(t *testing.T) {
	tb := buildTestbed(t, IdleTimeout)
	tb.core.S11Link().SetLoss(1.0)

	var attachErr error
	doneCalls := 0
	tb.ue.Attach("core-sgw", "core-pgw", func(err error) {
		attachErr = err
		doneCalls++
	})
	tb.eng.RunFor(5 * time.Second) // no hang: bounded retries terminate

	if doneCalls != 1 {
		t.Fatalf("attach callback fired %d times, want exactly once", doneCalls)
	}
	if attachErr == nil {
		t.Fatal("attach succeeded over a dead S11 link")
	}
	if tb.core.Transport().Timeouts() == 0 {
		t.Error("no timeout recorded for the failed transaction")
	}
	if tb.ue.Attached() {
		t.Error("UE reports attached after a failed attach")
	}
	if tb.core.Session(tb.ue.IMSI) != nil {
		t.Error("failed attach left a session behind")
	}
}

func TestDedicatedBearerFailureReleasesResources(t *testing.T) {
	tb := buildTestbed(t, IdleTimeout)
	tb.attach(t)

	// Kill S11: the Create Bearer Request from the SGW-C cannot reach the
	// MME, so the activation must fail terminally and release the admitted
	// GBR capacity.
	tb.core.S11Link().SetLoss(1.0)
	var derr error
	doneCalls := 0
	tb.core.PCRF.RequestDedicatedBearer("retail-ar", tb.ue.Addr(), tb.ciHost.Node.Addr(),
		"edge-sgw", "edge-pgw", func(e uint8, err error) {
			derr = err
			doneCalls++
		})
	tb.eng.RunFor(5 * time.Second)
	if doneCalls != 1 {
		t.Fatalf("bearer callback fired %d times, want exactly once", doneCalls)
	}
	if derr == nil {
		t.Fatal("dedicated bearer activation succeeded over a dead S11 link")
	}
	if got := len(tb.ue.Session().DedicatedBearers()); got != 0 {
		t.Fatalf("%d dedicated bearers exist after failed activation", got)
	}

	// Heal the link: a retry must succeed, proving the failed attempt
	// leaked neither GBR budget nor session state.
	tb.core.S11Link().SetLoss(0)
	tb.dedicate(t)
}

// TestHandoverLossyLegsLeakNothing sweeps a kill time across the whole
// handover procedure — S1AP legs at ~2 ms spacing, the 30 ms radio
// interruption, and the GTPv2 path switch — and at each point kills every
// control link mid-flight. Whatever leg dies, the compensations must leave
// the session either fully at the source (usable, no target contexts, all
// downlink state repointed) or cleanly completed at the target; a healed
// retry must then succeed, proving no TEIDs or eNB contexts leaked.
func TestHandoverLossyLegsLeakNothing(t *testing.T) {
	failures, successes := 0, 0
	for killMS := 0; killMS <= 60; killMS += 3 {
		killAt := time.Duration(killMS) * time.Millisecond
		tb := buildTestbed(t, time.Hour)
		enb2 := withSecondENB(t, tb)
		tb.attach(t)
		tb.dedicate(t)
		sess := tb.core.Session(tb.ue.IMSI)
		srcMappings := len(tb.enb.byDLTEID)

		var hoErr error
		doneCalls := 0
		tb.eng.Schedule(killAt, func() {
			tb.enb.S1Link().SetLoss(1.0)
			enb2.S1Link().SetLoss(1.0)
			tb.core.S11Link().SetLoss(1.0)
		})
		tb.core.MME.Handover(sess, enb2, func(err error) {
			hoErr = err
			doneCalls++
		})
		tb.eng.RunFor(8 * time.Second) // bounded: terminal timeouts conclude the proc
		if doneCalls != 1 {
			t.Fatalf("kill@%v: handover callback fired %d times, want exactly once", killAt, doneCalls)
		}

		if hoErr != nil {
			failures++
			// Failed leg: fully unwound to the source.
			if sess.ENB != tb.enb {
				t.Fatalf("kill@%v: session half-switched, ENB=%s", killAt, sess.ENB.Name())
			}
			if sess.UE.ServingENB() != tb.enb {
				t.Fatalf("kill@%v: UE radio left at %s", killAt, sess.UE.ServingENB().Name())
			}
			if n := len(enb2.byDLTEID); n != 0 {
				t.Fatalf("kill@%v: %d bearer contexts leaked at the target eNB", killAt, n)
			}
			if n := len(tb.enb.byDLTEID); n != srcMappings {
				t.Fatalf("kill@%v: source eNB has %d downlink mappings, want %d", killAt, n, srcMappings)
			}
			for _, b := range sess.OrderedBearers() {
				key, ok := tb.enb.byDLTEID[b.S1DL]
				if !ok || key.ebi != b.EBI {
					t.Fatalf("kill@%v: bearer %d S1DL %d not mapped at the source", killAt, b.EBI, b.S1DL)
				}
			}
			if tb.core.MME.Handovers != 0 {
				t.Fatalf("kill@%v: failed handover counted as completed", killAt)
			}
		} else {
			successes++
			// Late kill: the procedure finished first and must be complete.
			if sess.ENB != enb2 || sess.UE.ServingENB() != enb2 {
				t.Fatalf("kill@%v: handover reported success but session at %s", killAt, sess.ENB.Name())
			}
		}

		// Heal and prove the session is usable on its current anchor.
		tb.enb.S1Link().SetLoss(0)
		enb2.S1Link().SetLoss(0)
		tb.core.S11Link().SetLoss(0)
		pg := netsim.NewPinger(tb.ue.Host, tb.ciHost.Node.Addr(), 64, uint16(5400+killMS))
		pg.SendOne()
		tb.eng.RunFor(500 * time.Millisecond)
		if pg.Received != 1 {
			t.Fatalf("kill@%v: post-recovery CI ping lost (handover err=%v)", killAt, hoErr)
		}

		// A failed handover must be retryable: nothing leaked blocks it.
		if hoErr != nil {
			var retryErr error
			retried := false
			tb.core.MME.Handover(sess, enb2, func(err error) { retryErr, retried = err, true })
			tb.eng.RunFor(time.Second)
			if !retried || retryErr != nil {
				t.Fatalf("kill@%v: healed retry failed: done=%v err=%v", killAt, retried, retryErr)
			}
			if sess.ENB != enb2 {
				t.Fatalf("kill@%v: retry left session at %s", killAt, sess.ENB.Name())
			}
		}
	}
	// The sweep must exercise both outcomes or it proves nothing.
	if failures == 0 || successes == 0 {
		t.Fatalf("sweep degenerate: %d failures, %d successes", failures, successes)
	}
}

func TestTraceSeqsMonotonicPerPath(t *testing.T) {
	tb := buildTestbed(t, 500*time.Millisecond)
	tb.core.Acct.Trace = true
	tb.attach(t)
	tb.dedicate(t)
	// Idle release + promotion adds more signalling on the same paths.
	tb.eng.RunFor(2 * time.Second)
	netsim.NewPinger(tb.ue.Host, tb.inetHost.Node.Addr(), 64, 5300).SendOne()
	tb.eng.RunFor(2 * time.Second)

	last := map[string]uint32{} // "proto|path" -> last seq
	n := 0
	for _, r := range tb.core.Acct.Log {
		if r.Proto != ProtoS1AP && r.Proto != ProtoGTPv2 {
			continue
		}
		if r.Path == "" {
			t.Fatalf("traced %s %s has no transport path", r.Proto, r.Name)
		}
		if r.Seq == 0 {
			t.Fatalf("traced %s %s on %s has seq 0 — not allocator-issued", r.Proto, r.Name, r.Path)
		}
		key := r.Proto.String() + "|" + r.Path
		if r.Seq <= last[key] {
			t.Fatalf("%s on %s: seq %d after %d — per-peer sequences must be strictly monotonic",
				r.Name, r.Path, r.Seq, last[key])
		}
		last[key] = r.Seq
		n++
	}
	if n == 0 {
		t.Fatal("trace captured no control messages")
	}
	// Loss-free runs traverse their link on the first attempt.
	for _, r := range tb.core.Acct.Log {
		if r.Retrans != 0 {
			t.Errorf("%s on %s reports %d retransmissions on a loss-free run", r.Name, r.Path, r.Retrans)
		}
	}
}
