package epc

import (
	"fmt"
	"time"

	"acacia/internal/netsim"
	"acacia/internal/pkt"
	"acacia/internal/sdn"
	"acacia/internal/sim"
)

// Config wires a Core into its simulation substrate.
type Config struct {
	Eng *sim.Engine
	Net *netsim.Network
	Ctl *sdn.Controller
	// S1APDelay is the one-way eNB<->MME control latency.
	S1APDelay time.Duration
	// GTPv2Delay is the one-way latency between core control entities.
	GTPv2Delay time.Duration
	// IdleTimeout overrides the LTE inactivity timeout (tests shorten it);
	// zero selects the standard 11.576 s.
	IdleTimeout time.Duration
}

// Core is the evolved packet core control plane: one MME, HSS and PCRF,
// plus split gateway control planes managing any number of user planes.
type Core struct {
	cfg  Config
	Eng  *sim.Engine
	Ctl  *sdn.Controller
	Acct *Accounting

	HSS  *HSS
	PCRF *PCRF
	MME  *MME
	SGWC *SGWC
	PGWC *PGWC

	sessions map[string]*Session // by IMSI
	byIP     map[pkt.Addr]*Session
	nextUEID uint32
}

// NewCore builds an empty core.
func NewCore(cfg Config) *Core {
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = IdleTimeout
	}
	c := &Core{
		cfg:      cfg,
		Eng:      cfg.Eng,
		Ctl:      cfg.Ctl,
		Acct:     NewAccounting(cfg.Eng.Metrics()),
		sessions: make(map[string]*Session),
		byIP:     make(map[pkt.Addr]*Session),
	}
	c.HSS = &HSS{subscribers: make(map[string]Subscriber)}
	c.PCRF = &PCRF{core: c, rules: make(map[string]PolicyRule)}
	c.MME = &MME{core: c}
	c.SGWC = &SGWC{core: c, planes: make(map[string]*UserPlane)}
	c.PGWC = &PGWC{core: c, planes: make(map[string]*UserPlane)}
	if cfg.Ctl != nil {
		cfg.Ctl.OnPacketIn = c.onPacketIn
	}
	return c
}

// IdleTimeout reports the configured inactivity timeout.
func (c *Core) IdleTimeout() time.Duration { return c.cfg.IdleTimeout }

// Session returns the session for an IMSI, or nil.
func (c *Core) Session(imsi string) *Session { return c.sessions[imsi] }

// SessionByIP returns the session owning a UE IP, or nil.
func (c *Core) SessionByIP(ip pkt.Addr) *Session { return c.byIP[ip] }

// sendS1AP serializes, accounts and delivers an eNB<->MME message.
func (c *Core) sendS1AP(m *pkt.S1APMsg, deliver func()) {
	b := m.Encode(nil)
	c.Acct.Record(c.Eng.Now(), ProtoS1AP, m.Procedure.String(), len(b))
	c.Eng.Schedule(c.cfg.S1APDelay, deliver)
}

// sendGTPv2 serializes, accounts and delivers a core control message.
func (c *Core) sendGTPv2(m *pkt.GTPv2Msg, deliver func()) {
	b := m.Encode(nil)
	c.Acct.Record(c.Eng.Now(), ProtoGTPv2, m.Type.String(), len(b))
	c.Eng.Schedule(c.cfg.GTPv2Delay, deliver)
}

// onPacketIn handles GW-U table misses. The only expected miss is downlink
// traffic for an idle UE arriving at its SGW-U: buffer it and page.
func (c *Core) onPacketIn(sw *sdn.Switch, inPort uint32, p *netsim.Packet, tunnelID uint64) {
	// Identify the UE by inner destination (downlink view).
	sess := c.byIP[p.Flow.Dst]
	if sess == nil {
		return // not ours; drop
	}
	c.SGWC.bufferAndPage(sess, sw, p, tunnelID)
}

// SessionState is the RRC/S1 state of a UE session.
type SessionState uint8

// Session states.
const (
	StateDetached SessionState = iota
	StateConnecting
	StateConnected
	StateIdle
	StatePromoting
)

// String names the state.
func (s SessionState) String() string {
	switch s {
	case StateDetached:
		return "detached"
	case StateConnecting:
		return "connecting"
	case StateConnected:
		return "connected"
	case StateIdle:
		return "idle"
	case StatePromoting:
		return "promoting"
	default:
		return fmt.Sprintf("SessionState(%d)", uint8(s))
	}
}

// Bearer is the authoritative record of one EPS bearer. Individual control
// entities exchange real messages to mutate it, but the state itself is
// kept in one place rather than copied per entity.
type Bearer struct {
	EBI uint8
	QoS pkt.BearerQoS
	// TFT is nil for the default bearer (match-everything-else).
	TFT *pkt.TFT
	// SGWPlane/PGWPlane name the user planes serving this bearer; the
	// dedicated MEC bearer uses local (edge) planes.
	SGWPlane, PGWPlane string
	// CIServer is the dedicated bearer's remote endpoint filter anchor.
	CIServer pkt.Addr

	// GTP tunnel endpoints.
	S1UL uint32 // allocated by SGW-C; eNB sends uplink with this TEID
	S1DL uint32 // allocated by eNB; SGW-U sends downlink with this TEID
	S5UL uint32 // allocated by PGW-C
	S5DL uint32 // allocated by SGW-C
}

// Session is one UE's EPC context.
type Session struct {
	IMSI    string
	UEIP    pkt.Addr
	State   SessionState
	ENB     *ENB
	UE      *UE
	MMEUEID uint32
	ENBUEID uint32
	Bearers map[uint8]*Bearer

	// Timestamps for observability.
	AttachedAt  sim.Time
	LastStateAt sim.Time

	// onConnected callbacks run once when the session (re)enters
	// StateConnected — promotion waiters and attach continuations.
	onConnected []func()
}

// Bearer returns the bearer with the given EBI, or nil.
func (s *Session) Bearer(ebi uint8) *Bearer { return s.Bearers[ebi] }

// DedicatedBearers lists non-default bearers in EBI order.
func (s *Session) DedicatedBearers() []*Bearer {
	var out []*Bearer
	for ebi := uint8(EBIDedicated); ebi < 16; ebi++ {
		if b, ok := s.Bearers[ebi]; ok {
			out = append(out, b)
		}
	}
	return out
}

// setState transitions the session and records the transition on the
// engine's telemetry timeline (epc/session/<IMSI> state events), giving
// -timeline exports the full RRC/S1 state history of every UE.
func (s *Session) setState(eng *sim.Engine, st SessionState) {
	s.State = st
	s.LastStateAt = eng.Now()
	eng.Metrics().Scope("epc/session").Scope(s.IMSI).Emit("state", st.String())
	if st == StateConnected {
		cbs := s.onConnected
		s.onConnected = nil
		for _, cb := range cbs {
			cb()
		}
	}
}

// whenConnected runs cb immediately if connected, otherwise once the
// session next reaches StateConnected.
func (s *Session) whenConnected(cb func()) {
	if s.State == StateConnected {
		cb()
		return
	}
	s.onConnected = append(s.onConnected, cb)
}
