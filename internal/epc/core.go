package epc

import (
	"fmt"
	"time"

	"acacia/internal/ctl"
	"acacia/internal/netsim"
	"acacia/internal/pkt"
	"acacia/internal/sdn"
	"acacia/internal/sim"
	"acacia/internal/telemetry"
)

// Config wires a Core into its simulation substrate.
type Config struct {
	Eng *sim.Engine
	Net *netsim.Network
	Ctl *sdn.Controller
	// S1APDelay is the one-way eNB<->MME control latency: the propagation
	// delay of each eNB's S1-MME control link.
	S1APDelay time.Duration
	// GTPv2Delay is the one-way latency between core control entities: the
	// propagation delay of the S11 and S5 control links.
	GTPv2Delay time.Duration
	// IdleTimeout overrides the LTE inactivity timeout (tests shorten it);
	// zero selects the standard 11.576 s.
	IdleTimeout time.Duration
}

// ctlLinkBps is the serialization rate of every control-plane link.
// Control messages are small, so serialization adds microseconds on top of
// the configured propagation delays.
const ctlLinkBps = 1e9

// Core is the evolved packet core control plane: one MME, HSS and PCRF,
// plus split gateway control planes managing any number of user planes.
//
// The control entities are real network endpoints: NewCore places MME,
// SGW-C and PGW-C nodes on the network and joins them (and the SDN
// controller, and each eNB as it is created) with control links. Every
// S1AP/GTPv2 message is a transaction on the ctl transport — delivered as
// an encoded packet, retransmitted on loss, failed terminally when the
// retry budget is exhausted.
type Core struct {
	cfg  Config
	Eng  *sim.Engine
	Ctl  *sdn.Controller
	Acct *Accounting
	// Txn is the control-plane transaction transport shared by every
	// control endpoint (including the SDN controller channel).
	Txn *ctl.Transport

	HSS  *HSS
	PCRF *PCRF
	MME  *MME
	SGWC *SGWC
	PGWC *PGWC

	mmeEP, sgwEP, pgwEP *ctl.Endpoint
	s11Link, s5Link     *netsim.Link

	unmatchedPktIn *telemetry.Counter

	sessions map[string]*Session // by IMSI
	byIP     map[pkt.Addr]*Session
	nextUEID uint32

	// Flyweight intern tables: shared immutable configuration (QoS
	// profiles, TFT templates, plane pairs, APN data) is stored once and
	// referenced by handle from every session/bearer, so per-UE state
	// carries only hot mutable fields. See flyweight.go.
	qosIntern   map[pkt.BearerQoS]*pkt.BearerQoS
	tftIntern   map[tftKey]*pkt.TFT
	planeIntern map[planeKey]*PlanePair
	apnIntern   map[apnKey]*APNProfile

	// encBuf and nasBuf are core-lifetime scratch buffers for control-plane
	// serialization. encBuf holds the outer S1AP/GTPv2 encoding, which is
	// consumed synchronously (only its length reaches the transport). nasBuf
	// holds NAS payloads that the following sendS1AP reads synchronously;
	// see encodeNAS for the aliasing rule.
	encBuf, nasBuf []byte
}

// NewCore builds an empty core and places its control plane on the network.
func NewCore(cfg Config) *Core {
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = IdleTimeout
	}
	if cfg.Net == nil {
		panic("epc: Config.Net is required — the control plane runs over the network")
	}
	c := &Core{
		cfg:      cfg,
		Eng:      cfg.Eng,
		Ctl:      cfg.Ctl,
		Acct:     NewAccounting(cfg.Eng.Metrics()),
		sessions: make(map[string]*Session),
		byIP:     make(map[pkt.Addr]*Session),

		qosIntern:   make(map[pkt.BearerQoS]*pkt.BearerQoS),
		tftIntern:   make(map[tftKey]*pkt.TFT),
		planeIntern: make(map[planeKey]*PlanePair),
		apnIntern:   make(map[apnKey]*APNProfile),
	}
	c.HSS = &HSS{subscribers: make(map[string]Subscriber)}
	c.PCRF = &PCRF{core: c, rules: make(map[string]PolicyRule)}
	c.MME = &MME{core: c}
	c.SGWC = &SGWC{core: c, planes: make(map[string]*UserPlane)}
	c.PGWC = &PGWC{core: c, planes: make(map[string]*UserPlane)}

	c.Txn = ctl.NewTransport(cfg.Eng)
	mmeN := cfg.Net.AddNode("mme", pkt.AddrFrom(10, 255, 0, 1))
	sgwN := cfg.Net.AddNode("sgw-c", pkt.AddrFrom(10, 255, 0, 2))
	pgwN := cfg.Net.AddNode("pgw-c", pkt.AddrFrom(10, 255, 0, 3))
	c.mmeEP = c.Txn.Endpoint(mmeN, true)
	c.sgwEP = c.Txn.Endpoint(sgwN, true)
	c.pgwEP = c.Txn.Endpoint(pgwN, true)
	coreCfg := netsim.LinkConfig{BitsPerSecond: ctlLinkBps, Propagation: cfg.GTPv2Delay}
	c.s11Link = ctl.Connect(c.mmeEP, c.sgwEP, coreCfg)
	c.s5Link = ctl.Connect(c.sgwEP, c.pgwEP, coreCfg)

	c.unmatchedPktIn = cfg.Eng.Metrics().Scope("epc").Scope("packet-in").Counter("unmatched")

	c.MME.hoScope = cfg.Eng.Metrics().Scope("epc").Scope("handover")
	c.MME.hoCompleted = c.MME.hoScope.Counter("completed")
	c.MME.hoFailed = c.MME.hoScope.Counter("failed")
	c.MME.hoGap = c.MME.hoScope.Histogram("gap-ms")

	if cfg.Ctl != nil {
		cfg.Ctl.OnPacketIn = c.onPacketIn
		ofN := cfg.Net.AddNode("sdn-ctl", pkt.AddrFrom(10, 255, 0, 10))
		cfg.Ctl.EnableTransport(c.Txn, ofN)
	}
	return c
}

// S11Link returns the MME<->SGW-C control link (fault-injection handle).
func (c *Core) S11Link() *netsim.Link { return c.s11Link }

// S5Link returns the SGW-C<->PGW-C control link.
func (c *Core) S5Link() *netsim.Link { return c.s5Link }

// Transport returns the control-plane transaction transport.
func (c *Core) Transport() *ctl.Transport { return c.Txn }

// IdleTimeout reports the configured inactivity timeout.
func (c *Core) IdleTimeout() time.Duration { return c.cfg.IdleTimeout }

// Session returns the session for an IMSI, or nil.
func (c *Core) Session(imsi string) *Session { return c.sessions[imsi] }

// SessionByIP returns the session owning a UE IP, or nil.
func (c *Core) SessionByIP(ip pkt.Addr) *Session { return c.byIP[ip] }

// proc coordinates one multi-message control procedure over the lossy
// transport: continuation steps run only while the procedure is live, the
// terminal callback fires exactly once, and error-path cleanups
// (registered as the procedure acquires resources) run in reverse order
// when it fails.
type proc struct {
	finished bool
	end      func(error)
	errFns   []func()
}

func newProc(end func(error)) *proc { return &proc{end: end} }

// step wraps a continuation so it is skipped once the procedure reached a
// terminal outcome (e.g. an earlier leg already timed out).
func (pr *proc) step(f func()) func() {
	return func() {
		if pr.finished {
			return
		}
		f()
	}
}

// onError registers a cleanup to run if the procedure fails.
func (pr *proc) onError(fn func()) { pr.errFns = append(pr.errFns, fn) }

// finish concludes the procedure exactly once. On error the registered
// cleanups unwind in reverse order before the terminal callback runs.
func (pr *proc) finish(err error) {
	if pr.finished {
		return
	}
	pr.finished = true
	if err != nil {
		for i := len(pr.errFns) - 1; i >= 0; i-- {
			pr.errFns[i]()
		}
	}
	if pr.end != nil {
		pr.end(err)
	}
}

// fail is finish shaped as the transport's failure callback.
func (pr *proc) fail(err error) { pr.finish(err) }

// noteTx builds the transport-observation callback that back-fills a traced
// record's wire fields, or nil when the message is not traced.
func (c *Core) noteTx(idx int) func(ctl.TxInfo) {
	if idx < 0 {
		return nil
	}
	return func(info ctl.TxInfo) {
		c.Acct.NoteTransport(idx, info.Link, info.QueueWait, info.Retrans)
	}
}

// sendS1AP stamps the next per-peer sequence into the message's TSN,
// serializes and accounts it, and opens a transport transaction from
// endpoint from to endpoint to. deliver runs at the receiver (unless the
// procedure already failed); a terminal transport timeout fails pr.
//
//acacia:hotpath
func (c *Core) sendS1AP(pr *proc, from, to *ctl.Endpoint, m *pkt.S1APMsg, deliver func()) {
	seq := from.NextSeq(to.Addr())
	m.TSN = seq
	c.encBuf = m.Encode(c.encBuf[:0])
	n := len(c.encBuf)
	name := m.Procedure.String()
	idx := c.Acct.RecordTx(c.Eng.Now(), ProtoS1AP, name, n, seq, c.txPath(from, to))
	//acacia:allow hotpath-escape per-transaction callbacks capture procedure state; control-plane sends are bounded by procedure rate, not the packet rate
	from.Send(to.Addr(), seq, name, n, pr.step(deliver), pr.fail, c.noteTx(idx))
}

// sendGTPv2 is sendS1AP for GTPv2-C: the allocated sequence becomes the
// message's 24-bit Seq field.
//
//acacia:hotpath
func (c *Core) sendGTPv2(pr *proc, from, to *ctl.Endpoint, m *pkt.GTPv2Msg, deliver func()) {
	seq := from.NextSeq(to.Addr())
	m.Seq = seq
	c.encBuf = m.Encode(c.encBuf[:0])
	n := len(c.encBuf)
	name := m.Type.String()
	idx := c.Acct.RecordTx(c.Eng.Now(), ProtoGTPv2, name, n, seq, c.txPath(from, to))
	//acacia:allow hotpath-escape per-transaction callbacks capture procedure state; control-plane sends are bounded by procedure rate, not the packet rate
	from.Send(to.Addr(), seq, name, n, pr.step(deliver), pr.fail, c.noteTx(idx))
}

// txPath builds the "from->to" trace label, but only when tracing is on —
// the concatenation allocates, and untraced runs would throw it away.
// Noinline: inlined into the hotpath senders, the trace-only concatenation
// would land in their escape profiles even though untraced runs never
// execute it.
//
//go:noinline
func (c *Core) txPath(from, to *ctl.Endpoint) string {
	if !c.Acct.Trace {
		return ""
	}
	return from.Name() + "->" + to.Name()
}

// encodeNAS serializes a NAS message into the core's NAS scratch buffer.
// The returned slice aliases the buffer and is valid only until the next
// encodeNAS call — long enough for the synchronous S1AP encode inside the
// sendS1AP that follows, which is the payload's only reader (the ctl
// transport carries message lengths, not bytes). Call sites that retain
// NAS bytes past the send (e.g. to re-decode them at the receiver) must
// encode into their own buffer instead.
func (c *Core) encodeNAS(m *pkt.NASMsg) []byte {
	c.nasBuf = m.Encode(c.nasBuf[:0])
	return c.nasBuf
}

// onPacketIn handles GW-U table misses. The only expected miss is downlink
// traffic for an idle UE arriving at its SGW-U: buffer it and page.
func (c *Core) onPacketIn(sw *sdn.Switch, inPort uint32, p *netsim.Packet, tunnelID uint64) {
	// Identify the UE by inner destination (downlink view).
	sess := c.byIP[p.Flow.Dst]
	if sess == nil {
		// Not ours: count and log the drop instead of failing silently.
		c.unmatchedPktIn.Inc()
		c.Eng.Metrics().Scope("epc/packet-in").Emit("unmatched",
			fmt.Sprintf("%s port %d dst %v teid %d", sw.Node().Name(), inPort, p.Flow.Dst, tunnelID))
		return
	}
	c.SGWC.bufferAndPage(sess, sw, p, tunnelID)
}

// releaseSessionResources removes every bearer's user-plane state and
// returns its GBR reservation. Clearing the bearer map afterwards makes the
// teardown idempotent — a timeout-recovery path may run it again.
func (c *Core) releaseSessionResources(sess *Session) {
	for _, b := range sess.OrderedBearers() {
		c.removeBearerFlows(sess, b)
		b.Planes.PGW.releaseGBR(b.QoS.GuaranteedUL + b.QoS.GuaranteedDL)
	}
	sess.Bearers = [16]*Bearer{}
}

// forceDetach tears a session down locally after a detach procedure lost
// its signaling: resources are reclaimed and the UE unbound even though the
// protocol exchange never concluded.
func (c *Core) forceDetach(sess *Session) {
	c.releaseSessionResources(sess)
	sess.ENB.releaseContext(sess)
	sess.setState(c.Eng, StateDetached)
	delete(c.sessions, sess.IMSI)
	delete(c.byIP, sess.UEIP)
	sess.UE.completeDetach()
}

// SessionState is the RRC/S1 state of a UE session.
type SessionState uint8

// Session states.
const (
	StateDetached SessionState = iota
	StateConnecting
	StateConnected
	StateIdle
	StatePromoting
)

// String names the state.
func (s SessionState) String() string {
	switch s {
	case StateDetached:
		return "detached"
	case StateConnecting:
		return "connecting"
	case StateConnected:
		return "connected"
	case StateIdle:
		return "idle"
	case StatePromoting:
		return "promoting"
	default:
		return fmt.Sprintf("SessionState(%d)", uint8(s))
	}
}

// Bearer is the authoritative record of one EPS bearer. Individual control
// entities exchange real messages to mutate it, but the state itself is
// kept in one place rather than copied per entity.
//
// The layout is a flyweight: QoS, TFT and the serving plane pair are
// handles into the core's intern tables — shared, immutable, one copy per
// distinct profile regardless of UE count — and only the hot mutable
// per-UE fields (the four tunnel endpoints) live inline.
type Bearer struct {
	EBI uint8
	// QoS is the interned QoS profile (never mutated after creation).
	QoS *pkt.BearerQoS
	// TFT is the interned traffic flow template; nil for the default
	// bearer (match-everything-else).
	TFT *pkt.TFT
	// Planes is the interned handle to the user planes serving this
	// bearer; the dedicated MEC bearer uses local (edge) planes.
	Planes *PlanePair
	// CIServer is the dedicated bearer's remote endpoint filter anchor.
	CIServer pkt.Addr

	// GTP tunnel endpoints.
	S1UL uint32 // allocated by SGW-C; eNB sends uplink with this TEID
	S1DL uint32 // allocated by eNB; SGW-U sends downlink with this TEID
	S5UL uint32 // allocated by PGW-C
	S5DL uint32 // allocated by SGW-C
}

// Session is one UE's EPC context. Bearers is a fixed inline array indexed
// by EBI (0..15 is the full EPS bearer-id space): no per-session map, no
// hashing on the per-packet classify path.
type Session struct {
	IMSI    string
	UEIP    pkt.Addr
	State   SessionState
	ENB     *ENB
	UE      *UE
	APN     *APNProfile
	MMEUEID uint32
	ENBUEID uint32
	Bearers [16]*Bearer

	// Timestamps for observability.
	AttachedAt  sim.Time
	LastStateAt sim.Time

	// onConnected callbacks run once when the session (re)enters
	// StateConnected — promotion waiters and attach continuations.
	onConnected []func()

	// ordScratch and dedScratch back OrderedBearers and DedicatedBearers.
	// Each call rebuilds its scratch in place, so the returned slice is
	// valid only until the next call on this session and must not be
	// retained. Separate slices keep the per-packet uplink classifier
	// (DedicatedBearers) from clobbering an in-progress control-procedure
	// iteration (OrderedBearers).
	ordScratch, dedScratch []*Bearer
}

// Bearer returns the bearer with the given EBI, or nil.
func (s *Session) Bearer(ebi uint8) *Bearer {
	if ebi >= 16 {
		return nil
	}
	return s.Bearers[ebi]
}

// DedicatedBearers lists non-default bearers in EBI order. The returned
// slice shares the session's scratch storage: it is valid until the next
// DedicatedBearers call and must not be retained.
//
//acacia:hotpath
func (s *Session) DedicatedBearers() []*Bearer {
	out := s.dedScratch[:0]
	for ebi := EBIDedicated; ebi < 16; ebi++ {
		if b := s.Bearers[ebi]; b != nil {
			out = append(out, b)
		}
	}
	s.dedScratch = out
	return out
}

// OrderedBearers lists every bearer of the session in EBI order. Control
// procedures must iterate bearers through it, never over the Bearers map
// directly: E-RAB and bearer-context lists built in map order would make
// encoded messages — and the flow-install sequence — differ run to run.
// The returned slice shares the session's scratch storage: it is valid
// until the next OrderedBearers call and must not be retained.
//
//acacia:hotpath
func (s *Session) OrderedBearers() []*Bearer {
	out := s.ordScratch[:0]
	for ebi := 0; ebi < 16; ebi++ {
		if b := s.Bearers[ebi]; b != nil {
			out = append(out, b)
		}
	}
	s.ordScratch = out
	return out
}

// setState transitions the session and records the transition on the
// engine's telemetry timeline (epc/session/<IMSI> state events), giving
// -timeline exports the full RRC/S1 state history of every UE.
func (s *Session) setState(eng *sim.Engine, st SessionState) {
	s.State = st
	s.LastStateAt = eng.Now()
	eng.Metrics().Scope("epc/session").Scope(s.IMSI).Emit("state", st.String())
	if st == StateConnected {
		cbs := s.onConnected
		s.onConnected = nil
		for _, cb := range cbs {
			cb()
		}
	}
}

// whenConnected runs cb immediately if connected, otherwise once the
// session next reaches StateConnected.
func (s *Session) whenConnected(cb func()) {
	if s.State == StateConnected {
		cb()
		return
	}
	s.onConnected = append(s.onConnected, cb)
}
