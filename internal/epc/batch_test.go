package epc

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"acacia/internal/netsim"
	"acacia/internal/pkt"
)

// addBatchUEs provisions and radio-connects n extra UEs on the testbed's
// eNB, returning the full cohort including the original UE.
func (tb *testbed) addBatchUEs(n int) []*UE {
	cohort := []*UE{tb.ue}
	for i := 0; i < n; i++ {
		imsi := fmt.Sprintf("00101000001%04d", i+1)
		ueN := tb.nw.AddNode(fmt.Sprintf("ue-%d", i+2), pkt.AddrFrom(172, 16, 0, byte(3+i)))
		ue := NewUE(ueN, imsi)
		tb.enb.ConnectUE(ue, netsim.LinkConfig{BitsPerSecond: 100e6, Propagation: radioDelay})
		tb.core.HSS.Provision(Subscriber{IMSI: imsi})
		cohort = append(cohort, ue)
	}
	return cohort
}

func TestAttachBatchAmortizesGTPv2(t *testing.T) {
	tb := buildTestbed(t, time.Hour)
	cohort := tb.addBatchUEs(2)

	before := tb.core.Acct.Snapshot()
	results := make(map[string]error)
	tb.core.AttachBatch(cohort, "core-sgw", "core-pgw", func(ue *UE, err error) {
		results[ue.IMSI] = err
	})
	tb.eng.RunFor(2 * time.Second)

	if len(results) != len(cohort) {
		t.Fatalf("outcomes = %d, want %d", len(results), len(cohort))
	}
	imsis := make([]string, 0, len(results))
	for imsi := range results {
		imsis = append(imsis, imsi)
	}
	sort.Strings(imsis)
	for _, imsi := range imsis {
		if err := results[imsi]; err != nil {
			t.Fatalf("attach %s: %v", imsi, err)
		}
	}
	for _, ue := range cohort {
		if !ue.Attached() {
			t.Errorf("UE %s not attached", ue.IMSI)
		}
		sess := tb.core.Session(ue.IMSI)
		if sess == nil || sess.State != StateConnected {
			t.Errorf("session %s = %+v", ue.IMSI, sess)
		}
	}
	// The shared chain is 6 GTPv2 messages regardless of cohort size:
	// Create Session req/resp on S11 and S5, Modify Bearer req/resp.
	d := tb.core.Acct.Diff(before)
	if d.Msgs[ProtoGTPv2] != 6 {
		t.Errorf("GTPv2 msgs = %d, want 6 for the whole cohort", d.Msgs[ProtoGTPv2])
	}
	// Radio-side signaling stays per-UE: InitialUEMessage, ICS req/resp and
	// attach complete for each member.
	if want := uint64(4 * len(cohort)); d.Msgs[ProtoS1AP] != want {
		t.Errorf("S1AP msgs = %d, want %d", d.Msgs[ProtoS1AP], want)
	}
	// Per-UE flow state landed: 2 rules per UE on each core gateway.
	if got, want := tb.coreSGW.FlowCount(), 2*len(cohort); got != want {
		t.Errorf("core SGW flows = %d, want %d", got, want)
	}
}

func TestAttachBatchReportsInvalidMembers(t *testing.T) {
	tb := buildTestbed(t, time.Hour)
	cohort := tb.addBatchUEs(1)
	// An unprovisioned UE in the cohort fails alone.
	strayN := tb.nw.AddNode("stray", pkt.AddrFrom(172, 16, 0, 99))
	stray := NewUE(strayN, "999990000000001")
	tb.enb.ConnectUE(stray, netsim.LinkConfig{BitsPerSecond: 100e6, Propagation: radioDelay})
	cohort = append(cohort, stray)

	results := make(map[string]error)
	tb.core.AttachBatch(cohort, "core-sgw", "core-pgw", func(ue *UE, err error) {
		results[ue.IMSI] = err
	})
	tb.eng.RunFor(2 * time.Second)

	if err := results[stray.IMSI]; err == nil {
		t.Error("unprovisioned cohort member attached")
	}
	for _, ue := range cohort[:2] {
		if results[ue.IMSI] != nil || !ue.Attached() {
			t.Errorf("valid member %s: err=%v attached=%v", ue.IMSI, results[ue.IMSI], ue.Attached())
		}
	}
}

func TestDetachBatch(t *testing.T) {
	tb := buildTestbed(t, time.Hour)
	cohort := tb.addBatchUEs(2)
	tb.core.AttachBatch(cohort, "core-sgw", "core-pgw", nil)
	tb.eng.RunFor(2 * time.Second)

	before := tb.core.Acct.Snapshot()
	results := make(map[string]error)
	tb.core.DetachBatch(cohort, func(ue *UE, err error) { results[ue.IMSI] = err })
	tb.eng.RunFor(2 * time.Second)

	for _, ue := range cohort {
		if err, ok := results[ue.IMSI]; !ok || err != nil {
			t.Errorf("detach %s: ok=%v err=%v", ue.IMSI, ok, err)
		}
		if ue.Attached() || tb.core.Session(ue.IMSI) != nil {
			t.Errorf("UE %s still attached", ue.IMSI)
		}
	}
	if d := tb.core.Acct.Diff(before); d.Msgs[ProtoGTPv2] != 4 {
		t.Errorf("GTPv2 msgs = %d, want 4 for the whole cohort", d.Msgs[ProtoGTPv2])
	}
	if got := tb.coreSGW.FlowCount(); got != 0 {
		t.Errorf("core SGW flows after detach = %d", got)
	}
}

func TestGTPv2BatchIMSIRoundTrip(t *testing.T) {
	m := &pkt.GTPv2Msg{
		Type:  pkt.GTPv2CreateSessionRequest,
		IMSI:  "001010000000001",
		IMSIs: []string{"001010000000002", "001010000000003"},
	}
	solo := &pkt.GTPv2Msg{Type: pkt.GTPv2CreateSessionRequest, IMSI: "001010000000001"}
	enc := m.Encode(nil)
	var got pkt.GTPv2Msg
	if _, err := got.Decode(enc); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.IMSI != m.IMSI || len(got.IMSIs) != 2 || got.IMSIs[0] != m.IMSIs[0] || got.IMSIs[1] != m.IMSIs[1] {
		t.Errorf("round trip = %q + %v", got.IMSI, got.IMSIs)
	}
	// Single-UE wire bytes are unchanged by the batch extension.
	if soloEnc := solo.Encode(nil); len(soloEnc) >= len(enc) {
		t.Errorf("solo encoding (%d bytes) not smaller than batch (%d)", len(soloEnc), len(enc))
	}
}
