package epc

import (
	"fmt"

	"acacia/internal/netsim"
	"acacia/internal/pkt"
	"acacia/internal/sdn"
)

// Subscriber is an HSS record.
type Subscriber struct {
	IMSI string
	// DefaultQoS is the default bearer's QoS profile.
	DefaultQoS pkt.BearerQoS
}

// HSS is the home subscriber server: the authorization database consulted
// at attach.
type HSS struct {
	subscribers map[string]Subscriber
}

// Provision registers a subscriber.
func (h *HSS) Provision(s Subscriber) {
	if s.DefaultQoS.QCI == 0 {
		s.DefaultQoS = pkt.BearerQoS{QCI: pkt.QCIDefault, ARP: 9}
	}
	h.subscribers[s.IMSI] = s
}

// Lookup returns the subscriber record and whether it exists.
func (h *HSS) Lookup(imsi string) (Subscriber, bool) {
	s, ok := h.subscribers[imsi]
	return s, ok
}

// PolicyRule is a PCRF rule mapping an application service to bearer QoS.
type PolicyRule struct {
	ServiceID string
	QCI       pkt.QCI
	ARP       uint8
	// Precedence orders the resulting TFT filter.
	Precedence uint8
	// GuaranteedUL/DL are the GBR rates (bits/s) for guaranteed-bit-rate
	// QCIs; the PCEF admission-controls them against the serving PGW-U's
	// capacity. Zero for non-GBR classes.
	GuaranteedUL, GuaranteedDL uint64
	// MaxUL/MaxDL are the bearer's maximum bit rates (bits/s), enforced by
	// meters at the PGW-U. Zero means unpoliced.
	MaxUL, MaxDL uint64
}

// PCRF is the policy and charging rules function. ACACIA's MRS (an
// application function) signals it with service and flow information; it
// resolves the policy rule and invokes the PCEF in the PGW-C, triggering
// network-initiated dedicated bearer activation (TS 23.401 §5.4.1).
type PCRF struct {
	core  *Core
	rules map[string]PolicyRule
}

// AddRule provisions a policy rule for a service.
func (p *PCRF) AddRule(r PolicyRule) { p.rules[r.ServiceID] = r }

// Rule returns the rule for a service id.
func (p *PCRF) Rule(serviceID string) (PolicyRule, bool) {
	r, ok := p.rules[serviceID]
	return r, ok
}

// RequestDedicatedBearer is the Rx-like entry point used by the MRS: it
// resolves policy for (service, UE, CI server) and asks the PCEF to
// activate a dedicated bearer on the given local user planes. done (may be
// nil) receives the bearer EBI or an error.
func (p *PCRF) RequestDedicatedBearer(serviceID string, ueIP, ciServer pkt.Addr, sgwPlane, pgwPlane string, done func(uint8, error)) {
	rule, ok := p.rules[serviceID]
	if !ok {
		fail(done, fmt.Errorf("epc: no policy rule for service %q", serviceID))
		return
	}
	sess := p.core.byIP[ueIP]
	if sess == nil {
		fail(done, fmt.Errorf("epc: no session for UE %v", ueIP))
		return
	}
	p.core.PGWC.activateDedicatedBearer(sess, rule, ciServer, sgwPlane, pgwPlane, done)
}

// RequestBearerTermination tears down the dedicated bearer toward ciServer.
func (p *PCRF) RequestBearerTermination(ueIP, ciServer pkt.Addr, done func(error)) {
	sess := p.core.byIP[ueIP]
	if sess == nil {
		if done != nil {
			done(fmt.Errorf("epc: no session for UE %v", ueIP))
		}
		return
	}
	p.core.PGWC.deactivateDedicatedBearer(sess, ciServer, done)
}

func fail(done func(uint8, error), err error) {
	if done != nil {
		done(0, err)
	}
}

// UserPlane is one GW-U: a switch plus the port conventions the control
// plane programs against.
type UserPlane struct {
	Name string
	SW   *sdn.Switch
	// AccessPort faces the eNB side (SGW-U) or the SGW-U side (PGW-U).
	AccessPort int
	// CorePort faces the PGW-U side (SGW-U) or the SGi/server side (PGW-U).
	CorePort int
	// GBRCapacityBps bounds the sum of guaranteed bit rates (UL+DL) the
	// PCEF may admit onto this plane; zero means no admission control.
	GBRCapacityBps uint64
	// gbrInUse tracks admitted guaranteed rate.
	gbrInUse uint64
}

// GBRInUse reports the guaranteed rate currently admitted on this plane.
func (u *UserPlane) GBRInUse() uint64 { return u.gbrInUse }

// admitGBR reserves rate if capacity allows.
func (u *UserPlane) admitGBR(rate uint64) bool {
	if u.GBRCapacityBps == 0 || rate == 0 {
		return true
	}
	if u.gbrInUse+rate > u.GBRCapacityBps {
		return false
	}
	u.gbrInUse += rate
	return true
}

// releaseGBR returns previously admitted rate.
func (u *UserPlane) releaseGBR(rate uint64) {
	if rate >= u.gbrInUse {
		u.gbrInUse = 0
		return
	}
	u.gbrInUse -= rate
}

// Addr returns the user plane's GTP endpoint address.
func (u *UserPlane) Addr() pkt.Addr { return u.SW.Node().Addr() }

// Flow cookies: one per (UE, bearer, direction) so release/re-establish can
// delete exactly the downlink rules.
func cookieUL(ueIP pkt.Addr, ebi uint8) uint64 {
	return uint64(ueIP.Uint32())<<16 | uint64(ebi)<<8 | 0x01
}

func cookieDL(ueIP pkt.Addr, ebi uint8) uint64 {
	return uint64(ueIP.Uint32())<<16 | uint64(ebi)<<8 | 0x02
}

// SGWC is the serving gateway control plane.
type SGWC struct {
	core   *Core
	planes map[string]*UserPlane
	teids  teidAllocator
	// paged tracks buffered downlink packets per session awaiting
	// promotion.
	paged map[string][]bufferedDL
}

type bufferedDL struct {
	sw *sdn.Switch
	p  *netsim.Packet
	// teid is the S5 tunnel the packet arrived on; replay re-encapsulates
	// with it so the reinstalled downlink rule matches.
	teid uint64
}

// maxDLBuffer bounds per-session downlink buffering while paging, matching
// typical SGW paging buffers (a handful of packets; TCP retransmission
// recovers the rest).
const maxDLBuffer = 16

// AddUserPlane registers an SGW-U under a name ("core-sgw", "edge-sgw-1").
func (s *SGWC) AddUserPlane(name string, sw *sdn.Switch, accessPort, corePort int) *UserPlane {
	up := &UserPlane{Name: name, SW: sw, AccessPort: accessPort, CorePort: corePort}
	s.planes[name] = up
	sw.MarkGTPPort(accessPort)
	sw.MarkGTPPort(corePort)
	return up
}

// Plane returns a registered user plane.
func (s *SGWC) Plane(name string) *UserPlane { return s.planes[name] }

// PGWC is the PDN gateway control plane; it hosts the PCEF.
type PGWC struct {
	core   *Core
	planes map[string]*UserPlane
	teids  teidAllocator
}

// AddUserPlane registers a PGW-U ("core-pgw", "edge-pgw-1"). corePort faces
// the SGW-U; sgiPort faces the packet data network (servers).
func (p *PGWC) AddUserPlane(name string, sw *sdn.Switch, corePort, sgiPort int) *UserPlane {
	up := &UserPlane{Name: name, SW: sw, AccessPort: corePort, CorePort: sgiPort}
	p.planes[name] = up
	sw.MarkGTPPort(corePort)
	return up
}

// Plane returns a registered user plane.
func (p *PGWC) Plane(name string) *UserPlane { return p.planes[name] }

// installBearerFlows programs the four GTP flow rules of one bearer:
// uplink and downlink on both its SGW-U and PGW-U.
func (c *Core) installBearerFlows(sess *Session, b *Bearer) {
	sgw := b.Planes.SGW
	pgw := b.Planes.PGW
	// SGW-U uplink: S1 tunnel in -> S5 tunnel out toward PGW-U.
	c.Ctl.InstallFlow(sgw.SW, sdn.FlowEntry{
		Priority: 100, Cookie: cookieUL(sess.UEIP, b.EBI),
		Match: pkt.Match{TunnelID: pkt.U64(uint64(b.S1UL))},
		Actions: []pkt.Action{
			{Type: pkt.ActionSetTunnel, TunnelID: uint64(b.S5UL), TunnelDst: pgw.Addr()},
			{Type: pkt.ActionOutput, Port: uint32(sgw.CorePort)},
		},
	})
	// PGW-U uplink: S5 tunnel in -> plain out the SGi port. The bearer's
	// MBR, when set, is enforced here with a meter — the PCEF's QoS
	// enforcement point.
	c.Ctl.InstallFlow(pgw.SW, sdn.FlowEntry{
		Priority: 100, Cookie: cookieUL(sess.UEIP, b.EBI),
		Match:    pkt.Match{TunnelID: pkt.U64(uint64(b.S5UL))},
		Actions:  []pkt.Action{{Type: pkt.ActionOutput, Port: uint32(pgw.CorePort)}},
		MeterBps: float64(b.QoS.MaxBitrateUL),
	})
	c.installDownlinkFlows(sess, b)
}

// installDownlinkFlows programs the two downlink rules (PGW-U and SGW-U).
// They are installed separately because S1 release deletes the SGW-U
// downlink rule while keeping uplink state.
func (c *Core) installDownlinkFlows(sess *Session, b *Bearer) {
	sgw := b.Planes.SGW
	pgw := b.Planes.PGW
	// PGW-U downlink: classify by UE IP (and CI server for dedicated
	// bearers) -> S5 tunnel toward SGW-U.
	dlMatch := pkt.Match{IPv4Dst: pkt.AddrPtr(sess.UEIP)}
	if !b.CIServer.IsZero() {
		dlMatch.IPv4Src = pkt.AddrPtr(b.CIServer)
	}
	c.Ctl.InstallFlow(pgw.SW, sdn.FlowEntry{
		Priority: 100, Cookie: cookieDL(sess.UEIP, b.EBI),
		Match: dlMatch,
		Actions: []pkt.Action{
			{Type: pkt.ActionSetTunnel, TunnelID: uint64(b.S5DL), TunnelDst: sgw.Addr()},
			{Type: pkt.ActionOutput, Port: uint32(pgw.AccessPort)},
		},
		MeterBps: float64(b.QoS.MaxBitrateDL),
	})
	c.installSGWDownlink(sess, b)
}

// installSGWDownlink programs only the SGW-U downlink rule. Promotion after
// an idle period reinstalls just this rule — the PGW-U side is unaffected
// by eNB TEID changes — matching the testbed's OpenFlow message budget of
// one delete + one add per bearer per release/re-establish cycle.
func (c *Core) installSGWDownlink(sess *Session, b *Bearer) {
	c.installSGWDownlinkTo(sess, b, b.S1DL, sess.ENB.Addr())
}

// installSGWDownlinkTo is installSGWDownlink with an explicit S1 downlink
// TEID and eNB address. The handover compensation path uses it to repoint
// the rule at the *source* eNB's captured endpoints after the session
// fields were already rewritten toward the target.
func (c *Core) installSGWDownlinkTo(sess *Session, b *Bearer, s1dl uint32, enbAddr pkt.Addr) {
	sgw := b.Planes.SGW
	// SGW-U downlink: S5 tunnel in -> S1 tunnel toward the eNB.
	c.Ctl.InstallFlow(sgw.SW, sdn.FlowEntry{
		Priority: 100, Cookie: cookieDL(sess.UEIP, b.EBI),
		Match: pkt.Match{TunnelID: pkt.U64(uint64(b.S5DL))},
		Actions: []pkt.Action{
			{Type: pkt.ActionSetTunnel, TunnelID: uint64(s1dl), TunnelDst: enbAddr},
			{Type: pkt.ActionOutput, Port: uint32(sgw.AccessPort)},
		},
	})
}

// removeBearerFlows deletes all four rules of a bearer.
func (c *Core) removeBearerFlows(sess *Session, b *Bearer) {
	sgw := b.Planes.SGW
	pgw := b.Planes.PGW
	c.Ctl.RemoveFlows(sgw.SW, cookieUL(sess.UEIP, b.EBI))
	c.Ctl.RemoveFlows(pgw.SW, cookieUL(sess.UEIP, b.EBI))
	c.Ctl.RemoveFlows(pgw.SW, cookieDL(sess.UEIP, b.EBI))
	c.removeSGWDownlink(sess, b)
}

// removeSGWDownlink deletes only the SGW-U downlink rule — the S1 release
// action that makes later downlink traffic miss and trigger paging.
func (c *Core) removeSGWDownlink(sess *Session, b *Bearer) {
	sgw := b.Planes.SGW
	c.Ctl.RemoveFlows(sgw.SW, cookieDL(sess.UEIP, b.EBI))
}

// bufferAndPage handles a downlink table miss for an idle UE: buffer the
// packet (bounded, as real SGW paging buffers are) and start paging. Once
// the UE promotes back to connected, the buffered packets are replayed
// through the SGW-U, whose freshly reinstalled downlink rules deliver them.
func (s *SGWC) bufferAndPage(sess *Session, sw *sdn.Switch, p *netsim.Packet, teid uint64) {
	if sess.State != StateIdle && sess.State != StatePromoting {
		return // race with an in-flight state change; nothing to do
	}
	if s.paged == nil {
		s.paged = make(map[string][]bufferedDL)
	}
	first := len(s.paged[sess.IMSI]) == 0
	if len(s.paged[sess.IMSI]) < maxDLBuffer {
		s.paged[sess.IMSI] = append(s.paged[sess.IMSI], bufferedDL{sw: sw, p: p, teid: teid})
	}
	if first {
		if sess.State == StateIdle {
			s.core.MME.page(sess)
		}
		sess.whenConnected(func() { s.replayBuffered(sess) })
	}
}

// replayBuffered re-injects paging-buffered downlink packets into their
// SGW-U after promotion, restoring the S5 encapsulation the switch stripped
// before the table miss.
func (s *SGWC) replayBuffered(sess *Session) {
	buf := s.paged[sess.IMSI]
	delete(s.paged, sess.IMSI)
	for _, item := range buf {
		if item.teid != 0 && !item.p.Tunneled() {
			addr := item.sw.Node().Addr()
			item.p.Encapsulate(addr, addr, uint32(item.teid))
		}
		item.sw.Node().Inject(item.p)
	}
}

// activateDedicatedBearer runs the network-initiated dedicated bearer
// activation: PCEF (here) builds the bearer, then the Create Bearer
// Request/Response chain flows PGW-C -> SGW-C -> MME -> eNB -> UE and back.
func (p *PGWC) activateDedicatedBearer(sess *Session, rule PolicyRule, ciServer pkt.Addr, sgwPlane, pgwPlane string, done func(uint8, error)) {
	if sess.State == StateDetached {
		fail(done, fmt.Errorf("epc: UE %s not attached", sess.IMSI))
		return
	}
	planes, perr := p.core.internPlanes(sgwPlane, pgwPlane)
	if perr != nil {
		fail(done, perr)
		return
	}
	// Next free EBI.
	ebi := uint8(EBIDedicated)
	for sess.Bearers[ebi] != nil {
		ebi++
		if ebi > 15 {
			fail(done, fmt.Errorf("epc: UE %s has no free EBI", sess.IMSI))
			return
		}
	}
	// GBR admission control: a guaranteed-bit-rate bearer must fit the
	// serving plane's remaining capacity or be rejected outright
	// (TS 23.401 bearer-level admission at the PCEF).
	gbr := rule.GuaranteedUL + rule.GuaranteedDL
	plane := planes.PGW
	if !plane.admitGBR(gbr) {
		fail(done, fmt.Errorf("epc: plane %q GBR capacity exhausted (%d in use of %d, requested %d)",
			pgwPlane, plane.gbrInUse, plane.GBRCapacityBps, gbr))
		return
	}

	b := &Bearer{
		EBI: ebi,
		QoS: p.core.internQoS(pkt.BearerQoS{
			QCI: rule.QCI, ARP: rule.ARP,
			GuaranteedUL: rule.GuaranteedUL, GuaranteedDL: rule.GuaranteedDL,
			MaxBitrateUL: rule.MaxUL, MaxBitrateDL: rule.MaxDL,
		}),
		TFT:      p.core.internTFT(ciServer, rule.Precedence),
		Planes:   planes,
		CIServer: ciServer,
		S5UL:     p.teids.alloc(),
	}

	// One procedure spans the whole activation chain; any failure — a
	// protocol denial answered down the chain or a transport timeout on any
	// leg — returns the GBR reservation exactly once.
	pr := newProc(func(err error) {
		if err != nil {
			fail(done, err)
			return
		}
		if done != nil {
			done(b.EBI, nil)
		}
	})
	pr.onError(func() { plane.releaseGBR(gbr) })

	// PGW-C -> SGW-C: Create Bearer Request (S5), carrying the PGW-side
	// F-TEID. The SGW-C fills in its own TEIDs and forwards upstream.
	req := &pkt.GTPv2Msg{
		Type: pkt.GTPv2CreateBearerRequest,
		TEID: 1,
		Bearers: []pkt.BearerContext{{
			EBI: ebi, TFT: b.TFT, QoS: b.QoS,
			FTEIDs: []pkt.FTEID{{IfaceType: pkt.FTEIDIfaceS5PGW, TEID: b.S5UL, Addr: planes.PGW.Addr()}},
		}},
	}
	p.core.sendGTPv2(pr, p.core.pgwEP, p.core.sgwEP, req, func() {
		p.core.SGWC.onCreateBearerRequest(pr, sess, b)
	})
}

// onCreateBearerRequest is the SGW-C half of dedicated bearer activation.
func (s *SGWC) onCreateBearerRequest(pr *proc, sess *Session, b *Bearer) {
	b.S1UL = s.teids.alloc()
	b.S5DL = s.teids.alloc()
	// SGW-C -> MME: Create Bearer Request (S11) with the *local* SGW-U
	// address in the S1-U F-TEID — the step that steers the radio-side
	// tunnel to the edge.
	req := &pkt.GTPv2Msg{
		Type: pkt.GTPv2CreateBearerRequest,
		TEID: 2,
		Bearers: []pkt.BearerContext{{
			EBI: b.EBI, TFT: b.TFT, QoS: b.QoS,
			FTEIDs: []pkt.FTEID{{IfaceType: pkt.FTEIDIfaceS1USGW, TEID: b.S1UL, Addr: b.Planes.SGW.Addr()}},
		}},
	}
	s.core.sendGTPv2(pr, s.core.sgwEP, s.core.mmeEP, req, func() {
		s.core.MME.onCreateBearerRequest(pr, sess, b, func(err error) {
			s.finishCreateBearer(pr, sess, b, err)
		})
	})
}

// finishCreateBearer sends the Create Bearer Response back down the chain
// and programs the user planes. A denial concludes the procedure with its
// error, which unwinds the GBR reservation made at admission.
func (s *SGWC) finishCreateBearer(pr *proc, sess *Session, b *Bearer, err error) {
	cause := uint8(pkt.GTPv2CauseAccepted)
	if err != nil {
		cause = pkt.GTPv2CauseDenied
	}
	// SGW-C -> PGW-C response (S5), then PGW-C concludes.
	resp := &pkt.GTPv2Msg{
		Type: pkt.GTPv2CreateBearerResponse,
		TEID: 1, Cause: cause,
		Bearers: []pkt.BearerContext{{
			EBI: b.EBI, Cause: cause,
			FTEIDs: []pkt.FTEID{{IfaceType: pkt.FTEIDIfaceS5SGW, TEID: b.S5DL, Addr: b.Planes.SGW.Addr()}},
		}},
	}
	s.core.sendGTPv2(pr, s.core.sgwEP, s.core.pgwEP, resp, func() {
		if err != nil {
			pr.finish(err)
			return
		}
		sess.Bearers[b.EBI] = b
		s.core.installBearerFlows(sess, b)
		pr.finish(nil)
	})
}

// deactivateDedicatedBearer tears down the bearer whose CI server matches.
func (p *PGWC) deactivateDedicatedBearer(sess *Session, ciServer pkt.Addr, done func(error)) {
	var b *Bearer
	for _, cand := range sess.DedicatedBearers() {
		if cand.CIServer == ciServer {
			b = cand
			break
		}
	}
	if b == nil {
		if done != nil {
			done(fmt.Errorf("epc: no dedicated bearer toward %v", ciServer))
		}
		return
	}
	pr := newProc(done)
	req := &pkt.GTPv2Msg{
		Type:    pkt.GTPv2DeleteBearerRequest,
		TEID:    1,
		Bearers: []pkt.BearerContext{{EBI: b.EBI}},
	}
	p.core.sendGTPv2(pr, p.core.pgwEP, p.core.sgwEP, req, func() {
		// SGW-C forwards to the MME, which releases the radio side.
		fwd := &pkt.GTPv2Msg{
			Type:    pkt.GTPv2DeleteBearerRequest,
			TEID:    2,
			Bearers: []pkt.BearerContext{{EBI: b.EBI}},
		}
		p.core.sendGTPv2(pr, p.core.sgwEP, p.core.mmeEP, fwd, func() {
			p.core.MME.onDeleteBearerRequest(pr, sess, b, func() {
				resp := &pkt.GTPv2Msg{
					Type: pkt.GTPv2DeleteBearerResponse,
					TEID: 1, Cause: pkt.GTPv2CauseAccepted,
					Bearers: []pkt.BearerContext{{EBI: b.EBI, Cause: pkt.GTPv2CauseAccepted}},
				}
				p.core.sendGTPv2(pr, p.core.sgwEP, p.core.pgwEP, resp, func() {
					p.core.removeBearerFlows(sess, b)
					sess.Bearers[b.EBI] = nil
					b.Planes.PGW.releaseGBR(b.QoS.GuaranteedUL + b.QoS.GuaranteedDL)
					pr.finish(nil)
				})
			})
		})
	})
}
