package epc

import (
	"fmt"

	"acacia/internal/pkt"
)

// MME is the mobility management entity: it terminates S1AP from the eNBs
// and drives session procedures over GTPv2 toward the SGW-C.
type MME struct {
	core *Core
	// Stats.
	Attaches   uint64
	Releases   uint64
	Promotions uint64
	Pagings    uint64
	Handovers  uint64
}

// --- Attach ---

// onInitialAttach handles an InitialUEMessage carrying an attach request.
// defaultPlanes name the (central) user planes serving the default bearer.
func (m *MME) onInitialAttach(enb *ENB, ue *UE, sgwPlane, pgwPlane string, done func(error)) {
	c := m.core
	sub, ok := c.HSS.Lookup(ue.IMSI)
	if !ok {
		if done != nil {
			done(fmt.Errorf("epc: IMSI %s unknown to HSS", ue.IMSI))
		}
		return
	}
	if c.sessions[ue.IMSI] != nil {
		if done != nil {
			done(fmt.Errorf("epc: IMSI %s already attached", ue.IMSI))
		}
		return
	}
	if c.SGWC.planes[sgwPlane] == nil || c.PGWC.planes[pgwPlane] == nil {
		if done != nil {
			done(fmt.Errorf("epc: unknown default planes %q/%q", sgwPlane, pgwPlane))
		}
		return
	}
	m.Attaches++
	c.nextUEID++
	sess := &Session{
		IMSI:       ue.IMSI,
		ENB:        enb,
		UE:         ue,
		MMEUEID:    c.nextUEID,
		ENBUEID:    c.nextUEID | 0x1000000,
		Bearers:    make(map[uint8]*Bearer),
		AttachedAt: c.Eng.Now(),
	}
	sess.setState(c.Eng, StateConnecting)
	c.sessions[ue.IMSI] = sess

	// MME -> SGW-C: Create Session Request (S11).
	b := &Bearer{EBI: EBIDefault, QoS: sub.DefaultQoS, SGWPlane: sgwPlane, PGWPlane: pgwPlane}
	csReq := &pkt.GTPv2Msg{
		Type: pkt.GTPv2CreateSessionRequest,
		IMSI: ue.IMSI, Seq: 1,
		Bearers: []pkt.BearerContext{{EBI: b.EBI, QoS: &b.QoS}},
	}
	c.sendGTPv2(csReq, func() {
		// SGW-C allocates its TEIDs, forwards Create Session to the PGW-C.
		b.S1UL = c.SGWC.teids.alloc()
		b.S5DL = c.SGWC.teids.alloc()
		fwd := &pkt.GTPv2Msg{
			Type: pkt.GTPv2CreateSessionRequest,
			IMSI: ue.IMSI, Seq: 1,
			SenderFTEID: &pkt.FTEID{IfaceType: pkt.FTEIDIfaceS5SGW, TEID: b.S5DL, Addr: c.SGWC.planes[sgwPlane].Addr()},
			Bearers:     []pkt.BearerContext{{EBI: b.EBI, QoS: &b.QoS}},
		}
		c.sendGTPv2(fwd, func() {
			// PGW-C (PCEF): confirm the UE's statically bound address (the
			// PAA) and allocate the S5 TEID.
			sess.UEIP = sess.UE.Addr()
			c.byIP[sess.UEIP] = sess
			b.S5UL = c.PGWC.teids.alloc()
			resp := &pkt.GTPv2Msg{
				Type: pkt.GTPv2CreateSessionResponse,
				Seq:  1, Cause: pkt.GTPv2CauseAccepted, PAA: sess.UEIP,
				SenderFTEID: &pkt.FTEID{IfaceType: pkt.FTEIDIfaceS5PGW, TEID: b.S5UL, Addr: c.PGWC.planes[pgwPlane].Addr()},
				Bearers:     []pkt.BearerContext{{EBI: b.EBI, Cause: pkt.GTPv2CauseAccepted}},
			}
			c.sendGTPv2(resp, func() {
				// SGW-C -> MME: Create Session Response with the S1-U
				// F-TEID the eNB must send uplink to.
				resp2 := &pkt.GTPv2Msg{
					Type: pkt.GTPv2CreateSessionResponse,
					Seq:  1, Cause: pkt.GTPv2CauseAccepted, PAA: sess.UEIP,
					Bearers: []pkt.BearerContext{{
						EBI: b.EBI, Cause: pkt.GTPv2CauseAccepted,
						FTEIDs: []pkt.FTEID{{IfaceType: pkt.FTEIDIfaceS1USGW, TEID: b.S1UL, Addr: c.SGWC.planes[sgwPlane].Addr()}},
					}},
				}
				c.sendGTPv2(resp2, func() {
					m.setupInitialContext(sess, b, done)
				})
			})
		})
	})
}

// setupInitialContext runs the S1AP Initial Context Setup exchange with the
// eNB and the follow-up Modify Bearer toward the SGW-C.
func (m *MME) setupInitialContext(sess *Session, b *Bearer, done func(error)) {
	c := m.core
	sgw := c.SGWC.planes[b.SGWPlane]
	acceptNAS := (&pkt.NASMsg{
		Type: pkt.NASAttachAccept,
		ESM: &pkt.NASMsg{
			Type: pkt.NASActivateDefaultBearerRequest,
			EBI:  b.EBI, APN: "internet", UEIP: sess.UEIP, QoS: &b.QoS,
		},
	}).Encode(nil)
	icsReq := &pkt.S1APMsg{
		Procedure: pkt.S1APInitialContextSetupRequest,
		ENBUEID:   sess.ENBUEID, MMEUEID: sess.MMEUEID,
		NAS: acceptNAS,
		ERABs: []pkt.ERABItem{{
			ERABID: b.EBI, QoS: &b.QoS,
			Transport: pkt.FTEID{IfaceType: pkt.FTEIDIfaceS1USGW, TEID: b.S1UL, Addr: sgw.Addr()},
		}},
	}
	c.sendS1AP(icsReq, func() {
		// eNB allocates its downlink TEID and attaches the radio bearer.
		b.S1DL = sess.ENB.attachBearer(sess, b)
		icsResp := &pkt.S1APMsg{
			Procedure: pkt.S1APInitialContextSetupResponse,
			ENBUEID:   sess.ENBUEID, MMEUEID: sess.MMEUEID,
			ERABs: []pkt.ERABItem{{
				ERABID:    b.EBI,
				Transport: pkt.FTEID{IfaceType: pkt.FTEIDIfaceS1UeNodeB, TEID: b.S1DL, Addr: sess.ENB.Addr()},
			}},
		}
		c.sendS1AP(icsResp, func() {
			// MME -> SGW-C: Modify Bearer with the eNB F-TEID.
			mbReq := &pkt.GTPv2Msg{
				Type: pkt.GTPv2ModifyBearerRequest, Seq: 2, IMSI: sess.IMSI,
				Bearers: []pkt.BearerContext{{
					EBI:    b.EBI,
					FTEIDs: []pkt.FTEID{{IfaceType: pkt.FTEIDIfaceS1UeNodeB, TEID: b.S1DL, Addr: sess.ENB.Addr()}},
				}},
			}
			c.sendGTPv2(mbReq, func() {
				mbResp := &pkt.GTPv2Msg{
					Type: pkt.GTPv2ModifyBearerResponse, Seq: 2, Cause: pkt.GTPv2CauseAccepted,
					Bearers: []pkt.BearerContext{{EBI: b.EBI, Cause: pkt.GTPv2CauseAccepted}},
				}
				c.sendGTPv2(mbResp, func() {
					sess.Bearers[b.EBI] = b
					c.installBearerFlows(sess, b)
					// UE -> MME attach complete.
					complete := &pkt.S1APMsg{
						Procedure: pkt.S1APUplinkNASTransport,
						ENBUEID:   sess.ENBUEID, MMEUEID: sess.MMEUEID,
						NAS: (&pkt.NASMsg{Type: pkt.NASAttachComplete}).Encode(nil),
					}
					c.sendS1AP(complete, func() {
						sess.UE.completeAttach(sess)
						sess.setState(c.Eng, StateConnected)
						if done != nil {
							done(nil)
						}
					})
				})
			})
		})
	})
}

// --- Detach ---

// onDetach handles a UE-initiated detach: tear down every bearer's user
// plane, delete the session at the gateways (Delete Session Request on S11
// and S5), and release the radio context.
func (m *MME) onDetach(sess *Session, done func()) {
	c := m.core
	req := &pkt.GTPv2Msg{Type: pkt.GTPv2DeleteSessionRequest, Seq: 9, IMSI: sess.IMSI}
	c.sendGTPv2(req, func() {
		fwd := &pkt.GTPv2Msg{Type: pkt.GTPv2DeleteSessionRequest, Seq: 9, IMSI: sess.IMSI}
		c.sendGTPv2(fwd, func() {
			// PGW-C: drop flows, return GBR reservations.
			for _, b := range sess.Bearers {
				c.removeBearerFlows(sess, b)
				c.PGWC.planes[b.PGWPlane].releaseGBR(b.QoS.GuaranteedUL + b.QoS.GuaranteedDL)
			}
			resp := &pkt.GTPv2Msg{Type: pkt.GTPv2DeleteSessionResponse, Seq: 9, Cause: pkt.GTPv2CauseAccepted}
			c.sendGTPv2(resp, func() {
				resp2 := &pkt.GTPv2Msg{Type: pkt.GTPv2DeleteSessionResponse, Seq: 9, Cause: pkt.GTPv2CauseAccepted}
				c.sendGTPv2(resp2, func() {
					cmd := &pkt.S1APMsg{
						Procedure: pkt.S1APUEContextReleaseCommand,
						ENBUEID:   sess.ENBUEID, MMEUEID: sess.MMEUEID, Cause: 3, // detach
					}
					c.sendS1AP(cmd, func() {
						sess.ENB.releaseContext(sess)
						complete := &pkt.S1APMsg{
							Procedure: pkt.S1APUEContextReleaseComplete,
							ENBUEID:   sess.ENBUEID, MMEUEID: sess.MMEUEID,
						}
						c.sendS1AP(complete, func() {
							sess.setState(c.Eng, StateDetached)
							delete(c.sessions, sess.IMSI)
							delete(c.byIP, sess.UEIP)
							sess.UE.completeDetach()
							if done != nil {
								done()
							}
						})
					})
				})
			})
		})
	})
}

// --- S1 release (idle transition) ---

// onReleaseRequest handles the eNB's UE Context Release Request after the
// inactivity timer fires.
func (m *MME) onReleaseRequest(sess *Session) {
	c := m.core
	if sess.State != StateConnected {
		return
	}
	m.Releases++
	sess.setState(c.Eng, StateIdle)
	// MME -> SGW-C: Release Access Bearers (drops eNB-facing state).
	raReq := &pkt.GTPv2Msg{Type: pkt.GTPv2ReleaseAccessBearersRequest, Seq: 3, IMSI: sess.IMSI}
	c.sendGTPv2(raReq, func() {
		// SGW-C deletes the SGW-U downlink rules: later downlink traffic
		// misses and triggers paging.
		for _, b := range sess.Bearers {
			c.removeSGWDownlink(sess, b)
		}
		raResp := &pkt.GTPv2Msg{Type: pkt.GTPv2ReleaseAccessBearersResponse, Seq: 3, Cause: pkt.GTPv2CauseAccepted}
		c.sendGTPv2(raResp, func() {
			cmd := &pkt.S1APMsg{
				Procedure: pkt.S1APUEContextReleaseCommand,
				ENBUEID:   sess.ENBUEID, MMEUEID: sess.MMEUEID, Cause: 20, // user-inactivity
			}
			c.sendS1AP(cmd, func() {
				sess.ENB.releaseContext(sess)
				complete := &pkt.S1APMsg{
					Procedure: pkt.S1APUEContextReleaseComplete,
					ENBUEID:   sess.ENBUEID, MMEUEID: sess.MMEUEID,
				}
				c.sendS1AP(complete, func() {})
			})
		})
	})
}

// --- Service request (promotion) ---

// onServiceRequest handles the eNB's InitialUEMessage{Service Request} when
// an idle UE has data to send (or responds to paging).
func (m *MME) onServiceRequest(sess *Session) {
	c := m.core
	if sess.State != StateIdle {
		return
	}
	m.Promotions++
	sess.setState(c.Eng, StatePromoting)

	// Rebuild the E-RAB list for every bearer of the session.
	var erabs []pkt.ERABItem
	for _, b := range sess.Bearers {
		sgw := c.SGWC.planes[b.SGWPlane]
		erabs = append(erabs, pkt.ERABItem{
			ERABID: b.EBI, QoS: &b.QoS,
			Transport: pkt.FTEID{IfaceType: pkt.FTEIDIfaceS1USGW, TEID: b.S1UL, Addr: sgw.Addr()},
			TFT:       b.TFT,
		})
	}
	icsReq := &pkt.S1APMsg{
		Procedure: pkt.S1APInitialContextSetupRequest,
		ENBUEID:   sess.ENBUEID, MMEUEID: sess.MMEUEID,
		ERABs: erabs,
	}
	c.sendS1AP(icsReq, func() {
		var respItems []pkt.ERABItem
		for _, b := range sess.Bearers {
			b.S1DL = sess.ENB.attachBearer(sess, b)
			respItems = append(respItems, pkt.ERABItem{
				ERABID:    b.EBI,
				Transport: pkt.FTEID{IfaceType: pkt.FTEIDIfaceS1UeNodeB, TEID: b.S1DL, Addr: sess.ENB.Addr()},
			})
		}
		icsResp := &pkt.S1APMsg{
			Procedure: pkt.S1APInitialContextSetupResponse,
			ENBUEID:   sess.ENBUEID, MMEUEID: sess.MMEUEID,
			ERABs: respItems,
		}
		c.sendS1AP(icsResp, func() {
			var mbItems []pkt.BearerContext
			for _, b := range sess.Bearers {
				mbItems = append(mbItems, pkt.BearerContext{
					EBI:    b.EBI,
					FTEIDs: []pkt.FTEID{{IfaceType: pkt.FTEIDIfaceS1UeNodeB, TEID: b.S1DL, Addr: sess.ENB.Addr()}},
				})
			}
			mbReq := &pkt.GTPv2Msg{Type: pkt.GTPv2ModifyBearerRequest, Seq: 4, IMSI: sess.IMSI, Bearers: mbItems}
			c.sendGTPv2(mbReq, func() {
				// SGW-C reinstalls the SGW-U downlink rules toward the new
				// eNB TEIDs (PGW-U state is unchanged).
				for _, b := range sess.Bearers {
					c.installSGWDownlink(sess, b)
				}
				mbResp := &pkt.GTPv2Msg{Type: pkt.GTPv2ModifyBearerResponse, Seq: 4, Cause: pkt.GTPv2CauseAccepted}
				c.sendGTPv2(mbResp, func() {
					// NAS service accept closes the promotion exchange.
					accept := &pkt.S1APMsg{
						Procedure: pkt.S1APDownlinkNASTransport,
						ENBUEID:   sess.ENBUEID, MMEUEID: sess.MMEUEID,
						NAS: (&pkt.NASMsg{Type: pkt.NASServiceAccept}).Encode(nil),
					}
					c.sendS1AP(accept, func() {
						sess.setState(c.Eng, StateConnected)
						sess.ENB.flushUplink(sess)
					})
				})
			})
		})
	})
}

// page sends an S1AP Paging message and delivers the page to the UE over
// the radio; the UE answers with a service request.
func (m *MME) page(sess *Session) {
	c := m.core
	if sess.State != StateIdle {
		return
	}
	m.Pagings++
	msg := &pkt.S1APMsg{Procedure: pkt.S1APPaging, MMEUEID: sess.MMEUEID}
	c.sendS1AP(msg, func() {
		sess.ENB.pageUE(sess)
	})
}

// --- Dedicated bearer S1AP leg ---

// onCreateBearerRequest is the MME's role in dedicated bearer activation:
// run the E-RAB Setup exchange with the eNB (which delivers the TFT to the
// UE in the RRC reconfiguration) and report back to the SGW-C.
func (m *MME) onCreateBearerRequest(sess *Session, b *Bearer, done func(error)) {
	c := m.core
	doSetup := func() {
		sgw := c.SGWC.planes[b.SGWPlane]
		// The NAS Activate Dedicated EPS Bearer Context Request carries the
		// QoS and TFT the eNB relays to the UE in the RRC reconfiguration.
		activateNAS := (&pkt.NASMsg{
			Type:      pkt.NASActivateDedicatedBearerRequest,
			EBI:       b.EBI,
			LinkedEBI: EBIDefault,
			QoS:       &b.QoS,
			TFT:       b.TFT,
		}).Encode(nil)
		req := &pkt.S1APMsg{
			Procedure: pkt.S1APERABSetupRequest,
			ENBUEID:   sess.ENBUEID, MMEUEID: sess.MMEUEID,
			NAS: activateNAS,
			ERABs: []pkt.ERABItem{{
				ERABID: b.EBI, QoS: &b.QoS,
				Transport: pkt.FTEID{IfaceType: pkt.FTEIDIfaceS1USGW, TEID: b.S1UL, Addr: sgw.Addr()},
				TFT:       b.TFT,
			}},
		}
		c.sendS1AP(req, func() {
			b.S1DL = sess.ENB.attachBearer(sess, b)
			if err := sess.UE.installTFTFromNAS(activateNAS); err != nil {
				panic("epc: NAS bearer activation round trip failed: " + err.Error())
			}
			resp := &pkt.S1APMsg{
				Procedure: pkt.S1APERABSetupResponse,
				ENBUEID:   sess.ENBUEID, MMEUEID: sess.MMEUEID,
				ERABs: []pkt.ERABItem{{
					ERABID:    b.EBI,
					Transport: pkt.FTEID{IfaceType: pkt.FTEIDIfaceS1UeNodeB, TEID: b.S1DL, Addr: sess.ENB.Addr()},
				}},
			}
			c.sendS1AP(resp, func() {
				if done != nil {
					done(nil)
				}
			})
		})
	}
	switch sess.State {
	case StateConnected:
		doSetup()
	case StateIdle:
		// Wake the UE first; bearer setup rides after promotion.
		sess.whenConnected(doSetup)
		m.page(sess)
	case StatePromoting, StateConnecting:
		sess.whenConnected(doSetup)
	default:
		if done != nil {
			done(fmt.Errorf("epc: UE %s in state %v", sess.IMSI, sess.State))
		}
	}
}

// onDeleteBearerRequest releases the radio leg of a dedicated bearer.
func (m *MME) onDeleteBearerRequest(sess *Session, b *Bearer, done func()) {
	c := m.core
	cmd := &pkt.S1APMsg{
		Procedure: pkt.S1APERABReleaseCommand,
		ENBUEID:   sess.ENBUEID, MMEUEID: sess.MMEUEID,
		ERABs: []pkt.ERABItem{{ERABID: b.EBI}},
	}
	c.sendS1AP(cmd, func() {
		sess.ENB.detachBearer(sess, b.EBI)
		sess.UE.removeTFT(b.EBI)
		resp := &pkt.S1APMsg{
			Procedure: pkt.S1APERABReleaseResponse,
			ENBUEID:   sess.ENBUEID, MMEUEID: sess.MMEUEID,
		}
		c.sendS1AP(resp, done)
	})
}
