package epc

import (
	"fmt"

	"acacia/internal/pkt"
	"acacia/internal/telemetry"
)

// MME is the mobility management entity: it terminates S1AP from the eNBs
// and drives session procedures over GTPv2 toward the SGW-C.
type MME struct {
	core *Core
	// Stats.
	Attaches   uint64
	Releases   uint64
	Promotions uint64
	Pagings    uint64
	Handovers  uint64

	// OnHandoverComplete, when set, fires after a successful handover's
	// path switch with the session and the eNBs it moved between. The MRS
	// hooks it to learn the UE's new serving cell and rebind the MEC
	// session when the move crosses edge-site coverage.
	OnHandoverComplete func(sess *Session, source, target *ENB)

	// Handover telemetry (registered by NewCore).
	hoScope     telemetry.Scope
	hoCompleted *telemetry.Counter
	hoFailed    *telemetry.Counter
	hoGap       *telemetry.Histogram
}

// --- Attach ---

// onInitialAttach handles an InitialUEMessage carrying an attach request.
// defaultPlanes name the (central) user planes serving the default bearer.
// pr is the attach procedure opened at the eNB; it concludes when the
// attach completes or any leg fails terminally.
func (m *MME) onInitialAttach(pr *proc, enb *ENB, ue *UE, sgwPlane, pgwPlane string) {
	c := m.core
	sub, ok := c.HSS.Lookup(ue.IMSI)
	if !ok {
		pr.finish(fmt.Errorf("epc: IMSI %s unknown to HSS", ue.IMSI))
		return
	}
	if c.sessions[ue.IMSI] != nil {
		pr.finish(fmt.Errorf("epc: IMSI %s already attached", ue.IMSI))
		return
	}
	planes, err := c.internPlanes(sgwPlane, pgwPlane)
	if err != nil {
		pr.finish(fmt.Errorf("epc: unknown default planes %q/%q", sgwPlane, pgwPlane))
		return
	}
	m.Attaches++
	c.nextUEID++
	sess := &Session{
		IMSI:       ue.IMSI,
		ENB:        enb,
		UE:         ue,
		APN:        c.internAPN(defaultAPN, planes),
		MMEUEID:    c.nextUEID,
		ENBUEID:    c.nextUEID | 0x1000000,
		AttachedAt: c.Eng.Now(),
	}
	sess.setState(c.Eng, StateConnecting)
	c.sessions[ue.IMSI] = sess
	// If any leg of the attach times out, unwind the half-built session so
	// the UE can retry from scratch.
	pr.onError(func() {
		delete(c.sessions, ue.IMSI)
		if !sess.UEIP.IsZero() {
			delete(c.byIP, sess.UEIP)
		}
		sess.setState(c.Eng, StateDetached)
	})

	// MME -> SGW-C: Create Session Request (S11).
	b := &Bearer{EBI: EBIDefault, QoS: c.internQoS(sub.DefaultQoS), Planes: planes}
	csReq := &pkt.GTPv2Msg{
		Type:    pkt.GTPv2CreateSessionRequest,
		IMSI:    ue.IMSI,
		Bearers: []pkt.BearerContext{{EBI: b.EBI, QoS: b.QoS}},
	}
	c.sendGTPv2(pr, c.mmeEP, c.sgwEP, csReq, func() {
		// SGW-C allocates its TEIDs, forwards Create Session to the PGW-C.
		b.S1UL = c.SGWC.teids.alloc()
		b.S5DL = c.SGWC.teids.alloc()
		fwd := &pkt.GTPv2Msg{
			Type:        pkt.GTPv2CreateSessionRequest,
			IMSI:        ue.IMSI,
			SenderFTEID: &pkt.FTEID{IfaceType: pkt.FTEIDIfaceS5SGW, TEID: b.S5DL, Addr: planes.SGW.Addr()},
			Bearers:     []pkt.BearerContext{{EBI: b.EBI, QoS: b.QoS}},
		}
		c.sendGTPv2(pr, c.sgwEP, c.pgwEP, fwd, func() {
			// PGW-C (PCEF): confirm the UE's statically bound address (the
			// PAA) and allocate the S5 TEID.
			sess.UEIP = sess.UE.Addr()
			c.byIP[sess.UEIP] = sess
			b.S5UL = c.PGWC.teids.alloc()
			resp := &pkt.GTPv2Msg{
				Type:  pkt.GTPv2CreateSessionResponse,
				Cause: pkt.GTPv2CauseAccepted, PAA: sess.UEIP,
				SenderFTEID: &pkt.FTEID{IfaceType: pkt.FTEIDIfaceS5PGW, TEID: b.S5UL, Addr: planes.PGW.Addr()},
				Bearers:     []pkt.BearerContext{{EBI: b.EBI, Cause: pkt.GTPv2CauseAccepted}},
			}
			c.sendGTPv2(pr, c.pgwEP, c.sgwEP, resp, func() {
				// SGW-C -> MME: Create Session Response with the S1-U
				// F-TEID the eNB must send uplink to.
				resp2 := &pkt.GTPv2Msg{
					Type:  pkt.GTPv2CreateSessionResponse,
					Cause: pkt.GTPv2CauseAccepted, PAA: sess.UEIP,
					Bearers: []pkt.BearerContext{{
						EBI: b.EBI, Cause: pkt.GTPv2CauseAccepted,
						FTEIDs: []pkt.FTEID{{IfaceType: pkt.FTEIDIfaceS1USGW, TEID: b.S1UL, Addr: planes.SGW.Addr()}},
					}},
				}
				c.sendGTPv2(pr, c.sgwEP, c.mmeEP, resp2, func() {
					m.setupInitialContext(pr, sess, b)
				})
			})
		})
	})
}

// setupInitialContext runs the S1AP Initial Context Setup exchange with the
// eNB and the follow-up Modify Bearer toward the SGW-C.
func (m *MME) setupInitialContext(pr *proc, sess *Session, b *Bearer) {
	c := m.core
	sgw := b.Planes.SGW
	acceptNAS := c.encodeNAS(&pkt.NASMsg{
		Type: pkt.NASAttachAccept,
		ESM: &pkt.NASMsg{
			Type: pkt.NASActivateDefaultBearerRequest,
			EBI:  b.EBI, APN: sess.APN.Name, UEIP: sess.UEIP, QoS: b.QoS,
		},
	})
	icsReq := &pkt.S1APMsg{
		Procedure: pkt.S1APInitialContextSetupRequest,
		ENBUEID:   sess.ENBUEID, MMEUEID: sess.MMEUEID,
		NAS: acceptNAS,
		ERABs: []pkt.ERABItem{{
			ERABID: b.EBI, QoS: b.QoS,
			Transport: pkt.FTEID{IfaceType: pkt.FTEIDIfaceS1USGW, TEID: b.S1UL, Addr: sgw.Addr()},
		}},
	}
	c.sendS1AP(pr, c.mmeEP, sess.ENB.ep, icsReq, func() {
		// eNB allocates its downlink TEID and attaches the radio bearer.
		b.S1DL = sess.ENB.attachBearer(sess, b)
		icsResp := &pkt.S1APMsg{
			Procedure: pkt.S1APInitialContextSetupResponse,
			ENBUEID:   sess.ENBUEID, MMEUEID: sess.MMEUEID,
			ERABs: []pkt.ERABItem{{
				ERABID:    b.EBI,
				Transport: pkt.FTEID{IfaceType: pkt.FTEIDIfaceS1UeNodeB, TEID: b.S1DL, Addr: sess.ENB.Addr()},
			}},
		}
		c.sendS1AP(pr, sess.ENB.ep, c.mmeEP, icsResp, func() {
			// MME -> SGW-C: Modify Bearer with the eNB F-TEID.
			mbReq := &pkt.GTPv2Msg{
				Type: pkt.GTPv2ModifyBearerRequest, IMSI: sess.IMSI,
				Bearers: []pkt.BearerContext{{
					EBI:    b.EBI,
					FTEIDs: []pkt.FTEID{{IfaceType: pkt.FTEIDIfaceS1UeNodeB, TEID: b.S1DL, Addr: sess.ENB.Addr()}},
				}},
			}
			c.sendGTPv2(pr, c.mmeEP, c.sgwEP, mbReq, func() {
				mbResp := &pkt.GTPv2Msg{
					Type: pkt.GTPv2ModifyBearerResponse, Cause: pkt.GTPv2CauseAccepted,
					Bearers: []pkt.BearerContext{{EBI: b.EBI, Cause: pkt.GTPv2CauseAccepted}},
				}
				c.sendGTPv2(pr, c.sgwEP, c.mmeEP, mbResp, func() {
					sess.Bearers[b.EBI] = b
					c.installBearerFlows(sess, b)
					// UE -> MME attach complete.
					complete := &pkt.S1APMsg{
						Procedure: pkt.S1APUplinkNASTransport,
						ENBUEID:   sess.ENBUEID, MMEUEID: sess.MMEUEID,
						NAS: c.encodeNAS(&pkt.NASMsg{Type: pkt.NASAttachComplete}),
					}
					c.sendS1AP(pr, sess.ENB.ep, c.mmeEP, complete, func() {
						sess.UE.completeAttach(sess)
						sess.setState(c.Eng, StateConnected)
						pr.finish(nil)
					})
				})
			})
		})
	})
}

// --- Detach ---

// onDetach handles a UE-initiated detach: tear down every bearer's user
// plane, delete the session at the gateways (Delete Session Request on S11
// and S5), and release the radio context.
func (m *MME) onDetach(pr *proc, sess *Session) {
	c := m.core
	req := &pkt.GTPv2Msg{Type: pkt.GTPv2DeleteSessionRequest, IMSI: sess.IMSI}
	c.sendGTPv2(pr, c.mmeEP, c.sgwEP, req, func() {
		fwd := &pkt.GTPv2Msg{Type: pkt.GTPv2DeleteSessionRequest, IMSI: sess.IMSI}
		c.sendGTPv2(pr, c.sgwEP, c.pgwEP, fwd, func() {
			// PGW-C: drop flows, return GBR reservations.
			c.releaseSessionResources(sess)
			resp := &pkt.GTPv2Msg{Type: pkt.GTPv2DeleteSessionResponse, Cause: pkt.GTPv2CauseAccepted}
			c.sendGTPv2(pr, c.pgwEP, c.sgwEP, resp, func() {
				resp2 := &pkt.GTPv2Msg{Type: pkt.GTPv2DeleteSessionResponse, Cause: pkt.GTPv2CauseAccepted}
				c.sendGTPv2(pr, c.sgwEP, c.mmeEP, resp2, func() {
					cmd := &pkt.S1APMsg{
						Procedure: pkt.S1APUEContextReleaseCommand,
						ENBUEID:   sess.ENBUEID, MMEUEID: sess.MMEUEID, Cause: 3, // detach
					}
					c.sendS1AP(pr, c.mmeEP, sess.ENB.ep, cmd, func() {
						sess.ENB.releaseContext(sess)
						complete := &pkt.S1APMsg{
							Procedure: pkt.S1APUEContextReleaseComplete,
							ENBUEID:   sess.ENBUEID, MMEUEID: sess.MMEUEID,
						}
						c.sendS1AP(pr, sess.ENB.ep, c.mmeEP, complete, func() {
							sess.setState(c.Eng, StateDetached)
							delete(c.sessions, sess.IMSI)
							delete(c.byIP, sess.UEIP)
							sess.UE.completeDetach()
							pr.finish(nil)
						})
					})
				})
			})
		})
	})
}

// --- S1 release (idle transition) ---

// onReleaseRequest handles the eNB's UE Context Release Request after the
// inactivity timer fires.
func (m *MME) onReleaseRequest(pr *proc, sess *Session) {
	c := m.core
	if sess.State != StateConnected {
		pr.finish(nil)
		return
	}
	m.Releases++
	sess.setState(c.Eng, StateIdle)
	// MME -> SGW-C: Release Access Bearers (drops eNB-facing state).
	raReq := &pkt.GTPv2Msg{Type: pkt.GTPv2ReleaseAccessBearersRequest, IMSI: sess.IMSI}
	c.sendGTPv2(pr, c.mmeEP, c.sgwEP, raReq, func() {
		// SGW-C deletes the SGW-U downlink rules: later downlink traffic
		// misses and triggers paging.
		for _, b := range sess.OrderedBearers() {
			c.removeSGWDownlink(sess, b)
		}
		raResp := &pkt.GTPv2Msg{Type: pkt.GTPv2ReleaseAccessBearersResponse, Cause: pkt.GTPv2CauseAccepted}
		c.sendGTPv2(pr, c.sgwEP, c.mmeEP, raResp, func() {
			cmd := &pkt.S1APMsg{
				Procedure: pkt.S1APUEContextReleaseCommand,
				ENBUEID:   sess.ENBUEID, MMEUEID: sess.MMEUEID, Cause: 20, // user-inactivity
			}
			c.sendS1AP(pr, c.mmeEP, sess.ENB.ep, cmd, func() {
				sess.ENB.releaseContext(sess)
				complete := &pkt.S1APMsg{
					Procedure: pkt.S1APUEContextReleaseComplete,
					ENBUEID:   sess.ENBUEID, MMEUEID: sess.MMEUEID,
				}
				c.sendS1AP(pr, sess.ENB.ep, c.mmeEP, complete, func() { pr.finish(nil) })
			})
		})
	})
}

// --- Service request (promotion) ---

// onServiceRequest handles the eNB's InitialUEMessage{Service Request} when
// an idle UE has data to send (or responds to paging).
func (m *MME) onServiceRequest(pr *proc, sess *Session) {
	c := m.core
	if sess.State != StateIdle {
		pr.finish(nil)
		return
	}
	m.Promotions++
	sess.setState(c.Eng, StatePromoting)

	// Rebuild the E-RAB list for every bearer of the session.
	var erabs []pkt.ERABItem
	for _, b := range sess.OrderedBearers() {
		erabs = append(erabs, pkt.ERABItem{
			ERABID: b.EBI, QoS: b.QoS,
			Transport: pkt.FTEID{IfaceType: pkt.FTEIDIfaceS1USGW, TEID: b.S1UL, Addr: b.Planes.SGW.Addr()},
			TFT:       b.TFT,
		})
	}
	icsReq := &pkt.S1APMsg{
		Procedure: pkt.S1APInitialContextSetupRequest,
		ENBUEID:   sess.ENBUEID, MMEUEID: sess.MMEUEID,
		ERABs: erabs,
	}
	c.sendS1AP(pr, c.mmeEP, sess.ENB.ep, icsReq, func() {
		var respItems []pkt.ERABItem
		for _, b := range sess.OrderedBearers() {
			b.S1DL = sess.ENB.attachBearer(sess, b)
			respItems = append(respItems, pkt.ERABItem{
				ERABID:    b.EBI,
				Transport: pkt.FTEID{IfaceType: pkt.FTEIDIfaceS1UeNodeB, TEID: b.S1DL, Addr: sess.ENB.Addr()},
			})
		}
		icsResp := &pkt.S1APMsg{
			Procedure: pkt.S1APInitialContextSetupResponse,
			ENBUEID:   sess.ENBUEID, MMEUEID: sess.MMEUEID,
			ERABs: respItems,
		}
		c.sendS1AP(pr, sess.ENB.ep, c.mmeEP, icsResp, func() {
			var mbItems []pkt.BearerContext
			for _, b := range sess.OrderedBearers() {
				mbItems = append(mbItems, pkt.BearerContext{
					EBI:    b.EBI,
					FTEIDs: []pkt.FTEID{{IfaceType: pkt.FTEIDIfaceS1UeNodeB, TEID: b.S1DL, Addr: sess.ENB.Addr()}},
				})
			}
			mbReq := &pkt.GTPv2Msg{Type: pkt.GTPv2ModifyBearerRequest, IMSI: sess.IMSI, Bearers: mbItems}
			c.sendGTPv2(pr, c.mmeEP, c.sgwEP, mbReq, func() {
				// SGW-C reinstalls the SGW-U downlink rules toward the new
				// eNB TEIDs (PGW-U state is unchanged).
				for _, b := range sess.OrderedBearers() {
					c.installSGWDownlink(sess, b)
				}
				mbResp := &pkt.GTPv2Msg{Type: pkt.GTPv2ModifyBearerResponse, Cause: pkt.GTPv2CauseAccepted}
				c.sendGTPv2(pr, c.sgwEP, c.mmeEP, mbResp, func() {
					// NAS service accept closes the promotion exchange.
					accept := &pkt.S1APMsg{
						Procedure: pkt.S1APDownlinkNASTransport,
						ENBUEID:   sess.ENBUEID, MMEUEID: sess.MMEUEID,
						NAS: c.encodeNAS(&pkt.NASMsg{Type: pkt.NASServiceAccept}),
					}
					c.sendS1AP(pr, c.mmeEP, sess.ENB.ep, accept, func() {
						sess.setState(c.Eng, StateConnected)
						sess.ENB.flushUplink(sess)
						pr.finish(nil)
					})
				})
			})
		})
	})
}

// page sends an S1AP Paging message and delivers the page to the UE over
// the radio; the UE answers with a service request.
func (m *MME) page(sess *Session) {
	c := m.core
	if sess.State != StateIdle {
		return
	}
	m.Pagings++
	pr := newProc(nil)
	msg := &pkt.S1APMsg{Procedure: pkt.S1APPaging, MMEUEID: sess.MMEUEID}
	c.sendS1AP(pr, c.mmeEP, sess.ENB.ep, msg, func() {
		sess.ENB.pageUE(sess)
		pr.finish(nil)
	})
}

// --- Dedicated bearer S1AP leg ---

// onCreateBearerRequest is the MME's role in dedicated bearer activation:
// run the E-RAB Setup exchange with the eNB (which delivers the TFT to the
// UE in the RRC reconfiguration) and report back to the SGW-C. done carries
// the protocol-level outcome (acceptance or denial); transport failures
// conclude pr directly.
func (m *MME) onCreateBearerRequest(pr *proc, sess *Session, b *Bearer, done func(error)) {
	c := m.core
	doSetup := func() {
		sgw := b.Planes.SGW
		// The NAS Activate Dedicated EPS Bearer Context Request carries the
		// QoS and TFT the eNB relays to the UE in the RRC reconfiguration.
		// Encoded into a fresh slice (not the core's NAS scratch): the bytes
		// are re-decoded at the UE after the asynchronous S1AP delivery, so
		// they must survive intervening encodes.
		activateNAS := (&pkt.NASMsg{
			Type:      pkt.NASActivateDedicatedBearerRequest,
			EBI:       b.EBI,
			LinkedEBI: EBIDefault,
			QoS:       b.QoS,
			TFT:       b.TFT,
		}).Encode(nil)
		req := &pkt.S1APMsg{
			Procedure: pkt.S1APERABSetupRequest,
			ENBUEID:   sess.ENBUEID, MMEUEID: sess.MMEUEID,
			NAS: activateNAS,
			ERABs: []pkt.ERABItem{{
				ERABID: b.EBI, QoS: b.QoS,
				Transport: pkt.FTEID{IfaceType: pkt.FTEIDIfaceS1USGW, TEID: b.S1UL, Addr: sgw.Addr()},
				TFT:       b.TFT,
			}},
		}
		c.sendS1AP(pr, c.mmeEP, sess.ENB.ep, req, func() {
			b.S1DL = sess.ENB.attachBearer(sess, b)
			if err := sess.UE.installTFTFromNAS(activateNAS); err != nil {
				panic("epc: NAS bearer activation round trip failed: " + err.Error())
			}
			resp := &pkt.S1APMsg{
				Procedure: pkt.S1APERABSetupResponse,
				ENBUEID:   sess.ENBUEID, MMEUEID: sess.MMEUEID,
				ERABs: []pkt.ERABItem{{
					ERABID:    b.EBI,
					Transport: pkt.FTEID{IfaceType: pkt.FTEIDIfaceS1UeNodeB, TEID: b.S1DL, Addr: sess.ENB.Addr()},
				}},
			}
			c.sendS1AP(pr, sess.ENB.ep, c.mmeEP, resp, func() {
				done(nil)
			})
		})
	}
	switch sess.State {
	case StateConnected:
		doSetup()
	case StateIdle:
		// Wake the UE first; bearer setup rides after promotion.
		sess.whenConnected(pr.step(doSetup))
		m.page(sess)
	case StatePromoting, StateConnecting:
		sess.whenConnected(pr.step(doSetup))
	default:
		done(fmt.Errorf("epc: UE %s in state %v", sess.IMSI, sess.State))
	}
}

// onDeleteBearerRequest releases the radio leg of a dedicated bearer.
func (m *MME) onDeleteBearerRequest(pr *proc, sess *Session, b *Bearer, done func()) {
	c := m.core
	cmd := &pkt.S1APMsg{
		Procedure: pkt.S1APERABReleaseCommand,
		ENBUEID:   sess.ENBUEID, MMEUEID: sess.MMEUEID,
		ERABs: []pkt.ERABItem{{ERABID: b.EBI}},
	}
	c.sendS1AP(pr, c.mmeEP, sess.ENB.ep, cmd, func() {
		sess.ENB.detachBearer(sess, b.EBI)
		sess.UE.removeTFT(b.EBI)
		resp := &pkt.S1APMsg{
			Procedure: pkt.S1APERABReleaseResponse,
			ENBUEID:   sess.ENBUEID, MMEUEID: sess.MMEUEID,
		}
		c.sendS1AP(pr, sess.ENB.ep, c.mmeEP, resp, done)
	})
}
