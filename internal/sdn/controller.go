package sdn

import (
	"fmt"
	"time"

	"acacia/internal/ctl"
	"acacia/internal/netsim"
	"acacia/internal/pkt"
	"acacia/internal/sim"
	"acacia/internal/telemetry"
)

// MsgStats accounts controller-channel traffic by direction: message counts
// and serialized byte totals. These feed the §4 control-overhead numbers.
// It is a point-in-time view of the counters the controller registers under
// sdn/controller/ in the engine's telemetry registry.
type MsgStats struct {
	Sent      uint64
	SentBytes uint64
	Received  uint64
	RecvBytes uint64
}

// PacketInHandler reacts to a table miss: it receives the switch, ingress
// port, the (already decapsulated) packet and the tunnel metadata it
// carried. The packet is the controller's to keep — buffer-and-page logic
// re-injects it after installing state. Experiments without reactive setup
// may leave the handler nil (misses are then dropped).
type PacketInHandler func(sw *Switch, inPort uint32, p *netsim.Packet, tunnelID uint64)

// Controller is the OpenFlow controller (the testbed's Ryu analog extended
// with GTP flow management). It serializes every message it exchanges with
// its switches so the control-plane byte accounting reflects real
// encodings.
type Controller struct {
	eng *sim.Engine
	// RTT is the one-way control-channel latency applied to FlowMods and
	// PacketIns (the controller usually sits next to the GW-Us).
	RTT time.Duration

	switches map[uint64]*Switch
	// byName indexes switches by node name so per-message resolution is a
	// map probe; order remembers switch registration order for the places
	// where iteration sequence matters (control-channel wiring creates
	// links, and with them metric naming and RNG consumption, in a
	// deterministic order that map iteration would not give).
	byName map[string]*Switch
	order  []*Switch
	xid    uint32

	// Transactional control channel, enabled by EnableTransport. When nil,
	// control messages fall back to fixed-RTT scheduling (standalone
	// controllers without a network, e.g. microbenchmarks).
	tr *ctl.Transport
	ep *ctl.Endpoint

	// OnPacketIn handles reactive flow setup.
	OnPacketIn PacketInHandler

	// OnPathEvent observes GTP-U path supervision transitions reported by
	// switches running a PathMonitor (down=true on failure, false on
	// recovery). The MEC layer sets it to drive edge-site failover.
	OnPathEvent func(sw *Switch, peer pkt.Addr, down bool)

	// Channel counters, registered under sdn/controller/ in the engine's
	// telemetry registry. Stats() assembles the MsgStats compat view.
	sent      *telemetry.Counter
	sentBytes *telemetry.Counter
	recv      *telemetry.Counter
	recvBytes *telemetry.Counter

	// ByType counts messages per OpenFlow message type.
	ByType map[pkt.OFMsgType]uint64

	// encBuf is the controller-lifetime scratch the accounting encoders
	// serialize into; only the encoded length outlives each call.
	encBuf []byte
}

// NewController creates a controller on eng.
func NewController(eng *sim.Engine) *Controller {
	scope := eng.Metrics().Scope("sdn").Scope("controller")
	return &Controller{
		eng:       eng,
		switches:  make(map[uint64]*Switch),
		byName:    make(map[string]*Switch),
		ByType:    make(map[pkt.OFMsgType]uint64),
		sent:      scope.Counter("sent"),
		sentBytes: scope.Counter("sent-bytes"),
		recv:      scope.Counter("received"),
		recvBytes: scope.Counter("recv-bytes"),
	}
}

// Stats reports channel counters, read back from the telemetry registry.
func (c *Controller) Stats() MsgStats {
	return MsgStats{
		Sent:      c.sent.Value(),
		SentBytes: c.sentBytes.Value(),
		Received:  c.recv.Value(),
		RecvBytes: c.recvBytes.Value(),
	}
}

// AddSwitch connects a switch to the controller (the OpenFlow Hello
// exchange).
func (c *Controller) AddSwitch(sw *Switch) {
	if _, dup := c.switches[sw.DPID]; dup {
		panic(fmt.Sprintf("sdn: duplicate dpid %d", sw.DPID))
	}
	c.switches[sw.DPID] = sw
	c.byName[sw.node.Name()] = sw
	c.order = append(c.order, sw)
	sw.controller = c
	if c.tr != nil {
		c.wireSwitch(sw)
	}
	// The Hello exchange happens while the channel comes up, before the
	// transport exists; it stays accounting-only.
	hello := &pkt.OFMsg{Type: pkt.OFHello, XID: c.nextXID()}
	c.accountSent(hello)
	c.accountReceived(hello) // symmetric hello from the switch
}

// EnableTransport moves the controller's OpenFlow channel onto the network:
// node becomes the controller's control endpoint and every registered (and
// future) switch gets a dedicated control link with transactional delivery
// (retransmission on loss, duplicate suppression). Without it the controller
// keeps the legacy fixed-RTT model.
func (c *Controller) EnableTransport(tr *ctl.Transport, node *netsim.Node) {
	c.tr = tr
	c.ep = tr.Endpoint(node, true)
	for _, sw := range c.order {
		c.wireSwitch(sw)
	}
}

// wireSwitch creates the switch's control endpoint and its link to the
// controller. The RTT config becomes the link's propagation delay, so the
// old fixed latency is now an emergent property of the wire.
func (c *Controller) wireSwitch(sw *Switch) {
	if sw.ctlEP != nil {
		return
	}
	ep := c.tr.Endpoint(sw.node, false)
	ctl.Connect(c.ep, ep, netsim.LinkConfig{BitsPerSecond: 1e9, Propagation: c.RTT})
	sw.ctlEP = ep
}

// toSwitch delivers a controller-to-switch message: over the transactional
// transport when the switch has a control link, otherwise after the legacy
// fixed RTT. A switch living in another partition (intra-run parallelism)
// receives the apply closure through the cluster outbox; the control RTT
// must then be at least the cluster lookahead. Same-partition delivery is
// byte-identical to the historical Schedule call.
func (c *Controller) toSwitch(sw *Switch, name string, size int, fn func()) {
	if c.ep != nil && sw.ctlEP != nil {
		seq := c.ep.NextSeq(sw.ctlEP.Addr())
		c.ep.Send(sw.ctlEP.Addr(), seq, name, size, fn, nil, nil)
		return
	}
	c.eng.CrossSchedule(sw.eng, c.RTT, fn)
}

// toController delivers a switch-to-controller message symmetrically.
func (c *Controller) toController(sw *Switch, name string, size int, fn func()) {
	if c.ep != nil && sw.ctlEP != nil {
		seq := sw.ctlEP.NextSeq(c.ep.Addr())
		sw.ctlEP.Send(c.ep.Addr(), seq, name, size, fn, nil, nil)
		return
	}
	c.eng.Schedule(c.RTT, fn)
}

// Switch returns the connected switch with the given datapath id, or nil.
func (c *Controller) Switch(dpid uint64) *Switch { return c.switches[dpid] }

// SwitchByName returns the connected switch on the named node, or nil — an
// O(1) probe for callers that would otherwise walk the registration order.
func (c *Controller) SwitchByName(name string) *Switch { return c.byName[name] }

// Switches returns the connected switches in registration order (the
// deterministic iteration base; the map views are index-only).
func (c *Controller) Switches() []*Switch { return c.order }

func (c *Controller) nextXID() uint32 {
	c.xid++
	return c.xid
}

//acacia:hotpath
func (c *Controller) accountSent(m *pkt.OFMsg) int {
	c.encBuf = m.Encode(c.encBuf[:0])
	n := len(c.encBuf)
	c.sent.Inc()
	c.sentBytes.Add(uint64(n))
	c.ByType[m.Type]++
	return n
}

//acacia:hotpath
func (c *Controller) accountReceived(m *pkt.OFMsg) int {
	c.encBuf = m.Encode(c.encBuf[:0])
	n := len(c.encBuf)
	c.recv.Inc()
	c.recvBytes.Add(uint64(n))
	c.ByType[m.Type]++
	return n
}

// InstallFlow sends a FlowMod(add) to the switch; the entry takes effect
// after the control RTT. The returned byte count is the serialized FlowMod
// size (used by overhead accounting).
func (c *Controller) InstallFlow(sw *Switch, e FlowEntry) int {
	msg := &pkt.OFMsg{
		Type: pkt.OFFlowMod, XID: c.nextXID(),
		Command:     pkt.FlowModAdd,
		Priority:    e.Priority,
		Cookie:      e.Cookie,
		IdleTimeout: uint16(e.IdleTimeout / time.Second),
		Match:       e.Match,
		Actions:     e.Actions,
	}
	n := c.accountSent(msg)
	c.toSwitch(sw, "FlowMod", n, func() { sw.installFlow(e) })
	return n
}

// RemoveFlows sends a FlowMod(delete) for all entries with the given
// cookie.
func (c *Controller) RemoveFlows(sw *Switch, cookie uint64) int {
	msg := &pkt.OFMsg{
		Type: pkt.OFFlowMod, XID: c.nextXID(),
		Command: pkt.FlowModDelete,
		Cookie:  cookie,
	}
	n := c.accountSent(msg)
	c.toSwitch(sw, "FlowMod", n, func() { sw.removeFlows(cookie) })
	return n
}

// assertSameEngine enforces the partitioned control-plane contract: the
// packet-in and flow-expiry paths mutate controller state — xid, accounting,
// the encode buffer — synchronously in the calling event, so they may only
// fire from the controller's own partition. Partitioned scenarios must
// pre-install covering permanent flows on remote-partition switches;
// tripping this panic means the scenario violates that contract. (Path
// status is exempt: pathStatus defers its controller-state mutation into the
// delivery closure, so partitioned sites may supervise their own fabric.)
func (c *Controller) assertSameEngine(sw *Switch) {
	if sw.eng != c.eng {
		panic("sdn: switch " + sw.node.Name() + " called into the controller from another partition (packet-in/path-status/flow-expiry must stay in the controller's partition)")
	}
}

// packetIn is called by a switch on a table miss.
func (c *Controller) packetIn(sw *Switch, inPort uint32, p *netsim.Packet, tunnelID uint64) {
	c.assertSameEngine(sw)
	msg := &pkt.OFMsg{
		Type: pkt.OFPacketIn, XID: c.nextXID(),
		BufferID: 0xffffffff,
		DataLen:  uint16(clampLen(p.Size, 128)), // truncated packet copy
		Match:    pkt.Match{InPort: pkt.U32(inPort), TunnelID: pkt.U64(tunnelID)},
	}
	n := c.accountReceived(msg)
	if c.OnPacketIn == nil {
		sw.dropped.Inc()
		return
	}
	c.toController(sw, "PacketIn", n, func() { c.OnPacketIn(sw, inPort, p, tunnelID) })
}

// pathStatus carries a switch's GTP path-state transition to the
// controller as a PortStatus message over the control channel (path
// supervision is port liveness in the GTP-tunnelled fabric).
//
// Unlike packet-in, a switch on a remote partition may report path status:
// the controller's xid, accounting counters and encode buffer are then
// touched only inside the delivery closure, which the transport (or the
// cluster outbox fallback) runs on the controller's own partition. The xid
// is allocated at delivery rather than at the transition in that case — the
// encoded length, and with it every counter, is xid-independent, so the
// accounting totals are identical once the message lands.
func (c *Controller) pathStatus(sw *Switch, peer pkt.Addr, down bool) {
	reason := uint8(0) // up
	if down {
		reason = 1
	}
	if sw.eng == c.eng {
		msg := &pkt.OFMsg{
			Type: pkt.OFPortStatus, XID: c.nextXID(),
			Reason: reason,
			Match:  pkt.Match{IPv4Src: pkt.AddrPtr(peer)},
		}
		n := c.accountReceived(msg)
		c.toController(sw, "PortStatus", n, func() {
			if c.OnPathEvent != nil {
				c.OnPathEvent(sw, peer, down)
			}
		})
		return
	}
	msg := pkt.OFMsg{
		Type: pkt.OFPortStatus, Reason: reason,
		Match: pkt.Match{IPv4Src: pkt.AddrPtr(peer)},
	}
	n := len(msg.Encode(nil))
	fn := func() {
		msg.XID = c.nextXID()
		c.accountReceived(&msg)
		if c.OnPathEvent != nil {
			c.OnPathEvent(sw, peer, down)
		}
	}
	if c.ep != nil && sw.ctlEP != nil {
		seq := sw.ctlEP.NextSeq(c.ep.Addr())
		sw.ctlEP.Send(c.ep.Addr(), seq, "PortStatus", n, fn, nil, nil)
		return
	}
	sw.eng.CrossSchedule(c.eng, c.RTT, fn)
}

// flowRemoved is called by a switch when an idle entry expires.
func (c *Controller) flowRemoved(sw *Switch, e *FlowEntry) {
	c.assertSameEngine(sw)
	msg := &pkt.OFMsg{
		Type: pkt.OFFlowRemoved, XID: c.nextXID(),
		Cookie: e.Cookie, Priority: e.Priority, Match: e.Match,
	}
	n := c.accountReceived(msg)
	if c.ep != nil && sw.ctlEP != nil {
		// The notification still rides the wire even though the controller
		// has no handler beyond accounting.
		c.toController(sw, "FlowRemoved", n, func() {})
	}
}

func clampLen(v, lim int) int {
	if v > lim {
		return lim
	}
	return v
}
