package sdn

import (
	"math/rand"
	"testing"

	"acacia/internal/netsim"
	"acacia/internal/pkt"
	"acacia/internal/sim"
)

// benchSwitch builds a bare switch (no links, no controller) to exercise
// table lookup in isolation.
func benchSwitch() *Switch {
	eng := sim.NewEngine(11)
	nw := netsim.New(eng)
	n := nw.AddNode("gw-u", pkt.AddrFrom(10, 9, 0, 1))
	return NewSwitch(1, n, ACACIAGWCosts)
}

// fillScaleTable installs n entries in the shapes the testbed actually uses:
// uplink TunnelID exact-match, downlink IPv4Dst (every fourth with IPv4Src
// too), and a low-priority background IPv4Src chain, plus one match-all
// catch-all so every probe resolves.
func fillScaleTable(sw *Switch, n int) {
	for i := 0; i < n; i++ {
		var e FlowEntry
		switch i % 4 {
		case 0:
			e = FlowEntry{Priority: 100, Cookie: uint64(i),
				Match:   pkt.Match{TunnelID: pkt.U64(uint64(1000 + i))},
				Actions: []pkt.Action{{Type: pkt.ActionOutput, Port: 0}}}
		case 1:
			e = FlowEntry{Priority: 100, Cookie: uint64(i),
				Match:   pkt.Match{IPv4Dst: pkt.AddrPtr(pkt.AddrFrom(172, 16, byte(i/250%250), byte(2+i%250)))},
				Actions: []pkt.Action{{Type: pkt.ActionOutput, Port: 0}}}
		case 2:
			e = FlowEntry{Priority: 110, Cookie: uint64(i),
				Match: pkt.Match{
					IPv4Dst: pkt.AddrPtr(pkt.AddrFrom(172, 16, byte(i/250%250), byte(2+i%250))),
					IPv4Src: pkt.AddrPtr(pkt.AddrFrom(10, 3, 0, 10)),
				},
				Actions: []pkt.Action{{Type: pkt.ActionOutput, Port: 0}}}
		default:
			e = FlowEntry{Priority: 50, Cookie: uint64(i),
				Match:   pkt.Match{IPv4Src: pkt.AddrPtr(pkt.AddrFrom(10, 1, byte(i/250%250), byte(1+i%250)))},
				Actions: []pkt.Action{{Type: pkt.ActionOutput, Port: 0}}}
		}
		sw.installFlow(e)
	}
	sw.installFlow(FlowEntry{Priority: 1, Cookie: 0xca7c4a11,
		Actions: []pkt.Action{{Type: pkt.ActionDrop}}})
}

// randProbe draws a packet view that may or may not hit one of the
// installed entries.
func randProbe(rng *rand.Rand, n int) (uint32, pkt.FiveTuple, uint64) {
	i := rng.Intn(2 * n)
	ft := pkt.FiveTuple{
		Src:     pkt.AddrFrom(10, 3, 0, 10),
		Dst:     pkt.AddrFrom(172, 16, byte(i/250%250), byte(2+i%250)),
		SrcPort: uint16(7000), DstPort: uint16(7000), Proto: pkt.ProtoTCP,
	}
	if i%3 == 0 {
		ft.Src = pkt.AddrFrom(10, 1, byte(i/250%250), byte(1+i%250))
	}
	teid := uint64(0)
	if i%2 == 0 {
		teid = uint64(1000 + i)
	}
	return uint32(rng.Intn(3)), ft, teid
}

// TestLookupMatchesScan holds the tuple-space index to the linear scan's
// semantics — winner identity under overlapping priorities, specificities
// and insertion order — over a randomized probe stream.
func TestLookupMatchesScan(t *testing.T) {
	sw := benchSwitch()
	fillScaleTable(sw, 400)
	// Overlap block: same key reachable through several shapes and equal
	// priorities, so tie-breaks are actually exercised.
	dst := pkt.AddrFrom(172, 16, 0, 7)
	sw.installFlow(FlowEntry{Priority: 100, Cookie: 0xa,
		Match:   pkt.Match{IPv4Dst: pkt.AddrPtr(dst)},
		Actions: []pkt.Action{{Type: pkt.ActionOutput, Port: 1}}})
	sw.installFlow(FlowEntry{Priority: 100, Cookie: 0xb,
		Match:   pkt.Match{IPv4Dst: pkt.AddrPtr(dst), IPProto: pkt.U8(pkt.ProtoTCP)},
		Actions: []pkt.Action{{Type: pkt.ActionOutput, Port: 2}}})
	sw.installFlow(FlowEntry{Priority: 100, Cookie: 0xc,
		Match:   pkt.Match{IPv4Dst: pkt.AddrPtr(dst)},
		Actions: []pkt.Action{{Type: pkt.ActionOutput, Port: 3}}})

	rng := rand.New(rand.NewSource(2016))
	for trial := 0; trial < 5000; trial++ {
		inPort, ft, teid := randProbe(rng, 400)
		if trial%7 == 0 {
			ft.Dst = dst
		}
		got := sw.lookup(inPort, ft, teid)
		want := sw.lookupScan(inPort, ft, teid)
		if got != want {
			t.Fatalf("probe %d: lookup=%d scan=%d (inPort=%d ft=%+v teid=%d)",
				trial, got, want, inPort, ft, teid)
		}
	}
}

// TestLookupTracksMutations verifies the dirty-rebuild discipline across
// install, cookie removal and idle expiry.
func TestLookupTracksMutations(t *testing.T) {
	sw := benchSwitch()
	fillScaleTable(sw, 64)
	rng := rand.New(rand.NewSource(7))
	check := func(stage string) {
		t.Helper()
		for i := 0; i < 500; i++ {
			inPort, ft, teid := randProbe(rng, 64)
			if got, want := sw.lookup(inPort, ft, teid), sw.lookupScan(inPort, ft, teid); got != want {
				t.Fatalf("%s: lookup=%d scan=%d", stage, got, want)
			}
		}
	}
	check("initial")
	sw.removeFlows(2) // one of the DL entries
	check("after remove")
	sw.installFlow(FlowEntry{Priority: 200, Cookie: 0xf00,
		Match:   pkt.Match{TunnelID: pkt.U64(1000)},
		Actions: []pkt.Action{{Type: pkt.ActionOutput, Port: 2}}})
	check("after install")
	sw.ExpireIdleFlows()
	check("after expiry pass")
}

// The acceptance witness: indexed lookup vs the historical scan at 10k
// installed entries.
func BenchmarkScaleLookupIndexed10k(b *testing.B) {
	sw := benchSwitch()
	fillScaleTable(sw, 10000)
	rng := rand.New(rand.NewSource(2016))
	inPort, ft, teid := randProbe(rng, 10000)
	sw.lookup(inPort, ft, teid) // settle the index outside the timer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.lookup(inPort, ft, teid)
	}
}

func BenchmarkScaleLookupScan10k(b *testing.B) {
	sw := benchSwitch()
	fillScaleTable(sw, 10000)
	rng := rand.New(rand.NewSource(2016))
	inPort, ft, teid := randProbe(rng, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.lookupScan(inPort, ft, teid)
	}
}
