package sdn

import (
	"testing"
	"time"

	"acacia/internal/netsim"
	"acacia/internal/pkt"
	"acacia/internal/sim"
)

// gwTopo builds: src -- sgwU -- pgwU -- dst with 1 Gbps links and installs
// the GTP flow chain for one uplink bearer:
//
//	src encapsulates toward sgwU with TEID s1=101;
//	sgwU re-tunnels to pgwU with TEID s5=201;
//	pgwU decapsulates and forwards plain to dst.
type gwTopo struct {
	eng        *sim.Engine
	nw         *netsim.Network
	src, dst   *netsim.Host
	sgwU, pgwU *Switch
	ctl        *Controller
}

func buildGWTopo(t *testing.T, costs PathCosts) *gwTopo {
	t.Helper()
	eng := sim.NewEngine(7)
	nw := netsim.New(eng)
	srcN := nw.AddNode("src", pkt.AddrFrom(10, 0, 0, 1))
	sgwN := nw.AddNode("sgw-u", pkt.AddrFrom(10, 0, 0, 2))
	pgwN := nw.AddNode("pgw-u", pkt.AddrFrom(10, 0, 0, 3))
	dstN := nw.AddNode("dst", pkt.AddrFrom(10, 0, 0, 4))
	cfg := netsim.LinkConfig{BitsPerSecond: 1e9, Propagation: 100 * time.Microsecond}
	nw.ConnectSymmetric(srcN, sgwN, cfg) // src port0 <-> sgw port0
	nw.ConnectSymmetric(sgwN, pgwN, cfg) // sgw port1 <-> pgw port0
	nw.ConnectSymmetric(pgwN, dstN, cfg) // pgw port1 <-> dst port0

	sgw := NewSwitch(1, sgwN, costs)
	pgw := NewSwitch(2, pgwN, costs)
	sgw.MarkGTPPort(0)
	sgw.MarkGTPPort(1)
	pgw.MarkGTPPort(0)

	ctl := NewController(eng)
	ctl.RTT = 200 * time.Microsecond
	ctl.AddSwitch(sgw)
	ctl.AddSwitch(pgw)

	// Proactively install the uplink chain.
	ctl.InstallFlow(sgw, FlowEntry{
		Priority: 100, Cookie: 0xbea4e401,
		Match: pkt.Match{TunnelID: pkt.U64(101)},
		Actions: []pkt.Action{
			{Type: pkt.ActionSetTunnel, TunnelID: 201, TunnelDst: pgwN.Addr()},
			{Type: pkt.ActionOutput, Port: 1},
		},
	})
	ctl.InstallFlow(pgw, FlowEntry{
		Priority: 100, Cookie: 0xbea4e401,
		Match:   pkt.Match{TunnelID: pkt.U64(201)},
		Actions: []pkt.Action{{Type: pkt.ActionOutput, Port: 1}},
	})
	eng.RunFor(time.Millisecond) // let FlowMods land

	return &gwTopo{
		eng: eng, nw: nw,
		src: netsim.NewHost(srcN), dst: netsim.NewHost(dstN),
		sgwU: sgw, pgwU: pgw, ctl: ctl,
	}
}

// sendTunneled injects one uplink packet from src, pre-encapsulated toward
// the SGW-U as an eNB would.
func (g *gwTopo) sendTunneled(size int) {
	p := &netsim.Packet{
		Flow: pkt.FiveTuple{
			Src: g.src.Node.Addr(), Dst: g.dst.Node.Addr(),
			SrcPort: 1000, DstPort: 2000, Proto: pkt.ProtoUDP,
		},
		Size: size,
	}
	p.Encapsulate(g.src.Node.Addr(), g.sgwU.Node().Addr(), 101)
	g.src.Node.Inject(p)
}

func TestGTPChainDeliversDecapsulated(t *testing.T) {
	g := buildGWTopo(t, ACACIAGWCosts)
	var got []*netsim.Packet
	g.dst.Listen(2000, netsim.AppFunc(func(_ *netsim.Host, p *netsim.Packet) {
		got = append(got, p)
	}))
	g.sendTunneled(1000)
	g.eng.Run()
	if len(got) != 1 {
		t.Fatalf("delivered %d packets", len(got))
	}
	if got[0].Tunneled() {
		t.Error("packet arrived still tunneled")
	}
	if got[0].Size != 1000 {
		t.Errorf("size = %d, want 1000 (all encapsulation stripped)", got[0].Size)
	}
	if g.sgwU.Stats().Decapsulated != 1 || g.sgwU.Stats().Encapsulated != 1 {
		t.Errorf("sgw encap/decap stats = %+v", g.sgwU.Stats())
	}
	if g.pgwU.Stats().Decapsulated != 1 {
		t.Errorf("pgw stats = %+v", g.pgwU.Stats())
	}
}

func TestFastPathAfterFirstPacket(t *testing.T) {
	g := buildGWTopo(t, ACACIAGWCosts)
	g.dst.Listen(2000, netsim.AppFunc(func(_ *netsim.Host, p *netsim.Packet) {}))
	for i := 0; i < 10; i++ {
		g.sendTunneled(1000)
	}
	g.eng.Run()
	st := g.sgwU.Stats()
	if st.SlowPathHits != 1 {
		t.Errorf("slow path hits = %d, want 1 (first packet only)", st.SlowPathHits)
	}
	if st.FastPathHits != 9 {
		t.Errorf("fast path hits = %d, want 9", st.FastPathHits)
	}
}

func TestUserSpaceGWAlwaysSlowPath(t *testing.T) {
	g := buildGWTopo(t, OpenEPCGWCosts)
	g.dst.Listen(2000, netsim.AppFunc(func(_ *netsim.Host, p *netsim.Packet) {}))
	for i := 0; i < 10; i++ {
		g.sendTunneled(1000)
	}
	g.eng.Run()
	st := g.sgwU.Stats()
	if st.FastPathHits != 0 {
		t.Errorf("user-space GW used fast path %d times", st.FastPathHits)
	}
	if st.SlowPathHits != 10 {
		t.Errorf("slow path hits = %d, want 10", st.SlowPathHits)
	}
}

func TestThroughputOrderingMatchesFig8(t *testing.T) {
	// The Fig. 8 shape: OpenEPC user-space GW << ACACIA fast path ≈ ideal.
	measure := func(costs PathCosts) float64 {
		g := buildGWTopo(t, costs)
		sink := netsim.NewSink(g.dst, 2000)
		// Saturating CBR: 1 Gbps of 1400-byte tunneled packets for 200 ms.
		interval := time.Duration(float64(1400*8) / 1e9 * float64(time.Second))
		tick := sim.NewTicker(g.eng, interval, func() { g.sendTunneled(1400) })
		g.eng.RunFor(200 * time.Millisecond)
		tick.Stop()
		g.eng.RunFor(100 * time.Millisecond)
		return sink.ThroughputBps()
	}
	openepc := measure(OpenEPCGWCosts)
	acacia := measure(ACACIAGWCosts)
	ideal := measure(IdealGWCosts)
	if !(openepc < acacia && acacia <= ideal*1.01) {
		t.Errorf("throughput ordering: openepc=%.1f acacia=%.1f ideal=%.1f Mbps",
			openepc/1e6, acacia/1e6, ideal/1e6)
	}
	if openepc > 0.5*ideal {
		t.Errorf("user-space GW (%.1f Mbps) should be well below line rate (%.1f)", openepc/1e6, ideal/1e6)
	}
	if acacia < 0.85*ideal {
		t.Errorf("ACACIA fast path (%.1f Mbps) should approach line rate (%.1f)", acacia/1e6, ideal/1e6)
	}
}

func TestPacketInOnTableMiss(t *testing.T) {
	g := buildGWTopo(t, ACACIAGWCosts)
	var misses []uint64
	g.ctl.OnPacketIn = func(sw *Switch, inPort uint32, p *netsim.Packet, tunnelID uint64) {
		misses = append(misses, tunnelID)
		// Reactive setup: install a flow matching this tunnel.
		g.ctl.InstallFlow(sw, FlowEntry{
			Priority: 50, Cookie: 0xcafe,
			Match:   pkt.Match{TunnelID: pkt.U64(tunnelID)},
			Actions: []pkt.Action{{Type: pkt.ActionOutput, Port: 1}},
		})
	}
	// Unknown TEID 999 triggers a miss.
	p := &netsim.Packet{
		Flow: pkt.FiveTuple{Src: g.src.Node.Addr(), Dst: g.dst.Node.Addr(), DstPort: 2000, Proto: pkt.ProtoUDP},
		Size: 500,
	}
	p.Encapsulate(g.src.Node.Addr(), g.sgwU.Node().Addr(), 999)
	g.src.Node.Inject(p)
	g.eng.Run()
	if len(misses) != 1 || misses[0] != 999 {
		t.Fatalf("misses = %v", misses)
	}
	if g.sgwU.FlowCount() != 2 {
		t.Errorf("flows after reactive install = %d, want 2", g.sgwU.FlowCount())
	}
}

func TestTableMissWithoutControllerDrops(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := netsim.New(eng)
	n := nw.AddNode("sw", pkt.AddrFrom(10, 0, 0, 9))
	peer := nw.AddNode("peer", pkt.AddrFrom(10, 0, 0, 8))
	nw.ConnectSymmetric(n, peer, netsim.LinkConfig{})
	sw := NewSwitch(9, n, ACACIAGWCosts)
	netsim.NewHost(peer).Send(n.Addr(), 1, 2, pkt.ProtoUDP, 100, nil)
	eng.Run()
	if sw.Stats().Dropped != 1 {
		t.Errorf("dropped = %d, want 1", sw.Stats().Dropped)
	}
}

func TestFlowPriorityOrdering(t *testing.T) {
	g := buildGWTopo(t, ACACIAGWCosts)
	// A higher-priority drop rule for the same tunnel must win.
	g.ctl.InstallFlow(g.sgwU, FlowEntry{
		Priority: 200, Cookie: 0xdead,
		Match:   pkt.Match{TunnelID: pkt.U64(101)},
		Actions: []pkt.Action{{Type: pkt.ActionDrop}},
	})
	g.eng.RunFor(time.Millisecond)
	var got int
	g.dst.Listen(2000, netsim.AppFunc(func(_ *netsim.Host, p *netsim.Packet) { got++ }))
	g.sendTunneled(100)
	g.eng.Run()
	if got != 0 {
		t.Error("lower-priority forward rule won over higher-priority drop")
	}
}

func TestRemoveFlowsByCookie(t *testing.T) {
	g := buildGWTopo(t, ACACIAGWCosts)
	if g.sgwU.FlowCount() != 1 {
		t.Fatalf("flows = %d", g.sgwU.FlowCount())
	}
	g.ctl.RemoveFlows(g.sgwU, 0xbea4e401)
	g.eng.RunFor(time.Millisecond)
	if g.sgwU.FlowCount() != 0 {
		t.Errorf("flows after remove = %d", g.sgwU.FlowCount())
	}
	// Traffic now misses (drops, no OnPacketIn handler).
	g.sendTunneled(100)
	g.eng.Run()
	if g.sgwU.Stats().TableMisses != 1 {
		t.Errorf("misses = %d", g.sgwU.Stats().TableMisses)
	}
}

func TestIdleFlowExpiry(t *testing.T) {
	g := buildGWTopo(t, ACACIAGWCosts)
	g.ctl.InstallFlow(g.sgwU, FlowEntry{
		Priority: 10, Cookie: 0x111,
		Match:       pkt.Match{TunnelID: pkt.U64(55)},
		Actions:     []pkt.Action{{Type: pkt.ActionOutput, Port: 1}},
		IdleTimeout: 5 * time.Second,
	})
	g.eng.RunFor(time.Millisecond)
	if g.sgwU.FlowCount() != 2 {
		t.Fatalf("flows = %d", g.sgwU.FlowCount())
	}
	g.eng.RunFor(6 * time.Second)
	if n := g.sgwU.ExpireIdleFlows(); n != 1 {
		t.Errorf("expired = %d, want 1 (permanent flow stays)", n)
	}
	if g.sgwU.FlowCount() != 1 {
		t.Errorf("flows after expiry = %d", g.sgwU.FlowCount())
	}
}

func TestControllerAccounting(t *testing.T) {
	g := buildGWTopo(t, ACACIAGWCosts)
	before := g.ctl.Stats()
	n := g.ctl.InstallFlow(g.sgwU, FlowEntry{
		Priority: 10, Cookie: 0x222,
		Match:   pkt.Match{TunnelID: pkt.U64(77)},
		Actions: []pkt.Action{{Type: pkt.ActionSetTunnel, TunnelID: 88, TunnelDst: g.pgwU.Node().Addr()}, {Type: pkt.ActionOutput, Port: 1}},
	})
	after := g.ctl.Stats()
	if after.Sent != before.Sent+1 {
		t.Errorf("sent count %d -> %d", before.Sent, after.Sent)
	}
	if int(after.SentBytes-before.SentBytes) != n {
		t.Errorf("byte accounting mismatch: %d vs %d", after.SentBytes-before.SentBytes, n)
	}
	// A realistic GTP FlowMod lands in the few-hundred-byte range the
	// paper's 1424-bytes-per-4-messages measurement implies.
	if n < 80 || n > 600 {
		t.Errorf("FlowMod size = %d bytes, implausible", n)
	}
}

func TestDuplicateDPIDPanics(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := netsim.New(eng)
	a := nw.AddNode("a", pkt.AddrFrom(1, 0, 0, 1))
	b := nw.AddNode("b", pkt.AddrFrom(1, 0, 0, 2))
	ctl := NewController(eng)
	ctl.AddSwitch(NewSwitch(1, a, ACACIAGWCosts))
	defer func() {
		if recover() == nil {
			t.Error("duplicate dpid did not panic")
		}
	}()
	ctl.AddSwitch(NewSwitch(1, b, ACACIAGWCosts))
}

func TestInstallFlowReplacesSameMatch(t *testing.T) {
	g := buildGWTopo(t, ACACIAGWCosts)
	// Same match + priority as the original chain entry, different action.
	g.ctl.InstallFlow(g.sgwU, FlowEntry{
		Priority: 100, Cookie: 0x999,
		Match:   pkt.Match{TunnelID: pkt.U64(101)},
		Actions: []pkt.Action{{Type: pkt.ActionDrop}},
	})
	g.eng.RunFor(time.Millisecond)
	if g.sgwU.FlowCount() != 1 {
		t.Errorf("flows = %d, want 1 (replaced)", g.sgwU.FlowCount())
	}
	var got int
	g.dst.Listen(2000, netsim.AppFunc(func(_ *netsim.Host, p *netsim.Packet) { got++ }))
	g.sendTunneled(100)
	g.eng.Run()
	if got != 0 {
		t.Error("replaced entry's old action still in effect")
	}
}

func TestMeterPolicesToRate(t *testing.T) {
	// Install an entry with a 10 Mbps meter and offer 50 Mbps: delivery
	// rate must police to ≈10 Mbps.
	g := buildGWTopo(t, ACACIAGWCosts)
	g.ctl.InstallFlow(g.sgwU, FlowEntry{
		Priority: 200, Cookie: 0x3e7e4,
		Match: pkt.Match{TunnelID: pkt.U64(101)},
		Actions: []pkt.Action{
			{Type: pkt.ActionSetTunnel, TunnelID: 201, TunnelDst: g.pgwU.Node().Addr()},
			{Type: pkt.ActionOutput, Port: 1},
		},
		MeterBps: 10e6,
	})
	g.eng.RunFor(time.Millisecond)

	sink := netsim.NewSink(g.dst, 2000)
	interval := time.Duration(float64(1000*8) / 50e6 * float64(time.Second))
	tick := sim.NewTicker(g.eng, interval, func() { g.sendTunneled(1000) })
	g.eng.RunFor(2 * time.Second)
	tick.Stop()
	g.eng.RunFor(100 * time.Millisecond)

	got := sink.ThroughputBps()
	if got < 9e6 || got > 11.5e6 {
		t.Errorf("metered throughput = %.2f Mbps, want ≈10", got/1e6)
	}
}

func TestMeterAllowsBurstThenPolices(t *testing.T) {
	g := buildGWTopo(t, ACACIAGWCosts)
	g.ctl.InstallFlow(g.sgwU, FlowEntry{
		Priority: 200, Cookie: 0x3e7e5,
		Match: pkt.Match{TunnelID: pkt.U64(101)},
		Actions: []pkt.Action{
			{Type: pkt.ActionSetTunnel, TunnelID: 201, TunnelDst: g.pgwU.Node().Addr()},
			{Type: pkt.ActionOutput, Port: 1},
		},
		MeterBps:        8e6,
		MeterBurstBytes: 5000,
	})
	g.eng.RunFor(time.Millisecond)
	var got int
	g.dst.Listen(2000, netsim.AppFunc(func(_ *netsim.Host, p *netsim.Packet) { got++ }))
	// Instant burst of 10 x 1000 B: the 5000 B bucket admits ~5.
	for i := 0; i < 10; i++ {
		g.sendTunneled(1000)
	}
	g.eng.Run()
	if got < 4 || got > 6 {
		t.Errorf("burst delivered %d packets, want ≈5 (bucket-bounded)", got)
	}
}

func TestUnmeteredFlowUnaffected(t *testing.T) {
	g := buildGWTopo(t, ACACIAGWCosts)
	var got int
	g.dst.Listen(2000, netsim.AppFunc(func(_ *netsim.Host, p *netsim.Packet) { got++ }))
	for i := 0; i < 20; i++ {
		g.sendTunneled(1000)
	}
	g.eng.Run()
	if got != 20 {
		t.Errorf("unmetered delivered %d of 20", got)
	}
}

func TestPathMonitorSupervisesPeers(t *testing.T) {
	g := buildGWTopo(t, ACACIAGWCosts)
	mon := g.sgwU.EnablePathMonitor(time.Second, 3)
	g.eng.RunFor(5 * time.Second)
	ps := mon.Peers()[g.pgwU.Node().Addr()]
	if ps == nil {
		t.Fatal("PGW-U peer not discovered from flow table")
	}
	if ps.Down {
		t.Error("healthy path marked down")
	}
	if ps.Sent < 3 || ps.Received < 3 {
		t.Errorf("echo counters: sent=%d received=%d", ps.Sent, ps.Received)
	}
}

func TestPathMonitorDetectsFailureAndRecovery(t *testing.T) {
	g := buildGWTopo(t, ACACIAGWCosts)
	mon := g.sgwU.EnablePathMonitor(time.Second, 3)
	var downs, ups []pkt.Addr
	mon.OnPathDown = func(p pkt.Addr) { downs = append(downs, p) }
	mon.OnPathUp = func(p pkt.Addr) { ups = append(ups, p) }
	g.eng.RunFor(3 * time.Second)

	// Fail the SGW-U <-> PGW-U link.
	link := g.sgwU.Node().Port(1).Link()
	link.SetDown(true)
	g.eng.RunFor(6 * time.Second)
	if len(downs) != 1 || downs[0] != g.pgwU.Node().Addr() {
		t.Fatalf("downs = %v", downs)
	}
	if !mon.Peers()[g.pgwU.Node().Addr()].Down {
		t.Error("path not marked down")
	}

	link.SetDown(false)
	g.eng.RunFor(3 * time.Second)
	if len(ups) != 1 {
		t.Fatalf("ups = %v", ups)
	}
	if mon.Peers()[g.pgwU.Node().Addr()].Down {
		t.Error("path still down after repair")
	}
}

func TestPathMonitorForgetsRemovedPeers(t *testing.T) {
	g := buildGWTopo(t, ACACIAGWCosts)
	mon := g.sgwU.EnablePathMonitor(time.Second, 3)
	g.eng.RunFor(2 * time.Second)
	if len(mon.Peers()) != 1 {
		t.Fatalf("peers = %d", len(mon.Peers()))
	}
	g.ctl.RemoveFlows(g.sgwU, 0xbea4e401)
	g.eng.RunFor(2 * time.Second)
	if len(mon.Peers()) != 0 {
		t.Errorf("peers after flow removal = %d", len(mon.Peers()))
	}
}

func TestEchoDoesNotDisturbDataPlane(t *testing.T) {
	g := buildGWTopo(t, ACACIAGWCosts)
	g.sgwU.EnablePathMonitor(500*time.Millisecond, 3)
	var got int
	g.dst.Listen(2000, netsim.AppFunc(func(_ *netsim.Host, p *netsim.Packet) { got++ }))
	for i := 0; i < 5; i++ {
		g.sendTunneled(1000)
	}
	g.eng.RunFor(3 * time.Second)
	if got != 5 {
		t.Errorf("data packets delivered = %d of 5 with echo running", got)
	}
	// Echoes must not appear as table misses.
	if g.sgwU.Stats().TableMisses != 0 || g.pgwU.Stats().TableMisses != 0 {
		t.Errorf("echo traffic caused table misses: sgw=%d pgw=%d",
			g.sgwU.Stats().TableMisses, g.pgwU.Stats().TableMisses)
	}
}
