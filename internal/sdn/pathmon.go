package sdn

import (
	"time"

	"acacia/internal/netsim"
	"acacia/internal/pkt"
	"acacia/internal/sim"
)

// GTP-U path management (TS 29.281 §7.2): GTP peers exchange Echo
// Request/Response over the tunnel path; a run of missed responses marks
// the path down. The monitor discovers its peers from the switch's
// installed SetTunnel actions, so supervision follows the programmed
// bearers automatically.

// gtpEcho is the in-simulation payload of an echo message.
type gtpEcho struct {
	req  bool
	seq  uint32
	from pkt.Addr
}

// gtpEchoWireSize is the on-the-wire size of a GTP echo (outer IP + UDP +
// GTP header with sequence, per TS 29.281).
const gtpEchoWireSize = pkt.IPv4Len + pkt.UDPLen + pkt.GTPULen + 4

// PathState describes one supervised peer path.
type PathState struct {
	Peer pkt.Addr
	Port int
	Down bool
	// Sent/Received count echo requests and responses.
	Sent, Received uint64
	lastSentSeq    uint32
	lastAckedSeq   uint32
	misses         int
}

// PathMonitor supervises a switch's GTP peers.
type PathMonitor struct {
	sw        *Switch
	maxMisses int
	peers     map[pkt.Addr]*PathState
	ticker    *sim.Ticker

	// OnPathDown/OnPathUp observe path state transitions.
	OnPathDown func(peer pkt.Addr)
	OnPathUp   func(peer pkt.Addr)
}

// EnablePathMonitor starts echo supervision on the switch: every period it
// refreshes the peer set from the flow table, sends an Echo Request to
// each, and declares a path down after maxMisses consecutive unanswered
// requests.
func (sw *Switch) EnablePathMonitor(period time.Duration, maxMisses int) *PathMonitor {
	if sw.pathMon != nil {
		return sw.pathMon
	}
	if maxMisses <= 0 {
		maxMisses = 3
	}
	m := &PathMonitor{
		sw:        sw,
		maxMisses: maxMisses,
		peers:     make(map[pkt.Addr]*PathState),
	}
	sw.pathMon = m
	m.ticker = sim.NewTicker(sw.eng, period, m.tick)
	return m
}

// Peers returns the supervised path states (live views).
func (m *PathMonitor) Peers() map[pkt.Addr]*PathState { return m.peers }

// Stop halts supervision.
func (m *PathMonitor) Stop() { m.ticker.Stop() }

// tick refreshes peers from the table and probes each.
func (m *PathMonitor) tick() {
	m.refreshPeers()
	for _, ps := range m.peers {
		// Check the previous round's answer before probing again.
		if ps.lastAckedSeq < ps.lastSentSeq {
			ps.misses++
			if !ps.Down && ps.misses >= m.maxMisses {
				ps.Down = true
				if m.OnPathDown != nil {
					m.OnPathDown(ps.Peer)
				}
			}
		}
		ps.lastSentSeq++
		ps.Sent++
		m.sw.node.Port(ps.Port).Send(&netsim.Packet{
			Flow: pkt.FiveTuple{
				Src: m.sw.node.Addr(), Dst: ps.Peer,
				SrcPort: pkt.GTPUPort, DstPort: pkt.GTPUPort, Proto: pkt.ProtoUDP,
			},
			Size:    gtpEchoWireSize,
			Payload: gtpEcho{req: true, seq: ps.lastSentSeq, from: m.sw.node.Addr()},
		})
	}
}

// refreshPeers derives the peer set from SetTunnel actions and the output
// port that follows them.
func (m *PathMonitor) refreshPeers() {
	seen := map[pkt.Addr]int{}
	for i := range m.sw.table {
		e := &m.sw.table[i]
		var dst pkt.Addr
		for _, a := range e.Actions {
			switch a.Type {
			case pkt.ActionSetTunnel:
				dst = a.TunnelDst
			case pkt.ActionOutput:
				if !dst.IsZero() {
					seen[dst] = int(a.Port)
				}
			}
		}
	}
	for peer, port := range seen {
		if ps, ok := m.peers[peer]; ok {
			ps.Port = port
			continue
		}
		m.peers[peer] = &PathState{Peer: peer, Port: port}
	}
	// Paths whose flows disappeared stop being probed.
	for peer := range m.peers {
		if _, still := seen[peer]; !still {
			delete(m.peers, peer)
		}
	}
}

// handleEcho intercepts GTP echo messages before table lookup. Returns
// true when the packet was consumed.
func (sw *Switch) handleEcho(ingress *netsim.Port, p *netsim.Packet) bool {
	echo, ok := p.Payload.(gtpEcho)
	if !ok || p.Flow.Dst != sw.node.Addr() || p.Flow.DstPort != pkt.GTPUPort {
		return false
	}
	if echo.req {
		if ingress == nil {
			return true
		}
		ingress.Send(&netsim.Packet{
			Flow:    p.Flow.Reverse(),
			Size:    gtpEchoWireSize,
			Payload: gtpEcho{req: false, seq: echo.seq, from: sw.node.Addr()},
		})
		return true
	}
	if sw.pathMon != nil {
		sw.pathMon.onResponse(echo)
	}
	return true
}

func (m *PathMonitor) onResponse(echo gtpEcho) {
	ps, ok := m.peers[echo.from]
	if !ok {
		return
	}
	ps.Received++
	if echo.seq > ps.lastAckedSeq {
		ps.lastAckedSeq = echo.seq
	}
	ps.misses = 0
	if ps.Down {
		ps.Down = false
		if m.OnPathUp != nil {
			m.OnPathUp(ps.Peer)
		}
	}
}
