package sdn

import (
	"sort"
	"time"

	"acacia/internal/netsim"
	"acacia/internal/pkt"
	"acacia/internal/sim"
	"acacia/internal/telemetry"
)

// GTP-U path management (TS 29.281 §7.2): GTP peers exchange Echo
// Request/Response over the tunnel path; a run of missed responses marks
// the path down. The monitor discovers its peers from the switch's
// installed SetTunnel actions, so supervision follows the programmed
// bearers automatically.

// gtpEcho is the in-simulation payload of an echo message.
type gtpEcho struct {
	req  bool
	seq  uint32
	from pkt.Addr
}

// gtpEchoWireSize is the on-the-wire size of a GTP echo (outer IP + UDP +
// GTP header with sequence, per TS 29.281).
const gtpEchoWireSize = pkt.IPv4Len + pkt.UDPLen + pkt.GTPULen + 4

// PathState describes one supervised peer path.
type PathState struct {
	Peer pkt.Addr
	Port int
	Down bool
	// Sent/Received count echo requests and responses.
	Sent, Received uint64
	lastSentSeq    uint32
	lastAckedSeq   uint32
	misses         int
	// static marks peers pinned with Supervise: they outlive flow-table
	// refreshes, so supervision survives bearer teardown.
	static bool
}

// PathMonitor supervises a switch's GTP peers.
type PathMonitor struct {
	sw        *Switch
	maxMisses int
	peers     map[pkt.Addr]*PathState
	ticker    *sim.Ticker
	scope     telemetry.Scope

	// OnPathDown/OnPathUp observe path state transitions. Independently of
	// these hooks, every transition is reported to the switch's controller
	// as a PortStatus message over the control channel.
	OnPathDown func(peer pkt.Addr)
	OnPathUp   func(peer pkt.Addr)
}

// EnablePathMonitor starts echo supervision on the switch: every period it
// refreshes the peer set from the flow table, sends an Echo Request to
// each, and declares a path down after maxMisses consecutive unanswered
// requests.
func (sw *Switch) EnablePathMonitor(period time.Duration, maxMisses int) *PathMonitor {
	if sw.pathMon != nil {
		return sw.pathMon
	}
	if maxMisses <= 0 {
		maxMisses = 3
	}
	m := &PathMonitor{
		sw:        sw,
		maxMisses: maxMisses,
		peers:     make(map[pkt.Addr]*PathState),
		scope:     sw.eng.Metrics().Scope("sdn/pathmon").Scope(sw.node.Name()),
	}
	sw.pathMon = m
	m.ticker = sim.NewTicker(sw.eng, period, m.tick)
	return m
}

// Peers returns the supervised path states. The returned map is the
// monitor's live working set — its iteration order is randomized like any
// Go map, so deterministic consumers must use PeerList instead.
func (m *PathMonitor) Peers() map[pkt.Addr]*PathState { return m.peers }

// PeerList returns the supervised path states in ascending peer-address
// order: the deterministic view of Peers.
func (m *PathMonitor) PeerList() []*PathState { return m.sortedPeers() }

// Supervise pins a peer into the supervision set regardless of the flow
// table: probes go out the given port every tick even after the peer's
// bearers (and with them its SetTunnel flows) are torn down. The MEC
// failover path uses this to keep watching an edge site's user plane so a
// repaired site is noticed.
func (m *PathMonitor) Supervise(peer pkt.Addr, port int) {
	if ps, ok := m.peers[peer]; ok {
		ps.Port = port
		ps.static = true
		return
	}
	m.peers[peer] = &PathState{Peer: peer, Port: port, static: true}
}

// Stop halts supervision.
func (m *PathMonitor) Stop() { m.ticker.Stop() }

// sortedPeers collects the peer set in ascending address order, pinning
// probe order — and with it packet enqueue order and any jitter RNG draws
// downstream — regardless of map layout.
func (m *PathMonitor) sortedPeers() []*PathState {
	out := make([]*PathState, 0, len(m.peers))
	for _, ps := range m.peers {
		out = append(out, ps)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer.Uint32() < out[j].Peer.Uint32() })
	return out
}

// tick refreshes peers from the table and probes each in sorted address
// order (the byte-identical-output contract: map iteration order must
// never reach the wire).
func (m *PathMonitor) tick() {
	m.refreshPeers()
	for _, ps := range m.sortedPeers() {
		// Check the previous round's answer before probing again.
		if ps.lastAckedSeq < ps.lastSentSeq {
			ps.misses++
			if !ps.Down && ps.misses >= m.maxMisses {
				ps.Down = true
				m.notify(ps.Peer, true)
			}
		}
		ps.lastSentSeq++
		ps.Sent++
		m.sw.node.Port(ps.Port).Send(&netsim.Packet{
			Flow: pkt.FiveTuple{
				Src: m.sw.node.Addr(), Dst: ps.Peer,
				SrcPort: pkt.GTPUPort, DstPort: pkt.GTPUPort, Proto: pkt.ProtoUDP,
			},
			Size:    gtpEchoWireSize,
			Payload: gtpEcho{req: true, seq: ps.lastSentSeq, from: m.sw.node.Addr()},
		})
	}
}

// notify records a path transition on the telemetry timeline, invokes the
// user hooks, and reports the transition to the switch's controller.
func (m *PathMonitor) notify(peer pkt.Addr, down bool) {
	if down {
		m.scope.Emit("down", peer.String())
		if m.OnPathDown != nil {
			m.OnPathDown(peer)
		}
	} else {
		m.scope.Emit("up", peer.String())
		if m.OnPathUp != nil {
			m.OnPathUp(peer)
		}
	}
	if m.sw.controller != nil {
		m.sw.controller.pathStatus(m.sw, peer, down)
	}
}

// refreshPeers derives the peer set from SetTunnel actions and the output
// port that follows them.
func (m *PathMonitor) refreshPeers() {
	seen := map[pkt.Addr]int{}
	for i := range m.sw.table {
		e := &m.sw.table[i]
		var dst pkt.Addr
		for _, a := range e.Actions {
			switch a.Type {
			case pkt.ActionSetTunnel:
				dst = a.TunnelDst
			case pkt.ActionOutput:
				if !dst.IsZero() {
					seen[dst] = int(a.Port)
				}
			}
		}
	}
	for peer, port := range seen {
		if ps, ok := m.peers[peer]; ok {
			ps.Port = port
			continue
		}
		m.peers[peer] = &PathState{Peer: peer, Port: port}
	}
	// Paths whose flows disappeared stop being probed; peers pinned with
	// Supervise stay.
	for peer, ps := range m.peers {
		if _, still := seen[peer]; !still && !ps.static {
			delete(m.peers, peer)
		}
	}
}

// AnswerGTPEcho lets a non-switch GTP node (the eNB end of S1-U paths)
// participate in path supervision: it answers Echo Requests addressed to
// self and swallows stray echo traffic. Returns true when the packet was a
// GTP echo and has been consumed.
func AnswerGTPEcho(self pkt.Addr, ingress *netsim.Port, p *netsim.Packet) bool {
	echo, ok := p.Payload.(gtpEcho)
	if !ok || p.Flow.Dst != self || p.Flow.DstPort != pkt.GTPUPort {
		return false
	}
	if echo.req && ingress != nil {
		ingress.Send(&netsim.Packet{
			Flow:    p.Flow.Reverse(),
			Size:    gtpEchoWireSize,
			Payload: gtpEcho{req: false, seq: echo.seq, from: self},
		})
	}
	return true
}

// handleEcho intercepts GTP echo messages before table lookup. Returns
// true when the packet was consumed.
func (sw *Switch) handleEcho(ingress *netsim.Port, p *netsim.Packet) bool {
	echo, ok := p.Payload.(gtpEcho)
	if !ok || p.Flow.Dst != sw.node.Addr() || p.Flow.DstPort != pkt.GTPUPort {
		return false
	}
	if echo.req {
		if ingress == nil {
			return true
		}
		ingress.Send(&netsim.Packet{
			Flow:    p.Flow.Reverse(),
			Size:    gtpEchoWireSize,
			Payload: gtpEcho{req: false, seq: echo.seq, from: sw.node.Addr()},
		})
		return true
	}
	if sw.pathMon != nil {
		sw.pathMon.onResponse(echo)
	}
	return true
}

func (m *PathMonitor) onResponse(echo gtpEcho) {
	ps, ok := m.peers[echo.from]
	if !ok {
		return
	}
	ps.Received++
	if echo.seq > ps.lastAckedSeq {
		ps.lastAckedSeq = echo.seq
	}
	ps.misses = 0
	if ps.Down {
		ps.Down = false
		m.notify(ps.Peer, false)
	}
}
