// Package sdn implements the split user plane of the ACACIA testbed: an
// Open vSwitch-style switch extended with GTP encapsulation (the GW-U) and
// an OpenFlow controller channel (the Ryu analog). The controller side is a
// thin message layer — the brains (which flows to install for which bearer)
// live in the EPC gateway control planes that drive it.
//
// The switch models the two data paths of the paper's Fig. 8 comparison:
// a slow path that consults the OpenFlow table in user space for the first
// packet of each flow, and a kernel-resident fast path (megaflow cache) that
// handles subsequent packets at a fraction of the cost. A legacy user-space
// gateway (OpenEPC-style) is the same switch with the fast path disabled and
// a heavier per-packet cost.
package sdn

import (
	"fmt"
	"time"

	"acacia/internal/ctl"
	"acacia/internal/netsim"
	"acacia/internal/pkt"
	"acacia/internal/sim"
	"acacia/internal/telemetry"
)

// FlowEntry is one OpenFlow table entry.
type FlowEntry struct {
	Priority    uint16
	Match       pkt.Match
	Actions     []pkt.Action
	Cookie      uint64
	IdleTimeout time.Duration // 0 = permanent
	// MeterBps, when non-zero, rate-limits the entry with a token-bucket
	// meter (OpenFlow 1.3 meters): packets beyond the rate are dropped.
	// The PCEF uses this to enforce bearer MBRs at the PGW-U.
	MeterBps float64
	// MeterBurstBytes bounds the bucket; zero selects 1/10 s of MeterBps.
	MeterBurstBytes int

	lastUsed sim.Time
	// Packets and Bytes count traffic handled by this entry (slow and fast
	// path combined); MeterDrops counts packets the meter policed away.
	Packets    uint64
	Bytes      uint64
	MeterDrops uint64

	// Token bucket state.
	tokens     float64
	lastRefill sim.Time
}

// PathCosts models per-packet processing cost on each path.
type PathCosts struct {
	// FastPath is the per-packet cost of a megaflow cache hit (kernel
	// datapath).
	FastPath time.Duration
	// SlowPath is the cost of a user-space table lookup + cache insert
	// (first packet of a flow).
	SlowPath time.Duration
	// FastPathEnabled selects whether the megaflow cache is used at all;
	// the legacy user-space GW runs every packet through the slow path.
	FastPathEnabled bool
}

// ACACIAGWCosts are the extended-OVS gateway costs: a cheap kernel fast
// path after the first packet. At 1.2 µs/packet a single switch sustains
// ≈9 Gbps of 1400-byte packets — the data plane is link-limited, as the
// paper's Fig. 8 shows.
var ACACIAGWCosts = PathCosts{
	FastPath:        1200 * time.Nanosecond,
	SlowPath:        30 * time.Microsecond,
	FastPathEnabled: true,
}

// OpenEPCGWCosts model the vanilla OpenEPC user-space gateway: every packet
// pays the user-space GTP processing cost (≈35 µs), capping throughput
// around 320 Mbps for 1400-byte packets.
var OpenEPCGWCosts = PathCosts{
	SlowPath:        35 * time.Microsecond,
	FastPathEnabled: false,
}

// IdealGWCosts is the zero-cost forwarding bound of Fig. 8.
var IdealGWCosts = PathCosts{FastPathEnabled: true}

// cacheKey identifies a megaflow: the exact packet header view the fast
// path hashes.
type cacheKey struct {
	inPort uint32
	flow   pkt.FiveTuple
	tos    uint8
	teid   uint64
}

// Shape bits for the tuple-space slow-path index: one bit per packet-visible
// match field. EthType has no bit — the packet view carries no EthType, so
// Match.Matches ignores it and entries fold into the shape of their
// remaining fields.
const (
	shpInPort uint8 = 1 << iota
	shpIPProto
	shpIPv4Src
	shpIPv4Dst
	shpUDPSrc
	shpUDPDst
	shpTunnelID
)

// idxKey is one tuple-space hash key: the shape plus the exact values of the
// fields the shape selects (unselected fields stay zero). Every Match in
// this model is exact-per-field (set pointer = exact value, nil = wildcard),
// so every table entry hashes into exactly one (shape, values) bucket.
type idxKey struct {
	shape        uint8
	inPort       uint32
	proto        uint8
	src, dst     pkt.Addr
	sport, dport uint16
	teid         uint64
}

// matchShape computes the shape bitmap of a match.
func matchShape(m *pkt.Match) uint8 {
	var s uint8
	if m.InPort != nil {
		s |= shpInPort
	}
	if m.IPProto != nil {
		s |= shpIPProto
	}
	if m.IPv4Src != nil {
		s |= shpIPv4Src
	}
	if m.IPv4Dst != nil {
		s |= shpIPv4Dst
	}
	if m.UDPSrc != nil {
		s |= shpUDPSrc
	}
	if m.UDPDst != nil {
		s |= shpUDPDst
	}
	if m.TunnelID != nil {
		s |= shpTunnelID
	}
	return s
}

// entryKey hashes a table entry into its tuple-space bucket.
func entryKey(m *pkt.Match) idxKey {
	k := idxKey{shape: matchShape(m)}
	if m.InPort != nil {
		k.inPort = *m.InPort
	}
	if m.IPProto != nil {
		k.proto = *m.IPProto
	}
	if m.IPv4Src != nil {
		k.src = *m.IPv4Src
	}
	if m.IPv4Dst != nil {
		k.dst = *m.IPv4Dst
	}
	if m.UDPSrc != nil {
		k.sport = *m.UDPSrc
	}
	if m.UDPDst != nil {
		k.dport = *m.UDPDst
	}
	if m.TunnelID != nil {
		k.teid = *m.TunnelID
	}
	return k
}

// probeKey projects a packet view onto one shape's hash key.
func probeKey(shape uint8, inPort uint32, flow pkt.FiveTuple, tunnelID uint64) idxKey {
	k := idxKey{shape: shape}
	if shape&shpInPort != 0 {
		k.inPort = inPort
	}
	if shape&shpIPProto != 0 {
		k.proto = flow.Proto
	}
	if shape&shpIPv4Src != 0 {
		k.src = flow.Src
	}
	if shape&shpIPv4Dst != 0 {
		k.dst = flow.Dst
	}
	if shape&shpUDPSrc != 0 {
		k.sport = flow.SrcPort
	}
	if shape&shpUDPDst != 0 {
		k.dport = flow.DstPort
	}
	if shape&shpTunnelID != 0 {
		k.teid = tunnelID
	}
	return k
}

// SwitchStats counts switch activity. It is a point-in-time view assembled
// from the switch's telemetry counters, which live in the engine's metrics
// registry under sdn/<node>/ (e.g. sdn/gw-u/fastpath/hits).
type SwitchStats struct {
	FastPathHits uint64
	SlowPathHits uint64
	TableMisses  uint64 // packets sent to the controller
	Dropped      uint64 // no matching entry and no controller
	Encapsulated uint64
	Decapsulated uint64
	FlowsExpired uint64
	MeterDrops   uint64 // packets policed away by per-entry meters
}

// Switch is a GW-U: an OpenFlow switch with GTP logical-port semantics.
type Switch struct {
	// DPID is the datapath id.
	DPID uint64
	node *netsim.Node
	eng  *sim.Engine

	table   []FlowEntry
	cache   map[cacheKey]int // megaflow cache: key -> table index
	costs   PathCosts
	gtpPort map[int]bool // ports with GTP logical-port semantics

	// Tuple-space slow-path index (DESIGN.md §3h): for every shape present
	// in the table, the exact-value bucket maps to the lowest table index
	// carrying that (shape, values) pair — which, with the table sorted by
	// descending priority and insertion-stable, is the scan winner within
	// the bucket. Lookup probes one bucket per active shape instead of
	// walking the table. Any table mutation marks the index dirty; the next
	// slow-path lookup rebuilds it (the same invalidation discipline the
	// megaflow cache already uses).
	index      map[idxKey]int
	shapes     []uint8
	indexDirty bool

	controller *Controller
	// ctlEP is the switch's OpenFlow control endpoint, set when the
	// controller runs with a networked transport (EnableTransport).
	ctlEP   *ctl.Endpoint
	pathMon *PathMonitor

	// Single-server CPU for per-packet processing costs. cpuCur stages the
	// packet being served; cpuDoneF is the method value bound once in
	// NewSwitch so per-packet service scheduling allocates no closure.
	busy     bool
	cpuQueue []pendingPacket
	cpuCur   pendingPacket
	cpuDoneF func()

	// Activity counters, registered under sdn/<node>/ in the engine's
	// telemetry registry. Stats() assembles the SwitchStats compat view.
	fastHits     *telemetry.Counter
	slowHits     *telemetry.Counter
	tableMisses  *telemetry.Counter
	dropped      *telemetry.Counter
	encapsulated *telemetry.Counter
	decapsulated *telemetry.Counter
	flowsExpired *telemetry.Counter
	meterDrops   *telemetry.Counter
	occupancy    *telemetry.Gauge // megaflow cache entries currently live

	// tunnel metadata staged by SetTunnel between actions, per packet
	// (processing is serialized, one packet at a time).
	stagedTEID uint64
	stagedDst  pkt.Addr
}

type pendingPacket struct {
	ingress *netsim.Port
	p       *netsim.Packet
}

// NewSwitch wraps node as a GW-U with the given path costs.
func NewSwitch(dpid uint64, node *netsim.Node, costs PathCosts) *Switch {
	sw := &Switch{
		DPID:    dpid,
		node:    node,
		eng:     node.Engine(),
		cache:   make(map[cacheKey]int),
		index:   make(map[idxKey]int),
		costs:   costs,
		gtpPort: make(map[int]bool),
	}
	sw.cpuDoneF = sw.cpuDone
	scope := node.Engine().Metrics().Scope("sdn").Scope(node.Name())
	sw.fastHits = scope.Counter("fastpath/hits")
	sw.slowHits = scope.Counter("slowpath/hits")
	sw.tableMisses = scope.Counter("table-misses")
	sw.dropped = scope.Counter("dropped")
	sw.encapsulated = scope.Counter("encapsulated")
	sw.decapsulated = scope.Counter("decapsulated")
	sw.flowsExpired = scope.Counter("flows-expired")
	sw.meterDrops = scope.Counter("meter-drops")
	sw.occupancy = scope.Gauge("megaflow/occupancy")
	node.SetHandler(sw.receive)
	return sw
}

// Node returns the underlying network node.
func (sw *Switch) Node() *netsim.Node { return sw.node }

// Stats returns activity counters, read back from the telemetry registry
// the switch registers into.
func (sw *Switch) Stats() SwitchStats {
	return SwitchStats{
		FastPathHits: sw.fastHits.Value(),
		SlowPathHits: sw.slowHits.Value(),
		TableMisses:  sw.tableMisses.Value(),
		Dropped:      sw.dropped.Value(),
		Encapsulated: sw.encapsulated.Value(),
		Decapsulated: sw.decapsulated.Value(),
		FlowsExpired: sw.flowsExpired.Value(),
		MeterDrops:   sw.meterDrops.Value(),
	}
}

// FlowCount reports installed flow entries.
func (sw *Switch) FlowCount() int { return len(sw.table) }

// MarkGTPPort gives a port GTP logical-port semantics: packets output
// through it are encapsulated with the staged tunnel metadata, and tunneled
// packets arriving on it addressed to this switch are decapsulated before
// table lookup.
func (sw *Switch) MarkGTPPort(portID int) { sw.gtpPort[portID] = true }

// receive is the netsim handler: queue the packet for the (serialized)
// switch CPU. OpenFlow control frames bypass the data-plane CPU queue and
// go straight to the control endpoint.
//
//acacia:hotpath
func (sw *Switch) receive(ingress *netsim.Port, p *netsim.Packet) {
	if sw.ctlEP != nil {
		if f := ctl.FrameOf(p); f != nil {
			sw.ctlEP.Receive(ingress, p, f)
			return
		}
	}
	sw.cpuQueue = append(sw.cpuQueue, pendingPacket{ingress, p})
	if !sw.busy {
		sw.serveNext()
	}
}

//acacia:hotpath
func (sw *Switch) serveNext() {
	if len(sw.cpuQueue) == 0 {
		sw.busy = false
		return
	}
	sw.busy = true
	sw.cpuCur = sw.cpuQueue[0]
	sw.cpuQueue = sw.cpuQueue[1:]
	cost := sw.classifyCost(sw.cpuCur)
	sw.eng.After(cost, sw.cpuDoneF)
}

// cpuDone finishes one CPU service period: process the staged packet, then
// serve the next.
func (sw *Switch) cpuDone() {
	item := sw.cpuCur
	sw.cpuCur = pendingPacket{}
	sw.process(item.ingress, item.p)
	sw.serveNext()
}

// classifyCost picks the per-packet CPU cost: fast path on cache hit, slow
// path otherwise.
func (sw *Switch) classifyCost(item pendingPacket) time.Duration {
	if !sw.costs.FastPathEnabled {
		return sw.costs.SlowPath
	}
	key := sw.keyFor(item.ingress, item.p)
	if idx, ok := sw.cache[key]; ok && idx < len(sw.table) {
		return sw.costs.FastPath
	}
	return sw.costs.SlowPath
}

// keyFor computes the megaflow key as the packet will look at table-lookup
// time (after logical-port decapsulation).
func (sw *Switch) keyFor(ingress *netsim.Port, p *netsim.Packet) cacheKey {
	teid := uint64(0)
	if p.Tunneled() && p.TunnelDst == sw.node.Addr() {
		teid = uint64(p.TEID)
	}
	inPort := uint32(0)
	if ingress != nil {
		inPort = uint32(ingress.ID)
	}
	return cacheKey{inPort: inPort, flow: p.Flow, tos: p.TOS, teid: teid}
}

func (sw *Switch) process(ingress *netsim.Port, p *netsim.Packet) {
	// GTP-U path management traffic is handled by the GTP stack itself,
	// not the flow table.
	if sw.handleEcho(ingress, p) {
		sw.node.Network().Release(p)
		return
	}
	key := sw.keyFor(ingress, p)

	// GTP logical-port ingress: decapsulate tunneled packets addressed to
	// this switch; the TEID remains available as tunnel metadata (in key).
	tunnelMeta := uint64(0)
	if p.Tunneled() && p.TunnelDst == sw.node.Addr() {
		tunnelMeta = uint64(p.Decapsulate())
		sw.decapsulated.Inc()
	}

	inPort := key.inPort
	// Fast path.
	if sw.costs.FastPathEnabled {
		if idx, ok := sw.cache[key]; ok && idx < len(sw.table) {
			e := &sw.table[idx]
			if e.Match.Matches(inPort, p.Flow, tunnelMeta) {
				sw.fastHits.Inc()
				sw.apply(e, p)
				return
			}
			// Stale cache entry (table changed): fall through to slow path.
			delete(sw.cache, key)
			sw.occupancy.Set(float64(len(sw.cache)))
		}
	}

	// Slow path: linear table scan in priority order.
	idx := sw.lookup(inPort, p.Flow, tunnelMeta)
	if idx < 0 {
		sw.tableMisses.Inc()
		if sw.controller != nil {
			// The controller keeps the packet (buffer-and-page re-injects
			// it), so ownership transfers rather than being released.
			sw.controller.packetIn(sw, inPort, p, tunnelMeta)
		} else {
			sw.dropped.Inc()
			sw.node.Network().Release(p)
		}
		return
	}
	sw.slowHits.Inc()
	if sw.costs.FastPathEnabled {
		sw.cache[key] = idx
		sw.occupancy.Set(float64(len(sw.cache)))
	}
	sw.apply(&sw.table[idx], p)
}

// lookup returns the index of the highest-priority matching entry, or -1,
// by probing one tuple-space bucket per shape present in the table. Ties
// replicate the linear scan exactly: higher priority wins, then higher
// specificity, then the lower table index (first installed).
func (sw *Switch) lookup(inPort uint32, flow pkt.FiveTuple, tunnelID uint64) int {
	if sw.indexDirty {
		sw.rebuildIndex()
	}
	best := -1
	for _, shape := range sw.shapes {
		c, ok := sw.index[probeKey(shape, inPort, flow, tunnelID)]
		if !ok {
			continue
		}
		e := &sw.table[c]
		if !e.Match.Matches(inPort, flow, tunnelID) {
			// Guards the EthType fold: an entry keyed under this shape may
			// still carry constraints the packet view cannot satisfy.
			continue
		}
		if best < 0 {
			best = c
			continue
		}
		b := &sw.table[best]
		if e.Priority > b.Priority ||
			(e.Priority == b.Priority && e.Match.SpecificityScore() > b.Match.SpecificityScore()) ||
			(e.Priority == b.Priority && e.Match.SpecificityScore() == b.Match.SpecificityScore() && c < best) {
			best = c
		}
	}
	return best
}

// lookupScan is the historical O(#flows) linear scan, kept as the semantic
// reference: TestLookupMatchesScan holds lookup() to it entry for entry, and
// the BenchmarkScaleLookup* pair quantifies the gap at 10k entries.
func (sw *Switch) lookupScan(inPort uint32, flow pkt.FiveTuple, tunnelID uint64) int {
	best := -1
	for i := range sw.table {
		e := &sw.table[i]
		if !e.Match.Matches(inPort, flow, tunnelID) {
			continue
		}
		if best < 0 || e.Priority > sw.table[best].Priority ||
			(e.Priority == sw.table[best].Priority &&
				e.Match.SpecificityScore() > sw.table[best].Match.SpecificityScore()) {
			best = i
		}
	}
	return best
}

// rebuildIndex rehashes the table into the tuple-space buckets. Ascending
// order makes the first writer of each bucket the lowest index with that
// exact (shape, values) pair — the bucket's scan winner, since entries in
// one bucket share a specificity and the table is priority-sorted.
func (sw *Switch) rebuildIndex() {
	for k := range sw.index {
		delete(sw.index, k)
	}
	sw.shapes = sw.shapes[:0]
	for i := range sw.table {
		k := entryKey(&sw.table[i].Match)
		if _, ok := sw.index[k]; !ok {
			sw.index[k] = i
		}
		seen := false
		for _, s := range sw.shapes {
			if s == k.shape {
				seen = true
				break
			}
		}
		if !seen {
			sw.shapes = append(sw.shapes, k.shape)
		}
	}
	sw.indexDirty = false
}

// meterAllows refills and charges the entry's token bucket; a false return
// polices the packet away.
func (e *FlowEntry) meterAllows(now sim.Time, size int) bool {
	if e.MeterBps <= 0 {
		return true
	}
	burst := float64(e.MeterBurstBytes)
	if burst == 0 {
		burst = e.MeterBps / 8 / 10 // 100 ms of rate
	}
	elapsed := now.Sub(e.lastRefill).Seconds()
	e.lastRefill = now
	e.tokens += elapsed * e.MeterBps / 8
	if e.tokens > burst {
		e.tokens = burst
	}
	if e.tokens < float64(size) {
		e.MeterDrops++
		return false
	}
	e.tokens -= float64(size)
	return true
}

// apply executes an entry's actions on the packet.
func (sw *Switch) apply(e *FlowEntry, p *netsim.Packet) {
	e.lastUsed = sw.eng.Now()
	if !e.meterAllows(sw.eng.Now(), p.Size) {
		sw.meterDrops.Inc()
		sw.node.Network().Release(p)
		return
	}
	e.Packets++
	e.Bytes += uint64(p.Size)
	sw.stagedTEID, sw.stagedDst = 0, pkt.Addr{}
	for _, a := range e.Actions {
		switch a.Type {
		case pkt.ActionSetTunnel:
			sw.stagedTEID = a.TunnelID
			sw.stagedDst = a.TunnelDst
		case pkt.ActionSetField:
			p.TOS = a.FieldValue
		case pkt.ActionOutput:
			out := p
			sw.output(int(a.Port), out)
		case pkt.ActionDrop:
			sw.node.Network().Release(p)
			return
		}
	}
}

//acacia:hotpath
func (sw *Switch) output(portID int, p *netsim.Packet) {
	if portID < 0 || portID >= len(sw.node.Ports()) {
		sw.dropped.Inc()
		sw.node.Network().Release(p)
		return
	}
	if sw.gtpPort[portID] && sw.stagedTEID != 0 {
		p.Encapsulate(sw.node.Addr(), sw.stagedDst, uint32(sw.stagedTEID))
		sw.encapsulated.Inc()
	}
	sw.node.Port(portID).Send(p)
}

// installFlow adds (or replaces, on identical match+priority) an entry.
func (sw *Switch) installFlow(e FlowEntry) {
	e.lastUsed = sw.eng.Now()
	if e.MeterBps > 0 {
		// Start with a full bucket so the meter polices steady-state rate,
		// not the first burst after installation.
		burst := float64(e.MeterBurstBytes)
		if burst == 0 {
			burst = e.MeterBps / 8 / 10
		}
		e.tokens = burst
		e.lastRefill = sw.eng.Now()
	}
	for i := range sw.table {
		if sw.table[i].Priority == e.Priority && matchEqual(&sw.table[i].Match, &e.Match) {
			sw.table[i] = e
			sw.invalidateCache()
			return
		}
	}
	// Insert keeping the table ordered by descending priority for
	// deterministic iteration in dumps. Shifting only strictly-lower
	// priorities keeps insertion stable (equal priorities stay in arrival
	// order, as sort.SliceStable did) without its per-call closure and
	// swapper allocations on the flow-install path.
	sw.table = append(sw.table, e)
	i := len(sw.table) - 1
	for i > 0 && sw.table[i-1].Priority < e.Priority {
		sw.table[i] = sw.table[i-1]
		i--
	}
	sw.table[i] = e
	sw.invalidateCache()
}

// removeFlows deletes entries matching the cookie, returning the count.
func (sw *Switch) removeFlows(cookie uint64) int {
	kept := sw.table[:0]
	removed := 0
	for _, e := range sw.table {
		if e.Cookie == cookie {
			removed++
			continue
		}
		kept = append(kept, e)
	}
	sw.table = kept
	sw.invalidateCache()
	return removed
}

// invalidateCache flushes the megaflow cache and marks the tuple-space
// index dirty; indices into the table are no longer valid after any table
// mutation.
func (sw *Switch) invalidateCache() {
	for k := range sw.cache {
		delete(sw.cache, k)
	}
	sw.occupancy.Set(0)
	sw.indexDirty = true
}

// ExpireIdleFlows removes entries idle past their timeout, as the periodic
// OVS revalidator does. Returns the number removed.
func (sw *Switch) ExpireIdleFlows() int {
	now := sw.eng.Now()
	kept := sw.table[:0]
	removed := 0
	for _, e := range sw.table {
		if e.IdleTimeout > 0 && now.Sub(e.lastUsed) >= e.IdleTimeout {
			removed++
			sw.flowsExpired.Inc()
			if sw.controller != nil {
				sw.controller.flowRemoved(sw, &e)
			}
			continue
		}
		kept = append(kept, e)
	}
	sw.table = kept
	if removed > 0 {
		sw.invalidateCache()
	}
	return removed
}

// DumpFlows returns a human-readable table dump for debugging.
func (sw *Switch) DumpFlows() string {
	s := fmt.Sprintf("switch dpid=%d (%s): %d flows\n", sw.DPID, sw.node.Name(), len(sw.table))
	for _, e := range sw.table {
		s += fmt.Sprintf("  prio=%d cookie=%#x pkts=%d actions=%d\n", e.Priority, e.Cookie, e.Packets, len(e.Actions))
	}
	return s
}

func matchEqual(a, b *pkt.Match) bool {
	eqU32 := func(x, y *uint32) bool { return (x == nil) == (y == nil) && (x == nil || *x == *y) }
	eqU16 := func(x, y *uint16) bool { return (x == nil) == (y == nil) && (x == nil || *x == *y) }
	eqU8 := func(x, y *uint8) bool { return (x == nil) == (y == nil) && (x == nil || *x == *y) }
	eqU64 := func(x, y *uint64) bool { return (x == nil) == (y == nil) && (x == nil || *x == *y) }
	eqAddr := func(x, y *pkt.Addr) bool { return (x == nil) == (y == nil) && (x == nil || *x == *y) }
	return eqU32(a.InPort, b.InPort) && eqU16(a.EthType, b.EthType) && eqU8(a.IPProto, b.IPProto) &&
		eqAddr(a.IPv4Src, b.IPv4Src) && eqAddr(a.IPv4Dst, b.IPv4Dst) &&
		eqU16(a.UDPSrc, b.UDPSrc) && eqU16(a.UDPDst, b.UDPDst) && eqU64(a.TunnelID, b.TunnelID)
}
