package yamlite

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestScalarRoundTrip(t *testing.T) {
	doc := Map().Set("name", Str("obj-01")).Set("count", Int(42)).Set("score", Float(3.14))
	out := Marshal(doc)
	got, err := Unmarshal(out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !Equal(doc, got) {
		t.Errorf("round trip:\n%s", out)
	}
	if v, _ := got.Get("count").Int(); v != 42 {
		t.Errorf("count = %v", v)
	}
	if v, _ := got.Get("score").Float(); v != 3.14 {
		t.Errorf("score = %v", v)
	}
	if got.Get("name").Text() != "obj-01" {
		t.Errorf("name = %q", got.Get("name").Text())
	}
}

func TestNestedStructureRoundTrip(t *testing.T) {
	obj := Map().
		Set("name", Str("widget")).
		Set("tags", Seq(Str("a"), Str("b"))).
		Set("meta", Map().Set("section", Str("toys")).Set("cell", Int(7))).
		Set("vec", FloatSeq([]float64{0.5, -1.25, 3}))
	doc := Map().Set("objects", Seq(obj, Map().Set("name", Str("other"))))
	out := Marshal(doc)
	got, err := Unmarshal(out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !Equal(doc, got) {
		t.Fatalf("round trip mismatch:\n%s", out)
	}
	objs := got.Get("objects")
	if objs.Len() != 2 {
		t.Fatalf("objects = %d", objs.Len())
	}
	vec, err := objs.Seq[0].Get("vec").Floats()
	if err != nil || len(vec) != 3 || vec[1] != -1.25 {
		t.Errorf("vec = %v (%v)", vec, err)
	}
}

func TestQuotedStringsRoundTrip(t *testing.T) {
	cases := []string{
		"", "plain", "with: colon", "has \"quotes\"", "line\nbreak",
		"[brackets]", "{braces}", "trailing ", " leading", "#comment-ish",
	}
	doc := Map()
	for i, s := range cases {
		doc.Set(string(rune('a'+i)), Str(s))
	}
	got, err := Unmarshal(Marshal(doc))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(doc, got) {
		t.Errorf("quoted round trip failed:\n%s", Marshal(doc))
	}
}

func TestQuotedKeysRoundTrip(t *testing.T) {
	doc := Map().Set("key: with colon", Str("v")).Set("normal", Str("w"))
	got, err := Unmarshal(Marshal(doc))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(doc, got) {
		t.Errorf("quoted key round trip failed:\n%s", Marshal(doc))
	}
}

func TestFlowSeqFormatting(t *testing.T) {
	doc := Map().Set("v", FloatSeq([]float64{1, 2.5, -3}))
	out := string(Marshal(doc))
	if !strings.Contains(out, "v: [1, 2.5, -3]") {
		t.Errorf("flow sequence not inline: %q", out)
	}
}

func TestEmptyFlowSeq(t *testing.T) {
	got, err := Unmarshal([]byte("v: []\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Get("v").Kind != KindSeq || got.Get("v").Len() != 0 {
		t.Errorf("empty flow seq = %+v", got.Get("v"))
	}
}

func TestSeqOfMaps(t *testing.T) {
	doc := Seq(
		Map().Set("a", Int(1)),
		Map().Set("b", Int(2)),
	)
	got, err := Unmarshal(Marshal(doc))
	if err != nil {
		t.Fatalf("%v\n%s", err, Marshal(doc))
	}
	if !Equal(doc, got) {
		t.Errorf("seq-of-maps round trip:\n%s", Marshal(doc))
	}
}

func TestEmptyValueBecomesEmptyScalar(t *testing.T) {
	got, err := Unmarshal([]byte("a:\nb: x\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Get("a").Text() != "" || got.Get("b").Text() != "x" {
		t.Errorf("got %+v", got)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := []string{
		"key without colon\n",
		"a: [1, 2\n",      // unterminated flow
		"a: \"unclosed\n", // unclosed quote -> scalar parse error
	}
	for _, c := range cases {
		if _, err := Unmarshal([]byte(c)); err == nil {
			t.Errorf("Unmarshal(%q) succeeded", c)
		}
	}
}

func TestNodeAccessorErrors(t *testing.T) {
	if _, err := Seq().Int(); err == nil {
		t.Error("Int on seq should fail")
	}
	if _, err := Str("x").Floats(); err == nil {
		t.Error("Floats on scalar should fail")
	}
	if _, err := Str("abc").Float(); err == nil {
		t.Error("Float on non-numeric should fail")
	}
	var nilNode *Node
	if nilNode.Get("x") != nil {
		t.Error("Get on nil should be nil")
	}
	if nilNode.Text() != "" {
		t.Error("Text on nil should be empty")
	}
}

func TestSetReplacesExistingKey(t *testing.T) {
	doc := Map().Set("k", Int(1)).Set("k", Int(2))
	if doc.Len() != 1 {
		t.Errorf("len = %d", doc.Len())
	}
	if v, _ := doc.Get("k").Int(); v != 2 {
		t.Errorf("k = %v", v)
	}
}

func TestFloatSeqPropertyRoundTrip(t *testing.T) {
	f := func(vs []float64) bool {
		for _, v := range vs {
			if v != v || v > 1e300 || v < -1e300 { // NaN/huge
				return true
			}
		}
		doc := Map().Set("v", FloatSeq(vs))
		got, err := Unmarshal(Marshal(doc))
		if err != nil {
			return false
		}
		back, err := got.Get("v").Floats()
		if err != nil || len(back) != len(vs) {
			return false
		}
		for i := range vs {
			if back[i] != vs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSortedKeys(t *testing.T) {
	doc := Map().Set("b", Int(1)).Set("a", Int(2))
	keys := doc.SortedKeys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Errorf("SortedKeys = %v", keys)
	}
	// Marshal preserves insertion order, not sorted order.
	out := string(Marshal(doc))
	if strings.Index(out, "b:") > strings.Index(out, "a:") {
		t.Errorf("insertion order not preserved:\n%s", out)
	}
}
