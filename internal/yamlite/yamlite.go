// Package yamlite implements the small YAML subset the AR back-end uses to
// persist its object database, mirroring the paper's OpenCV YAML storage:
// block mappings and sequences with indentation, flow sequences for numeric
// vectors, and plain/quoted scalars. It is not a general YAML parser — it
// round-trips exactly the documents this repository writes.
package yamlite

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Node is one YAML value: scalar, sequence or mapping.
type Node struct {
	Kind Kind
	// Scalar holds the string form for KindScalar.
	Scalar string
	// Seq holds items for KindSeq.
	Seq []*Node
	// Keys/Values hold ordered pairs for KindMap.
	Keys   []string
	Values []*Node
}

// Kind discriminates node types.
type Kind uint8

// Node kinds.
const (
	KindScalar Kind = iota
	KindSeq
	KindMap
)

// Str builds a scalar node from a string.
func Str(s string) *Node { return &Node{Kind: KindScalar, Scalar: s} }

// Int builds a scalar node from an integer.
func Int(v int) *Node { return Str(strconv.Itoa(v)) }

// Float builds a scalar node from a float with full round-trip precision.
func Float(v float64) *Node { return Str(strconv.FormatFloat(v, 'g', -1, 64)) }

// Seq builds a sequence node.
func Seq(items ...*Node) *Node { return &Node{Kind: KindSeq, Seq: items} }

// FloatSeq builds a sequence of float scalars (encoded in flow style).
func FloatSeq(vs []float64) *Node {
	n := &Node{Kind: KindSeq}
	for _, v := range vs {
		n.Seq = append(n.Seq, Float(v))
	}
	return n
}

// Map builds an empty mapping node.
func Map() *Node { return &Node{Kind: KindMap} }

// Set appends (or replaces) a key in a mapping node and returns the node
// for chaining.
func (n *Node) Set(key string, v *Node) *Node {
	if n.Kind != KindMap {
		panic("yamlite: Set on non-map node")
	}
	for i, k := range n.Keys {
		if k == key {
			n.Values[i] = v
			return n
		}
	}
	n.Keys = append(n.Keys, key)
	n.Values = append(n.Values, v)
	return n
}

// Get returns the value for key in a mapping node, or nil.
func (n *Node) Get(key string) *Node {
	if n == nil || n.Kind != KindMap {
		return nil
	}
	for i, k := range n.Keys {
		if k == key {
			return n.Values[i]
		}
	}
	return nil
}

// Len reports the child count (sequence items or map entries).
func (n *Node) Len() int {
	switch n.Kind {
	case KindSeq:
		return len(n.Seq)
	case KindMap:
		return len(n.Keys)
	default:
		return 0
	}
}

// Int parses the scalar as an integer.
func (n *Node) Int() (int, error) {
	if n == nil || n.Kind != KindScalar {
		return 0, fmt.Errorf("yamlite: not a scalar")
	}
	return strconv.Atoi(n.Scalar)
}

// Float parses the scalar as a float.
func (n *Node) Float() (float64, error) {
	if n == nil || n.Kind != KindScalar {
		return 0, fmt.Errorf("yamlite: not a scalar")
	}
	return strconv.ParseFloat(n.Scalar, 64)
}

// Floats parses a sequence of float scalars.
func (n *Node) Floats() ([]float64, error) {
	if n == nil || n.Kind != KindSeq {
		return nil, fmt.Errorf("yamlite: not a sequence")
	}
	out := make([]float64, 0, len(n.Seq))
	for _, item := range n.Seq {
		v, err := item.Float()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// Text returns the scalar string, or "" for non-scalars.
func (n *Node) Text() string {
	if n == nil || n.Kind != KindScalar {
		return ""
	}
	return n.Scalar
}

// Marshal renders the node as a YAML document.
func Marshal(n *Node) []byte {
	var b strings.Builder
	encode(&b, n, 0, false)
	return []byte(b.String())
}

func isFlowableSeq(n *Node) bool {
	if n.Kind != KindSeq {
		return false
	}
	// Empty sequences must use flow style ("[]") — a block encoding would
	// be indistinguishable from an empty scalar.
	for _, item := range n.Seq {
		if item.Kind != KindScalar {
			return false
		}
	}
	return true
}

func needsQuoting(s string) bool {
	if s == "" {
		return true
	}
	if strings.ContainsAny(s, ":#[]{},\"'\n") {
		return true
	}
	return s != strings.TrimSpace(s)
}

func encodeScalar(s string) string {
	if needsQuoting(s) {
		return strconv.Quote(s)
	}
	return s
}

func encode(b *strings.Builder, n *Node, indent int, inline bool) {
	pad := strings.Repeat("  ", indent)
	switch n.Kind {
	case KindScalar:
		b.WriteString(encodeScalar(n.Scalar))
		b.WriteByte('\n')
	case KindSeq:
		if isFlowableSeq(n) {
			b.WriteByte('[')
			for i, item := range n.Seq {
				if i > 0 {
					b.WriteString(", ")
				}
				b.WriteString(encodeScalar(item.Scalar))
			}
			b.WriteString("]\n")
			return
		}
		if inline {
			b.WriteByte('\n')
		}
		for _, item := range n.Seq {
			b.WriteString(pad)
			b.WriteString("- ")
			if item.Kind == KindScalar || isFlowableSeq(item) {
				encode(b, item, 0, false)
			} else {
				b.WriteByte('\n')
				encode(b, item, indent+1, false)
			}
		}
	case KindMap:
		if inline {
			b.WriteByte('\n')
		}
		for i, k := range n.Keys {
			v := n.Values[i]
			b.WriteString(pad)
			b.WriteString(encodeScalar(k))
			b.WriteString(":")
			switch {
			case v.Kind == KindScalar || isFlowableSeq(v):
				b.WriteByte(' ')
				encode(b, v, 0, false)
			default:
				b.WriteByte('\n')
				encode(b, v, indent+1, false)
			}
		}
	}
}

// Unmarshal parses a document produced by Marshal.
func Unmarshal(data []byte) (*Node, error) {
	lines := splitLines(string(data))
	p := &parser{lines: lines}
	n, err := p.parseBlock(0)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.lines) {
		return nil, fmt.Errorf("yamlite: trailing content at line %d", p.lines[p.pos].num)
	}
	return n, nil
}

type line struct {
	num    int
	indent int
	text   string // content without indentation
}

func splitLines(s string) []line {
	var out []line
	for i, raw := range strings.Split(s, "\n") {
		trimmed := strings.TrimRight(raw, " \t")
		if strings.TrimSpace(trimmed) == "" {
			continue
		}
		ind := 0
		for ind < len(trimmed) && trimmed[ind] == ' ' {
			ind++
		}
		if ind%2 != 0 {
			ind-- // tolerate odd indentation by rounding down
		}
		out = append(out, line{num: i + 1, indent: ind / 2, text: strings.TrimLeft(trimmed, " ")})
	}
	return out
}

type parser struct {
	lines []line
	pos   int
}

func (p *parser) peek() (line, bool) {
	if p.pos >= len(p.lines) {
		return line{}, false
	}
	return p.lines[p.pos], true
}

// parseBlock parses the block starting at the current position with the
// given indentation level.
func (p *parser) parseBlock(indent int) (*Node, error) {
	l, ok := p.peek()
	if !ok {
		return nil, fmt.Errorf("yamlite: unexpected end of document")
	}
	if l.indent != indent {
		return nil, fmt.Errorf("yamlite: line %d: indent %d, want %d", l.num, l.indent, indent)
	}
	if strings.HasPrefix(l.text, "- ") || l.text == "-" {
		return p.parseSeq(indent)
	}
	return p.parseMap(indent)
}

func (p *parser) parseSeq(indent int) (*Node, error) {
	n := &Node{Kind: KindSeq}
	for {
		l, ok := p.peek()
		if !ok || l.indent != indent || !(strings.HasPrefix(l.text, "- ") || l.text == "-") {
			return n, nil
		}
		p.pos++
		rest := strings.TrimPrefix(strings.TrimPrefix(l.text, "- "), "-")
		rest = strings.TrimSpace(rest)
		if rest == "" {
			child, err := p.parseBlock(indent + 1)
			if err != nil {
				return nil, err
			}
			n.Seq = append(n.Seq, child)
			continue
		}
		item, err := parseInlineValue(rest, l.num)
		if err != nil {
			return nil, err
		}
		n.Seq = append(n.Seq, item)
	}
}

func (p *parser) parseMap(indent int) (*Node, error) {
	n := Map()
	for {
		l, ok := p.peek()
		if !ok || l.indent != indent || strings.HasPrefix(l.text, "- ") {
			return n, nil
		}
		key, rest, err := splitKey(l.text, l.num)
		if err != nil {
			return nil, err
		}
		p.pos++
		if rest != "" {
			v, err := parseInlineValue(rest, l.num)
			if err != nil {
				return nil, err
			}
			n.Set(key, v)
			continue
		}
		// Value is the following nested block; an immediately following
		// sibling or EOF means an empty scalar.
		next, ok := p.peek()
		if !ok || next.indent <= indent {
			n.Set(key, Str(""))
			continue
		}
		child, err := p.parseBlock(indent + 1)
		if err != nil {
			return nil, err
		}
		n.Set(key, child)
	}
}

// splitKey separates "key: value" respecting a quoted key.
func splitKey(s string, num int) (key, rest string, err error) {
	if strings.HasPrefix(s, "\"") {
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == '"' && s[i-1] != '\\' {
				end = i
				break
			}
		}
		if end < 0 || end+1 >= len(s) || s[end+1] != ':' {
			return "", "", fmt.Errorf("yamlite: line %d: malformed quoted key", num)
		}
		k, err := strconv.Unquote(s[:end+1])
		if err != nil {
			return "", "", fmt.Errorf("yamlite: line %d: %v", num, err)
		}
		return k, strings.TrimSpace(s[end+2:]), nil
	}
	idx := strings.Index(s, ":")
	if idx < 0 {
		return "", "", fmt.Errorf("yamlite: line %d: missing ':' in %q", num, s)
	}
	return s[:idx], strings.TrimSpace(s[idx+1:]), nil
}

func parseInlineValue(s string, num int) (*Node, error) {
	if strings.HasPrefix(s, "[") {
		if !strings.HasSuffix(s, "]") {
			return nil, fmt.Errorf("yamlite: line %d: unterminated flow sequence", num)
		}
		inner := strings.TrimSpace(s[1 : len(s)-1])
		n := &Node{Kind: KindSeq}
		if inner == "" {
			return n, nil
		}
		for _, part := range strings.Split(inner, ",") {
			item, err := parseScalar(strings.TrimSpace(part), num)
			if err != nil {
				return nil, err
			}
			n.Seq = append(n.Seq, item)
		}
		return n, nil
	}
	return parseScalar(s, num)
}

func parseScalar(s string, num int) (*Node, error) {
	if strings.HasPrefix(s, "\"") {
		u, err := strconv.Unquote(s)
		if err != nil {
			return nil, fmt.Errorf("yamlite: line %d: %v", num, err)
		}
		return Str(u), nil
	}
	return Str(s), nil
}

// Equal reports deep equality of two nodes.
func Equal(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case KindScalar:
		return a.Scalar == b.Scalar
	case KindSeq:
		if len(a.Seq) != len(b.Seq) {
			return false
		}
		for i := range a.Seq {
			if !Equal(a.Seq[i], b.Seq[i]) {
				return false
			}
		}
		return true
	case KindMap:
		if len(a.Keys) != len(b.Keys) {
			return false
		}
		// Key order matters for round-trip fidelity; compare in order.
		for i := range a.Keys {
			if a.Keys[i] != b.Keys[i] || !Equal(a.Values[i], b.Values[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// SortedKeys returns a mapping's keys in lexical order (for deterministic
// inspection output; Marshal preserves insertion order).
func (n *Node) SortedKeys() []string {
	out := append([]string(nil), n.Keys...)
	sort.Strings(out)
	return out
}
