package media

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"acacia/internal/sim"
)

// This file implements a real (if minimal) lossy grayscale codec in the
// JPEG mold: 8x8 block DCT, uniform quantization scaled by a quality
// factor, zig-zag run-length coding of coefficients, and a fixed-Golomb
// entropy stage. The AR front-end runs it on synthetic frames so the
// compression path does actual work with quality/size trade-offs, rather
// than only consulting the calibrated ratio tables.

// Frame is a grayscale image.
type Frame struct {
	W, H int
	Pix  []uint8 // row-major, len W*H
}

// NewFrame allocates a zeroed frame.
func NewFrame(w, h int) *Frame {
	return &Frame{W: w, H: h, Pix: make([]uint8, w*h)}
}

// At returns the pixel at (x, y).
func (f *Frame) At(x, y int) uint8 { return f.Pix[y*f.W+x] }

// Set writes the pixel at (x, y).
func (f *Frame) Set(x, y int, v uint8) { f.Pix[y*f.W+x] = v }

// SyntheticFrame renders a deterministic test scene: smooth gradients with
// a few rectangular "objects" and mild noise — compressible, but not
// trivially so, like a store shelf.
func SyntheticFrame(w, h int, seed uint64) *Frame {
	rng := sim.NewRNG(seed)
	f := NewFrame(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := 96 + 64*math.Sin(float64(x)/37) + 48*math.Cos(float64(y)/23)
			f.Set(x, y, clamp8(v+4*rng.NormFloat64()))
		}
	}
	// Overlay a handful of high-contrast rectangles.
	for i := 0; i < 6; i++ {
		x0, y0 := rng.Intn(w*3/4), rng.Intn(h*3/4)
		bw, bh := w/8+rng.Intn(w/8), h/8+rng.Intn(h/8)
		shade := uint8(rng.Intn(256))
		for y := y0; y < y0+bh && y < h; y++ {
			for x := x0; x < x0+bw && x < w; x++ {
				f.Set(x, y, shade)
			}
		}
	}
	return f
}

func clamp8(v float64) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v + 0.5)
}

const blockSize = 8

// zigzag is the standard JPEG coefficient scan order for an 8x8 block.
var zigzag = buildZigzag()

func buildZigzag() [64]int {
	var order [64]int
	idx := 0
	for s := 0; s < 15; s++ {
		if s%2 == 0 { // up-right
			for y := min(s, 7); y >= 0 && s-y <= 7; y-- {
				order[idx] = y*8 + (s - y)
				idx++
			}
		} else { // down-left
			for x := min(s, 7); x >= 0 && s-x <= 7; x-- {
				order[idx] = (s-x)*8 + x
				idx++
			}
		}
	}
	return order
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// quantStep maps a quality setting (1..100) to a uniform quantizer step:
// high quality = fine steps. The mapping follows the libjpeg convention of
// halving the base table at quality 100 and doubling toward quality 1.
func quantStep(quality int) float64 {
	if quality < 1 {
		quality = 1
	}
	if quality > 100 {
		quality = 100
	}
	var scale float64
	if quality < 50 {
		scale = 5000 / float64(quality)
	} else {
		scale = 200 - 2*float64(quality)
	}
	step := 16 * scale / 100 // base step 16 at quality 50
	if step < 0.25 {
		step = 0.25
	}
	return step
}

// dct8 performs a forward 8-point DCT-II on each row of the block, then
// each column (separable 2-D DCT).
func dct2d(block *[64]float64) {
	var tmp [64]float64
	for y := 0; y < 8; y++ {
		for u := 0; u < 8; u++ {
			var sum float64
			for x := 0; x < 8; x++ {
				sum += block[y*8+x] * dctCos[x][u]
			}
			tmp[y*8+u] = sum * dctScale(u)
		}
	}
	for x := 0; x < 8; x++ {
		for v := 0; v < 8; v++ {
			var sum float64
			for y := 0; y < 8; y++ {
				sum += tmp[y*8+x] * dctCos[y][v]
			}
			block[v*8+x] = sum * dctScale(v)
		}
	}
}

// idct2d inverts dct2d.
func idct2d(block *[64]float64) {
	var tmp [64]float64
	for x := 0; x < 8; x++ {
		for y := 0; y < 8; y++ {
			var sum float64
			for v := 0; v < 8; v++ {
				sum += dctScale(v) * block[v*8+x] * dctCos[y][v]
			}
			tmp[y*8+x] = sum
		}
	}
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			var sum float64
			for u := 0; u < 8; u++ {
				sum += dctScale(u) * tmp[y*8+u] * dctCos[x][u]
			}
			block[y*8+x] = sum
		}
	}
}

var dctCos = buildDCTCos()

func buildDCTCos() [8][8]float64 {
	var c [8][8]float64
	for x := 0; x < 8; x++ {
		for u := 0; u < 8; u++ {
			c[x][u] = math.Cos((2*float64(x) + 1) * float64(u) * math.Pi / 16)
		}
	}
	return c
}

func dctScale(u int) float64 {
	if u == 0 {
		return math.Sqrt(1.0 / 8)
	}
	return math.Sqrt(2.0 / 8)
}

// Compress encodes the frame at the given quality (1..100). The output is
// self-describing (dimensions + quality in the header).
func Compress(f *Frame, quality int) ([]byte, error) {
	if f.W%blockSize != 0 || f.H%blockSize != 0 {
		return nil, fmt.Errorf("media: dimensions %dx%d not multiples of %d", f.W, f.H, blockSize)
	}
	step := quantStep(quality)
	out := make([]byte, 0, f.W*f.H/4)
	var hdr [10]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(f.W))
	binary.BigEndian.PutUint32(hdr[4:], uint32(f.H))
	hdr[8] = uint8(quality)
	hdr[9] = 0 // reserved
	out = append(out, hdr[:]...)

	w := &bitWriter{}
	var block [64]float64
	for by := 0; by < f.H; by += blockSize {
		for bx := 0; bx < f.W; bx += blockSize {
			for y := 0; y < blockSize; y++ {
				for x := 0; x < blockSize; x++ {
					block[y*8+x] = float64(f.At(bx+x, by+y)) - 128
				}
			}
			dct2d(&block)
			// Quantize + zig-zag run-length: (run of zeros, value) pairs.
			run := 0
			for _, zi := range zigzag {
				q := int(math.Round(block[zi] / step))
				if q == 0 {
					run++
					continue
				}
				w.writeGolomb(uint32(run))
				w.writeSigned(q)
				run = 0
			}
			w.writeGolomb(uint32(run))
			w.writeSigned(0) // block terminator: zero value after final run
		}
	}
	return append(out, w.bytes()...), nil
}

// ErrCorrupt reports a malformed compressed stream.
var ErrCorrupt = errors.New("media: corrupt compressed frame")

// Decompress decodes a frame produced by Compress.
func Decompress(data []byte) (*Frame, error) {
	if len(data) < 10 {
		return nil, ErrCorrupt
	}
	w := int(binary.BigEndian.Uint32(data[0:]))
	h := int(binary.BigEndian.Uint32(data[4:]))
	quality := int(data[8])
	if w <= 0 || h <= 0 || w > 1<<15 || h > 1<<15 || w%blockSize != 0 || h%blockSize != 0 {
		return nil, ErrCorrupt
	}
	step := quantStep(quality)
	r := &bitReader{data: data[10:]}
	f := NewFrame(w, h)
	var block [64]float64
	for by := 0; by < h; by += blockSize {
		for bx := 0; bx < w; bx += blockSize {
			for i := range block {
				block[i] = 0
			}
			// Read (run, value) pairs until the block terminator (value 0);
			// the terminator is always present, even for blocks whose last
			// scan position holds a nonzero coefficient.
			pos := 0
			for {
				run, err := r.readGolomb()
				if err != nil {
					return nil, err
				}
				v, err := r.readSigned()
				if err != nil {
					return nil, err
				}
				pos += int(run)
				if v == 0 {
					if pos > 64 {
						return nil, ErrCorrupt
					}
					break
				}
				if pos >= 64 {
					return nil, ErrCorrupt
				}
				block[zigzag[pos]] = float64(v) * step
				pos++
			}
			idct2d(&block)
			for y := 0; y < blockSize; y++ {
				for x := 0; x < blockSize; x++ {
					f.Set(bx+x, by+y, clamp8(block[y*8+x]+128))
				}
			}
		}
	}
	return f, nil
}

// PSNR reports the peak signal-to-noise ratio between two equal-size
// frames, in dB; +Inf for identical frames.
func PSNR(a, b *Frame) (float64, error) {
	if a.W != b.W || a.H != b.H {
		return 0, fmt.Errorf("media: size mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
	}
	var mse float64
	for i := range a.Pix {
		d := float64(a.Pix[i]) - float64(b.Pix[i])
		mse += d * d
	}
	mse /= float64(len(a.Pix))
	if mse == 0 {
		return math.Inf(1), nil
	}
	return 10 * math.Log10(255*255/mse), nil
}

// --- bit-level Golomb coding ---

type bitWriter struct {
	buf []byte
	cur byte
	n   uint8
}

func (w *bitWriter) writeBit(b uint32) {
	w.cur = w.cur<<1 | byte(b&1)
	w.n++
	if w.n == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur, w.n = 0, 0
	}
}

// writeGolomb writes v in Exp-Golomb order-0: n zero bits, then the
// (n+1)-bit value v+1.
func (w *bitWriter) writeGolomb(v uint32) {
	x := v + 1
	bits := 0
	for t := x; t > 1; t >>= 1 {
		bits++
	}
	for i := 0; i < bits; i++ {
		w.writeBit(0)
	}
	for i := bits; i >= 0; i-- {
		w.writeBit(x >> uint(i))
	}
}

// writeSigned maps a signed value to unsigned (zig-zag) and Golomb-codes it.
func (w *bitWriter) writeSigned(v int) {
	var u uint32
	if v >= 0 {
		u = uint32(v) << 1
	} else {
		u = uint32(-v)<<1 - 1
	}
	w.writeGolomb(u)
}

func (w *bitWriter) bytes() []byte {
	out := w.buf
	if w.n > 0 {
		out = append(out, w.cur<<(8-w.n))
	}
	return out
}

type bitReader struct {
	data []byte
	pos  int // bit position
}

func (r *bitReader) readBit() (uint32, error) {
	byteIdx := r.pos >> 3
	if byteIdx >= len(r.data) {
		return 0, ErrCorrupt
	}
	bit := uint32(r.data[byteIdx]>>(7-uint(r.pos&7))) & 1
	r.pos++
	return bit, nil
}

func (r *bitReader) readGolomb() (uint32, error) {
	zeros := 0
	for {
		b, err := r.readBit()
		if err != nil {
			return 0, err
		}
		if b == 1 {
			break
		}
		zeros++
		if zeros > 32 {
			return 0, ErrCorrupt
		}
	}
	x := uint32(1)
	for i := 0; i < zeros; i++ {
		b, err := r.readBit()
		if err != nil {
			return 0, err
		}
		x = x<<1 | b
	}
	return x - 1, nil
}

func (r *bitReader) readSigned() (int, error) {
	u, err := r.readGolomb()
	if err != nil {
		return 0, err
	}
	if u&1 == 0 {
		return int(u >> 1), nil
	}
	return -int((u + 1) >> 1), nil
}
