package media

import (
	"math"
	"testing"

	"acacia/internal/compute"
)

func TestPreviewFPSTable(t *testing.T) {
	if got := PreviewFPS(compute.Resolution{W: 1920, H: 1080}); got != 10 {
		t.Errorf("HD preview = %v FPS, want 10 (paper)", got)
	}
	if got := PreviewFPS(compute.Resolution{W: 320, H: 240}); got != 30 {
		t.Errorf("QVGA preview = %v FPS", got)
	}
	if got := PreviewFPS(compute.Resolution{W: 123, H: 456}); got != 10 {
		t.Errorf("unknown resolution default = %v", got)
	}
}

func TestPreviewFPSNonIncreasing(t *testing.T) {
	order := []compute.Resolution{
		{W: 320, H: 240}, {W: 640, H: 480}, {W: 720, H: 480},
		{W: 1280, H: 720}, {W: 1280, H: 960}, {W: 1440, H: 1080}, {W: 1920, H: 1080},
	}
	prev := math.Inf(1)
	for _, r := range order {
		fps := PreviewFPS(r)
		if fps > prev {
			t.Errorf("FPS increased at %v", r)
		}
		prev = fps
	}
}

func TestFig3fShape(t *testing.T) {
	// Paper's Fig. 3(f) anchors at 12 Mbps for full-HD grayscale:
	// raw < 1 FPS, JPEG 90 ≈ 8 FPS.
	hd := compute.Resolution{W: 1920, H: 1080}
	if fps := RawGray.UploadFPS(hd, 12e6); fps >= 1 {
		t.Errorf("raw upload = %.2f FPS, want < 1", fps)
	}
	if fps := JPEG90.UploadFPS(hd, 12e6); math.Abs(fps-8) > 1 {
		t.Errorf("JPEG90 upload = %.2f FPS, want ≈8", fps)
	}
	// Stronger compression always uploads faster.
	encs := Fig3fEncodings()
	for i := 1; i < len(encs); i++ {
		if encs[i-1].Ratio < encs[i].Ratio {
			t.Errorf("encoding order %v >= %v violated", encs[i-1], encs[i])
		}
		fPrev := encs[i-1].UploadFPS(hd, 10e6)
		fCur := encs[i].UploadFPS(hd, 10e6)
		if fPrev < fCur {
			t.Errorf("%v slower than %v", encs[i-1], encs[i])
		}
	}
	// FPS scales linearly with capacity.
	if f1, f2 := JPEG80.UploadFPS(hd, 5.5e6), JPEG80.UploadFPS(hd, 11e6); math.Abs(f2/f1-2) > 1e-9 {
		t.Errorf("capacity scaling %v -> %v", f1, f2)
	}
}

func TestAppCompressionTableValues(t *testing.T) {
	tbl := AppCompressionTable()
	if len(tbl) != 3 {
		t.Fatalf("entries = %d", len(tbl))
	}
	// Paper: 53/38/23 ms and 5x/5.8x/4.7x.
	if tbl[0].EncodeMS != 53 || tbl[0].Ratio != 5.0 {
		t.Errorf("1280x720 entry = %+v", tbl[0])
	}
	if tbl[2].EncodeMS != 23 || tbl[2].Ratio != 4.7 {
		t.Errorf("720x480 entry = %+v", tbl[2])
	}
}

func TestAppFrameBytes(t *testing.T) {
	r := compute.Resolution{W: 960, H: 720}
	want := int(float64(r.Pixels()) / 5.8)
	if got := AppFrameBytes(r); got != want {
		t.Errorf("AppFrameBytes = %d, want %d", got, want)
	}
	// Unknown resolution falls back to the generic JPEG90 ratio.
	other := compute.Resolution{W: 640, H: 480}
	if got := AppFrameBytes(other); got != JPEG90.FrameBytes(other) {
		t.Errorf("fallback = %d", got)
	}
}

func TestCodecRoundTripQuality(t *testing.T) {
	f := SyntheticFrame(128, 96, 7)
	for _, q := range []int{50, 80, 90, 100} {
		data, err := Compress(f, q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decompress(data)
		if err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
		psnr, err := PSNR(f, got)
		if err != nil {
			t.Fatal(err)
		}
		if psnr < 25 {
			t.Errorf("q=%d: PSNR %.1f dB too low", q, psnr)
		}
		// Near-lossless q=100 keeps the noise floor and may expand slightly
		// under the simple Golomb entropy stage; every lossy setting must
		// genuinely compress.
		if q < 100 && len(data) >= len(f.Pix) {
			t.Errorf("q=%d: no compression (%d >= %d)", q, len(data), len(f.Pix))
		}
		if q == 100 && len(data) > len(f.Pix)*3/2 {
			t.Errorf("q=100 expanded beyond 1.5x raw (%d vs %d)", len(data), len(f.Pix))
		}
	}
}

func TestCodecQualityMonotonicity(t *testing.T) {
	f := SyntheticFrame(128, 96, 9)
	var prevSize int
	var prevPSNR float64
	for i, q := range []int{30, 60, 90} {
		data, err := Compress(f, q)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := Decompress(data)
		psnr, _ := PSNR(f, got)
		if i > 0 {
			if len(data) <= prevSize {
				t.Errorf("q=%d size %d not larger than lower quality %d", q, len(data), prevSize)
			}
			if psnr <= prevPSNR {
				t.Errorf("q=%d PSNR %.1f not better than lower quality %.1f", q, psnr, prevPSNR)
			}
		}
		prevSize, prevPSNR = len(data), psnr
	}
}

func TestCodecRejectsBadDimensions(t *testing.T) {
	f := NewFrame(10, 10) // not multiples of 8
	if _, err := Compress(f, 90); err == nil {
		t.Error("accepted non-block-aligned frame")
	}
}

func TestDecompressRejectsCorrupt(t *testing.T) {
	f := SyntheticFrame(64, 64, 1)
	data, err := Compress(f, 80)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress(data[:5]); err == nil {
		t.Error("accepted truncated header")
	}
	if _, err := Decompress(data[:len(data)/2]); err == nil {
		t.Error("accepted truncated body")
	}
	bad := append([]byte{}, data...)
	bad[0], bad[1] = 0xff, 0xff // absurd width
	if _, err := Decompress(bad); err == nil {
		t.Error("accepted absurd dimensions")
	}
}

func TestPSNRIdentical(t *testing.T) {
	f := SyntheticFrame(64, 64, 2)
	psnr, err := PSNR(f, f)
	if err != nil || !math.IsInf(psnr, 1) {
		t.Errorf("PSNR(self) = %v, %v", psnr, err)
	}
	other := NewFrame(32, 32)
	if _, err := PSNR(f, other); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestDCTInverseIsIdentity(t *testing.T) {
	var block [64]float64
	for i := range block {
		block[i] = float64((i*37)%256) - 128
	}
	orig := block
	dct2d(&block)
	idct2d(&block)
	for i := range block {
		if math.Abs(block[i]-orig[i]) > 1e-9 {
			t.Fatalf("DCT round trip error at %d: %v vs %v", i, block[i], orig[i])
		}
	}
}

func TestZigzagIsPermutation(t *testing.T) {
	seen := [64]bool{}
	for _, v := range zigzag {
		if v < 0 || v >= 64 || seen[v] {
			t.Fatalf("zigzag invalid at %d", v)
		}
		seen[v] = true
	}
	// Starts at DC, ends at the highest frequency.
	if zigzag[0] != 0 || zigzag[63] != 63 {
		t.Errorf("zigzag endpoints %d..%d", zigzag[0], zigzag[63])
	}
}

func TestGolombRoundTrip(t *testing.T) {
	w := &bitWriter{}
	values := []uint32{0, 1, 2, 3, 7, 8, 100, 1000, 65535}
	for _, v := range values {
		w.writeGolomb(v)
	}
	signed := []int{0, 1, -1, 5, -5, 127, -128, 1000, -999}
	for _, v := range signed {
		w.writeSigned(v)
	}
	r := &bitReader{data: w.bytes()}
	for _, want := range values {
		got, err := r.readGolomb()
		if err != nil || got != want {
			t.Fatalf("readGolomb = %v, %v; want %v", got, err, want)
		}
	}
	for _, want := range signed {
		got, err := r.readSigned()
		if err != nil || got != want {
			t.Fatalf("readSigned = %v, %v; want %v", got, err, want)
		}
	}
}

func TestLowerQualityCompressesSmaller(t *testing.T) {
	f := SyntheticFrame(256, 192, 3)
	lo, err := Compress(f, 30)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Compress(f, 95)
	if err != nil {
		t.Fatal(err)
	}
	if len(lo) >= len(hi) {
		t.Errorf("q30 size %d >= q95 size %d", len(lo), len(hi))
	}
}
