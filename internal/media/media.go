// Package media models the camera and image-compression side of the AR
// front-end: the phone's preview frame rates by resolution (Fig. 3(e)), the
// calibrated compression ratios behind the achievable-upload-FPS analysis
// (Fig. 3(f)) and the §7.3 compression table, plus a real block-DCT
// grayscale codec that the front-end uses to actually compress synthetic
// frames.
package media

import (
	"fmt"

	"acacia/internal/compute"
)

// CameraFPS is the measured One+ One camera preview rate by resolution
// (Fig. 3(e)): full rate up to DVD-class sizes, dropping to 10 FPS at full
// HD.
var CameraFPS = map[compute.Resolution]float64{
	{W: 320, H: 240}:   30,
	{W: 640, H: 480}:   30,
	{W: 720, H: 480}:   30,
	{W: 1280, H: 720}:  15,
	{W: 1280, H: 960}:  15,
	{W: 1440, H: 1080}: 13,
	{W: 1920, H: 1080}: 10,
}

// PreviewFPS reports the camera preview rate for a resolution, defaulting
// pessimistically to the full-HD rate for unknown sizes.
func PreviewFPS(r compute.Resolution) float64 {
	if fps, ok := CameraFPS[r]; ok {
		return fps
	}
	return 10
}

// Encoding identifies a frame encoding evaluated in Fig. 3(f).
type Encoding struct {
	Name string
	// Ratio is the size reduction vs. raw grayscale for the HD store
	// scene of the Fig. 3(f) experiment.
	Ratio float64
	// Lossy marks encodings that discard information (affects matching
	// accuracy at aggressive settings).
	Lossy bool
}

// The encodings of Fig. 3(f), with ratios calibrated so that JPEG 90 yields
// ≈8 FPS over a 12 Mbps uplink for full-HD grayscale frames, raw cannot
// reach 1 FPS, and quality ordering is preserved.
var (
	JPEG50  = Encoding{Name: "JPEG 50", Ratio: 22, Lossy: true}
	JPEG80  = Encoding{Name: "JPEG 80", Ratio: 14, Lossy: true}
	JPEG90  = Encoding{Name: "JPEG 90", Ratio: 11, Lossy: true}
	JPEG100 = Encoding{Name: "JPEG 100", Ratio: 4, Lossy: true}
	PNG     = Encoding{Name: "PNG", Ratio: 2.2, Lossy: false}
	RawGray = Encoding{Name: "Raw (Gray)", Ratio: 1, Lossy: false}
)

// Fig3fEncodings lists the encodings in the figure's legend order.
func Fig3fEncodings() []Encoding {
	return []Encoding{JPEG50, JPEG80, JPEG90, JPEG100, PNG, RawGray}
}

// FrameBytes reports the encoded size of a grayscale frame at the given
// resolution (raw = 1 byte per pixel).
func (e Encoding) FrameBytes(r compute.Resolution) int {
	return int(float64(r.Pixels()) / e.Ratio)
}

// UploadFPS reports the frame rate sustainable over an uplink of the given
// capacity, ignoring protocol overhead as the paper's calculation does.
func (e Encoding) UploadFPS(r compute.Resolution, uplinkBps float64) float64 {
	bitsPerFrame := float64(e.FrameBytes(r) * 8)
	if bitsPerFrame <= 0 {
		return 0
	}
	return uplinkBps / bitsPerFrame
}

// AppCompression is the §7.3 measurement on the One+ One for JPEG 90 over
// the application resolutions: per-frame encode time and achieved ratio
// (close-up object scenes compress less than the HD store scene).
type AppCompression struct {
	Resolution compute.Resolution
	EncodeMS   float64
	Ratio      float64
}

// AppCompressionTable reproduces the paper's measured values: 53/38/23 ms
// and 5x/5.8x/4.7x for 1280x720, 960x720 and 720x480.
func AppCompressionTable() []AppCompression {
	return []AppCompression{
		{Resolution: compute.Resolution{W: 1280, H: 720}, EncodeMS: 53, Ratio: 5.0},
		{Resolution: compute.Resolution{W: 960, H: 720}, EncodeMS: 38, Ratio: 5.8},
		{Resolution: compute.Resolution{W: 720, H: 480}, EncodeMS: 23, Ratio: 4.7},
	}
}

// AppFrameBytes reports the compressed JPEG-90 frame size the AR front-end
// uploads at an application resolution, using the §7.3 measured ratios
// (falling back to the generic JPEG90 ratio for other sizes).
func AppFrameBytes(r compute.Resolution) int {
	for _, c := range AppCompressionTable() {
		if c.Resolution == r {
			return int(float64(r.Pixels()) / c.Ratio)
		}
	}
	return JPEG90.FrameBytes(r)
}

// String formats the encoding name.
func (e Encoding) String() string { return e.Name }

// FormatRate renders a bit rate in Mbps for experiment tables.
func FormatRate(bps float64) string { return fmt.Sprintf("%.1f Mbps", bps/1e6) }
