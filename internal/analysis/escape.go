package analysis

import (
	"go/ast"
	"go/token"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// HotpathEscapeRule is the compiler-verified side of the §3f memory
// discipline. The syntactic hotalloc rule catches the allocation idioms a
// human can see (fmt, make/new, closures, string concat); this rule asks
// the compiler what actually allocates: it runs
//
//	go build -gcflags='<module>/...=-m -m' ./...
//
// over the module and maps every "escapes to heap" / "moved to heap"
// diagnostic onto the set of //acacia:hotpath-annotated functions. That
// catches what syntax cannot: interface boxing at call sites, closures the
// compiler fails to stack-allocate, variables moved to the heap by pointer
// escape, and composite literals that outlive their frame.
//
// Escape diagnostics are position-exact even under inlining (inlined
// bodies keep their source positions), so findings land on the allocating
// line, where they are fixed or suppressed with
// //acacia:allow hotpath-escape <reason> — the sanctioned reasons being
// pool-miss allocations on the refill path and handle-bearing APIs whose
// contract documents the allocation.
//
// The diagnostic text differs slightly across compiler versions (Go 1.22
// prints `x escapes to heap`, 1.24 may add a trailing colon before the
// -m -m explanation block); the parser accepts both, and CI runs the gate
// on both toolchains (make vet-escape).
func HotpathEscapeRule() *Rule {
	return &Rule{
		Name:       "hotpath-escape",
		Doc:        "//acacia:hotpath functions must be allocation-free per the compiler's escape analysis (go build -gcflags=-m)",
		RunProgram: runHotpathEscape,
	}
}

// hotRange is one annotated function's extent in a source file.
type hotRange struct {
	file string // absolute path
	start,
	end int // line range, inclusive
	name string
}

// collectHotRanges gathers the //acacia:hotpath functions from the
// analyzed packages. When buildable is true, only functions the compiler
// will actually see are kept (testdata fixtures and _test.go files are not
// part of `go build ./...`).
func collectHotRanges(prog *Program, buildable bool) []hotRange {
	var ranges []hotRange
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			pos := prog.Fset.Position(file.Pos())
			if buildable && (strings.Contains(pos.Filename, sep+"testdata"+sep) || strings.HasSuffix(pos.Filename, "_test.go")) {
				continue
			}
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !isHotPath(fd.Doc) {
					continue
				}
				start := prog.Fset.Position(fd.Pos())
				end := prog.Fset.Position(fd.End())
				name := fd.Name.Name
				if fd.Recv != nil && len(fd.Recv.List) == 1 {
					name = "(" + exprString(fd.Recv.List[0].Type) + ")." + name
				}
				ranges = append(ranges, hotRange{file: start.Filename, start: start.Line, end: end.Line, name: name})
			}
		}
	}
	sort.Slice(ranges, func(i, j int) bool {
		if ranges[i].file != ranges[j].file {
			return ranges[i].file < ranges[j].file
		}
		return ranges[i].start < ranges[j].start
	})
	return ranges
}

var sep = string(filepath.Separator)

// escapeLine matches one compiler diagnostic: path:line:col: message. The
// -m -m explanation blocks are indented and header lines start with '#',
// so anchoring at column zero skips both.
var escapeLine = regexp.MustCompile(`^([^\s#][^:]*\.go):(\d+):(\d+): (.+?):?$`)

// isEscapeMessage reports whether a compiler message describes a heap
// allocation (as opposed to inlining or leak commentary).
func isEscapeMessage(msg string) bool {
	return strings.HasSuffix(msg, "escapes to heap") || strings.HasPrefix(msg, "moved to heap:")
}

func runHotpathEscape(p *ProgramPass) {
	prog := p.Prog

	var output []byte
	var ranges []hotRange
	if prog.EscapeOutput != nil {
		// Test seam: canned compiler output mapped over every annotated
		// function, fixtures included.
		ranges = collectHotRanges(prog, false)
		out, err := prog.EscapeOutput()
		if err != nil {
			p.ReportAt(token.Position{Filename: "hotpath-escape"}, "escape output unavailable: %v", err)
			return
		}
		output = out
	} else {
		ranges = collectHotRanges(prog, true)
		if len(ranges) == 0 || prog.ModuleRoot == "" || prog.ModulePath == "" {
			return // nothing annotated in buildable code (fixture-only loads)
		}
		cmd := exec.Command("go", "build", "-gcflags", prog.ModulePath+"/...=-m -m", "./...")
		cmd.Dir = prog.ModuleRoot
		out, err := cmd.CombinedOutput()
		if err != nil {
			// A failing build would hide findings; surface it loudly rather
			// than passing silently.
			msg := strings.TrimSpace(string(out))
			if len(msg) > 400 {
				msg = msg[:400] + " ..."
			}
			p.ReportAt(token.Position{Filename: filepath.Join(prog.ModuleRoot, "go.mod")},
				"go build -gcflags=-m failed; escape gate cannot run: %v: %s", err, strings.ReplaceAll(msg, "\n", " / "))
			return
		}
		output = out
	}

	// Index ranges per file for the position lookup.
	byFile := map[string][]hotRange{}
	for _, r := range ranges {
		byFile[r.file] = append(byFile[r.file], r)
	}

	seen := map[string]bool{}
	for _, line := range strings.Split(string(output), "\n") {
		m := escapeLine.FindStringSubmatch(line)
		if m == nil || !isEscapeMessage(m[4]) {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(prog.ModuleRoot, filepath.FromSlash(file))
		}
		lineNo, _ := strconv.Atoi(m[2])
		colNo, _ := strconv.Atoi(m[3])
		var hit *hotRange
		for i := range byFile[file] {
			r := &byFile[file][i]
			if lineNo >= r.start && lineNo <= r.end {
				hit = r
				break
			}
		}
		if hit == nil {
			continue
		}
		id := file + ":" + m[2] + ":" + m[3] + ":" + m[4]
		if seen[id] {
			continue
		}
		seen[id] = true
		p.ReportAt(token.Position{Filename: file, Line: lineNo, Column: colNo},
			"%s inside //acacia:hotpath function %s; hot paths must not allocate — pool it, pre-bind it, or move it to a cold helper",
			m[4], hit.name)
	}
}
