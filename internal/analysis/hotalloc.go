package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAllocRule enforces the memory-discipline contract from DESIGN.md §3f:
// a function annotated with a //acacia:hotpath doc directive runs per
// packet, per event or per control message, and must not allocate on the
// steady-state path. The rule flags the allocating patterns that crept into
// hot paths before the discipline existed:
//
//   - fmt.* calls (formatting always allocates; move it to a cold helper,
//     as the sim package's badDelay/badTime panics do),
//   - the make and new builtins (draw from an engine-owned pool or reuse a
//     caller-provided scratch buffer instead),
//   - non-constant string concatenation (intern the result, as the ctl
//     endpoint's link-name table does),
//   - function literals (a closure that escapes allocates; pre-bind a
//     method value once at construction time, as Node.cpuDoneF does).
//
// The annotation is opt-in and the rule runs wherever it appears, so the
// usual internal/-only package gating does not apply. append is
// deliberately not flagged: appending to a reused pool or scratch slice is
// amortized-free and is exactly the idiom the contract prescribes.
func HotAllocRule() *Rule {
	return &Rule{
		Name: "hotalloc",
		Doc:  "//acacia:hotpath functions must not allocate (fmt, make/new, string concat, closures)",
		Run:  runHotAlloc,
	}
}

func runHotAlloc(p *Pass) {
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHotPath(fn.Doc) {
				continue
			}
			checkHotBody(p, fn.Body)
		}
	}
}

// isHotPath reports whether the doc comment carries the //acacia:hotpath
// directive on a line of its own.
func isHotPath(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == "//acacia:hotpath" {
			return true
		}
	}
	return false
}

func checkHotBody(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			p.Reportf(n.Pos(), "function literal in a hotpath function allocates its closure; pre-bind a method value at construction time")
			return false
		case *ast.CallExpr:
			if name, ok := builtinName(p.Info, n.Fun); ok && (name == "make" || name == "new") {
				p.Reportf(n.Pos(), "%s allocates in a hotpath function; draw from an engine-owned pool or reuse a scratch buffer", name)
				return true
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if fn, ok := p.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
					p.Reportf(n.Pos(), "fmt.%s allocates in a hotpath function; move formatting to a cold helper", fn.Name())
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isNonConstString(p.Info, n) {
				p.Reportf(n.Pos(), "string concatenation allocates in a hotpath function; intern the result or build it at construction time")
				// One finding per concatenation tree: a+b+c is one defect,
				// not two.
				return false
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isNonConstString(p.Info, n.Lhs[0]) {
				p.Reportf(n.Pos(), "string concatenation allocates in a hotpath function; intern the result or build it at construction time")
			}
		}
		return true
	})
}

// builtinName resolves fun to a builtin function name, if it is one.
func builtinName(info *types.Info, fun ast.Expr) (string, bool) {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok {
		return "", false
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name(), true
	}
	return "", false
}

// isNonConstString reports whether e has string type and is not a
// compile-time constant (constant-folded concatenation never allocates).
func isNonConstString(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value != nil || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
