package analysis

import (
	"go/ast"
	"go/types"
)

// randSourcePkgs are the import paths the rule polices.
var randSourcePkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// randConstructors are the math/rand functions that do not draw from the
// process-global source. rand.New is also here but gets its own check:
// its Source argument must be constructed in place so the seed's
// provenance is visible at the call site.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// GlobalRandRule enforces the seeding contract: randomness must derive
// from sim/trial seeds (sim.NewRNG, RNG.Fork), never from math/rand's
// process-global source — global draws depend on whatever else ran first,
// which breaks same-seed reproducibility and the parallel==sequential
// guarantee.
func GlobalRandRule() *Rule {
	return &Rule{
		Name: "globalrand",
		Doc:  "no global math/rand draws or opaquely-seeded rand.New; derive RNGs from sim/trial seeds",
		Run:  runGlobalRand,
	}
}

func runGlobalRand(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(p.Info, n)
				if fn == nil || fn.Pkg() == nil || !randSourcePkgs[fn.Pkg().Path()] || fn.Name() != "New" {
					return true
				}
				if len(n.Args) >= 1 && isRandSourceCall(p, n.Args[0]) {
					return true
				}
				p.Reportf(n.Pos(),
					"rand.New without a visible seed; construct the source in place from a sim/trial seed (prefer sim.NewRNG / RNG.Fork)")
			case *ast.SelectorExpr:
				fn, ok := p.Info.Uses[n.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil || !randSourcePkgs[fn.Pkg().Path()] || randConstructors[fn.Name()] {
					return true
				}
				// Methods on *rand.Rand values are fine — the rule is
				// about the package-level (global-source) functions.
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					return true
				}
				p.Reportf(n.Pos(),
					"math/rand.%s draws from process-global state; derive randomness from sim/trial seeds (sim.NewRNG, RNG.Fork)",
					fn.Name())
			}
			return true
		})
	}
}

// isRandSourceCall reports whether expr constructs a math/rand source in
// place (rand.NewSource / NewPCG / NewChaCha8), making the seed visible.
func isRandSourceCall(p *Pass, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(p.Info, call)
	return fn != nil && fn.Pkg() != nil && randSourcePkgs[fn.Pkg().Path()] && fn.Name() != "New" && randConstructors[fn.Name()]
}
