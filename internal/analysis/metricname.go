package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// MetricNameRule enforces the telemetry naming grammar from DESIGN.md §3b:
// registered names are layer[/sub]/name paths whose segments are lowercase
// [a-z0-9-], joined by "/". The rule checks every compile-time-constant
// string handed to telemetry registration and emission (Registry/Scope
// Counter, Gauge, Histogram, Scope, and the scope/name arguments of Emit);
// dynamically built names are a runtime concern the snapshot tests cover.
func MetricNameRule() *Rule {
	return &Rule{
		Name: "metricname",
		Doc:  "telemetry names must match the layer[/sub]/name lowercase [a-z0-9-] grammar",
		Run:  runMetricName,
	}
}

func runMetricName(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/telemetry") || !isMethod(fn) {
				return true
			}
			var nameArgs []int
			switch fn.Name() {
			case "Counter", "Gauge", "Histogram", "Scope":
				nameArgs = []int{0}
			case "Emit":
				// Registry.Emit(scope, name, detail) — scope and name are
				// grammar-bound, detail is free-form annotation.
				// Scope.Emit(name, detail) — name only.
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Params().Len() == 3 {
					nameArgs = []int{0, 1}
				} else {
					nameArgs = []int{0}
				}
			default:
				return true
			}
			for _, i := range nameArgs {
				if i >= len(call.Args) {
					continue
				}
				name, ok := stringConstant(p.Info, call.Args[i])
				if !ok {
					continue
				}
				if !validMetricName(name) {
					p.Reportf(call.Args[i].Pos(),
						"telemetry name %q breaks the layer[/sub]/name grammar (lowercase [a-z0-9-] segments joined by \"/\")",
						name)
				}
			}
			return true
		})
	}
}

// validMetricName reports whether every "/"-separated segment of name is
// a nonempty run of lowercase [a-z0-9-].
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for _, seg := range strings.Split(name, "/") {
		if seg == "" {
			return false
		}
		for i := 0; i < len(seg); i++ {
			c := seg[i]
			if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '-' {
				continue
			}
			return false
		}
	}
	return true
}
