package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// PartitionConfineRule turns the cluster's runtime confinement panics
// (DESIGN.md §3g: SendTo/CrossSchedule window checks, single-writer
// outboxes) into compile-time findings. In partitioned runs every handler
// executes on one partition's engine, and the only sanctioned ways to
// affect another partition are Engine.SendTo, Engine.CrossSchedule and the
// netsim links built on them. The rule therefore inspects every function
// reachable from an event handler (per the whole-program call graph) and
// flags:
//
//   - cluster control from handler context: calls to sim.Cluster methods
//     (Engines, AddPartition, RunUntil, RunFor, Run, SetRunner,
//     SetLookahead) or NewCluster — a handler enumerating or advancing
//     partitions is either re-entrant or about to touch foreign state;
//   - local-effect engine calls (Schedule/After/Now/RNG/Metrics/...) on an
//     engine reached through Cluster.Engines() — that is, an arbitrary
//     partition's engine rather than the handler's own;
//   - one handler body making local-effect calls on engines rooted at two
//     different access paths: scheduling on both m.eng and peer.eng in one
//     handler is exactly the cross-partition write the outbox APIs exist
//     to mediate.
//
// The check is an over-approximation: two roots may alias the same engine
// at runtime (same-partition collaborators), in which case the site is
// suppressed with //acacia:allow partition-confine <why both engines are
// one partition>. internal/sim (the engine itself) and internal/exec (the
// gang that drives windows) are exempt.
func PartitionConfineRule() *Rule {
	return &Rule{
		Name:       "partition-confine",
		Doc:        "handler-reachable code must not touch other partitions' engines outside SendTo/CrossSchedule",
		RunProgram: runPartitionConfine,
	}
}

// localEffectMethods are the sim.Engine methods whose effect lands on the
// receiver engine itself: scheduling, clock/RNG/metrics reads, and run
// control. SendTo and CrossSchedule are deliberately absent — they are the
// sanctioned cross-partition APIs.
var localEffectMethods = map[string]bool{
	"Schedule":    true,
	"ScheduleAt":  true,
	"ScheduleArg": true,
	"After":       true,
	"AfterArg":    true,
	"Now":         true,
	"RNG":         true,
	"Metrics":     true,
	"Run":         true,
	"RunUntil":    true,
	"RunFor":      true,
	"Stop":        true,
}

// clusterControlFuncs are the sim.Cluster entry points (plus NewCluster)
// that make sense only from the driver, never from inside a handler.
var clusterControlFuncs = map[string]bool{
	"Engines":      true,
	"AddPartition": true,
	"RunUntil":     true,
	"RunFor":       true,
	"Run":          true,
	"SetRunner":    true,
	"SetLookahead": true,
	"Processed":    true,
}

func runPartitionConfine(p *ProgramPass) {
	graph := p.Prog.CallGraph()
	order, _ := graph.HandlerReachable()

	// Only the handler-reachable bodies themselves are handler context. The
	// enclosing declaration is often a driver that merely defines handler
	// literals inline — its own statements (building the cluster, ranging
	// over Engines() to merge metrics after the run) are exactly what
	// drivers are for and must not be judged by handler rules. Aliases are
	// still resolved over the whole enclosing declaration, because handler
	// closures capture locals like `ueEng := ueN.Engine()` bound outside.
	var nodes []*CGNode
	for _, n := range order {
		if n.Body == nil || n.Pkg == nil {
			continue
		}
		base := strings.TrimSuffix(n.Pkg.Path, "_test")
		if isSimPkg(base) || isExecPkg(base) {
			continue
		}
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Body.Pos() < nodes[j].Body.Pos() })
	// Drop nodes nested inside an already-kept body: a literal defined in a
	// handler function is scanned along with its parent.
	var kept []*CGNode
	for _, n := range nodes {
		nested := false
		for _, k := range kept {
			if k.Pkg == n.Pkg && n.Body.Pos() >= k.Body.Pos() && n.Body.End() <= k.Body.End() {
				nested = true
				break
			}
		}
		if !nested {
			kept = append(kept, n)
		}
	}

	for _, n := range kept {
		checkConfinement(p, n)
	}
}

// baseKey renders the rooted access path an engine expression is reached
// through — "tb@1234.eng", "cluster@88.Engines()[i]" — with field selection
// kept in the key, so a.eng and a.peer count as different engines even
// though both chains root at a. Local aliases are resolved at record time:
// after `eng := a.eng`, uses of eng and of a.eng compare equal. The bool
// reports whether the chain passes through Cluster.Engines() (an arbitrary
// partition's engine). An empty key means the expression is not a trackable
// path (e.g. an engine returned by an arbitrary call).
func baseKey(info *types.Info, aliases map[types.Object]string, derived map[types.Object]bool, expr ast.Expr) (string, bool) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if obj == nil {
			return "", false
		}
		if k, ok := aliases[obj]; ok {
			return k, derived[obj]
		}
		return fmt.Sprintf("%s@%d", obj.Name(), obj.Pos()), derived[obj]
	case *ast.SelectorExpr:
		k, via := baseKey(info, aliases, derived, e.X)
		if k == "" {
			return "", via
		}
		return k + "." + e.Sel.Name, via
	case *ast.IndexExpr:
		// Distinct indices collapse to one key: engines[0] and engines[1]
		// compare equal. That direction of imprecision suppresses rather
		// than invents findings, which multi-base can afford.
		k, via := baseKey(info, aliases, derived, e.X)
		if k == "" {
			return "", via
		}
		return k + "[i]", via
	case *ast.StarExpr:
		return baseKey(info, aliases, derived, e.X)
	case *ast.CallExpr:
		via := false
		if fn := calleeFunc(info, e); fn != nil && isClusterMethod(fn) && fn.Name() == "Engines" {
			via = true
		}
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			k, v2 := baseKey(info, aliases, derived, sel.X)
			if k == "" {
				return "", via || v2
			}
			return k + "." + sel.Sel.Name + "()", via || v2
		}
		return "", via
	default:
		return "", false
	}
}

// isEngineMethod reports whether fn is a method on sim.Engine.
func isEngineMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || fn.Pkg() == nil || !isSimPkg(fn.Pkg().Path()) {
		return false
	}
	return recvString(sig.Recv().Type()) == "(*Engine)"
}

// isClusterMethod reports whether fn is a method on sim.Cluster.
func isClusterMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || fn.Pkg() == nil || !isSimPkg(fn.Pkg().Path()) {
		return false
	}
	return recvString(sig.Recv().Type()) == "(*Cluster)"
}

// isEngineExpr reports whether expr has type *sim.Engine.
func isEngineExpr(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	ptr, ok := tv.Type.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Engine" && named.Obj().Pkg() != nil && isSimPkg(named.Obj().Pkg().Path())
}

// checkConfinement inspects one handler-reachable body for
// partition-confinement violations.
func checkConfinement(p *ProgramPass, node *CGNode) {
	pkg := node.Pkg
	info := pkg.Info
	var aliasScope ast.Node = node.Decl
	if aliasScope == nil {
		aliasScope = node.Body
	}

	// Pass 1: local engine aliases (eng := x.eng, also range vars over
	// engine slices), so base comparison survives the common
	// pull-the-field-into-a-local idiom. Runs over the whole enclosing
	// declaration — captures bind outside the handler body.
	aliases := map[types.Object]string{}
	derived := map[types.Object]bool{}
	ast.Inspect(aliasScope, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i := range n.Lhs {
				if !isEngineExpr(info, n.Rhs[i]) {
					continue
				}
				lhs := objectOf(info, n.Lhs[i])
				if lhs == nil {
					continue
				}
				k, viaEngines := baseKey(info, aliases, derived, n.Rhs[i])
				if k != "" {
					aliases[lhs] = k
				}
				if viaEngines {
					derived[lhs] = true
				}
			}
		case *ast.RangeStmt:
			// for _, e := range cluster.Engines() { ... }
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
				if fn := calleeFunc(info, call); fn != nil && isClusterMethod(fn) && fn.Name() == "Engines" {
					if n.Value != nil {
						if obj := objectOf(info, n.Value); obj != nil {
							derived[obj] = true
						}
					}
				}
			}
		}
		return true
	})

	// Pass 2: local-effect and cluster-control call sites.
	type engineUse struct {
		base  string
		chain string
		pos   ast.Node
		name  string
	}
	var uses []engineUse
	ast.Inspect(node.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		if isClusterMethod(fn) && clusterControlFuncs[fn.Name()] {
			p.Reportf(call.Pos(),
				"sim.Cluster.%s called from event-handler context; partition control belongs to the driver, handlers interact through SendTo/CrossSchedule",
				fn.Name())
			return true
		}
		if fn.Pkg() != nil && isSimPkg(fn.Pkg().Path()) && fn.Name() == "NewCluster" {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
				p.Reportf(call.Pos(), "sim.NewCluster called from event-handler context; clusters are built by the driver before the run")
				return true
			}
		}
		if !isEngineMethod(fn) || !localEffectMethods[fn.Name()] {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, viaEngines := baseKey(info, aliases, derived, sel.X)
		if viaEngines {
			p.Reportf(call.Pos(),
				"Engine.%s on an engine obtained from Cluster.Engines() in event-handler context; another partition's engine may only be reached through SendTo/CrossSchedule",
				fn.Name())
			return true
		}
		if base == "" {
			return true
		}
		uses = append(uses, engineUse{base: base, chain: exprString(sel.X), pos: call, name: fn.Name()})
		return true
	})

	if len(uses) < 2 {
		return
	}
	first := uses[0]
	for _, u := range uses[1:] {
		if u.base == first.base {
			continue
		}
		p.Reportf(u.pos.Pos(),
			"Engine.%s on %s, but this handler also drives engine %s; one handler runs on one partition — cross-partition work must go through SendTo/CrossSchedule (or suppress with a reason if both are one engine)",
			u.name, u.chain, first.chain)
	}
}

// exprString renders a (small) receiver chain for diagnostics.
func exprString(expr ast.Expr) string {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.CallExpr:
		return exprString(e.Fun) + "()"
	default:
		return "<expr>"
	}
}
