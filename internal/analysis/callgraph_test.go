package analysis

import (
	"strings"
	"testing"
)

// edgeTo reports whether node n has an edge to key.
func edgeTo(n *CGNode, key string) bool {
	if n == nil {
		return false
	}
	for _, e := range n.Edges() {
		if e.Key == key {
			return true
		}
	}
	return false
}

// TestCallGraphStructure asserts on the graph the builder produces for the
// callgraph fixture: direct edges, interface-dispatch over-approximation,
// method-value and struct-field function flows, handler-root marking, and
// path rendering. The fixture has no want comments — the contract here is
// the graph shape, not rule findings.
func TestCallGraphStructure(t *testing.T) {
	_, pkgs := loadGolden(t, "callgraph", "acacia/x/callgraph")
	graph := NewProgram(pkgs).CallGraph()

	const pkg = "acacia/x/callgraph"
	dispatch := graph.Nodes[pkg+".dispatch"]
	if dispatch == nil {
		t.Fatal("no node for dispatch")
	}

	// Interface dispatch over-approximates: d.Do() fans out to every
	// module-declared zero-parameter Do, on either receiver form.
	for _, callee := range []string{pkg + ".(A).Do", pkg + ".(*B).Do"} {
		if !edgeTo(dispatch, callee) {
			t.Errorf("dispatch has no edge to %s; interface dispatch not over-approximated", callee)
		}
	}

	// A method value bound to a local and invoked resolves through the flow
	// map back to the method.
	if !edgeTo(graph.Nodes[pkg+".methodValue"], pkg+".(*T).helper") {
		t.Error("methodValue: f := t.helper; f() did not resolve to (*T).helper")
	}

	// A function stored into a struct field at construction (in fieldFlow)
	// and invoked through the field elsewhere (in runHook) resolves via the
	// field's flow key.
	if !edgeTo(graph.Nodes[pkg+".runHook"], pkg+".leaf") {
		t.Error("runHook: t.hook() did not resolve to leaf stored in fieldFlow")
	}

	// The literal passed to Engine.Schedule in start is the fixture's only
	// handler root.
	var roots []*CGNode
	for _, k := range graph.RootKeys {
		n := graph.Nodes[k]
		if n != nil && n.Pkg != nil && n.Pkg.Path == pkg {
			roots = append(roots, n)
		}
	}
	if len(roots) != 1 {
		t.Fatalf("fixture has %d handler roots, want exactly 1 (the Schedule literal)", len(roots))
	}
	root := roots[0]
	if !strings.HasPrefix(root.Key, "lit:") || !root.Root {
		t.Errorf("root is %q (Root=%v), want a lit: node with Root set", root.Key, root.Root)
	}
	for _, callee := range []string{pkg + ".dispatch", pkg + ".methodValue", pkg + ".runHook"} {
		if !edgeTo(root, callee) {
			t.Errorf("handler literal has no edge to %s", callee)
		}
	}

	// Reachability: everything the handler calls, transitively — including
	// (*B).Do, which only an impossible dispatch branch reaches; the
	// over-approximation keeps it in. unreached is never scheduled and must
	// stay out.
	order, parent := graph.HandlerReachable()
	reached := map[string]bool{}
	for _, n := range order {
		reached[n.Key] = true
	}
	for _, k := range []string{
		root.Key,
		pkg + ".dispatch", pkg + ".(A).Do", pkg + ".(*B).Do",
		pkg + ".methodValue", pkg + ".(*T).helper",
		pkg + ".runHook", pkg + ".leaf",
	} {
		if !reached[k] {
			t.Errorf("%s not handler-reachable, want reachable", k)
		}
	}
	if reached[pkg+".unreached"] {
		t.Error("unreached is handler-reachable, want unreachable")
	}

	// The parent chain renders a root-to-leaf path for diagnostics.
	path := graph.PathTo(parent, pkg+".leaf")
	if !strings.Contains(path, " -> ") || !strings.HasSuffix(path, "leaf") {
		t.Errorf("PathTo(leaf) = %q, want a chain ending in leaf", path)
	}
}
