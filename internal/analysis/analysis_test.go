package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// wantPattern matches golden expectations in testdata comments:
//
//	// want "regexp"        — a diagnostic on this line matching regexp
//	// want:-2 "regexp"     — same, but two lines up (for lines whose
//	//                        comment slot is taken by a directive)
var wantPattern = regexp.MustCompile(`want(?::([+-][0-9]+))?\s+"([^"]+)"`)

type expectation struct {
	file string // base name
	line int
	re   *regexp.Regexp
	used bool
}

// readExpectations scans every .go file in dir for want comments.
func readExpectations(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var exps []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantPattern.FindAllStringSubmatch(line, -1) {
				offset := 0
				if m[1] != "" {
					fmt.Sscanf(m[1], "%d", &offset)
				}
				re, err := regexp.Compile(m[2])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", e.Name(), i+1, m[2], err)
				}
				exps = append(exps, &expectation{file: e.Name(), line: i + 1 + offset, re: re})
			}
		}
	}
	return exps
}

// checkGolden loads one testdata package under the given import path, runs
// every rule, and compares the surviving diagnostics against the want
// comments in its sources.
func checkGolden(t *testing.T, dirName, importPath string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", dirName)
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadDir(dir, importPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		for _, e := range pkg.Errs {
			t.Errorf("type error in %s: %v", pkg.Path, e)
		}
	}
	if t.Failed() {
		t.FailNow()
	}
	diags := Run(pkgs, AllRules())
	exps := readExpectations(t, dir)

	for _, d := range diags {
		base := filepath.Base(d.File)
		matched := false
		for _, e := range exps {
			if !e.used && e.file == base && e.line == d.Line && e.re.MatchString(d.Message) {
				e.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, e := range exps {
		if !e.used {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.re)
		}
	}
}

func TestWallClockGolden(t *testing.T)  { checkGolden(t, "wallclock", "acacia/internal/wallclock") }
func TestGoroutineGolden(t *testing.T)  { checkGolden(t, "goroutine", "acacia/internal/goroutine") }
func TestGlobalRandGolden(t *testing.T) { checkGolden(t, "globalrand", "acacia/internal/globalrand") }
func TestMapRangeGolden(t *testing.T)   { checkGolden(t, "maprange", "acacia/internal/maprange") }
func TestMetricNameGolden(t *testing.T) { checkGolden(t, "metricname", "acacia/internal/metricname") }
func TestHotAllocGolden(t *testing.T)   { checkGolden(t, "hotalloc", "acacia/internal/hotalloc") }
func TestDirectivesGolden(t *testing.T) { checkGolden(t, "directives", "acacia/internal/directives") }

// TestExecExempt checks the internal/exec carve-out: real goroutines and
// wall-clock waits are legal in the worker pool package.
func TestExecExempt(t *testing.T) { checkGolden(t, "exempt", "acacia/internal/exec") }

// TestNonInternalExempt checks wallclock only governs internal/ code.
func TestNonInternalExempt(t *testing.T) { checkGolden(t, "nonsim", "acacia/cmd/nonsim") }

// TestRepoIsClean is the contract the other tests exist to protect: the
// repo's own code must produce zero diagnostics under every rule.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repo from source")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load(l.ModuleRoot + "/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; pattern expansion is broken", len(pkgs))
	}
	for _, pkg := range pkgs {
		for _, e := range pkg.Errs {
			t.Errorf("type error in %s: %v", pkg.Path, e)
		}
	}
	for _, d := range Run(pkgs, AllRules()) {
		t.Errorf("repo not vet-clean: %s", d)
	}
}

func TestSelectRules(t *testing.T) {
	all, err := SelectRules("")
	if err != nil || len(all) != 6 {
		t.Fatalf("empty selection = %d rules, err %v; want all 6", len(all), err)
	}
	if !sort.SliceIsSorted(all, func(i, j int) bool { return all[i].Name < all[j].Name }) {
		t.Error("AllRules not in name order")
	}
	picked, err := SelectRules("wallclock, maprange, wallclock")
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(RuleNames(picked), ","); got != "wallclock,maprange" {
		t.Errorf("selection = %s, want wallclock,maprange (order kept, dups dropped)", got)
	}
	if _, err := SelectRules("nosuchrule"); err == nil {
		t.Error("unknown rule accepted")
	}
	if _, err := SelectRules(" , "); err == nil {
		t.Error("blank selection accepted")
	}
}

func TestValidMetricName(t *testing.T) {
	valid := []string{"epc", "epc/s1ap/latency-ms", "a1/b-2"}
	invalid := []string{"", "/", "epc/", "/epc", "Epc", "epc/latency_ms", "epc//x", "epc/läge"}
	for _, n := range valid {
		if !validMetricName(n) {
			t.Errorf("validMetricName(%q) = false, want true", n)
		}
	}
	for _, n := range invalid {
		if validMetricName(n) {
			t.Errorf("validMetricName(%q) = true, want false", n)
		}
	}
}
