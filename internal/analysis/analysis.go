// Package analysis is the repo's static-analysis framework: a small,
// stdlib-only (go/parser, go/ast, go/types) analogue of
// golang.org/x/tools/go/analysis that machine-checks the determinism,
// telemetry and transport contracts the simulation depends on.
//
// The contracts themselves live in DESIGN.md §3/§3b/§3c: every §4 table
// must be byte-identical across sequential and parallel runs, which holds
// only if sim code reads the virtual clock (never the wall clock), derives
// randomness from trial seeds (never process-global state), sorts map keys
// before feeding iteration order into output, names metrics by the
// layer[/sub]/name grammar, and routes concurrency through the bounded
// worker pool. Each contract is a Rule; cmd/acacia-vet is the driver.
//
// A finding can be suppressed at the site with a directive comment:
//
//	//acacia:allow <rule> <reason>
//
// placed on the flagged line or the line directly above it. The reason is
// mandatory — an allow without one is itself reported — so every exemption
// documents why the contract does not apply there.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Rule is one statically checked contract. A rule is either per-package
// (Run, invoked once per loaded package) or whole-program (RunProgram,
// invoked once over all packages — the call-graph and escape-gate rules).
type Rule struct {
	// Name identifies the rule in diagnostics, -rules selections and
	// //acacia:allow directives.
	Name string
	// Doc is a one-line description of the contract the rule enforces.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
	// RunProgram inspects the whole program. Exactly one of Run/RunProgram
	// is set.
	RunProgram func(*ProgramPass)
}

// Diagnostic is one finding: a violated contract at a position.
type Diagnostic struct {
	Pos     token.Position `json:"-"`
	File    string         `json:"file"`
	Line    int            `json:"line"`
	Col     int            `json:"col"`
	Rule    string         `json:"rule"`
	Message string         `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Rule, d.Message)
}

// Pass carries one type-checked package through one rule's Run.
type Pass struct {
	Fset *token.FileSet
	// Path is the package's import path. Test variants keep the base
	// package's path; external test packages carry a "_test" suffix.
	Path  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	rule  *Rule
	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     position,
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Rule:    p.rule.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// BasePath is the pass's import path with any external-test "_test"
// suffix removed, so rules can gate on the package's real identity.
func (p *Pass) BasePath() string { return strings.TrimSuffix(p.Path, "_test") }

// AllRules lists every rule the suite ships, in stable name order. The
// slice is freshly allocated; callers may reorder or subset it.
func AllRules() []*Rule {
	rules := []*Rule{
		DetTaintRule(),
		GoroutineRule(),
		GlobalRandRule(),
		HotAllocRule(),
		HotpathEscapeRule(),
		MapRangeRule(),
		MetricNameRule(),
		PartitionConfineRule(),
		WallClockRule(),
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].Name < rules[j].Name })
	return rules
}

// RuleNames reports the names of rules in order.
func RuleNames(rules []*Rule) []string {
	names := make([]string, len(rules))
	for i, r := range rules {
		names[i] = r.Name
	}
	return names
}

// SelectRules resolves a comma-separated -rules list against the full
// suite. An empty selection means every rule.
func SelectRules(selection string) ([]*Rule, error) {
	all := AllRules()
	if strings.TrimSpace(selection) == "" {
		return all, nil
	}
	byName := make(map[string]*Rule, len(all))
	for _, r := range all {
		byName[r.Name] = r
	}
	var picked []*Rule
	seen := map[string]bool{}
	for _, name := range strings.Split(selection, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		r, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (have %s)", name, strings.Join(RuleNames(all), ", "))
		}
		if !seen[name] {
			seen[name] = true
			picked = append(picked, r)
		}
	}
	if len(picked) == 0 {
		return nil, fmt.Errorf("empty rule selection %q", selection)
	}
	return picked, nil
}

// allowPattern matches the suppression directive. The rule name is
// mandatory; everything after it is the reason.
var allowPattern = regexp.MustCompile(`^//acacia:allow\s+(\S+)\s*(.*)$`)

// allowDirective is one parsed //acacia:allow comment.
type allowDirective struct {
	file   string
	line   int
	col    int
	rule   string
	reason string
	used   bool
}

// Run executes the rules over the packages and returns the surviving
// diagnostics sorted by position. Suppressed findings are removed;
// malformed directives (missing reason, unknown rule) and stale ones
// (suppressing nothing) are reported as "directive" findings so a typo —
// or a fix that outlived its exemption — cannot silently disable a check.
func Run(pkgs []*Package, rules []*Rule) []Diagnostic {
	return RunProgram(NewProgram(pkgs), rules)
}

// RunProgram is Run with an explicit Program, the entry point for callers
// that need to pre-configure program state (the escape-gate tests inject
// canned compiler output through Program.EscapeOutput).
func RunProgram(prog *Program, rules []*Rule) []Diagnostic {
	pkgs := prog.Pkgs
	var diags []Diagnostic
	var allows []*allowDirective
	knownRule := map[string]bool{}
	for _, r := range AllRules() {
		knownRule[r.Name] = true
	}
	for _, pkg := range pkgs {
		for _, rule := range rules {
			if rule.Run == nil {
				continue
			}
			pass := &Pass{
				Fset:  pkg.Fset,
				Path:  pkg.Path,
				Files: pkg.Files,
				Pkg:   pkg.Pkg,
				Info:  pkg.Info,
				rule:  rule,
				diags: &diags,
			}
			rule.Run(pass)
		}
		for _, file := range pkg.Files {
			for _, group := range file.Comments {
				for _, c := range group.List {
					m := allowPattern.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					d := &allowDirective{file: pos.Filename, line: pos.Line, col: pos.Column, rule: m[1], reason: strings.TrimSpace(m[2])}
					allows = append(allows, d)
					switch {
					case !knownRule[d.rule]:
						diags = append(diags, Diagnostic{
							Pos: pos, File: pos.Filename, Line: pos.Line, Col: pos.Column,
							Rule:    "directive",
							Message: fmt.Sprintf("//acacia:allow names unknown rule %q", d.rule),
						})
					case d.reason == "":
						diags = append(diags, Diagnostic{
							Pos: pos, File: pos.Filename, Line: pos.Line, Col: pos.Column,
							Rule:    "directive",
							Message: fmt.Sprintf("//acacia:allow %s needs a reason", d.rule),
						})
					}
				}
			}
		}
	}
	for _, rule := range rules {
		if rule.RunProgram == nil {
			continue
		}
		rule.RunProgram(&ProgramPass{Prog: prog, rule: rule, diags: &diags})
	}
	selected := map[string]bool{}
	for _, r := range rules {
		selected[r.Name] = true
	}
	diags = suppress(diags, allows)
	diags = append(diags, unusedAllows(allows, knownRule, selected)...)
	// Total order: (file, line, column, rule, message). The message
	// tie-break matters for -json consumers and golden files — one rule can
	// report twice at one position, and without it the relative order would
	// depend on map-iteration accidents upstream.
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return diags
}

// unusedAllows reports well-formed //acacia:allow directives that
// suppressed nothing in this run — stale exemptions that would otherwise
// quietly accumulate. Only directives for rules that actually ran are
// judged (running `-rules wallclock` must not condemn a maprange allow),
// and hotpath-escape is exempt: its findings vary with the compiler
// version, so an allow used on Go 1.24 may legitimately be idle on 1.22.
func unusedAllows(allows []*allowDirective, knownRule, selected map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, a := range allows {
		if a.used || a.reason == "" || !knownRule[a.rule] || !selected[a.rule] || a.rule == "hotpath-escape" {
			continue
		}
		out = append(out, Diagnostic{
			Pos:     token.Position{Filename: a.file, Line: a.line, Column: a.col},
			File:    a.file,
			Line:    a.line,
			Col:     a.col,
			Rule:    "directive",
			Message: fmt.Sprintf("//acacia:allow %s suppresses nothing; delete the stale directive", a.rule),
		})
	}
	return out
}

// suppress drops findings covered by a well-formed allow directive on the
// same line or the line directly above.
func suppress(diags []Diagnostic, allows []*allowDirective) []Diagnostic {
	if len(allows) == 0 {
		return diags
	}
	type key struct {
		file string
		line int
		rule string
	}
	index := map[key]*allowDirective{}
	for _, a := range allows {
		if a.reason == "" {
			continue // malformed: reported, never honoured
		}
		index[key{a.file, a.line, a.rule}] = a
	}
	kept := diags[:0]
	for _, d := range diags {
		if a, ok := index[key{d.File, d.Line, d.Rule}]; ok {
			a.used = true
			continue
		}
		if a, ok := index[key{d.File, d.Line - 1, d.Rule}]; ok {
			a.used = true
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

// funcFor returns the innermost function declaration or literal enclosing
// pos in file, along with its body. Rules use it to scan statements that
// follow a flagged construct (e.g. a sort call after a key-collecting map
// range).
func funcFor(file *ast.File, pos token.Pos) *ast.BlockStmt {
	var body *ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, ok := n.(*ast.File); !ok && (pos < n.Pos() || pos >= n.End()) {
			return false // prune subtrees that cannot contain pos
		}
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		}
		return true
	})
	return body
}
