package analysis

import (
	"go/ast"
	"go/types"
)

// wallClockFuncs are the time-package functions that observe or wait on
// the wall clock. Duration arithmetic and formatting stay legal: sim code
// measures in time.Duration, it just never asks the host what time it is.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// WallClockRule enforces the virtual-time contract: simulation code under
// internal/ must not read or wait on the wall clock — same-seed runs stay
// byte-identical only because every timestamp comes from sim.Engine's
// virtual clock. internal/exec is exempt: the worker pool runs on real
// goroutines and may legitimately block in real time.
func WallClockRule() *Rule {
	return &Rule{
		Name: "wallclock",
		Doc:  "internal/ sim code must use the virtual clock, not time.Now/Sleep/After/...",
		Run:  runWallClock,
	}
}

func runWallClock(p *Pass) {
	path := p.BasePath()
	if !isInternalPkg(path) || isExecPkg(path) {
		return
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !wallClockFuncs[fn.Name()] {
				return true
			}
			p.Reportf(sel.Pos(),
				"time.%s is wall-clock; sim code runs in virtual time (use sim.Engine Now/Schedule or sim.NewTicker)",
				fn.Name())
			return true
		})
	}
}
