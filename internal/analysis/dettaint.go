package analysis

import (
	"go/token"
	"sort"
	"strings"
)

// DetTaintRule is the interprocedural strengthening of wallclock and
// globalrand: instead of flagging direct calls per site, it walks the
// whole-program call graph from every sim.Engine event handler and reports
// any call chain that reaches a nondeterminism source — time.Now and
// friends (wall clock), math/rand's process-global draw functions, or the
// process environment (os.Getenv). A helper that wraps time.Now in a
// package the per-site rules don't govern (cmd/, examples/, the root
// package) launders nondeterminism into handler context invisibly to the
// syntactic rules; the call graph makes the laundering visible.
//
// The graph over-approximates (interface dispatch by name/arity,
// flow-insensitive function values), so a finding names the path it
// believes exists; a path that cannot happen at runtime is suppressed at
// the sink call site with //acacia:allow dettaint <why the path is dead>.
func DetTaintRule() *Rule {
	return &Rule{
		Name:       "dettaint",
		Doc:        "no call chain from a sim event handler may reach time.Now, global math/rand, or os.Getenv",
		RunProgram: runDetTaint,
	}
}

// sinkDescription classifies a call-graph node key as a nondeterminism
// sink. Keys are "pkgpath.Name" for package-level functions.
func sinkDescription(key string) (string, bool) {
	dot := strings.LastIndex(key, ".")
	if dot < 0 {
		return "", false
	}
	pkg, name := key[:dot], key[dot+1:]
	switch pkg {
	case "time":
		if wallClockFuncs[name] {
			return "time." + name + " reads or waits on the wall clock", true
		}
	case "math/rand", "math/rand/v2":
		// Package-level draws only: methods on *Rand carry a "(...)"
		// receiver segment and never match the package prefix exactly.
		if !randConstructors[name] {
			return pkg + "." + name + " draws from process-global random state", true
		}
	case "os":
		switch name {
		case "Getenv", "LookupEnv", "Environ":
			return "os." + name + " reads the process environment", true
		}
	}
	return "", false
}

func runDetTaint(p *ProgramPass) {
	graph := p.Prog.CallGraph()
	order, parent := graph.HandlerReachable()

	type finding struct {
		pos  token.Pos
		msg  string
		key  string
		from string
	}
	var finds []finding
	seen := map[string]bool{}
	for _, n := range order {
		for _, e := range n.Edges() {
			desc, ok := sinkDescription(e.Key)
			if !ok {
				continue
			}
			id := p.Prog.Fset.Position(e.Pos).String() + "|" + e.Key
			if seen[id] {
				continue
			}
			seen[id] = true
			finds = append(finds, finding{pos: e.Pos, msg: desc, key: e.Key, from: n.Key})
		}
	}
	// Deterministic report order regardless of BFS tie-breaks.
	sort.Slice(finds, func(i, j int) bool {
		if finds[i].pos != finds[j].pos {
			return finds[i].pos < finds[j].pos
		}
		return finds[i].key < finds[j].key
	})
	for _, f := range finds {
		p.Reportf(f.pos,
			"%s but is reachable from a sim event handler (path: %s); handlers run in virtual time — use the engine clock and trial-seeded RNGs",
			f.msg, graph.PathTo(parent, f.from))
	}
}
