// Fixture loaded under the import path acacia/cmd/nonsim: wall-clock
// reads are fine outside internal/ — drivers report real elapsed time.
// No findings expected.
package nonsim

import "time"

func stamp() time.Time { return time.Now() }
