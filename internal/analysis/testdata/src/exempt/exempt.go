// Fixture loaded under the import path acacia/internal/exec: the worker
// pool owns real goroutines and real waits, so both the wallclock and the
// goroutine rule must stay silent here. No findings expected.
package exempt

import "time"

func pump(ch chan struct{}) {
	go func() {
		time.Sleep(time.Millisecond)
		ch <- struct{}{}
	}()
	_ = time.Now()
}
