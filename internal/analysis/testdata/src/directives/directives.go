// Fixture for the //acacia:allow directive machinery itself: malformed
// directives must be reported and must not suppress anything.
package directives

import "time"

const tick = 10 * time.Millisecond

func missingReason() time.Time {
	return time.Now() //acacia:allow wallclock
	// want:-1 "time.Now is wall-clock"
	// want:-2 "needs a reason"
}

func unknownRule() time.Duration {
	//acacia:allow nosuchrule the rule name is a typo
	// want:-1 "unknown rule"
	return tick
}

func wellFormed() time.Time {
	//acacia:allow wallclock fixture wants one honoured directive too
	return time.Now()
}

func stale() time.Duration {
	//acacia:allow maprange nothing on this line ranges a map any more
	// want:-1 "//acacia:allow maprange suppresses nothing; delete the stale directive"
	return tick
}
