// Fixture for the call-graph builder itself: method values, interface
// dispatch over-approximation, parameter flows and handler-root marking.
// The companion callgraph_test.go asserts on the graph structure directly;
// no rule findings are expected here, so there are no want comments.
package callgraph

import (
	"time"

	"acacia/internal/sim"
)

type T struct {
	eng  *sim.Engine
	hook func()
}

type Doer interface{ Do() }

type A struct{}

func (A) Do() {}

type B struct{}

func (*B) Do() {}

// dispatch calls through a module-declared interface: the graph must
// over-approximate to every method named Do with zero parameters.
func dispatch(d Doer) { d.Do() }

// methodValue binds a method value to a local and invokes it: the flow map
// must resolve the invocation back to (*T).helper.
func methodValue(t *T) {
	f := t.helper
	f()
}

func (t *T) helper() {}

// fieldFlow stores a function into a struct field at construction and
// invokes it through the field elsewhere.
func fieldFlow(eng *sim.Engine) *T {
	return &T{eng: eng, hook: leaf}
}

func runHook(t *T) { t.hook() }

func leaf() {}

// start roots the walk: the literal passed to Schedule is a handler, and
// everything it calls is handler-reachable.
func start(t *T) {
	t.eng.Schedule(time.Millisecond, func() {
		dispatch(A{})
		methodValue(t)
		runHook(t)
	})
}

// unreached is never called from a handler.
func unreached() { dispatch(&B{}) }
