// Fixture for the partition-confinement rule, loaded under the import path
// acacia/x/confine. Handler bodies must drive exactly one partition's
// engine; the driver code around them may do anything.
package confine

import (
	"time"

	"acacia/internal/sim"
)

type app struct {
	eng  *sim.Engine // this partition
	peer *sim.Engine // another partition
}

// Start's closure is an event handler. Scheduling on the captured a.eng is
// local; scheduling on a.peer from the same handler is the cross-partition
// write SendTo exists for. Field selection must separate the two even
// though both chains root at a.
func (a *app) Start() {
	a.eng.Schedule(time.Millisecond, func() {
		a.eng.After(time.Millisecond, a.tick)
		a.peer.After(time.Millisecond, a.tick) // want "also drives engine"
	})
}

// StartAliased is Start with both engines pulled into locals first: the
// alias map must trace eng back to a.eng and other back to a.peer.
func (a *app) StartAliased() {
	eng := a.eng
	other := a.peer
	eng.Schedule(time.Millisecond, func() {
		_ = eng.Now()
		other.After(time.Millisecond, a.tick) // want "also drives engine"
	})
}

// StartSuppressed documents a topology where both fields hold the same
// engine, so the multi-base finding is suppressed with a reason.
func (a *app) StartSuppressed() {
	a.eng.Schedule(time.Millisecond, func() {
		_ = a.eng.Now()
		//acacia:allow partition-confine fixture: both fields alias one engine in this topology
		a.peer.After(time.Millisecond, a.tick)
	})
}

func (a *app) tick() {}

// Control reaches for the cluster from inside a handler: enumeration and
// run control belong to the driver.
func Control(c *sim.Cluster, eng *sim.Engine) {
	eng.Schedule(time.Millisecond, func() {
		for _, e := range c.Engines() { // want "sim.Cluster.Engines called from event-handler context"
			_ = e.Now() // want "engine obtained from Cluster.Engines"
		}
	})
}

// Driver is the legal counterpart: the same calls outside any handler body
// must not be flagged, even though this function lexically contains a
// handler literal.
func Driver(master *sim.Engine) {
	c := sim.NewCluster(master, 1)
	p0 := c.AddPartition("p0")
	p1 := c.AddPartition("p1")
	p0.Schedule(time.Millisecond, func() { _ = p0.Now() })
	p1.Schedule(time.Millisecond, func() { _ = p1.Now() })
	for _, e := range c.Engines() {
		_ = e.Metrics()
	}
	c.RunFor(time.Second)
}
