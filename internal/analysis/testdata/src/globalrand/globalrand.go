// Fixture for the globalrand rule.
package globalrand

import "math/rand"

func globalDraws() {
	_ = rand.Intn(10)                  // want "math/rand.Intn draws from process-global state"
	_ = rand.Float64()                 // want "math/rand.Float64 draws from process-global state"
	rand.Shuffle(3, func(i, j int) {}) // want "math/rand.Shuffle draws from process-global state"
}

func opaqueSeed(src rand.Source) {
	_ = rand.New(src) // want "rand.New without a visible seed"
}

func visiblySeeded(seed int64) {
	r := rand.New(rand.NewSource(seed))
	_ = r.Intn(10)                  // methods on a seeded *rand.Rand are fine
	_ = rand.NewZipf(r, 1.1, 1, 10) // constructors do not draw from global state
}

func suppressed() int {
	//acacia:allow globalrand fixture exercises the suppression path
	return rand.Int()
}
