// Fixture for the goroutine rule, loaded under the import path
// acacia/internal/goroutine (anything but internal/exec). The rule bans
// both stray go statements and the channel plumbing they would need:
// partition-scheduler concurrency lives in internal/exec only.
package goroutine

func fanOut(work []func()) {
	for _, w := range work {
		go w() // want "go statement outside internal/exec"
	}
	done := make(chan struct{}) // want "channel type outside internal/exec"
	go func() {                 // want "go statement outside internal/exec"
		close(done)
	}()
	<-done // want "channel receive outside internal/exec"
}

// homegrownScheduler is the violation the partition engine must never
// grow: a private barrier built from channel sends and selects instead of
// the sanctioned gang in internal/exec.
func homegrownScheduler(windows []func(), ready chan int) { // want "channel type outside internal/exec"
	for i, w := range windows {
		w()
		ready <- i // want "channel send outside internal/exec"
	}
	select { // want "select statement outside internal/exec"
	case i := <-ready: // want "channel receive outside internal/exec"
		_ = i
	default:
	}
}

func suppressed(f func()) {
	//acacia:allow goroutine fixture exercises the suppression path
	go f()
}
