// Fixture for the goroutine rule, loaded under the import path
// acacia/internal/goroutine (anything but internal/exec).
package goroutine

func fanOut(work []func()) {
	for _, w := range work {
		go w() // want "go statement outside internal/exec"
	}
	done := make(chan struct{})
	go func() { // want "go statement outside internal/exec"
		close(done)
	}()
	<-done
}

func suppressed(f func()) {
	//acacia:allow goroutine fixture exercises the suppression path
	go f()
}
