// In-package test fixture: the loader folds _test.go files into the
// analyzed package, so t.Errorf in map order is caught here too.
package maprange

import "testing"

func TestReportsInMapOrder(t *testing.T) {
	m := map[string]int{"a": 1, "b": 2}
	for k, v := range m {
		if v < 0 {
			t.Errorf("negative %s", k) // want "t.Errorf inside range over map"
		}
	}
}
