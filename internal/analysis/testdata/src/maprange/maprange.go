// Fixture for the maprange rule.
package maprange

import (
	"fmt"
	"sort"

	"acacia/internal/netsim"
	"acacia/internal/sim"
	"acacia/internal/telemetry"
)

func printsInMapOrder(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "fmt.Println inside range over map"
	}
}

func appendsInMapOrder(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "append to out inside range over map"
	}
	return out
}

// collectThenSort is the prescribed idiom: the append target is sorted
// after the loop, so the rule must stay silent.
func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// loopLocalAccumulator appends to a slice declared inside the loop body:
// it resets every iteration and cannot leak the key order.
func loopLocalAccumulator(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var doubled []int
		for _, v := range vs {
			doubled = append(doubled, 2*v)
		}
		total += len(doubled)
	}
	return total
}

func observesInMapOrder(reg *telemetry.Registry, m map[string]float64) {
	g := reg.Gauge("app/last-sample")
	for _, v := range m {
		g.Set(v) // want "telemetry Set inside range over map"
	}
}

func transmitsInMapOrder(peers map[string]*netsim.Port, p *netsim.Packet) {
	for _, pt := range peers {
		pt.Send(p) // want "netsim Send inside range over map"
	}
}

func injectsInMapOrder(nodes map[string]*netsim.Node, p *netsim.Packet) {
	for _, n := range nodes {
		n.Inject(p) // want "netsim Inject inside range over map"
	}
}

func drawsRNGInMapOrder(eng *sim.Engine, m map[string]int) float64 {
	total := 0.0
	for range m {
		total += eng.RNG().Float64() // want "engine RNG Float64 inside range over map"
	}
	return total
}

// sortedThenTransmit probes peers in sorted order: the prescribed idiom,
// so the rule must stay silent even though Send appears downstream of a
// map collection.
func sortedThenTransmit(peers map[string]*netsim.Port, p *netsim.Packet) {
	names := make([]string, 0, len(peers))
	for name := range peers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		peers[name].Send(p)
	}
}

func suppressed(m map[string]int) []string {
	var out []string
	for k := range m {
		//acacia:allow maprange caller re-sorts before rendering
		out = append(out, k)
	}
	return out
}
