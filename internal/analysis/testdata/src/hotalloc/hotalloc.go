// Fixture for the hotalloc rule, loaded under the import path
// acacia/internal/hotalloc. The //acacia:hotpath annotation is opt-in, so
// the rule fires only inside annotated functions regardless of package.
package hotalloc

import "fmt"

var (
	sinkB []byte
	sinkS string
	sinkF func()
	sinkP *int
)

//acacia:hotpath
func hotSprintf(n int) {
	sinkS = fmt.Sprintf("%d", n) // want "fmt.Sprintf allocates in a hotpath function"
}

//acacia:hotpath
func hotMake(n int) {
	sinkB = make([]byte, n) // want "make allocates in a hotpath function"
}

//acacia:hotpath
func hotNew() {
	sinkP = new(int) // want "new allocates in a hotpath function"
}

//acacia:hotpath
func hotConcat(a, b string) {
	sinkS = a + b // want "string concatenation allocates in a hotpath function"
	sinkS += a    // want "string concatenation allocates in a hotpath function"
}

// hotChained checks a+b+c reports once, on the outermost concatenation.
//
//acacia:hotpath
func hotChained(a, b, c string) {
	sinkS = a + b + c // want "string concatenation allocates in a hotpath function"
}

//acacia:hotpath
func hotClosure(x int) {
	sinkF = func() { sinkP = &x } // want "function literal in a hotpath function allocates its closure"
}

// hotConstConcat stays clean: constant-folded concatenation never reaches
// the runtime.
//
//acacia:hotpath
func hotConstConcat() {
	sinkS = "a" + "b"
}

// hotAppend stays clean: appending to a reused buffer is the prescribed
// idiom, not a violation.
//
//acacia:hotpath
func hotAppend(b []byte) []byte {
	return append(b, 0x30)
}

// coldSprintf is unannotated: the same patterns are legal outside hot
// paths.
func coldSprintf(n int) {
	sinkS = fmt.Sprintf("%d", n)
	sinkB = make([]byte, n)
}

//acacia:hotpath
func suppressedHot(n int) {
	//acacia:allow hotalloc fixture exercises the suppression path
	sinkB = make([]byte, n)
}
