// Fixture for the wallclock rule, loaded under the import path
// acacia/internal/wallclock so the internal/ gate applies.
package wallclock

import "time"

// Duration arithmetic and formatting stay legal: the contract bans clock
// reads, not the time package.
const frame = 33 * time.Millisecond

func bad() {
	_ = time.Now()              // want "time.Now is wall-clock"
	time.Sleep(frame)           // want "time.Sleep is wall-clock"
	_ = time.Since(time.Time{}) // want "time.Since is wall-clock"
	_ = time.After(frame)       // want "time.After is wall-clock"
	_ = time.NewTimer(frame)    // want "time.NewTimer is wall-clock"
	_ = time.NewTicker(frame)   // want "time.NewTicker is wall-clock"
}

func legal() {
	d := 2 * frame
	_ = d.Seconds()
	_ = time.Duration(5).String()
	_ = time.Time{}.Add(frame)
}

func suppressed() {
	//acacia:allow wallclock fixture exercises the suppression path
	_ = time.Now()
}

func suppressedSameLine() {
	_ = time.Now() //acacia:allow wallclock same-line directives also count
}
