// Fixture for the compiler-verified escape gate. The test does not run the
// compiler; it synthesizes `go build -gcflags=-m` output from the
// "escape:" marker comments below (once in Go 1.22 form, once in 1.24 form
// with trailing colons and indented explanation blocks) and injects it
// through Program.EscapeOutput. A marker line inside a //acacia:hotpath
// function must be reported; outside one, or under an allow, it must not.
package hotescape

type buf struct{ b []byte }

var sink *buf

//acacia:hotpath
func hot() {
	grow() // escape: &buf{...} escapes to heap
	// want:-1 "escapes to heap inside //acacia:hotpath function hot"
}

//acacia:hotpath
func (p *buf) hotMethod() {
	grow() // escape: moved to heap: p
	// want:-1 "moved to heap: p inside //acacia:hotpath function .\*buf..hotMethod"
}

//acacia:hotpath
func hotAllowed() {
	//acacia:allow hotpath-escape fixture: sanctioned pool-miss allocation
	grow() // escape: &buf{...} escapes to heap
}

// cold is not annotated: the same diagnostic on its lines is outside every
// hot range and must be dropped.
func cold() {
	grow() // escape: &buf{...} escapes to heap
}

func grow() { sink = &buf{} }
