// Fixture for the metricname rule.
package metricname

import "acacia/internal/telemetry"

func register(reg *telemetry.Registry, dynamic string) {
	reg.Counter("epc/s1ap/attach-accept")
	reg.Counter("epc/Signaling")  // want "breaks the layer"
	reg.Gauge("net/queue_bytes")  // want "breaks the layer"
	reg.Histogram("app/match-ms") // legal: the grammar the repo uses

	// Registry.Emit checks scope and name; the detail is free-form.
	reg.Emit("epc", "handover-start", "UE 7 -> eNB 2")
	reg.Emit("EPC", "handover-start", "x") // want "breaks the layer"

	sc := reg.Scope("app")
	sc.Counter("frames")
	sc.Counter("Frames") // want "breaks the layer"
	sc.Emit("match-done", "Frame #12 matched")

	// Dynamically built names are a runtime concern, not a static one.
	reg.Counter(dynamic)
}

func suppressed(reg *telemetry.Registry) {
	//acacia:allow metricname legacy dashboards expect this exact name
	reg.Counter("app/LegacyName")
}
