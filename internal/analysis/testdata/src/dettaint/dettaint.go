// Fixture for the interprocedural determinism-taint rule, loaded under the
// import path acacia/x/dettaint — deliberately outside internal/, where the
// per-site wallclock rule does not apply. Every nondeterminism source here
// is laundered through at least one wrapper, so only the call graph can
// connect it to handler context.
package dettaint

import (
	"os"
	"time"

	"acacia/internal/sim"
)

// wallNow launders time.Now behind a helper two hops from the handler.
func wallNow() time.Time { return time.Now() } // want "time.Now reads or waits on the wall clock but is reachable from a sim event handler"

// deep adds the second hop: handler -> deep -> wallNow.
func deep() time.Time { return wallNow() }

// env launders the process environment.
func env() string { return os.Getenv("ACACIA_MODE") } // want "os.Getenv reads the process environment but is reachable"

// guarded would be flagged, but the path is suppressed at the sink site.
func guarded() time.Time {
	//acacia:allow dettaint fixture: exercising the suppression path
	return time.Now()
}

// Run schedules the handlers that root the taint walk.
func Run(eng *sim.Engine) {
	eng.Schedule(time.Millisecond, func() {
		_ = deep()
		_ = guarded()
	})
	eng.After(time.Millisecond, func() { _ = env() })
}

// cold also reads the wall clock, but nothing handler-reachable calls it:
// the per-site rules don't govern this package and the taint rule must stay
// silent.
func cold() time.Time { return time.Now() }

var _ = cold
