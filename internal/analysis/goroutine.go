package analysis

import "go/ast"

// GoroutineRule enforces the concurrency contract: the sim engine and
// every layer on it are single-threaded by design, and the only sanctioned
// parallelism is the bounded worker pool in internal/exec (which schedules
// whole trials and reassembles outcomes deterministically). A stray go
// statement anywhere else introduces scheduling nondeterminism the
// byte-identical-output contract cannot survive.
func GoroutineRule() *Rule {
	return &Rule{
		Name: "goroutine",
		Doc:  "no go statements outside internal/exec; use the bounded worker pool",
		Run:  runGoroutine,
	}
}

func runGoroutine(p *Pass) {
	if isExecPkg(p.BasePath()) {
		return
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				p.Reportf(g.Pos(),
					"go statement outside internal/exec: route concurrency through the bounded worker pool (exec.Run)")
			}
			return true
		})
	}
}
