package analysis

import (
	"go/ast"
	"go/token"
)

// GoroutineRule enforces the concurrency contract: the sim engine and
// every layer on it are single-threaded by design, and the only sanctioned
// parallelism is the bounded worker pool and partition-window gang in
// internal/exec (which schedule whole trials or partition windows and
// reassemble outcomes deterministically). A stray go statement anywhere
// else introduces scheduling nondeterminism the byte-identical-output
// contract cannot survive — and channels are how such stray concurrency
// communicates, so channel types, sends, receives, and selects are confined
// to the same package. Partition-scheduler goroutines in particular must
// live in internal/exec, never beside the engine code they drive.
func GoroutineRule() *Rule {
	return &Rule{
		Name: "goroutine",
		Doc:  "no go statements or channel constructs outside internal/exec; use the bounded worker pool",
		Run:  runGoroutine,
	}
}

func runGoroutine(p *Pass) {
	if isExecPkg(p.BasePath()) {
		return
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				p.Reportf(n.Pos(),
					"go statement outside internal/exec: route concurrency through the bounded worker pool (exec.Run)")
			case *ast.ChanType:
				p.Reportf(n.Pos(),
					"channel type outside internal/exec: concurrency plumbing belongs to the worker-pool package")
			case *ast.SendStmt:
				p.Reportf(n.Pos(),
					"channel send outside internal/exec: concurrency plumbing belongs to the worker-pool package")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					p.Reportf(n.Pos(),
						"channel receive outside internal/exec: concurrency plumbing belongs to the worker-pool package")
				}
			case *ast.SelectStmt:
				p.Reportf(n.Pos(),
					"select statement outside internal/exec: concurrency plumbing belongs to the worker-pool package")
			}
			return true
		})
	}
}
