package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapRangeRule enforces the ordered-output contract: Go randomizes map
// iteration order, so a `for … range` over a map whose body feeds ordered
// sinks — appending to a result slice, printing, or observing telemetry —
// produces different bytes on every run. The fix is the collect-sort-index
// idiom: gather the keys, sort them, then iterate the sorted slice. The
// rule recognizes that idiom (a key-collecting append whose target is
// sorted later in the same function) and stays quiet for it.
func MapRangeRule() *Rule {
	return &Rule{
		Name: "maprange",
		Doc:  "map iteration feeding slices, output or telemetry must sort keys first",
		Run:  runMapRange,
	}
}

func runMapRange(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := p.Info.Types[rng.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRangeBody(p, file, rng)
			return true
		})
	}
}

// printMethodNames flag method calls that emit ordered output regardless
// of receiver ("Error" alone is excluded: it collides with the error
// interface; the testing-package variants are caught type-gated below).
var printMethodNames = map[string]bool{
	"Print":       true,
	"Printf":      true,
	"Println":     true,
	"WriteString": true,
}

// testingLogNames are the *testing.T/B/F reporters whose call order shows
// up in test output.
var testingLogNames = map[string]bool{
	"Error": true, "Errorf": true,
	"Fatal": true, "Fatalf": true,
	"Log": true, "Logf": true,
	"Skip": true, "Skipf": true,
}

// telemetryObserveNames mutate or emit telemetry; doing so in map order
// perturbs gauges (last write wins) and the event timeline.
var telemetryObserveNames = map[string]bool{
	"Inc": true, "Add": true, "Set": true, "Observe": true, "Emit": true,
}

// netsimSendNames transmit packets; enqueue order (and any jitter/loss RNG
// draws downstream) following map order breaks byte-identical replays.
var netsimSendNames = map[string]bool{
	"Send": true, "Inject": true,
}

// rngDrawNames consume the engine's deterministic RNG stream; drawing in
// map order permutes the stream for every consumer that follows.
var rngDrawNames = map[string]bool{
	"Uint64": true, "Float64": true, "Intn": true,
	"NormFloat64": true, "ExpFloat64": true, "Perm": true, "Fork": true,
}

func checkMapRangeBody(p *Pass, file *ast.File, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkMapRangeCall(p, n)
		case *ast.AssignStmt:
			checkMapRangeAppend(p, file, rng, n)
		}
		return true
	})
}

// checkMapRangeCall flags ordered-output and telemetry calls inside the
// map-range body.
func checkMapRangeCall(p *Pass, call *ast.CallExpr) {
	fn := calleeFunc(p.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	name, pkgPath := fn.Name(), fn.Pkg().Path()
	switch {
	case pkgPath == "fmt" && (strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")):
		p.Reportf(call.Pos(),
			"fmt.%s inside range over map prints in nondeterministic key order; sort the keys first", name)
	case pkgPath == "testing" && testingLogNames[name]:
		p.Reportf(call.Pos(),
			"t.%s inside range over map reports in nondeterministic key order; sort the keys first", name)
	case strings.HasSuffix(pkgPath, "internal/telemetry") && telemetryObserveNames[name] && isMethod(fn):
		p.Reportf(call.Pos(),
			"telemetry %s inside range over map observes in nondeterministic key order; sort the keys first", name)
	case strings.HasSuffix(pkgPath, "internal/netsim") && netsimSendNames[name] && isMethod(fn):
		p.Reportf(call.Pos(),
			"netsim %s inside range over map transmits in nondeterministic key order; sort the keys first", name)
	case strings.HasSuffix(pkgPath, "internal/sim") && rngDrawNames[name] && isMethod(fn):
		p.Reportf(call.Pos(),
			"engine RNG %s inside range over map draws in nondeterministic key order; sort the keys first", name)
	case printMethodNames[name] && isMethod(fn):
		p.Reportf(call.Pos(),
			"%s inside range over map writes in nondeterministic key order; sort the keys first", name)
	}
}

// checkMapRangeAppend flags `s = append(s, …)` onto a slice declared
// outside the loop — unless s is sorted later in the same function, which
// is exactly the collect-then-sort idiom the contract prescribes.
func checkMapRangeAppend(p *Pass, file *ast.File, rng *ast.RangeStmt, assign *ast.AssignStmt) {
	for i, rhs := range assign.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isBuiltinAppend(p.Info, call) || i >= len(assign.Lhs) {
			continue
		}
		target := objectOf(p.Info, assign.Lhs[i])
		if target == nil {
			continue
		}
		// Loop-local accumulators reset every iteration; only slices that
		// outlive the loop leak the iteration order.
		if target.Pos() >= rng.Pos() && target.Pos() < rng.End() {
			continue
		}
		if sortedAfter(p, file, rng, target) {
			continue
		}
		p.Reportf(call.Pos(),
			"append to %s inside range over map records nondeterministic key order; sort %s afterwards or iterate sorted keys",
			target.Name(), target.Name())
	}
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

func isMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// sortFuncs lists the sorting entry points that launder a key-collection
// back into deterministic order, by package path.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Strings": true, "Ints": true, "Float64s": true,
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// sortedAfter reports whether the enclosing function sorts target after
// the range statement completes.
func sortedAfter(p *Pass, file *ast.File, rng *ast.RangeStmt, target types.Object) bool {
	body := funcFor(file, rng.Pos())
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		fn := calleeFunc(p.Info, call)
		if fn == nil || fn.Pkg() == nil || len(call.Args) == 0 {
			return true
		}
		if names, ok := sortFuncs[fn.Pkg().Path()]; !ok || !names[fn.Name()] {
			return true
		}
		if objectOf(p.Info, call.Args[0]) == target {
			found = true
			return false
		}
		return true
	})
	return found
}
