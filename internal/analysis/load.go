package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for rules. Test files
// are folded into their package (the repo uses in-package tests), and an
// external "_test" package, when present, loads as its own Package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Errs holds type-check errors. The driver treats them as fatal: an
	// unparseable repo cannot be vetted.
	Errs []error
}

// Loader resolves package patterns against the enclosing module and
// type-checks them with the standard library imported from source — no
// module dependencies, no export-data requirements.
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string
	ModulePath string

	stdlib types.Importer
	// cache holds type-checked base packages (no test files) by import
	// path, shared by every import edge.
	cache   map[string]*types.Package
	loading map[string]bool
}

// NewLoader locates the module enclosing startDir (walking up to go.mod)
// and returns a loader rooted there.
func NewLoader(startDir string) (*Loader, error) {
	dir, err := filepath.Abs(startDir)
	if err != nil {
		return nil, err
	}
	root := dir
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod at or above %s", dir)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModuleRoot: root,
		ModulePath: modPath,
		stdlib:     importer.ForCompiler(fset, "source", nil),
		cache:      map[string]*types.Package{},
		loading:    map[string]bool{},
	}, nil
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module declaration in %s", gomod)
}

// Import implements types.Importer: module-internal paths resolve to
// directories under the module root and type-check recursively (base files
// only); everything else comes from the standard library source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		return l.importModule(path)
	}
	return l.stdlib.Import(path)
}

// importModule type-checks a module-internal package from source, caching
// the result so every importer sees one types.Package per path.
func (l *Loader) importModule(path string) (*types.Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(path, l.ModulePath)))
	pure, _, _, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(pure) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.Fset, pure, nil)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	l.cache[path] = pkg
	return pkg, nil
}

// parseDir parses every .go file in dir into three groups: pure package
// files (the export surface importers see), in-package test files, and
// external "_test"-package files. Files come back in name order so load
// results are deterministic.
func (l *Loader) parseDir(dir string) (pure, inTest, extTest []*ast.File, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		file, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		switch {
		case strings.HasSuffix(file.Name.Name, "_test"):
			extTest = append(extTest, file)
		case strings.HasSuffix(name, "_test.go"):
			inTest = append(inTest, file)
		default:
			pure = append(pure, file)
		}
	}
	return pure, inTest, extTest, nil
}

// Load expands the patterns ("./...", "./dir", "./dir/...") and returns
// one Package per matched directory (plus one per external test package).
// Test files are included in the analysis view of each package.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirSet := map[string]bool{}
	for _, pat := range patterns {
		dirs, err := l.expand(pat)
		if err != nil {
			return nil, err
		}
		for _, d := range dirs {
			dirSet[d] = true
		}
	}
	dirs := make([]string, 0, len(dirSet))
	for d := range dirSet {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)

	var pkgs []*Package
	for _, dir := range dirs {
		loaded, err := l.LoadDir(dir, l.importPathFor(dir))
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, loaded...)
	}
	return pkgs, nil
}

// importPathFor maps a directory under the module root to its import path.
func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil || rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

// LoadDir type-checks the package in dir under the given import path,
// including its test files. It returns one Package for the (possibly
// test-augmented) package and, when external test files exist, a second
// Package for them.
func (l *Loader) LoadDir(dir, path string) ([]*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	pure, inTest, extTest, err := l.parseDir(abs)
	if err != nil {
		return nil, err
	}
	if len(pure)+len(inTest)+len(extTest) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", abs)
	}
	var pkgs []*Package
	if len(pure)+len(inTest) > 0 {
		pkgs = append(pkgs, l.check(path, abs, append(append([]*ast.File{}, pure...), inTest...)))
	}
	if len(extTest) > 0 {
		// The external test package imports the base package; the import
		// resolves through the cache like any other edge, and its errors
		// (if any) surface on the external package's own check.
		pkgs = append(pkgs, l.check(path+"_test", abs, extTest))
	}
	return pkgs, nil
}

// check runs the type checker over one file set, collecting (rather than
// stopping at) type errors.
func (l *Loader) check(path, dir string, files []*ast.File) *Package {
	out := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files}
	out.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { out.Errs = append(out.Errs, err) },
	}
	pkg, err := conf.Check(path, l.Fset, files, out.Info)
	out.Pkg = pkg
	if err != nil && len(out.Errs) == 0 {
		out.Errs = append(out.Errs, err)
	}
	return out
}

// expand resolves one pattern to package directories.
func (l *Loader) expand(pattern string) ([]string, error) {
	recursive := false
	if pattern == "..." {
		pattern, recursive = ".", true
	} else if rest, ok := strings.CutSuffix(pattern, "/..."); ok {
		pattern, recursive = rest, true
		if pattern == "" {
			pattern = "."
		}
	}
	root, err := filepath.Abs(pattern)
	if err != nil {
		return nil, err
	}
	if !recursive {
		return []string{root}, nil
	}
	var dirs []string
	err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				dirs = append(dirs, p)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return dirs, nil
}
