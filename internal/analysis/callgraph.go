package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// This file is the whole-program layer of the framework: a static call
// graph over every loaded package, shared by the interprocedural rules
// (dettaint, partition-confine) and the hotpath-escape gate. The graph is
// deliberately an over-approximation — it must never miss a possible call,
// and it tolerates edges that cannot happen at runtime:
//
//   - direct calls and method calls resolve exactly through go/types;
//   - interface method calls fan out to every module-declared method with
//     the same name and parameter count (no points-to analysis);
//   - function values are tracked by a flow-insensitive "what functions
//     were ever assigned to this variable/field/parameter" map, and an
//     invocation through such an object calls everything that flowed in;
//   - function values stored in slices, maps or returned from functions
//     are not tracked (best-effort, documented in DESIGN.md §3i).
//
// Because the loader type-checks a package once for analysis (test files
// folded in) and once more when another package imports it, the same
// function is represented by distinct *types.Func objects in different
// type-checking universes. Nodes are therefore keyed by a stable printed
// name (package path, receiver, function name), never by object identity.

// Program is the whole-repo view that program-level rules (Rule.RunProgram)
// operate on, in contrast to the per-package Pass.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package
	// ModuleRoot is the directory holding go.mod, resolved from the first
	// package's directory; ModulePath is its module declaration. Both are
	// empty when resolution fails (program rules then skip work that needs
	// the module on disk, such as the escape gate's go build).
	ModuleRoot string
	ModulePath string
	// EscapeOutput, when non-nil, replaces the real `go build -gcflags=-m`
	// invocation of the hotpath-escape rule with canned compiler output —
	// the seam the golden tests use to exercise both Go 1.22 and 1.24
	// diagnostic formats without requiring both toolchains.
	EscapeOutput func() ([]byte, error)

	graph *CallGraph
}

// ProgramPass carries the Program through one program rule's run.
type ProgramPass struct {
	Prog  *Program
	rule  *Rule
	diags *[]Diagnostic
}

// Reportf records a finding at pos, resolved through the program fileset.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportAt(p.Prog.Fset.Position(pos), format, args...)
}

// ReportAt records a finding at an already-resolved position. The escape
// gate uses it directly: compiler diagnostics arrive as file:line:col text,
// not token.Pos values.
func (p *ProgramPass) ReportAt(position token.Position, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     position,
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Rule:    p.rule.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// NewProgram assembles the program view over the loaded packages.
func NewProgram(pkgs []*Package) *Program {
	prog := &Program{Pkgs: pkgs}
	if len(pkgs) == 0 {
		return prog
	}
	prog.Fset = pkgs[0].Fset
	for dir := pkgs[0].Dir; ; {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			prog.ModuleRoot = dir
			if mp, err := modulePath(filepath.Join(dir, "go.mod")); err == nil {
				prog.ModulePath = mp
			}
			break
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			break
		}
		dir = parent
	}
	return prog
}

// CallGraph returns the program's call graph, building it on first use.
func (prog *Program) CallGraph() *CallGraph {
	if prog.graph == nil {
		prog.graph = buildCallGraph(prog)
	}
	return prog.graph
}

// CGNode is one function in the call graph: a declared function or method
// (Fn non-nil) or a function literal.
type CGNode struct {
	Key  string
	Name string // human-readable, e.g. "(*epc.MME).handleAttach"
	Pos  token.Pos
	// Body and Pkg are set for functions whose source was analyzed;
	// referenced-but-unanalyzed functions (standard library, mostly) are
	// body-less leaves.
	Body *ast.BlockStmt
	Pkg  *Package
	// Decl is the enclosing top-level declaration — the node's own for
	// named functions, the lexically enclosing one for literals. The
	// confinement rule resolves engine aliases over the whole declaration,
	// because handler closures capture locals bound outside their bodies.
	Decl *ast.FuncDecl
	// Root marks event-handler entry points: functions whose value flows
	// into a sim.Engine scheduling API (Schedule, After, SendTo, ...).
	Root bool

	edges []cgEdge
}

type cgEdge struct {
	to  string
	pos token.Pos
}

// CallGraph holds the program's nodes and the handler roots.
type CallGraph struct {
	Nodes map[string]*CGNode
	// RootKeys lists handler-root node keys in sorted order.
	RootKeys []string
}

// Edges returns n's callee keys with the call positions, deterministically
// ordered.
func (n *CGNode) Edges() []struct {
	Key string
	Pos token.Pos
} {
	out := make([]struct {
		Key string
		Pos token.Pos
	}, len(n.edges))
	for i, e := range n.edges {
		out[i] = struct {
			Key string
			Pos token.Pos
		}{e.to, e.pos}
	}
	return out
}

// HandlerReachable walks the graph from the handler roots and returns the
// reachable nodes in BFS order plus, for every reached node, the key of the
// node it was first reached from ("" for roots). The parent chain renders
// the diagnostic paths.
func (g *CallGraph) HandlerReachable() (order []*CGNode, parent map[string]string) {
	parent = map[string]string{}
	var queue []string
	for _, k := range g.RootKeys {
		parent[k] = ""
		queue = append(queue, k)
	}
	for len(queue) > 0 {
		key := queue[0]
		queue = queue[1:]
		n := g.Nodes[key]
		if n == nil {
			continue
		}
		order = append(order, n)
		for _, e := range n.edges {
			if _, seen := parent[e.to]; seen {
				continue
			}
			parent[e.to] = key
			queue = append(queue, e.to)
		}
	}
	return order, parent
}

// PathTo renders the call chain from a handler root down to key, e.g.
// "(*CIServer).onFrame -> (*Backend).match -> slowHash".
func (g *CallGraph) PathTo(parent map[string]string, key string) string {
	var names []string
	for k := key; k != ""; k = parent[k] {
		name := k
		if n := g.Nodes[k]; n != nil {
			name = n.Name
		}
		names = append(names, name)
		if _, ok := parent[k]; !ok {
			break
		}
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, " -> ")
}

// funcKey returns a stable identifier for fn that is independent of which
// type-checking universe resolved it: "pkgpath.(recv).Name" for methods,
// "pkgpath.Name" otherwise.
func funcKey(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return pkg + "." + recvString(sig.Recv().Type()) + "." + fn.Name()
	}
	return pkg + "." + fn.Name()
}

// recvString prints a receiver type as "(T)" or "(*T)".
func recvString(t types.Type) string {
	ptr := ""
	if p, ok := t.(*types.Pointer); ok {
		ptr, t = "*", p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return "(" + ptr + n.Obj().Name() + ")"
	}
	return "(" + ptr + t.String() + ")"
}

// displayName renders a node name for diagnostics: method keys keep the
// receiver, plain functions drop the package path's directory part.
func displayName(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return recvString(sig.Recv().Type()) + "." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// schedMethods are the sim.Engine methods whose function-typed arguments
// become event handlers. SendTo and CrossSchedule are included: their
// callbacks run on the destination partition's engine.
var schedMethods = map[string]bool{
	"Schedule":      true,
	"ScheduleAt":    true,
	"ScheduleArg":   true,
	"After":         true,
	"AfterArg":      true,
	"SendTo":        true,
	"CrossSchedule": true,
}

// isSimPkg reports whether path is the simulation-engine package (or a
// fixture standing in for it).
func isSimPkg(path string) bool {
	return path == "internal/sim" || strings.HasSuffix(path, "/internal/sim")
}

// isSchedulingAPI reports whether fn is one of the engine entry points that
// turn a function value into an event handler.
func isSchedulingAPI(fn *types.Func) bool {
	if fn.Pkg() == nil || !isSimPkg(fn.Pkg().Path()) {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return recvString(sig.Recv().Type()) == "(*Engine)" && schedMethods[fn.Name()]
	}
	return fn.Name() == "NewTicker"
}

type varCallSite struct {
	from *CGNode
	key  string
	pos  token.Pos
}

type ifaceCallSite struct {
	from  *CGNode
	name  string
	arity int
	pos   token.Pos
}

type cgBuilder struct {
	prog  *Program
	nodes map[string]*CGNode
	// flows records, per tracked object key, the set of function (or other
	// object) keys whose values were assigned to it.
	flows map[string]map[string]bool
	// varCalls and ifaceCalls are invocation sites resolved after all flows
	// are known.
	varCalls   []varCallSite
	ifaceCalls []ifaceCallSite
	// methodIndex maps "name/arity" to the keys of every analyzed method
	// with that shape — the interface-dispatch over-approximation.
	methodIndex map[string][]string
	// rootRefs are the function/object keys passed to scheduling APIs.
	rootRefs map[string]bool
}

func buildCallGraph(prog *Program) *CallGraph {
	b := &cgBuilder{
		prog:        prog,
		nodes:       map[string]*CGNode{},
		flows:       map[string]map[string]bool{},
		methodIndex: map[string][]string{},
		rootRefs:    map[string]bool{},
	}
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				b.walkDecl(pkg, fd)
			}
		}
	}
	b.resolve()

	g := &CallGraph{Nodes: b.nodes}
	for key, n := range b.nodes {
		if n.Root {
			g.RootKeys = append(g.RootKeys, key)
		}
		sort.Slice(n.edges, func(i, j int) bool {
			if n.edges[i].to != n.edges[j].to {
				return n.edges[i].to < n.edges[j].to
			}
			return n.edges[i].pos < n.edges[j].pos
		})
	}
	sort.Strings(g.RootKeys)
	return g
}

// declNode returns (creating if needed) the node for a declared function.
func (b *cgBuilder) declNode(pkg *Package, fd *ast.FuncDecl) *CGNode {
	fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return nil
	}
	n := b.ensureFunc(fn)
	n.Body = fd.Body
	n.Pkg = pkg
	n.Decl = fd
	n.Pos = fd.Pos()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		idx := fd.Name.Name + "/" + strconv.Itoa(sig.Params().Len())
		b.methodIndex[idx] = append(b.methodIndex[idx], n.Key)
	}
	return n
}

// ensureFunc returns the node for fn, creating a body-less leaf if it has
// not been seen.
func (b *cgBuilder) ensureFunc(fn *types.Func) *CGNode {
	key := funcKey(fn)
	n := b.nodes[key]
	if n == nil {
		n = &CGNode{Key: key, Name: displayName(fn), Pos: fn.Pos()}
		b.nodes[key] = n
	}
	return n
}

// litKey keys a function literal by its source position, which is unique
// and stable within the shared fileset.
func (b *cgBuilder) litKey(lit *ast.FuncLit) string {
	p := b.prog.Fset.Position(lit.Pos())
	return "lit:" + p.Filename + ":" + strconv.Itoa(p.Line) + ":" + strconv.Itoa(p.Column)
}

func (b *cgBuilder) litNode(pkg *Package, parent *CGNode, lit *ast.FuncLit) *CGNode {
	key := b.litKey(lit)
	n := b.nodes[key]
	if n == nil {
		p := b.prog.Fset.Position(lit.Pos())
		n = &CGNode{
			Key:  key,
			Name: parent.Name + ".func@" + strconv.Itoa(p.Line),
			Pos:  lit.Pos(),
			Body: lit.Body,
			Pkg:  pkg,
			Decl: parent.Decl,
		}
		b.nodes[key] = n
	}
	return n
}

// walkDecl builds nodes and edges for one top-level declaration, descending
// into nested function literals with the literal as the current node.
func (b *cgBuilder) walkDecl(pkg *Package, fd *ast.FuncDecl) {
	root := b.declNode(pkg, fd)
	if root == nil {
		return
	}
	var walk func(cur *CGNode, n ast.Node)
	walk = func(cur *CGNode, n ast.Node) {
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				child := b.litNode(pkg, cur, x)
				walk(child, x.Body)
				return false
			case *ast.CallExpr:
				b.call(cur, pkg, x)
			case *ast.AssignStmt:
				b.assign(cur, pkg, x)
			case *ast.ValueSpec:
				for i, name := range x.Names {
					if i < len(x.Values) {
						b.flow(b.objKey(pkg, cur, pkg.Info.Defs[name]), b.funcValues(pkg, cur, x.Values[i]))
					}
				}
			case *ast.CompositeLit:
				b.compositeFlows(cur, pkg, x)
			}
			return true
		})
	}
	walk(root, fd.Body)
}

func (b *cgBuilder) assign(cur *CGNode, pkg *Package, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Lhs {
		var obj types.Object
		switch lhs := ast.Unparen(as.Lhs[i]).(type) {
		case *ast.Ident:
			obj = objectOf(pkg.Info, lhs)
		case *ast.SelectorExpr:
			obj = pkg.Info.Uses[lhs.Sel]
		}
		if v, ok := obj.(*types.Var); ok {
			b.flow(b.objKey(pkg, cur, v), b.funcValues(pkg, cur, as.Rhs[i]))
		}
	}
}

// compositeFlows records function values stored into struct fields through
// composite literals (keyed or positional).
func (b *cgBuilder) compositeFlows(cur *CGNode, pkg *Package, lit *ast.CompositeLit) {
	tv, ok := pkg.Info.Types[lit]
	if !ok {
		return
	}
	st, ok := tv.Type.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok {
				if f, ok := pkg.Info.Uses[id].(*types.Var); ok {
					b.flow(b.objKey(pkg, cur, f), b.funcValues(pkg, cur, kv.Value))
				}
			}
			continue
		}
		if i < st.NumFields() {
			b.flow(b.objKey(pkg, cur, st.Field(i)), b.funcValues(pkg, cur, elt))
		}
	}
}

// call resolves one call expression into graph edges, flow records, root
// marks, or a deferred var/interface invocation.
func (b *cgBuilder) call(cur *CGNode, pkg *Package, call *ast.CallExpr) {
	if fn := calleeFunc(pkg.Info, call); fn != nil {
		if isInterfaceMethod(fn) {
			// Over-approximate dispatch through module-declared interfaces
			// only; standard-library interfaces (error, Stringer, sort) fan
			// out to formatting helpers everywhere and would drown the graph
			// in impossible edges.
			if fn.Pkg() != nil && isModulePath(b.prog, fn.Pkg().Path()) {
				if sig, ok := fn.Type().(*types.Signature); ok {
					b.ifaceCalls = append(b.ifaceCalls, ifaceCallSite{cur, fn.Name(), sig.Params().Len(), call.Pos()})
				}
			}
			return
		}
		b.ensureFunc(fn)
		cur.edges = append(cur.edges, cgEdge{funcKey(fn), call.Pos()})
		b.flowArgs(cur, pkg, fn, call)
		if isSchedulingAPI(fn) {
			b.markRoots(cur, pkg, fn, call)
		}
		return
	}
	fun := ast.Unparen(call.Fun)
	if lit, ok := fun.(*ast.FuncLit); ok {
		cur.edges = append(cur.edges, cgEdge{b.litKey(lit), call.Pos()})
		return
	}
	// Invocation through a function-typed variable, field or parameter.
	var obj types.Object
	switch fun := fun.(type) {
	case *ast.Ident:
		obj = objectOf(pkg.Info, fun)
	case *ast.SelectorExpr:
		obj = pkg.Info.Uses[fun.Sel]
	}
	if v, ok := obj.(*types.Var); ok {
		if _, isSig := v.Type().Underlying().(*types.Signature); isSig {
			b.varCalls = append(b.varCalls, varCallSite{cur, b.objKey(pkg, cur, v), call.Pos()})
		}
	}
}

// flowArgs records function values passed as arguments into the callee's
// parameter keys, so invocations of the parameter inside the callee resolve
// back to these arguments.
func (b *cgBuilder) flowArgs(cur *CGNode, pkg *Package, fn *types.Func, call *ast.CallExpr) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		if i >= sig.Params().Len() {
			break
		}
		if _, isSig := sig.Params().At(i).Type().Underlying().(*types.Signature); !isSig {
			continue
		}
		b.flow(paramKey(fn, i), b.funcValues(pkg, cur, arg))
	}
}

// markRoots marks every function value passed to a scheduling API as an
// event-handler root (directly, or via the flow map for indirect values).
func (b *cgBuilder) markRoots(cur *CGNode, pkg *Package, fn *types.Func, call *ast.CallExpr) {
	sig, _ := fn.Type().(*types.Signature)
	for i, arg := range call.Args {
		if sig != nil && i < sig.Params().Len() {
			if _, isSig := sig.Params().At(i).Type().Underlying().(*types.Signature); !isSig {
				continue
			}
		}
		for _, key := range b.funcValues(pkg, cur, arg) {
			b.rootRefs[key] = true
		}
	}
}

// paramKey identifies the i'th parameter of fn across type-check universes.
func paramKey(fn *types.Func, i int) string {
	return funcKey(fn) + "#p" + strconv.Itoa(i)
}

// objKey returns the flow-map key for a variable-like object. Fields and
// package-level variables get universe-independent keys; parameters of the
// current declaration use the owning function's key; other locals are keyed
// by position (they never cross universes).
func (b *cgBuilder) objKey(pkg *Package, cur *CGNode, obj types.Object) string {
	v, ok := obj.(*types.Var)
	if !ok {
		if obj == nil {
			return ""
		}
		return "obj:" + b.posKey(obj.Pos())
	}
	if v.IsField() {
		pkgPath := ""
		if v.Pkg() != nil {
			pkgPath = v.Pkg().Path()
		}
		return "field:" + pkgPath + "." + v.Name() + ":" + types.TypeString(v.Type(), nil)
	}
	// Parameter of the enclosing declaration?
	if cur != nil && cur.Decl != nil && cur.Pkg == pkg {
		if fn, ok := pkg.Info.Defs[cur.Decl.Name].(*types.Func); ok {
			if sig, ok := fn.Type().(*types.Signature); ok {
				for i := 0; i < sig.Params().Len(); i++ {
					if sig.Params().At(i) == v {
						return paramKey(fn, i)
					}
				}
			}
		}
	}
	if v.Parent() != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return "pkgvar:" + v.Pkg().Path() + "." + v.Name()
	}
	return "local:" + b.posKey(v.Pos())
}

func (b *cgBuilder) posKey(pos token.Pos) string {
	p := b.prog.Fset.Position(pos)
	return p.Filename + ":" + strconv.Itoa(p.Line) + ":" + strconv.Itoa(p.Column)
}

// funcValues resolves an expression to the function keys its value may
// denote: a literal, a named function or method value, or (indirectly) a
// tracked object's key.
func (b *cgBuilder) funcValues(pkg *Package, cur *CGNode, expr ast.Expr) []string {
	switch e := ast.Unparen(expr).(type) {
	case *ast.FuncLit:
		// The literal's node is created when walkDecl descends into it.
		return []string{b.litKey(e)}
	case *ast.Ident:
		switch obj := objectOf(pkg.Info, e).(type) {
		case *types.Func:
			b.ensureFunc(obj)
			return []string{funcKey(obj)}
		case *types.Var:
			if _, isSig := obj.Type().Underlying().(*types.Signature); isSig {
				return []string{b.objKey(pkg, cur, obj)}
			}
		}
	case *ast.SelectorExpr:
		switch obj := pkg.Info.Uses[e.Sel].(type) {
		case *types.Func:
			b.ensureFunc(obj)
			return []string{funcKey(obj)}
		case *types.Var:
			if _, isSig := obj.Type().Underlying().(*types.Signature); isSig {
				return []string{b.objKey(pkg, cur, obj)}
			}
		}
	}
	return nil
}

func (b *cgBuilder) flow(key string, values []string) {
	if key == "" || len(values) == 0 {
		return
	}
	set := b.flows[key]
	if set == nil {
		set = map[string]bool{}
		b.flows[key] = set
	}
	for _, v := range values {
		set[v] = true
	}
}

// resolve turns deferred invocations and root references into edges and
// root marks, chasing flow keys transitively (a parameter may hold a field
// value that holds a method value).
func (b *cgBuilder) resolve() {
	memo := map[string][]string{}
	var funcsOf func(key string, seen map[string]bool) []string
	funcsOf = func(key string, seen map[string]bool) []string {
		if got, ok := memo[key]; ok {
			return got
		}
		if seen[key] {
			return nil
		}
		seen[key] = true
		set := map[string]bool{}
		if b.nodes[key] != nil {
			set[key] = true
		}
		for v := range b.flows[key] {
			if b.nodes[v] != nil {
				set[v] = true
				continue
			}
			for _, f := range funcsOf(v, seen) {
				set[f] = true
			}
		}
		out := make([]string, 0, len(set))
		for k := range set {
			out = append(out, k)
		}
		sort.Strings(out)
		memo[key] = out
		return out
	}

	for _, vc := range b.varCalls {
		for _, key := range funcsOf(vc.key, map[string]bool{}) {
			vc.from.edges = append(vc.from.edges, cgEdge{key, vc.pos})
		}
	}
	for _, ic := range b.ifaceCalls {
		for _, key := range b.methodIndex[ic.name+"/"+strconv.Itoa(ic.arity)] {
			ic.from.edges = append(ic.from.edges, cgEdge{key, ic.pos})
		}
	}
	for ref := range b.rootRefs {
		for _, key := range funcsOf(ref, map[string]bool{}) {
			if n := b.nodes[key]; n != nil {
				n.Root = true
			}
		}
	}
}

// isInterfaceMethod reports whether fn is declared on an interface type.
func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// isModulePath reports whether path belongs to the analyzed module (or its
// testdata stand-ins, which reuse the module path prefix).
func isModulePath(prog *Program, path string) bool {
	if prog.ModulePath == "" {
		return false
	}
	return path == prog.ModulePath || strings.HasPrefix(path, prog.ModulePath+"/")
}
