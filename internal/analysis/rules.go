package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// Shared helpers for the rule implementations.

// isInternalPkg reports whether path names a package under internal/ —
// the simulation code the determinism contracts govern.
func isInternalPkg(path string) bool {
	return strings.HasPrefix(path, "internal/") || strings.Contains(path, "/internal/")
}

// isExecPkg reports whether path is internal/exec, the one package allowed
// to use real concurrency and wall-clock waits (it hosts the worker pool
// the rest of the repo must go through).
func isExecPkg(path string) bool {
	return path == "internal/exec" || strings.HasSuffix(path, "/internal/exec")
}

// calleeFunc resolves a call's callee to the *types.Func it invokes, or
// nil when the callee is not a resolved function or method.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// stringConstant returns the compile-time string value of expr, if it has
// one (a literal or a named string constant).
func stringConstant(info *types.Info, expr ast.Expr) (string, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// objectOf resolves an expression used as an assignment target to the
// object it denotes: an identifier's object, or nil for anything whose
// storage we cannot track (selectors, index expressions).
func objectOf(info *types.Info, expr ast.Expr) types.Object {
	if id, ok := ast.Unparen(expr).(*ast.Ident); ok {
		if obj := info.Uses[id]; obj != nil {
			return obj
		}
		return info.Defs[id]
	}
	return nil
}
