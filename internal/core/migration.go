package core

import (
	"fmt"

	"acacia/internal/netsim"
	"acacia/internal/pkt"
	"acacia/internal/vision"
)

// Application state migration: when the MRS relocates a session to the edge
// site local to the UE's new cell, the AR frontend runs a freeze/copy/resume
// protocol (the EdgeWarp/EDGECAT shape) that ships the user's session
// context plus the feature-DB slice around their last position estimate
// from the old site's backend to the new one, entirely over netsim links:
//
//	UE ──migrateFetch──▶ new backend ──migratePull──▶ old backend
//	UE ◀──migrateDone─── new backend ◀──migrateState── old backend
//
// The frontend pauses its frame loop when the relocation is detected and
// resumes on migrateDone (or a watchdog), so the continuity gap is directly
// measurable against the migrated state size — the transfer's packet Size
// is the computed state size, so bigger slices take proportionally longer
// on the inter-site path.

// MigratePort is the CI server (and UE) port the migration protocol uses.
const MigratePort = 7002

// migrateSessionCtxBytes is the fixed per-session context shipped alongside
// the feature slice: bearer/QoS descriptors, frame-loop state, annotations.
const migrateSessionCtxBytes = 256

// migrateFetch (UE -> new backend) asks the new site to pull the user's
// state from the old CI server; a zero from means there is nothing to move.
type migrateFetch struct {
	user string
	from pkt.Addr
}

// migratePull (new backend -> old backend) asks the old site to freeze the
// user's state and ship it to dest, then notify ue.
type migratePull struct {
	user string
	dest pkt.Addr
	ue   pkt.Addr
}

// migrateChunkBytes is the stop-and-wait segment size of the state
// transfer. States larger than one segment ship as a chunk train, each
// chunk acked before the next is offered, so the transfer never overruns a
// fabric queue and its duration grows linearly with the state size.
const migrateChunkBytes = 32 << 10

// migrateChunk (old backend -> new backend) is one sized segment of the
// state transfer; all state except the final segment travels as chunks.
type migrateChunk struct {
	user string
	seq  int
}

// migrateChunkAck (new backend -> old backend) clocks the chunk train.
type migrateChunkAck struct {
	user string
	seq  int
}

// migrateState (old backend -> new backend) is the transfer's final
// segment: it carries the frozen state and the total size; the packet's
// own Size is whatever the chunk train hasn't covered yet.
type migrateState struct {
	user  string
	ue    pkt.Addr
	track TrackSnapshot
	bytes int
}

// outTransfer is the old backend's bookkeeping for one in-progress
// outbound state transfer.
type outTransfer struct {
	dest  pkt.Addr
	ue    pkt.Addr
	track TrackSnapshot
	total int
	sent  int
	seq   int
}

// migrateDone (new backend -> UE) resumes the frontend's frame loop.
type migrateDone struct {
	user  string
	bytes int
}

// migrateStateBytes sizes the frozen state: the fixed session context, the
// landmark history, and the feature-DB slice the new site needs — the
// objects within the pruning radius of the user's last estimate (the whole
// database when no estimate exists, since nothing bounds the search).
func (b *ARBackend) migrateStateBytes(snap TrackSnapshot) int {
	n := migrateSessionCtxBytes + 24*len(snap.Landmarks)
	var ids []int
	if snap.HasEst {
		ids = b.floor.SubsectionsNear(snap.Est, PruneRadius)
	}
	for _, o := range b.db.InSubsections(ids) {
		// Per feature: one descriptor (float32 x DescriptorDim) + keypoint.
		n += len(o.Features.Descriptors) * (vision.DescriptorDim*4 + 16)
	}
	return n
}

// onMigrate is the backend's MigratePort handler, covering both roles: the
// new site (fetch in, state in) and the old site (pull in).
func (b *ARBackend) onMigrate(_ *netsim.Host, p *netsim.Packet) {
	switch msg := p.Payload.(type) {
	case migrateFetch:
		// This site is the user's new anchor: un-quiesce it here whatever
		// the transfer's outcome.
		delete(b.migratedAway, msg.user)
		ue := p.Flow.Src
		if msg.from.IsZero() || msg.from == b.Host.Node.Addr() {
			// Nothing to pull: resume the frontend immediately.
			b.Host.Send(ue, MigratePort, MigratePort, pkt.ProtoTCP, 64, migrateDone{user: msg.user})
			return
		}
		b.Host.Send(msg.from, MigratePort, MigratePort, pkt.ProtoTCP, 128, migratePull{
			user: msg.user, dest: b.Host.Node.Addr(), ue: ue,
		})
	case migratePull:
		// Freeze: export the user's track (removing it here) and start the
		// acked chunk train sized as the real state transfer.
		var snap TrackSnapshot
		if b.lm != nil {
			snap, _ = b.lm.Export(msg.user)
		}
		size := b.migrateStateBytes(snap)
		b.migratedAway[msg.user] = true
		b.MigrationsOut++
		b.migrationsOutCtr.Inc()
		b.eng.Metrics().Scope("core/migrate").Emit("freeze",
			fmt.Sprintf("%s %s -> %v (%d bytes)", msg.user, b.Host.Node.Name(), msg.dest, size))
		b.migratingOut[msg.user] = &outTransfer{
			dest: msg.dest, ue: msg.ue, track: snap, total: size,
		}
		b.sendNextChunk(msg.user)
	case migrateChunk:
		b.Host.Send(p.Flow.Src, MigratePort, MigratePort, pkt.ProtoTCP, 64, migrateChunkAck{
			user: msg.user, seq: msg.seq,
		})
	case migrateChunkAck:
		tr := b.migratingOut[msg.user]
		if tr == nil || msg.seq != tr.seq-1 {
			return
		}
		b.sendNextChunk(msg.user)
	case migrateState:
		// Resume: install the track so pruning works on the first frame,
		// and un-quiesce the user in case it is migrating back here.
		delete(b.migratedAway, msg.user)
		if b.lm != nil {
			b.lm.Import(msg.user, msg.track)
		}
		b.MigrationsIn++
		b.migrationsInCtr.Inc()
		b.eng.Metrics().Scope("core/migrate").Emit("resume",
			fmt.Sprintf("%s at %s (%d bytes)", msg.user, b.Host.Node.Name(), msg.bytes))
		b.Host.Send(msg.ue, MigratePort, MigratePort, pkt.ProtoTCP, 64, migrateDone{
			user: msg.user, bytes: msg.bytes,
		})
	}
}

// sendNextChunk offers the next stop-and-wait segment of user's outbound
// transfer: a full chunk while more than one remains, then the final
// migrateState carrying the snapshot and whatever size is left.
func (b *ARBackend) sendNextChunk(user string) {
	tr := b.migratingOut[user]
	if tr == nil {
		return
	}
	if rem := tr.total - tr.sent; rem > migrateChunkBytes {
		b.Host.Send(tr.dest, MigratePort, MigratePort, pkt.ProtoTCP, migrateChunkBytes,
			migrateChunk{user: user, seq: tr.seq})
		tr.sent += migrateChunkBytes
		tr.seq++
		return
	}
	b.Host.Send(tr.dest, MigratePort, MigratePort, pkt.ProtoTCP, tr.total-tr.sent, migrateState{
		user: user, ue: tr.ue, track: tr.track, bytes: tr.total,
	})
	delete(b.migratingOut, user)
}

// relocateTo pauses the frame loop and starts the pull-based migration
// toward the new server. A watchdog bounds the pause: if the migration
// stalls (lossy inter-site path, dead old site), the session resumes cold
// rather than hanging.
func (f *ARFrontend) relocateTo(old, server pkt.Addr) {
	if f.migrating {
		return
	}
	f.migrating = true
	f.migrateStart = f.eng.Now()
	// The in-flight frame (closed loop: at most one pending) was addressed
	// to the old site, whose dedicated bearer is already torn down: count
	// it lost now instead of letting its 2 s timeout linger into the
	// resumed loop and double-start the chain.
	if tm, ok := f.pending[f.seq]; ok {
		tm.timeout.Cancel()
		delete(f.pending, f.seq)
		f.Timeouts++
	}
	f.ue.Send(server, uint16(MigratePort), MigratePort, pkt.ProtoTCP, 64, migrateFetch{
		user: f.user, from: old,
	})
	f.migrateWatch = f.eng.Schedule(f.FrameTimeout, func() {
		if !f.migrating {
			return
		}
		f.migrating = false
		f.MigrationTimeouts++
		f.resumeFrames()
	})
}

// resumeFrames restarts the closed loop after migration, unless a pending
// frame is still in flight — then its own response/timeout continues the
// loop, keeping exactly one chain alive.
func (f *ARFrontend) resumeFrames() {
	if f.running && len(f.pending) == 0 {
		f.captureAndSend()
	}
}

// onMigrateDone resumes the frame loop after a completed migration and
// observes the continuity gap (time since the last frame response) against
// the migrated state size.
func (f *ARFrontend) onMigrateDone(_ *netsim.Host, p *netsim.Packet) {
	msg, ok := p.Payload.(migrateDone)
	if !ok || msg.user != f.user || !f.migrating {
		return
	}
	f.migrating = false
	f.migrateWatch.Cancel()
	f.Migrations++
	f.MigratedBytes += uint64(msg.bytes)
	f.MigrateTransferMS = f.eng.Now().Sub(f.migrateStart).Seconds() * 1000
	gapMS := f.eng.Now().Sub(f.lastRespAt).Seconds() * 1000
	f.migrateGapHist.Observe(gapMS)
	f.migrateSizeHist.Observe(float64(msg.bytes) / 1024)
	f.eng.Metrics().Scope("core/migrate").Emit("done",
		fmt.Sprintf("%s gap %.1fms state %d bytes", f.user, gapMS, msg.bytes))
	if f.running {
		f.captureAndSend()
	}
}
