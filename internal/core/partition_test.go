package core

import (
	"testing"
	"time"
)

// TestIntraParallelMatchesSequential is the byte-identity contract for the
// partitioned testbed (DESIGN.md §3g): the retail scenario must produce the
// same frame counts, latency statistics, accounting totals and merged
// telemetry whether the edge-1 site shares the core's event queue
// (IntraParallel = 0), runs on its own partition advanced in conservative
// windows (1), or runs those windows on a worker gang (2).
func TestIntraParallelMatchesSequential(t *testing.T) {
	type result struct {
		responses uint64
		total     float64
		match     float64
		acct      uint64
		metrics   string
		events    int
	}
	run := func(ip int) result {
		tb := newRetailTestbed(t, TestbedConfig{Seed: 31415, IntraParallel: ip})
		if (tb.Cluster != nil) != (ip > 0) {
			t.Fatalf("IntraParallel=%d: cluster presence wrong", ip)
		}
		b := startRetail(t, tb, "electronics", electronicsSpot)
		tb.Run(15 * time.Second)
		snap := tb.MetricsSnapshot()
		return result{
			responses: b.Frontend.Responses,
			total:     b.Frontend.Stats.Total.Mean(),
			match:     b.Frontend.Stats.Match.Mean(),
			acct:      tb.EPC.Acct.TotalBytes(),
			metrics:   snap.String(),
			events:    len(snap.Events),
		}
	}
	seq := run(0)
	if seq.responses == 0 {
		t.Fatal("sequential run produced no AR responses")
	}
	for _, ip := range []int{1, 2} {
		got := run(ip)
		if got.responses != seq.responses || got.total != seq.total ||
			got.match != seq.match || got.acct != seq.acct {
			t.Errorf("IntraParallel=%d diverged: responses %d vs %d, total %v vs %v, match %v vs %v, acct %d vs %d",
				ip, got.responses, seq.responses, got.total, seq.total,
				got.match, seq.match, got.acct, seq.acct)
		}
		if got.events != seq.events {
			t.Errorf("IntraParallel=%d: %d timeline events vs %d sequential", ip, got.events, seq.events)
		}
		if got.metrics != seq.metrics {
			t.Errorf("IntraParallel=%d: merged metrics table differs from sequential\n--- sequential ---\n%s--- partitioned ---\n%s",
				ip, seq.metrics, got.metrics)
		}
	}
}

// TestIntraParallelForbidsExtraSites pins the documented limitation: failover
// sites share localization state with the partitioned edge-1 backend, so
// AddEdgeSite must refuse to run under a cluster rather than silently racing.
func TestIntraParallelForbidsExtraSites(t *testing.T) {
	tb := newRetailTestbed(t, TestbedConfig{IntraParallel: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdgeSite under IntraParallel did not panic")
		}
	}()
	tb.AddEdgeSite("edge-2")
}
