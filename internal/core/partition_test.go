package core

import (
	"testing"
	"time"
)

// TestIntraParallelMatchesSequential is the byte-identity contract for the
// partitioned testbed (DESIGN.md §3g): the retail scenario must produce the
// same frame counts, latency statistics, accounting totals and merged
// telemetry whether the edge-1 site shares the core's event queue
// (IntraParallel = 0), runs on its own partition advanced in conservative
// windows (1), or runs those windows on a worker gang (2).
func TestIntraParallelMatchesSequential(t *testing.T) {
	type result struct {
		responses uint64
		total     float64
		match     float64
		acct      uint64
		metrics   string
		events    int
	}
	run := func(ip int) result {
		tb := newRetailTestbed(t, TestbedConfig{Seed: 31415, IntraParallel: ip})
		if (tb.Cluster != nil) != (ip > 0) {
			t.Fatalf("IntraParallel=%d: cluster presence wrong", ip)
		}
		b := startRetail(t, tb, "electronics", electronicsSpot)
		tb.Run(15 * time.Second)
		snap := tb.MetricsSnapshot()
		return result{
			responses: b.Frontend.Responses,
			total:     b.Frontend.Stats.Total.Mean(),
			match:     b.Frontend.Stats.Match.Mean(),
			acct:      tb.EPC.Acct.TotalBytes(),
			metrics:   snap.String(),
			events:    len(snap.Events),
		}
	}
	seq := run(0)
	if seq.responses == 0 {
		t.Fatal("sequential run produced no AR responses")
	}
	for _, ip := range []int{1, 2} {
		got := run(ip)
		if got.responses != seq.responses || got.total != seq.total ||
			got.match != seq.match || got.acct != seq.acct {
			t.Errorf("IntraParallel=%d diverged: responses %d vs %d, total %v vs %v, match %v vs %v, acct %d vs %d",
				ip, got.responses, seq.responses, got.total, seq.total,
				got.match, seq.match, got.acct, seq.acct)
		}
		if got.events != seq.events {
			t.Errorf("IntraParallel=%d: %d timeline events vs %d sequential", ip, got.events, seq.events)
		}
		if got.metrics != seq.metrics {
			t.Errorf("IntraParallel=%d: merged metrics table differs from sequential\n--- sequential ---\n%s--- partitioned ---\n%s",
				ip, seq.metrics, got.metrics)
		}
	}
}

// TestIntraParallelAddEdgeSiteMatchesSequential extends the identity
// contract to AddEdgeSite: localization state is site-local, so every added
// site runs on its own partition and the multi-site retail scenario must
// replay byte-identically across IntraParallel = 0, 1 and a gang.
func TestIntraParallelAddEdgeSiteMatchesSequential(t *testing.T) {
	type result struct {
		responses uint64
		total     float64
		acct      uint64
		metrics   string
		events    int
	}
	run := func(ip int) result {
		tb := newRetailTestbed(t, TestbedConfig{Seed: 27182, IntraParallel: ip})
		s2 := tb.AddEdgeSite("edge-2")
		s3 := tb.AddEdgeSite("edge-3")
		if tb.Cluster != nil {
			if got, want := len(tb.Cluster.Engines()), 4; got != want {
				t.Fatalf("IntraParallel=%d: %d partition engines, want %d (core + 3 sites)", ip, got, want)
			}
		}
		b := startRetail(t, tb, "electronics", electronicsSpot)
		tb.Run(10 * time.Second)
		for _, s := range []*SiteBundle{s2, s3} {
			if s.Loc == tb.Loc || s.Backend == tb.EdgeBackend {
				t.Fatalf("site %s shares edge-1 state", s.Name)
			}
		}
		snap := tb.MetricsSnapshot()
		return result{
			responses: b.Frontend.Responses,
			total:     b.Frontend.Stats.Total.Mean(),
			acct:      tb.EPC.Acct.TotalBytes(),
			metrics:   snap.String(),
			events:    len(snap.Events),
		}
	}
	seq := run(0)
	if seq.responses == 0 {
		t.Fatal("sequential run produced no AR responses")
	}
	for _, ip := range []int{1, 3} {
		got := run(ip)
		if got.responses != seq.responses || got.total != seq.total || got.acct != seq.acct {
			t.Errorf("IntraParallel=%d diverged: responses %d vs %d, total %v vs %v, acct %d vs %d",
				ip, got.responses, seq.responses, got.total, seq.total, got.acct, seq.acct)
		}
		if got.events != seq.events {
			t.Errorf("IntraParallel=%d: %d timeline events vs %d sequential", ip, got.events, seq.events)
		}
		if got.metrics != seq.metrics {
			t.Errorf("IntraParallel=%d: merged metrics table differs from sequential\n--- sequential ---\n%s--- partitioned ---\n%s",
				ip, seq.metrics, got.metrics)
		}
	}
}
