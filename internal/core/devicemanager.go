package core

import (
	"fmt"
	"time"

	"acacia/internal/d2d"
	"acacia/internal/epc"
	"acacia/internal/pkt"
)

// ServiceInfo mirrors the Android Parcelable the prototype exchanges
// between CI applications and the device manager: the user's interest
// expression and, on discovery, the matched message with its radio
// measurements.
type ServiceInfo struct {
	// ServiceName is the CI service (LTE-direct service name).
	ServiceName string
	// Interest is the modem filter expression for the user's interest
	// (e.g. "laptops" within the retail service). A match triggers MEC
	// connectivity setup.
	Interest d2d.Expression
	// ServiceWide, when non-zero, is an additional broader subscription
	// whose matches are forwarded to the application without triggering
	// connectivity — the retail app uses it to hear every landmark of the
	// store for localization.
	ServiceWide d2d.Expression
}

// Discovery is a matched service discovery delivered to a CI application.
type Discovery struct {
	ServiceInfo ServiceInfo
	Message     d2d.DiscoveryMessage
}

// CIApp is the interface a CI application registers with the device
// manager: discovery notifications and connectivity lifecycle callbacks.
type CIApp interface {
	// OnDiscovery is invoked for every matching service discovery message
	// (after the first one has triggered connectivity setup).
	OnDiscovery(d Discovery)
	// OnConnected is invoked when the dedicated MEC bearer toward server
	// is live and the application may start using its CI server.
	OnConnected(server pkt.Addr)
	// OnDisconnected is invoked after connectivity release or setup
	// failure (err non-nil on failure).
	OnDisconnected(err error)
}

// DeviceManager is the ACACIA on-device daemon: it proxies discovery
// between CI applications and the LTE-direct modem, and manages MEC
// connectivity on demand — requesting a dedicated bearer from the MRS on
// the first interest match and releasing it when the application exits.
type DeviceManager struct {
	ue      *epc.UE
	dev     *d2d.Device
	mrs     *MRS
	enbName string

	apps map[string]*appState

	// Matches counts interest matches delivered to applications.
	Matches uint64
}

type appState struct {
	info      ServiceInfo
	app       CIApp
	sub       *d2d.Subscription
	wideSub   *d2d.Subscription
	requested bool
	connected bool
	server    pkt.Addr
	// attempts counts consecutive failed connectivity requests for the
	// capped-backoff retry; retryPending guards against stacking timers.
	attempts     int
	retryPending bool
}

// Capped deterministic backoff for failed MRS requests: 500ms, 1s, 2s,
// then 4s per attempt up to retryMaxAttempts, after which the device
// manager gives up until the next discovery match or manual trigger. The
// schedule is a pure function of the attempt count — no RNG — so retries
// replay identically across runs.
const (
	retryBase        = 500 * time.Millisecond
	retryCap         = 4 * time.Second
	retryMaxAttempts = 8
)

// NewDeviceManager creates the daemon for a UE with its LTE-direct device.
// enbName tells the MRS which base station the UE is served by (context the
// network side already has; passed explicitly here).
func NewDeviceManager(ue *epc.UE, dev *d2d.Device, mrs *MRS, enbName string) *DeviceManager {
	return &DeviceManager{
		ue: ue, dev: dev, mrs: mrs, enbName: enbName,
		apps: make(map[string]*appState),
	}
}

// Register binds a CI application: the device manager installs the modem
// subscription for its interest. The first match triggers connectivity
// setup; all matches are forwarded to the application.
func (dm *DeviceManager) Register(info ServiceInfo, app CIApp) error {
	if _, dup := dm.apps[info.ServiceName]; dup {
		return fmt.Errorf("core: service %q already registered", info.ServiceName)
	}
	st := &appState{info: info, app: app}
	st.sub = dm.dev.Subscribe(info.Interest, func(msg d2d.DiscoveryMessage) {
		dm.onMatch(st, msg)
	})
	if info.ServiceWide != (d2d.Expression{}) {
		st.wideSub = dm.dev.Subscribe(info.ServiceWide, func(msg d2d.DiscoveryMessage) {
			// Broad matches inform the application (localization input)
			// but never trigger connectivity. Skip duplicates the interest
			// subscription already delivers.
			if st.info.Interest.Matches(msg.Code) {
				return
			}
			dm.Matches++
			st.app.OnDiscovery(Discovery{ServiceInfo: st.info, Message: msg})
		})
	}
	dm.apps[info.ServiceName] = st
	return nil
}

// Unregister releases the application's subscription and MEC connectivity.
func (dm *DeviceManager) Unregister(serviceName string) error {
	st, ok := dm.apps[serviceName]
	if !ok {
		return fmt.Errorf("core: service %q not registered", serviceName)
	}
	st.sub.Cancel()
	if st.wideSub != nil {
		st.wideSub.Cancel()
	}
	st.requested = false // disarm any pending backoff retry
	delete(dm.apps, serviceName)
	if st.connected {
		dm.mrs.ReleaseConnectivity(dm.ue.Addr(), func(err error) {
			st.app.OnDisconnected(err)
		})
	}
	return nil
}

// onMatch handles a modem-filtered discovery match.
func (dm *DeviceManager) onMatch(st *appState, msg d2d.DiscoveryMessage) {
	dm.Matches++
	st.app.OnDiscovery(Discovery{ServiceInfo: st.info, Message: msg})
	if st.requested {
		return
	}
	// First match: establish MEC connectivity on demand. This is the
	// design point that avoids a second always-on bearer — the extra
	// bearer exists only while a matching service is nearby and wanted.
	st.requested = true
	dm.requestConnectivity(st)
}

// requestConnectivity runs the MRS procedure for an application. The
// callback outlives the call: the MRS re-invokes it when failover moves
// the binding (new server, nil error) or fails (error), so it doubles as
// the session-resume path — errors feed the capped-backoff retry instead
// of abandoning the session.
func (dm *DeviceManager) requestConnectivity(st *appState) {
	dm.mrs.RequestConnectivity(st.info.ServiceName, dm.ue.Addr(), dm.enbName, func(server pkt.Addr, err error) {
		if err != nil {
			st.connected = false
			st.app.OnDisconnected(err)
			dm.scheduleRetry(st)
			return
		}
		st.attempts = 0
		st.connected = true
		st.server = server
		st.app.OnConnected(server)
	})
}

// scheduleRetry arms the next backoff attempt after a failed request.
func (dm *DeviceManager) scheduleRetry(st *appState) {
	if !st.requested || st.connected || st.retryPending {
		return
	}
	if st.attempts >= retryMaxAttempts {
		// Out of budget: drop the request so a later discovery match or
		// manual trigger starts fresh.
		st.requested = false
		st.attempts = 0
		return
	}
	delay := retryBase << st.attempts
	if delay > retryCap {
		delay = retryCap
	}
	st.attempts++
	st.retryPending = true
	dm.ue.Host.Node.Engine().Schedule(delay, func() {
		st.retryPending = false
		if !st.requested || st.connected {
			return
		}
		dm.requestConnectivity(st)
	})
}

// Connected reports whether the named application currently has MEC
// connectivity.
func (dm *DeviceManager) Connected(serviceName string) bool {
	st := dm.apps[serviceName]
	return st != nil && st.connected
}

// TriggerManually requests MEC connectivity for a registered application
// without waiting for a proximity discovery match — the paper's §8 "ACACIA
// without proximity service discovery" mode, where launching the
// application itself is the trigger.
func (dm *DeviceManager) TriggerManually(serviceName string) error {
	st, ok := dm.apps[serviceName]
	if !ok {
		return fmt.Errorf("core: service %q not registered", serviceName)
	}
	if st.requested {
		return nil // already triggered (by discovery or manually)
	}
	st.requested = true
	dm.requestConnectivity(st)
	return nil
}
