package core

import (
	"time"

	"acacia/internal/compute"
	"acacia/internal/geo"
	"acacia/internal/media"
	"acacia/internal/netsim"
	"acacia/internal/pkt"
	"acacia/internal/sim"
	"acacia/internal/stats"
	"acacia/internal/telemetry"
	"acacia/internal/vision"
)

// Scheme selects the AR back-end's search-space strategy (§7.3).
type Scheme uint8

// Search-space schemes. SchemeACACIA is the zero value: an unset scheme
// means the full system.
const (
	// SchemeACACIA prunes to the subsections around the trilaterated user
	// position.
	SchemeACACIA Scheme = iota
	// SchemeRxPower prunes to the sections of the two strongest-rxPower
	// landmarks.
	SchemeRxPower
	// SchemeNaive searches the entire database (the CLOUD and MEC
	// baselines).
	SchemeNaive
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case SchemeNaive:
		return "Naive"
	case SchemeRxPower:
		return "rxPower"
	case SchemeACACIA:
		return "ACACIA"
	default:
		return "Scheme?"
	}
}

// ARPort is the CI server port the AR back-end listens on; LocPort receives
// localization reports.
const (
	ARPort  = 7000
	LocPort = 7001
)

// DBObjectFeatures is the stored feature count per database object,
// calibrated so a Naive search over the 105-object database at 720x480 on
// the eight-core i7 lands near the paper's ≈0.6 s (Fig. 11(a)).
const DBObjectFeatures = 200

// PruneRadius is the ACACIA search radius in meters around the estimated
// position: 2.5x the ≈3 m localization error, which covers the user's true
// subsection while keeping the search at the paper's 2-6 of 21 cells.
const PruneRadius = 7.5

// arFrameReq is the uplink frame payload.
type arFrameReq struct {
	user       string
	seq        int
	res        compute.Resolution
	truePos    geo.Point
	sentAt     sim.Time
	compressMS float64
}

// ARFrameResult is the downlink result payload (exposed through
// ARFrontend.OnResponse so experiments can observe per-frame outcomes).
type ARFrameResult struct {
	seq        int
	found      bool
	object     string
	matchMS    float64
	serverMS   float64 // decode + SURF (compute component on the server)
	candidates int
}

type locReport struct {
	user     string
	landmark string
	rxPower  float64
}

// ARBackend is the CI-server application: it decodes frames, extracts
// features, searches the geo-tagged database under its scheme, and replies
// with the match result. Processing runs on a processor-sharing compute
// server so concurrent clients slow each other down as in Fig. 12.
type ARBackend struct {
	Host   *netsim.Host
	eng    *sim.Engine
	dev    compute.Device
	srv    *compute.Server
	scheme Scheme
	floor  *geo.Floor
	db     *vision.DB
	lm     *LocalizationManager

	// Frames and Misses count served frames and no-match responses.
	Frames, Misses uint64
	// MigrationsOut counts sessions frozen and shipped away from this site;
	// MigrationsIn counts sessions resumed here (see migration.go).
	MigrationsOut, MigrationsIn uint64
	// CandidateStats samples the per-frame candidate-object counts.
	CandidateStats stats.Sample

	// migratingOut tracks in-progress outbound state transfers by user.
	migratingOut map[string]*outTransfer
	// migratedAway quiesces users whose state was frozen and shipped off
	// this site: frames and landmark reports still in flight toward the old
	// CI server are dropped instead of answered, because the reply path —
	// the user's dedicated bearer here — is already torn down. A user
	// migrating back is removed on the inbound state transfer.
	migratedAway map[string]bool

	// Registry mirrors under core/backend/<host>/.
	framesCtr, missesCtr              *telemetry.Counter
	migrationsOutCtr, migrationsInCtr *telemetry.Counter
}

// NewARBackend attaches an AR back-end to host, computing on dev under the
// given scheme. The localization manager may be nil for SchemeNaive.
func NewARBackend(host *netsim.Host, dev compute.Device, scheme Scheme, floor *geo.Floor, db *vision.DB, lm *LocalizationManager) *ARBackend {
	b := &ARBackend{
		Host: host, eng: host.Engine(), dev: dev,
		srv:    compute.NewServer(host.Engine(), dev),
		scheme: scheme, floor: floor, db: db, lm: lm,
		migratingOut: make(map[string]*outTransfer),
		migratedAway: make(map[string]bool),
	}
	scope := host.Engine().Metrics().Scope("core/backend").Scope(host.Node.Name())
	b.framesCtr = scope.Counter("frames")
	b.missesCtr = scope.Counter("misses")
	b.migrationsOutCtr = scope.Counter("migrations-out")
	b.migrationsInCtr = scope.Counter("migrations-in")
	host.Listen(ARPort, netsim.AppFunc(b.onFrame))
	host.Listen(LocPort, netsim.AppFunc(b.onLocReport))
	host.Listen(MigratePort, netsim.AppFunc(b.onMigrate))
	return b
}

// Scheme reports the backend's search scheme.
func (b *ARBackend) Scheme() Scheme { return b.scheme }

func (b *ARBackend) onLocReport(_ *netsim.Host, p *netsim.Packet) {
	rep, ok := p.Payload.(locReport)
	if !ok || b.lm == nil || b.migratedAway[rep.user] {
		return
	}
	b.lm.Report(rep.user, rep.landmark, rep.rxPower)
}

// candidateSubsections resolves the scheme's search space for a user.
// A nil slice means the whole database.
func (b *ARBackend) candidateSubsections(user string) []int {
	switch b.scheme {
	case SchemeACACIA:
		if b.lm != nil {
			if est, ok := b.lm.Estimate(user); ok {
				return b.floor.SubsectionsNear(est, PruneRadius)
			}
		}
		return nil // no estimate yet: fall back to full search
	case SchemeRxPower:
		if b.lm != nil {
			names := b.lm.StrongestLandmarks(user, 2)
			var sections []string
			for _, n := range names {
				if l := b.floor.Landmark(n); l != nil {
					sections = append(sections, l.Section)
				}
			}
			if len(sections) > 0 {
				return b.floor.SubsectionsOfSections(sections...)
			}
		}
		return nil
	default:
		return nil
	}
}

func (b *ARBackend) onFrame(_ *netsim.Host, p *netsim.Packet) {
	req, ok := p.Payload.(arFrameReq)
	if !ok || b.migratedAway[req.user] {
		return
	}
	b.Frames++
	b.framesCtr.Inc()

	// Stage 1: decode + SURF on the server.
	pixels := req.res.Pixels()
	serverPrep := b.dev.JPEGTime(pixels) + b.dev.SURFTime(pixels)
	prepWork := serverPrep.Seconds() * b.dev.MatchMACsPerSec

	// Stage 2: match against the (pruned) database.
	subs := b.candidateSubsections(req.user)
	cands := b.db.InSubsections(subs)
	nCand := len(cands)
	b.CandidateStats.Add(float64(nCand))
	qFeatures := req.res.Features()
	// Forward + symmetric reverse k-NN scans over every candidate object.
	matchWork := qFeatures * DBObjectFeatures * vision.DescriptorDim * 2 * float64(nCand)

	// Ground truth: the frame shows an object in the user's subsection; a
	// search finds it iff that subsection is in the candidate set.
	found := false
	object := ""
	if ss := b.floor.SubsectionAt(req.truePos); ss != nil {
		if subs == nil {
			found = true
		} else {
			for _, id := range subs {
				if id == ss.ID {
					found = true
					break
				}
			}
		}
		if found {
			if objs := b.db.InSubsections([]int{ss.ID}); len(objs) > 0 {
				object = objs[0].Name
			}
		}
	}
	if !found {
		b.Misses++
		b.missesCtr.Inc()
	}

	reply := p.Flow.Reverse()
	b.srv.Submit(&compute.Job{Work: prepWork, Done: func(prepElapsed time.Duration) {
		b.srv.Submit(&compute.Job{Work: matchWork, Done: func(matchElapsed time.Duration) {
			// The user may have migrated away while the frame was in
			// compute; its bearer here is gone, so the reply has no path.
			if b.migratedAway[req.user] {
				return
			}
			b.Host.Node.Inject(&netsim.Packet{
				Flow: reply,
				Size: 300,
				Payload: ARFrameResult{
					seq: req.seq, found: found, object: object,
					matchMS:    float64(matchElapsed) / float64(time.Millisecond),
					serverMS:   float64(prepElapsed) / float64(time.Millisecond),
					candidates: nCand,
				},
			})
		}})
	}})
}

// FrameStats aggregates the per-frame component latencies an AR session
// observed, all in milliseconds (Fig. 13's decomposition).
type FrameStats struct {
	Match   stats.Sample // server-side match time
	Compute stats.Sample // phone compress + server decode/SURF
	Network stats.Sample // transport (upload + downlink response)
	Total   stats.Sample // end-to-end per frame
}

// ARFrontend is the on-UE application: it paces frames at the camera rate,
// compresses them (JPEG 90 grayscale), uploads them to the CI server, and
// decomposes per-frame latency. It also implements CIApp so a device
// manager can drive it: discovery messages produce localization reports,
// and frame upload starts on connectivity.
type ARFrontend struct {
	ue     *netsim.Host
	eng    *sim.Engine
	user   string
	res    compute.Resolution
	phone  compute.Device
	server pkt.Addr
	pos    geo.Point

	seq     int
	pending map[int]frameTiming
	running bool

	// Migration state (see migration.go): the frame loop pauses between
	// relocation detection and migrateDone.
	migrating    bool
	migrateStart sim.Time
	migrateWatch *sim.Event
	lastRespAt   sim.Time

	// FrameTimeout bounds how long the closed loop waits for a response
	// before abandoning the frame and capturing the next (losses during
	// handover or congestion must not stall the session). Default 2 s.
	FrameTimeout time.Duration

	// Stats collects component latencies.
	Stats FrameStats
	// Responses counts results; Found counts successful matches; Timeouts
	// counts frames abandoned without a response.
	Responses, Found, Timeouts uint64
	// Migrations counts completed state migrations; MigratedBytes sums the
	// shipped state; MigrationTimeouts counts watchdog-resumed sessions.
	Migrations, MigratedBytes, MigrationTimeouts uint64
	// MigrateTransferMS is the last completed migration's duration, from
	// the fetch request to the done notification (pure protocol + transfer
	// time, free of frame-cadence phase).
	MigrateTransferMS float64
	// OnResponse, when set, observes every result.
	OnResponse func(ARFrameResult)

	// Per-stage latency histograms, shared across all frontends of the
	// engine under core/session/stage/ (the Fig. 13 decomposition as
	// always-on telemetry), plus the migration continuity-gap/state-size
	// pair under core/session/migrate/.
	matchHist, computeHist, networkHist, totalHist *telemetry.Histogram
	migrateGapHist, migrateSizeHist                *telemetry.Histogram
}

type frameTiming struct {
	sentAt     sim.Time
	compressMS float64
	timeout    *sim.Event
}

// NewARFrontend creates a front-end for the UE host. pos is the user's
// (ground-truth) position, used to label frames with the photographed
// object's location.
func NewARFrontend(ue *netsim.Host, user string, res compute.Resolution, pos geo.Point) *ARFrontend {
	f := &ARFrontend{
		ue: ue, eng: ue.Engine(), user: user, res: res,
		phone:        compute.OnePlusOne,
		pending:      make(map[int]frameTiming),
		FrameTimeout: 2 * time.Second,
	}
	stage := ue.Engine().Metrics().Scope("core/session/stage")
	f.matchHist = stage.Histogram("match-ms")
	f.computeHist = stage.Histogram("compute-ms")
	f.networkHist = stage.Histogram("network-ms")
	f.totalHist = stage.Histogram("total-ms")
	migrate := ue.Engine().Metrics().Scope("core/session/migrate")
	f.migrateGapHist = migrate.Histogram("gap-ms")
	f.migrateSizeHist = migrate.Histogram("state-kb")
	ue.Listen(ARPort, netsim.AppFunc(f.onResponse))
	ue.Listen(MigratePort, netsim.AppFunc(f.onMigrateDone))
	return f
}

// SetPos moves the user (the frames' ground-truth location follows).
func (f *ARFrontend) SetPos(p geo.Point) { f.pos = p }

// Pos reports the user's current position.
func (f *ARFrontend) Pos() geo.Point { return f.pos }

// Server reports the CI server currently in use.
func (f *ARFrontend) Server() pkt.Addr { return f.server }

// Start begins the closed-loop frame pipeline toward server: each frame is
// captured at the camera rate, compressed, uploaded; the next frame starts
// after the response (or the next camera slot, whichever is later). A
// running session re-Started with a different server (the MRS relocated its
// binding) migrates its backend state before resuming (migration.go).
func (f *ARFrontend) Start(server pkt.Addr) {
	old := f.server
	f.server = server
	if f.running {
		if server != old && !old.IsZero() {
			f.relocateTo(old, server)
		}
		return
	}
	f.running = true
	f.lastRespAt = f.eng.Now()
	f.captureAndSend()
}

// Stop halts the pipeline after the current frame.
func (f *ARFrontend) Stop() { f.running = false }

func (f *ARFrontend) captureAndSend() {
	if !f.running || f.migrating {
		return
	}
	// Camera delivers the frame, then the phone compresses it.
	compress := f.phone.JPEGTime(f.res.Pixels())
	f.eng.Schedule(compress, func() {
		if !f.running || f.migrating {
			return
		}
		f.seq++
		seq := f.seq
		f.pending[seq] = frameTiming{
			sentAt:     f.eng.Now(),
			compressMS: float64(compress) / float64(time.Millisecond),
			timeout: f.eng.Schedule(f.FrameTimeout, func() {
				if _, still := f.pending[seq]; !still {
					return
				}
				delete(f.pending, seq)
				f.Timeouts++
				f.captureAndSend()
			}),
		}
		f.ue.Send(f.server, uint16(ARPort), ARPort, pkt.ProtoTCP, media.AppFrameBytes(f.res), arFrameReq{
			user: f.user, seq: seq, res: f.res,
			truePos: f.pos, sentAt: f.eng.Now(),
			compressMS: float64(compress) / float64(time.Millisecond),
		})
	})
}

func (f *ARFrontend) onResponse(_ *netsim.Host, p *netsim.Packet) {
	resp, ok := p.Payload.(ARFrameResult)
	if !ok {
		return
	}
	timing, pending := f.pending[resp.seq]
	if !pending {
		return
	}
	timing.timeout.Cancel()
	delete(f.pending, resp.seq)
	f.Responses++
	f.lastRespAt = f.eng.Now()
	if resp.found {
		f.Found++
	}

	rtMS := f.eng.Now().Sub(timing.sentAt).Seconds() * 1000
	networkMS := rtMS - resp.matchMS - resp.serverMS
	if networkMS < 0 {
		networkMS = 0
	}
	computeMS := timing.compressMS + resp.serverMS
	f.Stats.Match.Add(resp.matchMS)
	f.Stats.Compute.Add(computeMS)
	f.Stats.Network.Add(networkMS)
	f.Stats.Total.Add(timing.compressMS + rtMS)
	f.matchHist.Observe(resp.matchMS)
	f.computeHist.Observe(computeMS)
	f.networkHist.Observe(networkMS)
	f.totalHist.Observe(timing.compressMS + rtMS)
	if f.OnResponse != nil {
		f.OnResponse(resp)
	}
	// Closed loop: next frame.
	f.captureAndSend()
}

// --- CIApp wiring ---

// OnDiscovery forwards the matched landmark's measurement to the CI
// server's localization manager (through the network, on whatever bearer
// currently carries CI traffic).
func (f *ARFrontend) OnDiscovery(d Discovery) {
	if f.server.IsZero() {
		return
	}
	f.ue.Send(f.server, uint16(LocPort), LocPort, pkt.ProtoUDP, 64, locReport{
		user: f.user, landmark: d.Message.From, rxPower: d.Message.RxPowerDBm,
	})
}

// OnConnected starts the AR session toward the assigned CI server.
func (f *ARFrontend) OnConnected(server pkt.Addr) { f.Start(server) }

// OnDisconnected halts the session.
func (f *ARFrontend) OnDisconnected(error) { f.Stop() }
