package core

import (
	"testing"
	"time"

	"acacia/internal/d2d"
	"acacia/internal/geo"
	"acacia/internal/netsim"
	"acacia/internal/pkt"
	"acacia/internal/stats"
)

// electronicsSpot is a user position inside the electronics section, near
// landmark L4.
var electronicsSpot = geo.Point{X: 21, Y: 15}

func newRetailTestbed(t *testing.T, cfg TestbedConfig) *Testbed {
	t.Helper()
	if cfg.Seed == 0 {
		cfg.Seed = 2016
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = time.Hour // keep sessions up unless a test wants idling
	}
	return NewTestbed(cfg)
}

// startRetail attaches UE 0, positions it, registers the retail app and
// waits for connectivity.
func startRetail(t *testing.T, tb *Testbed, interest string, pos geo.Point) *UEBundle {
	t.Helper()
	b := tb.UEs[0]
	tb.MoveUE(b, pos)
	if err := tb.Attach(b); err != nil {
		t.Fatalf("attach: %v", err)
	}
	if err := tb.StartRetailApp(b, interest); err != nil {
		t.Fatalf("register: %v", err)
	}
	// Let discovery broadcasts, the MRS round trip and bearer setup run.
	tb.Run(5 * time.Second)
	return b
}

func TestRetailScenarioEndToEnd(t *testing.T) {
	tb := newRetailTestbed(t, TestbedConfig{})
	b := startRetail(t, tb, "electronics", electronicsSpot)

	if !b.DM.Connected(RetailServiceName) {
		t.Fatal("device manager never established MEC connectivity")
	}
	site := tb.MRS.Binding(b.UE.Addr())
	if site == nil || site.Name != "edge-1" {
		t.Fatalf("MRS binding = %+v", site)
	}
	if b.Frontend.Server() != tb.CIServer.Node.Addr() {
		t.Errorf("frontend server = %v", b.Frontend.Server())
	}

	// The dedicated bearer exists and carries CI traffic.
	sess := tb.EPC.Session(b.UE.IMSI)
	if len(sess.DedicatedBearers()) != 1 {
		t.Fatalf("dedicated bearers = %d", len(sess.DedicatedBearers()))
	}
	ciFlow := pkt.FiveTuple{Src: b.UE.Addr(), Dst: tb.CIServer.Node.Addr(), DstPort: ARPort, Proto: pkt.ProtoTCP}
	if ebi := b.UE.BearerFor(ciFlow, 0); ebi < 6 {
		t.Errorf("CI flow on bearer %d, want dedicated", ebi)
	}

	// Frames flowed and matched.
	tb.Run(20 * time.Second)
	if b.Frontend.Responses < 20 {
		t.Fatalf("responses = %d", b.Frontend.Responses)
	}
	if b.Frontend.Found != b.Frontend.Responses {
		t.Errorf("found %d of %d (ACACIA should have no false negatives)", b.Frontend.Found, b.Frontend.Responses)
	}
	// Edge traffic went through the edge switches.
	if tb.EdgeSGW.Stats().Encapsulated == 0 {
		t.Error("no CI traffic on the edge SGW-U")
	}
}

func TestLocalizationPipelineAccuracy(t *testing.T) {
	tb := newRetailTestbed(t, TestbedConfig{})
	b := startRetail(t, tb, "electronics", electronicsSpot)
	tb.Run(10 * time.Second)

	est, ok := tb.Loc.Estimate(b.Name)
	if !ok {
		t.Fatal("no localization estimate")
	}
	if err := est.Dist(electronicsSpot); err > PruneRadius {
		t.Errorf("localization error %.2f m exceeds prune radius", err)
	}
}

func TestSearchSpacePruning(t *testing.T) {
	tb := newRetailTestbed(t, TestbedConfig{})
	b := startRetail(t, tb, "electronics", electronicsSpot)
	tb.Run(20 * time.Second)

	if tb.EdgeBackend.CandidateStats.N() == 0 {
		t.Fatal("no frames served")
	}
	mean := tb.EdgeBackend.CandidateStats.Mean()
	// Paper: ACACIA searches 2-6 subsections of 21 => 10-30 of 105 objects.
	if mean < 5 || mean > 35 {
		t.Errorf("mean candidates = %.1f, want pruned set (10-30)", mean)
	}
	_ = b
}

func TestSchemesSearchSpaceOrdering(t *testing.T) {
	// Naive > rxPower > ACACIA in candidate count at the same position.
	counts := map[Scheme]float64{}
	for _, scheme := range []Scheme{SchemeNaive, SchemeRxPower, SchemeACACIA} {
		tb := newRetailTestbed(t, TestbedConfig{Scheme: scheme})
		startRetail(t, tb, "electronics", electronicsSpot)
		tb.Run(15 * time.Second)
		if tb.EdgeBackend.CandidateStats.N() == 0 {
			t.Fatalf("%v: no frames", scheme)
		}
		counts[scheme] = tb.EdgeBackend.CandidateStats.Mean()
	}
	if counts[SchemeNaive] != 105 {
		t.Errorf("Naive candidates = %v, want 105", counts[SchemeNaive])
	}
	if !(counts[SchemeACACIA] < counts[SchemeRxPower] && counts[SchemeRxPower] < counts[SchemeNaive]) {
		t.Errorf("ordering violated: %v", counts)
	}
}

func TestMatchLatencyOrdering(t *testing.T) {
	// The §7.3 result: ACACIA's match time beats rxPower beats Naive.
	match := map[Scheme]float64{}
	for _, scheme := range []Scheme{SchemeNaive, SchemeRxPower, SchemeACACIA} {
		tb := newRetailTestbed(t, TestbedConfig{Scheme: scheme})
		b := startRetail(t, tb, "electronics", electronicsSpot)
		tb.Run(30 * time.Second)
		if b.Frontend.Stats.Match.N() == 0 {
			t.Fatalf("%v: no match samples", scheme)
		}
		match[scheme] = b.Frontend.Stats.Match.Mean()
	}
	if !(match[SchemeACACIA] < match[SchemeRxPower] && match[SchemeRxPower] < match[SchemeNaive]) {
		t.Errorf("match ordering violated: %v", match)
	}
	speedup := match[SchemeNaive] / match[SchemeACACIA]
	if speedup < 3 || speedup > 12 {
		t.Errorf("ACACIA speedup over Naive = %.2fx, want ~5x", speedup)
	}
}

func TestCloudVsEdgeNetworkLatency(t *testing.T) {
	tb := newRetailTestbed(t, TestbedConfig{})
	b := startRetail(t, tb, "electronics", electronicsSpot)
	tb.Run(20 * time.Second)
	edgeNet := b.Frontend.Stats.Network.Mean()

	// Second testbed: frontend pointed straight at the cloud server over
	// the default bearer (the CLOUD baseline).
	tb2 := newRetailTestbed(t, TestbedConfig{})
	b2 := tb2.UEs[0]
	tb2.MoveUE(b2, electronicsSpot)
	if err := tb2.Attach(b2); err != nil {
		t.Fatal(err)
	}
	b2.Frontend.Start(tb2.CloudHosts["california"].Node.Addr())
	tb2.Run(30 * time.Second)
	if b2.Frontend.Responses == 0 {
		t.Fatal("no cloud responses")
	}
	cloudNet := b2.Frontend.Stats.Network.Mean()

	if cloudNet <= edgeNet {
		t.Errorf("cloud network %.1f ms <= edge %.1f ms", cloudNet, edgeNet)
	}
	// Paper: 3.15x network reduction vs CLOUD.
	ratio := cloudNet / edgeNet
	if ratio < 1.8 || ratio > 6 {
		t.Errorf("network ratio = %.2fx, want ≈3x", ratio)
	}
}

func TestUnregisterReleasesBearer(t *testing.T) {
	tb := newRetailTestbed(t, TestbedConfig{})
	b := startRetail(t, tb, "electronics", electronicsSpot)
	sess := tb.EPC.Session(b.UE.IMSI)
	if len(sess.DedicatedBearers()) != 1 {
		t.Fatalf("bearers = %d", len(sess.DedicatedBearers()))
	}
	if err := b.DM.Unregister(RetailServiceName); err != nil {
		t.Fatal(err)
	}
	tb.Run(2 * time.Second)
	if len(sess.DedicatedBearers()) != 0 {
		t.Error("dedicated bearer survived unregister")
	}
	if tb.MRS.Binding(b.UE.Addr()) != nil {
		t.Error("MRS binding survived unregister")
	}
	if b.Frontend.running {
		t.Error("frontend still running after unregister")
	}
}

func TestNoMatchNoBearer(t *testing.T) {
	// A user interested in a section with no nearby publisher match still
	// gets matches eventually (landmarks broadcast everywhere within
	// range), but a user interested in a *service* that no one publishes
	// never triggers connectivity.
	tb := newRetailTestbed(t, TestbedConfig{})
	b := tb.UEs[0]
	tb.MoveUE(b, electronicsSpot)
	if err := tb.Attach(b); err != nil {
		t.Fatal(err)
	}
	err := b.DM.Register(ServiceInfo{
		ServiceName: RetailServiceName,
		Interest:    d2dExprForService(0xBEEF), // some other chain's code
	}, b.Frontend)
	if err != nil {
		t.Fatal(err)
	}
	tb.Run(10 * time.Second)
	if b.DM.Connected(RetailServiceName) {
		t.Error("connectivity established without an interest match")
	}
	sess := tb.EPC.Session(b.UE.IMSI)
	if len(sess.DedicatedBearers()) != 0 {
		t.Error("dedicated bearer created without a match")
	}
}

func TestMRSUnknownService(t *testing.T) {
	tb := newRetailTestbed(t, TestbedConfig{})
	b := tb.UEs[0]
	if err := tb.Attach(b); err != nil {
		t.Fatal(err)
	}
	var gotErr error
	tb.MRS.RequestConnectivity("no-such-service", b.UE.Addr(), "enb", func(_ pkt.Addr, err error) {
		gotErr = err
	})
	tb.Run(time.Second)
	if gotErr == nil {
		t.Error("unknown service accepted")
	}
}

func TestMRSIdempotentRequests(t *testing.T) {
	tb := newRetailTestbed(t, TestbedConfig{})
	b := startRetail(t, tb, "electronics", electronicsSpot)
	sess := tb.EPC.Session(b.UE.IMSI)
	before := len(sess.DedicatedBearers())
	var second pkt.Addr
	tb.MRS.RequestConnectivity(RetailServiceName, b.UE.Addr(), "enb", func(a pkt.Addr, err error) {
		if err != nil {
			t.Errorf("repeat request: %v", err)
		}
		second = a
	})
	tb.Run(time.Second)
	if second != tb.CIServer.Node.Addr() {
		t.Errorf("repeat request returned %v", second)
	}
	if len(sess.DedicatedBearers()) != before {
		t.Error("repeat request created another bearer")
	}
}

func TestBackgroundTrafficIsolation(t *testing.T) {
	// The Fig. 10(b) mechanism: background load saturating the shared core
	// inflates default-bearer latency but leaves the dedicated edge path
	// untouched.
	tb := newRetailTestbed(t, TestbedConfig{})
	b := startRetail(t, tb, "electronics", electronicsSpot)

	bg := netsim.NewCBRSource(tb.BGSource, tb.BGSink.Node.Addr(), 9000, 1250)
	bg.Start(105e6) // overload the 100 Mbps bottleneck so its queue fills
	tb.Run(3 * time.Second)

	edgePing := netsim.NewPinger(b.UE.Host, tb.CIServer.Node.Addr(), 64, 6001)
	cloudPing := netsim.NewPinger(b.UE.Host, tb.CloudHosts["california"].Node.Addr(), 64, 6002)
	edgePing.Start(200 * time.Millisecond)
	cloudPing.Start(200 * time.Millisecond)
	tb.Run(10 * time.Second)
	edgePing.Stop()
	cloudPing.Stop()
	bg.Stop()
	tb.Run(2 * time.Second)

	if edgePing.Received < 10 || cloudPing.Received < 5 {
		t.Fatalf("pings: edge %d cloud %d", edgePing.Received, cloudPing.Received)
	}
	edgeRTT := edgePing.RTTs.Median()
	cloudRTT := cloudPing.RTTs.Median()
	if edgeRTT > 30 {
		t.Errorf("edge RTT under load = %.1f ms, want < 30 (isolated)", edgeRTT)
	}
	if cloudRTT < 100 {
		t.Errorf("shared-core RTT under load = %.1f ms, want inflated (> 100)", cloudRTT)
	}
}

func TestEdgeRTTMatchesPaper(t *testing.T) {
	// §7.2: RTT between UE and MEC server within ~15 ms at the 95th
	// percentile, with the eNB-MEC leg tiny.
	tb := newRetailTestbed(t, TestbedConfig{RadioJitter: time.Millisecond})
	b := startRetail(t, tb, "electronics", electronicsSpot)
	// The paper's RTT micro-benchmark pings without concurrent AR frames;
	// a 61 KB frame serializes for ~20 ms on the uplink and would queue
	// equal-priority probes behind it.
	b.Frontend.Stop()
	tb.Run(2 * time.Second)
	pg := netsim.NewPinger(b.UE.Host, tb.CIServer.Node.Addr(), 64, 6003)
	pg.Start(50 * time.Millisecond)
	tb.Run(10 * time.Second)
	pg.Stop()
	tb.Run(time.Second)
	if pg.Received < 100 {
		t.Fatalf("replies = %d", pg.Received)
	}
	p95 := pg.RTTs.Percentile(95)
	if p95 < 8 || p95 > 20 {
		t.Errorf("edge RTT p95 = %.1f ms, want ≈15", p95)
	}
}

func TestMultiUEScaling(t *testing.T) {
	tb := newRetailTestbed(t, TestbedConfig{NumUEs: 3})
	if len(tb.UEs) != 3 {
		t.Fatalf("UEs = %d", len(tb.UEs))
	}
	for i, b := range tb.UEs {
		tb.MoveUE(b, geo.Point{X: 15 + float64(i)*3, Y: 12})
		if err := tb.Attach(b); err != nil {
			t.Fatalf("UE %d attach: %v", i, err)
		}
		if err := tb.StartRetailApp(b, "electronics"); err != nil {
			t.Fatalf("UE %d register: %v", i, err)
		}
	}
	tb.Run(15 * time.Second)
	for i, b := range tb.UEs {
		if !b.DM.Connected(RetailServiceName) {
			t.Errorf("UE %d not connected", i)
		}
		if b.Frontend.Responses == 0 {
			t.Errorf("UE %d no responses", i)
		}
	}
	// Processor sharing on the edge server slowed matches versus a single
	// client — verified in detail by compute tests; here just confirm the
	// server saw all users.
	if tb.EdgeBackend.Frames < 3 {
		t.Errorf("edge frames = %d", tb.EdgeBackend.Frames)
	}
}

func TestSchemeString(t *testing.T) {
	for _, s := range []Scheme{SchemeNaive, SchemeRxPower, SchemeACACIA} {
		if s.String() == "" || s.String() == "Scheme?" {
			t.Errorf("scheme %d has bad name", s)
		}
	}
}

func TestFrontendComponentsSumToTotal(t *testing.T) {
	tb := newRetailTestbed(t, TestbedConfig{})
	b := startRetail(t, tb, "electronics", electronicsSpot)
	tb.Run(20 * time.Second)
	st := &b.Frontend.Stats
	if st.Total.N() == 0 {
		t.Fatal("no samples")
	}
	sum := st.Match.Mean() + st.Compute.Mean() + st.Network.Mean()
	total := st.Total.Mean()
	if diff := total - sum; diff < -1 || diff > 1 { // queueing in compute.Server may shift < 1ms
		t.Errorf("components %.2f ms vs total %.2f ms", sum, total)
	}
}

// d2dExprForService builds a service-level expression for tests.
func d2dExprForService(service uint32) d2d.Expression {
	return d2d.Expression{
		Code: d2d.ServiceCode(service, 0, 0),
		Mask: d2d.MaskService,
	}
}

func TestManualTriggerWithoutDiscovery(t *testing.T) {
	// §8: ACACIA without proximity service discovery — app launch is the
	// trigger. Place the user out of LTE-direct range so no match can
	// occur, then trigger manually.
	tb := newRetailTestbed(t, TestbedConfig{})
	b := tb.UEs[0]
	tb.MoveUE(b, geo.Point{X: 5000, Y: 5000})
	if err := tb.Attach(b); err != nil {
		t.Fatal(err)
	}
	if err := tb.StartRetailApp(b, "electronics"); err != nil {
		t.Fatal(err)
	}
	tb.Run(5 * time.Second)
	if b.DM.Connected(RetailServiceName) {
		t.Fatal("connected without discovery or trigger")
	}
	if err := b.DM.TriggerManually(RetailServiceName); err != nil {
		t.Fatal(err)
	}
	tb.Run(2 * time.Second)
	if !b.DM.Connected(RetailServiceName) {
		t.Fatal("manual trigger did not establish connectivity")
	}
	if b.Frontend.Server() != tb.CIServer.Node.Addr() {
		t.Errorf("server = %v", b.Frontend.Server())
	}
	// Triggering again is a no-op.
	if err := b.DM.TriggerManually(RetailServiceName); err != nil {
		t.Errorf("repeat trigger: %v", err)
	}
	if err := b.DM.TriggerManually("unknown-service"); err == nil {
		t.Error("trigger for unregistered service accepted")
	}
}

func TestMRSPicksSiteByENB(t *testing.T) {
	tb := newRetailTestbed(t, TestbedConfig{})
	svc := tb.MRS.Service(RetailServiceName)
	// Add a second site local to a different eNB.
	tb.MRS.AddSite(RetailServiceName, EdgeSite{
		Name: "edge-2", CIServer: pkt.AddrFrom(10, 4, 0, 10),
		SGWPlane: "edge-sgw", PGWPlane: "edge-pgw",
		ENBs: []string{"enb-2"},
	})
	site, err := tb.MRS.SiteFor(svc, "enb")
	if err != nil || site.Name != "edge-1" {
		t.Errorf("SiteFor(enb) = %v, %v", site, err)
	}
	site, err = tb.MRS.SiteFor(svc, "enb-2")
	if err != nil || site.Name != "edge-2" {
		t.Errorf("SiteFor(enb-2) = %v, %v", site, err)
	}
	// Unknown eNB falls back to the first site.
	site, err = tb.MRS.SiteFor(svc, "enb-99")
	if err != nil || site.Name != "edge-1" {
		t.Errorf("SiteFor(enb-99) = %v, %v", site, err)
	}
}

func TestRetailSessionSurvivesHandover(t *testing.T) {
	// The store spans two cells: the customer's AR session must survive a
	// handover mid-browse — SGW anchoring keeps UE IP, bearers and the MEC
	// binding intact.
	tb := newRetailTestbed(t, TestbedConfig{})
	enb2 := tb.AddNeighborENB("enb-east")
	b := startRetail(t, tb, "electronics", electronicsSpot)
	tb.Run(5 * time.Second)
	framesBefore := b.Frontend.Responses
	if framesBefore == 0 {
		t.Fatal("no frames before handover")
	}

	if err := tb.Handover(b, enb2); err != nil {
		t.Fatalf("handover: %v", err)
	}
	if tb.EPC.Session(b.UE.IMSI).ENB != enb2 {
		t.Fatal("session not moved")
	}
	tb.Run(10 * time.Second)

	if b.Frontend.Responses <= framesBefore+5 {
		t.Errorf("frames stalled after handover: %d -> %d", framesBefore, b.Frontend.Responses)
	}
	if !b.DM.Connected(RetailServiceName) {
		t.Error("MEC connectivity lost across handover")
	}
	if tb.MRS.Binding(b.UE.Addr()) == nil {
		t.Error("MRS binding lost across handover")
	}
	// Dedicated bearer still classifies CI traffic.
	sess := tb.EPC.Session(b.UE.IMSI)
	if len(sess.DedicatedBearers()) != 1 {
		t.Errorf("dedicated bearers after handover = %d", len(sess.DedicatedBearers()))
	}
	if enb2.ULPackets == 0 {
		t.Error("no uplink via the target eNB")
	}
}

func TestMultiClientServerSharingEndToEnd(t *testing.T) {
	// Fig. 12's processor sharing observed through the full stack: with 4
	// concurrent AR sessions on one edge server, per-frame match time
	// grows several-fold over a single session.
	single := newRetailTestbed(t, TestbedConfig{NumUEs: 1})
	b := startRetail(t, single, "electronics", electronicsSpot)
	single.Run(20 * time.Second)
	soloMatch := b.Frontend.Stats.Match.Mean()
	if soloMatch <= 0 {
		t.Fatal("no solo match samples")
	}

	multi := newRetailTestbed(t, TestbedConfig{NumUEs: 4})
	for i, ub := range multi.UEs {
		multi.MoveUE(ub, geo.Point{X: 15 + float64(i)*2, Y: 12 + float64(i%2)*3})
		if err := multi.Attach(ub); err != nil {
			t.Fatalf("UE %d: %v", i, err)
		}
		if err := multi.StartRetailApp(ub, "electronics"); err != nil {
			t.Fatalf("UE %d: %v", i, err)
		}
	}
	multi.Run(25 * time.Second)
	var loaded stats.Sample
	for _, ub := range multi.UEs {
		if ub.Frontend.Stats.Match.N() == 0 {
			t.Fatalf("%s has no match samples", ub.Name)
		}
		loaded.Add(ub.Frontend.Stats.Match.Mean())
	}
	ratio := loaded.Mean() / soloMatch
	// Sessions interleave rather than fully overlap (closed loops), so the
	// slowdown is below the hard 4x of saturated processor sharing but must
	// be clearly visible.
	if ratio < 1.5 {
		t.Errorf("4-client match slowdown = %.2fx, want visible sharing", ratio)
	}
}

func TestManyUEsAttachAndBrowseConcurrently(t *testing.T) {
	// Robustness: ten customers attach, discover, and run AR concurrently.
	tb := newRetailTestbed(t, TestbedConfig{NumUEs: 10})
	for i, b := range tb.UEs {
		cp := tb.Floor.Checkpoints[(i*2)%len(tb.Floor.Checkpoints)]
		tb.MoveUE(b, cp.Pos)
		b.UE.Attach("core-sgw", "core-pgw", nil)
	}
	tb.Run(3 * time.Second)
	for i, b := range tb.UEs {
		if !b.UE.Attached() {
			t.Fatalf("UE %d not attached", i)
		}
		if err := tb.StartRetailApp(b, tb.Floor.SectionAt(b.Frontend.Pos())); err != nil {
			t.Fatalf("UE %d register: %v", i, err)
		}
	}
	tb.Run(20 * time.Second)
	connected := 0
	responded := 0
	for _, b := range tb.UEs {
		if b.DM.Connected(RetailServiceName) {
			connected++
		}
		if b.Frontend.Responses > 0 {
			responded++
		}
	}
	if connected < 10 {
		t.Errorf("connected = %d of 10", connected)
	}
	if responded < 10 {
		t.Errorf("responded = %d of 10", responded)
	}
	if tb.EdgeBackend.Frames == 0 {
		t.Error("edge served nothing")
	}
}

func TestTestbedDeterministicAcrossRuns(t *testing.T) {
	// Identical seeds must reproduce the run bit-for-bit: same frame
	// counts, same latency means, same control-plane byte totals.
	run := func() (uint64, float64, uint64) {
		tb := newRetailTestbed(t, TestbedConfig{Seed: 31415})
		b := startRetail(t, tb, "electronics", electronicsSpot)
		tb.Run(15 * time.Second)
		return b.Frontend.Responses, b.Frontend.Stats.Total.Mean(), tb.EPC.Acct.TotalBytes()
	}
	r1, m1, b1 := run()
	r2, m2, b2 := run()
	if r1 != r2 || m1 != m2 || b1 != b2 {
		t.Errorf("non-deterministic: (%d,%v,%d) vs (%d,%v,%d)", r1, m1, b1, r2, m2, b2)
	}
	// A different seed produces a different (jittered) run.
	tb3 := newRetailTestbed(t, TestbedConfig{Seed: 27182})
	b3 := startRetail(t, tb3, "electronics", electronicsSpot)
	tb3.Run(15 * time.Second)
	if b3.Frontend.Stats.Total.Mean() == m1 {
		t.Error("different seeds produced identical latency means")
	}
}
