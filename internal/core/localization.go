package core

import (
	"sort"

	"acacia/internal/d2d"
	"acacia/internal/geo"
	"acacia/internal/localization"
)

// LocalizationManager runs on the CI server: it aggregates (landmark,
// rxPower) reports forwarded by each user's device manager, converts powers
// to distances with the environment's fitted path-loss model, and
// trilaterates the user's position for the AR back-end's database pruning.
type LocalizationManager struct {
	floor *geo.Floor
	fit   localization.PathLossFit

	users map[string]*userTrack

	// Estimates counts successful position estimates.
	Estimates uint64
}

type userTrack struct {
	// latest rxPower per landmark name (most recent report wins).
	latest map[string]float64
	// est is the most recent position estimate.
	est    geo.Point
	hasEst bool
}

// NewLocalizationManager creates a manager for a floor with a fitted
// path-loss model (the one-time calibration overhead).
func NewLocalizationManager(floor *geo.Floor, fit localization.PathLossFit) *LocalizationManager {
	return &LocalizationManager{
		floor: floor,
		fit:   fit,
		users: make(map[string]*userTrack),
	}
}

// CalibrateFromChannel builds the path-loss fit by sampling the given d2d
// channel model at known distances — the per-environment regression the
// paper describes as a one-time overhead.
func CalibrateFromChannel(m d2d.PathLossModel, rng interface{ NormFloat64() float64 }) localization.PathLossFit {
	var samples []localization.CalibrationSample
	for d := 1.0; d <= 45; d += 1.5 {
		rx := m.MeanRxPower(d)
		if rng != nil {
			rx += rng.NormFloat64() * m.ShadowSigmaDB
		}
		samples = append(samples, localization.CalibrationSample{Distance: d, RxPowerDBm: rx})
	}
	fit, err := localization.FitPathLoss(samples)
	if err != nil {
		panic("core: calibration failed: " + err.Error())
	}
	return fit
}

// sortedLandmarkNames lists the track's landmark names in sorted order —
// the deterministic iteration base for everything fed by the latest map.
func sortedLandmarkNames(tr *userTrack) []string {
	names := make([]string, 0, len(tr.latest))
	for name := range tr.latest {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Report ingests one (landmark, rxPower) observation for a user and
// refreshes the estimate when at least three landmarks are known.
func (lm *LocalizationManager) Report(user, landmark string, rxPowerDBm float64) {
	tr := lm.users[user]
	if tr == nil {
		tr = &userTrack{latest: make(map[string]float64)}
		lm.users[user] = tr
	}
	tr.latest[landmark] = rxPowerDBm
	lm.reestimate(tr)
}

func (lm *LocalizationManager) reestimate(tr *userTrack) {
	// Gauss-Newton iterates over the measurements in order, so the float
	// result depends on it: feed the solver landmarks in sorted-name order,
	// not map order, to keep estimates identical across runs.
	names := sortedLandmarkNames(tr)
	var ms []localization.Measurement
	for _, name := range names {
		l := lm.floor.Landmark(name)
		if l == nil {
			continue
		}
		ms = append(ms, localization.Measurement{
			Landmark: l.Pos,
			Distance: lm.fit.Distance(tr.latest[name]),
		})
	}
	if len(ms) < 3 {
		return
	}
	est, err := localization.Trilaterate(ms)
	if err != nil {
		return
	}
	// The user is known to be on the floor; clamp degenerate estimates.
	est = lm.floor.Bounds.Clamp(est)
	tr.est = est
	tr.hasEst = true
	lm.Estimates++
}

// Estimate returns the user's latest position estimate, if any.
func (lm *LocalizationManager) Estimate(user string) (geo.Point, bool) {
	tr := lm.users[user]
	if tr == nil || !tr.hasEst {
		return geo.Point{}, false
	}
	return tr.est, true
}

// StrongestLandmarks returns the names of the user's n highest-rxPower
// landmarks — the input of the rxPower baseline's section pruning.
func (lm *LocalizationManager) StrongestLandmarks(user string, n int) []string {
	tr := lm.users[user]
	if tr == nil {
		return nil
	}
	// Stable sort by descending power over a name-sorted base, so equal
	// rxPower readings prune the same sections on every run.
	names := sortedLandmarkNames(tr)
	sort.SliceStable(names, func(i, j int) bool { return tr.latest[names[i]] > tr.latest[names[j]] })
	if n > len(names) {
		n = len(names)
	}
	out := append([]string(nil), names[:n]...)
	return out
}

// Forget drops a user's tracking state (application exit).
func (lm *LocalizationManager) Forget(user string) { delete(lm.users, user) }

// TrackSnapshot is a user's portable localization state: the freeze/copy
// payload shipped site-to-site when a session migrates. Landmarks are kept
// as a sorted slice (not a map) so the snapshot's encoded size and its
// replay are deterministic.
type TrackSnapshot struct {
	Landmarks []LandmarkReading
	Est       geo.Point
	HasEst    bool
}

// LandmarkReading is one (landmark, rxPower) pair of a snapshot.
type LandmarkReading struct {
	Name       string
	RxPowerDBm float64
}

// Export freezes a user's tracking state into a snapshot and removes it
// from this manager — the "freeze" phase of migration. The second return is
// false when the user is unknown (nothing to migrate).
func (lm *LocalizationManager) Export(user string) (TrackSnapshot, bool) {
	tr := lm.users[user]
	if tr == nil {
		return TrackSnapshot{}, false
	}
	snap := TrackSnapshot{Est: tr.est, HasEst: tr.hasEst}
	for _, name := range sortedLandmarkNames(tr) {
		snap.Landmarks = append(snap.Landmarks, LandmarkReading{Name: name, RxPowerDBm: tr.latest[name]})
	}
	delete(lm.users, user)
	return snap, true
}

// Import installs a migrated snapshot — the "resume" phase: the new site's
// manager starts with the user's full landmark history and last estimate,
// so database pruning works on the first post-migration frame instead of
// waiting for three fresh landmark reports.
func (lm *LocalizationManager) Import(user string, snap TrackSnapshot) {
	tr := &userTrack{latest: make(map[string]float64, len(snap.Landmarks))}
	for _, r := range snap.Landmarks {
		tr.latest[r.Name] = r.RxPowerDBm
	}
	tr.est, tr.hasEst = snap.Est, snap.HasEst
	lm.users[user] = tr
}
