// Package core implements ACACIA itself: the MEC Registration Server (MRS),
// the on-device ACACIA device manager, the LTE-direct localization manager,
// the AR front-end/back-end pair, and a calibrated testbed that wires them
// onto the EPC/SDN/netsim substrates. The package also provides the CLOUD
// and MEC baselines the paper compares against.
package core

import (
	"fmt"
	"sort"

	"acacia/internal/epc"
	"acacia/internal/pkt"
	"acacia/internal/telemetry"
)

// EdgeSite is one mobile edge cloud instance: its CI server address and the
// local user planes that terminate dedicated bearers there.
type EdgeSite struct {
	Name     string
	CIServer pkt.Addr
	SGWPlane string
	PGWPlane string
	// ENBs lists the base stations this site is local to; the MRS picks
	// the site serving the requesting UE's eNB.
	ENBs []string
}

// CIService is a continuous-interactive service registered with the MRS.
type CIService struct {
	// Name is the LTE-direct service name (e.g. the retail chain).
	Name string
	// PolicyID keys the PCRF rule for this service's dedicated bearers.
	PolicyID string
	Sites    []EdgeSite
}

// MRS is the MEC Registration Server: the 3GPP application function that
// turns device-manager connectivity requests into PCRF signaling and tracks
// which UE is bound to which edge site.
type MRS struct {
	core     *epc.Core
	services map[string]*CIService
	bindings map[pkt.Addr]*binding // by UE IP

	// downSites marks edge sites (by name) whose GTP-U path is currently
	// failed, as reported by HandlePathEvent. SiteFor skips them.
	downSites map[string]bool

	scope telemetry.Scope

	// Requests/Deletes count connectivity operations; Failovers counts
	// bindings moved off a failed site.
	Requests, Deletes, Failovers uint64
}

type binding struct {
	service *CIService
	site    *EdgeSite
	ebi     uint8
	// enbName and notify replay the original connectivity request during
	// failover: the MRS re-selects a site for the same eNB and tells the
	// device manager's callback about the new CI server.
	enbName string
	notify  func(pkt.Addr, error)
	// failing marks a binding mid-failover so a burst of path events does
	// not re-enter the procedure.
	failing bool
}

// NewMRS creates an MRS against the given EPC control plane.
func NewMRS(core *epc.Core) *MRS {
	return &MRS{
		core:      core,
		services:  make(map[string]*CIService),
		bindings:  make(map[pkt.Addr]*binding),
		downSites: make(map[string]bool),
		scope:     core.Eng.Metrics().Scope("core").Scope("mrs"),
	}
}

// RegisterService adds a CI service and its edge sites.
func (m *MRS) RegisterService(svc CIService) {
	cp := svc
	m.services[svc.Name] = &cp
}

// Service returns a registered service by name.
func (m *MRS) Service(name string) *CIService { return m.services[name] }

// SiteFor picks the edge site of a service local to the given eNB, skipping
// sites currently marked down. It falls back to the first surviving site
// when no live site lists the eNB.
func (m *MRS) SiteFor(svc *CIService, enbName string) (*EdgeSite, error) {
	if len(svc.Sites) == 0 {
		return nil, fmt.Errorf("core: service %q has no edge sites", svc.Name)
	}
	for i := range svc.Sites {
		if m.downSites[svc.Sites[i].Name] {
			continue
		}
		for _, e := range svc.Sites[i].ENBs {
			if e == enbName {
				return &svc.Sites[i], nil
			}
		}
	}
	for i := range svc.Sites {
		if !m.downSites[svc.Sites[i].Name] {
			return &svc.Sites[i], nil
		}
	}
	return nil, fmt.Errorf("core: service %q has no surviving edge sites", svc.Name)
}

// SiteDown reports whether the named site is currently marked failed.
func (m *MRS) SiteDown(name string) bool { return m.downSites[name] }

// RequestConnectivity handles a device manager's request: locate the
// closest CI server for the service and have the PCRF activate a dedicated
// bearer toward it. done receives the selected CI server address. The MRS
// keeps the request parameters with the binding so it can replay the
// procedure against a surviving site when the serving site fails.
func (m *MRS) RequestConnectivity(serviceName string, ueIP pkt.Addr, enbName string, done func(pkt.Addr, error)) {
	m.Requests++
	svc, ok := m.services[serviceName]
	if !ok {
		if done != nil {
			done(pkt.Addr{}, fmt.Errorf("core: unknown CI service %q", serviceName))
		}
		return
	}
	if b := m.bindings[ueIP]; b != nil {
		// Idempotent: the bearer already exists. Adopt the caller's
		// callback so failover notifications reach the latest requester.
		b.enbName = enbName
		if done != nil {
			b.notify = done
			done(b.site.CIServer, nil)
		}
		return
	}
	site, err := m.SiteFor(svc, enbName)
	if err != nil {
		if done != nil {
			done(pkt.Addr{}, err)
		}
		return
	}
	m.core.PCRF.RequestDedicatedBearer(svc.PolicyID, ueIP, site.CIServer, site.SGWPlane, site.PGWPlane,
		func(ebi uint8, err error) {
			if err != nil {
				if done != nil {
					done(pkt.Addr{}, err)
				}
				return
			}
			m.bindings[ueIP] = &binding{
				service: svc, site: site, ebi: ebi,
				enbName: enbName, notify: done,
			}
			if done != nil {
				done(site.CIServer, nil)
			}
		})
}

// ReleaseConnectivity tears down the UE's dedicated bearer for the service.
func (m *MRS) ReleaseConnectivity(ueIP pkt.Addr, done func(error)) {
	b := m.bindings[ueIP]
	if b == nil {
		if done != nil {
			done(fmt.Errorf("core: UE %v has no MEC binding", ueIP))
		}
		return
	}
	m.Deletes++
	m.core.PCRF.RequestBearerTermination(ueIP, b.site.CIServer, func(err error) {
		if err == nil {
			delete(m.bindings, ueIP)
		}
		if done != nil {
			done(err)
		}
	})
}

// Binding reports the edge site currently bound to a UE, or nil.
func (m *MRS) Binding(ueIP pkt.Addr) *EdgeSite {
	if b := m.bindings[ueIP]; b != nil {
		return b.site
	}
	return nil
}

// HandlePathEvent reacts to a GTP-U path supervision transition reported
// through the SDN controller: peer is the supervised user-plane address.
// On failure the MRS marks every site whose fabric owns that address down
// and moves its bindings to surviving sites; on recovery it unmarks them
// (existing bindings stay where failover put them — there is no automatic
// failback).
func (m *MRS) HandlePathEvent(peer pkt.Addr, down bool) {
	for _, site := range m.sitesOfPeer(peer) {
		if down {
			if m.downSites[site.Name] {
				continue
			}
			m.downSites[site.Name] = true
			m.scope.Emit("site-down", site.Name)
			m.failoverBindings(site.Name)
		} else {
			if !m.downSites[site.Name] {
				continue
			}
			delete(m.downSites, site.Name)
			m.scope.Emit("site-up", site.Name)
		}
	}
}

// sitesOfPeer resolves a supervised peer address to the edge sites whose
// fabric (CI server, SGW-U or PGW-U plane) it belongs to, across services
// in sorted name order for deterministic event sequencing.
func (m *MRS) sitesOfPeer(peer pkt.Addr) []*EdgeSite {
	names := make([]string, 0, len(m.services))
	for name := range m.services {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []*EdgeSite
	seen := make(map[string]bool)
	for _, name := range names {
		svc := m.services[name]
		for i := range svc.Sites {
			site := &svc.Sites[i]
			if seen[site.Name] || !m.siteOwnsAddr(site, peer) {
				continue
			}
			seen[site.Name] = true
			out = append(out, site)
		}
	}
	return out
}

// siteOwnsAddr reports whether addr is part of a site's user-plane fabric.
func (m *MRS) siteOwnsAddr(site *EdgeSite, addr pkt.Addr) bool {
	if site.CIServer == addr {
		return true
	}
	if up := m.core.SGWC.Plane(site.SGWPlane); up != nil && up.SW.Node().Addr() == addr {
		return true
	}
	if up := m.core.PGWC.Plane(site.PGWPlane); up != nil && up.SW.Node().Addr() == addr {
		return true
	}
	return false
}

// failoverBindings moves every binding served by the failed site onto a
// surviving one, in ascending UE-address order so the resulting signaling
// sequence is deterministic.
func (m *MRS) failoverBindings(siteName string) {
	var ues []pkt.Addr
	for ueIP, b := range m.bindings {
		if b.site.Name == siteName && !b.failing {
			ues = append(ues, ueIP)
		}
	}
	sort.Slice(ues, func(i, j int) bool { return ues[i].Uint32() < ues[j].Uint32() })
	for _, ueIP := range ues {
		m.failover(ueIP)
	}
}

// failover re-runs the dedicated-bearer procedure for one UE against a
// surviving site: terminate the old bearer (the control plane is
// centralized, so teardown signaling works even while the site's user
// plane is dark), drop the binding, and replay the original connectivity
// request. The stored notify callback tells the device manager about the
// new CI server — or about the failure, whose capped-backoff retry then
// keeps the session from hanging when no site survives.
func (m *MRS) failover(ueIP pkt.Addr) {
	b := m.bindings[ueIP]
	if b == nil || b.failing {
		return
	}
	b.failing = true
	m.Failovers++
	m.scope.Emit("failover-start", fmt.Sprintf("%v from %s", ueIP, b.site.Name))
	m.core.PCRF.RequestBearerTermination(ueIP, b.site.CIServer, func(err error) {
		// Teardown of a bearer toward a dark site may time out at the
		// user-plane switches; the compensations in the coordinator have
		// already released control-plane state, so proceed either way.
		delete(m.bindings, ueIP)
		m.RequestConnectivity(b.service.Name, ueIP, b.enbName, func(server pkt.Addr, err error) {
			if err != nil {
				m.scope.Emit("failover-failed", fmt.Sprintf("%v: %v", ueIP, err))
			} else {
				m.scope.Emit("failover-done", fmt.Sprintf("%v to %v", ueIP, server))
			}
			if b.notify != nil {
				b.notify(server, err)
			}
		})
	})
}
