// Package core implements ACACIA itself: the MEC Registration Server (MRS),
// the on-device ACACIA device manager, the LTE-direct localization manager,
// the AR front-end/back-end pair, and a calibrated testbed that wires them
// onto the EPC/SDN/netsim substrates. The package also provides the CLOUD
// and MEC baselines the paper compares against.
package core

import (
	"errors"
	"fmt"
	"sort"

	"acacia/internal/epc"
	"acacia/internal/pkt"
	"acacia/internal/telemetry"
)

// EdgeSite is one mobile edge cloud instance: its CI server address and the
// local user planes that terminate dedicated bearers there.
type EdgeSite struct {
	Name     string
	CIServer pkt.Addr
	SGWPlane string
	PGWPlane string
	// ENBs lists the base stations this site is local to; the MRS picks
	// the site serving the requesting UE's eNB.
	ENBs []string
	// CapacityUnits bounds concurrent MEC bindings the site admits; zero
	// means unbounded (the paper-scale default). One binding consumes one
	// unit — the UCMEC-style abstraction of the site's compute/bearer
	// budget that placement and admission work against.
	CapacityUnits int

	// load is the MRS-maintained count of units in use (reserved at
	// placement, released on teardown or failed activation).
	load int
}

// Remaining reports the site's spare capacity units; unbounded sites report
// a large sentinel so max-remaining placement treats them as never full.
func (s *EdgeSite) Remaining() int {
	if s.CapacityUnits <= 0 {
		return int(^uint(0) >> 2) // effectively infinite
	}
	return s.CapacityUnits - s.load
}

// Load reports the units currently reserved on the site.
func (s *EdgeSite) Load() int { return s.load }

// CIService is a continuous-interactive service registered with the MRS.
type CIService struct {
	// Name is the LTE-direct service name (e.g. the retail chain).
	Name string
	// PolicyID keys the PCRF rule for this service's dedicated bearers.
	PolicyID string
	// Sites seeds the service's edge sites at registration time. The live
	// set is MRS-owned afterwards: grow it with MRS.AddSite (stable
	// *EdgeSite identity, indexes maintained), not by appending here.
	Sites []EdgeSite

	// sites is the live, MRS-owned site list in registration order; byENB
	// indexes the eNB-local subsets (same order).
	sites []*EdgeSite
	byENB map[string][]*EdgeSite
}

// SiteList returns the service's live edge sites in registration order.
func (s *CIService) SiteList() []*EdgeSite { return s.sites }

// ErrNoCapacity is returned (wrapped) by RequestConnectivity when every
// surviving edge site of the service is at capacity. It is retriable: the
// device manager's capped backoff re-requests until a unit frees up.
var ErrNoCapacity = errors.New("no edge site with spare capacity")

// MRS is the MEC Registration Server: the 3GPP application function that
// turns device-manager connectivity requests into PCRF signaling and tracks
// which UE is bound to which edge site.
type MRS struct {
	core     *epc.Core
	services map[string]*CIService
	bindings map[pkt.Addr]*binding // by UE IP

	// siteBindings indexes live bindings by site name, so failover never
	// scans the full binding table; peerSites resolves a supervised
	// user-plane address straight to the sites whose fabric owns it. Both
	// replace O(#sessions)/O(#sites) scans on the path-event hot path.
	siteBindings map[string]map[pkt.Addr]*binding
	peerSites    map[pkt.Addr][]*EdgeSite
	// peerDirty forces a peerSites rebuild: user-plane addresses resolve
	// through the gateway control planes, which may register planes after
	// the service, so the index is (re)built lazily on first use and after
	// every site mutation.
	peerDirty bool

	// downSites marks edge sites (by name) whose GTP-U path is currently
	// failed, as reported by HandlePathEvent. Placement skips them.
	downSites map[string]bool

	scope telemetry.Scope

	// Requests/Deletes count connectivity operations; Failovers counts
	// bindings moved off a failed site; Relocations counts bindings moved
	// because the UE handed over to a cell another site serves; Rejections
	// counts requests denied for lack of capacity.
	Requests, Deletes, Failovers, Relocations, Rejections uint64
	rejectionsCtr                                         *telemetry.Counter
}

type binding struct {
	service *CIService
	site    *EdgeSite
	ebi     uint8
	// enbName and notify replay the original connectivity request during
	// failover: the MRS re-selects a site for the same eNB and tells the
	// device manager's callback about the new CI server.
	enbName string
	notify  func(pkt.Addr, error)
	// failing marks a binding mid-failover so a burst of path events does
	// not re-enter the procedure.
	failing bool
}

// NewMRS creates an MRS against the given EPC control plane.
func NewMRS(core *epc.Core) *MRS {
	scope := core.Eng.Metrics().Scope("core").Scope("mrs")
	return &MRS{
		core:          core,
		services:      make(map[string]*CIService),
		bindings:      make(map[pkt.Addr]*binding),
		siteBindings:  make(map[string]map[pkt.Addr]*binding),
		peerSites:     make(map[pkt.Addr][]*EdgeSite),
		downSites:     make(map[string]bool),
		scope:         scope,
		rejectionsCtr: scope.Counter("admission-rejects"),
	}
}

// RegisterService adds a CI service and its edge sites.
func (m *MRS) RegisterService(svc CIService) {
	cp := svc
	cp.byENB = make(map[string][]*EdgeSite)
	m.services[svc.Name] = &cp
	for i := range svc.Sites {
		m.addSite(&cp, svc.Sites[i])
	}
}

// Service returns a registered service by name.
func (m *MRS) Service(name string) *CIService { return m.services[name] }

// AddSite registers another edge site with a service (a failover candidate
// when no eNB lists it) and returns the MRS-owned instance. All site-set
// mutation goes through here so the address and eNB indexes stay current.
func (m *MRS) AddSite(serviceName string, site EdgeSite) *EdgeSite {
	svc := m.services[serviceName]
	if svc == nil {
		return nil
	}
	return m.addSite(svc, site)
}

func (m *MRS) addSite(svc *CIService, site EdgeSite) *EdgeSite {
	s := new(EdgeSite)
	*s = site
	s.load = 0
	svc.sites = append(svc.sites, s)
	for _, enb := range s.ENBs {
		svc.byENB[enb] = append(svc.byENB[enb], s)
	}
	m.peerDirty = true
	return s
}

// AddServiceENB marks every site of the service as local to the named eNB
// (the testbed's neighbour-cell deployment, where the store's sites serve
// both cells).
func (m *MRS) AddServiceENB(serviceName, enbName string) {
	svc := m.services[serviceName]
	if svc == nil {
		return
	}
	for _, s := range svc.sites {
		s.ENBs = append(s.ENBs, enbName)
		svc.byENB[enbName] = append(svc.byENB[enbName], s)
	}
}

// AddSiteENB marks one named site of a service as local to an eNB — the
// cross-site mobility deployment, where each cell has its own edge site
// (unlike AddServiceENB's blanket neighbour-cell coverage).
func (m *MRS) AddSiteENB(serviceName, siteName, enbName string) {
	svc := m.services[serviceName]
	if svc == nil {
		return
	}
	for _, s := range svc.sites {
		if s.Name != siteName {
			continue
		}
		s.ENBs = append(s.ENBs, enbName)
		svc.byENB[enbName] = append(svc.byENB[enbName], s)
		return
	}
}

// SiteFor places a connectivity request: the first eNB-local live site with
// spare capacity, else — the UCMEC-style delay-constrained spill — the
// surviving non-full site with the most remaining units (registration order
// breaks ties, so placement is deterministic). A wrapped ErrNoCapacity
// distinguishes "everything full" (retriable) from "nothing survives".
func (m *MRS) SiteFor(svc *CIService, enbName string) (*EdgeSite, error) {
	if len(svc.sites) == 0 {
		return nil, fmt.Errorf("core: service %q has no edge sites", svc.Name)
	}
	for _, s := range svc.byENB[enbName] {
		if !m.downSites[s.Name] && s.Remaining() > 0 {
			return s, nil
		}
	}
	var best *EdgeSite
	alive := false
	for _, s := range svc.sites {
		if m.downSites[s.Name] {
			continue
		}
		alive = true
		if s.Remaining() <= 0 {
			continue
		}
		if best == nil || s.Remaining() > best.Remaining() {
			best = s
		}
	}
	if best != nil {
		return best, nil
	}
	if alive {
		return nil, fmt.Errorf("core: service %q: %w", svc.Name, ErrNoCapacity)
	}
	return nil, fmt.Errorf("core: service %q has no surviving edge sites", svc.Name)
}

// SiteDown reports whether the named site is currently marked failed.
func (m *MRS) SiteDown(name string) bool { return m.downSites[name] }

// SiteLoad reports the units reserved on the named site, or -1 when no
// service registers it.
func (m *MRS) SiteLoad(name string) int {
	for _, svc := range m.services {
		for _, s := range svc.sites {
			if s.Name == name {
				return s.load
			}
		}
	}
	return -1
}

// RequestConnectivity handles a device manager's request: locate the
// closest CI server for the service and have the PCRF activate a dedicated
// bearer toward it. done receives the selected CI server address. The MRS
// keeps the request parameters with the binding so it can replay the
// procedure against a surviving site when the serving site fails.
//
// Admission is capacity-based: placement reserves one unit on the selected
// site up front (released again if activation fails) and rejects with a
// wrapped ErrNoCapacity when every surviving site is full — a deterministic,
// retriable outcome the device manager's capped backoff absorbs.
func (m *MRS) RequestConnectivity(serviceName string, ueIP pkt.Addr, enbName string, done func(pkt.Addr, error)) {
	m.Requests++
	svc, ok := m.services[serviceName]
	if !ok {
		if done != nil {
			done(pkt.Addr{}, fmt.Errorf("core: unknown CI service %q", serviceName))
		}
		return
	}
	if b := m.bindings[ueIP]; b != nil {
		// Idempotent: the bearer already exists. Adopt the caller's
		// callback so failover notifications reach the latest requester.
		b.enbName = enbName
		if done != nil {
			b.notify = done
			done(b.site.CIServer, nil)
		}
		return
	}
	site, err := m.SiteFor(svc, enbName)
	if err != nil {
		if errors.Is(err, ErrNoCapacity) {
			m.Rejections++
			m.rejectionsCtr.Inc()
			m.scope.Emit("admission-reject", ueIP.String())
		}
		if done != nil {
			done(pkt.Addr{}, err)
		}
		return
	}
	site.load++ // reserve the unit across the activation round-trip
	m.core.PCRF.RequestDedicatedBearer(svc.PolicyID, ueIP, site.CIServer, site.SGWPlane, site.PGWPlane,
		func(ebi uint8, err error) {
			if err != nil {
				site.load--
				if done != nil {
					done(pkt.Addr{}, err)
				}
				return
			}
			m.bind(ueIP, &binding{
				service: svc, site: site, ebi: ebi,
				enbName: enbName, notify: done,
			})
			if done != nil {
				done(site.CIServer, nil)
			}
		})
}

// bind records a live binding in the per-UE and per-site indexes.
func (m *MRS) bind(ueIP pkt.Addr, b *binding) {
	m.bindings[ueIP] = b
	bySite := m.siteBindings[b.site.Name]
	if bySite == nil {
		bySite = make(map[pkt.Addr]*binding)
		m.siteBindings[b.site.Name] = bySite
	}
	bySite[ueIP] = b
}

// unbind removes a binding from both indexes and frees its capacity unit.
func (m *MRS) unbind(ueIP pkt.Addr) {
	b := m.bindings[ueIP]
	if b == nil {
		return
	}
	delete(m.bindings, ueIP)
	if bySite := m.siteBindings[b.site.Name]; bySite != nil {
		delete(bySite, ueIP)
	}
	b.site.load--
}

// ReleaseConnectivity tears down the UE's dedicated bearer for the service.
func (m *MRS) ReleaseConnectivity(ueIP pkt.Addr, done func(error)) {
	b := m.bindings[ueIP]
	if b == nil {
		if done != nil {
			done(fmt.Errorf("core: UE %v has no MEC binding", ueIP))
		}
		return
	}
	m.Deletes++
	m.core.PCRF.RequestBearerTermination(ueIP, b.site.CIServer, func(err error) {
		if err == nil {
			m.unbind(ueIP)
		}
		if done != nil {
			done(err)
		}
	})
}

// Binding reports the edge site currently bound to a UE, or nil.
func (m *MRS) Binding(ueIP pkt.Addr) *EdgeSite {
	if b := m.bindings[ueIP]; b != nil {
		return b.site
	}
	return nil
}

// HandlePathEvent reacts to a GTP-U path supervision transition reported
// through the SDN controller: peer is the supervised user-plane address.
// On failure the MRS marks every site whose fabric owns that address down
// and moves its bindings to surviving sites; on recovery it unmarks them
// (existing bindings stay where failover put them — there is no automatic
// failback).
func (m *MRS) HandlePathEvent(peer pkt.Addr, down bool) {
	for _, site := range m.sitesOfPeer(peer) {
		if down {
			if m.downSites[site.Name] {
				continue
			}
			m.downSites[site.Name] = true
			m.scope.Emit("site-down", site.Name)
			m.failoverBindings(site.Name)
		} else {
			if !m.downSites[site.Name] {
				continue
			}
			delete(m.downSites, site.Name)
			m.scope.Emit("site-up", site.Name)
		}
	}
}

// sitesOfPeer resolves a supervised peer address through the address index;
// a miss rebuilds the index once (user planes may have registered since the
// last build) before giving up.
func (m *MRS) sitesOfPeer(peer pkt.Addr) []*EdgeSite {
	if m.peerDirty {
		m.rebuildPeerIndex()
	}
	if sites, ok := m.peerSites[peer]; ok {
		return sites
	}
	m.rebuildPeerIndex()
	return m.peerSites[peer]
}

// rebuildPeerIndex maps every site fabric address (CI server, SGW-U and
// PGW-U plane) to its sites, visiting services in sorted name order and
// sites in registration order so each address's site list — and with it the
// failover event sequence — is deterministic.
func (m *MRS) rebuildPeerIndex() {
	for k := range m.peerSites {
		delete(m.peerSites, k)
	}
	names := make([]string, 0, len(m.services))
	for name := range m.services {
		names = append(names, name)
	}
	sort.Strings(names)
	seen := make(map[string]bool)
	for _, name := range names {
		for _, site := range m.services[name].sites {
			if seen[site.Name] {
				continue
			}
			seen[site.Name] = true
			add := func(addr pkt.Addr) {
				if !addr.IsZero() {
					m.peerSites[addr] = append(m.peerSites[addr], site)
				}
			}
			add(site.CIServer)
			if up := m.core.SGWC.Plane(site.SGWPlane); up != nil {
				add(up.SW.Node().Addr())
			}
			if up := m.core.PGWC.Plane(site.PGWPlane); up != nil {
				add(up.SW.Node().Addr())
			}
		}
	}
	m.peerDirty = false
}

// failoverBindings moves every binding served by the failed site onto a
// surviving one, in ascending UE-address order so the resulting signaling
// sequence is deterministic. The per-site index makes this proportional to
// the failed site's population, not the whole binding table.
func (m *MRS) failoverBindings(siteName string) {
	bySite := m.siteBindings[siteName]
	if len(bySite) == 0 {
		return
	}
	ues := make([]pkt.Addr, 0, len(bySite))
	for ueIP, b := range bySite {
		if !b.failing {
			ues = append(ues, ueIP)
		}
	}
	sort.Slice(ues, func(i, j int) bool { return ues[i].Uint32() < ues[j].Uint32() })
	for _, ueIP := range ues {
		m.failover(ueIP)
	}
}

// HandleHandover reacts to a completed EPC handover: the UE with ueIP is
// now served by enbName. The binding's replay context is updated so any
// later failover places against the right cell, and — when the new cell has
// its own live edge site with capacity that is not the current one — the
// binding is relocated there, re-anchoring the dedicated MEC bearer on the
// target site's gateways. When the current site already serves the new cell
// (the neighbour-cell deployment) or no local site can take the session,
// the SGW-anchored bearer keeps working from where it is and nothing moves.
func (m *MRS) HandleHandover(ueIP pkt.Addr, enbName string) {
	b := m.bindings[ueIP]
	if b == nil || b.failing {
		return
	}
	b.enbName = enbName
	for _, s := range b.service.byENB[enbName] {
		if s == b.site {
			return // already local to the new cell
		}
	}
	local := false
	for _, s := range b.service.byENB[enbName] {
		if !m.downSites[s.Name] && s.Remaining() > 0 {
			local = true
			break
		}
	}
	if !local {
		m.scope.Emit("relocate-skip", fmt.Sprintf("%v at %s stays on %s", ueIP, enbName, b.site.Name))
		return
	}
	m.relocate(ueIP)
}

// relocate moves one binding to the edge site local to the UE's new cell:
// terminate the old dedicated bearer, drop the binding, and replay the
// connectivity request — SiteFor now prefers the eNB-local site. The stored
// notify callback delivers the new CI server to the device manager, whose
// application then runs its own state migration against the old backend.
func (m *MRS) relocate(ueIP pkt.Addr) {
	b := m.bindings[ueIP]
	if b == nil || b.failing {
		return
	}
	b.failing = true
	m.Relocations++
	m.scope.Emit("relocate-start", fmt.Sprintf("%v from %s", ueIP, b.site.Name))
	m.core.PCRF.RequestBearerTermination(ueIP, b.site.CIServer, func(err error) {
		m.unbind(ueIP)
		m.RequestConnectivity(b.service.Name, ueIP, b.enbName, func(server pkt.Addr, err error) {
			if err != nil {
				m.scope.Emit("relocate-failed", fmt.Sprintf("%v: %v", ueIP, err))
			} else {
				m.scope.Emit("relocate-done", fmt.Sprintf("%v to %v", ueIP, server))
			}
			if b.notify != nil {
				b.notify(server, err)
			}
		})
	})
}

// failover re-runs the dedicated-bearer procedure for one UE against a
// surviving site: terminate the old bearer (the control plane is
// centralized, so teardown signaling works even while the site's user
// plane is dark), drop the binding, and replay the original connectivity
// request. The stored notify callback tells the device manager about the
// new CI server — or about the failure, whose capped-backoff retry then
// keeps the session from hanging when no site survives or none has spare
// capacity.
func (m *MRS) failover(ueIP pkt.Addr) {
	b := m.bindings[ueIP]
	if b == nil || b.failing {
		return
	}
	b.failing = true
	m.Failovers++
	m.scope.Emit("failover-start", fmt.Sprintf("%v from %s", ueIP, b.site.Name))
	m.core.PCRF.RequestBearerTermination(ueIP, b.site.CIServer, func(err error) {
		// Teardown of a bearer toward a dark site may time out at the
		// user-plane switches; the compensations in the coordinator have
		// already released control-plane state, so proceed either way.
		m.unbind(ueIP)
		m.RequestConnectivity(b.service.Name, ueIP, b.enbName, func(server pkt.Addr, err error) {
			if err != nil {
				m.scope.Emit("failover-failed", fmt.Sprintf("%v: %v", ueIP, err))
			} else {
				m.scope.Emit("failover-done", fmt.Sprintf("%v to %v", ueIP, server))
			}
			if b.notify != nil {
				b.notify(server, err)
			}
		})
	})
}
