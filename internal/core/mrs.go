// Package core implements ACACIA itself: the MEC Registration Server (MRS),
// the on-device ACACIA device manager, the LTE-direct localization manager,
// the AR front-end/back-end pair, and a calibrated testbed that wires them
// onto the EPC/SDN/netsim substrates. The package also provides the CLOUD
// and MEC baselines the paper compares against.
package core

import (
	"fmt"

	"acacia/internal/epc"
	"acacia/internal/pkt"
)

// EdgeSite is one mobile edge cloud instance: its CI server address and the
// local user planes that terminate dedicated bearers there.
type EdgeSite struct {
	Name     string
	CIServer pkt.Addr
	SGWPlane string
	PGWPlane string
	// ENBs lists the base stations this site is local to; the MRS picks
	// the site serving the requesting UE's eNB.
	ENBs []string
}

// CIService is a continuous-interactive service registered with the MRS.
type CIService struct {
	// Name is the LTE-direct service name (e.g. the retail chain).
	Name string
	// PolicyID keys the PCRF rule for this service's dedicated bearers.
	PolicyID string
	Sites    []EdgeSite
}

// MRS is the MEC Registration Server: the 3GPP application function that
// turns device-manager connectivity requests into PCRF signaling and tracks
// which UE is bound to which edge site.
type MRS struct {
	core     *epc.Core
	services map[string]*CIService
	bindings map[pkt.Addr]*binding // by UE IP

	// Requests/Deletes count connectivity operations.
	Requests, Deletes uint64
}

type binding struct {
	service *CIService
	site    *EdgeSite
	ebi     uint8
}

// NewMRS creates an MRS against the given EPC control plane.
func NewMRS(core *epc.Core) *MRS {
	return &MRS{
		core:     core,
		services: make(map[string]*CIService),
		bindings: make(map[pkt.Addr]*binding),
	}
}

// RegisterService adds a CI service and its edge sites.
func (m *MRS) RegisterService(svc CIService) {
	cp := svc
	m.services[svc.Name] = &cp
}

// Service returns a registered service by name.
func (m *MRS) Service(name string) *CIService { return m.services[name] }

// SiteFor picks the edge site of a service local to the given eNB. It
// falls back to the first site when no site lists the eNB.
func (m *MRS) SiteFor(svc *CIService, enbName string) (*EdgeSite, error) {
	if len(svc.Sites) == 0 {
		return nil, fmt.Errorf("core: service %q has no edge sites", svc.Name)
	}
	for i := range svc.Sites {
		for _, e := range svc.Sites[i].ENBs {
			if e == enbName {
				return &svc.Sites[i], nil
			}
		}
	}
	return &svc.Sites[0], nil
}

// RequestConnectivity handles a device manager's request: locate the
// closest CI server for the service and have the PCRF activate a dedicated
// bearer toward it. done receives the selected CI server address.
func (m *MRS) RequestConnectivity(serviceName string, ueIP pkt.Addr, enbName string, done func(pkt.Addr, error)) {
	m.Requests++
	svc, ok := m.services[serviceName]
	if !ok {
		if done != nil {
			done(pkt.Addr{}, fmt.Errorf("core: unknown CI service %q", serviceName))
		}
		return
	}
	if b := m.bindings[ueIP]; b != nil {
		// Idempotent: the bearer already exists.
		if done != nil {
			done(b.site.CIServer, nil)
		}
		return
	}
	site, err := m.SiteFor(svc, enbName)
	if err != nil {
		if done != nil {
			done(pkt.Addr{}, err)
		}
		return
	}
	m.core.PCRF.RequestDedicatedBearer(svc.PolicyID, ueIP, site.CIServer, site.SGWPlane, site.PGWPlane,
		func(ebi uint8, err error) {
			if err != nil {
				if done != nil {
					done(pkt.Addr{}, err)
				}
				return
			}
			m.bindings[ueIP] = &binding{service: svc, site: site, ebi: ebi}
			if done != nil {
				done(site.CIServer, nil)
			}
		})
}

// ReleaseConnectivity tears down the UE's dedicated bearer for the service.
func (m *MRS) ReleaseConnectivity(ueIP pkt.Addr, done func(error)) {
	b := m.bindings[ueIP]
	if b == nil {
		if done != nil {
			done(fmt.Errorf("core: UE %v has no MEC binding", ueIP))
		}
		return
	}
	m.Deletes++
	m.core.PCRF.RequestBearerTermination(ueIP, b.site.CIServer, func(err error) {
		if err == nil {
			delete(m.bindings, ueIP)
		}
		if done != nil {
			done(err)
		}
	})
}

// Binding reports the edge site currently bound to a UE, or nil.
func (m *MRS) Binding(ueIP pkt.Addr) *EdgeSite {
	if b := m.bindings[ueIP]; b != nil {
		return b.site
	}
	return nil
}
