package core

import (
	"errors"
	"testing"
	"time"

	"acacia/internal/d2d"
	"acacia/internal/fault"
	"acacia/internal/pkt"
)

// neverMatches is an interest expression no landmark broadcast satisfies, so
// a registered app only requests connectivity when triggered manually.
var neverMatches = d2d.Expression{Code: ^uint64(0), Mask: ^uint64(0)}

// recordingApp is a stub CIApp capturing the connectivity lifecycle.
type recordingApp struct {
	connects int
	server   pkt.Addr
	errs     []error
}

func (a *recordingApp) OnDiscovery(Discovery)    {}
func (a *recordingApp) OnConnected(s pkt.Addr)   { a.connects++; a.server = s }
func (a *recordingApp) OnDisconnected(err error) { a.errs = append(a.errs, err) }
func (a *recordingApp) lastErr() error {
	if len(a.errs) == 0 {
		return nil
	}
	return a.errs[len(a.errs)-1]
}

// retailSite returns the MRS-owned instance of the default edge site so
// tests can bound its admission capacity.
func retailSite(t *testing.T, tb *Testbed, idx int) *EdgeSite {
	t.Helper()
	sites := tb.MRS.Service(RetailServiceName).SiteList()
	if idx >= len(sites) {
		t.Fatalf("service has %d sites, want index %d", len(sites), idx)
	}
	return sites[idx]
}

// TestAdmissionExactCapacity fills a site to exactly its capacity: every
// unit admits, the request one past the boundary is rejected with
// ErrNoCapacity (without disturbing existing bindings), and a release makes
// the freed unit admissible again.
func TestAdmissionExactCapacity(t *testing.T) {
	tb := newRetailTestbed(t, TestbedConfig{NumUEs: 3})
	retailSite(t, tb, 0).CapacityUnits = 2
	for _, b := range tb.UEs {
		if err := tb.Attach(b); err != nil {
			t.Fatal(err)
		}
	}

	connect := func(b *UEBundle) error {
		var got error
		done := false
		tb.MRS.RequestConnectivity(RetailServiceName, b.UE.Addr(), "enb", func(_ pkt.Addr, err error) {
			got, done = err, true
		})
		tb.Run(2 * time.Second)
		if !done {
			t.Fatalf("request for %s never completed", b.Name)
		}
		return got
	}

	// Fill to exactly capacity.
	for i := 0; i < 2; i++ {
		if err := connect(tb.UEs[i]); err != nil {
			t.Fatalf("unit %d within capacity rejected: %v", i+1, err)
		}
	}
	site := retailSite(t, tb, 0)
	if site.Load() != 2 || site.Remaining() != 0 {
		t.Fatalf("at capacity: load=%d remaining=%d, want 2/0", site.Load(), site.Remaining())
	}

	// One past the boundary: deterministic, retriable rejection.
	err := connect(tb.UEs[2])
	if !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("over-capacity request: err=%v, want ErrNoCapacity", err)
	}
	if tb.MRS.Rejections != 1 {
		t.Errorf("rejections = %d, want 1", tb.MRS.Rejections)
	}
	if site.Load() != 2 {
		t.Errorf("rejection changed load to %d", site.Load())
	}
	if tb.MRS.Binding(tb.UEs[2].UE.Addr()) != nil {
		t.Error("rejected UE has a binding")
	}
	for i := 0; i < 2; i++ {
		if s := tb.MRS.Binding(tb.UEs[i].UE.Addr()); s == nil || s.Name != "edge-1" {
			t.Errorf("UE %d binding disturbed: %+v", i, s)
		}
	}

	// Releasing a unit reopens admission for the freed slot only.
	tb.MRS.ReleaseConnectivity(tb.UEs[0].UE.Addr(), nil)
	tb.Run(2 * time.Second)
	if site.Load() != 1 {
		t.Fatalf("after release: load=%d, want 1", site.Load())
	}
	if err := connect(tb.UEs[2]); err != nil {
		t.Fatalf("request after release rejected: %v", err)
	}
	if site.Load() != 2 || site.Remaining() != 0 {
		t.Errorf("refilled: load=%d remaining=%d, want 2/0", site.Load(), site.Remaining())
	}
}

// TestAdmissionBackoffAdmitsAfterRelease drives the full rejection path
// through the device manager: with every site full the request is denied,
// the capped backoff keeps re-requesting (collecting further rejections
// while the site stays full), and the session establishes as soon as a unit
// frees up — without a fresh trigger.
func TestAdmissionBackoffAdmitsAfterRelease(t *testing.T) {
	tb := newRetailTestbed(t, TestbedConfig{NumUEs: 2})
	retailSite(t, tb, 0).CapacityUnits = 1
	holder := startRetail(t, tb, "electronics", electronicsSpot)
	if s := tb.MRS.Binding(holder.UE.Addr()); s == nil || s.Name != "edge-1" {
		t.Fatalf("holder binding = %+v", s)
	}

	waiter := tb.UEs[1]
	if err := tb.Attach(waiter); err != nil {
		t.Fatal(err)
	}
	app := &recordingApp{}
	if err := waiter.DM.Register(ServiceInfo{ServiceName: RetailServiceName, Interest: neverMatches}, app); err != nil {
		t.Fatal(err)
	}
	if err := waiter.DM.TriggerManually(RetailServiceName); err != nil {
		t.Fatal(err)
	}

	// The site stays full across the first backoff attempts: the initial
	// request and at least one 500ms retry are rejected.
	tb.Run(1200 * time.Millisecond)
	if app.connects != 0 {
		t.Fatal("waiter connected while the site was full")
	}
	if !errors.Is(app.lastErr(), ErrNoCapacity) {
		t.Fatalf("waiter error = %v, want ErrNoCapacity", app.lastErr())
	}
	if tb.MRS.Rejections < 2 {
		t.Errorf("rejections = %d, want >= 2 (initial request + backoff retry)", tb.MRS.Rejections)
	}

	// Free the unit; the pending backoff retry must admit without any new
	// discovery match or manual trigger.
	tb.MRS.ReleaseConnectivity(holder.UE.Addr(), nil)
	tb.Run(6 * time.Second)
	if !waiter.DM.Connected(RetailServiceName) {
		t.Fatal("waiter never admitted after the unit was released")
	}
	if app.connects != 1 || app.server != tb.CIServer.Node.Addr() {
		t.Errorf("connects=%d server=%v, want 1 connect to %v", app.connects, app.server, tb.CIServer.Node.Addr())
	}
	site := retailSite(t, tb, 0)
	if site.Load() != 1 {
		t.Errorf("post-admission load = %d, want 1", site.Load())
	}
	if s := tb.MRS.Binding(waiter.UE.Addr()); s == nil || s.Name != "edge-1" {
		t.Errorf("waiter binding = %+v", s)
	}
}

// TestFailoverRespectsCapacity composes admission with failover: two sites
// of one unit each, both full. Crashing the serving site releases its unit
// and replays the binding's request, which is rejected while the survivor
// is full — the failover parks in the device manager's backoff — and lands
// on the survivor as soon as its unit frees, with unit accounting exact at
// every step.
func TestFailoverRespectsCapacity(t *testing.T) {
	tb := newRetailTestbed(t, TestbedConfig{NumUEs: 2})
	tb.AddEdgeSite("edge-2")
	tb.EnableFailover(100*time.Millisecond, 2)
	retailSite(t, tb, 0).CapacityUnits = 1
	retailSite(t, tb, 1).CapacityUnits = 1

	victim := startRetail(t, tb, "electronics", electronicsSpot)
	if s := tb.MRS.Binding(victim.UE.Addr()); s == nil || s.Name != "edge-1" {
		t.Fatalf("victim binding = %+v", s)
	}

	// The second UE spills to edge-2 (its eNB-local site is full): both
	// sites are now at capacity.
	spiller := tb.UEs[1]
	if err := tb.Attach(spiller); err != nil {
		t.Fatal(err)
	}
	app := &recordingApp{}
	if err := spiller.DM.Register(ServiceInfo{ServiceName: RetailServiceName, Interest: neverMatches}, app); err != nil {
		t.Fatal(err)
	}
	if err := spiller.DM.TriggerManually(RetailServiceName); err != nil {
		t.Fatal(err)
	}
	tb.Run(2 * time.Second)
	if s := tb.MRS.Binding(spiller.UE.Addr()); s == nil || s.Name != "edge-2" {
		t.Fatalf("spiller binding = %+v, want edge-2 spill", s)
	}
	if l1, l2 := tb.MRS.SiteLoad("edge-1"), tb.MRS.SiteLoad("edge-2"); l1 != 1 || l2 != 1 {
		t.Fatalf("loads = %d/%d, want 1/1", l1, l2)
	}

	// Kill the victim's site. Failover frees edge-1's unit but edge-2 is
	// full, so the replayed request is rejected and the victim waits in
	// backoff rather than hanging or evicting the spiller.
	if err := tb.Faults.Apply(fault.Plan{Name: "kill-edge-1", Events: []fault.Event{
		{Kind: fault.SiteCrash, Target: "edge-1", At: 200 * time.Millisecond},
	}}); err != nil {
		t.Fatal(err)
	}
	tb.Run(3 * time.Second)
	if tb.MRS.Failovers != 1 {
		t.Errorf("failovers = %d, want 1", tb.MRS.Failovers)
	}
	if tb.MRS.Rejections == 0 {
		t.Error("capacity-constrained failover produced no rejection")
	}
	if victim.DM.Connected(RetailServiceName) {
		t.Error("victim reports connectivity with no admissible site")
	}
	if tb.MRS.SiteLoad("edge-1") != 0 {
		t.Errorf("failed site load = %d, want 0 (unit released)", tb.MRS.SiteLoad("edge-1"))
	}
	if s := tb.MRS.Binding(spiller.UE.Addr()); s == nil || s.Name != "edge-2" {
		t.Errorf("spiller evicted: %+v", s)
	}

	// Free the survivor's unit: the victim's backoff retry rebinds there.
	if err := spiller.DM.Unregister(RetailServiceName); err != nil {
		t.Fatal(err)
	}
	tb.Run(10 * time.Second)
	if !victim.DM.Connected(RetailServiceName) {
		t.Fatal("victim never rebound after capacity freed")
	}
	if s := tb.MRS.Binding(victim.UE.Addr()); s == nil || s.Name != "edge-2" {
		t.Fatalf("post-failover binding = %+v, want edge-2", s)
	}
	if l1, l2 := tb.MRS.SiteLoad("edge-1"), tb.MRS.SiteLoad("edge-2"); l1 != 0 || l2 != 1 {
		t.Errorf("final loads = %d/%d, want 0/1", l1, l2)
	}
	if want := tb.Sites[1].CI.Node.Addr(); victim.Frontend.Server() != want {
		t.Errorf("frontend server = %v, want %v", victim.Frontend.Server(), want)
	}
}
