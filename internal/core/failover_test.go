package core

import (
	"testing"
	"time"

	"acacia/internal/fault"
	"acacia/internal/sim"
)

// TestFailoverToSurvivingSite kills the serving edge site mid-AR-session
// and asserts the session resumes on the surviving site with bounded
// downtime, with detect/repair marks on the telemetry timeline.
func TestFailoverToSurvivingSite(t *testing.T) {
	tb := newRetailTestbed(t, TestbedConfig{})
	tb.AddEdgeSite("edge-2")
	const period = 100 * time.Millisecond
	const maxMisses = 2
	tb.EnableFailover(period, maxMisses)
	b := startRetail(t, tb, "electronics", electronicsSpot)
	if site := tb.MRS.Binding(b.UE.Addr()); site == nil || site.Name != "edge-1" {
		t.Fatalf("initial binding = %+v", site)
	}

	var respTimes []sim.Time
	b.Frontend.OnResponse = func(ARFrameResult) { respTimes = append(respTimes, tb.Eng.Now()) }

	// Crash edge-1 permanently half a second from now.
	failAt := time.Duration(tb.Eng.Now()) + 500*time.Millisecond
	if err := tb.Faults.Apply(fault.Plan{Name: "kill-edge-1", Events: []fault.Event{
		{Kind: fault.SiteCrash, Target: "edge-1", At: 500 * time.Millisecond},
	}}); err != nil {
		t.Fatal(err)
	}
	tb.Run(15 * time.Second)

	// The session moved and resumed.
	if site := tb.MRS.Binding(b.UE.Addr()); site == nil || site.Name != "edge-2" {
		t.Fatalf("post-failover binding = %+v", site)
	}
	if !b.DM.Connected(RetailServiceName) {
		t.Fatal("device manager lost connectivity")
	}
	if want := tb.Sites[1].CI.Node.Addr(); b.Frontend.Server() != want {
		t.Errorf("frontend server = %v, want %v", b.Frontend.Server(), want)
	}
	if tb.MRS.Failovers != 1 {
		t.Errorf("failovers = %d, want 1", tb.MRS.Failovers)
	}

	// Detect and repair marks are on the timeline with sane timings.
	var detectAt, repairAt time.Duration
	for _, ev := range tb.Eng.Metrics().Events() {
		if ev.Scope != "core/mrs" {
			continue
		}
		switch ev.Name {
		case "site-down":
			if detectAt == 0 {
				detectAt = ev.At
			}
		case "failover-done":
			if repairAt == 0 {
				repairAt = ev.At
			}
		}
	}
	if detectAt == 0 || repairAt == 0 {
		t.Fatalf("timeline missing marks: detect=%v repair=%v", detectAt, repairAt)
	}
	if detectAt < failAt {
		t.Errorf("detected at %v before failure at %v", detectAt, failAt)
	}
	// Detection needs maxMisses unanswered probes: at most (maxMisses+2)
	// periods after the crash, with margin for probe phase.
	if lim := failAt + (maxMisses+2)*period; detectAt > lim {
		t.Errorf("detect at %v, want <= %v", detectAt, lim)
	}
	if repairAt <= detectAt || repairAt-detectAt > time.Second {
		t.Errorf("repair at %v after detect at %v, want < 1s apart", repairAt, detectAt)
	}

	// Bounded session downtime: the response gap spanning the failure is
	// at most detect + repair + two frame timeouts.
	var last, resumed time.Duration
	for _, ts := range respTimes {
		at := time.Duration(ts)
		if at < failAt {
			last = at
		} else if resumed == 0 {
			resumed = at
		}
	}
	if last == 0 || resumed == 0 {
		t.Fatalf("no responses around the failure: last=%v resumed=%v", last, resumed)
	}
	bound := (repairAt - failAt) + 2*b.Frontend.FrameTimeout + time.Second
	if gap := resumed - last; gap > bound {
		t.Errorf("session downtime %v exceeds bound %v", gap, bound)
	}
	if b.Frontend.Timeouts == 0 {
		t.Error("expected at least one frame lost to the outage")
	}
}

// TestAllSitesDownRetriesUntilRecovery crashes the only edge site: failover
// has nowhere to go, so the device manager's capped backoff keeps retrying
// until path supervision notices the repaired site, and the session resumes
// instead of hanging.
func TestAllSitesDownRetriesUntilRecovery(t *testing.T) {
	tb := newRetailTestbed(t, TestbedConfig{})
	tb.EnableFailover(100*time.Millisecond, 2)
	b := startRetail(t, tb, "electronics", electronicsSpot)
	respBefore := b.Frontend.Responses

	if err := tb.Faults.Apply(fault.Plan{Name: "edge-1-outage", Events: []fault.Event{
		{Kind: fault.SiteCrash, Target: "edge-1", At: 500 * time.Millisecond, Duration: 4 * time.Second},
	}}); err != nil {
		t.Fatal(err)
	}
	tb.Run(25 * time.Second)

	if !b.DM.Connected(RetailServiceName) {
		t.Fatal("session never recovered after site restart")
	}
	if site := tb.MRS.Binding(b.UE.Addr()); site == nil || site.Name != "edge-1" {
		t.Fatalf("post-recovery binding = %+v", site)
	}
	if b.Frontend.Responses <= respBefore {
		t.Error("no AR responses after recovery")
	}
	if tb.MRS.SiteDown("edge-1") {
		t.Error("site still marked down after recovery")
	}

	// The timeline shows the failed failover attempt and the site-up mark.
	var failed, up bool
	for _, ev := range tb.Eng.Metrics().Events() {
		if ev.Scope != "core/mrs" {
			continue
		}
		switch ev.Name {
		case "failover-failed":
			failed = true
		case "site-up":
			up = true
		}
	}
	if !failed || !up {
		t.Errorf("timeline: failover-failed=%v site-up=%v, want both", failed, up)
	}
}
