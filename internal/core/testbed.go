package core

import (
	"fmt"
	"time"

	"acacia/internal/compute"
	"acacia/internal/d2d"
	"acacia/internal/epc"
	"acacia/internal/exec"
	"acacia/internal/fault"
	"acacia/internal/geo"
	"acacia/internal/localization"
	"acacia/internal/netsim"
	"acacia/internal/pkt"
	"acacia/internal/sdn"
	"acacia/internal/sim"
	"acacia/internal/telemetry"
	"acacia/internal/vision"
)

// TestbedConfig parameterizes the standard ACACIA testbed. Zero values
// select the calibrated defaults listed on each field.
type TestbedConfig struct {
	Seed uint64

	// Radio link (UE <-> eNB). Defaults: 24 Mbps up / 40 Mbps down,
	// 4.5 ms one-way delay with 2 ms exponential scheduling jitter.
	RadioULBps, RadioDLBps float64
	RadioDelay             time.Duration
	RadioJitter            time.Duration

	// BackhaulDelay is eNB <-> aggregation router (default 0.5 ms).
	BackhaulDelay time.Duration
	// CoreDelay is the one-way backhaul-to-centralized-gateways latency
	// (default 15 ms: the hierarchical-routing penalty of §4).
	CoreDelay time.Duration
	// SharedCoreBps bounds the centralized SGW-U <-> PGW-U link that all
	// default-bearer traffic shares (default 100 Mbps, the saturation
	// point of Fig. 3(g)); SharedCoreQueue is its buffer (default 16 MiB —
	// LTE-style deep buffers, producing the paper's second-scale delays at
	// saturation).
	SharedCoreBps   float64
	SharedCoreQueue int
	// CloudDelays place internet servers behind the core PGW: name ->
	// one-way delay from the internet router. Default: the paper's three
	// EC2 regions (CA 13 ms, OR 23 ms, VA 40 ms).
	CloudDelays map[string]time.Duration
	// EdgeDelay is the per-hop latency inside the edge cloud
	// (default 100 µs; eNB->MEC measures ≈1.6 ms RTT as in §7.2).
	EdgeDelay time.Duration

	// GWCosts selects the GW-U per-packet processing model
	// (default sdn.ACACIAGWCosts).
	GWCosts sdn.PathCosts

	// IdleTimeout overrides the LTE inactivity timer (default 11.576 s).
	IdleTimeout time.Duration

	// EdgeDevice and CloudDevice pick the AR servers' compute models
	// (default: eight-core i7 for both).
	EdgeDevice, CloudDevice compute.Device

	// Scheme sets the edge AR back-end's search-space strategy (default
	// SchemeACACIA). The cloud back-end is always Naive.
	Scheme Scheme

	// NumUEs is the number of customer devices (default 1).
	NumUEs int

	// DBFeatures overrides DBObjectFeatures for the retail database.
	DBFeatures int

	// DiscoveryPeriod is the LTE-direct broadcast period (default 1 s —
	// the paper uses 5-10 s on air; a shorter period keeps experiment
	// warm-up short without changing behaviour).
	DiscoveryPeriod time.Duration

	// IntraParallel partitions the event loop inside one run (DESIGN.md
	// §3g): 0 (the default) keeps the single global event queue, bit-for-bit
	// identical to every previous release. Any positive value moves the
	// edge-1 site (edge SGW-U/PGW-U and the CI server) onto its own
	// partition engine advanced in conservative windows against the core;
	// values above 1 execute the windows on that many gang workers.
	// Simulation output is identical for every IntraParallel value as long
	// as the scenario keeps RNG draws out of site partitions — the standard
	// testbed does (radio jitter and D2D run core-side).
	IntraParallel int
}

func (c TestbedConfig) withDefaults() TestbedConfig {
	def := func(f *float64, v float64) {
		if *f == 0 {
			*f = v
		}
	}
	defD := func(d *time.Duration, v time.Duration) {
		if *d == 0 {
			*d = v
		}
	}
	def(&c.RadioULBps, 24e6)
	def(&c.RadioDLBps, 40e6)
	defD(&c.RadioDelay, 4500*time.Microsecond)
	defD(&c.RadioJitter, 2*time.Millisecond)
	defD(&c.BackhaulDelay, 500*time.Microsecond)
	defD(&c.CoreDelay, 15*time.Millisecond)
	def(&c.SharedCoreBps, 100e6)
	if c.SharedCoreQueue == 0 {
		c.SharedCoreQueue = 16 << 20
	}
	if c.CloudDelays == nil {
		c.CloudDelays = map[string]time.Duration{
			"california": 13 * time.Millisecond,
			"oregon":     23 * time.Millisecond,
			"virginia":   40 * time.Millisecond,
		}
	}
	defD(&c.EdgeDelay, 100*time.Microsecond)
	if c.GWCosts == (sdn.PathCosts{}) {
		c.GWCosts = sdn.ACACIAGWCosts
	}
	if c.EdgeDevice.Name == "" {
		c.EdgeDevice = compute.I7x8
	}
	if c.CloudDevice.Name == "" {
		c.CloudDevice = compute.I7x8
	}
	if c.NumUEs == 0 {
		c.NumUEs = 1
	}
	if c.DBFeatures == 0 {
		c.DBFeatures = DBObjectFeatures
	}
	defD(&c.DiscoveryPeriod, time.Second)
	return c
}

// RetailServiceName is the LTE-direct service of the testbed's retail
// deployment, with its carrier-assigned code prefix.
const (
	RetailServiceName = "acacia-retail"
	RetailServiceCode = uint32(0xACAC)
	RetailPolicyID    = "retail-ar"
)

// SiteBundle groups the pieces of one edge site: the local user-plane
// switches, the CI server with its AR backend and localization manager,
// and the site's links (the fault injector's crash target).
type SiteBundle struct {
	Name     string
	SGW, PGW *sdn.Switch
	CI       *netsim.Host
	Backend  *ARBackend
	// Loc is the site-local localization manager: each CI server tracks
	// only the users bound to it, so site state never crosses partition
	// boundaries under IntraParallel. After a failover the adopting site
	// starts cold and its backend falls back to full-database search until
	// the user's landmark reports re-accumulate there.
	Loc      *LocalizationManager
	SGWPlane string
	PGWPlane string
	links    []*netsim.Link
}

// UEBundle groups one customer device's pieces.
type UEBundle struct {
	UE       *epc.UE
	D2D      *d2d.Device
	DM       *DeviceManager
	Frontend *ARFrontend
	Name     string
}

// Testbed is the fully wired ACACIA environment.
type Testbed struct {
	Cfg TestbedConfig
	Eng *sim.Engine
	// Cluster is non-nil when Cfg.IntraParallel > 0: the conservative
	// windowed partition group (core = partition 0, edge-1 = partition 1)
	// that Run/Attach/Handover advance instead of Eng directly.
	Cluster *sim.Cluster
	Net     *netsim.Network
	Ctl     *sdn.Controller
	EPC     *epc.Core
	MRS     *MRS
	ENB     *epc.ENB
	// ENBs lists every base station (ENB plus any neighbours added with
	// AddNeighborENB).
	ENBs      []*epc.ENB
	aggRouter *netsim.Router
	D2D       *d2d.Env
	Floor     *geo.Floor
	DB        *vision.DB
	// Loc is edge-1's localization manager (every site carries its own in
	// SiteBundle.Loc; this field aliases Sites[0].Loc for the single-site
	// experiments).
	Loc *LocalizationManager
	// locFit is the one-time path-loss calibration, computed once and
	// shared by every site's manager (the fit is immutable; per-user
	// tracking state is what must stay site-local).
	locFit localization.PathLossFit

	UEs []*UEBundle

	// Servers.
	CIServer    *netsim.Host // edge CI server
	CentralMEC  *netsim.Host // MEC server behind the centralized GWs
	CloudHosts  map[string]*netsim.Host
	EdgeBackend *ARBackend
	MECBackend  *ARBackend // Naive backend on the central MEC server
	CloudAR     *ARBackend // Naive backend on the California cloud server

	// Switches.
	CoreSGW, CorePGW, EdgeSGW, EdgePGW *sdn.Switch

	// SharedCoreLink is the 100 Mbps bottleneck all default-bearer traffic
	// crosses (background traffic injection point for Fig. 3(g)/10(b)).
	SharedCoreLink *netsim.Link

	// Faults injects deterministic outages against registered targets:
	// the control links ("s11", "s5"), "shared-core", and every edge site
	// by name. Sites lists the edge sites in creation order ("edge-1"
	// first); AddEdgeSite extends both.
	Faults *fault.Injector
	Sites  []*SiteBundle

	// BGSource/BGSink generate and absorb background load through the
	// shared core.
	BGSource *netsim.Host
	BGSink   *netsim.Host
}

// NewTestbed builds the standard topology:
//
//	UEs --radio-- eNB -- router --+-- core SGW-U ==100Mbps== core PGW-U --+-- inet rtr -- clouds
//	                              |                                       +-- central MEC server
//	                              +-- edge SGW-U -- edge PGW-U -- CI server
func NewTestbed(cfg TestbedConfig) *Testbed {
	cfg = cfg.withDefaults()
	eng := sim.NewEngine(cfg.Seed)
	nw := netsim.New(eng)
	ctl := sdn.NewController(eng)
	ctl.RTT = 200 * time.Microsecond

	tb := &Testbed{
		Cfg: cfg, Eng: eng, Net: nw, Ctl: ctl,
		Floor:      geo.RetailFloor(),
		CloudHosts: make(map[string]*netsim.Host),
	}

	gbit := func(d time.Duration) netsim.LinkConfig {
		return netsim.LinkConfig{BitsPerSecond: 1e9, Propagation: d}
	}

	// Nodes.
	enbN := nw.AddNode("enb", pkt.AddrFrom(10, 1, 0, 1))
	rtrN := nw.AddNode("agg-router", pkt.AddrFrom(10, 1, 0, 254))
	coreSGWN := nw.AddNode("core-sgw-u", pkt.AddrFrom(10, 2, 0, 1))
	corePGWN := nw.AddNode("core-pgw-u", pkt.AddrFrom(10, 2, 0, 2))
	inetRtrN := nw.AddNode("inet-router", pkt.AddrFrom(8, 8, 0, 254))
	mecCentralN := nw.AddNode("central-mec", pkt.AddrFrom(10, 2, 0, 10))
	edgeSGWN := nw.AddNode("edge-sgw-u", pkt.AddrFrom(10, 3, 0, 1))
	edgePGWN := nw.AddNode("edge-pgw-u", pkt.AddrFrom(10, 3, 0, 2))
	ciN := nw.AddNode("ci-server", pkt.AddrFrom(10, 3, 0, 10))
	bgSrcN := nw.AddNode("bg-src", pkt.AddrFrom(10, 1, 1, 1))
	bgSinkN := nw.AddNode("bg-sink", pkt.AddrFrom(8, 8, 9, 9))

	// Partitioning (DESIGN.md §3g): with IntraParallel > 0 the edge-1 site
	// gets its own partition engine before any of its links exist, so every
	// site-internal event (fabric hops, CI server compute, backend state)
	// runs off the core queue. The rtr↔edge-sgw-u link is the only inbound
	// cross edge; its propagation delay becomes the conservative lookahead.
	if cfg.IntraParallel > 0 {
		tb.Cluster = sim.NewCluster(eng, cfg.Seed)
		dom := nw.AddDomain(tb.Cluster.AddPartition("site/edge-1"))
		nw.SetDomain(edgeSGWN, dom)
		nw.SetDomain(edgePGWN, dom)
		nw.SetDomain(ciN, dom)
	}

	// eNB port 0 = backhaul (must exist before UEs connect).
	nw.ConnectSymmetric(enbN, rtrN, gbit(cfg.BackhaulDelay))
	nw.ConnectSymmetric(rtrN, coreSGWN, gbit(cfg.CoreDelay)) // rtr:1
	tb.SharedCoreLink = nw.ConnectSymmetric(coreSGWN, corePGWN, netsim.LinkConfig{
		BitsPerSecond: cfg.SharedCoreBps,
		Propagation:   300 * time.Microsecond,
		QueueBytes:    cfg.SharedCoreQueue,
	})
	nw.ConnectSymmetric(corePGWN, inetRtrN, gbit(2*time.Millisecond))       // pgw:1 (SGi)
	edgeRtrLink := nw.ConnectSymmetric(rtrN, edgeSGWN, gbit(cfg.EdgeDelay)) // rtr:2
	edgeFabricLink := nw.ConnectSymmetric(edgeSGWN, edgePGWN, gbit(cfg.EdgeDelay))
	edgeCILink := nw.ConnectSymmetric(edgePGWN, ciN, gbit(cfg.EdgeDelay))
	nw.ConnectSymmetric(rtrN, bgSrcN, gbit(100*time.Microsecond)) // rtr:3

	rtr := netsim.NewRouter(rtrN)
	rtr.AddHostRoute(enbN.Addr(), rtrN.Port(0))
	rtr.AddHostRoute(coreSGWN.Addr(), rtrN.Port(1))
	rtr.AddHostRoute(edgeSGWN.Addr(), rtrN.Port(2))
	rtr.AddHostRoute(bgSrcN.Addr(), rtrN.Port(3))
	// Background traffic enters here destined for the internet sink.
	rtr.AddRoute(pkt.AddrFrom(8, 8, 0, 0), pkt.Addr{255, 255, 0, 0}, rtrN.Port(1))
	tb.aggRouter = rtr

	inetRtr := netsim.NewRouter(inetRtrN)
	inetRtr.AddRoute(pkt.AddrFrom(172, 16, 0, 0), pkt.Addr{255, 255, 0, 0}, inetRtrN.Port(0))
	nw.ConnectSymmetric(inetRtrN, bgSinkN, gbit(100*time.Microsecond))
	inetRtr.AddHostRoute(bgSinkN.Addr(), inetRtrN.Port(1))
	// The central-MEC server sits just behind the centralized gateways:
	// minimal extra distance, but its traffic still crosses the shared
	// core bottleneck (the Fig. 10(b) "EPC with MEC" configuration).
	nw.ConnectSymmetric(inetRtrN, mecCentralN, gbit(300*time.Microsecond))
	inetRtr.AddHostRoute(mecCentralN.Addr(), inetRtrN.Port(2))

	// Cloud servers by region.
	cloudAddrs := map[string]pkt.Addr{
		"california": pkt.AddrFrom(8, 8, 1, 10),
		"oregon":     pkt.AddrFrom(8, 8, 2, 10),
		"virginia":   pkt.AddrFrom(8, 8, 3, 10),
	}
	for _, name := range []string{"california", "oregon", "virginia"} {
		delay, ok := cfg.CloudDelays[name]
		if !ok {
			continue
		}
		n := nw.AddNode("cloud-"+name, cloudAddrs[name])
		nw.ConnectSymmetric(inetRtrN, n, netsim.LinkConfig{BitsPerSecond: 1e9, Propagation: delay})
		inetRtr.AddHostRoute(n.Addr(), inetRtrN.Port(len(inetRtrN.Ports())-1))
		h := netsim.NewHost(n)
		h.Listen(netsim.PingPort, netsim.PingResponder{})
		tb.CloudHosts[name] = h
	}

	// Switches.
	tb.CoreSGW = sdn.NewSwitch(1, coreSGWN, cfg.GWCosts)
	tb.CorePGW = sdn.NewSwitch(2, corePGWN, cfg.GWCosts)
	tb.EdgeSGW = sdn.NewSwitch(3, edgeSGWN, cfg.GWCosts)
	tb.EdgePGW = sdn.NewSwitch(4, edgePGWN, cfg.GWCosts)
	for _, sw := range []*sdn.Switch{tb.CoreSGW, tb.CorePGW, tb.EdgeSGW, tb.EdgePGW} {
		ctl.AddSwitch(sw)
	}

	// EPC control plane.
	tb.EPC = epc.NewCore(epc.Config{
		Eng: eng, Net: nw, Ctl: ctl,
		S1APDelay:   2 * time.Millisecond,
		GTPv2Delay:  time.Millisecond,
		IdleTimeout: cfg.IdleTimeout,
	})
	tb.EPC.SGWC.AddUserPlane("core-sgw", tb.CoreSGW, 0, 1)
	tb.EPC.PGWC.AddUserPlane("core-pgw", tb.CorePGW, 0, 1)
	tb.EPC.SGWC.AddUserPlane("edge-sgw", tb.EdgeSGW, 0, 1)
	tb.EPC.PGWC.AddUserPlane("edge-pgw", tb.EdgePGW, 0, 1)
	tb.EPC.PCRF.AddRule(epc.PolicyRule{ServiceID: RetailPolicyID, QCI: pkt.QCIMEC, ARP: 2, Precedence: 10})

	tb.ENB = epc.NewENB(tb.EPC, enbN)
	tb.ENBs = []*epc.ENB{tb.ENB}

	// Static flow chain for background traffic through the shared core
	// (another tenant's load, present regardless of our UEs).
	bgCookie := uint64(0xb6b6b6)
	ctl.InstallFlow(tb.CoreSGW, sdn.FlowEntry{
		Priority: 50, Cookie: bgCookie,
		Match:   pkt.Match{IPv4Src: pkt.AddrPtr(bgSrcN.Addr())},
		Actions: []pkt.Action{{Type: pkt.ActionOutput, Port: 1}},
	})
	ctl.InstallFlow(tb.CorePGW, sdn.FlowEntry{
		Priority: 50, Cookie: bgCookie,
		Match:   pkt.Match{IPv4Src: pkt.AddrPtr(bgSrcN.Addr())},
		Actions: []pkt.Action{{Type: pkt.ActionOutput, Port: 1}},
	})
	tb.BGSource = netsim.NewHost(bgSrcN)
	tb.BGSink = netsim.NewHost(bgSinkN)

	// Radio environment, landmarks and localization.
	tb.D2D = d2d.NewEnv(eng)
	for i, lm := range tb.Floor.Landmarks {
		// The publisher device carries the landmark's name: discovery
		// messages identify the landmark by their From field, which the
		// localization manager resolves against the floor plan.
		dev := tb.D2D.AddDevice(lm.Name, lm.Pos)
		sectionIdx := sectionIndex(tb.Floor, lm.Section)
		code := d2d.ServiceCode(RetailServiceCode, uint16(sectionIdx), uint16(i))
		dev.Publish(RetailServiceName, code, lm.Section, cfg.DiscoveryPeriod)
	}
	tb.locFit = CalibrateFromChannel(tb.D2D.PathLoss, nil)
	tb.Loc = NewLocalizationManager(tb.Floor, tb.locFit)
	tb.DB = vision.BuildRetailDB(tb.Floor, cfg.DBFeatures)

	// Servers and backends.
	tb.CIServer = netsim.NewHost(ciN)
	tb.CIServer.Listen(netsim.PingPort, netsim.PingResponder{})
	tb.EdgeBackend = NewARBackend(tb.CIServer, cfg.EdgeDevice, cfg.Scheme, tb.Floor, tb.DB, tb.Loc)

	tb.CentralMEC = netsim.NewHost(mecCentralN)
	tb.CentralMEC.Listen(netsim.PingPort, netsim.PingResponder{})
	tb.MECBackend = NewARBackend(tb.CentralMEC, cfg.CloudDevice, SchemeNaive, tb.Floor, tb.DB, nil)

	if ca := tb.CloudHosts["california"]; ca != nil {
		tb.CloudAR = NewARBackend(ca, cfg.CloudDevice, SchemeNaive, tb.Floor, tb.DB, nil)
	}

	// MRS and the retail service.
	tb.MRS = NewMRS(tb.EPC)
	tb.MRS.RegisterService(CIService{
		Name:     RetailServiceName,
		PolicyID: RetailPolicyID,
		Sites: []EdgeSite{{
			Name: "edge-1", CIServer: ciN.Addr(),
			SGWPlane: "edge-sgw", PGWPlane: "edge-pgw",
			ENBs: []string{"enb"},
		}},
	})
	// Handover completions flow into the MRS so it can re-anchor the MEC
	// binding when the UE's new cell has a closer edge site (DESIGN.md §3j).
	tb.EPC.MME.OnHandoverComplete = func(sess *epc.Session, _, target *epc.ENB) {
		tb.MRS.HandleHandover(sess.UE.Addr(), target.Name())
	}

	// Fault-injection targets: the named control/bottleneck links and the
	// default edge site as a crash group.
	tb.Faults = fault.NewInjector(eng)
	tb.Faults.RegisterLink("s11", tb.EPC.S11Link())
	tb.Faults.RegisterLink("s5", tb.EPC.S5Link())
	tb.Faults.RegisterLink("shared-core", tb.SharedCoreLink)
	site1 := &SiteBundle{
		Name: "edge-1", SGW: tb.EdgeSGW, PGW: tb.EdgePGW,
		CI: tb.CIServer, Backend: tb.EdgeBackend, Loc: tb.Loc,
		SGWPlane: "edge-sgw", PGWPlane: "edge-pgw",
		links: []*netsim.Link{edgeRtrLink, edgeFabricLink, edgeCILink},
	}
	tb.Sites = []*SiteBundle{site1}
	tb.Faults.RegisterSite(site1.Name, site1.links...)
	rtr.AddHostRoute(ciN.Addr(), rtrN.Port(2))
	tb.routeSiteCI(site1)

	// UEs.
	for i := 0; i < cfg.NumUEs; i++ {
		tb.AddUE(fmt.Sprintf("customer-%d", i+1), geo.Point{X: 21, Y: 15})
	}
	return tb
}

// AddEdgeSite deploys another edge cloud instance on the aggregation
// router: its own SGW-U/PGW-U pair, CI server, AR backend and localization
// manager, registered with the retail service as a failover candidate (no
// eNB lists it, so the MRS only selects it when sites local to the UE's
// eNB are down) and with the fault injector as a crash group.
//
// Every site's state — switches, compute server, backend, localization
// tracks — is fully site-local, so under IntraParallel each added site
// gets its own partition engine exactly like edge-1: its nodes join a
// fresh domain before any link exists, and the rtr↔site-SGW-U link is the
// site's only cross edge. Adding sites never changes simulation output;
// only the partition a site's events run on.
func (tb *Testbed) AddEdgeSite(name string) *SiteBundle {
	idx := len(tb.Sites)
	base := byte(3 + idx)
	gbit := netsim.LinkConfig{BitsPerSecond: 1e9, Propagation: tb.Cfg.EdgeDelay}
	rtrN := tb.Net.Node("agg-router")
	sgwN := tb.Net.AddNode(name+"-sgw-u", pkt.AddrFrom(10, base, 0, 1))
	pgwN := tb.Net.AddNode(name+"-pgw-u", pkt.AddrFrom(10, base, 0, 2))
	ciN := tb.Net.AddNode(name+"-ci", pkt.AddrFrom(10, base, 0, 10))

	if tb.Cluster != nil {
		dom := tb.Net.AddDomain(tb.Cluster.AddPartition("site/" + name))
		tb.Net.SetDomain(sgwN, dom)
		tb.Net.SetDomain(pgwN, dom)
		tb.Net.SetDomain(ciN, dom)
	}

	rtrLink := tb.Net.ConnectSymmetric(rtrN, sgwN, gbit)
	tb.aggRouter.AddHostRoute(sgwN.Addr(), rtrN.Port(len(rtrN.Ports())-1))
	tb.aggRouter.AddHostRoute(ciN.Addr(), rtrN.Port(len(rtrN.Ports())-1))
	fabricLink := tb.Net.ConnectSymmetric(sgwN, pgwN, gbit)
	ciLink := tb.Net.ConnectSymmetric(pgwN, ciN, gbit)

	// DPIDs continue the 3/4 = edge-1 pattern: site idx gets 3+2*idx and
	// 4+2*idx (core switches hold 1/2).
	sgw := sdn.NewSwitch(uint64(3+2*idx), sgwN, tb.Cfg.GWCosts)
	pgw := sdn.NewSwitch(uint64(4+2*idx), pgwN, tb.Cfg.GWCosts)
	tb.Ctl.AddSwitch(sgw)
	tb.Ctl.AddSwitch(pgw)
	tb.EPC.SGWC.AddUserPlane(name+"-sgw", sgw, 0, 1)
	tb.EPC.PGWC.AddUserPlane(name+"-pgw", pgw, 0, 1)

	ci := netsim.NewHost(ciN)
	ci.Listen(netsim.PingPort, netsim.PingResponder{})
	loc := NewLocalizationManager(tb.Floor, tb.locFit)
	backend := NewARBackend(ci, tb.Cfg.EdgeDevice, tb.Cfg.Scheme, tb.Floor, tb.DB, loc)

	s := &SiteBundle{
		Name: name, SGW: sgw, PGW: pgw, CI: ci, Backend: backend, Loc: loc,
		SGWPlane: name + "-sgw", PGWPlane: name + "-pgw",
		links: []*netsim.Link{rtrLink, fabricLink, ciLink},
	}
	tb.Sites = append(tb.Sites, s)
	tb.Faults.RegisterSite(name, s.links...)
	tb.MRS.AddSite(RetailServiceName, EdgeSite{
		Name: name, CIServer: ciN.Addr(),
		SGWPlane: s.SGWPlane, PGWPlane: s.PGWPlane,
	})
	tb.routeSiteCI(s)
	tb.Eng.Metrics().Scope("core/testbed").Emit("site-added", name)
	return s
}

// ciRouteCookie tags the static inter-site routes that carry the session
// migration protocol between edge clouds' CI servers.
const ciRouteCookie = uint64(0xc1c1c1)

// routeSiteCI makes a site's CI server reachable across the fabric: the
// site's own switches forward its CI address inward (SGW port 1 toward the
// PGW, PGW port 1 toward the server), and between this site and every
// earlier one, foreign CI addresses exit toward the aggregation router
// (port 0). Bearer traffic is untouched — tunnel and per-UE flows sit at
// higher priority — so these routes only carry the raw CI-to-CI migration
// transfers.
func (tb *Testbed) routeSiteCI(s *SiteBundle) {
	out := func(port uint32) []pkt.Action {
		return []pkt.Action{{Type: pkt.ActionOutput, Port: port}}
	}
	toward := func(sw *sdn.Switch, dst pkt.Addr, port uint32) {
		tb.Ctl.InstallFlow(sw, sdn.FlowEntry{
			Priority: 50, Cookie: ciRouteCookie,
			Match:   pkt.Match{IPv4Dst: pkt.AddrPtr(dst)},
			Actions: out(port),
		})
	}
	ciAddr := s.CI.Node.Addr()
	for _, other := range tb.Sites {
		if other == s {
			continue
		}
		otherAddr := other.CI.Node.Addr()
		toward(other.SGW, ciAddr, 0)
		toward(other.PGW, ciAddr, 0)
		toward(s.SGW, otherAddr, 0)
		toward(s.PGW, otherAddr, 0)
	}
	toward(s.SGW, ciAddr, 1)
	toward(s.PGW, ciAddr, 1)
}

// EnableFailover arms MEC failure recovery: every edge site's SGW-U runs a
// GTP-U path monitor supervising the site's PGW-U (pinned with Supervise
// so probing survives bearer teardown), and path transitions flow through
// the SDN controller into the MRS, which moves bindings off failed sites.
func (tb *Testbed) EnableFailover(period time.Duration, maxMisses int) {
	for _, s := range tb.Sites {
		mon := s.SGW.EnablePathMonitor(period, maxMisses)
		mon.Supervise(s.PGW.Node().Addr(), 1)
	}
	tb.Ctl.OnPathEvent = func(_ *sdn.Switch, peer pkt.Addr, down bool) {
		tb.MRS.HandlePathEvent(peer, down)
	}
}

func sectionIndex(f *geo.Floor, section string) int {
	for i, s := range f.Sections {
		if s == section {
			return i
		}
	}
	return -1
}

// AddUE creates one customer device at pos: UE node + radio link, IMSI
// provisioning, d2d device, device manager and AR front-end.
func (tb *Testbed) AddUE(name string, pos geo.Point) *UEBundle {
	idx := len(tb.UEs)
	imsi := fmt.Sprintf("0010100000%05d", idx+1)
	ueN := tb.Net.AddNode(name, pkt.AddrFrom(172, 16, byte(idx/250), byte(2+idx%250)))
	ue := epc.NewUE(ueN, imsi)
	b := &UEBundle{UE: ue, Name: name}
	tb.connectRadio(tb.ENB, b)
	tb.EPC.HSS.Provision(epc.Subscriber{IMSI: imsi})

	dev := tb.D2D.AddDevice(name, pos)
	b.D2D = dev
	b.DM = NewDeviceManager(ue, dev, tb.MRS, "enb")
	b.Frontend = NewARFrontend(ue.Host, name, compute.Resolution{W: 720, H: 480}, pos)
	tb.UEs = append(tb.UEs, b)
	return b
}

func lastLink(nw *netsim.Network) *netsim.Link {
	links := nw.Links()
	return links[len(links)-1]
}

// Attach runs the initial attach for a UE bundle and waits for completion.
func (tb *Testbed) Attach(b *UEBundle) error {
	var result error
	done := false
	b.UE.Attach("core-sgw", "core-pgw", func(err error) {
		result = err
		done = true
	})
	tb.runFor(2 * time.Second)
	if !done {
		return fmt.Errorf("core: attach timed out for %s", b.Name)
	}
	return result
}

// StartRetailApp registers the retail CI application for a bundle: the
// user's interest is the given section (category-level subscription), plus
// a service-wide subscription that feeds localization.
func (tb *Testbed) StartRetailApp(b *UEBundle, interestSection string) error {
	idx := sectionIndex(tb.Floor, interestSection)
	if idx < 0 {
		return fmt.Errorf("core: unknown section %q", interestSection)
	}
	return b.DM.Register(ServiceInfo{
		ServiceName: RetailServiceName,
		Interest: d2d.Expression{
			Code: d2d.ServiceCode(RetailServiceCode, uint16(idx), 0),
			Mask: d2d.MaskCategory,
		},
		ServiceWide: d2d.Expression{
			Code: d2d.ServiceCode(RetailServiceCode, 0, 0),
			Mask: d2d.MaskService,
		},
	}, b.Frontend)
}

// MoveUE repositions a user's radio device and AR ground truth.
func (tb *Testbed) MoveUE(b *UEBundle, pos geo.Point) {
	b.D2D.SetPos(pos)
	b.Frontend.SetPos(pos)
}

// AddNeighborENB deploys a second base station on the same backhaul (a
// store spanning two cells) and gives every existing UE a radio link to it,
// making it a handover candidate. The new eNB is registered with the
// retail service's edge site so MEC bindings remain valid after handover.
func (tb *Testbed) AddNeighborENB(name string) *epc.ENB {
	enb := tb.AddCellENB(name)
	tb.MRS.AddServiceENB(RetailServiceName, name)
	return enb
}

// AddCellENB deploys a base station on the backhaul WITHOUT registering it
// with any edge site: a session handed over to it keeps its MEC bearer, but
// the MRS treats the serving site as remote and relocates the binding to a
// site bound to the new cell (BindSiteToENB) when one is live — the
// cross-site mobility case of DESIGN.md §3j.
func (tb *Testbed) AddCellENB(name string) *epc.ENB {
	rtrN := tb.Net.Node("agg-router")
	enbN := tb.Net.AddNode(name, pkt.AddrFrom(10, 1, 0, byte(2+len(tb.ENBs))))
	tb.Net.ConnectSymmetric(enbN, rtrN, netsim.LinkConfig{
		BitsPerSecond: 1e9, Propagation: tb.Cfg.BackhaulDelay,
	})
	tb.aggRouter.AddHostRoute(enbN.Addr(), rtrN.Port(len(rtrN.Ports())-1))
	enb := epc.NewENB(tb.EPC, enbN)
	for _, b := range tb.UEs {
		tb.connectRadio(enb, b)
	}
	tb.ENBs = append(tb.ENBs, enb)
	return enb
}

// BindSiteToENB declares an edge site local to a cell: the MRS prefers it
// for sessions attaching — or handing over — through that eNB.
func (tb *Testbed) BindSiteToENB(siteName, enbName string) {
	tb.MRS.AddSiteENB(RetailServiceName, siteName, enbName)
}

// StartWalk drives a UE along the walker's path: every tick the radio and
// AR ground truth move to the walker's position, and at each precomputed
// cell-boundary crossing the MME hands the session over to the crossing's
// target eNB. cells maps cellOf's cell indices to serving eNBs; crossings
// into unmapped cells are skipped. onHO, when non-nil, observes every
// attempted handover's completion. The returned crossings are the schedule
// being executed.
func (tb *Testbed) StartWalk(b *UEBundle, w geo.Walker, cellOf func(geo.Point) int,
	cells []*epc.ENB, tick time.Duration, onHO func(c geo.Crossing, err error)) []geo.Crossing {
	for el := time.Duration(0); el <= w.Duration(); el += tick {
		el := el
		tb.Eng.Schedule(el, func() { tb.MoveUE(b, w.PosAt(el)) })
	}
	crossings := w.Crossings(cellOf, tick)
	for _, c := range crossings {
		c := c
		if c.To < 0 || c.To >= len(cells) || cells[c.To] == nil {
			continue
		}
		target := cells[c.To]
		tb.Eng.Schedule(c.At, func() {
			sess := tb.EPC.Session(b.UE.IMSI)
			if sess == nil || sess.ENB == target {
				return
			}
			tb.EPC.MME.Handover(sess, target, func(err error) {
				if onHO != nil {
					onHO(c, err)
				}
			})
		})
	}
	return crossings
}

// connectRadio links a UE bundle to an eNB with the testbed's radio
// configuration.
func (tb *Testbed) connectRadio(enb *epc.ENB, b *UEBundle) {
	enb.ConnectUE(b.UE, netsim.LinkConfig{
		BitsPerSecond: tb.Cfg.RadioDLBps,
		Propagation:   tb.Cfg.RadioDelay,
		Jitter:        tb.Cfg.RadioJitter,
	})
	radio := lastLink(tb.Net)
	radio.SetConfigAB(netsim.LinkConfig{
		BitsPerSecond: tb.Cfg.RadioULBps,
		Propagation:   tb.Cfg.RadioDelay,
		Jitter:        tb.Cfg.RadioJitter,
		Prioritized:   true,
	})
}

// Handover moves a UE's session to the target eNB and waits for the path
// switch to complete.
func (tb *Testbed) Handover(b *UEBundle, target *epc.ENB) error {
	sess := tb.EPC.Session(b.UE.IMSI)
	if sess == nil {
		return fmt.Errorf("core: %s has no session", b.Name)
	}
	var result error
	done := false
	tb.EPC.MME.Handover(sess, target, func(err error) { result, done = err, true })
	tb.runFor(time.Second)
	if !done {
		return fmt.Errorf("core: handover for %s timed out", b.Name)
	}
	return result
}

// Run advances virtual time.
func (tb *Testbed) Run(d time.Duration) { tb.runFor(d) }

// runFor advances the simulation by d: directly on the single engine in
// legacy mode, otherwise through the partition cluster in conservative
// windows. The lookahead is refreshed from the live topology on every call
// (AddEdgeSite and radio attachment add links after construction), and a
// worker gang exists only for the duration of the call so runs never leak
// goroutines.
func (tb *Testbed) runFor(d time.Duration) {
	if tb.Cluster == nil {
		tb.Eng.RunFor(d)
		return
	}
	if la, ok := tb.Net.MinCrossLatency(); ok {
		tb.Cluster.SetLookahead(la)
	}
	if n := tb.Cfg.IntraParallel; n > 1 {
		if m := len(tb.Cluster.Engines()); n > m {
			n = m
		}
		g := exec.NewGang(n)
		tb.Cluster.SetRunner(g)
		defer func() {
			tb.Cluster.SetRunner(nil)
			g.Stop()
		}()
	}
	tb.Cluster.RunFor(d)
}

// MetricsSnapshot captures the testbed's telemetry: the single engine
// registry in legacy mode, or every partition registry merged in partition
// order (counters add, gauges keep the last write, which is unique per
// metric because each metric lives in exactly one partition registry).
func (tb *Testbed) MetricsSnapshot() *telemetry.Snapshot {
	if tb.Cluster == nil {
		return tb.Eng.Metrics().Snapshot()
	}
	engines := tb.Cluster.Engines()
	snaps := make([]*telemetry.Snapshot, len(engines))
	for i, e := range engines {
		snaps[i] = e.Metrics().Snapshot()
	}
	return telemetry.MergeSnapshots(snaps...)
}
