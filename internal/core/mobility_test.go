package core

import (
	"testing"
	"time"

	"acacia/internal/epc"
	"acacia/internal/geo"
	"acacia/internal/sim"
)

// TestCrossSiteHandoverMigratesSession walks a user from the west half of
// the store (cell "enb", served by edge-1) into the east half (cell
// "enb-east", bound to edge-2). The boundary crossing triggers an S1
// handover; its completion flows into the MRS, which re-anchors the MEC
// bearer on edge-2's gateways; and the AR session freezes its state at
// edge-1, ships it to edge-2, and resumes there — with the frame loop's
// continuity gap bounded.
func TestCrossSiteHandoverMigratesSession(t *testing.T) {
	tb := newRetailTestbed(t, TestbedConfig{})
	site2 := tb.AddEdgeSite("edge-2")
	east := tb.AddCellENB("enb-east")
	tb.BindSiteToENB("edge-2", "enb-east")

	start := geo.Point{X: 15, Y: 15}
	b := startRetail(t, tb, "electronics", start)
	if site := tb.MRS.Binding(b.UE.Addr()); site == nil || site.Name != "edge-1" {
		t.Fatalf("initial binding = %+v", site)
	}

	var respTimes []sim.Time
	b.Frontend.OnResponse = func(ARFrameResult) { respTimes = append(respTimes, tb.Eng.Now()) }

	// Walk due east across the midline at a brisk pace: exactly one
	// boundary crossing, into enb-east's cell.
	walk := geo.Walker{Path: geo.Path{Waypoints: []geo.Point{start, {X: 27, Y: 15}}}, Speed: 1.4}
	var hoErrs []error
	walkStart := tb.Eng.Now()
	crossings := tb.StartWalk(b, walk, geo.MidlineCell(21),
		[]*epc.ENB{tb.ENB, east}, 100*time.Millisecond,
		func(_ geo.Crossing, err error) { hoErrs = append(hoErrs, err) })
	if len(crossings) != 1 || crossings[0].To != 1 {
		t.Fatalf("crossings = %+v, want one into cell 1", crossings)
	}
	tb.Run(walk.Duration() + 5*time.Second)

	// The handover ran once and succeeded.
	if len(hoErrs) != 1 || hoErrs[0] != nil {
		t.Fatalf("handover completions = %v, want one success", hoErrs)
	}
	if tb.EPC.MME.Handovers != 1 {
		t.Fatalf("MME.Handovers = %d, want 1", tb.EPC.MME.Handovers)
	}
	sess := tb.EPC.Session(b.UE.IMSI)
	if sess == nil || sess.ENB != east {
		t.Fatal("session did not land on enb-east")
	}

	// The MRS re-anchored the binding on the cell-local site.
	if tb.MRS.Relocations != 1 {
		t.Fatalf("MRS.Relocations = %d, want 1", tb.MRS.Relocations)
	}
	if site := tb.MRS.Binding(b.UE.Addr()); site == nil || site.Name != "edge-2" {
		t.Fatalf("post-walk binding = %+v", site)
	}
	if want := site2.CI.Node.Addr(); b.Frontend.Server() != want {
		t.Fatalf("frontend server = %v, want %v", b.Frontend.Server(), want)
	}
	if !b.DM.Connected(RetailServiceName) {
		t.Fatal("device manager lost connectivity across the relocation")
	}

	// The application state actually moved: frozen out of edge-1, resumed
	// at edge-2, via one sized transfer.
	if b.Frontend.Migrations != 1 || b.Frontend.MigrationTimeouts != 0 {
		t.Fatalf("migrations = %d (timeouts %d), want 1 clean migration",
			b.Frontend.Migrations, b.Frontend.MigrationTimeouts)
	}
	if b.Frontend.MigratedBytes == 0 {
		t.Fatal("migration shipped zero bytes")
	}
	if tb.EdgeBackend.MigrationsOut != 1 || site2.Backend.MigrationsIn != 1 {
		t.Fatalf("backend migrations out=%d in=%d, want 1/1",
			tb.EdgeBackend.MigrationsOut, site2.Backend.MigrationsIn)
	}
	if tb.Loc.users[b.Name] != nil {
		t.Error("edge-1 still tracks the user after the freeze")
	}
	if site2.Loc.users[b.Name] == nil {
		t.Error("edge-2 has no imported track after the resume")
	}

	// The frame loop resumed on the new site: responses keep arriving
	// after the crossing, and the continuity gap is bounded by one frame
	// timeout (the migration itself is far faster).
	crossAt := walkStart + sim.Time(crossings[0].At)
	var lastBefore, firstAfter sim.Time
	for _, at := range respTimes {
		if at <= crossAt {
			lastBefore = at
		} else if firstAfter == 0 {
			firstAfter = at
		}
	}
	if lastBefore == 0 || firstAfter == 0 {
		t.Fatalf("no frame responses bracketing the crossing (total %d)", len(respTimes))
	}
	if gap := firstAfter.Sub(lastBefore); gap > b.Frontend.FrameTimeout+time.Second {
		t.Errorf("continuity gap %v exceeds a frame timeout", gap)
	}
}
