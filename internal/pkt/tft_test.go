package pkt

import (
	"reflect"
	"testing"
	"testing/quick"
)

func sampleTFT() TFT {
	return TFT{
		Op: TFTOpCreateNew,
		Filters: []PacketFilter{
			{
				ID: 1, Direction: DirBidirectional, Precedence: 10,
				RemoteAddr: AddrFrom(10, 10, 0, 5), RemoteMask: Addr{255, 255, 255, 255},
				Proto: ProtoUDP, RemotePortLo: 5000, RemotePortHi: 5010,
			},
			{
				ID: 2, Direction: DirUplink, Precedence: 20,
				Proto: ProtoTCP, LocalPortLo: 1024, LocalPortHi: 65535,
			},
		},
	}
}

func TestTFTEncodeDecodeRoundTrip(t *testing.T) {
	orig := sampleTFT()
	b := orig.Encode(nil)
	var got TFT
	n, err := got.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(b) {
		t.Errorf("decode consumed %d of %d bytes", n, len(b))
	}
	if !reflect.DeepEqual(got, orig) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, orig)
	}
}

func TestTFTMatchUplinkByRemoteAddr(t *testing.T) {
	server := AddrFrom(10, 10, 0, 5)
	tft := DedicatedBearerTFT(server)

	toServer := FiveTuple{Src: AddrFrom(172, 16, 0, 9), Dst: server, SrcPort: 40000, DstPort: 8080, Proto: ProtoTCP}
	if !tft.MatchUplink(toServer, 0) {
		t.Error("uplink packet to CI server did not match dedicated TFT")
	}

	toInternet := toServer
	toInternet.Dst = AddrFrom(93, 184, 216, 34)
	if tft.MatchUplink(toInternet, 0) {
		t.Error("internet-bound packet matched dedicated TFT")
	}
}

func TestTFTMatchDownlink(t *testing.T) {
	server := AddrFrom(10, 10, 0, 5)
	tft := DedicatedBearerTFT(server)
	fromServer := FiveTuple{Src: server, Dst: AddrFrom(172, 16, 0, 9), SrcPort: 8080, DstPort: 40000, Proto: ProtoTCP}
	if !tft.MatchDownlink(fromServer, 0) {
		t.Error("downlink packet from CI server did not match")
	}
	fromOther := fromServer
	fromOther.Src = AddrFrom(8, 8, 8, 8)
	if tft.MatchDownlink(fromOther, 0) {
		t.Error("downlink packet from other host matched")
	}
}

func TestTFTDirectionality(t *testing.T) {
	tft := TFT{Op: TFTOpCreateNew, Filters: []PacketFilter{{
		ID: 1, Direction: DirUplink, Precedence: 1,
		RemoteAddr: AddrFrom(9, 9, 9, 9), RemoteMask: Addr{255, 255, 255, 255},
	}}}
	up := FiveTuple{Src: AddrFrom(1, 1, 1, 1), Dst: AddrFrom(9, 9, 9, 9), Proto: ProtoUDP}
	down := up.Reverse()
	if !tft.MatchUplink(up, 0) {
		t.Error("uplink filter did not match uplink packet")
	}
	if tft.MatchDownlink(down, 0) {
		t.Error("uplink-only filter matched a downlink packet")
	}
}

func TestTFTPortRangeMatching(t *testing.T) {
	tft := TFT{Op: TFTOpCreateNew, Filters: []PacketFilter{{
		ID: 1, Direction: DirBidirectional, Precedence: 1,
		Proto: ProtoUDP, RemotePortLo: 5000, RemotePortHi: 5010,
	}}}
	base := FiveTuple{Src: AddrFrom(1, 1, 1, 1), Dst: AddrFrom(2, 2, 2, 2), SrcPort: 999, Proto: ProtoUDP}
	for _, tc := range []struct {
		port uint16
		want bool
	}{
		{4999, false}, {5000, true}, {5005, true}, {5010, true}, {5011, false},
	} {
		ft := base
		ft.DstPort = tc.port
		if got := tft.MatchUplink(ft, 0); got != tc.want {
			t.Errorf("port %d: match = %v, want %v", tc.port, got, tc.want)
		}
	}
}

func TestTFTProtocolMismatch(t *testing.T) {
	tft := TFT{Op: TFTOpCreateNew, Filters: []PacketFilter{{
		ID: 1, Direction: DirBidirectional, Precedence: 1, Proto: ProtoTCP,
	}}}
	udp := FiveTuple{Src: AddrFrom(1, 1, 1, 1), Dst: AddrFrom(2, 2, 2, 2), Proto: ProtoUDP}
	if tft.MatchUplink(udp, 0) {
		t.Error("TCP-only filter matched a UDP packet")
	}
}

func TestTFTSubnetMask(t *testing.T) {
	tft := TFT{Op: TFTOpCreateNew, Filters: []PacketFilter{{
		ID: 1, Direction: DirBidirectional, Precedence: 1,
		RemoteAddr: AddrFrom(10, 10, 0, 0), RemoteMask: Addr{255, 255, 0, 0},
	}}}
	in := FiveTuple{Src: AddrFrom(1, 1, 1, 1), Dst: AddrFrom(10, 10, 99, 3)}
	out := FiveTuple{Src: AddrFrom(1, 1, 1, 1), Dst: AddrFrom(10, 11, 0, 3)}
	if !tft.MatchUplink(in, 0) {
		t.Error("in-subnet destination did not match")
	}
	if tft.MatchUplink(out, 0) {
		t.Error("out-of-subnet destination matched")
	}
}

func TestTFTTOSMatching(t *testing.T) {
	tft := TFT{Op: TFTOpCreateNew, Filters: []PacketFilter{{
		ID: 1, Direction: DirBidirectional, Precedence: 1,
		TOSTrafficClass: 0x2e << 2, TOSMask: 0xfc,
	}}}
	ft := FiveTuple{Src: AddrFrom(1, 1, 1, 1), Dst: AddrFrom(2, 2, 2, 2)}
	if !tft.MatchUplink(ft, 0x2e<<2) {
		t.Error("matching TOS did not match")
	}
	if tft.MatchUplink(ft, 0) {
		t.Error("non-matching TOS matched")
	}
}

func TestTFTPrecedenceOrdering(t *testing.T) {
	// Two overlapping filters; matching consults them in precedence order.
	// Since TFT matching is existential the result is identical, but the
	// byPrecedence order must be stable and sorted.
	tft := TFT{Op: TFTOpCreateNew, Filters: []PacketFilter{
		{ID: 2, Direction: DirBidirectional, Precedence: 20},
		{ID: 1, Direction: DirBidirectional, Precedence: 10},
	}}
	fs := tft.byPrecedence()
	if fs[0].Precedence != 10 || fs[1].Precedence != 20 {
		t.Errorf("byPrecedence order: %v, %v", fs[0].Precedence, fs[1].Precedence)
	}
}

func TestTFTEmptyFilterIsWildcard(t *testing.T) {
	tft := TFT{Op: TFTOpCreateNew, Filters: []PacketFilter{{ID: 1, Direction: DirBidirectional}}}
	any := FiveTuple{Src: AddrFrom(5, 5, 5, 5), Dst: AddrFrom(6, 6, 6, 6), SrcPort: 1, DstPort: 2, Proto: ProtoICMP}
	if !tft.MatchUplink(any, 0xff) {
		t.Error("wildcard filter did not match arbitrary packet")
	}
}

func TestTFTEncodeTooManyFiltersPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Encode with 16 filters did not panic")
		}
	}()
	tft := TFT{Op: TFTOpCreateNew, Filters: make([]PacketFilter, 16)}
	tft.Encode(nil)
}

func TestTFTPropertyRoundTrip(t *testing.T) {
	f := func(id, prec, proto uint8, addr [4]byte, plo, phi uint16) bool {
		if phi < plo {
			plo, phi = phi, plo
		}
		if phi == 0 {
			phi = 1
		}
		orig := TFT{Op: TFTOpCreateNew, Filters: []PacketFilter{{
			ID: id & 0x0f, Direction: DirBidirectional, Precedence: prec,
			RemoteAddr: Addr(addr), RemoteMask: Addr{255, 255, 255, 255},
			Proto: proto, RemotePortLo: plo, RemotePortHi: phi,
		}}}
		b := orig.Encode(nil)
		var got TFT
		n, err := got.Decode(b)
		if err != nil || n != len(b) {
			return false
		}
		return reflect.DeepEqual(got, orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTFTDecodeTruncated(t *testing.T) {
	tft := sampleTFT()
	b := tft.Encode(nil)
	for n := 1; n < len(b); n++ {
		var got TFT
		if _, err := got.Decode(b[:n]); err == nil {
			t.Errorf("decode of %d-byte prefix succeeded", n)
		}
	}
}
