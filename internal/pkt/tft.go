package pkt

import (
	"fmt"
	"sort"
)

// TFT is a 3GPP TS 24.008 Traffic Flow Template: an ordered set of packet
// filters that binds traffic to a bearer. The UE's modem evaluates uplink
// TFTs to pick the radio bearer for each outgoing packet; the PGW evaluates
// downlink TFTs. This is the mechanism ACACIA uses to classify MEC traffic
// at the source without any in-network inspection.
type TFT struct {
	// Op is the TFT operation code.
	Op TFTOp
	// Filters are evaluated in increasing precedence value order
	// (lower value = higher precedence).
	Filters []PacketFilter
}

// TFTOp is the TS 24.008 TFT operation code.
type TFTOp uint8

// TFT operation codes (TS 24.008 §10.5.6.12).
const (
	TFTOpCreateNew      TFTOp = 1
	TFTOpDeleteExisting TFTOp = 2
	TFTOpAddFilters     TFTOp = 3
	TFTOpReplaceFilters TFTOp = 4
	TFTOpDeleteFilters  TFTOp = 5
)

// FilterDirection says which traffic direction a packet filter applies to.
type FilterDirection uint8

// Packet filter directions (TS 24.008 pre-release-7 combined with direction
// bits used since).
const (
	DirDownlink      FilterDirection = 1
	DirUplink        FilterDirection = 2
	DirBidirectional FilterDirection = 3
)

// PacketFilter is one TFT packet filter. Zero-valued components are treated
// as wildcards, mirroring the optional component encoding on the wire.
type PacketFilter struct {
	ID         uint8 // 0..15
	Direction  FilterDirection
	Precedence uint8 // lower = evaluated first

	// Components; zero value means "not present" (wildcard).
	RemoteAddr      Addr
	RemoteMask      Addr
	Proto           uint8 // 0 = any
	LocalPortLo     uint16
	LocalPortHi     uint16
	RemotePortLo    uint16
	RemotePortHi    uint16
	TOSTrafficClass uint8
	TOSMask         uint8
}

// Packet filter component type identifiers (TS 24.008 table 10.5.162).
const (
	pfcIPv4RemoteAddr  = 0x10
	pfcProtocol        = 0x30
	pfcLocalPortRange  = 0x41
	pfcRemotePortRange = 0x51
	pfcTOSClass        = 0x70
)

// MatchUplink reports whether an uplink packet with the given five-tuple and
// TOS byte matches the filter. For uplink traffic the "remote" end is the
// destination and the "local" end is the UE's source port.
func (p *PacketFilter) MatchUplink(ft FiveTuple, tos uint8) bool {
	if p.Direction == DirDownlink {
		return false
	}
	return p.match(ft.Dst, ft.SrcPort, ft.DstPort, ft.Proto, tos)
}

// MatchDownlink reports whether a downlink packet matches the filter. For
// downlink traffic the "remote" end is the source.
func (p *PacketFilter) MatchDownlink(ft FiveTuple, tos uint8) bool {
	if p.Direction == DirUplink {
		return false
	}
	return p.match(ft.Src, ft.DstPort, ft.SrcPort, ft.Proto, tos)
}

func (p *PacketFilter) match(remote Addr, localPort, remotePort uint16, proto, tos uint8) bool {
	if !p.RemoteAddr.IsZero() || !p.RemoteMask.IsZero() {
		for i := 0; i < 4; i++ {
			if remote[i]&p.RemoteMask[i] != p.RemoteAddr[i]&p.RemoteMask[i] {
				return false
			}
		}
	}
	if p.Proto != 0 && proto != p.Proto {
		return false
	}
	if p.LocalPortHi != 0 && (localPort < p.LocalPortLo || localPort > p.LocalPortHi) {
		return false
	}
	if p.RemotePortHi != 0 && (remotePort < p.RemotePortLo || remotePort > p.RemotePortHi) {
		return false
	}
	if p.TOSMask != 0 && tos&p.TOSMask != p.TOSTrafficClass&p.TOSMask {
		return false
	}
	return true
}

// MatchUplink evaluates the TFT's filters in precedence order against an
// uplink packet and reports whether any filter matched.
func (t *TFT) MatchUplink(ft FiveTuple, tos uint8) bool {
	for i := range t.byPrecedence() {
		if t.Filters[i].MatchUplink(ft, tos) {
			return true
		}
	}
	return false
}

// MatchDownlink evaluates the TFT against a downlink packet.
func (t *TFT) MatchDownlink(ft FiveTuple, tos uint8) bool {
	for i := range t.byPrecedence() {
		if t.Filters[i].MatchDownlink(ft, tos) {
			return true
		}
	}
	return false
}

// byPrecedence returns filter indices sorted so precedence order holds; the
// common small-N case avoids allocation by sorting in place once.
func (t *TFT) byPrecedence() []PacketFilter {
	sort.SliceStable(t.Filters, func(i, j int) bool {
		return t.Filters[i].Precedence < t.Filters[j].Precedence
	})
	return t.Filters
}

// Encode appends the TS 24.008-style TFT encoding to b: one octet of
// opcode + filter count, then each filter as id, direction+precedence, a
// length octet and its component list.
//
//acacia:hotpath
func (t *TFT) Encode(b []byte) []byte {
	if len(t.Filters) > 15 {
		panicTFTOverflow()
	}
	b = append(b, byte(t.Op)<<5|byte(len(t.Filters)))
	for i := range t.Filters {
		f := &t.Filters[i]
		b = append(b, f.Direction.encodeWithID(f.ID), f.Precedence)
		// Component list appended in place behind a 1-octet length backfill.
		b = append(b, 0)
		pos := len(b)
		b = f.encodeComponents(b)
		b[pos-1] = byte(len(b) - pos)
	}
	return b
}

// panicTFTOverflow is noinline so the boxed panic message stays out of
// Encode's escape profile.
//
//go:noinline
func panicTFTOverflow() {
	panic("pkt: TFT holds at most 15 packet filters")
}

func (d FilterDirection) encodeWithID(id uint8) byte {
	return byte(d)<<4 | id&0x0f
}

func (p *PacketFilter) encodeComponents(b []byte) []byte {
	if !p.RemoteAddr.IsZero() || !p.RemoteMask.IsZero() {
		b = append(b, pfcIPv4RemoteAddr)
		b = append(b, p.RemoteAddr[:]...)
		b = append(b, p.RemoteMask[:]...)
	}
	if p.Proto != 0 {
		b = append(b, pfcProtocol, p.Proto)
	}
	if p.LocalPortHi != 0 {
		b = append(b, pfcLocalPortRange)
		b = putU16(b, p.LocalPortLo)
		b = putU16(b, p.LocalPortHi)
	}
	if p.RemotePortHi != 0 {
		b = append(b, pfcRemotePortRange)
		b = putU16(b, p.RemotePortLo)
		b = putU16(b, p.RemotePortHi)
	}
	if p.TOSMask != 0 {
		b = append(b, pfcTOSClass, p.TOSTrafficClass, p.TOSMask)
	}
	return b
}

// Decode parses a TFT from the front of b.
func (t *TFT) Decode(b []byte) (int, error) {
	r := &reader{b: b}
	head, err := r.u8()
	if err != nil {
		return 0, err
	}
	t.Op = TFTOp(head >> 5)
	n := int(head & 0x0f)
	t.Filters = make([]PacketFilter, 0, n)
	for i := 0; i < n; i++ {
		var f PacketFilter
		idDir, err := r.u8()
		if err != nil {
			return 0, err
		}
		f.ID = idDir & 0x0f
		f.Direction = FilterDirection(idDir >> 4)
		if f.Precedence, err = r.u8(); err != nil {
			return 0, err
		}
		clen, err := r.u8()
		if err != nil {
			return 0, err
		}
		comps, err := r.bytes(int(clen))
		if err != nil {
			return 0, err
		}
		if err := f.decodeComponents(comps); err != nil {
			return 0, fmt.Errorf("pkt: TFT filter %d: %w", i, err)
		}
		t.Filters = append(t.Filters, f)
	}
	return r.off, nil
}

func (p *PacketFilter) decodeComponents(b []byte) error {
	r := &reader{b: b}
	for r.remaining() > 0 {
		typ, err := r.u8()
		if err != nil {
			return err
		}
		switch typ {
		case pfcIPv4RemoteAddr:
			raw, err := r.bytes(8)
			if err != nil {
				return err
			}
			copy(p.RemoteAddr[:], raw[:4])
			copy(p.RemoteMask[:], raw[4:])
		case pfcProtocol:
			if p.Proto, err = r.u8(); err != nil {
				return err
			}
		case pfcLocalPortRange:
			if p.LocalPortLo, err = r.u16(); err != nil {
				return err
			}
			if p.LocalPortHi, err = r.u16(); err != nil {
				return err
			}
		case pfcRemotePortRange:
			if p.RemotePortLo, err = r.u16(); err != nil {
				return err
			}
			if p.RemotePortHi, err = r.u16(); err != nil {
				return err
			}
		case pfcTOSClass:
			if p.TOSTrafficClass, err = r.u8(); err != nil {
				return err
			}
			if p.TOSMask, err = r.u8(); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown packet filter component 0x%02x", typ)
		}
	}
	return nil
}

// DedicatedBearerTFT builds the uplink TFT ACACIA installs for a CI
// application: all traffic to the CI server's address (any port, any
// protocol) rides the dedicated bearer.
func DedicatedBearerTFT(ciServer Addr) TFT {
	return TFT{
		Op: TFTOpCreateNew,
		Filters: []PacketFilter{{
			ID:         1,
			Direction:  DirBidirectional,
			Precedence: 0,
			RemoteAddr: ciServer,
			RemoteMask: Addr{255, 255, 255, 255},
		}},
	}
}
