package pkt

import "fmt"

// GTPUPort is the standard UDP port for GTP-U (user plane).
const GTPUPort = 2152

// GTPULen is the mandatory GTP-U header length (no optional fields).
const GTPULen = 8

// GTPU is the GTPv1-U tunneling header that carries user traffic on the
// S1 (eNB<->SGW-U) and S5 (SGW-U<->PGW-U) bearers. Each bearer direction is
// identified by its Tunnel Endpoint Identifier (TEID), allocated by the
// receiving endpoint.
type GTPU struct {
	MsgType uint8  // GTPUMsgGPDU for user data
	Length  uint16 // payload length after the 8-byte header
	TEID    uint32
}

// GTP-U message types used by the testbed.
const (
	GTPUMsgEchoRequest  = 1
	GTPUMsgEchoResponse = 2
	GTPUMsgErrorInd     = 26
	GTPUMsgEndMarker    = 254
	GTPUMsgGPDU         = 255
)

// Encode appends the header to b.
func (g *GTPU) Encode(b []byte) []byte {
	// Version 1, protocol type GTP (1), no extension/sequence/N-PDU flags.
	b = append(b, 0x30, g.MsgType)
	b = putU16(b, g.Length)
	return putU32(b, g.TEID)
}

// Decode parses the header from the front of b.
func (g *GTPU) Decode(b []byte) (int, error) {
	r := &reader{b: b}
	flags, err := r.u8()
	if err != nil {
		return 0, err
	}
	if flags>>5 != 1 {
		return 0, fmt.Errorf("pkt: GTP-U version %d unsupported", flags>>5)
	}
	if flags&0x10 == 0 {
		return 0, fmt.Errorf("pkt: GTP-U protocol type GTP' unsupported")
	}
	if flags&0x07 != 0 {
		return 0, fmt.Errorf("pkt: GTP-U optional fields unsupported (flags 0x%02x)", flags)
	}
	if g.MsgType, err = r.u8(); err != nil {
		return 0, err
	}
	if g.Length, err = r.u16(); err != nil {
		return 0, err
	}
	if g.TEID, err = r.u32(); err != nil {
		return 0, err
	}
	return r.off, nil
}

// EncapsulateGPDU builds the full outer encapsulation for a user packet of
// innerLen bytes tunneled between two gateway addresses: outer IPv4 + UDP +
// GTP-U. It returns the encoded outer headers; the caller accounts for
// innerLen separately. Hot paths should use AppendGPDU with a reused scratch
// buffer instead.
func EncapsulateGPDU(src, dst Addr, teid uint32, innerLen int) []byte {
	return AppendGPDU(nil, src, dst, teid, innerLen)
}

// AppendGPDU appends the outer G-PDU encapsulation headers (IPv4 + UDP +
// GTP-U, GTPUOverhead bytes) for a user packet of innerLen bytes to b and
// returns the extended slice. With a caller-owned scratch buffer of
// sufficient capacity (b[:0] reuse), the encap path performs zero
// allocations.
//
//acacia:hotpath
func AppendGPDU(b []byte, src, dst Addr, teid uint32, innerLen int) []byte {
	g := GTPU{MsgType: GTPUMsgGPDU, Length: uint16(innerLen), TEID: teid}
	u := UDP{SrcPort: GTPUPort, DstPort: GTPUPort, Length: uint16(UDPLen + GTPULen + innerLen)}
	ip := IPv4{
		TotalLen: uint16(IPv4Len + UDPLen + GTPULen + innerLen),
		Proto:    ProtoUDP,
		Src:      src, Dst: dst,
	}
	b = ip.Encode(b)
	b = u.Encode(b)
	return g.Encode(b)
}

// GTPUOverhead is the per-packet byte overhead of GTP-U encapsulation
// (outer IPv4 + UDP + GTP-U), the quantity that middlebox-based MEC
// approaches must strip and ACACIA's gateways add/remove in the fast path.
const GTPUOverhead = IPv4Len + UDPLen + GTPULen

// DecapsulateGPDU parses the outer headers from b and returns the tunnel
// TEID and the inner packet bytes.
func DecapsulateGPDU(b []byte) (teid uint32, inner []byte, err error) {
	var ip IPv4
	n, err := ip.Decode(b)
	if err != nil {
		return 0, nil, err
	}
	if ip.Proto != ProtoUDP {
		return 0, nil, fmt.Errorf("pkt: GTP-U outer protocol %d, want UDP", ip.Proto)
	}
	var u UDP
	m, err := u.Decode(b[n:])
	if err != nil {
		return 0, nil, err
	}
	if u.DstPort != GTPUPort {
		return 0, nil, fmt.Errorf("pkt: GTP-U outer dst port %d, want %d", u.DstPort, GTPUPort)
	}
	var g GTPU
	k, err := g.Decode(b[n+m:])
	if err != nil {
		return 0, nil, err
	}
	if g.MsgType != GTPUMsgGPDU {
		return 0, nil, fmt.Errorf("pkt: GTP-U message type %d, want G-PDU", g.MsgType)
	}
	off := n + m + k
	if len(b)-off < int(g.Length) {
		return 0, nil, fmt.Errorf("%w: G-PDU declares %d payload bytes, %d present", ErrTruncated, g.Length, len(b)-off)
	}
	return g.TEID, b[off : off+int(g.Length)], nil
}
