package pkt

import "fmt"

// IPv4Len and UDPLen are the fixed header lengths used by the simulated
// data plane (no IPv4 options).
const (
	IPv4Len = 20
	UDPLen  = 8
)

// IPv4 is a 20-byte option-less IPv4 header. Only the fields the testbed
// uses are modeled; checksum is computed on encode and verified on decode.
type IPv4 struct {
	TOS      uint8 // DSCP/ECN byte; carries the bearer's QCI-derived marking
	TotalLen uint16
	ID       uint16
	TTL      uint8
	Proto    uint8
	Src, Dst Addr
}

// Encode appends the header to b.
func (h *IPv4) Encode(b []byte) []byte {
	start := len(b)
	b = append(b, 0x45, h.TOS) // version 4, IHL 5
	b = putU16(b, h.TotalLen)
	b = putU16(b, h.ID)
	b = putU16(b, 0) // flags/fragment offset: unfragmented
	ttl := h.TTL
	if ttl == 0 {
		ttl = 64
	}
	b = append(b, ttl, h.Proto)
	b = putU16(b, 0) // checksum placeholder
	b = append(b, h.Src[:]...)
	b = append(b, h.Dst[:]...)
	cs := ipChecksum(b[start : start+IPv4Len])
	b[start+10] = byte(cs >> 8)
	b[start+11] = byte(cs)
	return b
}

// Decode parses the header from the front of b.
func (h *IPv4) Decode(b []byte) (int, error) {
	r := &reader{b: b}
	vihl, err := r.u8()
	if err != nil {
		return 0, err
	}
	if vihl != 0x45 {
		return 0, fmt.Errorf("pkt: unsupported IPv4 version/IHL 0x%02x", vihl)
	}
	if h.TOS, err = r.u8(); err != nil {
		return 0, err
	}
	if h.TotalLen, err = r.u16(); err != nil {
		return 0, err
	}
	if h.ID, err = r.u16(); err != nil {
		return 0, err
	}
	if _, err = r.u16(); err != nil { // flags/frag
		return 0, err
	}
	if h.TTL, err = r.u8(); err != nil {
		return 0, err
	}
	if h.Proto, err = r.u8(); err != nil {
		return 0, err
	}
	if _, err = r.u16(); err != nil { // checksum
		return 0, err
	}
	var src, dst []byte
	if src, err = r.bytes(4); err != nil {
		return 0, err
	}
	if dst, err = r.bytes(4); err != nil {
		return 0, err
	}
	copy(h.Src[:], src)
	copy(h.Dst[:], dst)
	if ipChecksum(b[:IPv4Len]) != 0 {
		return 0, fmt.Errorf("pkt: bad IPv4 checksum")
	}
	return r.off, nil
}

// ipChecksum computes the RFC 1071 ones-complement checksum over hdr.
// Over a header with a correct checksum field the result is 0.
func ipChecksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		sum += uint32(hdr[i])<<8 | uint32(hdr[i+1])
	}
	if len(hdr)%2 == 1 {
		sum += uint32(hdr[len(hdr)-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// UDP is an 8-byte UDP header. The checksum is left zero (legal for IPv4 and
// what GTP-U deployments commonly do).
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16 // header + payload
}

// Encode appends the header to b.
func (u *UDP) Encode(b []byte) []byte {
	b = putU16(b, u.SrcPort)
	b = putU16(b, u.DstPort)
	b = putU16(b, u.Length)
	return putU16(b, 0)
}

// Decode parses the header from the front of b.
func (u *UDP) Decode(b []byte) (int, error) {
	r := &reader{b: b}
	var err error
	if u.SrcPort, err = r.u16(); err != nil {
		return 0, err
	}
	if u.DstPort, err = r.u16(); err != nil {
		return 0, err
	}
	if u.Length, err = r.u16(); err != nil {
		return 0, err
	}
	if _, err = r.u16(); err != nil {
		return 0, err
	}
	if u.Length < UDPLen {
		return 0, fmt.Errorf("pkt: UDP length %d shorter than header", u.Length)
	}
	return r.off, nil
}
