package pkt

import "fmt"

// NAS EPS messages (TS 24.301): the actual payloads carried opaquely inside
// S1AP NAS transport IEs. Implementing the real encodings lets the control
// procedures serialize genuine attach/service-request/bearer-activation
// content — the TFT a dedicated bearer delivers to the UE modem rides
// inside an ESM Activate Dedicated EPS Bearer Context Request, exactly as
// on the air.

// NAS protocol discriminators.
const (
	nasPDESM = 0x02 // EPS session management
	nasPDEMM = 0x07 // EPS mobility management
)

// NAS message types used by the testbed.
const (
	NASAttachRequest  = 0x41
	NASAttachAccept   = 0x42
	NASAttachComplete = 0x43
	NASDetachRequest  = 0x45
	NASServiceRequest = 0x4D // simplified: full header form
	NASServiceAccept  = 0x4F

	NASActivateDefaultBearerRequest   = 0xC1
	NASActivateDedicatedBearerRequest = 0xC5
)

// NASMsg is the decoded form of the NAS messages the procedures exchange.
// Fields are populated according to Type.
type NASMsg struct {
	Type uint8

	// IMSI identifies the UE (attach/detach).
	IMSI string
	// UEIP is the PDN address in attach accept.
	UEIP Addr
	// APN is the access point name in bearer activation.
	APN string
	// EBI / LinkedEBI identify bearers in ESM messages.
	EBI, LinkedEBI uint8
	// QoS and TFT ride dedicated bearer activation.
	QoS *BearerQoS
	TFT *TFT
	// ESM, for EMM messages with a piggybacked ESM container (attach
	// request/accept), holds the nested session-management message.
	ESM *NASMsg
}

// nasZeroGUTI is the stylized all-zero GUTI appended to attach accepts.
var nasZeroGUTI [11]byte

// Encode appends the NAS message. Nested fields (the piggybacked ESM
// container, LV-framed identities, QoS and TFT) are appended in place with
// length backfills, so encoding into a reused scratch buffer allocates
// nothing.
//
//acacia:hotpath
func (m *NASMsg) Encode(b []byte) []byte {
	switch m.Type {
	case NASAttachRequest:
		// PD+security header, message type, attach type octet, identity,
		// UE network capability (4 octets), piggybacked ESM container.
		b = append(b, nasPDEMM, NASAttachRequest, 0x01)
		var lv int
		b, lv = beginNASLV(b)
		b = appendTBCD(b, m.IMSI)
		b = endNASLV(b, lv)
		b = append(b, 0x04, 0xe0, 0xe0, 0x00, 0x00) // capability TLV
		b = m.appendESMContainer(b)
	case NASAttachAccept:
		b = append(b, nasPDEMM, NASAttachAccept, 0x01) // EPS-only result
		// TAI list (stylized 6-octet entry) + GUTI (11 octets, stylized).
		b = append(b, 0x06, 0x00, 0x01, 0x00, 0x01, 0x00, 0x01)
		b = append(b, 0x0b)
		b = append(b, nasZeroGUTI[:]...)
		b = m.appendESMContainer(b)
	case NASAttachComplete:
		b = append(b, nasPDEMM, NASAttachComplete)
		b = putU16(b, 0) // empty ESM container (accept acknowledged)
	case NASDetachRequest:
		b = append(b, nasPDEMM, NASDetachRequest, 0x01) // EPS detach, switch-off 0
		var lv int
		b, lv = beginNASLV(b)
		b = appendTBCD(b, m.IMSI)
		b = endNASLV(b, lv)
	case NASServiceRequest:
		// Real service requests are 4 octets (short MAC); keep the shape.
		b = append(b, nasPDEMM, NASServiceRequest, 0x00, 0x00)
	case NASServiceAccept:
		b = append(b, nasPDEMM, NASServiceAccept)
	case NASActivateDefaultBearerRequest:
		b = append(b, nasPDESM|m.EBI<<4, NASActivateDefaultBearerRequest)
		var lv int
		b, lv = beginNASLV(b)
		b = append(b, m.APN...)
		b = endNASLV(b, lv)
		// PDN address: type IPv4 + address.
		b = append(b, 0x05, 0x01)
		b = append(b, m.UEIP[:]...)
		if m.QoS != nil {
			b, lv = beginNASLV(b)
			b = m.QoS.encode(b)
			b = endNASLV(b, lv)
		} else {
			b = append(b, 0)
		}
	case NASActivateDedicatedBearerRequest:
		b = append(b, nasPDESM|m.EBI<<4, NASActivateDedicatedBearerRequest, m.LinkedEBI)
		var lv int
		if m.QoS != nil {
			b, lv = beginNASLV(b)
			b = m.QoS.encode(b)
			b = endNASLV(b, lv)
		} else {
			b = append(b, 0)
		}
		if m.TFT != nil {
			b, lv = beginNASLV(b)
			b = m.TFT.Encode(b)
			b = endNASLV(b, lv)
		} else {
			b = append(b, 0)
		}
	default:
		badNASType(m.Type)
	}
	return b
}

//go:noinline
func badNASType(t uint8) {
	panic(fmt.Sprintf("pkt: cannot encode NAS type 0x%02x", t))
}

// appendESMContainer appends the 2-byte-length ESM container, encoding the
// nested message in place with a length backfill.
//
//acacia:hotpath
func (m *NASMsg) appendESMContainer(b []byte) []byte {
	b = putU16(b, 0)
	if m.ESM == nil {
		return b
	}
	pos := len(b)
	b = m.ESM.Encode(b)
	n := len(b) - pos
	b[pos-2] = byte(n >> 8)
	b[pos-1] = byte(n)
	return b
}

// Decode parses a NAS message from the front of b, returning bytes
// consumed.
func (m *NASMsg) Decode(b []byte) (int, error) {
	r := &reader{b: b}
	pd, err := r.u8()
	if err != nil {
		return 0, err
	}
	typ, err := r.u8()
	if err != nil {
		return 0, err
	}
	m.Type = typ
	switch typ {
	case NASAttachRequest:
		if pd&0x0f != nasPDEMM {
			return 0, fmt.Errorf("pkt: attach request with PD 0x%02x", pd)
		}
		if _, err := r.u8(); err != nil { // attach type
			return 0, err
		}
		id, err := readNASLV(r)
		if err != nil {
			return 0, err
		}
		m.IMSI = decodeTBCD(id)
		if _, err := readNASLV(r); err != nil { // capability
			return 0, err
		}
		if err := m.decodeESMContainer(r); err != nil {
			return 0, err
		}
	case NASAttachAccept:
		if _, err := r.u8(); err != nil { // result
			return 0, err
		}
		if _, err := readNASLV(r); err != nil { // TAI list
			return 0, err
		}
		if _, err := readNASLV(r); err != nil { // GUTI
			return 0, err
		}
		if err := m.decodeESMContainer(r); err != nil {
			return 0, err
		}
	case NASAttachComplete:
		if _, err := r.u16(); err != nil {
			return 0, err
		}
	case NASDetachRequest:
		if _, err := r.u8(); err != nil {
			return 0, err
		}
		id, err := readNASLV(r)
		if err != nil {
			return 0, err
		}
		m.IMSI = decodeTBCD(id)
	case NASServiceRequest:
		if _, err := r.u16(); err != nil {
			return 0, err
		}
	case NASServiceAccept:
		// Header only.
	case NASActivateDefaultBearerRequest:
		m.EBI = pd >> 4
		apn, err := readNASLV(r)
		if err != nil {
			return 0, err
		}
		m.APN = string(apn)
		pdn, err := readNASLV(r)
		if err != nil {
			return 0, err
		}
		if len(pdn) != 5 || pdn[0] != 0x01 {
			return 0, fmt.Errorf("pkt: malformed PDN address")
		}
		copy(m.UEIP[:], pdn[1:])
		qosRaw, err := readNASLV(r)
		if err != nil {
			return 0, err
		}
		if len(qosRaw) > 0 {
			m.QoS = &BearerQoS{}
			if err := m.QoS.decode(qosRaw); err != nil {
				return 0, err
			}
		}
	case NASActivateDedicatedBearerRequest:
		m.EBI = pd >> 4
		if m.LinkedEBI, err = r.u8(); err != nil {
			return 0, err
		}
		qosRaw, err := readNASLV(r)
		if err != nil {
			return 0, err
		}
		if len(qosRaw) > 0 {
			m.QoS = &BearerQoS{}
			if err := m.QoS.decode(qosRaw); err != nil {
				return 0, err
			}
		}
		tftRaw, err := readNASLV(r)
		if err != nil {
			return 0, err
		}
		if len(tftRaw) > 0 {
			m.TFT = &TFT{}
			if _, err := m.TFT.Decode(tftRaw); err != nil {
				return 0, err
			}
		}
	default:
		return 0, fmt.Errorf("pkt: unknown NAS type 0x%02x", typ)
	}
	return r.off, nil
}

func (m *NASMsg) decodeESMContainer(r *reader) error {
	n, err := r.u16()
	if err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	raw, err := r.bytes(int(n))
	if err != nil {
		return err
	}
	esm := &NASMsg{}
	if _, err := esm.Decode(raw); err != nil {
		return err
	}
	m.ESM = esm
	return nil
}

// beginNASLV opens a length-value field (1-octet length placeholder),
// returning the position endNASLV uses to backfill the length once the value
// has been appended in place.
//
//acacia:hotpath
func beginNASLV(b []byte) ([]byte, int) {
	b = append(b, 0)
	return b, len(b)
}

// endNASLV backfills the length of the LV field opened at start.
//
//acacia:hotpath
func endNASLV(b []byte, start int) []byte {
	n := len(b) - start
	if n > 255 {
		panicLVTooLong()
	}
	b[start-1] = byte(n)
	return b
}

// panicLVTooLong is noinline so the boxed panic message stays out of the
// escape profiles of the hotpath encoders endNASLV inlines into.
//
//go:noinline
func panicLVTooLong() {
	panic("pkt: NAS LV field too long")
}

func readNASLV(r *reader) ([]byte, error) {
	n, err := r.u8()
	if err != nil {
		return nil, err
	}
	return r.bytes(int(n))
}
