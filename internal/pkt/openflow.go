package pkt

import "fmt"

// OpenFlow-style messages between the SDN controller (the testbed's Ryu
// analog) and the GW-U switches (the OVS analogs). The encoding follows
// OpenFlow 1.3 framing: an 8-byte header, a 40-byte flow-mod body, an OXM
// TLV match padded to 8 bytes, and instruction/action lists padded to 8
// bytes. The GTP encap/decap capability is expressed the way the testbed's
// extended OVS does it — a tunnel-metadata set-field plus output to a GTP
// logical port.

// OFMsgType is the OpenFlow message type.
type OFMsgType uint8

// Message types used by the testbed (OpenFlow 1.3 numbering).
const (
	OFHello       OFMsgType = 0
	OFEchoRequest OFMsgType = 2
	OFEchoReply   OFMsgType = 3
	OFPacketIn    OFMsgType = 10
	OFFlowRemoved OFMsgType = 11
	OFPortStatus  OFMsgType = 12
	OFPacketOut   OFMsgType = 13
	OFFlowMod     OFMsgType = 14
	OFBarrier     OFMsgType = 20
)

// String names the message type.
func (t OFMsgType) String() string {
	switch t {
	case OFHello:
		return "Hello"
	case OFEchoRequest:
		return "EchoRequest"
	case OFEchoReply:
		return "EchoReply"
	case OFPacketIn:
		return "PacketIn"
	case OFFlowRemoved:
		return "FlowRemoved"
	case OFPortStatus:
		return "PortStatus"
	case OFPacketOut:
		return "PacketOut"
	case OFFlowMod:
		return "FlowMod"
	case OFBarrier:
		return "Barrier"
	default:
		return fmt.Sprintf("OFMsgType(%d)", uint8(t))
	}
}

// FlowMod commands.
const (
	FlowModAdd    = 0
	FlowModModify = 1
	FlowModDelete = 3
)

// OXM match field identifiers (OpenFlow 1.3 OFB numbering; TunnelID is the
// field the GTP extension uses for the TEID).
const (
	OXMInPort   = 0
	OXMEthType  = 5
	OXMIPProto  = 10
	OXMIPv4Src  = 11
	OXMIPv4Dst  = 12
	OXMUDPSrc   = 15
	OXMUDPDst   = 16
	OXMTunnelID = 38
)

// Match is the set of OXM fields a flow entry matches on. Nil-valued
// (unset) fields are wildcards.
type Match struct {
	InPort   *uint32
	EthType  *uint16
	IPProto  *uint8
	IPv4Src  *Addr
	IPv4Dst  *Addr
	UDPSrc   *uint16
	UDPDst   *uint16
	TunnelID *uint64 // GTP TEID carried in tunnel metadata
}

// U32 returns a pointer to v, a convenience for building matches.
func U32(v uint32) *uint32 { return &v }

// U16 returns a pointer to v.
func U16(v uint16) *uint16 { return &v }

// U8 returns a pointer to v.
func U8(v uint8) *uint8 { return &v }

// U64 returns a pointer to v.
func U64(v uint64) *uint64 { return &v }

// AddrPtr returns a pointer to a.
func AddrPtr(a Addr) *Addr { return &a }

// Matches reports whether a packet view satisfies every set field.
func (m *Match) Matches(inPort uint32, ft FiveTuple, tunnelID uint64) bool {
	if m.InPort != nil && *m.InPort != inPort {
		return false
	}
	if m.IPProto != nil && *m.IPProto != ft.Proto {
		return false
	}
	if m.IPv4Src != nil && *m.IPv4Src != ft.Src {
		return false
	}
	if m.IPv4Dst != nil && *m.IPv4Dst != ft.Dst {
		return false
	}
	if m.UDPSrc != nil && *m.UDPSrc != ft.SrcPort {
		return false
	}
	if m.UDPDst != nil && *m.UDPDst != ft.DstPort {
		return false
	}
	if m.TunnelID != nil && *m.TunnelID != tunnelID {
		return false
	}
	return true
}

// SpecificityScore counts set fields; used to order overlapping entries of
// equal priority deterministically.
func (m *Match) SpecificityScore() int {
	n := 0
	for _, set := range []bool{m.InPort != nil, m.EthType != nil, m.IPProto != nil,
		m.IPv4Src != nil, m.IPv4Dst != nil, m.UDPSrc != nil, m.UDPDst != nil, m.TunnelID != nil} {
		if set {
			n++
		}
	}
	return n
}

func (m *Match) encode(b []byte) []byte {
	start := len(b)
	b = putU16(b, 1) // OFPMT_OXM
	b = putU16(b, 0) // length placeholder
	oxm := func(field uint8, val []byte) {
		b = putU16(b, 0x8000) // OFPXMC_OPENFLOW_BASIC
		b = append(b, field<<1, byte(len(val)))
		b = append(b, val...)
	}
	if m.InPort != nil {
		oxm(OXMInPort, u32bytes(*m.InPort))
	}
	if m.EthType != nil {
		oxm(OXMEthType, []byte{byte(*m.EthType >> 8), byte(*m.EthType)})
	}
	if m.IPProto != nil {
		oxm(OXMIPProto, []byte{*m.IPProto})
	}
	if m.IPv4Src != nil {
		oxm(OXMIPv4Src, m.IPv4Src[:])
	}
	if m.IPv4Dst != nil {
		oxm(OXMIPv4Dst, m.IPv4Dst[:])
	}
	if m.UDPSrc != nil {
		oxm(OXMUDPSrc, []byte{byte(*m.UDPSrc >> 8), byte(*m.UDPSrc)})
	}
	if m.UDPDst != nil {
		oxm(OXMUDPDst, []byte{byte(*m.UDPDst >> 8), byte(*m.UDPDst)})
	}
	if m.TunnelID != nil {
		v := *m.TunnelID
		oxm(OXMTunnelID, []byte{byte(v >> 56), byte(v >> 48), byte(v >> 40), byte(v >> 32),
			byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
	}
	mlen := len(b) - start
	b[start+2] = byte(mlen >> 8)
	b[start+3] = byte(mlen)
	// Pad to 8-byte boundary as OpenFlow requires.
	for (len(b)-start)%8 != 0 {
		b = append(b, 0)
	}
	return b
}

func (m *Match) decode(r *reader) error {
	start := r.off
	typ, err := r.u16()
	if err != nil {
		return err
	}
	if typ != 1 {
		return fmt.Errorf("pkt: OpenFlow match type %d, want OXM", typ)
	}
	mlen, err := r.u16()
	if err != nil {
		return err
	}
	end := start + int(mlen)
	for r.off < end {
		if _, err := r.u16(); err != nil { // OXM class
			return err
		}
		fieldHM, err := r.u8()
		if err != nil {
			return err
		}
		vlen, err := r.u8()
		if err != nil {
			return err
		}
		val, err := r.bytes(int(vlen))
		if err != nil {
			return err
		}
		switch fieldHM >> 1 {
		case OXMInPort:
			m.InPort = U32(be.Uint32(val))
		case OXMEthType:
			m.EthType = U16(be.Uint16(val))
		case OXMIPProto:
			m.IPProto = U8(val[0])
		case OXMIPv4Src:
			var a Addr
			copy(a[:], val)
			m.IPv4Src = &a
		case OXMIPv4Dst:
			var a Addr
			copy(a[:], val)
			m.IPv4Dst = &a
		case OXMUDPSrc:
			m.UDPSrc = U16(be.Uint16(val))
		case OXMUDPDst:
			m.UDPDst = U16(be.Uint16(val))
		case OXMTunnelID:
			m.TunnelID = U64(be.Uint64(val))
		default:
			return fmt.Errorf("pkt: unknown OXM field %d", fieldHM>>1)
		}
	}
	// Consume padding to the 8-byte boundary.
	for (r.off-start)%8 != 0 {
		if _, err := r.u8(); err != nil {
			return err
		}
	}
	return nil
}

// ActionType identifies a flow action.
type ActionType uint8

// Actions supported by the testbed's extended OVS.
const (
	// ActionOutput forwards to a switch port; GTP logical ports perform
	// encapsulation on output and decapsulation on input.
	ActionOutput ActionType = iota + 1
	// ActionSetTunnel sets the tunnel metadata (TEID + remote endpoint)
	// consumed by a subsequent output to a GTP logical port.
	ActionSetTunnel
	// ActionSetField rewrites a header field (used for TOS remarking).
	ActionSetField
	// ActionDrop discards the packet (encoded as an empty action list in
	// real OpenFlow; explicit here for clarity).
	ActionDrop
)

// Action is one flow-entry action.
type Action struct {
	Type       ActionType
	Port       uint32 // ActionOutput
	TunnelID   uint64 // ActionSetTunnel: GTP TEID
	TunnelDst  Addr   // ActionSetTunnel: remote GTP endpoint
	FieldValue uint8  // ActionSetField: new TOS
}

func (a *Action) encode(b []byte) []byte {
	switch a.Type {
	case ActionOutput:
		// OFPAT_OUTPUT: type(2) len(2) port(4) max_len(2) pad(6) = 16.
		b = putU16(b, 0)
		b = putU16(b, 16)
		b = putU32(b, a.Port)
		b = putU16(b, 0xffff)
		return append(b, 0, 0, 0, 0, 0, 0)
	case ActionSetTunnel:
		// Experimenter action: type(2)=0xffff len(2) exp_id(4) subtype(2)
		// pad(2) tunnel_id(8) dst(4) pad(4) = 24.
		b = putU16(b, 0xffff)
		b = putU16(b, 24)
		b = putU32(b, 0x00002320) // Nicira experimenter id, as OVS uses
		b = putU16(b, 1)          // subtype: set GTP tunnel
		b = append(b, 0, 0)
		v := a.TunnelID
		b = append(b, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
			byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
		return append(b, a.TunnelDst[:]...)
	case ActionSetField:
		// OFPAT_SET_FIELD with a 1-byte OXM, padded to 16.
		b = putU16(b, 25)
		b = putU16(b, 16)
		b = putU16(b, 0x8000)
		b = append(b, 8<<1, 1, a.FieldValue) // IP DSCP
		return append(b, 0, 0, 0, 0, 0, 0, 0)
	case ActionDrop:
		// Encoded as an experimenter no-op so the list length reflects it.
		b = putU16(b, 0xffff)
		b = putU16(b, 8)
		return putU32(b, 0)
	default:
		panic(fmt.Sprintf("pkt: unknown action type %d", a.Type))
	}
}

func decodeAction(r *reader) (Action, error) {
	var a Action
	typ, err := r.u16()
	if err != nil {
		return a, err
	}
	alen, err := r.u16()
	if err != nil {
		return a, err
	}
	body, err := r.bytes(int(alen) - 4)
	if err != nil {
		return a, err
	}
	switch typ {
	case 0:
		a.Type = ActionOutput
		a.Port = be.Uint32(body[:4])
	case 25:
		a.Type = ActionSetField
		a.FieldValue = body[4]
	case 0xffff:
		if alen == 8 {
			a.Type = ActionDrop
			return a, nil
		}
		a.Type = ActionSetTunnel
		a.TunnelID = be.Uint64(body[8:16])
		copy(a.TunnelDst[:], body[16:20])
	default:
		return a, fmt.Errorf("pkt: unknown action type %d", typ)
	}
	return a, nil
}

// OFMsg is one controller<->switch message.
type OFMsg struct {
	Type OFMsgType
	XID  uint32

	// FlowMod fields.
	Command     uint8
	TableID     uint8
	Priority    uint16
	IdleTimeout uint16 // seconds; 0 = permanent
	HardTimeout uint16
	Cookie      uint64
	Match       Match
	Actions     []Action

	// PacketIn / PacketOut fields.
	BufferID uint32
	InPort   uint32
	DataLen  uint16 // bytes of packet data carried
	Reason   uint8
}

const ofHeaderLen = 8

// Encode appends the message to b.
func (m *OFMsg) Encode(b []byte) []byte {
	start := len(b)
	b = append(b, 0x04, byte(m.Type)) // OpenFlow 1.3
	b = putU16(b, 0)                  // length placeholder
	b = putU32(b, m.XID)
	switch m.Type {
	case OFFlowMod:
		// cookie(8) cookie_mask(8) table(1) cmd(1) idle(2) hard(2) prio(2)
		// buffer(4) out_port(4) out_group(4) flags(2) pad(2) = 40.
		b = putU32(b, uint32(m.Cookie>>32))
		b = putU32(b, uint32(m.Cookie))
		b = putU32(b, 0xffffffff)
		b = putU32(b, 0xffffffff)
		b = append(b, m.TableID, m.Command)
		b = putU16(b, m.IdleTimeout)
		b = putU16(b, m.HardTimeout)
		b = putU16(b, m.Priority)
		b = putU32(b, 0xffffffff) // OFP_NO_BUFFER
		b = putU32(b, 0xffffffff) // out_port any
		b = putU32(b, 0xffffffff) // out_group any
		b = putU16(b, 1)          // OFPFF_SEND_FLOW_REM
		b = putU16(b, 0)          // pad
		b = m.Match.encode(b)
		// One OFPIT_APPLY_ACTIONS instruction wrapping the action list.
		istart := len(b)
		b = putU16(b, 4) // OFPIT_APPLY_ACTIONS
		b = putU16(b, 0) // length placeholder
		b = putU32(b, 0) // pad
		for i := range m.Actions {
			b = m.Actions[i].encode(b)
		}
		ilen := len(b) - istart
		b[istart+2] = byte(ilen >> 8)
		b[istart+3] = byte(ilen)
	case OFPacketIn:
		b = putU32(b, m.BufferID)
		b = putU16(b, m.DataLen)
		b = append(b, m.Reason, m.TableID)
		b = putU32(b, uint32(m.Cookie>>32))
		b = putU32(b, uint32(m.Cookie))
		b = m.Match.encode(b)
		b = putU16(b, 0) // pad
		b = append(b, make([]byte, m.DataLen)...)
	case OFPacketOut:
		b = putU32(b, m.BufferID)
		b = putU32(b, m.InPort)
		astart := len(b)
		b = putU16(b, 0)                // actions length placeholder
		b = append(b, 0, 0, 0, 0, 0, 0) // pad
		alen0 := len(b)
		for i := range m.Actions {
			b = m.Actions[i].encode(b)
		}
		alen := len(b) - alen0
		b[astart] = byte(alen >> 8)
		b[astart+1] = byte(alen)
		b = append(b, make([]byte, m.DataLen)...)
	case OFHello, OFEchoRequest, OFEchoReply, OFBarrier:
		// Header only.
	case OFPortStatus:
		// reason(1) + pad(7), then the affected path carried in the match
		// (GTP path supervision identifies "ports" by peer address).
		b = append(b, m.Reason)
		b = append(b, make([]byte, 7)...)
		b = m.Match.encode(b)
	case OFFlowRemoved:
		b = putU32(b, uint32(m.Cookie>>32))
		b = putU32(b, uint32(m.Cookie))
		b = putU16(b, m.Priority)
		b = append(b, m.Reason, m.TableID)
		b = append(b, make([]byte, 24)...) // duration/timeouts/counters
		b = m.Match.encode(b)
	default:
		panic(fmt.Sprintf("pkt: cannot encode OpenFlow type %v", m.Type))
	}
	total := len(b) - start
	b[start+2] = byte(total >> 8)
	b[start+3] = byte(total)
	return b
}

// Decode parses a message from the front of b.
func (m *OFMsg) Decode(b []byte) (int, error) {
	r := &reader{b: b}
	ver, err := r.u8()
	if err != nil {
		return 0, err
	}
	if ver != 0x04 {
		return 0, fmt.Errorf("pkt: OpenFlow version 0x%02x unsupported", ver)
	}
	typ, err := r.u8()
	if err != nil {
		return 0, err
	}
	m.Type = OFMsgType(typ)
	total, err := r.u16()
	if err != nil {
		return 0, err
	}
	if len(b) < int(total) {
		return 0, fmt.Errorf("%w: OpenFlow declares %d bytes, %d present", ErrTruncated, total, len(b))
	}
	if m.XID, err = r.u32(); err != nil {
		return 0, err
	}
	switch m.Type {
	case OFFlowMod:
		hi, err := r.u32()
		if err != nil {
			return 0, err
		}
		lo, err := r.u32()
		if err != nil {
			return 0, err
		}
		m.Cookie = uint64(hi)<<32 | uint64(lo)
		if _, err := r.bytes(8); err != nil { // cookie mask
			return 0, err
		}
		if m.TableID, err = r.u8(); err != nil {
			return 0, err
		}
		if m.Command, err = r.u8(); err != nil {
			return 0, err
		}
		if m.IdleTimeout, err = r.u16(); err != nil {
			return 0, err
		}
		if m.HardTimeout, err = r.u16(); err != nil {
			return 0, err
		}
		if m.Priority, err = r.u16(); err != nil {
			return 0, err
		}
		if _, err := r.bytes(16); err != nil { // buffer, out port/group, flags, pad
			return 0, err
		}
		m.Match = Match{}
		if err := m.Match.decode(r); err != nil {
			return 0, err
		}
		m.Actions = nil
		for r.off < int(total) {
			if _, err := r.u16(); err != nil { // instruction type
				return 0, err
			}
			ilen, err := r.u16()
			if err != nil {
				return 0, err
			}
			if _, err := r.u32(); err != nil { // pad
				return 0, err
			}
			iend := r.off + int(ilen) - 8
			for r.off < iend {
				a, err := decodeAction(r)
				if err != nil {
					return 0, err
				}
				m.Actions = append(m.Actions, a)
			}
		}
	case OFPacketIn:
		if m.BufferID, err = r.u32(); err != nil {
			return 0, err
		}
		if m.DataLen, err = r.u16(); err != nil {
			return 0, err
		}
		if m.Reason, err = r.u8(); err != nil {
			return 0, err
		}
		if m.TableID, err = r.u8(); err != nil {
			return 0, err
		}
		hi, err := r.u32()
		if err != nil {
			return 0, err
		}
		lo, err := r.u32()
		if err != nil {
			return 0, err
		}
		m.Cookie = uint64(hi)<<32 | uint64(lo)
		m.Match = Match{}
		if err := m.Match.decode(r); err != nil {
			return 0, err
		}
		if _, err := r.u16(); err != nil {
			return 0, err
		}
		if _, err := r.bytes(int(m.DataLen)); err != nil {
			return 0, err
		}
	case OFPacketOut:
		if m.BufferID, err = r.u32(); err != nil {
			return 0, err
		}
		if m.InPort, err = r.u32(); err != nil {
			return 0, err
		}
		alen, err := r.u16()
		if err != nil {
			return 0, err
		}
		if _, err := r.bytes(6); err != nil {
			return 0, err
		}
		aend := r.off + int(alen)
		m.Actions = nil
		for r.off < aend {
			a, err := decodeAction(r)
			if err != nil {
				return 0, err
			}
			m.Actions = append(m.Actions, a)
		}
		m.DataLen = uint16(int(total) - r.off)
		if _, err := r.bytes(int(m.DataLen)); err != nil {
			return 0, err
		}
	case OFHello, OFEchoRequest, OFEchoReply, OFBarrier:
		// Header only.
	case OFPortStatus:
		if m.Reason, err = r.u8(); err != nil {
			return 0, err
		}
		if _, err := r.bytes(7); err != nil {
			return 0, err
		}
		m.Match = Match{}
		if err := m.Match.decode(r); err != nil {
			return 0, err
		}
	case OFFlowRemoved:
		hi, err := r.u32()
		if err != nil {
			return 0, err
		}
		lo, err := r.u32()
		if err != nil {
			return 0, err
		}
		m.Cookie = uint64(hi)<<32 | uint64(lo)
		if m.Priority, err = r.u16(); err != nil {
			return 0, err
		}
		if m.Reason, err = r.u8(); err != nil {
			return 0, err
		}
		if m.TableID, err = r.u8(); err != nil {
			return 0, err
		}
		if _, err := r.bytes(24); err != nil {
			return 0, err
		}
		m.Match = Match{}
		if err := m.Match.decode(r); err != nil {
			return 0, err
		}
	default:
		return 0, fmt.Errorf("pkt: cannot decode OpenFlow type %d", typ)
	}
	return int(total), nil
}
