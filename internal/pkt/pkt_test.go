package pkt

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestAddrString(t *testing.T) {
	a := AddrFrom(10, 0, 3, 7)
	if got := a.String(); got != "10.0.3.7" {
		t.Errorf("String() = %q, want 10.0.3.7", got)
	}
	if a.IsZero() {
		t.Error("non-zero address reported zero")
	}
	if (Addr{}).IsZero() == false {
		t.Error("zero address not reported zero")
	}
}

func TestAddrUint32RoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		return AddrFromUint32(v).Uint32() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFiveTupleReverse(t *testing.T) {
	ft := FiveTuple{
		Src: AddrFrom(1, 2, 3, 4), Dst: AddrFrom(5, 6, 7, 8),
		SrcPort: 1111, DstPort: 2222, Proto: ProtoTCP,
	}
	rev := ft.Reverse()
	if rev.Src != ft.Dst || rev.Dst != ft.Src || rev.SrcPort != ft.DstPort || rev.DstPort != ft.SrcPort {
		t.Errorf("Reverse() = %v", rev)
	}
	if rev.Reverse() != ft {
		t.Error("double reverse is not the identity")
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	h := IPv4{
		TOS:      0x2e,
		TotalLen: 1500,
		ID:       4242,
		TTL:      61,
		Proto:    ProtoUDP,
		Src:      AddrFrom(192, 168, 1, 10),
		Dst:      AddrFrom(10, 9, 8, 7),
	}
	b := h.Encode(nil)
	if len(b) != IPv4Len {
		t.Fatalf("encoded length %d, want %d", len(b), IPv4Len)
	}
	var got IPv4
	n, err := got.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if n != IPv4Len {
		t.Errorf("decode consumed %d, want %d", n, IPv4Len)
	}
	if got != h {
		t.Errorf("round trip: got %+v, want %+v", got, h)
	}
}

func TestIPv4ChecksumDetectsCorruption(t *testing.T) {
	h := IPv4{TotalLen: 100, Proto: ProtoTCP, Src: AddrFrom(1, 1, 1, 1), Dst: AddrFrom(2, 2, 2, 2)}
	b := h.Encode(nil)
	b[16] ^= 0x40 // corrupt destination address
	var got IPv4
	if _, err := got.Decode(b); err == nil {
		t.Error("decode accepted corrupted header")
	}
}

func TestIPv4DefaultTTL(t *testing.T) {
	h := IPv4{TotalLen: 40, Proto: ProtoTCP, Src: AddrFrom(1, 0, 0, 1), Dst: AddrFrom(1, 0, 0, 2)}
	b := h.Encode(nil)
	var got IPv4
	if _, err := got.Decode(b); err != nil {
		t.Fatal(err)
	}
	if got.TTL != 64 {
		t.Errorf("default TTL = %d, want 64", got.TTL)
	}
}

func TestIPv4TruncatedInput(t *testing.T) {
	h := IPv4{TotalLen: 40, Src: AddrFrom(1, 0, 0, 1), Dst: AddrFrom(1, 0, 0, 2)}
	b := h.Encode(nil)
	for n := 0; n < IPv4Len; n++ {
		var got IPv4
		if _, err := got.Decode(b[:n]); err == nil {
			t.Errorf("decode of %d-byte prefix succeeded", n)
		}
	}
}

func TestUDPRoundTrip(t *testing.T) {
	u := UDP{SrcPort: 2152, DstPort: 2152, Length: 508}
	b := u.Encode(nil)
	if len(b) != UDPLen {
		t.Fatalf("encoded length %d, want %d", len(b), UDPLen)
	}
	var got UDP
	if _, err := got.Decode(b); err != nil {
		t.Fatal(err)
	}
	if got != u {
		t.Errorf("round trip: got %+v, want %+v", got, u)
	}
}

func TestUDPRejectsShortLength(t *testing.T) {
	u := UDP{SrcPort: 1, DstPort: 2, Length: 4} // shorter than the header itself
	b := u.Encode(nil)
	var got UDP
	if _, err := got.Decode(b); err == nil {
		t.Error("decode accepted UDP length shorter than header")
	}
}

func TestGTPURoundTrip(t *testing.T) {
	f := func(msgType uint8, length uint16, teid uint32) bool {
		g := GTPU{MsgType: msgType, Length: length, TEID: teid}
		b := g.Encode(nil)
		if len(b) != GTPULen {
			return false
		}
		var got GTPU
		n, err := got.Decode(b)
		return err == nil && n == GTPULen && got == g
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncapsulateDecapsulateGPDU(t *testing.T) {
	src, dst := AddrFrom(10, 0, 0, 1), AddrFrom(10, 0, 0, 2)
	const teid = 0xdeadbeef
	inner := []byte("user packet payload, 28 bytes!!!")
	outer := EncapsulateGPDU(src, dst, teid, len(inner))
	if len(outer) != GTPUOverhead {
		t.Fatalf("outer headers %d bytes, want %d", len(outer), GTPUOverhead)
	}
	full := append(append([]byte{}, outer...), inner...)
	gotTEID, gotInner, err := DecapsulateGPDU(full)
	if err != nil {
		t.Fatal(err)
	}
	if gotTEID != teid {
		t.Errorf("TEID = %#x, want %#x", gotTEID, teid)
	}
	if !bytes.Equal(gotInner, inner) {
		t.Errorf("inner = %q, want %q", gotInner, inner)
	}
}

func TestDecapsulateRejectsNonGTP(t *testing.T) {
	// A plain UDP packet to another port must not decapsulate.
	ip := IPv4{TotalLen: IPv4Len + UDPLen, Proto: ProtoUDP, Src: AddrFrom(1, 1, 1, 1), Dst: AddrFrom(2, 2, 2, 2)}
	u := UDP{SrcPort: 53, DstPort: 53, Length: UDPLen}
	b := u.Encode(ip.Encode(nil))
	if _, _, err := DecapsulateGPDU(b); err == nil {
		t.Error("decapsulated a non-GTP packet")
	}
}

func TestDecapsulateTruncatedPayload(t *testing.T) {
	outer := EncapsulateGPDU(AddrFrom(1, 0, 0, 1), AddrFrom(1, 0, 0, 2), 7, 100)
	// Claimed 100 payload bytes but none present.
	if _, _, err := DecapsulateGPDU(outer); err == nil {
		t.Error("accepted truncated G-PDU")
	}
}

func TestGTPURejectsWrongVersion(t *testing.T) {
	g := GTPU{MsgType: GTPUMsgGPDU, TEID: 1}
	b := g.Encode(nil)
	b[0] = 0x50 // version 2
	var got GTPU
	if _, err := got.Decode(b); err == nil {
		t.Error("accepted GTP version 2 header in GTP-U decoder")
	}
}
