package pkt

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestGTPv2CreateSessionRoundTrip(t *testing.T) {
	qos := &BearerQoS{QCI: QCIDefault, ARP: 9, MaxBitrateUL: 50_000_000, MaxBitrateDL: 100_000_000}
	orig := GTPv2Msg{
		Type:        GTPv2CreateSessionRequest,
		TEID:        0,
		Seq:         0x000102,
		IMSI:        "001010123456789",
		SenderFTEID: &FTEID{IfaceType: FTEIDIfaceS5SGW, TEID: 0x1000, Addr: AddrFrom(10, 0, 1, 1)},
		Bearers: []BearerContext{{
			EBI:    5,
			QoS:    qos,
			FTEIDs: []FTEID{{IfaceType: FTEIDIfaceS1USGW, TEID: 0x2000, Addr: AddrFrom(10, 0, 1, 2)}},
		}},
	}
	b := orig.Encode(nil)
	var got GTPv2Msg
	n, err := got.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(b) {
		t.Errorf("decode consumed %d of %d", n, len(b))
	}
	if !reflect.DeepEqual(got, orig) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, orig)
	}
}

func TestGTPv2CreateBearerWithTFTRoundTrip(t *testing.T) {
	tft := DedicatedBearerTFT(AddrFrom(10, 20, 0, 9))
	orig := GTPv2Msg{
		Type: GTPv2CreateBearerRequest,
		TEID: 0xabc,
		Seq:  7,
		Bearers: []BearerContext{{
			EBI: 6,
			TFT: &tft,
			QoS: &BearerQoS{QCI: QCIMEC, ARP: 2},
			FTEIDs: []FTEID{
				{IfaceType: FTEIDIfaceS1USGW, TEID: 0x111, Addr: AddrFrom(10, 20, 0, 1)},
				{IfaceType: FTEIDIfaceS5PGW, TEID: 0x222, Addr: AddrFrom(10, 20, 0, 2)},
			},
		}},
	}
	b := orig.Encode(nil)
	var got GTPv2Msg
	if _, err := got.Decode(b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, orig) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, orig)
	}
	if got.Bearers[0].QoS.QCI != QCIMEC {
		t.Errorf("QCI = %d, want %d", got.Bearers[0].QoS.QCI, QCIMEC)
	}
}

func TestGTPv2ResponseWithCause(t *testing.T) {
	orig := GTPv2Msg{
		Type:    GTPv2CreateBearerResponse,
		TEID:    1,
		Seq:     7,
		Cause:   GTPv2CauseAccepted,
		Bearers: []BearerContext{{EBI: 6, Cause: GTPv2CauseAccepted}},
	}
	b := orig.Encode(nil)
	var got GTPv2Msg
	if _, err := got.Decode(b); err != nil {
		t.Fatal(err)
	}
	if got.Cause != GTPv2CauseAccepted || got.Bearers[0].Cause != GTPv2CauseAccepted {
		t.Errorf("causes: msg=%d bearer=%d", got.Cause, got.Bearers[0].Cause)
	}
}

func TestGTPv2PAARoundTrip(t *testing.T) {
	orig := GTPv2Msg{
		Type: GTPv2CreateSessionResponse,
		TEID: 5, Seq: 9,
		Cause: GTPv2CauseAccepted,
		PAA:   AddrFrom(172, 16, 0, 42),
	}
	b := orig.Encode(nil)
	var got GTPv2Msg
	if _, err := got.Decode(b); err != nil {
		t.Fatal(err)
	}
	if got.PAA != orig.PAA {
		t.Errorf("PAA = %v, want %v", got.PAA, orig.PAA)
	}
}

func TestGTPv2SeqIs24Bit(t *testing.T) {
	orig := GTPv2Msg{Type: GTPv2DeleteBearerRequest, Seq: 0x01ffffff}
	b := orig.Encode(nil)
	var got GTPv2Msg
	if _, err := got.Decode(b); err != nil {
		t.Fatal(err)
	}
	if got.Seq != 0x00ffffff {
		t.Errorf("Seq = %#x, want 24-bit truncation 0x00ffffff", got.Seq)
	}
}

func TestGTPv2RejectsWrongVersion(t *testing.T) {
	b := (&GTPv2Msg{Type: GTPv2DeleteBearerRequest}).Encode(nil)
	b[0] = 0x30 // version 1
	var got GTPv2Msg
	if _, err := got.Decode(b); err == nil {
		t.Error("accepted GTPv1 flags in GTPv2 decoder")
	}
}

func TestGTPv2DecodeTruncated(t *testing.T) {
	tft := DedicatedBearerTFT(AddrFrom(1, 2, 3, 4))
	msg := GTPv2Msg{
		Type: GTPv2CreateBearerRequest, Seq: 1,
		Bearers: []BearerContext{{EBI: 6, TFT: &tft, QoS: &BearerQoS{QCI: 5, ARP: 1}}},
	}
	b := msg.Encode(nil)
	for n := 1; n < len(b); n++ {
		var got GTPv2Msg
		if _, err := got.Decode(b[:n]); err == nil {
			t.Errorf("decode of %d-byte prefix succeeded (len %d)", n, len(b))
		}
	}
}

func TestTBCDRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		// Build a digit string from the fuzz input.
		digits := make([]byte, 0, len(raw)%16)
		for _, r := range raw {
			digits = append(digits, '0'+r%10)
			if len(digits) == 15 {
				break
			}
		}
		s := string(digits)
		return decodeTBCD(appendTBCD(nil, s)) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFTEIDRoundTrip(t *testing.T) {
	f := func(iface uint8, teid uint32, addr [4]byte) bool {
		orig := FTEID{IfaceType: iface & 0x3f, TEID: teid, Addr: Addr(addr)}
		var got FTEID
		if err := got.decode(orig.encode(nil)); err != nil {
			return false
		}
		return got == orig
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBearerQoSRoundTrip(t *testing.T) {
	orig := BearerQoS{
		QCI: 1, ARP: 3,
		MaxBitrateUL: 12_000_000, MaxBitrateDL: 50_000_000,
		GuaranteedUL: 5_000_000, GuaranteedDL: 10_000_000,
	}
	b := orig.encode(nil)
	if len(b) != 22 {
		t.Errorf("Bearer QoS IE payload %d bytes, want 22", len(b))
	}
	var got BearerQoS
	if err := got.decode(b); err != nil {
		t.Fatal(err)
	}
	if got != orig {
		t.Errorf("round trip: got %+v, want %+v", got, orig)
	}
}

func TestGTPv2MsgTypeString(t *testing.T) {
	if GTPv2CreateBearerRequest.String() != "CreateBearerRequest" {
		t.Errorf("String() = %q", GTPv2CreateBearerRequest.String())
	}
	if GTPv2MsgType(250).String() == "" {
		t.Error("unknown type produced empty string")
	}
}
