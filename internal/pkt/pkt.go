// Package pkt implements the wire encodings used by the ACACIA testbed:
// IPv4/UDP headers, the GTP-U user-plane tunneling header, GTPv2-C control
// messages, S1AP-style control messages carried over an SCTP-like transport,
// an OpenFlow-style switch-programming protocol, 3GPP traffic flow templates
// (TFTs), and the QCI QoS class table.
//
// The design follows the layered encode/decode style of gopacket: each layer
// type knows how to serialize itself to bytes and decode itself from bytes,
// and decoding never panics on malformed input — it returns an error with the
// offending offset. Byte counts produced here feed the paper's §4 control
// overhead accounting, so encodings use realistic header and IE framing.
package pkt

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrTruncated reports input shorter than a header or declared length field.
var ErrTruncated = errors.New("pkt: truncated input")

// Layer is an encodable/decodable protocol layer.
type Layer interface {
	// Encode appends the layer's wire representation to b and returns the
	// extended slice.
	Encode(b []byte) []byte
	// Decode parses the layer from the front of b and returns the number of
	// bytes consumed.
	Decode(b []byte) (int, error)
}

// EncodedLen reports the wire length of a layer by encoding it into a
// scratch buffer.
func EncodedLen(l Layer) int { return len(l.Encode(nil)) }

// be is the byte order used by every encoding in this package (network
// order, as on the wire).
var be = binary.BigEndian

// reader is a bounds-checked cursor over a byte slice used by decoders.
type reader struct {
	b   []byte
	off int
}

func (r *reader) remaining() int { return len(r.b) - r.off }

func (r *reader) u8() (byte, error) {
	if r.remaining() < 1 {
		return 0, fmt.Errorf("%w at offset %d", ErrTruncated, r.off)
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

func (r *reader) u16() (uint16, error) {
	if r.remaining() < 2 {
		return 0, fmt.Errorf("%w at offset %d", ErrTruncated, r.off)
	}
	v := be.Uint16(r.b[r.off:])
	r.off += 2
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if r.remaining() < 4 {
		return 0, fmt.Errorf("%w at offset %d", ErrTruncated, r.off)
	}
	v := be.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) bytes(n int) ([]byte, error) {
	if n < 0 || r.remaining() < n {
		return nil, fmt.Errorf("%w: need %d bytes at offset %d", ErrTruncated, n, r.off)
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v, nil
}

func putU16(b []byte, v uint16) []byte {
	return append(b, byte(v>>8), byte(v))
}

func putU32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// Addr is a 4-byte network address (IPv4-style). Addresses identify nodes in
// the simulated network and appear inside F-TEID and TFT encodings.
type Addr [4]byte

// AddrFrom builds an address from four octets.
func AddrFrom(a, b, c, d byte) Addr { return Addr{a, b, c, d} }

// AddrFromUint32 builds an address from its 32-bit big-endian value.
func AddrFromUint32(v uint32) Addr {
	return Addr{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}

// Uint32 reports the address as a 32-bit big-endian value.
func (a Addr) Uint32() uint32 { return be.Uint32(a[:]) }

// IsZero reports whether a is the zero address.
func (a Addr) IsZero() bool { return a == Addr{} }

// String formats the address in dotted-quad notation.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// FiveTuple identifies a flow: the classification key for TFT packet filters
// and SDN flow-table matches.
type FiveTuple struct {
	Src, Dst         Addr
	SrcPort, DstPort uint16
	Proto            uint8
}

// Protocol numbers used by the testbed.
const (
	ProtoTCP  = 6
	ProtoUDP  = 17
	ProtoICMP = 1
)

// Reverse returns the tuple with endpoints swapped (the downlink view of an
// uplink flow).
func (f FiveTuple) Reverse() FiveTuple {
	return FiveTuple{
		Src: f.Dst, Dst: f.Src,
		SrcPort: f.DstPort, DstPort: f.SrcPort,
		Proto: f.Proto,
	}
}

// String formats the tuple as src:port->dst:port/proto.
func (f FiveTuple) String() string {
	return fmt.Sprintf("%v:%d->%v:%d/%d", f.Src, f.SrcPort, f.Dst, f.DstPort, f.Proto)
}
