package pkt

import "fmt"

// GTPv2-C: the control-plane protocol on S11 (MME<->SGW-C) and S5/S8
// (SGW-C<->PGW-C). The testbed exchanges these messages to create the
// default bearer at attach, to activate the network-initiated dedicated MEC
// bearer, and to release/re-establish bearers around LTE idle transitions.
// Encodings use the real TS 29.274 framing (12-byte header with TEID, 4-byte
// TLIV IE headers) so the §4 control-overhead byte accounting is measured
// from actual serialized messages.

// GTPv2 message types (TS 29.274 §6.1).
type GTPv2MsgType uint8

// Message types used by the testbed.
const (
	GTPv2CreateSessionRequest         GTPv2MsgType = 32
	GTPv2CreateSessionResponse        GTPv2MsgType = 33
	GTPv2ModifyBearerRequest          GTPv2MsgType = 34
	GTPv2ModifyBearerResponse         GTPv2MsgType = 35
	GTPv2DeleteSessionRequest         GTPv2MsgType = 36
	GTPv2DeleteSessionResponse        GTPv2MsgType = 37
	GTPv2CreateBearerRequest          GTPv2MsgType = 95
	GTPv2CreateBearerResponse         GTPv2MsgType = 96
	GTPv2DeleteBearerRequest          GTPv2MsgType = 99
	GTPv2DeleteBearerResponse         GTPv2MsgType = 100
	GTPv2ReleaseAccessBearersRequest  GTPv2MsgType = 170
	GTPv2ReleaseAccessBearersResponse GTPv2MsgType = 171
)

// String names the message type.
func (t GTPv2MsgType) String() string {
	switch t {
	case GTPv2CreateSessionRequest:
		return "CreateSessionRequest"
	case GTPv2CreateSessionResponse:
		return "CreateSessionResponse"
	case GTPv2ModifyBearerRequest:
		return "ModifyBearerRequest"
	case GTPv2ModifyBearerResponse:
		return "ModifyBearerResponse"
	case GTPv2DeleteSessionRequest:
		return "DeleteSessionRequest"
	case GTPv2DeleteSessionResponse:
		return "DeleteSessionResponse"
	case GTPv2CreateBearerRequest:
		return "CreateBearerRequest"
	case GTPv2CreateBearerResponse:
		return "CreateBearerResponse"
	case GTPv2DeleteBearerRequest:
		return "DeleteBearerRequest"
	case GTPv2DeleteBearerResponse:
		return "DeleteBearerResponse"
	case GTPv2ReleaseAccessBearersRequest:
		return "ReleaseAccessBearersRequest"
	case GTPv2ReleaseAccessBearersResponse:
		return "ReleaseAccessBearersResponse"
	default:
		return fmt.Sprintf("GTPv2MsgType(%d)", uint8(t))
	}
}

// GTPv2 IE type codes (TS 29.274 §8.1 subset).
const (
	ieIMSI          = 1
	ieCause         = 2
	ieEBI           = 73
	ieBearerTFT     = 84
	ieBearerQoS     = 80
	ieFTEID         = 87
	ieBearerContext = 93
	iePAA           = 79 // PDN address allocation (UE IP)
)

// FTEID is a fully qualified tunnel endpoint identifier: the (interface
// type, TEID, address) triple that tells a peer gateway where to send
// tunneled traffic. ACACIA's pivotal trick is that the SGW-C/PGW-C place
// *local* (edge) GW-U addresses here for dedicated bearers, steering MEC
// traffic to the edge without any eNB or protocol changes.
type FTEID struct {
	IfaceType uint8 // TS 29.274 interface type (e.g. 0=S1-U eNB, 1=S1-U SGW, 4=S5 SGW, 5=S5 PGW)
	TEID      uint32
	Addr      Addr
}

// F-TEID interface types used by the testbed.
const (
	FTEIDIfaceS1UeNodeB = 0
	FTEIDIfaceS1USGW    = 1
	FTEIDIfaceS5SGW     = 4
	FTEIDIfaceS5PGW     = 5
)

func (f *FTEID) encode(b []byte) []byte {
	b = append(b, 0x80|f.IfaceType&0x3f) // V4 flag + interface type
	b = putU32(b, f.TEID)
	return append(b, f.Addr[:]...)
}

func (f *FTEID) decode(b []byte) error {
	r := &reader{b: b}
	head, err := r.u8()
	if err != nil {
		return err
	}
	if head&0x80 == 0 {
		return fmt.Errorf("pkt: F-TEID without IPv4 address")
	}
	f.IfaceType = head & 0x3f
	if f.TEID, err = r.u32(); err != nil {
		return err
	}
	raw, err := r.bytes(4)
	if err != nil {
		return err
	}
	copy(f.Addr[:], raw)
	return nil
}

// BearerContext groups the per-bearer IEs inside bearer-related messages.
type BearerContext struct {
	EBI    uint8 // EPS bearer ID 5..15
	TFT    *TFT
	QoS    *BearerQoS
	FTEIDs []FTEID
	Cause  uint8 // present in responses
}

// GTPv2Cause values.
const (
	GTPv2CauseAccepted        = 16
	GTPv2CauseContextNotFound = 64
	GTPv2CauseDenied          = 65
)

// GTPv2Msg is one GTPv2-C message: header fields plus the IEs the testbed
// uses. Unset optional fields are omitted from the encoding.
type GTPv2Msg struct {
	Type GTPv2MsgType
	TEID uint32 // header TEID: the receiver's control TEID
	Seq  uint32 // 24-bit sequence number
	IMSI string // digits; identifies the UE in session-level messages
	// IMSIs carries the additional cohort members of a batched session
	// procedure (each encoded as its own IMSI IE after the primary). Empty
	// for single-UE messages, whose wire bytes are unchanged.
	IMSIs       []string
	Cause       uint8
	PAA         Addr // UE IP address assigned by the PGW
	SenderFTEID *FTEID
	Bearers     []BearerContext
}

const gtpv2HeaderLen = 12

// Encode appends the full message to b. Every IE — including nested encodes
// like the bearer context's TFT — is appended in place with a length
// backfill, so encoding into a reused scratch buffer allocates nothing.
//
//acacia:hotpath
func (m *GTPv2Msg) Encode(b []byte) []byte {
	start := len(b)
	b = append(b, 0x48, byte(m.Type)) // version 2, TEID flag set
	b = putU16(b, 0)                  // length placeholder
	b = putU32(b, m.TEID)
	b = append(b, byte(m.Seq>>16), byte(m.Seq>>8), byte(m.Seq), 0)

	if m.IMSI != "" {
		var ie int
		b, ie = beginIE(b, ieIMSI)
		b = appendTBCD(b, m.IMSI)
		b = endIE(b, ie)
	}
	for _, imsi := range m.IMSIs {
		var ie int
		b, ie = beginIE(b, ieIMSI)
		b = appendTBCD(b, imsi)
		b = endIE(b, ie)
	}
	if m.Cause != 0 {
		b = append(b, ieCause, 0, 2, 0, m.Cause, 0)
	}
	if !m.PAA.IsZero() {
		var ie int
		b, ie = beginIE(b, iePAA)
		b = append(b, 0x01) // PDN type IPv4
		b = append(b, m.PAA[:]...)
		b = endIE(b, ie)
	}
	if m.SenderFTEID != nil {
		var ie int
		b, ie = beginIE(b, ieFTEID)
		b = m.SenderFTEID.encode(b)
		b = endIE(b, ie)
	}
	for i := range m.Bearers {
		var ie int
		b, ie = beginIE(b, ieBearerContext)
		b = m.Bearers[i].encode(b)
		b = endIE(b, ie)
	}

	// Length counts everything after the first 4 header octets.
	msgLen := len(b) - start - 4
	b[start+2] = byte(msgLen >> 8)
	b[start+3] = byte(msgLen)
	return b
}

//acacia:hotpath
func (bc *BearerContext) encode(b []byte) []byte {
	b = append(b, ieEBI, 0, 1, 0, bc.EBI&0x0f)
	if bc.Cause != 0 {
		b = append(b, ieCause, 0, 2, 0, bc.Cause, 0)
	}
	if bc.TFT != nil {
		var ie int
		b, ie = beginIE(b, ieBearerTFT)
		b = bc.TFT.Encode(b)
		b = endIE(b, ie)
	}
	if bc.QoS != nil {
		var ie int
		b, ie = beginIE(b, ieBearerQoS)
		b = bc.QoS.encode(b)
		b = endIE(b, ie)
	}
	for i := range bc.FTEIDs {
		var ie int
		b, ie = beginIE(b, ieFTEID)
		b = bc.FTEIDs[i].encode(b)
		b = endIE(b, ie)
	}
	return b
}

// beginIE opens a TS 29.274 TLIV IE: type, 2-byte length placeholder,
// spare/instance octet. It returns the position endIE uses to backfill the
// length once the payload has been appended in place.
//
//acacia:hotpath
func beginIE(b []byte, typ uint8) ([]byte, int) {
	b = append(b, typ, 0, 0, 0)
	return b, len(b)
}

// endIE backfills the length of the IE opened at start.
//
//acacia:hotpath
func endIE(b []byte, start int) []byte {
	n := len(b) - start
	b[start-3] = byte(n >> 8)
	b[start-2] = byte(n)
	return b
}

// Decode parses a message from the front of b.
func (m *GTPv2Msg) Decode(b []byte) (int, error) {
	r := &reader{b: b}
	flags, err := r.u8()
	if err != nil {
		return 0, err
	}
	if flags>>5 != 2 {
		return 0, fmt.Errorf("pkt: GTPv2 version %d unsupported", flags>>5)
	}
	typ, err := r.u8()
	if err != nil {
		return 0, err
	}
	m.Type = GTPv2MsgType(typ)
	msgLen, err := r.u16()
	if err != nil {
		return 0, err
	}
	if r.remaining() < int(msgLen) {
		return 0, fmt.Errorf("%w: GTPv2 declares %d bytes, %d present", ErrTruncated, msgLen, r.remaining())
	}
	if m.TEID, err = r.u32(); err != nil {
		return 0, err
	}
	seq, err := r.bytes(4)
	if err != nil {
		return 0, err
	}
	m.Seq = uint32(seq[0])<<16 | uint32(seq[1])<<8 | uint32(seq[2])
	end := 4 + int(msgLen)
	m.IMSI, m.IMSIs, m.Cause, m.PAA, m.SenderFTEID, m.Bearers = "", nil, 0, Addr{}, nil, nil
	for r.off < end {
		typ, payload, err := readIE(r)
		if err != nil {
			return 0, err
		}
		switch typ {
		case ieIMSI:
			if m.IMSI == "" {
				m.IMSI = decodeTBCD(payload)
			} else {
				m.IMSIs = append(m.IMSIs, decodeTBCD(payload))
			}
		case ieCause:
			if len(payload) < 1 {
				return 0, fmt.Errorf("%w: empty cause IE", ErrTruncated)
			}
			m.Cause = payload[0]
		case iePAA:
			if len(payload) != 5 {
				return 0, fmt.Errorf("pkt: PAA IE length %d", len(payload))
			}
			copy(m.PAA[:], payload[1:])
		case ieFTEID:
			f := &FTEID{}
			if err := f.decode(payload); err != nil {
				return 0, err
			}
			m.SenderFTEID = f
		case ieBearerContext:
			var bc BearerContext
			if err := bc.decode(payload); err != nil {
				return 0, err
			}
			m.Bearers = append(m.Bearers, bc)
		default:
			return 0, fmt.Errorf("pkt: unknown GTPv2 IE %d", typ)
		}
	}
	return r.off, nil
}

func (bc *BearerContext) decode(b []byte) error {
	r := &reader{b: b}
	for r.remaining() > 0 {
		typ, payload, err := readIE(r)
		if err != nil {
			return err
		}
		switch typ {
		case ieEBI:
			if len(payload) < 1 {
				return fmt.Errorf("%w: empty EBI IE", ErrTruncated)
			}
			bc.EBI = payload[0] & 0x0f
		case ieCause:
			if len(payload) < 1 {
				return fmt.Errorf("%w: empty cause IE", ErrTruncated)
			}
			bc.Cause = payload[0]
		case ieBearerTFT:
			t := &TFT{}
			if _, err := t.Decode(payload); err != nil {
				return err
			}
			bc.TFT = t
		case ieBearerQoS:
			q := &BearerQoS{}
			if err := q.decode(payload); err != nil {
				return err
			}
			bc.QoS = q
		case ieFTEID:
			var f FTEID
			if err := f.decode(payload); err != nil {
				return err
			}
			bc.FTEIDs = append(bc.FTEIDs, f)
		default:
			return fmt.Errorf("pkt: unknown bearer context IE %d", typ)
		}
	}
	return nil
}

func readIE(r *reader) (typ uint8, payload []byte, err error) {
	if typ, err = r.u8(); err != nil {
		return 0, nil, err
	}
	length, err := r.u16()
	if err != nil {
		return 0, nil, err
	}
	if _, err = r.u8(); err != nil { // spare/instance
		return 0, nil, err
	}
	if payload, err = r.bytes(int(length)); err != nil {
		return 0, nil, err
	}
	return typ, payload, nil
}

// appendTBCD packs a digit string into telephony BCD (two digits per octet,
// 0xf filler for odd lengths), the IMSI wire format, appending in place.
//
//acacia:hotpath
func appendTBCD(b []byte, digits string) []byte {
	for i := 0; i < len(digits); i += 2 {
		lo := digits[i] - '0'
		hi := byte(0xf)
		if i+1 < len(digits) {
			hi = digits[i+1] - '0'
		}
		b = append(b, hi<<4|lo)
	}
	return b
}

func decodeTBCD(b []byte) string {
	out := make([]byte, 0, len(b)*2)
	for _, oct := range b {
		out = append(out, '0'+oct&0x0f)
		if oct>>4 != 0xf {
			out = append(out, '0'+oct>>4)
		}
	}
	return string(out)
}
