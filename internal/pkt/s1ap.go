package pkt

import "fmt"

// S1AP-style control messages between eNodeB and MME, carried over an
// SCTP-like transport. Real S1AP is ASN.1 PER-encoded; the testbed uses an
// equivalent TLV encoding with the same information content (UE identifiers,
// E-RAB lists with transport-layer addresses and GTP TEIDs, NAS payload
// carriage), framed in SCTP common-header + DATA-chunk framing so that the
// §4 byte accounting matches what a wire capture of the testbed would count.

// SCTP framing constants: 12-byte common header plus a 16-byte DATA chunk
// header per message.
const (
	SCTPCommonHeaderLen = 12
	SCTPDataChunkLen    = 16
	SCTPFramingLen      = SCTPCommonHeaderLen + SCTPDataChunkLen
)

// S1APProcedure identifies the S1AP (or NAS-carrying) procedure.
type S1APProcedure uint8

// Procedures used by the testbed.
const (
	S1APInitialUEMessage S1APProcedure = iota + 1
	S1APDownlinkNASTransport
	S1APUplinkNASTransport
	S1APInitialContextSetupRequest
	S1APInitialContextSetupResponse
	S1APERABSetupRequest // "Bearer Setup Request" in TS 36.413 terms
	S1APERABSetupResponse
	S1APERABReleaseCommand
	S1APERABReleaseResponse
	S1APUEContextReleaseRequest
	S1APUEContextReleaseCommand
	S1APUEContextReleaseComplete
	S1APPaging
	S1APHandoverRequired
	S1APHandoverRequest
	S1APHandoverRequestAck
	S1APHandoverCommand
	S1APHandoverNotify
)

var s1apNames = map[S1APProcedure]string{
	S1APInitialUEMessage:            "InitialUEMessage",
	S1APDownlinkNASTransport:        "DownlinkNASTransport",
	S1APUplinkNASTransport:          "UplinkNASTransport",
	S1APInitialContextSetupRequest:  "InitialContextSetupRequest",
	S1APInitialContextSetupResponse: "InitialContextSetupResponse",
	S1APERABSetupRequest:            "E-RABSetupRequest",
	S1APERABSetupResponse:           "E-RABSetupResponse",
	S1APERABReleaseCommand:          "E-RABReleaseCommand",
	S1APERABReleaseResponse:         "E-RABReleaseResponse",
	S1APUEContextReleaseRequest:     "UEContextReleaseRequest",
	S1APUEContextReleaseCommand:     "UEContextReleaseCommand",
	S1APUEContextReleaseComplete:    "UEContextReleaseComplete",
	S1APPaging:                      "Paging",
	S1APHandoverRequired:            "HandoverRequired",
	S1APHandoverRequest:             "HandoverRequest",
	S1APHandoverRequestAck:          "HandoverRequestAcknowledge",
	S1APHandoverCommand:             "HandoverCommand",
	S1APHandoverNotify:              "HandoverNotify",
}

// String names the procedure.
func (p S1APProcedure) String() string {
	if s, ok := s1apNames[p]; ok {
		return s
	}
	return unknownS1AP(p)
}

// unknownS1AP formats the out-of-range fallback. Noinline keeps its boxing
// out of the escape profiles of hotpath callers of String.
//
//go:noinline
func unknownS1AP(p S1APProcedure) string {
	return fmt.Sprintf("S1APProcedure(%d)", uint8(p))
}

// ERABItem is one E-RAB (bearer) entry in a setup/release list: the bearer
// identity, its QoS, the transport address + GTP TEID of the peer gateway,
// and — in the UE direction — the TFT delivered inside the RRC Connection
// Reconfiguration NAS payload.
type ERABItem struct {
	ERABID    uint8 // equals the EPS bearer ID
	QoS       *BearerQoS
	Transport FTEID // SGW-U (downlink-from-eNB view) or eNB (uplink view)
	TFT       *TFT  // present when the message carries the NAS TFT for the UE
}

// S1APMsg is one eNB<->MME control message.
type S1APMsg struct {
	Procedure S1APProcedure
	// TSN is the SCTP DATA-chunk transmission sequence number stamped by
	// the control transport's per-peer allocator.
	TSN     uint32
	ENBUEID uint32 // eNB UE S1AP ID
	MMEUEID uint32 // MME UE S1AP ID
	// NAS is the carried NAS PDU (attach, service request, ESM bearer
	// activation — see the nas.go encodings), or an opaque transparent
	// container for handover messages.
	NAS   []byte
	Cause uint8
	ERABs []ERABItem
}

// S1AP-lite IE tags.
const (
	s1apIEENBUEID = 1
	s1apIEMMEUEID = 2
	s1apIENAS     = 3
	s1apIECause   = 4
	s1apIEERAB    = 5
)

// Encode appends the SCTP-framed message to b: SCTP common header, DATA
// chunk header, then the S1AP-lite payload. The payload is encoded in place
// and the chunk length and checksum backfilled, so encoding into a reused
// scratch buffer allocates nothing.
//
//acacia:hotpath
func (m *S1APMsg) Encode(b []byte) []byte {
	start := len(b)
	// SCTP common header: src port, dst port, vtag, checksum (backfilled).
	b = putU16(b, 36412) // S1AP SCTP port
	b = putU16(b, 36412)
	b = putU32(b, 0xACAC1A00)
	b = putU32(b, 0) // checksum placeholder, offsets start+8..11
	// DATA chunk: type, flags, length (backfilled), TSN, stream id, stream
	// seq, ppid.
	b = append(b, 0, 0x03) // DATA, unfragmented
	b = putU16(b, 0)       // chunk length placeholder, offsets start+14..15
	b = putU32(b, m.TSN)   // TSN, from the transport's per-peer allocator
	b = putU16(b, 0)       // stream id
	b = putU16(b, 0)       // stream seq
	b = putU32(b, 18)      // PPID 18 = S1AP
	pstart := len(b)
	b = m.encodePayload(b)
	plen := len(b) - pstart
	chunkLen := uint16(SCTPDataChunkLen + plen)
	b[start+14] = byte(chunkLen >> 8)
	b[start+15] = byte(chunkLen)
	sum := crc32c(b[pstart:])
	b[start+8] = byte(sum >> 24)
	b[start+9] = byte(sum >> 16)
	b[start+10] = byte(sum >> 8)
	b[start+11] = byte(sum)
	return b
}

//acacia:hotpath
func (m *S1APMsg) encodePayload(b []byte) []byte {
	start := len(b)
	b = append(b, byte(m.Procedure), 0) // procedure, criticality
	b = putU16(b, 0)                    // length placeholder
	b = appendTLV8U32(b, s1apIEENBUEID, m.ENBUEID)
	if m.MMEUEID != 0 {
		b = appendTLV8U32(b, s1apIEMMEUEID, m.MMEUEID)
	}
	if len(m.NAS) > 0 {
		b = appendTLV8(b, s1apIENAS, m.NAS)
	}
	if m.Cause != 0 {
		b = append(b, s1apIECause, 0, 1, m.Cause)
	}
	for i := range m.ERABs {
		var tlv int
		b, tlv = beginTLV8(b, s1apIEERAB)
		b = m.ERABs[i].encode(b)
		b = endTLV8(b, tlv)
	}
	plen := len(b) - start - 4
	b[start+2] = byte(plen >> 8)
	b[start+3] = byte(plen)
	return b
}

func (e *ERABItem) encode(b []byte) []byte {
	b = append(b, e.ERABID)
	var flags byte
	if e.QoS != nil {
		flags |= 1
	}
	if e.TFT != nil {
		flags |= 2
	}
	b = append(b, flags)
	if e.QoS != nil {
		b = e.QoS.encode(b)
	}
	b = e.Transport.encode(b)
	if e.TFT != nil {
		b = e.TFT.Encode(b)
	}
	return b
}

func (e *ERABItem) decode(b []byte) error {
	r := &reader{b: b}
	var err error
	if e.ERABID, err = r.u8(); err != nil {
		return err
	}
	flags, err := r.u8()
	if err != nil {
		return err
	}
	if flags&1 != 0 {
		qosRaw, err := r.bytes(22)
		if err != nil {
			return err
		}
		e.QoS = &BearerQoS{}
		if err := e.QoS.decode(qosRaw); err != nil {
			return err
		}
	}
	tRaw, err := r.bytes(9)
	if err != nil {
		return err
	}
	if err := e.Transport.decode(tRaw); err != nil {
		return err
	}
	if flags&2 != 0 {
		e.TFT = &TFT{}
		n, err := e.TFT.Decode(r.b[r.off:])
		if err != nil {
			return err
		}
		r.off += n
	}
	return nil
}

// Decode parses an SCTP-framed message from the front of b.
func (m *S1APMsg) Decode(b []byte) (int, error) {
	r := &reader{b: b}
	if _, err := r.bytes(8); err != nil { // ports + vtag
		return 0, err
	}
	wantSum, err := r.u32()
	if err != nil {
		return 0, err
	}
	chunkHead, err := r.bytes(4)
	if err != nil {
		return 0, err
	}
	if chunkHead[0] != 0 {
		return 0, fmt.Errorf("pkt: SCTP chunk type %d, want DATA", chunkHead[0])
	}
	chunkLen := int(be.Uint16(chunkHead[2:]))
	if chunkLen < SCTPDataChunkLen {
		return 0, fmt.Errorf("pkt: SCTP chunk length %d too short", chunkLen)
	}
	chunkRest, err := r.bytes(12) // TSN, stream, ppid
	if err != nil {
		return 0, err
	}
	m.TSN = be.Uint32(chunkRest)
	payload, err := r.bytes(chunkLen - SCTPDataChunkLen)
	if err != nil {
		return 0, err
	}
	if crc32c(payload) != wantSum {
		return 0, fmt.Errorf("pkt: SCTP checksum mismatch")
	}
	if err := m.decodePayload(payload); err != nil {
		return 0, err
	}
	return r.off, nil
}

func (m *S1APMsg) decodePayload(b []byte) error {
	r := &reader{b: b}
	proc, err := r.u8()
	if err != nil {
		return err
	}
	m.Procedure = S1APProcedure(proc)
	if _, err := r.u8(); err != nil { // criticality
		return err
	}
	plen, err := r.u16()
	if err != nil {
		return err
	}
	if r.remaining() < int(plen) {
		return fmt.Errorf("%w: S1AP declares %d bytes, %d present", ErrTruncated, plen, r.remaining())
	}
	end := r.off + int(plen)
	m.ENBUEID, m.MMEUEID, m.NAS, m.Cause, m.ERABs = 0, 0, nil, 0, nil
	for r.off < end {
		tag, val, err := readTLV8(r)
		if err != nil {
			return err
		}
		switch tag {
		case s1apIEENBUEID:
			m.ENBUEID = be.Uint32(val)
		case s1apIEMMEUEID:
			m.MMEUEID = be.Uint32(val)
		case s1apIENAS:
			m.NAS = append([]byte(nil), val...)
		case s1apIECause:
			m.Cause = val[0]
		case s1apIEERAB:
			var item ERABItem
			if err := item.decode(val); err != nil {
				return err
			}
			m.ERABs = append(m.ERABs, item)
		default:
			return fmt.Errorf("pkt: unknown S1AP IE %d", tag)
		}
	}
	return nil
}

// appendTLV8 writes tag(1) + length(2) + value framing used by S1AP-lite.
func appendTLV8(b []byte, tag uint8, val []byte) []byte {
	b = append(b, tag)
	b = putU16(b, uint16(len(val)))
	return append(b, val...)
}

// appendTLV8U32 writes a 4-byte big-endian value TLV without materializing a
// temporary slice.
//
//acacia:hotpath
func appendTLV8U32(b []byte, tag uint8, v uint32) []byte {
	b = append(b, tag, 0, 4)
	return putU32(b, v)
}

// beginTLV8 opens a TLV whose value is encoded in place; endTLV8 backfills
// the 2-byte length.
//
//acacia:hotpath
func beginTLV8(b []byte, tag uint8) ([]byte, int) {
	b = append(b, tag, 0, 0)
	return b, len(b)
}

//acacia:hotpath
func endTLV8(b []byte, start int) []byte {
	n := len(b) - start
	b[start-2] = byte(n >> 8)
	b[start-1] = byte(n)
	return b
}

func readTLV8(r *reader) (tag uint8, val []byte, err error) {
	if tag, err = r.u8(); err != nil {
		return 0, nil, err
	}
	length, err := r.u16()
	if err != nil {
		return 0, nil, err
	}
	if val, err = r.bytes(int(length)); err != nil {
		return 0, nil, err
	}
	return tag, val, nil
}

func u32bytes(v uint32) []byte {
	return []byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}

// crc32c computes the CRC-32C (Castagnoli) checksum SCTP uses.
func crc32c(b []byte) uint32 {
	crc := ^uint32(0)
	for _, x := range b {
		crc ^= uint32(x)
		for i := 0; i < 8; i++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ 0x82f63b78
			} else {
				crc >>= 1
			}
		}
	}
	return ^crc
}
