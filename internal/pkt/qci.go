package pkt

import "time"

// QCI is a 3GPP QoS Class Identifier. Each bearer carries exactly one QCI,
// which maps to a standardized priority, packet delay budget and packet
// error/loss rate (TS 23.203 table 6.1.7). ACACIA assigns the dedicated MEC
// bearer a low-latency QCI while default bearers typically use QCI 9.
type QCI uint8

// QCIClass describes the standardized characteristics of one QCI value.
type QCIClass struct {
	QCI         QCI
	GBR         bool // guaranteed bit rate resource type
	Priority    int  // lower = served first
	DelayBudget time.Duration
	LossRate    float64 // packet error loss rate target
	Example     string
}

// qciTable is the TS 23.203 subset relevant to the testbed (QCIs the paper
// evaluates in Fig. 10(a) plus the GBR classes used for comparison).
var qciTable = map[QCI]QCIClass{
	1: {QCI: 1, GBR: true, Priority: 2, DelayBudget: 100 * time.Millisecond, LossRate: 1e-2, Example: "conversational voice"},
	2: {QCI: 2, GBR: true, Priority: 4, DelayBudget: 150 * time.Millisecond, LossRate: 1e-3, Example: "conversational video"},
	3: {QCI: 3, GBR: true, Priority: 3, DelayBudget: 50 * time.Millisecond, LossRate: 1e-3, Example: "real time gaming"},
	4: {QCI: 4, GBR: true, Priority: 5, DelayBudget: 300 * time.Millisecond, LossRate: 1e-6, Example: "buffered video"},
	5: {QCI: 5, GBR: false, Priority: 1, DelayBudget: 100 * time.Millisecond, LossRate: 1e-6, Example: "IMS signalling"},
	6: {QCI: 6, GBR: false, Priority: 6, DelayBudget: 300 * time.Millisecond, LossRate: 1e-6, Example: "buffered video, TCP apps"},
	7: {QCI: 7, GBR: false, Priority: 7, DelayBudget: 100 * time.Millisecond, LossRate: 1e-3, Example: "voice, live video, gaming"},
	8: {QCI: 8, GBR: false, Priority: 8, DelayBudget: 300 * time.Millisecond, LossRate: 1e-6, Example: "premium best effort"},
	9: {QCI: 9, GBR: false, Priority: 9, DelayBudget: 300 * time.Millisecond, LossRate: 1e-6, Example: "default best effort"},
}

// Class returns the standardized characteristics for q and whether q is a
// known standardized value.
func (q QCI) Class() (QCIClass, bool) {
	c, ok := qciTable[q]
	return c, ok
}

// Priority returns the scheduling priority for q (lower = more urgent).
// Unknown QCIs get the lowest priority.
func (q QCI) Priority() int {
	if c, ok := qciTable[q]; ok {
		return c.Priority
	}
	return 10
}

// Valid reports whether q is a standardized QCI value.
func (q QCI) Valid() bool {
	_, ok := qciTable[q]
	return ok
}

// StandardQCIs lists all standardized QCI values in ascending order.
func StandardQCIs() []QCI {
	return []QCI{1, 2, 3, 4, 5, 6, 7, 8, 9}
}

// QCIDefault is the QCI carried by default bearers in the testbed.
const QCIDefault QCI = 9

// QCIMEC is the QCI ACACIA assigns to the dedicated MEC bearer: the highest
// non-GBR priority class, giving CI traffic scheduling precedence over
// default-bearer background traffic at every queue.
const QCIMEC QCI = 5

// BearerQoS is the QoS description carried in dedicated bearer activation
// messages (a subset of the GTPv2 Bearer QoS IE).
type BearerQoS struct {
	QCI QCI
	ARP uint8 // allocation/retention priority 1..15
	// Bit rates in bits per second; zero for non-GBR bearers.
	MaxBitrateUL, MaxBitrateDL uint64
	GuaranteedUL, GuaranteedDL uint64
}

// encode appends the 22-byte Bearer QoS IE payload (TS 29.274 §8.15 layout:
// flags/ARP octet, QCI octet, then four 5-byte bit rates).
func (q *BearerQoS) encode(b []byte) []byte {
	b = append(b, q.ARP&0x7f, byte(q.QCI))
	for _, r := range []uint64{q.MaxBitrateUL, q.MaxBitrateDL, q.GuaranteedUL, q.GuaranteedDL} {
		kbps := r / 1000
		b = append(b, byte(kbps>>32), byte(kbps>>24), byte(kbps>>16), byte(kbps>>8), byte(kbps))
	}
	return b
}

func (q *BearerQoS) decode(b []byte) error {
	r := &reader{b: b}
	arp, err := r.u8()
	if err != nil {
		return err
	}
	q.ARP = arp & 0x7f
	qci, err := r.u8()
	if err != nil {
		return err
	}
	q.QCI = QCI(qci)
	rates := []*uint64{&q.MaxBitrateUL, &q.MaxBitrateDL, &q.GuaranteedUL, &q.GuaranteedDL}
	for _, p := range rates {
		raw, err := r.bytes(5)
		if err != nil {
			return err
		}
		kbps := uint64(raw[0])<<32 | uint64(raw[1])<<24 | uint64(raw[2])<<16 | uint64(raw[3])<<8 | uint64(raw[4])
		*p = kbps * 1000
	}
	return nil
}
