package pkt

import (
	"reflect"
	"testing"
	"testing/quick"
)

func sampleS1AP() S1APMsg {
	tft := DedicatedBearerTFT(AddrFrom(10, 20, 0, 9))
	return S1APMsg{
		Procedure: S1APERABSetupRequest,
		ENBUEID:   17,
		MMEUEID:   170001,
		NAS:       []byte("nas-pdu-content-for-roundtrip-test-x42"),
		ERABs: []ERABItem{{
			ERABID:    6,
			QoS:       &BearerQoS{QCI: QCIMEC, ARP: 2},
			Transport: FTEID{IfaceType: FTEIDIfaceS1USGW, TEID: 0x5001, Addr: AddrFrom(10, 20, 0, 1)},
			TFT:       &tft,
		}},
	}
}

func TestS1APRoundTrip(t *testing.T) {
	orig := sampleS1AP()
	b := orig.Encode(nil)
	var got S1APMsg
	n, err := got.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(b) {
		t.Errorf("decode consumed %d of %d", n, len(b))
	}
	if !reflect.DeepEqual(got, orig) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, orig)
	}
}

func TestS1APReleaseMessages(t *testing.T) {
	for _, proc := range []S1APProcedure{
		S1APUEContextReleaseRequest, S1APUEContextReleaseCommand, S1APUEContextReleaseComplete,
	} {
		orig := S1APMsg{Procedure: proc, ENBUEID: 3, MMEUEID: 9, Cause: 20}
		b := orig.Encode(nil)
		var got S1APMsg
		if _, err := got.Decode(b); err != nil {
			t.Fatalf("%v: %v", proc, err)
		}
		if got.Procedure != proc || got.Cause != 20 {
			t.Errorf("%v: got %+v", proc, got)
		}
	}
}

func TestS1APChecksumDetectsCorruption(t *testing.T) {
	msg := sampleS1AP()
	b := msg.Encode(nil)
	b[len(b)-1] ^= 0xff
	var got S1APMsg
	if _, err := got.Decode(b); err == nil {
		t.Error("decode accepted corrupted S1AP payload")
	}
}

func TestS1APSCTPFraming(t *testing.T) {
	msg := S1APMsg{Procedure: S1APInitialUEMessage, ENBUEID: 1, NAS: make([]byte, 80)}
	b := msg.Encode(nil)
	if len(b) <= SCTPFramingLen {
		t.Fatalf("message %d bytes, need more than framing %d", len(b), SCTPFramingLen)
	}
	// Chunk length field covers chunk header + payload.
	chunkLen := int(be.Uint16(b[SCTPCommonHeaderLen+2:]))
	if chunkLen != len(b)-SCTPCommonHeaderLen {
		t.Errorf("chunk length %d, want %d", chunkLen, len(b)-SCTPCommonHeaderLen)
	}
}

func TestS1APNASPayloadPreserved(t *testing.T) {
	f := func(nas []byte) bool {
		if len(nas) > 1024 {
			nas = nas[:1024]
		}
		orig := S1APMsg{Procedure: S1APDownlinkNASTransport, ENBUEID: 2, MMEUEID: 4, NAS: nas}
		var got S1APMsg
		if _, err := got.Decode(orig.Encode(nil)); err != nil {
			return false
		}
		if len(nas) == 0 {
			return len(got.NAS) == 0
		}
		return string(got.NAS) == string(nas)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestS1APProcedureString(t *testing.T) {
	if S1APERABSetupRequest.String() != "E-RABSetupRequest" {
		t.Errorf("String() = %q", S1APERABSetupRequest.String())
	}
	if S1APProcedure(99).String() == "" {
		t.Error("unknown procedure produced empty string")
	}
}

func sampleFlowMod() OFMsg {
	return OFMsg{
		Type:     OFFlowMod,
		XID:      77,
		Command:  FlowModAdd,
		TableID:  0,
		Priority: 100,
		Cookie:   0xacac1a,
		Match: Match{
			InPort:   U32(1),
			IPProto:  U8(ProtoUDP),
			IPv4Src:  AddrPtr(AddrFrom(172, 16, 0, 9)),
			IPv4Dst:  AddrPtr(AddrFrom(10, 20, 0, 9)),
			TunnelID: U64(0x5001),
		},
		Actions: []Action{
			{Type: ActionSetTunnel, TunnelID: 0x6001, TunnelDst: AddrFrom(10, 20, 0, 2)},
			{Type: ActionOutput, Port: 2},
		},
	}
}

func TestOpenFlowFlowModRoundTrip(t *testing.T) {
	orig := sampleFlowMod()
	b := orig.Encode(nil)
	var got OFMsg
	n, err := got.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(b) {
		t.Errorf("decode consumed %d of %d", n, len(b))
	}
	if !reflect.DeepEqual(got, orig) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, orig)
	}
}

func TestOpenFlowPacketInRoundTrip(t *testing.T) {
	orig := OFMsg{
		Type: OFPacketIn, XID: 3, BufferID: 0xffffffff, DataLen: 128,
		Reason: 0, TableID: 0, Cookie: 5,
		Match: Match{InPort: U32(4), TunnelID: U64(9)},
	}
	b := orig.Encode(nil)
	var got OFMsg
	if _, err := got.Decode(b); err != nil {
		t.Fatal(err)
	}
	if got.DataLen != 128 || *got.Match.InPort != 4 || *got.Match.TunnelID != 9 {
		t.Errorf("got %+v", got)
	}
}

func TestOpenFlowPacketOutRoundTrip(t *testing.T) {
	orig := OFMsg{
		Type: OFPacketOut, XID: 4, BufferID: 0xffffffff, InPort: 7, DataLen: 64,
		Actions: []Action{{Type: ActionOutput, Port: 1}},
	}
	b := orig.Encode(nil)
	var got OFMsg
	if _, err := got.Decode(b); err != nil {
		t.Fatal(err)
	}
	if got.InPort != 7 || got.DataLen != 64 || len(got.Actions) != 1 {
		t.Errorf("got %+v", got)
	}
}

func TestOpenFlowHeaderOnlyMessages(t *testing.T) {
	for _, typ := range []OFMsgType{OFHello, OFEchoRequest, OFEchoReply, OFBarrier} {
		orig := OFMsg{Type: typ, XID: 9}
		b := orig.Encode(nil)
		if len(b) != ofHeaderLen {
			t.Errorf("%v: encoded %d bytes, want %d", typ, len(b), ofHeaderLen)
		}
		var got OFMsg
		if _, err := got.Decode(b); err != nil {
			t.Errorf("%v: %v", typ, err)
		}
	}
}

func TestOpenFlowMatchSemantics(t *testing.T) {
	m := Match{
		IPv4Dst:  AddrPtr(AddrFrom(10, 0, 0, 1)),
		IPProto:  U8(ProtoUDP),
		TunnelID: U64(42),
	}
	ft := FiveTuple{Src: AddrFrom(1, 1, 1, 1), Dst: AddrFrom(10, 0, 0, 1), Proto: ProtoUDP}
	if !m.Matches(3, ft, 42) {
		t.Error("match failed on conforming packet")
	}
	if m.Matches(3, ft, 43) {
		t.Error("match succeeded with wrong tunnel id")
	}
	ft2 := ft
	ft2.Dst = AddrFrom(10, 0, 0, 2)
	if m.Matches(3, ft2, 42) {
		t.Error("match succeeded with wrong destination")
	}
	var wild Match
	if !wild.Matches(1, ft, 0) {
		t.Error("empty match (wildcard) did not match")
	}
}

func TestOpenFlowSpecificity(t *testing.T) {
	if (&Match{}).SpecificityScore() != 0 {
		t.Error("empty match specificity not 0")
	}
	m := sampleFlowMod().Match
	if m.SpecificityScore() != 5 {
		t.Errorf("specificity = %d, want 5", m.SpecificityScore())
	}
}

func TestOpenFlowEncodingIs8ByteAligned(t *testing.T) {
	fm := sampleFlowMod()
	b := fm.Encode(nil)
	if len(b)%8 != 0 {
		t.Errorf("FlowMod length %d not 8-byte aligned", len(b))
	}
}

func TestOpenFlowDecodeTruncated(t *testing.T) {
	fm := sampleFlowMod()
	b := fm.Encode(nil)
	for n := 1; n < len(b); n++ {
		var got OFMsg
		if _, err := got.Decode(b[:n]); err == nil {
			t.Errorf("decode of %d-byte prefix succeeded", n)
		}
	}
}

func TestQCITable(t *testing.T) {
	for _, q := range StandardQCIs() {
		c, ok := q.Class()
		if !ok {
			t.Errorf("QCI %d missing from table", q)
			continue
		}
		if c.QCI != q {
			t.Errorf("table entry mismatch for %d", q)
		}
		if c.DelayBudget <= 0 || c.Priority < 1 {
			t.Errorf("QCI %d has invalid characteristics %+v", q, c)
		}
	}
	if QCI(42).Valid() {
		t.Error("QCI 42 reported valid")
	}
	if QCIMEC.Priority() >= QCIDefault.Priority() {
		t.Error("MEC QCI must have stricter priority than default")
	}
	// Priorities are unique per the standard table.
	seen := map[int]QCI{}
	for _, q := range StandardQCIs() {
		p := q.Priority()
		if other, dup := seen[p]; dup {
			t.Errorf("QCIs %d and %d share priority %d", q, other, p)
		}
		seen[p] = q
	}
}
