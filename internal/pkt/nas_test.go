package pkt

import (
	"reflect"
	"testing"
)

func TestNASAttachRequestRoundTrip(t *testing.T) {
	orig := NASMsg{
		Type: NASAttachRequest,
		IMSI: "001010123456789",
		ESM: &NASMsg{
			Type: NASActivateDefaultBearerRequest,
			EBI:  0, APN: "acacia.mec",
		},
	}
	b := orig.Encode(nil)
	var got NASMsg
	n, err := got.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(b) {
		t.Errorf("consumed %d of %d", n, len(b))
	}
	if got.IMSI != orig.IMSI {
		t.Errorf("IMSI = %q", got.IMSI)
	}
	if got.ESM == nil || got.ESM.APN != "acacia.mec" {
		t.Errorf("ESM = %+v", got.ESM)
	}
}

func TestNASAttachAcceptCarriesAddress(t *testing.T) {
	orig := NASMsg{
		Type: NASAttachAccept,
		ESM: &NASMsg{
			Type: NASActivateDefaultBearerRequest,
			EBI:  5, APN: "internet",
			UEIP: AddrFrom(172, 16, 0, 2),
			QoS:  &BearerQoS{QCI: QCIDefault, ARP: 9},
		},
	}
	var got NASMsg
	if _, err := got.Decode(orig.Encode(nil)); err != nil {
		t.Fatal(err)
	}
	if got.ESM == nil {
		t.Fatal("no ESM container")
	}
	if got.ESM.UEIP != AddrFrom(172, 16, 0, 2) {
		t.Errorf("UE IP = %v", got.ESM.UEIP)
	}
	if got.ESM.EBI != 5 || got.ESM.QoS == nil || got.ESM.QoS.QCI != QCIDefault {
		t.Errorf("ESM = %+v", got.ESM)
	}
}

func TestNASDedicatedBearerCarriesTFT(t *testing.T) {
	tft := DedicatedBearerTFT(AddrFrom(10, 3, 0, 10))
	orig := NASMsg{
		Type:      NASActivateDedicatedBearerRequest,
		EBI:       6,
		LinkedEBI: 5,
		QoS:       &BearerQoS{QCI: QCIMEC, ARP: 2},
		TFT:       &tft,
	}
	b := orig.Encode(nil)
	var got NASMsg
	if _, err := got.Decode(b); err != nil {
		t.Fatal(err)
	}
	if got.EBI != 6 || got.LinkedEBI != 5 {
		t.Errorf("EBIs = %d/%d", got.EBI, got.LinkedEBI)
	}
	if got.QoS == nil || got.QoS.QCI != QCIMEC {
		t.Errorf("QoS = %+v", got.QoS)
	}
	if got.TFT == nil || !reflect.DeepEqual(*got.TFT, tft) {
		t.Errorf("TFT = %+v", got.TFT)
	}
	// The modem can classify straight off the decoded TFT.
	flow := FiveTuple{Src: AddrFrom(172, 16, 0, 2), Dst: AddrFrom(10, 3, 0, 10), Proto: ProtoTCP}
	if !got.TFT.MatchUplink(flow, 0) {
		t.Error("decoded TFT does not classify CI traffic")
	}
}

func TestNASSimpleMessages(t *testing.T) {
	for _, typ := range []uint8{NASAttachComplete, NASServiceRequest} {
		orig := NASMsg{Type: typ}
		var got NASMsg
		if _, err := got.Decode(orig.Encode(nil)); err != nil {
			t.Fatalf("type 0x%02x: %v", typ, err)
		}
		if got.Type != typ {
			t.Errorf("type = 0x%02x", got.Type)
		}
	}
	det := NASMsg{Type: NASDetachRequest, IMSI: "00101987654321"}
	var got NASMsg
	if _, err := got.Decode(det.Encode(nil)); err != nil {
		t.Fatal(err)
	}
	if got.IMSI != det.IMSI {
		t.Errorf("IMSI = %q", got.IMSI)
	}
}

func TestNASServiceRequestIsTiny(t *testing.T) {
	// Service requests are the most frequent NAS message; the real one is
	// 4 octets and ours must stay in that class.
	b := (&NASMsg{Type: NASServiceRequest}).Encode(nil)
	if len(b) != 4 {
		t.Errorf("service request = %d bytes, want 4", len(b))
	}
}

func TestNASDecodeTruncated(t *testing.T) {
	tft := DedicatedBearerTFT(AddrFrom(1, 2, 3, 4))
	msgs := []NASMsg{
		{Type: NASAttachRequest, IMSI: "001017", ESM: &NASMsg{Type: NASActivateDefaultBearerRequest, APN: "x"}},
		{Type: NASActivateDedicatedBearerRequest, EBI: 6, LinkedEBI: 5, QoS: &BearerQoS{QCI: 5}, TFT: &tft},
	}
	for _, m := range msgs {
		b := m.Encode(nil)
		for n := 1; n < len(b); n++ {
			var got NASMsg
			if _, err := got.Decode(b[:n]); err == nil {
				t.Errorf("type 0x%02x: %d-byte prefix decoded", m.Type, n)
			}
		}
	}
}

func TestNASUnknownTypeRejected(t *testing.T) {
	var got NASMsg
	if _, err := got.Decode([]byte{nasPDEMM, 0x99, 0, 0}); err == nil {
		t.Error("unknown NAS type accepted")
	}
}

func TestNASServiceAcceptRoundTrip(t *testing.T) {
	b := (&NASMsg{Type: NASServiceAccept}).Encode(nil)
	if len(b) != 2 {
		t.Errorf("service accept = %d bytes, want 2", len(b))
	}
	var got NASMsg
	if _, err := got.Decode(b); err != nil {
		t.Fatal(err)
	}
	if got.Type != NASServiceAccept {
		t.Errorf("type = 0x%02x", got.Type)
	}
}
