package pkt

import (
	"testing"
	"testing/quick"
)

// Decoders must never panic, whatever bytes arrive: they parse input from
// the (simulated) wire. These property tests feed random buffers and
// random corruptions of valid messages to every decoder.

func decodeAll(b []byte) {
	var ip IPv4
	_, _ = ip.Decode(b)
	var u UDP
	_, _ = u.Decode(b)
	var g GTPU
	_, _ = g.Decode(b)
	_, _, _ = DecapsulateGPDU(b)
	var m GTPv2Msg
	_, _ = m.Decode(b)
	var s S1APMsg
	_, _ = s.Decode(b)
	var of OFMsg
	_, _ = of.Decode(b)
	var t TFT
	_, _ = t.Decode(b)
}

func TestDecodersNeverPanicOnRandomBytes(t *testing.T) {
	f := func(b []byte) bool {
		decodeAll(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDecodersNeverPanicOnCorruptedValidMessages(t *testing.T) {
	tft := DedicatedBearerTFT(AddrFrom(10, 3, 0, 10))
	seeds := [][]byte{
		(&GTPv2Msg{
			Type: GTPv2CreateBearerRequest, Seq: 7,
			IMSI: "001010123456789",
			Bearers: []BearerContext{{
				EBI: 6, TFT: &tft, QoS: &BearerQoS{QCI: 5, ARP: 2},
				FTEIDs: []FTEID{{IfaceType: FTEIDIfaceS1USGW, TEID: 1, Addr: AddrFrom(10, 3, 0, 1)}},
			}},
		}).Encode(nil),
		(&S1APMsg{
			Procedure: S1APERABSetupRequest, ENBUEID: 1, MMEUEID: 2, NAS: make([]byte, 64),
			ERABs: []ERABItem{{
				ERABID: 6, QoS: &BearerQoS{QCI: 5, ARP: 2},
				Transport: FTEID{IfaceType: FTEIDIfaceS1USGW, TEID: 9, Addr: AddrFrom(10, 3, 0, 1)},
				TFT:       &tft,
			}},
		}).Encode(nil),
		(&OFMsg{
			Type: OFFlowMod, Command: FlowModAdd, Priority: 10,
			Match: Match{TunnelID: U64(7), IPv4Dst: AddrPtr(AddrFrom(1, 2, 3, 4))},
			Actions: []Action{
				{Type: ActionSetTunnel, TunnelID: 8, TunnelDst: AddrFrom(5, 6, 7, 8)},
				{Type: ActionOutput, Port: 1},
			},
		}).Encode(nil),
		EncapsulateGPDU(AddrFrom(1, 0, 0, 1), AddrFrom(1, 0, 0, 2), 42, 0),
	}
	f := func(seedIdx uint8, flipPos uint16, flipBits byte, truncate uint16) bool {
		seed := seeds[int(seedIdx)%len(seeds)]
		b := append([]byte{}, seed...)
		if len(b) > 0 {
			b[int(flipPos)%len(b)] ^= flipBits
			b = b[:int(truncate)%(len(b)+1)]
		}
		decodeAll(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}
