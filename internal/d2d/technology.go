package d2d

import "time"

// Technology characterizes a proximity service discovery radio. The paper
// (§8) notes ACACIA can run over other pub/sub discovery technologies —
// Bluetooth iBeacon and Wi-Fi Aware — which differ in transmit power,
// propagation, discovery period and scale, but expose the same service
// discovery message + power-level shape the device manager consumes.
type Technology struct {
	Name     string
	PathLoss PathLossModel
	// SensitivityDBm is the weakest decodable broadcast.
	SensitivityDBm float64
	// MinPeriod is the fastest sensible advertisement period.
	MinPeriod time.Duration
	// TypicalRangeM is the advertised usable range (documentation; derived
	// ranges are validated against it in tests).
	TypicalRangeM float64
}

// The three technologies the paper discusses.
var (
	// LTEDirect: 23 dBm UE transmit power, licensed spectrum, superior
	// range and robustness; 5-10 s discovery periods.
	LTEDirect = Technology{
		Name:           "LTE-direct",
		PathLoss:       DefaultPathLoss,
		SensitivityDBm: SensitivityDBm,
		MinPeriod:      5 * time.Second,
		TypicalRangeM:  60,
	}
	// IBeacon: Bluetooth LE at ~0 dBm with ~100 ms advertisement
	// intervals; tens of meters indoors.
	IBeacon = Technology{
		Name: "iBeacon",
		PathLoss: PathLossModel{
			TxPowerDBm:    0,
			RefLossDB:     60, // 2.4 GHz reference loss incl. antenna
			Exponent:      2.6,
			ShadowSigmaDB: 4.0, // BLE fading is noisier
		},
		SensitivityDBm: -95,
		MinPeriod:      100 * time.Millisecond,
		TypicalRangeM:  20,
	}
	// WiFiAware (NAN): ~15 dBm, 2.4/5 GHz, discovery windows every 512 TU
	// (~524 ms).
	WiFiAware = Technology{
		Name: "Wi-Fi Aware",
		PathLoss: PathLossModel{
			TxPowerDBm:    15,
			RefLossDB:     62,
			Exponent:      2.8,
			ShadowSigmaDB: 3.0,
		},
		SensitivityDBm: -92,
		MinPeriod:      524 * time.Millisecond,
		TypicalRangeM:  40,
	}
)

// Technologies lists the supported discovery radios.
func Technologies() []Technology {
	return []Technology{LTEDirect, IBeacon, WiFiAware}
}

// MaxRange reports the distance at which the technology's mean received
// power falls to its sensitivity: the decode horizon without shadowing.
func (t Technology) MaxRange() float64 {
	return t.PathLoss.InvertMeanDistance(t.SensitivityDBm)
}

// Apply configures an environment to use this technology's channel: path
// loss and sensitivity. Existing devices keep their subscriptions; only
// the radio model changes.
func (t Technology) Apply(e *Env) {
	e.PathLoss = t.PathLoss
	e.sensitivity = t.SensitivityDBm
}
