package d2d

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"acacia/internal/geo"
	"acacia/internal/sim"
)

func TestPathLossMonotoneInDistance(t *testing.T) {
	m := DefaultPathLoss
	prev := math.Inf(1)
	for d := 1.0; d <= 100; d += 1 {
		rx := m.MeanRxPower(d)
		if rx >= prev {
			t.Fatalf("rxPower not strictly decreasing at %v m", d)
		}
		prev = rx
	}
}

func TestPathLossInverse(t *testing.T) {
	m := DefaultPathLoss
	f := func(raw uint16) bool {
		d := 1 + float64(raw%600)/10 // 1..61 m
		rx := m.MeanRxPower(d)
		back := m.InvertMeanDistance(rx)
		return math.Abs(back-d) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPathLossDynamicRange(t *testing.T) {
	m := DefaultPathLoss
	near, far := m.MeanRxPower(1), m.MeanRxPower(60)
	span := near - far
	// Paper: rxPower varies over ~50 dB while SNR only spans 25 dB.
	if span < 40 || span > 70 {
		t.Errorf("rxPower span over 1-60 m = %.1f dB, want ~50", span)
	}
	if near > -40 || near < -65 {
		t.Errorf("near rxPower = %.1f dBm, want ≈ -50", near)
	}
	if far > SensitivityDBm+20 && far < SensitivityDBm {
		t.Errorf("far rxPower = %.1f dBm near sensitivity", far)
	}
}

func TestSNRClamping(t *testing.T) {
	if got := snrFor(-50); got != SNRDecodeSpanDB {
		t.Errorf("close-range SNR = %v, want clamp at %v", got, SNRDecodeSpanDB)
	}
	if got := snrFor(-90); got != 10 {
		t.Errorf("snr(-90) = %v, want 10", got)
	}
	if got := snrFor(-120); got != 0 {
		t.Errorf("snr below noise floor = %v, want 0", got)
	}
}

func TestSNRSaturatesWhereRxPowerDiscriminates(t *testing.T) {
	m := DefaultPathLoss
	// Two positions close to a landmark: rxPower differs, SNR identical
	// (both clamped) — the reason ACACIA localizes on rxPower.
	rx2, rx8 := m.MeanRxPower(2), m.MeanRxPower(5)
	if rx2 == rx8 {
		t.Fatal("rxPower should discriminate 2 m from 5 m")
	}
	if snrFor(rx2) != snrFor(rx8) {
		t.Errorf("SNR at 2m (%v) and 5m (%v) should both clamp", snrFor(rx2), snrFor(rx8))
	}
}

func TestExpressionMatching(t *testing.T) {
	retail := uint32(0xACAC)
	laptops := uint16(3)
	code := ServiceCode(retail, laptops, 7)

	svcSub := Expression{Code: ServiceCode(retail, 0, 0), Mask: MaskService}
	if !svcSub.Matches(code) {
		t.Error("service-level subscription should match any category")
	}
	catSub := Expression{Code: ServiceCode(retail, laptops, 0), Mask: MaskCategory}
	if !catSub.Matches(code) {
		t.Error("category subscription should match items in category")
	}
	otherCat := Expression{Code: ServiceCode(retail, 4, 0), Mask: MaskCategory}
	if otherCat.Matches(code) {
		t.Error("different category matched")
	}
	otherSvc := Expression{Code: ServiceCode(0xBEEF, laptops, 0), Mask: MaskCategory}
	if otherSvc.Matches(code) {
		t.Error("different service matched")
	}
	itemSub := Expression{Code: code, Mask: MaskItem}
	if !itemSub.Matches(code) {
		t.Error("exact item subscription should match")
	}
	if itemSub.Matches(ServiceCode(retail, laptops, 8)) {
		t.Error("exact item subscription matched wrong item")
	}
}

func TestBroadcastDeliveryAndFiltering(t *testing.T) {
	eng := sim.NewEngine(3)
	env := NewEnv(eng)
	env.PathLoss.ShadowSigmaDB = 0

	pubDev := env.AddDevice("salesman", geo.Point{X: 5, Y: 5})
	subDev := env.AddDevice("customer", geo.Point{X: 8, Y: 9}) // 5 m away
	farDev := env.AddDevice("faraway", geo.Point{X: 5000, Y: 5000})

	code := ServiceCode(1, 2, 3)
	var got []DiscoveryMessage
	subDev.Subscribe(Expression{Code: code, Mask: MaskCategory}, func(m DiscoveryMessage) {
		got = append(got, m)
	})
	var farGot int
	farDev.Subscribe(Expression{Code: code, Mask: MaskCategory}, func(m DiscoveryMessage) { farGot++ })

	// A second subscriber interested in something else: modem filters it.
	otherDev := env.AddDevice("other", geo.Point{X: 6, Y: 6})
	otherDev.Subscribe(Expression{Code: ServiceCode(9, 9, 9), Mask: MaskCategory}, func(DiscoveryMessage) {
		t.Error("non-matching subscription delivered")
	})

	pubDev.Publish("retail", code, "laptops", time.Second)
	eng.RunUntil(sim.Time(3500 * time.Millisecond))

	if len(got) != 3 {
		t.Fatalf("deliveries = %d, want 3 (one per period)", len(got))
	}
	m := got[0]
	if m.Service != "retail" || m.Payload != "laptops" || m.From != "salesman" {
		t.Errorf("message = %+v", m)
	}
	wantRx := env.PathLoss.MeanRxPower(5)
	if math.Abs(m.RxPowerDBm-wantRx) > 1e-9 {
		t.Errorf("rxPower = %v, want %v", m.RxPowerDBm, wantRx)
	}
	if farGot != 0 {
		t.Error("out-of-range device received broadcast")
	}
	if otherDev.FilteredInModem != 3 {
		t.Errorf("modem filtered = %d, want 3", otherDev.FilteredInModem)
	}
}

func TestSubscriptionCancel(t *testing.T) {
	eng := sim.NewEngine(3)
	env := NewEnv(eng)
	pub := env.AddDevice("p", geo.Point{X: 0, Y: 0})
	subDev := env.AddDevice("s", geo.Point{X: 3, Y: 0})
	n := 0
	sub := subDev.Subscribe(Expression{Code: 1, Mask: MaskItem}, func(DiscoveryMessage) { n++ })
	pub.Publish("svc", 1, "x", time.Second)
	eng.RunUntil(sim.Time(1500 * time.Millisecond))
	sub.Cancel()
	eng.RunUntil(sim.Time(5 * time.Second))
	if n != 1 {
		t.Errorf("deliveries = %d, want 1 (cancelled after first)", n)
	}
}

func TestPublicationStop(t *testing.T) {
	eng := sim.NewEngine(3)
	env := NewEnv(eng)
	p := env.AddDevice("p", geo.Point{X: 0, Y: 0})
	s := env.AddDevice("s", geo.Point{X: 2, Y: 0})
	n := 0
	s.Subscribe(Expression{Code: 5, Mask: MaskItem}, func(DiscoveryMessage) { n++ })
	pub := p.Publish("svc", 5, "x", time.Second)
	eng.RunUntil(sim.Time(2500 * time.Millisecond))
	pub.Stop()
	eng.RunUntil(sim.Time(10 * time.Second))
	if n != 2 {
		t.Errorf("deliveries = %d, want 2", n)
	}
	if pub.Broadcasts != 2 {
		t.Errorf("broadcasts = %d, want 2", pub.Broadcasts)
	}
}

func TestMovingSubscriberSeesPowerGradient(t *testing.T) {
	// As the subscriber walks toward the publisher, mean rxPower rises.
	eng := sim.NewEngine(3)
	env := NewEnv(eng)
	env.PathLoss.ShadowSigmaDB = 0
	p := env.AddDevice("p", geo.Point{X: 0, Y: 0})
	s := env.AddDevice("s", geo.Point{X: 40, Y: 0})
	var powers []float64
	s.Subscribe(Expression{Code: 1, Mask: MaskItem}, func(m DiscoveryMessage) {
		powers = append(powers, m.RxPowerDBm)
	})
	p.Publish("svc", 1, "x", time.Second)
	sim.NewTicker(eng, time.Second, func() {
		pos := s.Pos()
		pos.X -= 5
		if pos.X < 1 {
			pos.X = 1
		}
		s.SetPos(pos)
	})
	eng.RunUntil(sim.Time(7 * time.Second))
	if len(powers) < 5 {
		t.Fatalf("samples = %d", len(powers))
	}
	if powers[len(powers)-1] <= powers[0] {
		t.Errorf("rxPower did not rise while approaching: %v", powers)
	}
}

func TestUplinkUtilizationUnderOnePercent(t *testing.T) {
	// Paper: discovery uses < 1% of uplink resources at 5-10 s periods,
	// scaling to hundreds of devices.
	for _, period := range []time.Duration{5 * time.Second, 10 * time.Second} {
		for _, n := range []int{1, 10, 100, 300} {
			u := UplinkUtilization(n, period)
			if n <= 300 && period >= 5*time.Second && u >= 0.01 {
				t.Errorf("utilization(%d pubs, %v) = %.4f, want < 1%%", n, period, u)
			}
		}
	}
	if UplinkUtilization(10, 0) != 0 {
		t.Error("zero period should report zero utilization")
	}
	// More publishers consume more resources.
	if UplinkUtilization(100, 5*time.Second) <= UplinkUtilization(10, 5*time.Second) {
		t.Error("utilization not increasing in publisher count")
	}
}

func TestDuplicateDeviceNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate device name did not panic")
		}
	}()
	env := NewEnv(sim.NewEngine(1))
	env.AddDevice("x", geo.Point{})
	env.AddDevice("x", geo.Point{X: 1, Y: 1})
}

func TestShadowingIsZeroMean(t *testing.T) {
	eng := sim.NewEngine(77)
	m := DefaultPathLoss
	rng := eng.RNG()
	const d = 10.0
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += m.RxPower(d, rng)
	}
	mean := sum / n
	if math.Abs(mean-m.MeanRxPower(d)) > 0.1 {
		t.Errorf("shadowed mean = %v, want %v", mean, m.MeanRxPower(d))
	}
}
