package d2d

import (
	"testing"
	"time"

	"acacia/internal/geo"
	"acacia/internal/sim"
)

func TestTechnologyRangeOrdering(t *testing.T) {
	lte := LTEDirect.MaxRange()
	wifi := WiFiAware.MaxRange()
	ble := IBeacon.MaxRange()
	if !(ble < wifi && wifi <= lte*2 && lte > wifi*0.5) {
		t.Errorf("ranges: ble=%.1f wifi=%.1f lte=%.1f", ble, wifi, lte)
	}
	// LTE-direct has the superior range the paper credits it with.
	if lte <= ble {
		t.Errorf("LTE-direct range %.1f not beyond iBeacon %.1f", lte, ble)
	}
}

func TestTechnologyRangesMatchSpec(t *testing.T) {
	for _, tech := range Technologies() {
		r := tech.MaxRange()
		// The decode horizon should be the same order as the documented
		// typical range (within a factor of ~3: typical < max).
		if r < tech.TypicalRangeM*0.8 || r > tech.TypicalRangeM*4 {
			t.Errorf("%s: decode horizon %.1f m vs typical %.1f m", tech.Name, r, tech.TypicalRangeM)
		}
		if tech.MinPeriod <= 0 {
			t.Errorf("%s: no minimum period", tech.Name)
		}
	}
}

func TestApplySwitchesChannel(t *testing.T) {
	eng := sim.NewEngine(9)
	env := NewEnv(eng)
	env.PathLoss.ShadowSigmaDB = 0

	pub := env.AddDevice("p", geo.Point{X: 0, Y: 0})
	// Subscriber placed beyond iBeacon range but inside LTE-direct range.
	dist := (IBeacon.MaxRange() + 5)
	sub := env.AddDevice("s", geo.Point{X: dist, Y: 0})
	n := 0
	sub.Subscribe(Expression{Code: 1, Mask: MaskItem}, func(DiscoveryMessage) { n++ })
	pub.Publish("svc", 1, "x", time.Second)

	eng.RunUntil(sim.Time(1500 * time.Millisecond))
	if n != 1 {
		t.Fatalf("LTE-direct deliveries = %d, want 1", n)
	}

	// Switch to iBeacon: the same geometry is now out of range.
	tech := IBeacon
	tech.PathLoss.ShadowSigmaDB = 0
	tech.Apply(env)
	eng.RunUntil(sim.Time(4500 * time.Millisecond))
	if n != 1 {
		t.Errorf("iBeacon deliveries at %.1f m = %d, want none beyond range", dist, n-1)
	}
}

func TestIBeaconWorksAtShortRange(t *testing.T) {
	eng := sim.NewEngine(9)
	env := NewEnv(eng)
	tech := IBeacon
	tech.PathLoss.ShadowSigmaDB = 0
	tech.Apply(env)
	pub := env.AddDevice("p", geo.Point{X: 0, Y: 0})
	sub := env.AddDevice("s", geo.Point{X: 5, Y: 0})
	n := 0
	sub.Subscribe(Expression{Code: 1, Mask: MaskItem}, func(DiscoveryMessage) { n++ })
	pub.Publish("svc", 1, "x", IBeacon.MinPeriod)
	eng.RunUntil(sim.Time(time.Second))
	if n < 8 {
		t.Errorf("iBeacon deliveries at 5 m over 1 s = %d, want ≈10 (100 ms period)", n)
	}
}

func TestDiscoveryLatencyByTechnology(t *testing.T) {
	// iBeacon's fast advertisement interval buys quick discovery; LTE-direct
	// pays its 5 s period but reaches much farther. Both trade-offs are
	// visible in time-to-first-match at 10 m.
	measure := func(tech Technology) sim.Time {
		eng := sim.NewEngine(33)
		env := NewEnv(eng)
		tech.PathLoss.ShadowSigmaDB = 0
		tech.Apply(env)
		pub := env.AddDevice("p", geo.Point{X: 0, Y: 0})
		sub := env.AddDevice("s", geo.Point{X: 10, Y: 0})
		var at sim.Time
		sub.Subscribe(Expression{Code: 1, Mask: MaskItem}, func(m DiscoveryMessage) {
			if at == 0 {
				at = m.At
			}
		})
		pub.Publish("svc", 1, "x", tech.MinPeriod)
		eng.RunUntil(sim.Time(20 * time.Second))
		return at
	}
	lte := measure(LTEDirect)
	ble := measure(IBeacon)
	if ble == 0 || lte == 0 {
		t.Fatalf("no discovery: ble=%v lte=%v", ble, lte)
	}
	if ble >= lte {
		t.Errorf("iBeacon first match %v not faster than LTE-direct %v", ble, lte)
	}
}
