// Package d2d simulates LTE-direct device-to-device proximity service
// discovery: publishers periodically broadcast small service discovery
// messages on uplink resource blocks allocated by the eNB; subscriber modems
// filter broadcasts against interest expressions (binary code + mask) and
// forward matches — annotated with received power and SNR — to applications.
//
// The radio channel is a log-distance path-loss model with log-normal
// shadowing. Received power spans the full ~50 dB dynamic range of the
// receiver, while reported SNR is clamped to the ~25 dB span usable for
// decoding — the asymmetry behind the paper's Fig. 6 observation that
// rxPower tracks distance where SNR saturates.
package d2d

import (
	"fmt"
	"math"
	"time"

	"acacia/internal/geo"
	"acacia/internal/sim"
	"acacia/internal/telemetry"
)

// PathLossModel is a log-distance path loss with log-normal shadowing:
//
//	PL(d) = RefLossDB + 10*Exponent*log10(max(d,1)/1m) + N(0, ShadowSigmaDB)
//	rxPower = TxPowerDBm - PL(d)
type PathLossModel struct {
	TxPowerDBm    float64
	RefLossDB     float64 // loss at the 1 m reference distance
	Exponent      float64 // path loss exponent (≈3 indoors)
	ShadowSigmaDB float64 // shadowing standard deviation
}

// DefaultPathLoss is calibrated for the indoor retail environment: 23 dBm
// transmit power (UE power class 3), exponent 3.0 (indoor with obstacles),
// 2.5 dB shadowing, and a 73 dB reference loss that folds in antenna and
// body losses. This anchors rxPower at ≈ -50 dBm within a meter of a
// landmark and ≈ -103 dBm at 60 m — the ~50 dB span of the paper's
// Fig. 6(c) trace, bottoming out just above the decode sensitivity.
var DefaultPathLoss = PathLossModel{
	TxPowerDBm:    23,
	RefLossDB:     73,
	Exponent:      3.0,
	ShadowSigmaDB: 2.5,
}

// MeanRxPower returns the shadowing-free received power at distance d
// meters.
func (m PathLossModel) MeanRxPower(d float64) float64 {
	if d < 1 {
		d = 1
	}
	return m.TxPowerDBm - (m.RefLossDB + 10*m.Exponent*math.Log10(d))
}

// RxPower returns a received-power sample at distance d using rng for
// shadowing.
func (m PathLossModel) RxPower(d float64, rng *sim.RNG) float64 {
	return m.MeanRxPower(d) + rng.NormFloat64()*m.ShadowSigmaDB
}

// InvertMeanDistance returns the distance whose shadowing-free received
// power equals rx dBm: the exact inverse of MeanRxPower.
func (m PathLossModel) InvertMeanDistance(rx float64) float64 {
	return math.Pow(10, (m.TxPowerDBm-m.RefLossDB-rx)/(10*m.Exponent))
}

// Receiver characteristics.
const (
	// SensitivityDBm is the weakest decodable broadcast.
	SensitivityDBm = -105.0
	// NoiseFloorDBm anchors the SNR computation.
	NoiseFloorDBm = -100.0
	// SNRDecodeSpanDB is the usable SNR reporting range: values are clamped
	// to [0, SNRDecodeSpanDB], the paper's "25 dB span compared to 50 dB
	// in rxPower".
	SNRDecodeSpanDB = 25.0
)

// snrFor converts a received power to the clamped SNR the modem reports.
func snrFor(rxPowerDBm float64) float64 {
	snr := rxPowerDBm - NoiseFloorDBm
	if snr < 0 {
		return 0
	}
	if snr > SNRDecodeSpanDB {
		return SNRDecodeSpanDB
	}
	return snr
}

// Expression is an LTE-direct interest/service expression: a binary code
// with carrier-assigned structure. The modem matches broadcast codes
// against subscription (code, mask) pairs entirely in hardware, so only
// matches wake the application processor.
type Expression struct {
	Code uint64
	Mask uint64
}

// Matches reports whether a broadcast code satisfies the expression.
func (e Expression) Matches(code uint64) bool {
	return code&e.Mask == e.Code&e.Mask
}

// ServiceCode builds a structured code: the carrier assigns the service
// (e.g. a retail chain) the high 32 bits and the service assigns categories
// (e.g. store sections) and items the low bits.
func ServiceCode(service uint32, category uint16, item uint16) uint64 {
	return uint64(service)<<32 | uint64(category)<<16 | uint64(item)
}

// Masks for common subscription granularities.
const (
	MaskService  = uint64(0xffffffff) << 32
	MaskCategory = MaskService | uint64(0xffff)<<16
	MaskItem     = ^uint64(0)
)

// DiscoveryMessage is a received service discovery broadcast, annotated
// with the radio measurements the modem exposes.
type DiscoveryMessage struct {
	Service    string
	Code       uint64
	Payload    string // application-specific detail (section/product)
	From       string // publisher device name
	FromPos    geo.Point
	RxPowerDBm float64
	SNRDB      float64
	At         sim.Time
}

// Publication is a periodically broadcast service advertisement.
type Publication struct {
	Service string
	Code    uint64
	Payload string
	Period  time.Duration
	ticker  *sim.Ticker
	dev     *Device
	// Broadcasts counts transmissions.
	Broadcasts uint64
}

// Stop ceases broadcasting.
func (p *Publication) Stop() {
	if p.ticker != nil {
		p.ticker.Stop()
		p.ticker = nil
		p.dev.env.pubStopped()
	}
}

// Subscription is a registered interest with its delivery callback.
type Subscription struct {
	Expr Expression
	// Deliver receives matching broadcasts. It runs in simulation context.
	Deliver func(DiscoveryMessage)
	dev     *Device
	// Matched counts deliveries; Filtered counts broadcasts the modem
	// discarded for this subscription (seen but not matching).
	Matched  uint64
	released bool
}

// Cancel removes the subscription from the modem.
func (s *Subscription) Cancel() { s.released = true }

// Device is one LTE-direct-capable radio at a position. Both publishing and
// subscribing are modem functions; applications interact through
// Publish/Subscribe.
type Device struct {
	env  *Env
	name string
	pos  geo.Point
	subs []*Subscription
	pubs []*Publication
	// FilteredInModem counts broadcasts received and discarded without
	// waking any application — the scalability property of LTE-direct.
	FilteredInModem uint64
	// Received counts all decodable broadcasts seen by the modem.
	Received uint64
}

// Name reports the device name.
func (d *Device) Name() string { return d.name }

// Pos reports the device position.
func (d *Device) Pos() geo.Point { return d.pos }

// SetPos moves the device (walking subscribers).
func (d *Device) SetPos(p geo.Point) { d.pos = p }

// Publish starts broadcasting a service advertisement every period.
func (d *Device) Publish(service string, code uint64, payload string, period time.Duration) *Publication {
	pub := &Publication{Service: service, Code: code, Payload: payload, Period: period, dev: d}
	pub.ticker = sim.NewTicker(d.env.eng, period, func() { d.env.broadcast(pub) })
	d.pubs = append(d.pubs, pub)
	d.env.pubStarted(period)
	return pub
}

// Subscribe registers an interest expression with a delivery callback.
func (d *Device) Subscribe(expr Expression, deliver func(DiscoveryMessage)) *Subscription {
	sub := &Subscription{Expr: expr, Deliver: deliver, dev: d}
	d.subs = append(d.subs, sub)
	return sub
}

// Env is the shared radio environment: it owns the devices and the channel
// model and delivers broadcasts.
type Env struct {
	eng         *sim.Engine
	rng         *sim.RNG
	PathLoss    PathLossModel
	sensitivity float64
	devices     []*Device
	// Broadcasts counts all transmissions in the environment.
	Broadcasts uint64

	// Environment-wide discovery counters, registered under d2d/ in the
	// engine's telemetry registry. The public fields above and on
	// Device/Subscription remain the per-entity views; these aggregate
	// across the environment.
	broadcasts    *telemetry.Counter
	decodes       *telemetry.Counter
	filteredModem *telemetry.Counter
	matched       *telemetry.Counter
	rbUsed        *telemetry.Counter
	ulUtilization *telemetry.Gauge

	// activePubs tracks live publications for the utilization gauge; the
	// period of the most recent Publish is used as the allocation period.
	activePubs int
	lastPeriod time.Duration
}

// NewEnv creates a radio environment on eng with the default (LTE-direct)
// channel. Use a Technology's Apply method to switch radios.
func NewEnv(eng *sim.Engine) *Env {
	scope := eng.Metrics().Scope("d2d")
	return &Env{
		eng: eng, rng: eng.RNG().Fork("d2d"),
		PathLoss:      DefaultPathLoss,
		sensitivity:   SensitivityDBm,
		broadcasts:    scope.Counter("broadcasts"),
		decodes:       scope.Counter("decodes"),
		filteredModem: scope.Counter("filtered-modem"),
		matched:       scope.Counter("matched"),
		rbUsed:        scope.Counter("rb-used"),
		ulUtilization: scope.Gauge("uplink-rb-utilization"),
	}
}

// pubStarted/pubStopped keep the uplink-utilization gauge current as
// publications come and go.
func (e *Env) pubStarted(period time.Duration) {
	e.activePubs++
	e.lastPeriod = period
	e.ulUtilization.Set(UplinkUtilization(e.activePubs, period))
}

func (e *Env) pubStopped() {
	e.activePubs--
	e.ulUtilization.Set(UplinkUtilization(e.activePubs, e.lastPeriod))
}

// Sensitivity reports the environment's decode threshold in dBm.
func (e *Env) Sensitivity() float64 { return e.sensitivity }

// AddDevice registers a new device at pos.
func (e *Env) AddDevice(name string, pos geo.Point) *Device {
	for _, d := range e.devices {
		if d.name == name {
			panic("d2d: duplicate device name " + name)
		}
	}
	d := &Device{env: e, name: name, pos: pos}
	e.devices = append(e.devices, d)
	return d
}

// Devices returns all registered devices.
func (e *Env) Devices() []*Device { return e.devices }

// broadcast delivers pub's message to every other device within decode
// range, applying modem-side expression filtering.
func (e *Env) broadcast(pub *Publication) {
	pub.Broadcasts++
	e.Broadcasts++
	e.broadcasts.Inc()
	e.rbUsed.Add(RBsPerMessage)
	src := pub.dev
	for _, dst := range e.devices {
		if dst == src {
			continue
		}
		dist := src.pos.Dist(dst.pos)
		rx := e.PathLoss.RxPower(dist, e.rng)
		if rx < e.sensitivity {
			continue
		}
		dst.Received++
		e.decodes.Inc()
		msg := DiscoveryMessage{
			Service:    pub.Service,
			Code:       pub.Code,
			Payload:    pub.Payload,
			From:       src.name,
			FromPos:    src.pos,
			RxPowerDBm: rx,
			SNRDB:      snrFor(rx),
			At:         e.eng.Now(),
		}
		matched := false
		// Compact the subscription list lazily, dropping cancelled entries.
		kept := dst.subs[:0]
		for _, sub := range dst.subs {
			if sub.released {
				continue
			}
			kept = append(kept, sub)
			if sub.Expr.Matches(pub.Code) {
				matched = true
				sub.Matched++
				e.matched.Inc()
				sub.Deliver(msg)
			}
		}
		dst.subs = kept
		if !matched {
			dst.FilteredInModem++
			e.filteredModem.Inc()
		}
	}
}

// Resource-block accounting for the uplink discovery allocation
// (Qualcomm's LTE-direct design: periodic RB allocations in uplink frames,
// < 1% of uplink capacity).
const (
	// RBsPerSubframe is the uplink RB count of a 10 MHz carrier per 1 ms
	// subframe.
	RBsPerSubframe = 50
	// DiscoveryRBsPerPeriod is the RB budget the eNB allocates to
	// LTE-direct each discovery period (64 subframes x 50 RBs worth of
	// discovery resources in one allocation).
	DiscoveryRBsPerPeriod = 64 * RBsPerSubframe
	// RBsPerMessage is the cost of one discovery broadcast (2 RB pairs).
	RBsPerMessage = 4
)

// UplinkUtilization reports the fraction of uplink resource blocks consumed
// by discovery broadcasts from n publishers at the given period: the
// quantity the paper bounds below 1%.
func UplinkUtilization(publishers int, period time.Duration) float64 {
	if period <= 0 {
		return 0
	}
	subframesPerPeriod := float64(period) / float64(time.Millisecond)
	totalRBs := subframesPerPeriod * RBsPerSubframe
	used := float64(publishers * RBsPerMessage)
	return used / totalRBs
}

// String describes the environment.
func (e *Env) String() string {
	return fmt.Sprintf("d2d.Env{%d devices, %d broadcasts}", len(e.devices), e.Broadcasts)
}
