// Package telemetry is the testbed's unified metrics spine: an
// engine-scoped registry of named counters, gauges, histograms and a
// virtual-time event timeline that every simulation layer (netsim, sdn,
// epc, d2d, core) registers into.
//
// Names are hierarchical slash-separated paths — "epc/s1ap/bytes",
// "sdn/edge-sgw-u/fastpath/hits", "core/session/stage/match-ms" — so one
// Snapshot of the registry answers "what happened this session" across all
// layers at once, where the pre-spine code kept four incompatible ad-hoc
// counter structs.
//
// Determinism contract: a Snapshot lists metrics in sorted name order and
// timeline events in emission order (which, under the single-threaded sim
// engine, is virtual-time order). Two runs with the same seed therefore
// render byte-identical snapshots, and snapshots of independent trials
// merge deterministically regardless of scheduling (see MergeSnapshots).
//
// Hot-path contract: Counter.Inc/Add, Gauge.Set and Histogram.Observe on
// an already-registered metric perform no allocation and no map lookup —
// layers resolve *Counter handles once at construction and increment
// through the pointer. Registration (Registry.Counter etc.) is the only
// allocating step and happens at topology-build time.
//
// The registry is deliberately single-threaded, like the sim engine that
// owns it: each trial builds its own engine and therefore its own registry,
// so no synchronization is needed (the race detector guards this contract
// at the trial-scheduler level).
package telemetry

import (
	"fmt"
	"strconv"
	"time"
)

// smallInts interns the decimal strings of small non-negative integers so
// numeric name components (link indices, port ids) can be rendered without
// allocating. The table is immutable after package init, so sharing it
// across trials cannot couple them.
var smallInts = func() [1024]string {
	var t [1024]string
	for i := range t {
		t[i] = strconv.Itoa(i)
	}
	return t
}()

// Itoa returns the decimal string of n, interned for small non-negative
// values. Hot paths use it in place of fmt.Sprintf("%d", n) when assembling
// metric names.
//
//acacia:hotpath
func Itoa(n int) string {
	if n >= 0 && n < len(smallInts) {
		return smallInts[n]
	}
	return strconv.Itoa(n)
}

// Kind discriminates metric types in snapshots.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Counter is a monotonically increasing uint64. The zero value is usable
// (a registry-less counter still counts); registered counters are created
// by Registry.Counter.
type Counter struct{ n uint64 }

// Inc adds one.
//
//acacia:hotpath
func (c *Counter) Inc() { c.n++ }

// Add adds delta.
//
//acacia:hotpath
func (c *Counter) Add(delta uint64) { c.n += delta }

// Value reports the current count.
func (c *Counter) Value() uint64 { return c.n }

// Gauge is a last-observed value (queue depth, cache occupancy).
type Gauge struct{ v float64 }

// Set replaces the value.
//
//acacia:hotpath
func (g *Gauge) Set(v float64) { g.v = v }

// Add shifts the value by delta.
//
//acacia:hotpath
func (g *Gauge) Add(delta float64) { g.v += delta }

// Value reports the current value.
func (g *Gauge) Value() float64 { return g.v }

// Histogram summarizes a stream of observations with count, sum, min and
// max — enough for deterministic mean/extent reporting without storing
// samples (experiments needing percentiles keep using stats.Sample; the
// registry histogram is the always-on observability view).
type Histogram struct {
	count    uint64
	sum      float64
	min, max float64
}

// Observe records one sample.
//
//acacia:hotpath
func (h *Histogram) Observe(x float64) {
	if h.count == 0 || x < h.min {
		h.min = x
	}
	if h.count == 0 || x > h.max {
		h.max = x
	}
	h.count++
	h.sum += x
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum reports the observation total.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean reports the observation mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min reports the smallest observation (0 when empty).
func (h *Histogram) Min() float64 { return h.min }

// Max reports the largest observation (0 when empty).
func (h *Histogram) Max() float64 { return h.max }

// Event is one timeline entry: something that happened at a point in
// virtual time (a session state change, a bearer activation, a handover).
type Event struct {
	// At is the virtual time of the event, as a duration since the
	// simulation epoch (sim.Time and time.Duration are interconvertible).
	At time.Duration
	// Scope locates the emitter ("epc/session/<imsi>").
	Scope string
	// Name is the event kind ("state", "bearer", "handover").
	Name string
	// Detail is free-form annotation ("connected", "ebi=6 qci=3").
	Detail string
}

// Registry is one engine's metric namespace. The zero value is not usable;
// call New. sim.NewEngine creates one per engine and wires its clock, so
// layers reach it through Engine.Metrics().
type Registry struct {
	now      func() time.Duration
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	// kinds records every registered name for cross-kind collision checks.
	kinds  map[string]Kind
	events []Event
	// prefixes interns joined scope prefixes: re-deriving the same child
	// scope (Scope("epc/session").Scope(imsi), once per state transition)
	// hits the table instead of re-concatenating the name.
	prefixes map[prefixKey]string
}

// prefixKey identifies one parent-prefix + child-name join.
type prefixKey struct{ prefix, name string }

// New returns an empty registry with a zero clock (SetClock installs the
// engine's virtual clock).
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		kinds:    make(map[string]Kind),
		prefixes: make(map[prefixKey]string),
	}
}

// SetClock installs the virtual-time source used to stamp timeline events
// and snapshots.
func (r *Registry) SetClock(now func() time.Duration) { r.now = now }

func (r *Registry) clock() time.Duration {
	if r.now == nil {
		return 0
	}
	return r.now()
}

func (r *Registry) checkKind(name string, k Kind) {
	if name == "" {
		panic("telemetry: empty metric name")
	}
	if prev, ok := r.kinds[name]; ok && prev != k {
		panic(fmt.Sprintf("telemetry: %q already registered as %v, requested %v", name, prev, k))
	}
	r.kinds[name] = k
}

// Counter returns the counter registered under name, creating it on first
// use. Registering the same name twice returns the same counter, so
// independent entities may share a metric (all UEs' frontends observe into
// one stage histogram, for example).
func (r *Registry) Counter(name string) *Counter {
	r.checkKind(name, KindCounter)
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.checkKind(name, KindGauge)
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.checkKind(name, KindHistogram)
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Emit appends a timeline event stamped with the current virtual time.
func (r *Registry) Emit(scope, name, detail string) {
	r.events = append(r.events, Event{At: r.clock(), Scope: scope, Name: name, Detail: detail})
}

// Events returns the timeline in emission (= virtual-time) order. The
// slice is the registry's own backing store; callers must not mutate it.
func (r *Registry) Events() []Event { return r.events }

// Scope is a name-prefix view of a registry: Scope("epc").Counter("s1ap/msgs")
// registers "epc/s1ap/msgs". Scopes nest.
type Scope struct {
	r      *Registry
	prefix string
}

// Scope roots a naming prefix on the registry.
//
//acacia:hotpath
func (r *Registry) Scope(name string) Scope { return Scope{r: r, prefix: r.internPrefix("", name)} }

// Scope nests a further prefix.
//
//acacia:hotpath
func (s Scope) Scope(name string) Scope {
	return Scope{r: s.r, prefix: s.r.internPrefix(s.prefix, name)}
}

// internPrefix joins prefix+name+"/" through the registry's intern table,
// so repeated derivations of the same scope allocate only once.
func (r *Registry) internPrefix(prefix, name string) string {
	k := prefixKey{prefix, name}
	if s, ok := r.prefixes[k]; ok {
		return s
	}
	return r.internPrefixSlow(k)
}

// internPrefixSlow is the intern-miss path: each distinct scope pays the
// join exactly once. Noinline keeps that one-time allocation out of the
// hotpath Scope callers' escape profiles.
//
//go:noinline
func (r *Registry) internPrefixSlow(k prefixKey) string {
	s := k.prefix + k.name + "/"
	r.prefixes[k] = s
	return s
}

// Counter registers a counter under the scope.
func (s Scope) Counter(name string) *Counter { return s.r.Counter(s.prefix + name) }

// Gauge registers a gauge under the scope.
func (s Scope) Gauge(name string) *Gauge { return s.r.Gauge(s.prefix + name) }

// Histogram registers a histogram under the scope.
func (s Scope) Histogram(name string) *Histogram { return s.r.Histogram(s.prefix + name) }

// Emit appends a timeline event with the scope's prefix (sans trailing
// slash) as the event scope.
func (s Scope) Emit(name, detail string) {
	s.r.Emit(s.prefix[:len(s.prefix)-1], name, detail)
}
