package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := New()
	c := r.Counter("a/b/c")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if r.Counter("a/b/c") != c {
		t.Error("re-registration returned a different counter")
	}

	g := r.Gauge("q/depth")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Errorf("gauge = %g, want 5", g.Value())
	}

	h := r.Histogram("lat-ms")
	for _, x := range []float64{3, 1, 2} {
		h.Observe(x)
	}
	if h.Count() != 3 || h.Sum() != 6 || h.Min() != 1 || h.Max() != 3 || h.Mean() != 2 {
		t.Errorf("histogram = n=%d sum=%g min=%g max=%g", h.Count(), h.Sum(), h.Min(), h.Max())
	}
}

func TestKindCollisionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("registering one name as two kinds did not panic")
		}
	}()
	r := New()
	r.Counter("x")
	r.Gauge("x")
}

func TestScopeNesting(t *testing.T) {
	r := New()
	s := r.Scope("epc").Scope("s1ap")
	s.Counter("msgs").Inc()
	if r.Counter("epc/s1ap/msgs").Value() != 1 {
		t.Error("scoped counter not registered under the full path")
	}
}

func TestSnapshotSortedAndDeterministic(t *testing.T) {
	r := New()
	r.Counter("z").Add(1)
	r.Counter("a").Add(2)
	r.Gauge("m").Set(3)
	s := r.Snapshot()
	for i := 1; i < len(s.Metrics); i++ {
		if s.Metrics[i-1].Name >= s.Metrics[i].Name {
			t.Fatalf("snapshot not sorted: %q before %q", s.Metrics[i-1].Name, s.Metrics[i].Name)
		}
	}
	if s.String() != r.Snapshot().String() {
		t.Error("two snapshots of the same state render differently")
	}
	if got := s.CounterValue("a"); got != 2 {
		t.Errorf("CounterValue(a) = %d, want 2", got)
	}
	if _, ok := s.Get("missing"); ok {
		t.Error("Get found a missing metric")
	}
}

func TestDelta(t *testing.T) {
	r := New()
	now := time.Duration(0)
	r.SetClock(func() time.Duration { return now })
	c := r.Counter("msgs")
	h := r.Histogram("lat")
	g := r.Gauge("depth")
	c.Add(3)
	h.Observe(10)
	g.Set(5)
	r.Emit("sess", "state", "idle")
	before := r.Snapshot()

	now = time.Second
	c.Add(4)
	h.Observe(2)
	g.Set(9)
	r.Counter("new").Inc() // registered after the first snapshot
	r.Emit("sess", "state", "connected")
	d := r.Snapshot().Delta(before)

	if got := d.CounterValue("msgs"); got != 4 {
		t.Errorf("delta msgs = %d, want 4", got)
	}
	if got := d.CounterValue("new"); got != 1 {
		t.Errorf("delta new = %d, want 1 (absent-in-before treated as zero)", got)
	}
	if m, _ := d.Get("lat"); m.Count != 1 || m.Value != 2 {
		t.Errorf("delta histogram = n=%d sum=%g, want 1/2", m.Count, m.Value)
	}
	if m, _ := d.Get("depth"); m.Value != 9 {
		t.Errorf("delta gauge = %g, want 9 (last observed)", m.Value)
	}
	if len(d.Events) != 1 || d.Events[0].Detail != "connected" || d.Events[0].At != time.Second {
		t.Errorf("delta events = %+v, want the one post-snapshot event", d.Events)
	}
}

func TestMergeSnapshots(t *testing.T) {
	mk := func(ctr uint64, hmin, hmax float64, at time.Duration) *Snapshot {
		r := New()
		now := at
		r.SetClock(func() time.Duration { return now })
		r.Counter("c").Add(ctr)
		h := r.Histogram("h")
		h.Observe(hmin)
		h.Observe(hmax)
		r.Gauge("g").Set(1)
		r.Emit("s", "e", "")
		return r.Snapshot()
	}
	m := MergeSnapshots(mk(1, 5, 6, 2*time.Second), nil, mk(2, 1, 9, time.Second))
	if got := m.CounterValue("c"); got != 3 {
		t.Errorf("merged counter = %d, want 3", got)
	}
	if h, _ := m.Get("h"); h.Count != 4 || h.Min != 1 || h.Max != 9 {
		t.Errorf("merged histogram = n=%d min=%g max=%g", h.Count, h.Min, h.Max)
	}
	if g, _ := m.Get("g"); g.Value != 2 {
		t.Errorf("merged gauge = %g, want 2 (sum)", g.Value)
	}
	if len(m.Events) != 2 || m.Events[0].At != time.Second {
		t.Errorf("merged events not sorted by time: %+v", m.Events)
	}
	if m.TakenAt != 2*time.Second {
		t.Errorf("merged TakenAt = %v", m.TakenAt)
	}
}

func TestTimelineJSON(t *testing.T) {
	r := New()
	now := 1500 * time.Millisecond
	r.SetClock(func() time.Duration { return now })
	r.Emit("epc/session/001", "state", "connected")
	var b strings.Builder
	if err := r.Snapshot().WriteTimelineJSON(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"t_ns": 1500000000`, `"t": "1.5s"`, `"scope": "epc/session/001"`, `"detail": "connected"`} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("timeline JSON lacks %s:\n%s", want, b.String())
		}
	}
}

// The spine's promise to every hot path: incrementing a registered metric
// allocates nothing (go test -bench Telemetry -benchmem must report
// 0 allocs/op).

func BenchmarkTelemetryCounterInc(b *testing.B) {
	c := New().Counter("bench/ctr")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkTelemetryCounterAdd(b *testing.B) {
	c := New().Counter("bench/ctr")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1400)
	}
}

func BenchmarkTelemetryGaugeSet(b *testing.B) {
	g := New().Gauge("bench/gauge")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkTelemetryHistogramObserve(b *testing.B) {
	h := New().Histogram("bench/hist")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i & 1023))
	}
}
