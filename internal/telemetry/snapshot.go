package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Metric is one snapshotted metric value. Field use depends on Kind:
//
//	counter:   Count is the value
//	gauge:     Value is the value
//	histogram: Count/Value are observation count and sum; Min/Max the extent
type Metric struct {
	Name     string
	Kind     Kind
	Count    uint64
	Value    float64
	Min, Max float64
}

// Snapshot is a point-in-time copy of a registry: metrics in sorted name
// order, timeline events in emission order. Snapshots are plain data — safe
// to retain, diff and merge after the engine that produced them is gone,
// which is how per-trial telemetry crosses the worker-pool boundary.
type Snapshot struct {
	// TakenAt is the virtual time the snapshot was taken.
	TakenAt time.Duration
	Metrics []Metric
	Events  []Event
}

// Snapshot captures the registry's current state. Metrics are emitted in
// sorted name order — the determinism contract that makes same-seed runs
// render byte-identical tables.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{TakenAt: r.clock()}
	names := make([]string, 0, len(r.kinds))
	for name := range r.kinds {
		names = append(names, name)
	}
	sort.Strings(names)
	s.Metrics = make([]Metric, 0, len(names))
	for _, name := range names {
		switch r.kinds[name] {
		case KindCounter:
			s.Metrics = append(s.Metrics, Metric{Name: name, Kind: KindCounter, Count: r.counters[name].Value()})
		case KindGauge:
			s.Metrics = append(s.Metrics, Metric{Name: name, Kind: KindGauge, Value: r.gauges[name].Value()})
		case KindHistogram:
			h := r.hists[name]
			s.Metrics = append(s.Metrics, Metric{Name: name, Kind: KindHistogram,
				Count: h.Count(), Value: h.Sum(), Min: h.Min(), Max: h.Max()})
		}
	}
	s.Events = append(s.Events, r.events...)
	return s
}

// Get returns the metric with the given name and whether it exists.
func (s *Snapshot) Get(name string) (Metric, bool) {
	i := sort.Search(len(s.Metrics), func(i int) bool { return s.Metrics[i].Name >= name })
	if i < len(s.Metrics) && s.Metrics[i].Name == name {
		return s.Metrics[i], true
	}
	return Metric{}, false
}

// CounterValue returns the value of a counter metric, or 0 if absent.
func (s *Snapshot) CounterValue(name string) uint64 {
	m, _ := s.Get(name)
	return m.Count
}

// Delta returns the activity between since and s (two snapshots of the
// same registry, since taken earlier): counter values and histogram
// count/sum subtract; gauges and histogram min/max keep s's value (they are
// not interval quantities); events are those emitted after since. Metrics
// absent from since are treated as zero.
func (s *Snapshot) Delta(since *Snapshot) *Snapshot {
	d := &Snapshot{TakenAt: s.TakenAt, Metrics: make([]Metric, 0, len(s.Metrics))}
	for _, m := range s.Metrics {
		prev, _ := since.Get(m.Name)
		switch m.Kind {
		case KindCounter:
			m.Count -= prev.Count
		case KindHistogram:
			m.Count -= prev.Count
			m.Value -= prev.Value
		}
		d.Metrics = append(d.Metrics, m)
	}
	if n := len(since.Events); n < len(s.Events) {
		d.Events = append(d.Events, s.Events[n:]...)
	}
	return d
}

// MergeSnapshots combines snapshots from independent registries (one per
// trial) into one: counters and histogram counts/sums add, histogram
// min/max combine, and gauges add (each is one engine's last-observed
// value; the merged value reads as the fleet total). Events are
// concatenated in argument order and stably sorted by virtual time, so the
// merged timeline is deterministic as long as the argument order is —
// Experiment.Assemble passes trial snapshots in declaration order, giving
// parallel runs byte-identical merges to sequential ones. Nil snapshots are
// skipped; TakenAt is the maximum input TakenAt.
func MergeSnapshots(snaps ...*Snapshot) *Snapshot {
	merged := map[string]Metric{}
	out := &Snapshot{}
	for _, s := range snaps {
		if s == nil {
			continue
		}
		if s.TakenAt > out.TakenAt {
			out.TakenAt = s.TakenAt
		}
		for _, m := range s.Metrics {
			acc, ok := merged[m.Name]
			if !ok {
				merged[m.Name] = m
				continue
			}
			if acc.Kind != m.Kind {
				panic(fmt.Sprintf("telemetry: merging %q as both %v and %v", m.Name, acc.Kind, m.Kind))
			}
			switch m.Kind {
			case KindCounter:
				acc.Count += m.Count
			case KindGauge:
				acc.Value += m.Value
			case KindHistogram:
				if m.Count > 0 {
					if acc.Count == 0 || m.Min < acc.Min {
						acc.Min = m.Min
					}
					if acc.Count == 0 || m.Max > acc.Max {
						acc.Max = m.Max
					}
				}
				acc.Count += m.Count
				acc.Value += m.Value
			}
			merged[m.Name] = acc
		}
		out.Events = append(out.Events, s.Events...)
	}
	names := make([]string, 0, len(merged))
	for name := range merged {
		names = append(names, name)
	}
	sort.Strings(names)
	out.Metrics = make([]Metric, 0, len(names))
	for _, name := range names {
		out.Metrics = append(out.Metrics, merged[name])
	}
	sort.SliceStable(out.Events, func(i, j int) bool { return out.Events[i].At < out.Events[j].At })
	return out
}

// String renders the snapshot as an aligned metric table, one line per
// metric in sorted name order.
func (s *Snapshot) String() string {
	var b strings.Builder
	wName := len("metric")
	for _, m := range s.Metrics {
		if len(m.Name) > wName {
			wName = len(m.Name)
		}
	}
	fmt.Fprintf(&b, "%-*s  %-9s  %s\n", wName, "metric", "kind", "value")
	for _, m := range s.Metrics {
		fmt.Fprintf(&b, "%-*s  %-9s  %s\n", wName, m.Name, m.Kind, formatMetricValue(m))
	}
	return b.String()
}

func formatMetricValue(m Metric) string {
	switch m.Kind {
	case KindCounter:
		return fmt.Sprintf("%d", m.Count)
	case KindGauge:
		return fmt.Sprintf("%g", m.Value)
	default:
		if m.Count == 0 {
			return "n=0"
		}
		return fmt.Sprintf("n=%d mean=%.4g min=%.4g max=%.4g", m.Count, m.Value/float64(m.Count), m.Min, m.Max)
	}
}

// timelineEntry is the JSON shape of one timeline event.
type timelineEntry struct {
	TNs    int64  `json:"t_ns"`
	T      string `json:"t"`
	Scope  string `json:"scope"`
	Name   string `json:"name"`
	Detail string `json:"detail,omitempty"`
}

// WriteTimelineJSON writes the snapshot's events as an indented JSON array
// ordered by virtual time (events already are; merged snapshots sort on
// merge).
func (s *Snapshot) WriteTimelineJSON(w io.Writer) error {
	entries := make([]timelineEntry, 0, len(s.Events))
	for _, e := range s.Events {
		entries = append(entries, timelineEntry{
			TNs: int64(e.At), T: e.At.String(),
			Scope: e.Scope, Name: e.Name, Detail: e.Detail,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(entries)
}
