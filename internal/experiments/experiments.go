// Package experiments regenerates every table and figure of the paper's
// evaluation: each experiment builds the workloads on the simulation
// substrates, runs them, and prints the same rows/series the paper reports.
// Absolute numbers come from the calibrated models; the shapes — who wins,
// by what factor, where crossovers fall — are the reproduction targets
// (see EXPERIMENTS.md for paper-vs-measured values).
//
// Execution model: every experiment is declared as a set of independent
// Trials — one per parameter point or replica — plus an Assemble step that
// combines the per-trial partial results into the printed tables. Each
// trial constructs its own testbed/engine from a seed forked from the run's
// base seed and the trial's stable key, so trials share no mutable state
// and can run concurrently. Run and RunAll schedule trials on the bounded
// worker pool in internal/exec and reassemble results in declaration order,
// which makes parallel output byte-identical to sequential output for the
// same Options.
package experiments

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"acacia/internal/exec"
	"acacia/internal/stats"
	"acacia/internal/telemetry"
)

// Result is one experiment's output.
type Result struct {
	ID     string
	Title  string
	Tables []*stats.Table
	// Notes carry paper-vs-measured commentary.
	Notes []string
	// Metrics is the merged telemetry snapshot of the experiment's trials
	// (nil when no trial captured one). Per-trial snapshots are merged in
	// declaration order, so this field is byte-identical between parallel
	// and sequential runs.
	Metrics *telemetry.Snapshot
}

// String renders the full result.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Metered wraps a trial's partial result together with the telemetry
// snapshot of the engine that produced it. runExperiments unwraps it before
// Assemble sees the parts and merges the snapshots (in trial declaration
// order) into Result.Metrics — the plain-data hand-off that carries
// per-trial telemetry across the worker-pool boundary.
type Metered struct {
	Part any
	Snap *telemetry.Snapshot
}

// metered wraps part with a final snapshot of eng's registry.
func metered(part any, eng interface {
	Metrics() *telemetry.Registry
}) Metered {
	return Metered{Part: part, Snap: eng.Metrics().Snapshot()}
}

// DefaultSeed is the base seed selected when Options leaves Seed unset.
const DefaultSeed = 2016

// Options tune experiment execution; the zero value selects quick settings
// suitable for tests, Full selects publication-length runs.
type Options struct {
	Full bool
	// Seed is the run's base simulation seed. The zero value selects
	// DefaultSeed unless SeedSet is true; see BaseSeed.
	Seed uint64
	// SeedSet marks Seed as explicitly chosen, so a caller can run with
	// seed 0 (otherwise indistinguishable from "unset").
	SeedSet bool
	// Parallel bounds how many trials run concurrently; 0 or negative
	// selects GOMAXPROCS. Output is byte-identical at every setting:
	// trials are seeded from their keys, not from scheduling order, and
	// results are reassembled in declaration order.
	Parallel int
	// IntraParallel partitions the event loop inside each testbed-backed
	// trial (DESIGN.md §3g): 0 keeps the single global event queue, 1 runs
	// the edge site on its own partition in conservative windows, and
	// higher values execute windows on that many gang workers. Output is
	// byte-identical at every setting — that is the partitioned engine's
	// core contract, enforced by the identity tests.
	IntraParallel int
	// Progress, when non-nil, is called serially after each trial
	// completes. done counts finished trials including the reported one;
	// trial is "<experiment id>/<trial key>". err is nil unless the trial
	// failed (a recovered panic).
	Progress func(done, total int, trial string, err error)
}

// BaseSeed resolves the run's base seed in one place: an explicitly chosen
// seed (SeedSet) is used verbatim, otherwise the zero value selects
// DefaultSeed. Every trial seed is forked from this value.
func (o Options) BaseSeed() uint64 {
	if o.Seed == 0 && !o.SeedSet {
		return DefaultSeed
	}
	return o.Seed
}

// subSeed derives a deterministic seed from base and labels without
// consuming any RNG state, so two trials asking for the same labeled stream
// (a shared calibration campaign, a per-frame generator) get identical
// seeds no matter which trial runs first. The labels are FNV-1a hashed with
// a separator so ("ab","c") and ("a","bc") differ.
func subSeed(base uint64, labels ...string) uint64 {
	h := uint64(14695981039346656037)
	for _, l := range labels {
		for i := 0; i < len(l); i++ {
			h ^= uint64(l[i])
			h *= 1099511628211
		}
		h ^= 0xff
		h *= 1099511628211
	}
	return base ^ h
}

// trialSeed forks the seed for one trial from the run's base seed and the
// trial's stable identity (experiment id + key). Trials therefore draw
// independent randomness that does not depend on how many sibling trials
// exist or in which order they are scheduled.
func trialSeed(base uint64, expID, key string) uint64 {
	return subSeed(base, "trial", expID, key)
}

// Trial is one independent unit of an experiment: a single parameter point
// or replica. Trials run in isolation — each constructs whatever testbed or
// engine it needs from the seed it is handed — and return a partial result
// for the experiment's Assemble step.
type Trial struct {
	// Key identifies the trial within its experiment. It must be unique
	// and stable across runs: it is both the trial's seed-fork label and
	// its position marker for deterministic reassembly.
	Key string
	// Run executes the trial. seed is forked from the run's base seed and
	// the trial key; implementations must derive all randomness from it
	// (directly or via sim.NewEngine/sim.NewRNG) and share no mutable
	// state with other trials.
	Run func(seed uint64) any
}

// Experiment declares one figure/table of the evaluation as independent
// trials plus a deterministic assembly step.
type Experiment struct {
	ID    string
	Title string
	// Trials returns the trial list for an options set, in assembly order.
	Trials func(opts Options) []Trial
	// Assemble combines the per-trial outputs into the final result;
	// parts[i] is the value returned by Trials(opts)[i].
	Assemble func(opts Options, parts []any) *Result
}

// registry maps experiment ids to declarations, with a stable presentation
// order.
var (
	registry = map[string]*Experiment{}
	order    []string
)

// presentation is the paper's order; registration order (Go init order
// across files) is alphabetical by file and not meaningful.
var presentation = []string{
	"3a", "3b", "3c", "3d", "3e", "3f", "3g", "3h", "overhead", "control-loss",
	"robust-failover", "mobility-continuity",
	"6", "8", "9", "10a", "10b",
	"compression", "11a", "11b", "12", "13", "many-site", "scale",
	"ablation-fastpath", "ablation-bearer", "ablation-stages",
	"ablation-radius", "ablation-solver", "ablation-qci", "ablation-index",
}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	if e.Trials == nil || e.Assemble == nil {
		panic("experiments: incomplete declaration for " + e.ID)
	}
	exp := e
	registry[e.ID] = &exp
	order = append(order, e.ID)
}

// registerSolo declares an experiment that has no useful decomposition (a
// pure table, or a single measurement run) as one trial.
func registerSolo(id, title string, run func(opts Options, seed uint64) *Result) {
	register(Experiment{
		ID:    id,
		Title: title,
		Trials: func(opts Options) []Trial {
			return []Trial{{Key: "all", Run: func(seed uint64) any { return run(opts, seed) }}}
		},
		Assemble: func(_ Options, parts []any) *Result { return parts[0].(*Result) },
	})
}

// IDs returns all experiment ids in presentation order; experiments not in
// the canonical list (if any are added) follow in registration order.
func IDs() []string {
	seen := map[string]bool{}
	var out []string
	for _, id := range presentation {
		if _, ok := registry[id]; ok {
			out = append(out, id)
			seen[id] = true
		}
	}
	for _, id := range order {
		if !seen[id] {
			out = append(out, id)
		}
	}
	return out
}

// Title returns the registered title for an id.
func Title(id string) string {
	if e, ok := registry[id]; ok {
		return e.Title
	}
	return ""
}

// Run executes one experiment by id: its trials are scheduled on the
// worker pool (bounded by opts.Parallel) and the result assembled in trial
// order. A panicking trial surfaces as an error; sibling trials still run.
func Run(id string, opts Options) (*Result, error) {
	e, ok := registry[id]
	if !ok {
		var known []string
		known = append(known, order...)
		sort.Strings(known)
		return nil, fmt.Errorf("experiments: unknown id %q (known: %s)", id, strings.Join(known, ", "))
	}
	results, err := runExperiments(opts, []*Experiment{e})
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

// RunAll executes every experiment in presentation order, scheduling the
// trials of all experiments on one shared worker pool. Results come back in
// presentation order. Experiments with failed trials are omitted from the
// result slice; their errors are joined into the returned error, so one
// broken experiment does not lose the rest of the sweep.
func RunAll(opts Options) ([]*Result, error) {
	exps := make([]*Experiment, 0, len(registry))
	for _, id := range IDs() {
		exps = append(exps, registry[id])
	}
	return runExperiments(opts, exps)
}

// runExperiments flattens the experiments' trials into one task list, runs
// it on the bounded pool, and reassembles per-experiment results in
// declaration order — the single code path behind Run and RunAll.
func runExperiments(opts Options, exps []*Experiment) ([]*Result, error) {
	base := opts.BaseSeed()
	type span struct {
		exp    *Experiment
		trials []Trial
		lo     int // index of the experiment's first task
	}
	var (
		spans []span
		tasks []exec.Task[any]
	)
	for _, e := range exps {
		e := e
		trials := e.Trials(opts)
		if err := checkTrialKeys(e.ID, trials); err != nil {
			return nil, err
		}
		spans = append(spans, span{exp: e, trials: trials, lo: len(tasks)})
		for _, t := range trials {
			t := t
			tasks = append(tasks, exec.Task[any]{
				Key: e.ID + "/" + t.Key,
				Run: func() (any, error) {
					return t.Run(trialSeed(base, e.ID, t.Key)), nil
				},
			})
		}
	}

	var progress func(done, total int, o exec.Outcome[any])
	if opts.Progress != nil {
		progress = func(done, total int, o exec.Outcome[any]) {
			opts.Progress(done, total, o.Key, o.Err)
		}
	}
	outs := exec.RunProgress(opts.Parallel, tasks, progress)

	var (
		results []*Result
		errs    []error
	)
	for _, sp := range spans {
		parts := make([]any, len(sp.trials))
		snaps := make([]*telemetry.Snapshot, 0, len(sp.trials))
		var expErrs []error
		for i := range sp.trials {
			o := outs[sp.lo+i]
			if o.Err != nil {
				expErrs = append(expErrs, o.Err)
				continue
			}
			// Unwrap Metered trial results: Assemble sees the bare part,
			// while the snapshots merge (in declaration order) into
			// Result.Metrics below.
			if m, ok := o.Value.(Metered); ok {
				parts[i] = m.Part
				if m.Snap != nil {
					snaps = append(snaps, m.Snap)
				}
				continue
			}
			parts[i] = o.Value
		}
		if len(expErrs) > 0 {
			errs = append(errs, fmt.Errorf("experiments: %s: %w", sp.exp.ID, errors.Join(expErrs...)))
			continue
		}
		r, err := assemble(sp.exp, opts, parts)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		if r != nil && len(snaps) > 0 {
			if r.Metrics != nil {
				// Assemble set its own snapshot (e.g. a registry delta);
				// fold the trial snapshots in after it.
				snaps = append([]*telemetry.Snapshot{r.Metrics}, snaps...)
			}
			r.Metrics = telemetry.MergeSnapshots(snaps...)
		}
		results = append(results, r)
	}
	return results, errors.Join(errs...)
}

// assemble runs the experiment's Assemble step, converting a panic there
// into an error so a broken assembly cannot kill a multi-experiment sweep.
func assemble(e *Experiment, opts Options, parts []any) (r *Result, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("experiments: %s: assemble panicked: %v", e.ID, rec)
		}
	}()
	return e.Assemble(opts, parts), nil
}

func checkTrialKeys(id string, trials []Trial) error {
	if len(trials) == 0 {
		return fmt.Errorf("experiments: %s declares no trials", id)
	}
	seen := map[string]bool{}
	for _, t := range trials {
		if t.Key == "" {
			return fmt.Errorf("experiments: %s has a trial with an empty key", id)
		}
		if seen[t.Key] {
			return fmt.Errorf("experiments: %s has duplicate trial key %q", id, t.Key)
		}
		seen[t.Key] = true
	}
	return nil
}
