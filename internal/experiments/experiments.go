// Package experiments regenerates every table and figure of the paper's
// evaluation: each experiment builds the workloads on the simulation
// substrates, runs them, and prints the same rows/series the paper reports.
// Absolute numbers come from the calibrated models; the shapes — who wins,
// by what factor, where crossovers fall — are the reproduction targets
// (see EXPERIMENTS.md for paper-vs-measured values).
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"acacia/internal/stats"
)

// Result is one experiment's output.
type Result struct {
	ID     string
	Title  string
	Tables []*stats.Table
	// Notes carry paper-vs-measured commentary.
	Notes []string
}

// String renders the full result.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Options tune experiment durations; the zero value selects quick settings
// suitable for tests, Full selects publication-length runs.
type Options struct {
	Full bool
	Seed uint64
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 2016
	}
	return o.Seed
}

// Runner produces a Result.
type Runner func(Options) *Result

// registry maps experiment ids to runners, with a stable presentation
// order.
var (
	registry = map[string]Runner{}
	order    []string
	titles   = map[string]string{}
)

// presentation is the paper's order; registration order (Go init order
// across files) is alphabetical by file and not meaningful.
var presentation = []string{
	"3a", "3b", "3c", "3d", "3e", "3f", "3g", "3h", "overhead",
	"6", "8", "9", "10a", "10b",
	"compression", "11a", "11b", "12", "13",
	"ablation-fastpath", "ablation-bearer", "ablation-stages",
	"ablation-radius", "ablation-solver", "ablation-qci", "ablation-index",
}

func register(id, title string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = r
	titles[id] = title
	order = append(order, id)
}

// IDs returns all experiment ids in presentation order; experiments not in
// the canonical list (if any are added) follow in registration order.
func IDs() []string {
	seen := map[string]bool{}
	var out []string
	for _, id := range presentation {
		if _, ok := registry[id]; ok {
			out = append(out, id)
			seen[id] = true
		}
	}
	for _, id := range order {
		if !seen[id] {
			out = append(out, id)
		}
	}
	return out
}

// Title returns the registered title for an id.
func Title(id string) string { return titles[id] }

// Run executes one experiment by id.
func Run(id string, opts Options) (*Result, error) {
	r, ok := registry[id]
	if !ok {
		var known []string
		known = append(known, order...)
		sort.Strings(known)
		return nil, fmt.Errorf("experiments: unknown id %q (known: %s)", id, strings.Join(known, ", "))
	}
	return r(opts), nil
}

// RunAll executes every experiment in presentation order.
func RunAll(opts Options) []*Result {
	ids := IDs()
	out := make([]*Result, 0, len(ids))
	for _, id := range ids {
		out = append(out, registry[id](opts))
	}
	return out
}
