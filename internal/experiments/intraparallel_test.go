package experiments

import (
	"strings"
	"testing"
)

// renderWithMetrics renders an experiment the way cmd/acacia-sim does with
// -metrics: result tables plus the merged telemetry table.
func renderWithMetrics(t *testing.T, id string, opts Options) string {
	t.Helper()
	r, err := Run(id, opts)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString(r.String())
	if r.Metrics != nil {
		b.WriteString(r.Metrics.String())
	}
	return b.String()
}

// TestManySiteModesIdentical asserts the many-site experiment's own verdicts:
// the windowed and gang executions must reproduce the sequential run exactly
// (counters, state checksums, merged telemetry).
func TestManySiteModesIdentical(t *testing.T) {
	out := renderWithMetrics(t, "many-site", Options{})
	if strings.Contains(out, "DIVERGED") {
		t.Fatalf("partitioned modes diverged from sequential:\n%s", out)
	}
	if strings.Count(out, "IDENTICAL") != 2 {
		t.Fatalf("expected two IDENTICAL verdicts:\n%s", out)
	}
}

// TestIntraParallelExperimentOutputIdentical is the ISSUE's regression gate
// for an existing experiment: figure 13 rendered with the partitioned gang
// engine must be byte-identical to the single-queue rendering, including the
// merged telemetry table.
func TestIntraParallelExperimentOutputIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full fig13 sweep")
	}
	seq := renderWithMetrics(t, "13", Options{})
	par := renderWithMetrics(t, "13", Options{IntraParallel: 2})
	if seq != par {
		t.Errorf("IntraParallel=2 output differs from sequential:\n--- sequential ---\n%s\n--- partitioned ---\n%s", seq, par)
	}
}

// TestMobilityContinuityOutputIdentical gates the first scenario where a
// live session migrates between partitions: the mobility-continuity
// experiment — cross-site handover, MRS relocation and the CI-to-CI state
// transfer all crossing the partition boundary — must render byte-identical
// under the single queue, the windowed engine and the worker gang.
func TestMobilityContinuityOutputIdentical(t *testing.T) {
	seq := renderWithMetrics(t, "mobility-continuity", Options{})
	for _, n := range []int{1, 2} {
		par := renderWithMetrics(t, "mobility-continuity", Options{IntraParallel: n})
		if seq != par {
			t.Errorf("IntraParallel=%d output differs from sequential:\n--- sequential ---\n%s\n--- partitioned ---\n%s", n, seq, par)
		}
	}
}
