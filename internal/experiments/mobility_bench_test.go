package experiments

import (
	"testing"
)

// The mobility benchmark family measures the cross-site walk scenario
// `make bench-mobility` records: one iteration is a full trial — testbed
// construction, attach, retail registration, the walker-driven boundary
// crossing, the S1 handover, the MRS relocation and the freeze/copy/resume
// state transfer — under the three execution modes. The workload is
// identical across modes (TestMobilityContinuityOutputIdentical proves the
// outputs are too), so the ns/op ratio isolates what the partitioned
// engine costs when a live session migrates between partitions.
func benchMobility(b *testing.B, workers int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := runMobilityTrial(2016, 200, workers)
		row := m.Part.([]any)
		if row[len(row)-1] != "ok" {
			b.Fatalf("trial did not migrate: %v", row)
		}
	}
}

func BenchmarkMobilitySequential(b *testing.B) { benchMobility(b, 0) }
func BenchmarkMobilityWindowed(b *testing.B)   { benchMobility(b, 1) }
func BenchmarkMobilityGang(b *testing.B)       { benchMobility(b, 3) }
