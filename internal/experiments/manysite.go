package experiments

import (
	"fmt"
	"time"

	"acacia/internal/exec"
	"acacia/internal/netsim"
	"acacia/internal/pkt"
	"acacia/internal/sim"
	"acacia/internal/stats"
	"acacia/internal/telemetry"
)

func init() { register(manySite()) }

// The many-site experiment is the partitioned engine's scale-out witness
// (DESIGN.md §3g): K edge sites, each with its own server and S user
// devices, exchange site-local request/response traffic plus periodic
// cross-partition reports with a central hub. The same scenario runs three
// ways — one global event queue, conservative windows on one worker, and
// windows on a gang — and the assembly proves the three produce identical
// per-site statistics, state checksums and merged telemetry.
//
// The scenario is built so zero timestamp ties exist across event owners:
// every timer period and link delay is a whole number of microseconds,
// every timer owner starts at a unique sub-microsecond offset, and links
// are pure delay lines (no serialization, no queueing, no jitter — and no
// RNG draws anywhere). Every event time is therefore congruent to its
// owner's offset modulo 1 µs, so no two owners ever schedule at the same
// instant and the interleaving freedom the partitioned engine exploits
// cannot change any handler's view of the world.

// manyReq is the request/response payload: which UE sent it and its
// sequence number.
type manyReq struct{ ue, seq int }

// manyRep is a site server's periodic report to the hub.
type manyRep struct{ site, seq int }

// manySiteStats is one site's deterministic outcome.
type manySiteStats struct {
	served    uint64 // requests processed by the site server
	responses uint64 // responses received back by the site's UEs
	reports   uint64 // reports sent to the hub
	acks      uint64 // hub acks received
	checksum  uint64 // FNV over (ue, seq) in service order
	rttSumNs  int64  // total request round-trip virtual time
}

// manySiteRun is the full outcome of one execution mode.
type manySiteRun struct {
	sites   []manySiteStats
	hubSeen uint64
	// metricsHash fingerprints the merged telemetry snapshot; equal hashes
	// mean byte-equal metric tables.
	metricsHash uint64
}

func fnv1a(h uint64, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= 1099511628211
		v >>= 8
	}
	return h
}

func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// runManySite executes the scenario with the given shape. workers selects
// the mode: 0 = one global event queue (no cluster), 1 = partitioned with
// serial windows, >= 2 = partitioned with a gang of that many workers.
func runManySite(seed uint64, sites, uesPerSite, vecLen, workers int, dur time.Duration) manySiteRun {
	eng := sim.NewEngine(seed)
	nw := netsim.New(eng)
	var cluster *sim.Cluster
	if workers > 0 {
		cluster = sim.NewCluster(eng, seed)
	}

	// Unique per-owner sub-microsecond start offsets: the no-ties scheme
	// needs every timer owner below 1000 (one full microsecond of distinct
	// nanosecond phases).
	own := 1
	nextOff := func() time.Duration {
		o := own
		own++
		if own >= 1000 {
			panic("experiments: many-site exceeds 999 timer owners")
		}
		return time.Duration(o) * time.Nanosecond
	}

	hubN := nw.AddNode("hub", pkt.AddrFrom(10, 0, 0, 1))
	hub := netsim.NewHost(hubN)
	hubPorts := map[pkt.Addr]*netsim.Port{}
	hub.ClassifyEgress = func(p *netsim.Packet) *netsim.Port { return hubPorts[p.Flow.Dst] }

	out := manySiteRun{sites: make([]manySiteStats, sites)}
	hub.Listen(7003, netsim.AppFunc(func(h *netsim.Host, p *netsim.Packet) {
		rep := p.Payload.(manyRep)
		out.hubSeen++
		h.Send(p.Flow.Src, 7003, 7004, pkt.ProtoUDP, 200, rep)
		h.Node.Network().Release(p)
	}))

	for i := 0; i < sites; i++ {
		i := i
		name := fmt.Sprintf("site-%d", i+1)
		var dom *netsim.Domain
		if cluster != nil {
			dom = nw.AddDomain(cluster.AddPartition("site/" + name))
		}
		srvN := nw.AddNode(name+"-srv", pkt.AddrFrom(10, byte(10+i), 0, 1))
		if dom != nil {
			nw.SetDomain(srvN, dom)
		}
		// Hub <-> server: the only cross-partition edge; its 5 ms delay is
		// the conservative lookahead.
		hubLink := nw.ConnectSymmetric(hubN, srvN, netsim.LinkConfig{Propagation: 5 * time.Millisecond})
		hubPorts[srvN.Addr()] = hubLink.A
		srv := netsim.NewHost(srvN)
		srvPorts := map[pkt.Addr]*netsim.Port{hubN.Addr(): hubLink.B}
		srv.ClassifyEgress = func(p *netsim.Packet) *netsim.Port { return srvPorts[p.Flow.Dst] }

		st := &out.sites[i]
		// Seed the checksum with the site index so identical per-site
		// workloads still yield distinct fingerprints — a request routed to
		// the wrong site's server changes two checksums, not zero.
		st.checksum = fnv1a(14695981039346656037, uint64(i+1))
		// Per-UE feature vectors are the site's working set: every request
		// sweeps its owner's vector, so a window of site-local events reuses
		// the same cache-resident state.
		vecs := make([][]float64, uesPerSite)
		for j := range vecs {
			vecs[j] = make([]float64, vecLen)
		}
		srv.Listen(7001, netsim.AppFunc(func(h *netsim.Host, p *netsim.Packet) {
			req := p.Payload.(manyReq)
			w := vecs[req.ue]
			x := float64(req.seq % 97)
			for k := 0; k < len(w); k += 8 {
				w[k] = w[k]*0.5 + x
			}
			st.checksum = fnv1a(st.checksum, uint64(req.ue)<<32|uint64(uint32(req.seq)))
			st.served++
			h.Send(p.Flow.Src, 7001, 7002, pkt.ProtoUDP, 1000, req)
			h.Node.Network().Release(p)
		}))
		srv.Listen(7004, netsim.AppFunc(func(h *netsim.Host, p *netsim.Packet) {
			st.acks++
			h.Node.Network().Release(p)
		}))

		// The server's periodic hub report.
		srvEng := srvN.Engine()
		hubAddr := hubN.Addr()
		srvEng.Schedule(nextOff(), func() {
			seq := 0
			report := func() {
				seq++
				st.reports++
				srv.Send(hubAddr, 7004, 7003, pkt.ProtoUDP, 200, manyRep{site: i, seq: seq})
			}
			report()
			sim.NewTicker(srvEng, 25*time.Millisecond, report)
		})

		for j := 0; j < uesPerSite; j++ {
			j := j
			ueN := nw.AddNode(fmt.Sprintf("%s-ue-%d", name, j+1), pkt.AddrFrom(10, byte(10+i), 1, byte(1+j)))
			if dom != nil {
				nw.SetDomain(ueN, dom)
			}
			ueLink := nw.ConnectSymmetric(srvN, ueN, netsim.LinkConfig{Propagation: 200 * time.Microsecond})
			srvPorts[ueN.Addr()] = ueLink.A
			ue := netsim.NewHost(ueN)
			ueEng := ueN.Engine()
			sentAt := map[int]sim.Time{}
			ue.Listen(7002, netsim.AppFunc(func(h *netsim.Host, p *netsim.Packet) {
				req := p.Payload.(manyReq)
				if t0, ok := sentAt[req.seq]; ok {
					delete(sentAt, req.seq)
					st.responses++
					st.rttSumNs += int64(ueEng.Now().Sub(t0))
				}
				h.Node.Network().Release(p)
			}))
			srvAddr := srvN.Addr()
			ueEng.Schedule(nextOff(), func() {
				seq := 0
				request := func() {
					seq++
					sentAt[seq] = ueEng.Now()
					ue.Send(srvAddr, 7002, 7001, pkt.ProtoUDP, 1000, manyReq{ue: j, seq: seq})
				}
				request()
				sim.NewTicker(ueEng, 20*time.Millisecond, request)
			})
		}
	}

	if cluster == nil {
		eng.RunFor(dur)
		out.metricsHash = hashString(eng.Metrics().Snapshot().String())
		return out
	}
	if la, ok := nw.MinCrossLatency(); ok {
		cluster.SetLookahead(la)
	}
	if workers > 1 {
		n := workers
		if m := len(cluster.Engines()); n > m {
			n = m
		}
		g := exec.NewGang(n)
		cluster.SetRunner(g)
		cluster.RunFor(dur)
		cluster.SetRunner(nil)
		g.Stop()
	} else {
		cluster.RunFor(dur)
	}
	engines := cluster.Engines()
	snaps := make([]*telemetry.Snapshot, len(engines))
	for i, e := range engines {
		snaps[i] = e.Metrics().Snapshot()
	}
	out.metricsHash = hashString(telemetry.MergeSnapshots(snaps...).String())
	return out
}

func (r manySiteRun) equal(o manySiteRun) bool {
	if r.hubSeen != o.hubSeen || r.metricsHash != o.metricsHash || len(r.sites) != len(o.sites) {
		return false
	}
	for i := range r.sites {
		if r.sites[i] != o.sites[i] {
			return false
		}
	}
	return true
}

// manySite declares the experiment: the same scenario under the three
// execution modes, assembled into per-site statistics plus identity
// verdicts. All three trials deliberately run from one shared seed (forked
// from the base seed by the experiment name, not the trial key) — the whole
// point is comparing modes on an identical workload.
func manySite() Experiment {
	const id = "many-site"
	shape := func(opts Options) (sites, ues, vecLen int, dur time.Duration) {
		if opts.Full {
			return 12, 6, 8192, 6 * time.Second
		}
		return 4, 3, 2048, 2 * time.Second
	}
	modes := []struct {
		key     string
		workers func(sites int) int
	}{
		{"sequential", func(int) int { return 0 }},
		{"windowed", func(int) int { return 1 }},
		{"gang", func(sites int) int { return sites }},
	}
	return Experiment{
		ID:    id,
		Title: "Partitioned engine identity and scale-out (many-site, §3g)",
		Trials: func(opts Options) []Trial {
			sites, ues, vecLen, dur := shape(opts)
			trials := make([]Trial, 0, len(modes))
			for _, m := range modes {
				m := m
				trials = append(trials, Trial{
					Key: "mode=" + m.key,
					Run: func(_ uint64) any {
						return runManySite(subSeed(opts.BaseSeed(), id), sites, ues, vecLen, m.workers(sites), dur)
					},
				})
			}
			return trials
		},
		Assemble: func(opts Options, parts []any) *Result {
			sites, ues, _, dur := shape(opts)
			seq := parts[0].(manySiteRun)
			win := parts[1].(manySiteRun)
			gang := parts[2].(manySiteRun)
			tbl := stats.NewTable(
				fmt.Sprintf("Per-site outcome: %d sites x %d UEs, %v (sequential mode)", sites, ues, dur),
				"site", "served", "responses", "reports", "acks", "mean-rtt-us", "checksum")
			var served, responses uint64
			for i, s := range seq.sites {
				rtt := 0.0
				if s.responses > 0 {
					rtt = float64(s.rttSumNs) / float64(s.responses) / 1e3
				}
				tbl.AddRow(fmt.Sprintf("site-%d", i+1), s.served, s.responses, s.reports, s.acks,
					fmt.Sprintf("%.1f", rtt), fmt.Sprintf("%016x", s.checksum))
				served += s.served
				responses += s.responses
			}
			verdict := func(r manySiteRun) string {
				if r.equal(seq) {
					return "IDENTICAL"
				}
				return "DIVERGED"
			}
			return &Result{
				ID: id, Title: Title(id),
				Tables: []*stats.Table{tbl},
				Notes: []string{
					fmt.Sprintf("total served %d, hub reports %d", served, seq.hubSeen),
					"windowed (1 partition worker) vs sequential: " + verdict(win),
					fmt.Sprintf("gang (%d workers, %d partitions) vs sequential: %s", sites, sites+1, verdict(gang)),
					"identity covers per-site counters, state checksums and merged telemetry",
				},
			}
		},
	}
}
