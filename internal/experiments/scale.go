package experiments

import (
	"errors"
	"fmt"
	"math"
	"time"

	"acacia/internal/core"
	"acacia/internal/epc"
	"acacia/internal/exec"
	"acacia/internal/netsim"
	"acacia/internal/pkt"
	"acacia/internal/sdn"
	"acacia/internal/sim"
	"acacia/internal/stats"
	"acacia/internal/telemetry"
)

func init() { register(scaleMetro()) }

// The scale experiment is the metro-scale witness for the whole refactor
// stack: a generated grid of edge sites (each on its own partition of the
// conservative-parallel engine), a grid of eNBs on the aggregation router,
// and a UE population that arrives on a diurnal curve with a flash crowd
// around one site. Arriving UEs attach in batched cohorts (AttachBatch),
// request MEC connectivity through the capacity-admitting MRS (spilling to
// other sites when their home site fills, backing off when everything is
// full), and then run a periodic AR-style frame loop against their assigned
// CI server. The output is the UEs-vs-latency curve — attach and frame
// percentiles bucketed by the attached population at the time of the
// measurement — plus the §3g identity verdicts across sequential, windowed
// and gang execution.
//
// Determinism: no RNG is drawn anywhere. Placement uses a golden-ratio
// low-discrepancy sequence over deterministic site weights, arrivals invert
// the diurnal CDF at fixed quantiles, and every frame timer owns a unique
// sub-millisecond phase (UE k sends at a whole millisecond plus k+1 ns, with
// a whole-millisecond period), so no two UEs ever schedule a cross-partition
// event at the same instant.

// ScaleConfig shapes the generated metro scenario.
type ScaleConfig struct {
	// Sites is the number of generated edge sites; ENBsPerSite eNBs hang
	// off the aggregation router for each site.
	Sites       int
	ENBsPerSite int
	// UEs is the total population.
	UEs int
	// SiteCapacity is the MRS capacity units per site (0 = unbounded).
	// When Sites*SiteCapacity < UEs the tail of the population is rejected
	// with ErrNoCapacity and retries on a capped backoff.
	SiteCapacity int
	// Ramp is the arrival window; Hold extends the run after the last
	// scheduled arrival so the frame loops reach steady state.
	Ramp, Hold time.Duration
	// CohortWindow groups arrivals into AttachBatch cohorts.
	CohortWindow time.Duration
	// FramePeriod/FrameService shape the AR frame loop: each bound UE sends
	// one request per period; the CI server is a FIFO single-server queue
	// with the given per-frame service time. Both must be whole
	// milliseconds/microseconds (the no-ties scheme relies on it).
	FramePeriod  time.Duration
	FrameService time.Duration
	// Arrival selects the profile: "uniform" (flat), "diurnal" (sin^2
	// curve) or "flash" (diurnal plus a flash crowd around FlashSite).
	Arrival string
	// FlashSite is the 0-based site index the flash crowd is homed on;
	// FlashFraction the fraction of the population arriving in the flash.
	FlashSite     int
	FlashFraction float64
	// Workers selects the execution mode: 0 = one global event queue, 1 =
	// per-site partitions in serial windows, >= 2 = windows on a gang of
	// that many workers.
	Workers int
}

// DefaultScaleConfig returns the preset shapes: the quick shape keeps tests
// fast; the full shape is the acceptance scenario (>= 10,000 UEs across
// >= 12 generated sites).
func DefaultScaleConfig(full bool) ScaleConfig {
	if full {
		return ScaleConfig{
			Sites: 12, ENBsPerSite: 2, UEs: 10000, SiteCapacity: 820,
			Ramp: 20 * time.Second, Hold: 10 * time.Second,
			CohortWindow: 250 * time.Millisecond,
			FramePeriod:  2 * time.Second, FrameService: 2 * time.Millisecond,
			Arrival: "flash", FlashSite: 4, FlashFraction: 0.2,
		}
	}
	return ScaleConfig{
		Sites: 4, ENBsPerSite: 1, UEs: 120, SiteCapacity: 26,
		Ramp: 6 * time.Second, Hold: 3 * time.Second,
		CohortWindow: 250 * time.Millisecond,
		FramePeriod:  time.Second, FrameService: 20 * time.Millisecond,
		Arrival: "flash", FlashSite: 2, FlashFraction: 0.25,
	}
}

func (c ScaleConfig) withDefaults() ScaleConfig {
	d := DefaultScaleConfig(false)
	if c.Sites <= 0 {
		c.Sites = d.Sites
	}
	if c.ENBsPerSite <= 0 {
		c.ENBsPerSite = d.ENBsPerSite
	}
	if c.UEs <= 0 {
		c.UEs = d.UEs
	}
	if c.Ramp <= 0 {
		c.Ramp = d.Ramp
	}
	if c.Hold <= 0 {
		c.Hold = d.Hold
	}
	if c.CohortWindow <= 0 {
		c.CohortWindow = d.CohortWindow
	}
	if c.FramePeriod <= 0 {
		c.FramePeriod = d.FramePeriod
	}
	if c.FrameService <= 0 {
		c.FrameService = d.FrameService
	}
	if c.Arrival == "" {
		c.Arrival = d.Arrival
	}
	if c.FlashSite < 0 || c.FlashSite >= c.Sites {
		c.FlashSite = c.Sites / 2
	}
	if c.FlashFraction <= 0 || c.FlashFraction >= 1 {
		c.FlashFraction = d.FlashFraction
	}
	return c
}

const (
	scaleFramePort = 7101
	scaleRespPort  = 7102
	scaleService   = "metro-ci"
	scalePolicy    = "metro-ar"
	scaleMaxBatch  = 64
	scaleBuckets   = 10
	scaleFrameReq  = 8 * 1024 // uplink frame bytes
	scaleFrameResp = 200      // downlink annotation bytes
)

// scaleFrame is one AR frame request/response payload.
type scaleFrame struct{ ue, seq int }

// scaleSiteOutcome is one generated site's deterministic outcome.
type scaleSiteOutcome struct {
	Bound  int    // capacity units in use at the end of the run
	Served uint64 // frames processed by the site's CI server
}

// scaleRun is the full outcome of one execution mode.
type scaleRun struct {
	attached   uint64 // UEs through the batched attach
	bound      uint64 // UEs with a MEC binding
	rejections uint64 // MRS admission rejections (all sites full)
	retries    uint64 // backoff retries scheduled after a rejection
	attachErrs uint64
	framesSent uint64
	framesDone uint64

	sites []scaleSiteOutcome

	// attachMs/frameMs bucket latency samples by the attached population at
	// measurement time (bucket i covers populations up to (i+1)/10 of the
	// configured total) — the raw material of the UEs-vs-latency curve.
	attachMs [scaleBuckets]*stats.Sample
	frameMs  [scaleBuckets]*stats.Sample

	// checksum folds every attach latency and frame round trip (with its
	// owner and the population at send time) in master-engine event order;
	// metricsHash fingerprints the merged telemetry snapshot.
	checksum    uint64
	metricsHash uint64
}

func (r *scaleRun) equal(o *scaleRun) bool {
	if r.attached != o.attached || r.bound != o.bound ||
		r.rejections != o.rejections || r.retries != o.retries ||
		r.attachErrs != o.attachErrs ||
		r.framesSent != o.framesSent || r.framesDone != o.framesDone ||
		r.checksum != o.checksum || r.metricsHash != o.metricsHash ||
		len(r.sites) != len(o.sites) {
		return false
	}
	for i := range r.sites {
		if r.sites[i] != o.sites[i] {
			return false
		}
	}
	for i := range r.attachMs {
		if r.attachMs[i].N() != o.attachMs[i].N() || r.frameMs[i].N() != o.frameMs[i].N() {
			return false
		}
	}
	return true
}

// scaleSiteWeights is the deterministic "downtown gradient": site 0 is the
// densest, falling off on a cosine toward the metro edge. Uniform arrivals
// flatten it.
func scaleSiteWeights(cfg ScaleConfig) []float64 {
	w := make([]float64, cfg.Sites)
	for s := range w {
		if cfg.Arrival == "uniform" || cfg.Sites == 1 {
			w[s] = 1
			continue
		}
		w[s] = 0.6 + 0.4*math.Cos(math.Pi*float64(s)/float64(cfg.Sites-1))
	}
	return w
}

// diurnalCDF is the normalized cumulative arrival mass of the diurnal curve
// w(u) = 0.35 + 0.65 sin^2(pi u) over u in [0, 1].
func diurnalCDF(u float64) float64 {
	c := 0.35*u + 0.65*(u/2-math.Sin(2*math.Pi*u)/(4*math.Pi))
	return c / 0.675
}

// invertDiurnal returns the u with diurnalCDF(u) = p, by bisection (the CDF
// is strictly increasing).
func invertDiurnal(p float64) float64 {
	lo, hi := 0.0, 1.0
	for i := 0; i < 48; i++ {
		mid := (lo + hi) / 2
		if diurnalCDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// runScale builds the generated metro and executes it in the mode selected
// by cfg.Workers. All randomness-free: the same cfg and seed produce the
// same run in every mode — that is the identity contract the experiment
// verifies.
func runScale(seed uint64, cfg ScaleConfig) *scaleRun {
	cfg = cfg.withDefaults()
	const (
		radioDelay    = 5 * time.Millisecond
		backhaulDelay = 500 * time.Microsecond
		coreDelay     = 10 * time.Millisecond
		siteDelay     = 2 * time.Millisecond // rtr -> site SGW-U: the conservative lookahead
		fabricDelay   = 100 * time.Microsecond
	)

	eng := sim.NewEngine(seed)
	nw := netsim.New(eng)
	ctl := sdn.NewController(eng)
	ctl.RTT = 200 * time.Microsecond
	var cluster *sim.Cluster
	if cfg.Workers > 0 {
		cluster = sim.NewCluster(eng, seed)
	}

	out := &scaleRun{sites: make([]scaleSiteOutcome, cfg.Sites)}
	for i := range out.attachMs {
		out.attachMs[i] = &stats.Sample{}
		out.frameMs[i] = &stats.Sample{}
	}
	out.checksum = fnv1a(14695981039346656037, uint64(cfg.Sites))

	link := func(d time.Duration) netsim.LinkConfig {
		return netsim.LinkConfig{Propagation: d}
	}

	// Aggregation core: router, centralized default-bearer gateways, SGi
	// sink. Everything here (plus the EPC control plane, the controller and
	// every eNB/UE) lives on the master partition.
	rtrN := nw.AddNode("agg-router", pkt.AddrFrom(10, 1, 0, 254))
	coreSGWN := nw.AddNode("metro-core-sgw-u", pkt.AddrFrom(10, 2, 0, 1))
	corePGWN := nw.AddNode("metro-core-pgw-u", pkt.AddrFrom(10, 2, 0, 2))
	inetN := nw.AddNode("inet-sink", pkt.AddrFrom(8, 8, 0, 10))

	// eNB grid: ENBsPerSite eNBs per site on the router (eNB port 0 must be
	// the backhaul, so these links precede every UE connection).
	numENBs := cfg.Sites * cfg.ENBsPerSite
	enbNodes := make([]*netsim.Node, 0, numENBs)
	for s := 0; s < cfg.Sites; s++ {
		for e := 0; e < cfg.ENBsPerSite; e++ {
			n := nw.AddNode(fmt.Sprintf("enb-%d-%d", s+1, e+1), pkt.AddrFrom(10, 1, byte(1+s), byte(1+e)))
			nw.ConnectSymmetric(n, rtrN, link(backhaulDelay))
			enbNodes = append(enbNodes, n)
		}
	}
	nw.ConnectSymmetric(rtrN, coreSGWN, link(coreDelay)) // rtr port numENBs
	nw.ConnectSymmetric(coreSGWN, corePGWN, link(backhaulDelay))
	nw.ConnectSymmetric(corePGWN, inetN, link(2*time.Millisecond))

	// Generated sites: SGW-U/PGW-U pair plus CI server, each site one
	// partition (domains are set before any link touches the nodes; the
	// rtr<->site-SGW link is the only cross edge).
	type siteNodes struct {
		name         string
		sgw, pgw, ci *netsim.Node
		sgwSW, pgwSW *sdn.Switch
		sgwPl, pgwPl string
	}
	siteList := make([]*siteNodes, cfg.Sites)
	for s := 0; s < cfg.Sites; s++ {
		name := fmt.Sprintf("site-%d", s+1)
		sn := &siteNodes{
			name:  name,
			sgw:   nw.AddNode(name+"-sgw-u", pkt.AddrFrom(10, byte(30+s), 0, 1)),
			pgw:   nw.AddNode(name+"-pgw-u", pkt.AddrFrom(10, byte(30+s), 0, 2)),
			ci:    nw.AddNode(name+"-ci", pkt.AddrFrom(10, byte(30+s), 0, 10)),
			sgwPl: name + "-sgw",
			pgwPl: name + "-pgw",
		}
		if cluster != nil {
			dom := nw.AddDomain(cluster.AddPartition("site/" + name))
			nw.SetDomain(sn.sgw, dom)
			nw.SetDomain(sn.pgw, dom)
			nw.SetDomain(sn.ci, dom)
		}
		nw.ConnectSymmetric(rtrN, sn.sgw, link(siteDelay)) // rtr port numENBs+1+s
		nw.ConnectSymmetric(sn.sgw, sn.pgw, link(fabricDelay))
		nw.ConnectSymmetric(sn.pgw, sn.ci, link(fabricDelay))
		siteList[s] = sn
	}

	rtr := netsim.NewRouter(rtrN)
	for i, n := range enbNodes {
		rtr.AddHostRoute(n.Addr(), rtrN.Port(i))
	}
	rtr.AddHostRoute(coreSGWN.Addr(), rtrN.Port(numENBs))
	for s, sn := range siteList {
		rtr.AddHostRoute(sn.sgw.Addr(), rtrN.Port(numENBs+1+s))
	}

	// Switches (created after the domains so their telemetry and OpenFlow
	// endpoints live on the owning partition's engine).
	coreSGW := sdn.NewSwitch(1, coreSGWN, sdn.ACACIAGWCosts)
	corePGW := sdn.NewSwitch(2, corePGWN, sdn.ACACIAGWCosts)
	ctl.AddSwitch(coreSGW)
	ctl.AddSwitch(corePGW)
	for s, sn := range siteList {
		sn.sgwSW = sdn.NewSwitch(uint64(3+2*s), sn.sgw, sdn.ACACIAGWCosts)
		sn.pgwSW = sdn.NewSwitch(uint64(4+2*s), sn.pgw, sdn.ACACIAGWCosts)
		ctl.AddSwitch(sn.sgwSW)
		ctl.AddSwitch(sn.pgwSW)
	}

	// EPC control plane and user planes.
	ec := epc.NewCore(epc.Config{
		Eng: eng, Net: nw, Ctl: ctl,
		S1APDelay:   2 * time.Millisecond,
		GTPv2Delay:  time.Millisecond,
		IdleTimeout: time.Hour,
	})
	ec.SGWC.AddUserPlane("metro-core-sgw", coreSGW, 0, 1)
	ec.PGWC.AddUserPlane("metro-core-pgw", corePGW, 0, 1)
	for _, sn := range siteList {
		ec.SGWC.AddUserPlane(sn.sgwPl, sn.sgwSW, 0, 1)
		ec.PGWC.AddUserPlane(sn.pgwPl, sn.pgwSW, 0, 1)
	}
	ec.PCRF.AddRule(epc.PolicyRule{ServiceID: scalePolicy, QCI: pkt.QCIMEC, ARP: 2, Precedence: 10})

	enbs := make([]*epc.ENB, len(enbNodes))
	for i, n := range enbNodes {
		enbs[i] = epc.NewENB(ec, n)
	}

	// MRS with capacity-based admission: each site is local to its own
	// eNBs; the UCMEC-style spill and the ErrNoCapacity backoff handle a
	// site filling up.
	mrs := core.NewMRS(ec)
	svc := core.CIService{Name: scaleService, PolicyID: scalePolicy}
	for s, sn := range siteList {
		enbNames := make([]string, cfg.ENBsPerSite)
		for e := 0; e < cfg.ENBsPerSite; e++ {
			enbNames[e] = enbNodes[s*cfg.ENBsPerSite+e].Name()
		}
		svc.Sites = append(svc.Sites, core.EdgeSite{
			Name: sn.name, CIServer: sn.ci.Addr(),
			SGWPlane: sn.sgwPl, PGWPlane: sn.pgwPl,
			ENBs: enbNames, CapacityUnits: cfg.SiteCapacity,
		})
	}
	mrs.RegisterService(svc)

	// CI servers: a deterministic FIFO single-server queue per site, run
	// entirely on the site's partition engine.
	netsim.NewHost(inetN)
	for s, sn := range siteList {
		st := &out.sites[s]
		ci := netsim.NewHost(sn.ci)
		ciEng := sn.ci.Engine()
		var busyUntil sim.Time
		ci.Listen(scaleFramePort, netsim.AppFunc(func(h *netsim.Host, p *netsim.Packet) {
			st.Served++
			now := ciEng.Now()
			start := now
			if busyUntil > start {
				start = busyUntil
			}
			busyUntil = start.Add(cfg.FrameService)
			src := p.Flow.Src
			fr := p.Payload.(scaleFrame)
			ciEng.Schedule(busyUntil.Sub(now), func() {
				h.Send(src, scaleFramePort, scaleRespPort, pkt.ProtoUDP, scaleFrameResp, fr)
			})
			h.Node.Network().Release(p)
		}))
	}

	// Population: deterministic weighted placement over the site grid (a
	// golden-ratio sequence against the cumulative weights decorrelates the
	// home site from the arrival index), flash crowd homed on FlashSite.
	weights := scaleSiteWeights(cfg)
	cum := make([]float64, cfg.Sites)
	total := 0.0
	for s, w := range weights {
		total += w
		cum[s] = total
	}
	homeSite := func(k int) int {
		pos := math.Mod(float64(k)*0.6180339887498949, 1) * total
		for s := range cum {
			if pos < cum[s] {
				return s
			}
		}
		return cfg.Sites - 1
	}

	flash := 0
	if cfg.Arrival == "flash" {
		flash = int(float64(cfg.UEs) * cfg.FlashFraction)
	}
	background := cfg.UEs - flash

	ues := make([]*epc.UE, cfg.UEs)
	homeENB := make([]*epc.ENB, cfg.UEs)
	arrivalAt := make([]sim.Time, cfg.UEs)
	ueIndex := make(map[*epc.UE]int, cfg.UEs)
	for k := 0; k < cfg.UEs; k++ {
		imsi := fmt.Sprintf("001017%09d", k+1)
		ueN := nw.AddNode(fmt.Sprintf("ue-%d", k+1), pkt.AddrFrom(172, 16, byte(1+k/250), byte(1+k%250)))
		ue := epc.NewUE(ueN, imsi)
		site := homeSite(k)
		if k >= background {
			site = cfg.FlashSite
		}
		enb := enbs[site*cfg.ENBsPerSite+k%cfg.ENBsPerSite]
		enb.ConnectUE(ue, link(radioDelay))
		ec.HSS.Provision(epc.Subscriber{IMSI: imsi})
		ues[k] = ue
		homeENB[k] = enb
		ueIndex[ue] = k
	}

	// Arrival schedule: background UEs invert the profile CDF at fixed
	// quantiles across the ramp; the flash crowd lands in a narrow window
	// around 60% of the ramp. The k+1 ns term keeps arrivals distinct.
	arrival := func(k int) time.Duration {
		var pos float64
		if k >= background {
			i := k - background
			pos = 0.60 + 0.05*(float64(i)+0.5)/float64(flash)
		} else {
			p := (float64(k) + 0.5) / float64(background)
			if cfg.Arrival == "uniform" {
				pos = p
			} else {
				pos = invertDiurnal(p)
			}
		}
		t := time.Duration(pos * float64(cfg.Ramp))
		return t.Truncate(time.Microsecond) + time.Duration(k+1)*time.Nanosecond
	}

	bucket := func(pop uint64) int {
		b := int(pop) * scaleBuckets / cfg.UEs
		if b >= scaleBuckets {
			b = scaleBuckets - 1
		}
		return b
	}

	// Frame loop: started once the UE is bound to a CI server. UE k's sends
	// land on whole milliseconds plus its unique k+1 ns phase; with a
	// whole-millisecond period no two UEs ever emit a cross-partition event
	// at the same instant.
	startFrames := func(k int, ue *epc.UE, ciAddr pkt.Addr) {
		ueEng := ue.Host.Node.Engine()
		seq := 0
		sentAt := make(map[int]sim.Time)
		popAt := make(map[int]uint64)
		ue.Host.Listen(scaleRespPort, netsim.AppFunc(func(h *netsim.Host, p *netsim.Packet) {
			fr := p.Payload.(scaleFrame)
			if t0, ok := sentAt[fr.seq]; ok {
				delete(sentAt, fr.seq)
				rtt := ueEng.Now().Sub(t0)
				pop := popAt[fr.seq]
				delete(popAt, fr.seq)
				out.framesDone++
				out.frameMs[bucket(pop)].Add(float64(rtt) / 1e6)
				out.checksum = fnv1a(out.checksum, 2)
				out.checksum = fnv1a(out.checksum, uint64(fr.ue)<<32|uint64(uint32(fr.seq)))
				out.checksum = fnv1a(out.checksum, uint64(rtt))
				out.checksum = fnv1a(out.checksum, pop)
			}
			h.Node.Network().Release(p)
		}))
		now := ueEng.Now()
		ms := sim.Time(time.Millisecond)
		first := (now/ms+1)*ms + sim.Time(k+1)
		ueEng.Schedule(first.Sub(now), func() {
			send := func() {
				seq++
				sentAt[seq] = ueEng.Now()
				popAt[seq] = out.attached
				out.framesSent++
				ue.Host.Send(ciAddr, scaleRespPort, scaleFramePort, pkt.ProtoUDP, scaleFrameReq, scaleFrame{ue: k, seq: seq})
			}
			send()
			sim.NewTicker(ueEng, cfg.FramePeriod, send)
		})
	}

	// MEC connectivity with the device-manager-style capped backoff:
	// ErrNoCapacity is retriable, anything else terminal.
	var requestCI func(k int, ue *epc.UE, attempt int)
	requestCI = func(k int, ue *epc.UE, attempt int) {
		mrs.RequestConnectivity(scaleService, ue.Addr(), homeENB[k].Name(), func(ci pkt.Addr, err error) {
			if err != nil {
				if errors.Is(err, core.ErrNoCapacity) {
					out.retries++
					backoff := 500 * time.Millisecond << uint(min(attempt, 3))
					eng.Schedule(backoff, func() { requestCI(k, ue, attempt+1) })
				}
				return
			}
			out.bound++
			startFrames(k, ue, ci)
		})
	}

	// Cohort attach: arrivals accumulate between cohort windows; each flush
	// cuts the pending list into batched attach transactions.
	var pending []*epc.UE
	flush := func() {
		for len(pending) > 0 {
			n := len(pending)
			if n > scaleMaxBatch {
				n = scaleMaxBatch
			}
			cohort := append([]*epc.UE(nil), pending[:n]...)
			pending = pending[n:]
			ec.AttachBatch(cohort, "metro-core-sgw", "metro-core-pgw", func(u *epc.UE, err error) {
				if err != nil {
					out.attachErrs++
					return
				}
				k := ueIndex[u]
				lat := eng.Now().Sub(arrivalAt[k])
				out.attached++
				out.attachMs[bucket(out.attached)].Add(float64(lat) / 1e6)
				out.checksum = fnv1a(out.checksum, 1)
				out.checksum = fnv1a(out.checksum, uint64(k))
				out.checksum = fnv1a(out.checksum, uint64(lat))
				requestCI(k, u, 0)
			})
		}
	}
	for k := 0; k < cfg.UEs; k++ {
		k := k
		eng.Schedule(arrival(k), func() {
			arrivalAt[k] = eng.Now()
			pending = append(pending, ues[k])
		})
	}
	eng.Schedule(cfg.CohortWindow, func() {
		flush()
		sim.NewTicker(eng, cfg.CohortWindow, flush)
	})

	dur := cfg.Ramp + cfg.Hold
	if cluster == nil {
		eng.RunFor(dur)
		out.metricsHash = hashString(eng.Metrics().Snapshot().String())
	} else {
		if la, ok := nw.MinCrossLatency(); ok {
			cluster.SetLookahead(la)
		}
		if cfg.Workers > 1 {
			n := cfg.Workers
			if m := len(cluster.Engines()); n > m {
				n = m
			}
			g := exec.NewGang(n)
			cluster.SetRunner(g)
			cluster.RunFor(dur)
			cluster.SetRunner(nil)
			g.Stop()
		} else {
			cluster.RunFor(dur)
		}
		engines := cluster.Engines()
		snaps := make([]*telemetry.Snapshot, len(engines))
		for i, e := range engines {
			snaps[i] = e.Metrics().Snapshot()
		}
		out.metricsHash = hashString(telemetry.MergeSnapshots(snaps...).String())
	}

	for s, sn := range siteList {
		out.sites[s].Bound = mrs.SiteLoad(sn.name)
	}
	out.rejections = mrs.Rejections
	return out
}

// assembleScale renders one run (plus optional cross-mode verdicts) as a
// Result: the UEs-vs-latency curve, the per-site placement table, and the
// admission/identity notes.
func assembleScale(id string, cfg ScaleConfig, seq *scaleRun, extraNotes []string) *Result {
	curve := stats.NewTable(
		fmt.Sprintf("UEs vs latency: %d UEs, %d sites x %d eNBs, %v ramp (%s arrivals)",
			cfg.UEs, cfg.Sites, cfg.ENBsPerSite, cfg.Ramp, cfg.Arrival),
		"population", "attach-n", "attach-p50-ms", "attach-p99-ms", "frame-n", "frame-p50-ms", "frame-p99-ms")
	for i := 0; i < scaleBuckets; i++ {
		a, f := seq.attachMs[i], seq.frameMs[i]
		if a.N() == 0 && f.N() == 0 {
			continue
		}
		row := []any{fmt.Sprintf("<=%d", (i+1)*cfg.UEs/scaleBuckets), a.N()}
		if a.N() > 0 {
			row = append(row, fmt.Sprintf("%.2f", a.Median()), fmt.Sprintf("%.2f", a.Percentile(99)))
		} else {
			row = append(row, "-", "-")
		}
		row = append(row, f.N())
		if f.N() > 0 {
			row = append(row, fmt.Sprintf("%.2f", f.Median()), fmt.Sprintf("%.2f", f.Percentile(99)))
		} else {
			row = append(row, "-", "-")
		}
		curve.AddRow(row...)
	}

	capDesc := "unbounded capacity"
	if cfg.SiteCapacity > 0 {
		capDesc = fmt.Sprintf("capacity %d units/site", cfg.SiteCapacity)
	}
	if cfg.Arrival == "flash" {
		capDesc += fmt.Sprintf(", flash crowd on site-%d", cfg.FlashSite+1)
	}
	sitesTbl := stats.NewTable("Placement: "+capDesc, "site", "bound", "frames-served")
	for s := range seq.sites {
		sitesTbl.AddRow(fmt.Sprintf("site-%d", s+1), seq.sites[s].Bound, seq.sites[s].Served)
	}

	notes := []string{
		fmt.Sprintf("attached %d/%d UEs, %d bound to CI servers; %d frames sent, %d completed",
			seq.attached, cfg.UEs, seq.bound, seq.framesSent, seq.framesDone),
		fmt.Sprintf("admission: %d rejections (every site full at request time), %d backoff retries", seq.rejections, seq.retries),
	}
	notes = append(notes, extraNotes...)
	return &Result{ID: id, Title: Title(id), Tables: []*stats.Table{curve, sitesTbl}, Notes: notes}
}

// RunScaleScenario runs the metro scenario once with the given shape — the
// acacia-sim -scale entry point. cfg.Workers selects the execution mode
// exactly like -intra-parallel.
func RunScaleScenario(seed uint64, cfg ScaleConfig) *Result {
	cfg = cfg.withDefaults()
	r := runScale(seed, cfg)
	res := assembleScale("scale", cfg, r, nil)
	return res
}

// scaleMetro declares the experiment: the same generated metro under the
// three execution modes (one shared seed, forked from the experiment name),
// assembled into the latency curve plus identity verdicts.
func scaleMetro() Experiment {
	const id = "scale"
	shape := func(opts Options) ScaleConfig { return DefaultScaleConfig(opts.Full) }
	modes := []struct {
		key     string
		workers func(cfg ScaleConfig) int
	}{
		{"sequential", func(ScaleConfig) int { return 0 }},
		{"windowed", func(ScaleConfig) int { return 1 }},
		{"gang", func(cfg ScaleConfig) int { return cfg.Sites }},
	}
	return Experiment{
		ID:    id,
		Title: "Metro-scale scenario: batched attach, admission and partitioned scale-out",
		Trials: func(opts Options) []Trial {
			cfg := shape(opts)
			trials := make([]Trial, 0, len(modes))
			for _, m := range modes {
				m := m
				trials = append(trials, Trial{
					Key: "mode=" + m.key,
					Run: func(_ uint64) any {
						c := cfg
						c.Workers = m.workers(cfg)
						return runScale(subSeed(opts.BaseSeed(), id), c)
					},
				})
			}
			return trials
		},
		Assemble: func(opts Options, parts []any) *Result {
			cfg := shape(opts)
			seq := parts[0].(*scaleRun)
			win := parts[1].(*scaleRun)
			gang := parts[2].(*scaleRun)
			verdict := func(r *scaleRun) string {
				if r.equal(seq) {
					return "IDENTICAL"
				}
				return "DIVERGED"
			}
			return assembleScale(id, cfg, seq, []string{
				"windowed (1 partition worker) vs sequential: " + verdict(win),
				fmt.Sprintf("gang (%d workers, %d partitions) vs sequential: %s", cfg.Sites, cfg.Sites+1, verdict(gang)),
				"identity covers attach/frame checksums, admission counters, per-site placement and merged telemetry",
			})
		},
	}
}
