package experiments

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"testing"

	"acacia/internal/exec"
)

// detSubset spans all five runner files (motivation, micro, app,
// robustness, ablation) with multi-trial experiments, while staying
// affordable for CI. robust-failover keeps a fault plan active during the
// parallel-vs-sequential comparison, so failure injection itself is under
// the byte-identical contract.
var detSubset = []string{"3c", "3d", "9", "10a", "13", "many-site", "robust-failover", "ablation-qci", "ablation-stages"}

func renderSubset(t *testing.T, opts Options) string {
	t.Helper()
	exps := make([]*Experiment, 0, len(detSubset))
	for _, id := range detSubset {
		e, ok := registry[id]
		if !ok {
			t.Fatalf("unknown subset id %q", id)
		}
		exps = append(exps, e)
	}
	results, err := runExperiments(opts, exps)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, r := range results {
		b.WriteString(r.String())
		// Include the merged telemetry snapshot (and its timeline) so the
		// determinism tests below cover the -metrics/-timeline output too.
		if r.Metrics != nil {
			b.WriteString(r.Metrics.String())
			if err := r.Metrics.WriteTimelineJSON(&b); err != nil {
				t.Fatal(err)
			}
		}
	}
	return b.String()
}

// TestDeterministicAcrossRuns checks two same-seed sequential runs render
// byte-identical output.
func TestDeterministicAcrossRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-experiment sweep")
	}
	a := renderSubset(t, Options{Parallel: 1})
	b := renderSubset(t, Options{Parallel: 1})
	if a != b {
		t.Errorf("same-seed sequential runs differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
}

// TestParallelMatchesSequential checks the tentpole guarantee: scheduling
// trials on many workers renders byte-identical output to one worker.
func TestParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-experiment sweep")
	}
	seq := renderSubset(t, Options{Parallel: 1})
	par := renderSubset(t, Options{Parallel: 8})
	if seq != par {
		t.Errorf("parallel output differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}
}

func TestBaseSeed(t *testing.T) {
	cases := []struct {
		opts Options
		want uint64
	}{
		{Options{}, DefaultSeed},
		{Options{Seed: 7}, 7},
		{Options{Seed: 0, SeedSet: true}, 0},
		{Options{Seed: DefaultSeed}, DefaultSeed},
	}
	for _, c := range cases {
		if got := c.opts.BaseSeed(); got != c.want {
			t.Errorf("BaseSeed(%+v) = %d, want %d", c.opts, got, c.want)
		}
	}
}

// TestSeedZeroReachable checks an explicit seed 0 is honored rather than
// silently aliased to the default.
func TestSeedZeroReachable(t *testing.T) {
	zero, err := Run("9", Options{Seed: 0, SeedSet: true})
	if err != nil {
		t.Fatal(err)
	}
	def, err := Run("9", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if zero.String() == def.String() {
		t.Error("seed 0 produced the default-seed output: explicit zero is still aliased")
	}
}

func TestSubSeedSeparation(t *testing.T) {
	if subSeed(1, "ab", "c") == subSeed(1, "a", "bc") {
		t.Error("label concatenations collide")
	}
	if subSeed(1, "x") == subSeed(2, "x") {
		t.Error("base seed ignored")
	}
	if subSeed(1, "x") != subSeed(1, "x") {
		t.Error("subSeed not deterministic")
	}
}

// TestPanickingTrialSurfacesError runs a synthetic experiment pair through
// the shared scheduler: the broken experiment must surface as an error that
// names the failing trial, its sibling trials must still run, and the
// healthy experiment must still produce its result.
func TestPanickingTrialSurfacesError(t *testing.T) {
	var siblings atomic.Int32
	mk := func(id string, boom bool) *Experiment {
		return &Experiment{
			ID:    id,
			Title: "synthetic " + id,
			Trials: func(Options) []Trial {
				var ts []Trial
				for i := 0; i < 3; i++ {
					i := i
					ts = append(ts, Trial{
						Key: fmt.Sprintf("t%d", i),
						Run: func(seed uint64) any {
							if boom && i == 1 {
								panic("synthetic failure")
							}
							siblings.Add(1)
							return seed
						},
					})
				}
				return ts
			},
			Assemble: func(_ Options, parts []any) *Result {
				return &Result{ID: id, Title: "synthetic " + id}
			},
		}
	}
	results, err := runExperiments(Options{Parallel: 2}, []*Experiment{mk("broken", true), mk("healthy", false)})
	if err == nil {
		t.Fatal("panicking trial produced no error")
	}
	if !strings.Contains(err.Error(), "broken") || !strings.Contains(err.Error(), "t1") || !strings.Contains(err.Error(), "synthetic failure") {
		t.Errorf("error does not identify the failing trial: %v", err)
	}
	var pe *exec.PanicError
	if !errors.As(err, &pe) {
		t.Errorf("error chain lacks *exec.PanicError: %v", err)
	}
	if got := siblings.Load(); got != 5 {
		t.Errorf("%d non-panicking trials ran, want 5 (siblings must survive)", got)
	}
	if len(results) != 1 || results[0].ID != "healthy" {
		t.Errorf("healthy experiment lost: results = %+v", results)
	}
}

// TestTrialKeysValidated checks malformed declarations are rejected up
// front rather than silently misassembled.
func TestTrialKeysValidated(t *testing.T) {
	if err := checkTrialKeys("x", nil); err == nil {
		t.Error("empty trial list accepted")
	}
	if err := checkTrialKeys("x", []Trial{{Key: ""}}); err == nil {
		t.Error("empty key accepted")
	}
	if err := checkTrialKeys("x", []Trial{{Key: "a"}, {Key: "a"}}); err == nil {
		t.Error("duplicate key accepted")
	}
	if err := checkTrialKeys("x", []Trial{{Key: "a"}, {Key: "b"}}); err != nil {
		t.Errorf("valid keys rejected: %v", err)
	}
}

// TestProgressReportsEveryTrial checks the Progress callback sees each
// trial exactly once with a complete done count.
func TestProgressReportsEveryTrial(t *testing.T) {
	seen := map[string]bool{}
	var last, total int
	_, err := Run("10a", Options{Progress: func(done, n int, trial string, err error) {
		seen[trial] = true
		last, total = done, n
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) == 0 || last != total || len(seen) != total {
		t.Errorf("progress saw %d trials, last done %d/%d", len(seen), last, total)
	}
	trials := make([]string, 0, len(seen))
	for trial := range seen {
		trials = append(trials, trial)
	}
	sort.Strings(trials)
	for _, trial := range trials {
		if !strings.HasPrefix(trial, "10a/") {
			t.Errorf("trial name %q lacks experiment prefix", trial)
		}
	}
}
