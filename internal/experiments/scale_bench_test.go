package experiments

import (
	"testing"
	"time"
)

// The scale benchmark family measures the generated metro scenario under
// the three execution modes `make bench-scale` compares. The shape is a
// mid-size metro — 12 sites, 1,200 UEs, a flash crowd — so one iteration
// covers the whole arrival ramp: batched cohort attaches, capacity
// admission with spill, and the per-site frame loops. The workload is
// identical across modes (TestScaleIdentityAcrossModes proves the outputs
// are too), so the ns/op ratio isolates the partitioned engine's
// overhead/speedup at metro scale.
func benchScale(b *testing.B, workers int) {
	cfg := ScaleConfig{
		Sites: 12, ENBsPerSite: 1, UEs: 1200, SiteCapacity: 110,
		Ramp: 6 * time.Second, Hold: 2 * time.Second,
		CohortWindow: 250 * time.Millisecond,
		FramePeriod:  time.Second, FrameService: 5 * time.Millisecond,
		Arrival: "flash", FlashSite: 4, FlashFraction: 0.2,
		Workers: workers,
	}
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		r := runScale(2016, cfg)
		sink += r.framesDone
	}
	if sink == 0 {
		b.Fatal("scenario produced no frame traffic")
	}
}

func BenchmarkScaleMetroSequential(b *testing.B) { benchScale(b, 0) }
func BenchmarkScaleMetroWindowed(b *testing.B)   { benchScale(b, 1) }
func BenchmarkScaleMetroGang(b *testing.B)       { benchScale(b, 12) }
