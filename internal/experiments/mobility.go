package experiments

import (
	"fmt"
	"time"

	"acacia/internal/core"
	"acacia/internal/epc"
	"acacia/internal/geo"
	"acacia/internal/stats"
)

func init() {
	register(mobilityContinuity())
}

// mobilityContinuity walks a user across a cell boundary mid-AR-session:
// the S1 handover re-anchors the radio path, the MRS relocates the MEC
// binding to the site local to the new cell, and the AR session's state
// (localization track + feature-DB slice) migrates site-to-site over the
// fabric. One trial per database size — the feature count is the state-size
// knob — so the table shows the continuity gap growing with the migrated
// state, the EdgeWarp/EDGECAT trade-off.
func mobilityContinuity() Experiment {
	return Experiment{
		ID:    "mobility-continuity",
		Title: "Cross-site handover: session continuity vs migrated state size",
		Trials: func(opts Options) []Trial {
			features := []int{50, 200, 400}
			if opts.Full {
				features = []int{50, 100, 200, 400, 800}
			}
			trials := make([]Trial, 0, len(features))
			for _, f := range features {
				f := f
				trials = append(trials, Trial{
					Key: fmt.Sprintf("features=%d", f),
					Run: func(seed uint64) any { return runMobilityTrial(seed, f, opts.IntraParallel) },
				})
			}
			return trials
		},
		Assemble: func(_ Options, parts []any) *Result {
			tbl := stats.NewTable("Mid-session walk across a cell boundary (two sites, two cells)",
				"DB features/obj", "state (KB)", "handovers", "relocations", "migrations",
				"transfer (ms)", "continuity gap (ms)", "frames lost", "final site", "status")
			for _, p := range parts {
				tbl.AddRow(p.([]any)...)
			}
			return &Result{ID: "mobility-continuity", Title: Title("mobility-continuity"), Tables: []*stats.Table{tbl},
				Notes: []string{
					"the walk crosses the midline once at 1.4 m/s; the handover completion drives the MRS relocation and the freeze/copy/resume transfer",
					"state = session context + localization track + the feature-DB slice near the user's estimate; the gap grows with it (stop-and-wait chunk train)",
					"frames lost counts front-end frame timeouts over the whole walk — the interruption window plus the migration pause",
				}}
		},
	}
}

// runMobilityTrial walks one user west-to-east across the midline between
// cell "enb" (edge-1) and cell "enb-east" (edge-2) and measures the
// continuity of its AR session across the resulting relocation.
func runMobilityTrial(seed uint64, features, intraParallel int) Metered {
	tb := core.NewTestbed(core.TestbedConfig{
		Seed:          seed,
		IdleTimeout:   time.Hour,
		DBFeatures:    features,
		IntraParallel: intraParallel,
	})
	site2 := tb.AddEdgeSite("edge-2")
	east := tb.AddCellENB("enb-east")
	tb.BindSiteToENB(site2.Name, "enb-east")

	b := tb.UEs[0]
	start := geo.Point{X: 15, Y: 15}
	row := func(vals ...any) Metered {
		return Metered{Part: append([]any{features}, vals...), Snap: tb.MetricsSnapshot()}
	}
	tb.MoveUE(b, start)
	if err := tb.Attach(b); err != nil {
		return row("-", "-", "-", "-", "-", "-", "-", "-", "ATTACH FAILED")
	}
	if err := tb.StartRetailApp(b, "electronics"); err != nil {
		return row("-", "-", "-", "-", "-", "-", "-", "-", "REGISTER FAILED")
	}
	tb.Run(5 * time.Second) // discovery, MRS round trip, localization warm-up

	var respTimes []time.Duration
	b.Frontend.OnResponse = func(core.ARFrameResult) {
		respTimes = append(respTimes, time.Duration(tb.Eng.Now()))
	}
	lostBefore := b.Frontend.Timeouts
	walk := geo.Walker{
		Path:  geo.Path{Waypoints: []geo.Point{start, {X: 27, Y: 15}}},
		Speed: 1.4,
	}
	walkStart := time.Duration(tb.Eng.Now())
	crossings := tb.StartWalk(b, walk, geo.MidlineCell(21),
		[]*epc.ENB{tb.ENB, east}, 100*time.Millisecond, nil)
	tb.Run(walk.Duration() + 8*time.Second)

	stateKB := float64(b.Frontend.MigratedBytes) / 1024
	lost := b.Frontend.Timeouts - lostBefore
	finalSite := "-"
	if s := tb.MRS.Binding(b.UE.Addr()); s != nil {
		finalSite = s.Name
	}
	status := "ok"
	if b.Frontend.Migrations == 0 || finalSite != site2.Name {
		status = "NOT MIGRATED"
	}

	// Continuity gap: the longest silence in the response stream around the
	// boundary crossing (radio interruption + relocation + state transfer).
	gapMS := "-"
	if len(crossings) == 1 {
		crossAt := walkStart + crossings[0].At
		var lastBefore, firstAfter time.Duration
		for _, at := range respTimes {
			if at <= crossAt {
				lastBefore = at
			} else if firstAfter == 0 {
				firstAfter = at
			}
		}
		if lastBefore > 0 && firstAfter > 0 {
			gapMS = fmt.Sprintf("%.1f", float64(firstAfter-lastBefore)/float64(time.Millisecond))
		}
	}
	return row(fmt.Sprintf("%.1f", stateKB), tb.EPC.MME.Handovers, tb.MRS.Relocations,
		b.Frontend.Migrations, fmt.Sprintf("%.1f", b.Frontend.MigrateTransferMS),
		gapMS, lost, finalSite, status)
}
