package experiments

import (
	"strings"
	"testing"
)

// TestScaleIdentityAcrossModes is the §3g identity contract for the
// generated metro: the same seed and shape must replay byte-identically
// whether the run uses one global event queue, per-site partitions in
// serial windows, or windows on a worker gang.
func TestScaleIdentityAcrossModes(t *testing.T) {
	cfg := DefaultScaleConfig(false)
	run := func(workers int) *scaleRun {
		c := cfg
		c.Workers = workers
		return runScale(777, c)
	}
	seq := run(0)
	if seq.attached == 0 || seq.framesDone == 0 {
		t.Fatalf("sequential run idle: attached=%d framesDone=%d", seq.attached, seq.framesDone)
	}
	// The quick shape under-provisions capacity (4 x 26 < 120), so the
	// admission path must reject and the backoff must retry.
	if seq.rejections == 0 || seq.retries == 0 {
		t.Errorf("admission not exercised: rejections=%d retries=%d", seq.rejections, seq.retries)
	}
	if want := uint64(cfg.Sites * cfg.SiteCapacity); seq.bound != want {
		t.Errorf("bound = %d, want %d (every capacity unit in use)", seq.bound, want)
	}
	for s, st := range seq.sites {
		if st.Bound > cfg.SiteCapacity {
			t.Errorf("site-%d bound %d exceeds capacity %d", s+1, st.Bound, cfg.SiteCapacity)
		}
	}
	for _, workers := range []int{1, cfg.Sites} {
		got := run(workers)
		if !got.equal(seq) {
			t.Errorf("workers=%d diverged from sequential:\nseq  = %+v\ngot  = %+v", workers, summary(seq), summary(got))
		}
	}
}

func summary(r *scaleRun) map[string]uint64 {
	return map[string]uint64{
		"attached": r.attached, "bound": r.bound,
		"rejections": r.rejections, "retries": r.retries,
		"framesSent": r.framesSent, "framesDone": r.framesDone,
		"checksum": r.checksum, "metricsHash": r.metricsHash,
	}
}

// TestScaleFlashCrowdSpills checks the placement story: the flash crowd
// overloads its home site, which fills to capacity, and the UCMEC-style
// spill pushes the overflow onto other sites.
func TestScaleFlashCrowdSpills(t *testing.T) {
	cfg := DefaultScaleConfig(false)
	r := runScale(42, cfg)
	if got := r.sites[cfg.FlashSite].Bound; got != cfg.SiteCapacity {
		t.Errorf("flash site bound = %d, want full (%d)", got, cfg.SiteCapacity)
	}
	var served uint64
	for _, st := range r.sites {
		served += st.Served
	}
	if served == 0 || served < r.framesDone {
		t.Errorf("served = %d, framesDone = %d", served, r.framesDone)
	}
}

// TestScaleUniformArrivalNoRejections: with unbounded capacity every UE
// binds to its eNB-local site and admission never rejects.
func TestScaleUniformArrivalNoRejections(t *testing.T) {
	cfg := DefaultScaleConfig(false)
	cfg.Arrival = "uniform"
	cfg.SiteCapacity = 0 // unbounded
	r := runScale(7, cfg)
	if r.rejections != 0 || r.retries != 0 {
		t.Errorf("unbounded capacity rejected: rejections=%d retries=%d", r.rejections, r.retries)
	}
	if r.bound != uint64(cfg.UEs) {
		t.Errorf("bound = %d, want every UE (%d)", r.bound, cfg.UEs)
	}
	for s, st := range r.sites {
		if st.Bound == 0 {
			t.Errorf("site-%d has no bindings under uniform arrivals", s+1)
		}
	}
}

// TestScaleExperimentQuick runs the registered experiment end to end and
// checks the assembled curve and identity verdicts.
func TestScaleExperimentQuick(t *testing.T) {
	r, err := Run("scale", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tables) != 2 {
		t.Fatalf("tables = %d, want curve + placement", len(r.Tables))
	}
	if len(r.Tables[0].Rows) == 0 {
		t.Fatal("empty UEs-vs-latency curve")
	}
	cfg := DefaultScaleConfig(false)
	if len(r.Tables[1].Rows) != cfg.Sites {
		t.Errorf("placement rows = %d, want %d sites", len(r.Tables[1].Rows), cfg.Sites)
	}
	s := r.String()
	if strings.Contains(s, "DIVERGED") {
		t.Errorf("identity verdicts report divergence:\n%s", s)
	}
	if !strings.Contains(s, "IDENTICAL") {
		t.Errorf("no identity verdicts in result:\n%s", s)
	}
}

// TestRunScaleScenarioStandalone exercises the acacia-sim -scale entry
// point with overridden knobs.
func TestRunScaleScenarioStandalone(t *testing.T) {
	cfg := DefaultScaleConfig(false)
	cfg.UEs = 60
	cfg.Sites = 3
	cfg.SiteCapacity = 25
	cfg.Arrival = "diurnal"
	cfg.Workers = 1
	r := RunScaleScenario(5, cfg)
	if r == nil || len(r.Tables) != 2 {
		t.Fatalf("standalone scenario result = %+v", r)
	}
	if len(r.Tables[1].Rows) != 3 {
		t.Errorf("placement rows = %d, want 3", len(r.Tables[1].Rows))
	}
}
