package experiments

import (
	"fmt"
	"time"

	"acacia/internal/compute"
	"acacia/internal/core"
	"acacia/internal/epc"
	"acacia/internal/media"
	"acacia/internal/netsim"
	"acacia/internal/stats"
	"acacia/internal/telemetry"
)

// ec2Regions is the paper's measurement order (closest first).
var ec2Regions = []string{"california", "oregon", "virginia"}

func init() {
	registerSolo("3a", "SURF detect+describe runtime vs resolution and device (Fig. 3(a))", fig3a)
	registerSolo("3b", "Object matching runtime vs resolution and device (Fig. 3(b))", fig3b)
	register(fig3c())
	register(fig3d())
	registerSolo("3e", "Camera preview FPS vs resolution (Fig. 3(e))", fig3e)
	registerSolo("3f", "Upload FPS vs uplink capacity and compression (Fig. 3(f))", fig3f)
	register(fig3g())
	registerSolo("3h", "Matching runtime vs database size (Fig. 3(h))", fig3h)
	registerSolo("overhead", "Bearer release/re-establish control overhead (§4)", overheadTable)
}

// matchMACs is the descriptor workload of matching a query frame against n
// database objects (forward + symmetric reverse scans).
func matchMACs(res compute.Resolution, objFeatures float64, n int) float64 {
	return res.Features() * objFeatures * 64 * 2 * float64(n)
}

func fig3a(opts Options, seed uint64) *Result {
	devices := []compute.Device{compute.OnePlusOne, compute.I7x1, compute.I7x8, compute.GPU}
	tbl := stats.NewTable("SURF runtime (sec) by resolution (avg features)", "resolution", "features", "One+", "i7(1)", "i7(8)", "GPU")
	for _, res := range compute.EvalResolutions {
		row := []any{res.String(), res.Features()}
		for _, d := range devices {
			row = append(row, d.SURFTime(res.Pixels()).Seconds())
		}
		tbl.AddRow(row...)
	}
	speed := stats.NewTable("Average speedup over the phone", "device", "speedup", "paper")
	for i, want := range []float64{36, 182, 1087} {
		d := devices[i+1]
		speed.AddRow(d.Name, compute.OnePlusOne.SURFTime(1e6).Seconds()/d.SURFTime(1e6).Seconds(), want)
	}
	return &Result{ID: "3a", Title: Title("3a"), Tables: []*stats.Table{tbl, speed},
		Notes: []string{"anchored at the paper's 2 s phone runtime for 320x240; speedups match by calibration"}}
}

func fig3b(opts Options, seed uint64) *Result {
	devices := []compute.Device{compute.OnePlusOne, compute.I7x1, compute.I7x8, compute.GPU}
	tbl := stats.NewTable("Brute-force match runtime vs one object (sec)", "resolution", "One+", "i7(1)", "i7(8)", "GPU")
	for _, res := range compute.EvalResolutions {
		row := []any{res.String()}
		for _, d := range devices {
			row = append(row, d.MatchTime(matchMACs(res, 1000, 1)).Seconds())
		}
		tbl.AddRow(row...)
	}
	speed := stats.NewTable("Average speedup over the phone", "device", "speedup", "paper")
	for i, want := range []float64{223, 852, 3284} {
		d := devices[i+1]
		speed.AddRow(d.Name, compute.OnePlusOne.MatchTime(1e9).Seconds()/d.MatchTime(1e9).Seconds(), want)
	}
	return &Result{ID: "3b", Title: Title("3b"), Tables: []*stats.Table{tbl, speed}}
}

// fig3c declares one trial per EC2 region: each builds its own testbed and
// pings that region's host over the simulated LTE+WAN path.
func fig3c() Experiment {
	return Experiment{
		ID:    "3c",
		Title: "LTE RTT to EC2 regions (Fig. 3(c))",
		Trials: func(opts Options) []Trial {
			probes := 100
			if opts.Full {
				probes = 400
			}
			trials := make([]Trial, 0, len(ec2Regions))
			for _, region := range ec2Regions {
				region := region
				trials = append(trials, Trial{
					Key: "region=" + region,
					Run: func(seed uint64) any {
						tb := core.NewTestbed(core.TestbedConfig{
							Seed:        seed,
							IdleTimeout: time.Hour,
							RadioJitter: 3 * time.Millisecond, // commercial-network scheduling spread
						})
						b := tb.UEs[0]
						if err := tb.Attach(b); err != nil {
							panic(err)
						}
						host := tb.CloudHosts[region]
						pg := netsim.NewPinger(b.UE.Host, host.Node.Addr(), 64, uint16(7100))
						for i := 0; i < probes; i++ {
							pg.SendOne()
							tb.Run(50 * time.Millisecond)
						}
						tb.Run(time.Second)
						pg.Stop()
						return metered([]any{region,
							pg.RTTs.Percentile(10), pg.RTTs.Percentile(25), pg.RTTs.Median(),
							pg.RTTs.Percentile(75), pg.RTTs.Percentile(90), pg.RTTs.Percentile(95)}, tb.Eng)
					},
				})
			}
			return trials
		},
		Assemble: func(_ Options, parts []any) *Result {
			tbl := stats.NewTable("RTT (ms) from UE to EC2 regions over LTE",
				"region", "p10", "p25", "median", "p75", "p90", "p95")
			for _, p := range parts {
				tbl.AddRow(p.([]any)...)
			}
			return &Result{ID: "3c", Title: Title("3c"), Tables: []*stats.Table{tbl},
				Notes: []string{"paper: California shortest at ≈70 ms median; ordering CA < OR < VA reproduced"}}
		},
	}
}

// fig3d declares one trial per (signal quality, region) cell: each builds a
// testbed with that uplink capacity and runs a greedy flow to the region.
func fig3d() Experiment {
	type signal struct {
		name string
		bps  float64
	}
	signals := []signal{{"excellent", 12e6}, {"fair", 5.5e6}}
	return Experiment{
		ID:    "3d",
		Title: "LTE uplink bandwidth by signal quality (Fig. 3(d))",
		Trials: func(opts Options) []Trial {
			dur := 8 * time.Second
			if opts.Full {
				dur = 20 * time.Second
			}
			var trials []Trial
			for _, sig := range signals {
				for _, region := range ec2Regions {
					sig, region := sig, region
					trials = append(trials, Trial{
						Key: fmt.Sprintf("signal=%s/region=%s", sig.name, region),
						Run: func(seed uint64) any {
							tb := core.NewTestbed(core.TestbedConfig{
								Seed:        seed,
								IdleTimeout: time.Hour,
								RadioULBps:  sig.bps,
							})
							b := tb.UEs[0]
							if err := tb.Attach(b); err != nil {
								panic(err)
							}
							host := tb.CloudHosts[region]
							sink := netsim.NewGreedyReceiver(host, 7200)
							g := netsim.NewGreedyFlow(b.UE.Host, host.Node.Addr(), 7200, 47000, 1400)
							g.Start()
							tb.Run(dur)
							g.Stop()
							tb.Run(500 * time.Millisecond)
							return metered(sink.ThroughputBps()/1e6, tb.Eng)
						},
					})
				}
			}
			return trials
		},
		Assemble: func(_ Options, parts []any) *Result {
			tbl := stats.NewTable("Uplink bandwidth (Mbps) to EC2 regions by signal quality",
				"region", "excellent (4/4 bars)", "fair (2/4 bars)")
			// parts is signals-major: excellent regions first, then fair.
			for ri, region := range ec2Regions {
				tbl.AddRow(region, parts[ri].(float64), parts[len(ec2Regions)+ri].(float64))
			}
			return &Result{ID: "3d", Title: Title("3d"), Tables: []*stats.Table{tbl},
				Notes: []string{"paper: ≈12 Mbps best case to California, lower on weak signal"}}
		},
	}
}

func fig3e(opts Options, seed uint64) *Result {
	tbl := stats.NewTable("Camera preview FPS by resolution (One+ One)", "resolution", "fps")
	for _, res := range []compute.Resolution{
		{W: 320, H: 240}, {W: 640, H: 480}, {W: 720, H: 480},
		{W: 1280, H: 720}, {W: 1280, H: 960}, {W: 1440, H: 1080}, {W: 1920, H: 1080},
	} {
		tbl.AddRow(res.String(), media.PreviewFPS(res))
	}
	return &Result{ID: "3e", Title: Title("3e"), Tables: []*stats.Table{tbl}}
}

func fig3f(opts Options, seed uint64) *Result {
	hd := compute.Resolution{W: 1920, H: 1080}
	tbl := stats.NewTable("Achievable upload FPS at HD grayscale by encoding",
		"encoding", "5.5 Mbps", "10 Mbps", "12 Mbps")
	for _, enc := range media.Fig3fEncodings() {
		tbl.AddRow(enc.Name,
			enc.UploadFPS(hd, 5.5e6), enc.UploadFPS(hd, 10e6), enc.UploadFPS(hd, 12e6))
	}
	return &Result{ID: "3f", Title: Title("3f"), Tables: []*stats.Table{tbl},
		Notes: []string{"paper: raw grayscale cannot reach 1 FPS even at 12 Mbps; JPEG 90 reaches ≈8 FPS"}}
}

// fig3g declares one trial per (base RTT, background load) grid cell; each
// runs an AR-like flow plus background CBR through its own shared core.
func fig3g() Experiment {
	rttConfigs := []struct {
		label     string
		coreDelay time.Duration
	}{
		{"8 ms", 0},
		{"18 ms", 5 * time.Millisecond},
		{"70 ms", 31 * time.Millisecond},
	}
	return Experiment{
		ID:    "3g",
		Title: "Network latency vs competing background traffic (Fig. 3(g))",
		Trials: func(opts Options) []Trial {
			loads := fig3gLoads(opts)
			var trials []Trial
			for _, rc := range rttConfigs {
				for _, load := range loads {
					rc, load := rc, load
					trials = append(trials, Trial{
						Key: fmt.Sprintf("rtt=%s/bg=%gMbps", rc.label, load/1e6),
						Run: func(seed uint64) any {
							return measureSharedCoreLatency(opts, seed, rc.coreDelay, load)
						},
					})
				}
			}
			return trials
		},
		Assemble: func(opts Options, parts []any) *Result {
			loads := fig3gLoads(opts)
			tbl := stats.NewTable("Network latency (ms) vs background traffic through one S/P-GW",
				"bg (Mbps)", "RTT 8 ms", "RTT 18 ms", "RTT 70 ms")
			// parts is rttConfigs-major; transpose into one row per load.
			for li, load := range loads {
				row := []any{load / 1e6}
				for ci := range rttConfigs {
					row = append(row, parts[ci*len(loads)+li].(float64))
				}
				tbl.AddRow(row...)
			}
			return &Result{ID: "3g", Title: Title("3g"), Tables: []*stats.Table{tbl},
				Notes: []string{
					"AR flow (≈12 Mbps) shares the 100 Mbps core with the background; saturation near 90 Mbps blows latency up to seconds",
					"paper: ≈800 ms at 90 Mbps background; location of the server dominates below saturation",
				}}
		},
	}
}

func fig3gLoads(opts Options) []float64 {
	if opts.Full {
		return []float64{0, 10e6, 20e6, 30e6, 40e6, 50e6, 60e6, 70e6, 80e6, 90e6, 100e6}
	}
	return []float64{0, 20e6, 40e6, 60e6, 80e6, 90e6, 100e6}
}

// measureSharedCoreLatency runs an AR-like 5 Mbps flow plus background CBR
// through the shared core and reports the mean probe RTT over the final
// portion of the run.
func measureSharedCoreLatency(opts Options, seed uint64, coreDelay time.Duration, bgBps float64) float64 {
	tb := core.NewTestbed(core.TestbedConfig{
		Seed:        seed,
		IdleTimeout: time.Hour,
		RadioDelay:  time.Millisecond,
		RadioJitter: 1, // effectively zero but non-default
		CoreDelay:   time.Millisecond + coreDelay,
	})
	b := tb.UEs[0]
	if err := tb.Attach(b); err != nil {
		panic(err)
	}
	dst := tb.CentralMEC.Node.Addr()
	// AR-like stream on the default bearer (≈12 Mbps of frames, the
	// paper's HD upload regime): with 90 Mbps of background the shared
	// 100 Mbps core saturates.
	ar := netsim.NewCBRSource(b.UE.Host, dst, 7300, 1250)
	ar.Start(12e6)
	bg := netsim.NewCBRSource(tb.BGSource, tb.BGSink.Node.Addr(), 9000, 1250)
	bg.Start(bgBps)

	dur := 12 * time.Second
	if opts.Full {
		dur = 25 * time.Second
	}
	pg := netsim.NewPinger(b.UE.Host, dst, 200, 7301)
	// Warm up, then probe during the final two-thirds.
	tb.Run(dur / 3)
	pg.Start(200 * time.Millisecond)
	tb.Run(dur * 2 / 3)
	pg.Stop()
	ar.Stop()
	bg.Stop()
	tb.Run(3 * time.Second)
	if pg.RTTs.N() == 0 {
		return -1
	}
	// The latest quartile reflects the (quasi) steady state of the queue.
	return pg.RTTs.Percentile(75)
}

func fig3h(opts Options, seed uint64) *Result {
	dbSizes := []int{1, 5, 10, 25, 50}
	tbl := stats.NewTable("Match runtime (sec) vs database size on i7 (8 cores)",
		"resolution", "1 obj", "5", "10", "25", "50")
	for _, res := range compute.EvalResolutions {
		row := []any{res.String()}
		for _, n := range dbSizes {
			row = append(row, compute.I7x8.MatchTime(matchMACs(res, 1000, n)).Seconds())
		}
		tbl.AddRow(row...)
	}
	return &Result{ID: "3h", Title: Title("3h"), Tables: []*stats.Table{tbl},
		Notes: []string{"runtime grows linearly with database size: the pruning motivation"}}
}

// overheadTable reproduces the §4 control-overhead analysis from a measured
// release/re-establish cycle. The table rows are read from the telemetry
// registry's delta snapshot over the cycle, which also becomes the result's
// Metrics (so `acacia-sim -fig overhead -metrics` prints the same totals).
func overheadTable(opts Options, seed uint64) *Result {
	msgs, bytes, delta := measureCycle(opts, seed)
	tbl := stats.NewTable("Control messages per bearer release + re-establish cycle",
		"protocol", "messages", "bytes", "paper msgs", "paper bytes")
	tbl.AddRow("SCTP/S1AP", msgs[epc.ProtoS1AP], bytes[epc.ProtoS1AP], 7, 1138)
	tbl.AddRow("GTPv2", msgs[epc.ProtoGTPv2], bytes[epc.ProtoGTPv2], 4, 352)
	tbl.AddRow("OpenFlow", msgs[epc.ProtoOpenFlow], bytes[epc.ProtoOpenFlow], 4, 1424)
	total := msgs[epc.ProtoS1AP] + msgs[epc.ProtoGTPv2] + msgs[epc.ProtoOpenFlow]
	totalBytes := bytes[epc.ProtoS1AP] + bytes[epc.ProtoGTPv2] + bytes[epc.ProtoOpenFlow]
	tbl.AddRow("total", total, totalBytes, 15, 2914)

	daily := stats.NewTable("Projected control traffic per device per day",
		"scenario", "cycles/day", "MB/day", "paper MB/day")
	perCycle := float64(totalBytes)
	daily.AddRow("app-driven bearer creation", 929, perCycle*929/1e6, 2.58)
	daily.AddRow("every radio promotion (upper bound)", 7200, perCycle*7200/1e6, 20.0)
	return &Result{ID: "overhead", Title: Title("overhead"), Tables: []*stats.Table{tbl, daily},
		Metrics: delta,
		Notes: []string{
			"message counts match the paper exactly (7 S1AP, 4 GTPv2, 4 OpenFlow)",
			"byte totals are smaller: these encodings omit ASN.1 PER padding, optional IEs and SCTP SACKs present in the testbed capture",
		}}
}

// measureCycle builds a testbed, runs one idle/promotion cycle and returns
// per-protocol message/byte counts (OpenFlow folded in from the SDN
// controller) plus the telemetry-registry delta over the cycle the counts
// were read from.
func measureCycle(opts Options, seed uint64) (msgs, bytes map[epc.Protocol]uint64, delta *telemetry.Snapshot) {
	tb := core.NewTestbed(core.TestbedConfig{
		Seed:        seed,
		IdleTimeout: 3 * time.Second,
	})
	b := tb.UEs[0]
	tb.MoveUE(b, retailSpot)
	if err := tb.Attach(b); err != nil {
		panic(err)
	}
	if err := tb.StartRetailApp(b, "electronics"); err != nil {
		panic(err)
	}
	tb.Run(2500 * time.Millisecond)
	// Quiesce the UE so the session can idle out while keeping both
	// bearers: stop the frame pipeline and walk out of LTE-direct range so
	// discovery stops producing localization reports.
	b.Frontend.Stop()
	b.D2D.SetPos(geoPoint(5000, 5000))
	tb.Run(100 * time.Millisecond)

	regBefore := tb.Eng.Metrics().Snapshot()
	tb.Run(8 * time.Second) // idle release fires
	// Uplink data promotes the session.
	pg := netsim.NewPinger(b.UE.Host, tb.CloudHosts["california"].Node.Addr(), 64, 7400)
	pg.SendOne()
	tb.Run(3 * time.Second)

	// The per-protocol counts come from the unified registry delta over the
	// cycle: the epc layer mirrors its accounting into epc/<proto>/msgs|bytes
	// and the SDN controller registers sdn/controller/sent|sent-bytes.
	delta = tb.Eng.Metrics().Snapshot().Delta(regBefore)
	msgs = map[epc.Protocol]uint64{
		epc.ProtoS1AP:     delta.CounterValue("epc/s1ap/msgs"),
		epc.ProtoGTPv2:    delta.CounterValue("epc/gtpv2/msgs"),
		epc.ProtoOpenFlow: delta.CounterValue("sdn/controller/sent"),
	}
	bytes = map[epc.Protocol]uint64{
		epc.ProtoS1AP:     delta.CounterValue("epc/s1ap/bytes"),
		epc.ProtoGTPv2:    delta.CounterValue("epc/gtpv2/bytes"),
		epc.ProtoOpenFlow: delta.CounterValue("sdn/controller/sent-bytes"),
	}
	return msgs, bytes, delta
}

// retailSpot is the default user position (electronics section).
var retailSpot = geoPoint(21, 15)
