package experiments

import (
	"fmt"
	"time"

	"acacia/internal/compute"
	"acacia/internal/core"
	"acacia/internal/d2d"
	"acacia/internal/epc"
	"acacia/internal/geo"
	"acacia/internal/localization"
	"acacia/internal/netsim"
	"acacia/internal/pkt"
	"acacia/internal/sdn"
	"acacia/internal/sim"
	"acacia/internal/stats"
	"acacia/internal/trace"
	"acacia/internal/vision"
)

func init() {
	register("ablation-fastpath", "Ablation: fast-path cost sweep on GW-U throughput", ablationFastPath)
	register("ablation-bearer", "Ablation: on-demand vs always-on dedicated bearer overhead", ablationBearer)
	register("ablation-stages", "Ablation: matching pipeline stages vs accuracy and work", ablationStages)
	register("ablation-radius", "Ablation: pruning granularity vs search cost and coverage", ablationRadius)
	register("ablation-solver", "Ablation: trilateration solver choice", ablationSolver)
}

func newEngine(opts Options) *sim.Engine { return sim.NewEngine(opts.seed()) }

// ablationFastPath sweeps per-packet costs to show where the data plane
// stops being link-limited.
func ablationFastPath(opts Options) *Result {
	dur := 3 * time.Second
	if opts.Full {
		dur = 8 * time.Second
	}
	tbl := stats.NewTable("GW-U goodput vs per-packet fast-path cost (1 Gbps line)",
		"cost (µs/pkt)", "goodput (Mbps)")
	for _, cost := range []time.Duration{0, 1200 * time.Nanosecond, 5 * time.Microsecond,
		11200 * time.Nanosecond, 20 * time.Microsecond, 35 * time.Microsecond} {
		costs := sdn.PathCosts{FastPath: cost, SlowPath: 35 * time.Microsecond, FastPathEnabled: true}
		series := measureGWThroughput(opts, costs, dur)
		var sum float64
		for _, x := range series {
			sum += x
		}
		tbl.AddRow(float64(cost)/float64(time.Microsecond), sum/float64(len(series)))
	}
	return &Result{ID: "ablation-fastpath", Title: Title("ablation-fastpath"), Tables: []*stats.Table{tbl},
		Notes: []string{"1400-byte packets serialize in 11.2 µs at 1 Gbps: per-packet costs beyond that make the CPU the bottleneck"}}
}

// ablationBearer compares bearer-management strategies by daily control
// traffic, using the measured per-cycle bytes.
func ablationBearer(opts Options) *Result {
	msgs, bytes := measureCycle(opts)
	var totalBytes uint64
	var totalMsgs uint64
	for _, b := range bytes {
		totalBytes += b
	}
	for _, m := range msgs {
		totalMsgs += m
	}
	tbl := stats.NewTable("Daily control overhead by bearer strategy (measured cycle)",
		"strategy", "cycles/day", "messages/day", "MB/day")
	rows := []struct {
		name   string
		cycles float64
	}{
		{"ACACIA on-demand (per store visit)", 5},
		{"re-create on app-driven bearer events", 929},
		{"re-create on every radio promotion", 7200},
	}
	for _, r := range rows {
		tbl.AddRow(r.name, r.cycles, float64(totalMsgs)*r.cycles, float64(totalBytes)*r.cycles/1e6)
	}
	return &Result{ID: "ablation-bearer", Title: Title("ablation-bearer"), Tables: []*stats.Table{tbl},
		Notes: []string{"context-triggered on-demand bearers cut dedicated-bearer signaling by orders of magnitude"}}
}

// ablationStages runs the real vision pipeline with stages toggled.
func ablationStages(opts Options) *Result {
	rng := sim.NewRNG(opts.seed())
	floor := geo.RetailFloor()
	db := vision.BuildRetailDB(floor, 64)
	frames := 20
	if opts.Full {
		frames = 60
	}
	stageSets := []struct {
		name   string
		stages vision.Stage
	}{
		{"ratio only", vision.StageRatio},
		{"ratio+symmetry", vision.StageRatio | vision.StageSymmetry},
		{"full (ratio+symmetry+RANSAC)", vision.StageAll},
	}
	tbl := stats.NewTable("Matching pipeline stages on real synthetic frames",
		"stages", "true positives", "false matches", "mean MACs/frame")
	for _, sc := range stageSets {
		m := vision.NewMatcher(vision.MatcherConfig{Stages: sc.stages}, rng.Fork(sc.name))
		tp, fp := 0, 0
		var macs stats.Sample
		for i := 0; i < frames; i++ {
			target := db.Objects[(i*11)%db.Len()]
			frame := vision.GenerateFrame(target.Features, vision.DefaultFrameParams(96), rng.Fork(fmt.Sprint(sc.name, i)))
			res := db.Search(frame, []int{target.Subsection}, m)
			macs.Add(res.MACs)
			switch {
			case res.Best == target:
				tp++
			case res.Best != nil:
				fp++
			}
		}
		tbl.AddRow(sc.name, tp, fp, macs.Mean())
	}
	return &Result{ID: "ablation-stages", Title: Title("ablation-stages"), Tables: []*stats.Table{tbl},
		Notes: []string{"the paper's back-end keeps all stages: they raise accuracy at extra runtime (§6.3)"}}
}

// ablationRadius sweeps ACACIA's pruning radius.
func ablationRadius(opts Options) *Result {
	floor := geo.RetailFloor()
	// Single-sample campaign: the full ~3 m localization error reaches the
	// pruning decision, so small radii visibly lose coverage.
	readings := trace.Campaign(floor, opts.seed(), 1)
	grouped := trace.ByCheckpoint(readings)
	fit := core.CalibrateFromChannel(d2d.DefaultPathLoss, nil)

	tbl := stats.NewTable("Pruning radius vs search cost and coverage",
		"radius (m)", "mean candidates", "coverage (%)", "mean match ms (i7x8, 720x480)")
	res := compute.Resolution{W: 720, H: 480}
	for _, radius := range []float64{2, 4, 6, 9, 12, 21} {
		var cand stats.Sample
		covered := 0
		for _, cp := range floor.Checkpoints {
			var ms []localization.Measurement
			for _, r := range grouped[cp.Name] {
				lm := floor.Landmark(r.Landmark)
				ms = append(ms, localization.Measurement{Landmark: lm.Pos, Distance: fit.Distance(r.RxPower)})
			}
			est, err := localization.Trilaterate(ms)
			if err != nil {
				continue
			}
			est = floor.Bounds.Clamp(est)
			cells := floor.SubsectionsNear(est, radius)
			cand.Add(float64(len(cells) * 5))
			trueCell := floor.SubsectionAt(cp.Pos)
			for _, id := range cells {
				if trueCell != nil && id == trueCell.ID {
					covered++
					break
				}
			}
		}
		match := compute.I7x8.MatchTime(matchMACs(res, core.DBObjectFeatures, int(cand.Mean()))).Seconds() * 1000
		tbl.AddRow(radius, cand.Mean(), 100*float64(covered)/float64(len(floor.Checkpoints)), match)
	}
	return &Result{ID: "ablation-radius", Title: Title("ablation-radius"), Tables: []*stats.Table{tbl},
		Notes: []string{"small radii miss the true cell under ~3 m localization error; ACACIA's 7.5 m default keeps coverage high at a fraction of the full-search cost"}}
}

// ablationSolver compares the Gauss-Newton and linearized trilateration
// solvers on the same campaign data.
func ablationSolver(opts Options) *Result {
	floor := geo.RetailFloor()
	readings := trace.Campaign(floor, opts.seed(), 1)
	grouped := trace.ByCheckpoint(readings)
	fit := core.CalibrateFromChannel(d2d.DefaultPathLoss, nil)

	var gn, wgn, lin stats.Sample
	for _, cp := range floor.Checkpoints {
		var ms []localization.Measurement
		for _, r := range grouped[cp.Name] {
			lm := floor.Landmark(r.Landmark)
			ms = append(ms, localization.Measurement{Landmark: lm.Pos, Distance: fit.Distance(r.RxPower)})
		}
		if g, err := localization.Trilaterate(ms); err == nil {
			gn.Add(floor.Bounds.Clamp(g).Dist(cp.Pos))
		}
		if w, err := localization.TrilaterateWeighted(ms); err == nil {
			wgn.Add(floor.Bounds.Clamp(w).Dist(cp.Pos))
		}
		if l, err := localization.TrilaterateLinear(ms); err == nil {
			lin.Add(floor.Bounds.Clamp(l).Dist(cp.Pos))
		}
	}
	tbl := stats.NewTable("Trilateration solver accuracy (m) over 24 checkpoints, 7 landmarks",
		"solver", "mean", "p95", "max")
	tbl.AddRow("Gauss-Newton (ACACIA)", gn.Mean(), gn.Percentile(95), gn.Max())
	tbl.AddRow("weighted Gauss-Newton (1/d)", wgn.Mean(), wgn.Percentile(95), wgn.Max())
	tbl.AddRow("linearized closed form", lin.Mean(), lin.Percentile(95), lin.Max())
	return &Result{ID: "ablation-solver", Title: Title("ablation-solver"), Tables: []*stats.Table{tbl},
		Notes: []string{"nonlinear least squares tolerates ranging noise better, at negligible cost for 7 landmarks"}}
}

func init() {
	register("ablation-qci", "Ablation: QCI priority under radio congestion", ablationQCI)
}

// ablationQCI loads the downlink radio past capacity with default-bearer
// (QCI 9) bulk traffic and probes the CI server over dedicated bearers of
// different QCIs: the priority radio scheduler lets QCI 5 probes overtake
// the bulk queue. (Fig. 10(a) measured an unloaded edge, where QCI makes
// no difference; this ablation shows where it does.)
func ablationQCI(opts Options) *Result {
	tbl := stats.NewTable("CI-server RTT (ms) by dedicated-bearer QCI under 45 Mbps DL bulk load (40 Mbps radio)",
		"QCI", "median", "p95")
	for _, qci := range []pkt.QCI{5, 7, 9} {
		med, p95 := measureQCIUnderLoad(opts, qci)
		tbl.AddRow(fmt.Sprintf("QCI %d", qci), med, p95)
	}
	return &Result{ID: "ablation-qci", Title: Title("ablation-qci"), Tables: []*stats.Table{tbl},
		Notes: []string{"the MEC bearer's high-priority QCI keeps CI latency flat when lower-priority traffic saturates the radio"}}
}

func measureQCIUnderLoad(opts Options, qci pkt.QCI) (median, p95 float64) {
	tb := core.NewTestbed(core.TestbedConfig{
		Seed:        opts.seed(),
		IdleTimeout: time.Hour,
		RadioJitter: 1,
	})
	b := tb.UEs[0]
	if err := tb.Attach(b); err != nil {
		panic(err)
	}
	// Dedicated bearer toward the CI server at the requested QCI.
	tb.EPC.PCRF.AddRule(epc.PolicyRule{ServiceID: "qci-probe", QCI: qci, ARP: 2, Precedence: 7})
	done := false
	tb.EPC.PCRF.RequestDedicatedBearer("qci-probe", b.UE.Addr(), tb.CIServer.Node.Addr(),
		"edge-sgw", "edge-pgw", func(_ uint8, err error) {
			if err != nil {
				panic(err)
			}
			done = true
		})
	tb.Run(2 * time.Second)
	if !done {
		panic("bearer setup timed out")
	}

	// Bulk downlink on the default bearer, overloading the 40 Mbps radio.
	bulk := netsim.NewCBRSource(tb.CloudHosts["california"], b.UE.Addr(), 9400, 1250)
	bulk.Start(45e6)
	pg := netsim.NewPinger(b.UE.Host, tb.CIServer.Node.Addr(), 200, 9401)
	tb.Run(2 * time.Second) // let the radio queue fill
	pg.Start(100 * time.Millisecond)
	dur := 8 * time.Second
	if opts.Full {
		dur = 20 * time.Second
	}
	tb.Run(dur)
	pg.Stop()
	bulk.Stop()
	tb.Run(2 * time.Second)
	return pg.RTTs.Median(), pg.RTTs.Percentile(95)
}

func init() {
	register("ablation-index", "Ablation: LSH prefilter vs brute-force and geo-pruned search", ablationIndex)
}

// ablationIndex runs the *real* vision pipeline (no latency model) over the
// retail database and compares search strategies by measured descriptor
// work and recall: brute force, geo-pruning (ACACIA's context), LSH
// prefiltering, and the two combined.
func ablationIndex(opts Options) *Result {
	rng := sim.NewRNG(opts.seed())
	floor := geo.RetailFloor()
	db := vision.BuildRetailDB(floor, 64)
	ix := vision.BuildIndex(db, vision.IndexConfig{}, rng.Fork("lsh"))
	m := vision.NewMatcher(vision.MatcherConfig{}, rng.Fork("matcher"))

	frames := 10
	if opts.Full {
		frames = 30
	}
	type strategy struct {
		name   string
		search func(q *vision.FeatureSet, target *vision.Object) vision.SearchResult
	}
	strategies := []strategy{
		{"brute force (Naive)", func(q *vision.FeatureSet, _ *vision.Object) vision.SearchResult {
			return db.Search(q, nil, m)
		}},
		{"geo-pruned (ACACIA)", func(q *vision.FeatureSet, target *vision.Object) vision.SearchResult {
			cells := floor.SubsectionsNear(db.Objects[indexOf(db, target)].Pos, core.PruneRadius)
			return db.Search(q, cells, m)
		}},
		{"LSH top-5", func(q *vision.FeatureSet, _ *vision.Object) vision.SearchResult {
			return db.SearchWithIndex(q, ix, 5, m)
		}},
		{"LSH top-1", func(q *vision.FeatureSet, _ *vision.Object) vision.SearchResult {
			return db.SearchWithIndex(q, ix, 1, m)
		}},
	}
	tbl := stats.NewTable("Search strategy vs work and recall (real matching pipeline)",
		"strategy", "recall (%)", "mean MACs/frame", "mean candidates")
	for _, st := range strategies {
		found := 0
		var macs, cands stats.Sample
		for i := 0; i < frames; i++ {
			target := db.Objects[(i*17)%db.Len()]
			q := vision.GenerateFrame(target.Features, vision.DefaultFrameParams(96), rng.Fork(fmt.Sprint(st.name, i)))
			res := st.search(q, target)
			macs.Add(res.MACs)
			cands.Add(float64(res.Candidates))
			if res.Best == target {
				found++
			}
		}
		tbl.AddRow(st.name, 100*float64(found)/float64(frames), macs.Mean(), cands.Mean())
	}
	return &Result{ID: "ablation-index", Title: Title("ablation-index"), Tables: []*stats.Table{tbl},
		Notes: []string{
			"geo-pruning uses user context (free at query time); LSH trades a small hashing cost for content-based pruning that works without location",
		}}
}

func indexOf(db *vision.DB, target *vision.Object) int {
	for i, o := range db.Objects {
		if o == target {
			return i
		}
	}
	return 0
}
