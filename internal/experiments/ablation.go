package experiments

import (
	"fmt"
	"time"

	"acacia/internal/compute"
	"acacia/internal/core"
	"acacia/internal/d2d"
	"acacia/internal/epc"
	"acacia/internal/geo"
	"acacia/internal/localization"
	"acacia/internal/netsim"
	"acacia/internal/pkt"
	"acacia/internal/sdn"
	"acacia/internal/sim"
	"acacia/internal/stats"
	"acacia/internal/trace"
	"acacia/internal/vision"
)

func init() {
	register(ablationFastPath())
	registerSolo("ablation-bearer", "Ablation: on-demand vs always-on dedicated bearer overhead", ablationBearer)
	register(ablationStages())
	register(ablationRadius())
	register(ablationSolver())
	register(ablationQCI())
	register(ablationIndex())
}

// ablationFastPath sweeps per-packet costs to show where the data plane
// stops being link-limited — one trial per cost point.
func ablationFastPath() Experiment {
	costList := []time.Duration{0, 1200 * time.Nanosecond, 5 * time.Microsecond,
		11200 * time.Nanosecond, 20 * time.Microsecond, 35 * time.Microsecond}
	return Experiment{
		ID:    "ablation-fastpath",
		Title: "Ablation: fast-path cost sweep on GW-U throughput",
		Trials: func(opts Options) []Trial {
			dur := 3 * time.Second
			if opts.Full {
				dur = 8 * time.Second
			}
			trials := make([]Trial, 0, len(costList))
			for _, cost := range costList {
				cost := cost
				trials = append(trials, Trial{
					Key: fmt.Sprintf("cost=%gus", float64(cost)/float64(time.Microsecond)),
					Run: func(seed uint64) any {
						costs := sdn.PathCosts{FastPath: cost, SlowPath: 35 * time.Microsecond, FastPathEnabled: true}
						series, snap := measureGWThroughput(seed, costs, dur)
						var sum float64
						for _, x := range series {
							sum += x
						}
						return Metered{Part: sum / float64(len(series)), Snap: snap}
					},
				})
			}
			return trials
		},
		Assemble: func(_ Options, parts []any) *Result {
			tbl := stats.NewTable("GW-U goodput vs per-packet fast-path cost (1 Gbps line)",
				"cost (µs/pkt)", "goodput (Mbps)")
			for i, cost := range costList {
				tbl.AddRow(float64(cost)/float64(time.Microsecond), parts[i].(float64))
			}
			return &Result{ID: "ablation-fastpath", Title: Title("ablation-fastpath"), Tables: []*stats.Table{tbl},
				Notes: []string{"1400-byte packets serialize in 11.2 µs at 1 Gbps: per-packet costs beyond that make the CPU the bottleneck"}}
		},
	}
}

// ablationBearer compares bearer-management strategies by daily control
// traffic, using the measured per-cycle bytes.
func ablationBearer(opts Options, seed uint64) *Result {
	msgs, bytes, _ := measureCycle(opts, seed)
	var totalBytes uint64
	var totalMsgs uint64
	for _, b := range bytes {
		totalBytes += b
	}
	for _, m := range msgs {
		totalMsgs += m
	}
	tbl := stats.NewTable("Daily control overhead by bearer strategy (measured cycle)",
		"strategy", "cycles/day", "messages/day", "MB/day")
	rows := []struct {
		name   string
		cycles float64
	}{
		{"ACACIA on-demand (per store visit)", 5},
		{"re-create on app-driven bearer events", 929},
		{"re-create on every radio promotion", 7200},
	}
	for _, r := range rows {
		tbl.AddRow(r.name, r.cycles, float64(totalMsgs)*r.cycles, float64(totalBytes)*r.cycles/1e6)
	}
	return &Result{ID: "ablation-bearer", Title: Title("ablation-bearer"), Tables: []*stats.Table{tbl},
		Notes: []string{"context-triggered on-demand bearers cut dedicated-bearer signaling by orders of magnitude"}}
}

// ablationStages runs the real vision pipeline with stages toggled — one
// trial per stage set. Every trial scores the identical frame stream (the
// frame seed depends only on the frame index), so the comparison is paired.
func ablationStages() Experiment {
	stageSets := []struct {
		name   string
		stages vision.Stage
	}{
		{"ratio only", vision.StageRatio},
		{"ratio+symmetry", vision.StageRatio | vision.StageSymmetry},
		{"full (ratio+symmetry+RANSAC)", vision.StageAll},
	}
	return Experiment{
		ID:    "ablation-stages",
		Title: "Ablation: matching pipeline stages vs accuracy and work",
		Trials: func(opts Options) []Trial {
			frames := 20
			if opts.Full {
				frames = 60
			}
			base := opts.BaseSeed()
			trials := make([]Trial, 0, len(stageSets))
			for _, sc := range stageSets {
				sc := sc
				trials = append(trials, Trial{
					Key: "stages=" + sc.name,
					Run: func(seed uint64) any {
						floor := geo.RetailFloor()
						db := vision.BuildRetailDB(floor, 64)
						m := vision.NewMatcher(vision.MatcherConfig{Stages: sc.stages}, sim.NewRNG(seed))
						tp, fp := 0, 0
						var macs stats.Sample
						for i := 0; i < frames; i++ {
							target := db.Objects[(i*11)%db.Len()]
							frameRNG := sim.NewRNG(subSeed(base, "ablation-stages", "frame", fmt.Sprint(i)))
							frame := vision.GenerateFrame(target.Features, vision.DefaultFrameParams(96), frameRNG)
							res := db.Search(frame, []int{target.Subsection}, m)
							macs.Add(res.MACs)
							switch {
							case res.Best == target:
								tp++
							case res.Best != nil:
								fp++
							}
						}
						return []any{sc.name, tp, fp, macs.Mean()}
					},
				})
			}
			return trials
		},
		Assemble: func(_ Options, parts []any) *Result {
			tbl := stats.NewTable("Matching pipeline stages on real synthetic frames",
				"stages", "true positives", "false matches", "mean MACs/frame")
			for _, p := range parts {
				tbl.AddRow(p.([]any)...)
			}
			return &Result{ID: "ablation-stages", Title: Title("ablation-stages"), Tables: []*stats.Table{tbl},
				Notes: []string{"the paper's back-end keeps all stages: they raise accuracy at extra runtime (§6.3)"}}
		},
	}
}

// ablationCampaignSeed is the shared single-sample campaign behind the
// radius and solver ablations: every trial rebuilds the identical readings,
// so the sweeps compare pruning/solving on the same measured data.
func ablationCampaignSeed(opts Options, exp string) uint64 {
	return subSeed(opts.BaseSeed(), exp, "campaign")
}

// checkpointMeasurements converts one checkpoint's campaign readings into
// ranging measurements.
func checkpointMeasurements(floor *geo.Floor, rs []trace.CheckpointReading, fit localization.PathLossFit) []localization.Measurement {
	var ms []localization.Measurement
	for _, r := range rs {
		lm := floor.Landmark(r.Landmark)
		ms = append(ms, localization.Measurement{Landmark: lm.Pos, Distance: fit.Distance(r.RxPower)})
	}
	return ms
}

// ablationRadius sweeps ACACIA's pruning radius — one trial per radius over
// the shared campaign.
func ablationRadius() Experiment {
	radii := []float64{2, 4, 6, 9, 12, 21}
	return Experiment{
		ID:    "ablation-radius",
		Title: "Ablation: pruning granularity vs search cost and coverage",
		Trials: func(opts Options) []Trial {
			// Single-sample campaign: the full ~3 m localization error reaches
			// the pruning decision, so small radii visibly lose coverage.
			campaign := ablationCampaignSeed(opts, "ablation-radius")
			res := compute.Resolution{W: 720, H: 480}
			trials := make([]Trial, 0, len(radii))
			for _, radius := range radii {
				radius := radius
				trials = append(trials, Trial{
					Key: fmt.Sprintf("radius=%gm", radius),
					Run: func(uint64) any {
						floor := geo.RetailFloor()
						grouped := trace.ByCheckpoint(trace.Campaign(floor, campaign, 1))
						fit := core.CalibrateFromChannel(d2d.DefaultPathLoss, nil)
						var cand stats.Sample
						covered := 0
						for _, cp := range floor.Checkpoints {
							ms := checkpointMeasurements(floor, grouped[cp.Name], fit)
							est, err := localization.Trilaterate(ms)
							if err != nil {
								continue
							}
							est = floor.Bounds.Clamp(est)
							cells := floor.SubsectionsNear(est, radius)
							cand.Add(float64(len(cells) * 5))
							trueCell := floor.SubsectionAt(cp.Pos)
							for _, id := range cells {
								if trueCell != nil && id == trueCell.ID {
									covered++
									break
								}
							}
						}
						match := compute.I7x8.MatchTime(matchMACs(res, core.DBObjectFeatures, int(cand.Mean()))).Seconds() * 1000
						return []any{radius, cand.Mean(), 100 * float64(covered) / float64(len(floor.Checkpoints)), match}
					},
				})
			}
			return trials
		},
		Assemble: func(_ Options, parts []any) *Result {
			tbl := stats.NewTable("Pruning radius vs search cost and coverage",
				"radius (m)", "mean candidates", "coverage (%)", "mean match ms (i7x8, 720x480)")
			for _, p := range parts {
				tbl.AddRow(p.([]any)...)
			}
			return &Result{ID: "ablation-radius", Title: Title("ablation-radius"), Tables: []*stats.Table{tbl},
				Notes: []string{"small radii miss the true cell under ~3 m localization error; ACACIA's 7.5 m default keeps coverage high at a fraction of the full-search cost"}}
		},
	}
}

// ablationSolver compares the trilateration solvers — one trial per solver,
// all three ranging over the identical shared campaign.
func ablationSolver() Experiment {
	solvers := []struct {
		name  string
		solve func([]localization.Measurement) (geo.Point, error)
	}{
		{"Gauss-Newton (ACACIA)", localization.Trilaterate},
		{"weighted Gauss-Newton (1/d)", localization.TrilaterateWeighted},
		{"linearized closed form", localization.TrilaterateLinear},
	}
	return Experiment{
		ID:    "ablation-solver",
		Title: "Ablation: trilateration solver choice",
		Trials: func(opts Options) []Trial {
			campaign := ablationCampaignSeed(opts, "ablation-solver")
			trials := make([]Trial, 0, len(solvers))
			for _, sv := range solvers {
				sv := sv
				trials = append(trials, Trial{
					Key: "solver=" + sv.name,
					Run: func(uint64) any {
						floor := geo.RetailFloor()
						grouped := trace.ByCheckpoint(trace.Campaign(floor, campaign, 1))
						fit := core.CalibrateFromChannel(d2d.DefaultPathLoss, nil)
						var errs stats.Sample
						for _, cp := range floor.Checkpoints {
							ms := checkpointMeasurements(floor, grouped[cp.Name], fit)
							if p, err := sv.solve(ms); err == nil {
								errs.Add(floor.Bounds.Clamp(p).Dist(cp.Pos))
							}
						}
						return []any{sv.name, errs.Mean(), errs.Percentile(95), errs.Max()}
					},
				})
			}
			return trials
		},
		Assemble: func(_ Options, parts []any) *Result {
			tbl := stats.NewTable("Trilateration solver accuracy (m) over 24 checkpoints, 7 landmarks",
				"solver", "mean", "p95", "max")
			for _, p := range parts {
				tbl.AddRow(p.([]any)...)
			}
			return &Result{ID: "ablation-solver", Title: Title("ablation-solver"), Tables: []*stats.Table{tbl},
				Notes: []string{"nonlinear least squares tolerates ranging noise better, at negligible cost for 7 landmarks"}}
		},
	}
}

// ablationQCI loads the downlink radio past capacity with default-bearer
// (QCI 9) bulk traffic and probes the CI server over dedicated bearers of
// different QCIs: the priority radio scheduler lets QCI 5 probes overtake
// the bulk queue. (Fig. 10(a) measured an unloaded edge, where QCI makes
// no difference; this ablation shows where it does.) One trial per QCI,
// each on its own loaded testbed.
func ablationQCI() Experiment {
	qcis := []pkt.QCI{5, 7, 9}
	return Experiment{
		ID:    "ablation-qci",
		Title: "Ablation: QCI priority under radio congestion",
		Trials: func(opts Options) []Trial {
			trials := make([]Trial, 0, len(qcis))
			for _, qci := range qcis {
				qci := qci
				trials = append(trials, Trial{
					Key: fmt.Sprintf("qci=%d", qci),
					Run: func(seed uint64) any {
						med, p95 := measureQCIUnderLoad(opts, seed, qci)
						return []any{fmt.Sprintf("QCI %d", qci), med, p95}
					},
				})
			}
			return trials
		},
		Assemble: func(_ Options, parts []any) *Result {
			tbl := stats.NewTable("CI-server RTT (ms) by dedicated-bearer QCI under 45 Mbps DL bulk load (40 Mbps radio)",
				"QCI", "median", "p95")
			for _, p := range parts {
				tbl.AddRow(p.([]any)...)
			}
			return &Result{ID: "ablation-qci", Title: Title("ablation-qci"), Tables: []*stats.Table{tbl},
				Notes: []string{"the MEC bearer's high-priority QCI keeps CI latency flat when lower-priority traffic saturates the radio"}}
		},
	}
}

func measureQCIUnderLoad(opts Options, seed uint64, qci pkt.QCI) (median, p95 float64) {
	tb := core.NewTestbed(core.TestbedConfig{
		Seed:        seed,
		IdleTimeout: time.Hour,
		RadioJitter: 1,
	})
	b := tb.UEs[0]
	if err := tb.Attach(b); err != nil {
		panic(err)
	}
	// Dedicated bearer toward the CI server at the requested QCI.
	tb.EPC.PCRF.AddRule(epc.PolicyRule{ServiceID: "qci-probe", QCI: qci, ARP: 2, Precedence: 7})
	done := false
	tb.EPC.PCRF.RequestDedicatedBearer("qci-probe", b.UE.Addr(), tb.CIServer.Node.Addr(),
		"edge-sgw", "edge-pgw", func(_ uint8, err error) {
			if err != nil {
				panic(err)
			}
			done = true
		})
	tb.Run(2 * time.Second)
	if !done {
		panic("bearer setup timed out")
	}

	// Bulk downlink on the default bearer, overloading the 40 Mbps radio.
	bulk := netsim.NewCBRSource(tb.CloudHosts["california"], b.UE.Addr(), 9400, 1250)
	bulk.Start(45e6)
	pg := netsim.NewPinger(b.UE.Host, tb.CIServer.Node.Addr(), 200, 9401)
	tb.Run(2 * time.Second) // let the radio queue fill
	pg.Start(100 * time.Millisecond)
	dur := 8 * time.Second
	if opts.Full {
		dur = 20 * time.Second
	}
	tb.Run(dur)
	pg.Stop()
	bulk.Stop()
	tb.Run(2 * time.Second)
	return pg.RTTs.Median(), pg.RTTs.Percentile(95)
}

// ablationIndex runs the *real* vision pipeline (no latency model) over the
// retail database and compares search strategies by measured descriptor
// work and recall — one trial per strategy. The LSH index seed and the
// per-frame seeds are shared across trials, so every strategy searches the
// same index for the same query frames.
func ablationIndex() Experiment {
	type searchFn func(db *vision.DB, floor *geo.Floor, ix *vision.Index, m *vision.Matcher, q *vision.FeatureSet, target *vision.Object) vision.SearchResult
	strategies := []struct {
		name   string
		search searchFn
	}{
		{"brute force (Naive)", func(db *vision.DB, _ *geo.Floor, _ *vision.Index, m *vision.Matcher, q *vision.FeatureSet, _ *vision.Object) vision.SearchResult {
			return db.Search(q, nil, m)
		}},
		{"geo-pruned (ACACIA)", func(db *vision.DB, floor *geo.Floor, _ *vision.Index, m *vision.Matcher, q *vision.FeatureSet, target *vision.Object) vision.SearchResult {
			cells := floor.SubsectionsNear(db.Objects[indexOf(db, target)].Pos, core.PruneRadius)
			return db.Search(q, cells, m)
		}},
		{"LSH top-5", func(db *vision.DB, _ *geo.Floor, ix *vision.Index, m *vision.Matcher, q *vision.FeatureSet, _ *vision.Object) vision.SearchResult {
			return db.SearchWithIndex(q, ix, 5, m)
		}},
		{"LSH top-1", func(db *vision.DB, _ *geo.Floor, ix *vision.Index, m *vision.Matcher, q *vision.FeatureSet, _ *vision.Object) vision.SearchResult {
			return db.SearchWithIndex(q, ix, 1, m)
		}},
	}
	return Experiment{
		ID:    "ablation-index",
		Title: "Ablation: LSH prefilter vs brute-force and geo-pruned search",
		Trials: func(opts Options) []Trial {
			frames := 10
			if opts.Full {
				frames = 30
			}
			base := opts.BaseSeed()
			trials := make([]Trial, 0, len(strategies))
			for _, st := range strategies {
				st := st
				trials = append(trials, Trial{
					Key: "strategy=" + st.name,
					Run: func(seed uint64) any {
						floor := geo.RetailFloor()
						db := vision.BuildRetailDB(floor, 64)
						ix := vision.BuildIndex(db, vision.IndexConfig{}, sim.NewRNG(subSeed(base, "ablation-index", "lsh")))
						m := vision.NewMatcher(vision.MatcherConfig{}, sim.NewRNG(seed))
						found := 0
						var macs, cands stats.Sample
						for i := 0; i < frames; i++ {
							target := db.Objects[(i*17)%db.Len()]
							frameRNG := sim.NewRNG(subSeed(base, "ablation-index", "frame", fmt.Sprint(i)))
							q := vision.GenerateFrame(target.Features, vision.DefaultFrameParams(96), frameRNG)
							res := st.search(db, floor, ix, m, q, target)
							macs.Add(res.MACs)
							cands.Add(float64(res.Candidates))
							if res.Best == target {
								found++
							}
						}
						return []any{st.name, 100 * float64(found) / float64(frames), macs.Mean(), cands.Mean()}
					},
				})
			}
			return trials
		},
		Assemble: func(_ Options, parts []any) *Result {
			tbl := stats.NewTable("Search strategy vs work and recall (real matching pipeline)",
				"strategy", "recall (%)", "mean MACs/frame", "mean candidates")
			for _, p := range parts {
				tbl.AddRow(p.([]any)...)
			}
			return &Result{ID: "ablation-index", Title: Title("ablation-index"), Tables: []*stats.Table{tbl},
				Notes: []string{
					"geo-pruning uses user context (free at query time); LSH trades a small hashing cost for content-based pruning that works without location",
				}}
		},
	}
}

func indexOf(db *vision.DB, target *vision.Object) int {
	for i, o := range db.Objects {
		if o == target {
			return i
		}
	}
	return 0
}
